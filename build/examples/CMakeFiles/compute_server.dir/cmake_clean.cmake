file(REMOVE_RECURSE
  "CMakeFiles/compute_server.dir/compute_server.cc.o"
  "CMakeFiles/compute_server.dir/compute_server.cc.o.d"
  "compute_server"
  "compute_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
