# Empty dependencies file for compute_server.
# This may be replaced when dependencies are built.
