# Empty compiler generated dependencies file for parallel_app.
# This may be replaced when dependencies are built.
