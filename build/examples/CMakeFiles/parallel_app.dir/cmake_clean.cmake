file(REMOVE_RECURSE
  "CMakeFiles/parallel_app.dir/parallel_app.cc.o"
  "CMakeFiles/parallel_app.dir/parallel_app.cc.o.d"
  "parallel_app"
  "parallel_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
