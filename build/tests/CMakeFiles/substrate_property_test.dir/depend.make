# Empty dependencies file for substrate_property_test.
# This may be replaced when dependencies are built.
