file(REMOVE_RECURSE
  "CMakeFiles/single_system_test.dir/single_system_test.cc.o"
  "CMakeFiles/single_system_test.dir/single_system_test.cc.o.d"
  "single_system_test"
  "single_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
