# Empty compiler generated dependencies file for single_system_test.
# This may be replaced when dependencies are built.
