# Empty dependencies file for careful_ref_test.
# This may be replaced when dependencies are built.
