file(REMOVE_RECURSE
  "CMakeFiles/careful_ref_test.dir/careful_ref_test.cc.o"
  "CMakeFiles/careful_ref_test.dir/careful_ref_test.cc.o.d"
  "careful_ref_test"
  "careful_ref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/careful_ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
