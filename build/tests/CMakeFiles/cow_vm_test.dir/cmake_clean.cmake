file(REMOVE_RECURSE
  "CMakeFiles/cow_vm_test.dir/cow_vm_test.cc.o"
  "CMakeFiles/cow_vm_test.dir/cow_vm_test.cc.o.d"
  "cow_vm_test"
  "cow_vm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
