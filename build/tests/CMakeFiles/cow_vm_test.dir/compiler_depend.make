# Empty compiler generated dependencies file for cow_vm_test.
# This may be replaced when dependencies are built.
