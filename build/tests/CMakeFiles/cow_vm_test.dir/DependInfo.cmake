
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cow_vm_test.cc" "tests/CMakeFiles/cow_vm_test.dir/cow_vm_test.cc.o" "gcc" "tests/CMakeFiles/cow_vm_test.dir/cow_vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/hive_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/hive_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
