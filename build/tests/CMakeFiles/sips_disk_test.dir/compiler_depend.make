# Empty compiler generated dependencies file for sips_disk_test.
# This may be replaced when dependencies are built.
