file(REMOVE_RECURSE
  "CMakeFiles/sips_disk_test.dir/sips_disk_test.cc.o"
  "CMakeFiles/sips_disk_test.dir/sips_disk_test.cc.o.d"
  "sips_disk_test"
  "sips_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sips_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
