file(REMOVE_RECURSE
  "CMakeFiles/kernel_heap_test.dir/kernel_heap_test.cc.o"
  "CMakeFiles/kernel_heap_test.dir/kernel_heap_test.cc.o.d"
  "kernel_heap_test"
  "kernel_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
