# Empty dependencies file for memory_sharing_test.
# This may be replaced when dependencies are built.
