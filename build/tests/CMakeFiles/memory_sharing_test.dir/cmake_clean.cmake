file(REMOVE_RECURSE
  "CMakeFiles/memory_sharing_test.dir/memory_sharing_test.cc.o"
  "CMakeFiles/memory_sharing_test.dir/memory_sharing_test.cc.o.d"
  "memory_sharing_test"
  "memory_sharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
