file(REMOVE_RECURSE
  "CMakeFiles/wax_test.dir/wax_test.cc.o"
  "CMakeFiles/wax_test.dir/wax_test.cc.o.d"
  "wax_test"
  "wax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
