# Empty compiler generated dependencies file for wax_test.
# This may be replaced when dependencies are built.
