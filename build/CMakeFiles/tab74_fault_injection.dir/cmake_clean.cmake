file(REMOVE_RECURSE
  "CMakeFiles/tab74_fault_injection.dir/bench/tab74_fault_injection.cc.o"
  "CMakeFiles/tab74_fault_injection.dir/bench/tab74_fault_injection.cc.o.d"
  "bench/tab74_fault_injection"
  "bench/tab74_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab74_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
