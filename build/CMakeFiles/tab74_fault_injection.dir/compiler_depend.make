# Empty compiler generated dependencies file for tab74_fault_injection.
# This may be replaced when dependencies are built.
