# Empty compiler generated dependencies file for abl_rpc_level.
# This may be replaced when dependencies are built.
