file(REMOVE_RECURSE
  "CMakeFiles/abl_rpc_level.dir/bench/abl_rpc_level.cc.o"
  "CMakeFiles/abl_rpc_level.dir/bench/abl_rpc_level.cc.o.d"
  "bench/abl_rpc_level"
  "bench/abl_rpc_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rpc_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
