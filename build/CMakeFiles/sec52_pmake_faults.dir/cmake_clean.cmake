file(REMOVE_RECURSE
  "CMakeFiles/sec52_pmake_faults.dir/bench/sec52_pmake_faults.cc.o"
  "CMakeFiles/sec52_pmake_faults.dir/bench/sec52_pmake_faults.cc.o.d"
  "bench/sec52_pmake_faults"
  "bench/sec52_pmake_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_pmake_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
