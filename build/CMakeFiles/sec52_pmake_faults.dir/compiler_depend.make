# Empty compiler generated dependencies file for sec52_pmake_faults.
# This may be replaced when dependencies are built.
