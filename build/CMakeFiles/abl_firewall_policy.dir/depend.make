# Empty dependencies file for abl_firewall_policy.
# This may be replaced when dependencies are built.
