file(REMOVE_RECURSE
  "CMakeFiles/abl_firewall_policy.dir/bench/abl_firewall_policy.cc.o"
  "CMakeFiles/abl_firewall_policy.dir/bench/abl_firewall_policy.cc.o.d"
  "bench/abl_firewall_policy"
  "bench/abl_firewall_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_firewall_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
