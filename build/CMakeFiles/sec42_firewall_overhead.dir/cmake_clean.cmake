file(REMOVE_RECURSE
  "CMakeFiles/sec42_firewall_overhead.dir/bench/sec42_firewall_overhead.cc.o"
  "CMakeFiles/sec42_firewall_overhead.dir/bench/sec42_firewall_overhead.cc.o.d"
  "bench/sec42_firewall_overhead"
  "bench/sec42_firewall_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_firewall_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
