# Empty dependencies file for sec42_firewall_overhead.
# This may be replaced when dependencies are built.
