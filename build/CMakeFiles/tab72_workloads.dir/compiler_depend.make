# Empty compiler generated dependencies file for tab72_workloads.
# This may be replaced when dependencies are built.
