file(REMOVE_RECURSE
  "CMakeFiles/tab72_workloads.dir/bench/tab72_workloads.cc.o"
  "CMakeFiles/tab72_workloads.dir/bench/tab72_workloads.cc.o.d"
  "bench/tab72_workloads"
  "bench/tab72_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab72_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
