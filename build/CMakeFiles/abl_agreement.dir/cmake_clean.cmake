file(REMOVE_RECURSE
  "CMakeFiles/abl_agreement.dir/bench/abl_agreement.cc.o"
  "CMakeFiles/abl_agreement.dir/bench/abl_agreement.cc.o.d"
  "bench/abl_agreement"
  "bench/abl_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
