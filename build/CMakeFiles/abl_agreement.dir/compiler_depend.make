# Empty compiler generated dependencies file for abl_agreement.
# This may be replaced when dependencies are built.
