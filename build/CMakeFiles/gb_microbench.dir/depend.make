# Empty dependencies file for gb_microbench.
# This may be replaced when dependencies are built.
