file(REMOVE_RECURSE
  "CMakeFiles/gb_microbench.dir/bench/gb_microbench.cc.o"
  "CMakeFiles/gb_microbench.dir/bench/gb_microbench.cc.o.d"
  "bench/gb_microbench"
  "bench/gb_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
