file(REMOVE_RECURSE
  "CMakeFiles/abl_numa_placement.dir/bench/abl_numa_placement.cc.o"
  "CMakeFiles/abl_numa_placement.dir/bench/abl_numa_placement.cc.o.d"
  "bench/abl_numa_placement"
  "bench/abl_numa_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_numa_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
