# Empty dependencies file for abl_numa_placement.
# This may be replaced when dependencies are built.
