file(REMOVE_RECURSE
  "CMakeFiles/abl_detection_freq.dir/bench/abl_detection_freq.cc.o"
  "CMakeFiles/abl_detection_freq.dir/bench/abl_detection_freq.cc.o.d"
  "bench/abl_detection_freq"
  "bench/abl_detection_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_detection_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
