# Empty dependencies file for abl_detection_freq.
# This may be replaced when dependencies are built.
