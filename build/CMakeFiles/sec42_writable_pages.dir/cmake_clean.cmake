file(REMOVE_RECURSE
  "CMakeFiles/sec42_writable_pages.dir/bench/sec42_writable_pages.cc.o"
  "CMakeFiles/sec42_writable_pages.dir/bench/sec42_writable_pages.cc.o.d"
  "bench/sec42_writable_pages"
  "bench/sec42_writable_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_writable_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
