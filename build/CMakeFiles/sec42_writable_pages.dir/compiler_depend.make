# Empty compiler generated dependencies file for sec42_writable_pages.
# This may be replaced when dependencies are built.
