# Empty dependencies file for sec41_careful_ref.
# This may be replaced when dependencies are built.
