file(REMOVE_RECURSE
  "CMakeFiles/sec41_careful_ref.dir/bench/sec41_careful_ref.cc.o"
  "CMakeFiles/sec41_careful_ref.dir/bench/sec41_careful_ref.cc.o.d"
  "bench/sec41_careful_ref"
  "bench/sec41_careful_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_careful_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
