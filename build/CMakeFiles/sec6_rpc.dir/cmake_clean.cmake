file(REMOVE_RECURSE
  "CMakeFiles/sec6_rpc.dir/bench/sec6_rpc.cc.o"
  "CMakeFiles/sec6_rpc.dir/bench/sec6_rpc.cc.o.d"
  "bench/sec6_rpc"
  "bench/sec6_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
