# Empty compiler generated dependencies file for sec6_rpc.
# This may be replaced when dependencies are built.
