# Empty dependencies file for tab52_page_fault.
# This may be replaced when dependencies are built.
