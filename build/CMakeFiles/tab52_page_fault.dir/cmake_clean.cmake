file(REMOVE_RECURSE
  "CMakeFiles/tab52_page_fault.dir/bench/tab52_page_fault.cc.o"
  "CMakeFiles/tab52_page_fault.dir/bench/tab52_page_fault.cc.o.d"
  "bench/tab52_page_fault"
  "bench/tab52_page_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab52_page_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
