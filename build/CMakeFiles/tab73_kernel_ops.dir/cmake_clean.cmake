file(REMOVE_RECURSE
  "CMakeFiles/tab73_kernel_ops.dir/bench/tab73_kernel_ops.cc.o"
  "CMakeFiles/tab73_kernel_ops.dir/bench/tab73_kernel_ops.cc.o.d"
  "bench/tab73_kernel_ops"
  "bench/tab73_kernel_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab73_kernel_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
