# Empty compiler generated dependencies file for tab73_kernel_ops.
# This may be replaced when dependencies are built.
