# Empty dependencies file for hive_base.
# This may be replaced when dependencies are built.
