file(REMOVE_RECURSE
  "libhive_base.a"
)
