file(REMOVE_RECURSE
  "CMakeFiles/hive_base.dir/histogram.cc.o"
  "CMakeFiles/hive_base.dir/histogram.cc.o.d"
  "CMakeFiles/hive_base.dir/log.cc.o"
  "CMakeFiles/hive_base.dir/log.cc.o.d"
  "CMakeFiles/hive_base.dir/status.cc.o"
  "CMakeFiles/hive_base.dir/status.cc.o.d"
  "CMakeFiles/hive_base.dir/table.cc.o"
  "CMakeFiles/hive_base.dir/table.cc.o.d"
  "libhive_base.a"
  "libhive_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
