file(REMOVE_RECURSE
  "libhive_flash.a"
)
