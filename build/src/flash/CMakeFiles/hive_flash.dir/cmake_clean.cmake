file(REMOVE_RECURSE
  "CMakeFiles/hive_flash.dir/disk.cc.o"
  "CMakeFiles/hive_flash.dir/disk.cc.o.d"
  "CMakeFiles/hive_flash.dir/event_queue.cc.o"
  "CMakeFiles/hive_flash.dir/event_queue.cc.o.d"
  "CMakeFiles/hive_flash.dir/fault_injector.cc.o"
  "CMakeFiles/hive_flash.dir/fault_injector.cc.o.d"
  "CMakeFiles/hive_flash.dir/firewall.cc.o"
  "CMakeFiles/hive_flash.dir/firewall.cc.o.d"
  "CMakeFiles/hive_flash.dir/interconnect.cc.o"
  "CMakeFiles/hive_flash.dir/interconnect.cc.o.d"
  "CMakeFiles/hive_flash.dir/machine.cc.o"
  "CMakeFiles/hive_flash.dir/machine.cc.o.d"
  "CMakeFiles/hive_flash.dir/phys_mem.cc.o"
  "CMakeFiles/hive_flash.dir/phys_mem.cc.o.d"
  "CMakeFiles/hive_flash.dir/sips.cc.o"
  "CMakeFiles/hive_flash.dir/sips.cc.o.d"
  "libhive_flash.a"
  "libhive_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
