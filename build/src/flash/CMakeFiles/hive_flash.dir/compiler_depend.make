# Empty compiler generated dependencies file for hive_flash.
# This may be replaced when dependencies are built.
