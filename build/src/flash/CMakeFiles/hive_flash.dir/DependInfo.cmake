
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/disk.cc" "src/flash/CMakeFiles/hive_flash.dir/disk.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/disk.cc.o.d"
  "/root/repo/src/flash/event_queue.cc" "src/flash/CMakeFiles/hive_flash.dir/event_queue.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/event_queue.cc.o.d"
  "/root/repo/src/flash/fault_injector.cc" "src/flash/CMakeFiles/hive_flash.dir/fault_injector.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/fault_injector.cc.o.d"
  "/root/repo/src/flash/firewall.cc" "src/flash/CMakeFiles/hive_flash.dir/firewall.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/firewall.cc.o.d"
  "/root/repo/src/flash/interconnect.cc" "src/flash/CMakeFiles/hive_flash.dir/interconnect.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/interconnect.cc.o.d"
  "/root/repo/src/flash/machine.cc" "src/flash/CMakeFiles/hive_flash.dir/machine.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/machine.cc.o.d"
  "/root/repo/src/flash/phys_mem.cc" "src/flash/CMakeFiles/hive_flash.dir/phys_mem.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/phys_mem.cc.o.d"
  "/root/repo/src/flash/sips.cc" "src/flash/CMakeFiles/hive_flash.dir/sips.cc.o" "gcc" "src/flash/CMakeFiles/hive_flash.dir/sips.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
