# Empty compiler generated dependencies file for hive_core.
# This may be replaced when dependencies are built.
