
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_space.cc" "src/core/CMakeFiles/hive_core.dir/address_space.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/address_space.cc.o.d"
  "/root/repo/src/core/agreement.cc" "src/core/CMakeFiles/hive_core.dir/agreement.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/agreement.cc.o.d"
  "/root/repo/src/core/careful_ref.cc" "src/core/CMakeFiles/hive_core.dir/careful_ref.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/careful_ref.cc.o.d"
  "/root/repo/src/core/cell.cc" "src/core/CMakeFiles/hive_core.dir/cell.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/cell.cc.o.d"
  "/root/repo/src/core/cow_tree.cc" "src/core/CMakeFiles/hive_core.dir/cow_tree.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/cow_tree.cc.o.d"
  "/root/repo/src/core/failure_detection.cc" "src/core/CMakeFiles/hive_core.dir/failure_detection.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/failure_detection.cc.o.d"
  "/root/repo/src/core/filesystem.cc" "src/core/CMakeFiles/hive_core.dir/filesystem.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/filesystem.cc.o.d"
  "/root/repo/src/core/firewall_manager.cc" "src/core/CMakeFiles/hive_core.dir/firewall_manager.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/firewall_manager.cc.o.d"
  "/root/repo/src/core/hive_system.cc" "src/core/CMakeFiles/hive_core.dir/hive_system.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/hive_system.cc.o.d"
  "/root/repo/src/core/kernel_heap.cc" "src/core/CMakeFiles/hive_core.dir/kernel_heap.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/kernel_heap.cc.o.d"
  "/root/repo/src/core/page_allocator.cc" "src/core/CMakeFiles/hive_core.dir/page_allocator.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/page_allocator.cc.o.d"
  "/root/repo/src/core/pageout.cc" "src/core/CMakeFiles/hive_core.dir/pageout.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/pageout.cc.o.d"
  "/root/repo/src/core/pfdat.cc" "src/core/CMakeFiles/hive_core.dir/pfdat.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/pfdat.cc.o.d"
  "/root/repo/src/core/process.cc" "src/core/CMakeFiles/hive_core.dir/process.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/process.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/core/CMakeFiles/hive_core.dir/recovery.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/recovery.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/hive_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/report.cc.o.d"
  "/root/repo/src/core/rpc.cc" "src/core/CMakeFiles/hive_core.dir/rpc.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/rpc.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/hive_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/spanning_task.cc" "src/core/CMakeFiles/hive_core.dir/spanning_task.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/spanning_task.cc.o.d"
  "/root/repo/src/core/swap.cc" "src/core/CMakeFiles/hive_core.dir/swap.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/swap.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/hive_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/trace.cc.o.d"
  "/root/repo/src/core/vm_fault.cc" "src/core/CMakeFiles/hive_core.dir/vm_fault.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/vm_fault.cc.o.d"
  "/root/repo/src/core/wax.cc" "src/core/CMakeFiles/hive_core.dir/wax.cc.o" "gcc" "src/core/CMakeFiles/hive_core.dir/wax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/hive_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
