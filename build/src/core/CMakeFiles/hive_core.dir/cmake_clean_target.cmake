file(REMOVE_RECURSE
  "libhive_core.a"
)
