file(REMOVE_RECURSE
  "libhive_workloads.a"
)
