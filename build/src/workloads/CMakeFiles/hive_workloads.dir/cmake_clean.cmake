file(REMOVE_RECURSE
  "CMakeFiles/hive_workloads.dir/ocean.cc.o"
  "CMakeFiles/hive_workloads.dir/ocean.cc.o.d"
  "CMakeFiles/hive_workloads.dir/pmake.cc.o"
  "CMakeFiles/hive_workloads.dir/pmake.cc.o.d"
  "CMakeFiles/hive_workloads.dir/raytrace.cc.o"
  "CMakeFiles/hive_workloads.dir/raytrace.cc.o.d"
  "CMakeFiles/hive_workloads.dir/workload.cc.o"
  "CMakeFiles/hive_workloads.dir/workload.cc.o.d"
  "libhive_workloads.a"
  "libhive_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
