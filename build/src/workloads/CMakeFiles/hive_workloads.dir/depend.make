# Empty dependencies file for hive_workloads.
# This may be replaced when dependencies are built.
