// Deeper structural invariants: COW tree extension chains, post-recovery
// system consistency, and multi-CPU-per-node configurations.

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/vm_fault.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/pmake.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class CowExtensionTest : public ::testing::Test {
 protected:
  CowExtensionTest() : ts_(hivetest::BootHive(4)) {}

  Process* Spawn(CellId cell, Process* parent = nullptr) {
    Ctx ctx = ts_.cell(cell).MakeCtx();
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("idle");
    auto pid = ts_.hive->Fork(ctx, cell, std::move(behavior), -1, parent);
    EXPECT_TRUE(pid.ok());
    return ts_.cell(cell).sched().FindProcess(*pid);
  }

  hivetest::TestSystem ts_;
};

TEST_F(CowExtensionTest, RecordBeyondNodeCapacityChainsExtensions) {
  // A node holds kEntriesPerNode offsets; recording 3x that many must chain
  // extension nodes and keep every offset findable.
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  const uint64_t count = 3 * CowNodeLayout::kEntriesPerNode + 7;
  for (uint64_t offset = 0; offset < count; ++offset) {
    ASSERT_TRUE(ts_.cell(0).cow().RecordPage(ctx, proc->cow_leaf(), 1000 + offset).ok());
  }
  for (uint64_t offset = 0; offset < count; ++offset) {
    auto found = ts_.cell(0).cow().Lookup(ctx, proc->cow_leaf(), 1000 + offset);
    ASSERT_TRUE(found.ok()) << offset;
    EXPECT_TRUE(found->found) << offset;
    EXPECT_EQ(found->owner_cell, 0) << offset;
  }
  auto missing = ts_.cell(0).cow().Lookup(ctx, proc->cow_leaf(), 99999);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->found);
}

TEST_F(CowExtensionTest, RemoteLookupTraversesExtensionChain) {
  // Parent on cell 1 faults in more anon pages than one node holds; a child
  // forked onto cell 2 must find pages recorded in the parent's EXTENSION
  // nodes through the careful remote walk.
  Process* parent = Spawn(1);
  Ctx pctx = ts_.cell(1).MakeCtx();
  const uint64_t pages = CowNodeLayout::kEntriesPerNode + 20;  // Spills over.
  ASSERT_TRUE(
      parent->address_space().MapAnon(pctx, 0x1000000, (pages + 1) * 4096, true).ok());
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_TRUE(PageFault(pctx, *parent, 0x1000000 + p * 4096, true).ok()) << p;
  }

  Process* child = Spawn(2, parent);
  Ctx cctx = ts_.cell(2).MakeCtx();
  // The LAST page was recorded in an extension node of the parent's old leaf.
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000 + (pages - 1) * 4096, false).ok());
  Mapping* mapping = child->address_space().FindMapping(0x1000000 + (pages - 1) * 4096);
  ASSERT_NE(mapping, nullptr);
  EXPECT_EQ(mapping->pfdat->imported_from, 1);
  // The lookup resumed the upward walk correctly too: a page only the
  // grandparent would own is simply absent (zero-fill), not an error.
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000 + pages * 4096, false).ok());
}

TEST_F(CowExtensionTest, GrandparentPagesFoundThroughTwoLevels) {
  Process* grandparent = Spawn(0);
  Ctx gctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(
      grandparent->address_space().MapAnon(gctx, 0x1000000, 4 * 4096, true).ok());
  ASSERT_TRUE(PageFault(gctx, *grandparent, 0x1000000, true).ok());
  Mapping* gm = grandparent->address_space().FindMapping(0x1000000);
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(0).FirstCpu(), gm->pfdat->frame, 111);

  Process* parent = Spawn(1, grandparent);  // Leaf split: cell 0 -> cell 1.
  Process* child = Spawn(3, parent);        // And again: cell 1 -> cell 3.

  Ctx cctx = ts_.cell(3).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, false).ok());
  Mapping* cm = child->address_space().FindMapping(0x1000000);
  ASSERT_NE(cm, nullptr);
  // Bound to the grandparent's page on cell 0, two careful hops away.
  EXPECT_EQ(cm->pfdat->imported_from, 0);
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(3).FirstCpu(),
                                                   cm->pfdat->frame),
            111u);
}

// Post-recovery invariant checker: nothing in any surviving cell references
// the failed cell's memory or holds grants for it.
void CheckNoDanglingState(hivetest::TestSystem& ts, CellId failed) {
  const flash::PhysAddr failed_base = ts.cell(failed).mem_base();
  const flash::PhysAddr failed_end = failed_base + ts.cell(failed).mem_size();
  for (CellId c : ts.hive->LiveCells()) {
    Cell& cell = ts.cell(c);
    cell.pfdats().ForEach([&](Pfdat* pfdat) {
      // No pfdat may reference a frame in failed memory.
      EXPECT_FALSE(pfdat->frame >= failed_base && pfdat->frame < failed_end)
          << "cell " << c << " references failed frame";
      // No export/import/loan state may name the failed cell.
      EXPECT_EQ(pfdat->exported_to & (1ull << failed), 0u);
      EXPECT_EQ(pfdat->exported_writable & (1ull << failed), 0u);
      EXPECT_NE(pfdat->imported_from, failed);
      EXPECT_NE(pfdat->borrowed_from, failed);
      EXPECT_NE(pfdat->loaned_to, failed);
    });
    // Hardware mappings rebuilt after resume can only point at pfdats in the
    // cell's table, and the table was verified clean above: no mapping can
    // reference failed memory.
  }
}

TEST(RecoveryInvariantTest, NoDanglingReferencesAfterFailureUnderLoad) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    auto ts = hivetest::BootHive(4, 4, {}, seed);
    workloads::PmakeParams params;
    params.jobs = 8;
    params.source_bytes = 8 * 1024;
    params.output_bytes = 16 * 1024;
    params.shared_text_pages = 30;
    params.private_file_pages = 50;
    params.anon_pages = 20;
    params.scratch_pages = 4;
    params.metadata_ops = 5;
    params.compute_per_job = 200 * kMillisecond;
    params.name_seed = seed;
    workloads::PmakeWorkload pmake(ts.hive.get(), params);
    pmake.Setup();
    auto pids = pmake.Start();

    const CellId victim = static_cast<CellId>(1 + seed % 3);
    flash::FaultInjector injector(ts.machine.get(), seed);
    injector.ScheduleNodeFailure(victim, 40 * kMillisecond);

    // Stop right after recovery completes, BEFORE user work resumes and
    // rebuilds mappings: this is the moment the invariant must hold.
    ts.machine->events().RunUntil(40 * kMillisecond + 25 * kMillisecond);
    ASSERT_EQ(ts.hive->recovery().recoveries_run(), 1) << seed;
    CheckNoDanglingState(ts, victim);

    // And the system still completes the surviving work afterwards.
    (void)ts.hive->RunUntilDone(pids, 120 * kSecond);
    EXPECT_EQ(pmake.ValidateOutputs(), 0) << seed;
  }
}

class MultiCpuTest : public ::testing::Test {};

TEST_F(MultiCpuTest, TwoCellsTwoCpusEachBootAndShare) {
  flash::MachineConfig config = hivetest::SmallConfig(4, /*cpus_per_node=*/2);
  auto machine = std::make_unique<flash::Machine>(config, 9);
  HiveOptions options;
  options.num_cells = 2;
  HiveSystem hive(machine.get(), options);
  hive.Boot();
  EXPECT_EQ(hive.cell(0).cpus().size(), 4u);
  EXPECT_EQ(hive.cell(0).CpuMask(), 0x0Full);
  EXPECT_EQ(hive.cell(1).CpuMask(), 0xF0ull);

  // Writable export grants every CPU of the client cell (section 4.2).
  Ctx hctx = hive.cell(0).MakeCtx();
  auto id = hive.cell(0).fs().Create(hctx, "/m", workloads::PatternData(1, 4096));
  ASSERT_TRUE(id.ok());
  Ctx cctx = hive.cell(1).MakeCtx();
  auto handle = hive.cell(1).fs().Open(cctx, "/m");
  auto pfdat = hive.cell(1).fs().GetPage(cctx, *handle, 0, true);
  ASSERT_TRUE(pfdat.ok());
  const flash::Pfn pfn = machine->mem().PfnOfAddr((*pfdat)->frame);
  for (int cpu : hive.cell(1).cpus()) {
    EXPECT_TRUE(machine->firewall().MayWrite(pfn, cpu)) << cpu;
  }
  // The vector is exactly home-cell CPUs plus the granted client cell.
  EXPECT_EQ(machine->firewall().GetVector(pfn),
            hive.cell(0).CpuMask() | hive.cell(1).CpuMask());
}

TEST_F(MultiCpuTest, PmakeCompletesOnMultiCpuCells) {
  flash::MachineConfig config = hivetest::SmallConfig(4, /*cpus_per_node=*/2);
  auto machine = std::make_unique<flash::Machine>(config, 10);
  HiveOptions options;
  options.num_cells = 4;
  HiveSystem hive(machine.get(), options);
  hive.Boot();

  workloads::PmakeParams params;
  params.jobs = 8;
  params.source_bytes = 8 * 1024;
  params.output_bytes = 16 * 1024;
  params.shared_text_pages = 20;
  params.private_file_pages = 30;
  params.anon_pages = 10;
  params.scratch_pages = 2;
  params.metadata_ops = 5;
  params.compute_per_job = 100 * kMillisecond;
  params.name_seed = 600;
  workloads::PmakeWorkload pmake(&hive, params);
  pmake.Setup();
  auto pids = pmake.Start();
  ASSERT_TRUE(hive.RunUntilDone(pids, 120 * kSecond));
  EXPECT_EQ(pmake.CompletedJobs(), params.jobs);
  EXPECT_EQ(pmake.ValidateOutputs(), 0);
}

}  // namespace
}  // namespace hive
