// Failure detection, distributed agreement, and recovery (paper sections 4.3
// and 7.4).

#include <gtest/gtest.h>

#include "src/core/agreement.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/filesystem.h"
#include "src/core/recovery.h"
#include "src/core/rpc.h"
#include "src/core/trace.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class FailureRecoveryTest : public ::testing::Test {
 protected:
  FailureRecoveryTest() : ts_(hivetest::BootHive(4)) {}

  hivetest::TestSystem ts_;
};

TEST_F(FailureRecoveryTest, ClockMonitoringDetectsNodeFailure) {
  // Fail node 2 at t=25ms; clock monitoring (10 ms ticks, careful reads of
  // the next cell's clock word) must detect it within tens of milliseconds
  // (table 7.4: node failures detected in 10-45 ms).
  flash::FaultInjector injector(ts_.machine.get(), 1);
  const Time inject_at = 25 * kMillisecond;
  injector.ScheduleNodeFailure(2, inject_at);
  ts_.machine->events().RunUntil(200 * kMillisecond);

  ASSERT_EQ(ts_.hive->recovery().recoveries_run(), 1);
  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  ASSERT_EQ(stats.failed_cells.size(), 1u);
  EXPECT_EQ(stats.failed_cells[0], 2);
  const Time latency = stats.detect_time - inject_at;
  EXPECT_GT(latency, 0);
  EXPECT_LT(latency, 60 * kMillisecond);
  // Containment: only cell 2 died.
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(FailureRecoveryTest, SurvivingCellsKeepWorkingAfterRecovery) {
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);
  ASSERT_FALSE(ts_.cell(1).alive());

  // The survivors can still create, share, and read files.
  Cell& a = ts_.cell(0);
  Ctx actx = a.MakeCtx();
  ASSERT_TRUE(a.fs().Create(actx, "/after", workloads::PatternData(3, 8192)).ok());
  Cell& b = ts_.cell(3);
  Ctx bctx = b.MakeCtx();
  auto handle = b.fs().Open(bctx, "/after");
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> buf(8192);
  ASSERT_TRUE(b.fs().Read(bctx, *handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(3, 8192));
}

TEST_F(FailureRecoveryTest, PreemptiveDiscardDropsPagesWritableByFailedCell) {
  // Cell 2 imports a page of cell 0's file writable; then cell 2 fails. The
  // page must be discarded at the data home and, being dirty, bump the
  // file generation (section 4.2).
  Cell& home = ts_.cell(0);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/victim", workloads::PatternData(9, 4096));
  ASSERT_TRUE(id.ok());
  auto pre_failure_handle = home.fs().Open(hctx, "/victim");
  ASSERT_TRUE(pre_failure_handle.ok());

  Cell& client = ts_.cell(2);
  Ctx cctx = client.MakeCtx();
  auto chandle = client.fs().Open(cctx, "/victim");
  ASSERT_TRUE(chandle.ok());
  auto pfdat = client.fs().GetPage(cctx, *chandle, 0, /*want_write=*/true);
  ASSERT_TRUE(pfdat.ok());
  // Cell 2 scribbles on the page (a legitimate write... or a wild one).
  ts_.machine->mem().WriteValue<uint64_t>(client.FirstCpu(), (*pfdat)->frame, 0xBAD);

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, ts_.machine->Now() + kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 200 * kMillisecond);

  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  EXPECT_GE(stats.pages_discarded, 1);
  EXPECT_GE(stats.dirty_pages_lost, 1);

  // Pre-failure handles observe the error...
  std::vector<uint8_t> buf(4096);
  Ctx hctx2 = home.MakeCtx();
  EXPECT_EQ(home.fs().Read(hctx2, *pre_failure_handle, 0, std::span<uint8_t>(buf)).code(),
            base::StatusCode::kStaleGeneration);
  // ...and a fresh open reads the stale-but-uncorrupted disk data.
  auto fresh = home.fs().Open(hctx2, "/victim");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(home.fs().Read(hctx2, *fresh, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(9, 4096));
}

TEST_F(FailureRecoveryTest, FirewallRevokedFromFailedCell) {
  Cell& home = ts_.cell(0);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/fw", workloads::PatternData(2, 4096));
  ASSERT_TRUE(id.ok());
  Cell& client = ts_.cell(2);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/fw");
  auto pfdat = client.fs().GetPage(cctx, *handle, 0, true);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_EQ(home.firewall_manager().RemotelyWritablePages(), 1);

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, ts_.machine->Now() + kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 200 * kMillisecond);

  EXPECT_EQ(home.firewall_manager().RemotelyWritablePages(), 0);
}

TEST_F(FailureRecoveryTest, ProcessesWithHardDependencyAreKilled) {
  // A process on cell 0 that imported an anon page from cell 1 dies when
  // cell 1 does; an independent process on cell 3 survives.
  auto make_busy = [](const std::string& name) {
    auto behavior = std::make_unique<workloads::ScriptedBehavior>(name);
    behavior->Add(workloads::OpCompute(10 * kSecond));
    return behavior;
  };
  Ctx ctx0 = ts_.cell(0).MakeCtx();
  auto dependent = ts_.hive->Fork(ctx0, 0, make_busy("dep"));
  ASSERT_TRUE(dependent.ok());
  Process* dep = ts_.cell(0).sched().FindProcess(*dependent);
  dep->AddDependency(1);

  auto independent_pid = ts_.hive->Fork(ctx0, 3, make_busy("ind"));
  ASSERT_TRUE(independent_pid.ok());

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);

  EXPECT_EQ(dep->state(), ProcState::kKilled);
  Process* ind = ts_.cell(3).sched().FindProcess(*independent_pid);
  EXPECT_NE(ind->state(), ProcState::kKilled);
}

TEST_F(FailureRecoveryTest, TaskGroupSpanningFailedCellIsKilledEverywhere) {
  const int64_t group = ts_.hive->NextTaskGroup();
  Ctx ctx = ts_.cell(0).MakeCtx();
  std::vector<Process*> members;
  for (CellId c = 0; c < 4; ++c) {
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("member");
    behavior->Add(workloads::OpCompute(10 * kSecond));
    auto pid = ts_.hive->Fork(ctx, c, std::move(behavior), group);
    ASSERT_TRUE(pid.ok());
    members.push_back(ts_.cell(c).sched().FindProcess(*pid));
  }
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(3, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);

  for (CellId c = 0; c < 3; ++c) {
    EXPECT_EQ(members[static_cast<size_t>(c)]->state(), ProcState::kKilled) << c;
  }
}

TEST_F(FailureRecoveryTest, UsersSuspendedUntilSecondBarrier) {
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);
  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  EXPECT_GT(stats.barrier1_time, stats.detect_time);
  EXPECT_GT(stats.barrier2_time, stats.barrier1_time);
  for (CellId c : ts_.hive->LiveCells()) {
    EXPECT_GE(ts_.cell(c).user_suspended_until(), stats.barrier2_time);
  }
  // Recovery latency in the paper's range (40-80 ms measured there; ours is
  // the same order).
  const Time recovery_latency = stats.barrier2_time - stats.detect_time;
  EXPECT_GT(recovery_latency, 5 * kMillisecond);
  EXPECT_LT(recovery_latency, 120 * kMillisecond);
}

TEST_F(FailureRecoveryTest, WaxExitsAndRestartsAfterFailure) {
  ts_.machine->events().RunUntil(150 * kMillisecond);
  EXPECT_TRUE(ts_.hive->wax().running());
  const int incarnation = ts_.hive->wax().incarnation();

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, ts_.machine->Now() + kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 500 * kMillisecond);

  EXPECT_TRUE(ts_.hive->wax().running());
  EXPECT_EQ(ts_.hive->wax().incarnation(), incarnation + 1);
}

TEST_F(FailureRecoveryTest, RecoveryMasterIsLowestLiveCell) {
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(0, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);
  EXPECT_EQ(ts_.hive->recovery().last_stats().recovery_master, 1);
}

TEST_F(FailureRecoveryTest, ReintegrationRebootsFailedCell) {
  ts_.hive->recovery().auto_reintegrate = true;
  Cell& home = ts_.cell(2);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/persist", workloads::PatternData(4, 4096)).ok());

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts_.machine->events().RunUntil(1 * kSecond);

  // Rebooted and running again.
  EXPECT_TRUE(ts_.cell(2).alive());
  // File contents survived on disk and are served again.
  Cell& client = ts_.cell(0);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/persist");
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(client.fs().Read(cctx, *handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(4, 4096));
  // And a later failure of the same cell is detectable again.
  injector.ScheduleNodeFailure(2, ts_.machine->Now() + 20 * kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 300 * kMillisecond);
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 2);
}

TEST_F(FailureRecoveryTest, VotingAgreementConfirmsRealFailure) {
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(3, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
  EXPECT_FALSE(ts_.cell(3).alive());
  EXPECT_EQ(ts_.hive->agreement().false_alerts(), 0u);
}

TEST_F(FailureRecoveryTest, VotingAgreementVotesDownFalseAccusation) {
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  // Cell 0 falsely accuses a healthy cell 2.
  Ctx ctx = ts_.cell(0).MakeCtx();
  ts_.hive->HandleAlert(ctx, /*accuser=*/0, /*suspect=*/2, HintReason::kClockStale);
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 0);
  EXPECT_TRUE(ts_.cell(2).alive());
  EXPECT_EQ(ts_.hive->agreement().false_alerts(), 1u);
}

TEST_F(FailureRecoveryTest, AccuserVotedDownTwiceIsDeclaredCorrupt) {
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ts_.hive->HandleAlert(ctx, 0, 2, HintReason::kClockStale);
  EXPECT_TRUE(ts_.cell(0).alive());
  ts_.hive->HandleAlert(ctx, 0, 2, HintReason::kClockStale);
  // Section 4.3: same alert twice, voted down both times -> the accuser is
  // considered corrupt by the other cells.
  EXPECT_FALSE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(2).alive());
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
}

// --- Edge cases the fault campaign hits first: overlapping failures. ---

TEST_F(FailureRecoveryTest, SecondFailureDuringRecoveryRound) {
  // Cell 1's node fails at 25 ms; cell 2's node fails ~17 ms later, while
  // detection/recovery of the first failure is typically still in flight.
  // Both failures must end up detected and recovered, every survivor must
  // exit recovery, and containment must hold for cells 0 and 3.
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, 25 * kMillisecond);
  injector.ScheduleNodeFailure(2, 42 * kMillisecond);
  ts_.machine->events().RunUntil(600 * kMillisecond);

  EXPECT_FALSE(ts_.cell(1).alive());
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(1));
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_GE(ts_.hive->recovery().recoveries_run(), 2);
  for (CellId c : {0, 3}) {
    EXPECT_FALSE(ts_.cell(c).in_recovery()) << c;
    EXPECT_TRUE(ts_.cell(c).panic_reason().empty()) << ts_.cell(c).panic_reason();
  }
  // The last recovery round's barriers are ordered.
  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  EXPECT_LE(stats.detect_time, stats.barrier1_time);
  EXPECT_LE(stats.barrier1_time, stats.barrier2_time);
  // Survivors still share files.
  Ctx actx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(
      ts_.cell(0).fs().Create(actx, "/two-down", workloads::PatternData(9, 4096)).ok());
  Ctx bctx = ts_.cell(3).MakeCtx();
  auto handle = ts_.cell(3).fs().Open(bctx, "/two-down");
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> buf(4096);
  EXPECT_TRUE(ts_.cell(3).fs().Read(bctx, *handle, 0, std::span<uint8_t>(buf)).ok());
}

TEST_F(FailureRecoveryTest, TwoFailuresInSameAgreementWindow) {
  // Under voting, two nodes fail in the same clock-monitoring window. The
  // probes must confirm both real failures -- neither alert may be mistaken
  // for a false accusation just because agreement was already busy.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  injector.ScheduleNodeFailure(3, 25 * kMillisecond + 1);
  ts_.machine->events().RunUntil(600 * kMillisecond);

  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_FALSE(ts_.cell(3).alive());
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(3));
  EXPECT_GE(ts_.hive->recovery().recoveries_run(), 2);
  EXPECT_EQ(ts_.hive->agreement().false_alerts(), 0u);
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
}

TEST_F(FailureRecoveryTest, VotedDownStrikesArePerSuspect) {
  // The two-strike rule (section 4.3) is keyed by (accuser, suspect): being
  // voted down once each for two DIFFERENT suspects must not condemn the
  // accuser, but a second strike for the SAME suspect must.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ts_.hive->HandleAlert(ctx, 0, 2, HintReason::kClockStale);
  ts_.hive->HandleAlert(ctx, 0, 3, HintReason::kClockStale);
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_EQ(ts_.hive->agreement().false_alerts(), 2u);
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 0);

  ts_.hive->HandleAlert(ctx, 0, 2, HintReason::kClockStale);
  EXPECT_FALSE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
}

TEST_F(FailureRecoveryTest, PanickedCellMemoryIsCutOff) {
  ts_.cell(1).Panic("test panic");
  // Remote access to the panicked cell's memory traps (table 8.1 cutoff).
  EXPECT_THROW(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(0).FirstCpu(),
                                                      ts_.cell(1).mem_base() + 4096),
               flash::BusError);
}

TEST_F(FailureRecoveryTest, SpareBorrowedFramesDroppedOnceAtRecovery) {
  // Cell 0 borrows a batch of frames from cell 2; the batch leaves spare
  // frames in the allocator's per-home free bucket. When cell 2 then fails,
  // recovery must drop those spares from the pfdat table exactly once (the
  // bucket owns them AND they are borrowed-from-failed extended pfdats, so a
  // naive sweep removes them twice and corrupts the slab arena's free list).
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  AllocConstraints constraints;
  constraints.preferred_cell = 2;
  auto in_use = client.allocator().AllocFrame(ctx, constraints);
  ASSERT_TRUE(in_use.ok());
  ASSERT_EQ((*in_use)->borrowed_from, 2);

  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, ts_.machine->Now() + kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 200 * kMillisecond);
  ASSERT_EQ(ts_.hive->recovery().recoveries_run(), 1);

  // No pfdat borrowed from the failed cell survives on the client.
  client.pfdats().ForEach([&](Pfdat* pfdat) {
    EXPECT_NE(pfdat->borrowed_from, 2) << "frame " << pfdat->frame;
  });
  // A double release would hand the same arena slot to the next two
  // allocations; distinct pfdats prove the free list holds no duplicates.
  Ctx ctx2 = client.MakeCtx();
  auto a = client.allocator().AllocFrame(ctx2);
  auto b = client.allocator().AllocFrame(ctx2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(client.pfdats().FindByFrame((*a)->frame), *a);
  EXPECT_EQ(client.pfdats().FindByFrame((*b)->frame), *b);
}

TEST_F(FailureRecoveryTest, SmpModeHasNoDetection) {
  auto smp = hivetest::BootSmp();
  flash::FaultInjector injector(smp.machine.get(), 1);
  injector.ScheduleNodeFailure(1, 25 * kMillisecond);
  smp.machine->events().RunUntil(300 * kMillisecond);
  // A shared-everything kernel has no containment story: no recovery runs.
  EXPECT_EQ(smp.hive->recovery().recoveries_run(), 0);
}

// --------------------------------------------------------------------------
// Byzantine survivors (DESIGN.md section 9): live-but-erroneous cells.
// --------------------------------------------------------------------------

TEST_F(FailureRecoveryTest, HintReasonNameRoundTrips) {
  for (HintReason reason : kAllHintReasons) {
    HintReason parsed;
    ASSERT_TRUE(HintReasonFromName(HintReasonName(reason), &parsed))
        << HintReasonName(reason);
    EXPECT_EQ(parsed, reason);
  }
  HintReason parsed;
  EXPECT_FALSE(HintReasonFromName("not-a-reason", &parsed));
  EXPECT_FALSE(HintReasonFromName("", &parsed));
}

TEST_F(FailureRecoveryTest, RogueFrozenClockIsExcised) {
  // The cell stays kRunning and answers RPCs, but its clock word freezes.
  // The stale check attaches the frozen value as evidence; every voter
  // re-reads the word and sees it pinned, so the live rogue is confirmed.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  RogueBehavior rogue;
  rogue.active = true;
  rogue.clock_freeze = true;
  ts_.cell(2).SetRogueBehavior(rogue);
  ts_.machine->events().RunUntil(300 * kMillisecond);

  ASSERT_GE(ts_.hive->recovery().recoveries_run(), 1);
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(FailureRecoveryTest, RogueDriftingClockIsExcised) {
  // Half-rate drift never trips the stale check (the word does move); the
  // drift window catches the below-rate advance and voters corroborate it.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  RogueBehavior rogue;
  rogue.active = true;
  rogue.clock_drift = true;
  rogue.clock_drift_divisor = 2;
  ts_.cell(1).SetRogueBehavior(rogue);
  ts_.machine->events().RunUntil(400 * kMillisecond);

  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(1));
  EXPECT_FALSE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(FailureRecoveryTest, MuteVoterTimesOutInsteadOfStallingTheRound) {
  // Cell 3 goes globally silent; a real node failure of cell 2 must still be
  // confirmed by the remaining voters, with cell 3 recorded as a timeout
  // rather than stalling the round forever.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  RogueBehavior rogue;
  rogue.active = true;
  rogue.rpc_silent = true;
  ts_.cell(3).SetRogueBehavior(rogue);
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);

  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_GE(ts_.hive->agreement().vote_timeouts(), 1u);
  // Bounded rounds: the mute voter cost one vote timeout, not a hang.
  EXPECT_LT(ts_.hive->agreement().max_round_cost_ns(), 100 * kMillisecond);
}

TEST_F(FailureRecoveryTest, ContrarianVoterCannotBlockConfirmation) {
  // Cell 1 inverts its votes. Three voters probe a genuinely dead cell 2:
  // the two honest ones outvote the contrarian.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  RogueBehavior rogue;
  rogue.active = true;
  rogue.vote_contrarian = true;
  ts_.cell(1).SetRogueBehavior(rogue);
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts_.machine->events().RunUntil(300 * kMillisecond);

  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(FailureRecoveryTest, GarbageRepliesCorroboratedByVotersOwnNullRpc) {
  // The rogue answers pings, so a classic probe would vote the accuser down.
  // With kRpcReply evidence every voter issues its own null RPC, sees the
  // scribbled payload, and the live rogue is confirmed -- no strikes accrue
  // against the healthy accuser.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  RogueBehavior rogue;
  rogue.active = true;
  rogue.rpc_garbage = true;
  rogue.garbage_seed = 0x5EED;
  ts_.cell(2).SetRogueBehavior(rogue);

  Cell& accuser = ts_.cell(0);
  Ctx ctx = accuser.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(accuser.rpc().Call(ctx, 2, MsgType::kNull, args, &reply).ok());
  bool garbage = false;
  for (uint64_t word : reply.w) {
    garbage = garbage || word != 0;
  }
  ASSERT_TRUE(garbage) << "rogue null reply was clean";

  HintEvidence evidence;
  evidence.structure = EvidenceStructure::kRpcReply;
  accuser.detector().RaiseHintWithEvidence(ctx, 2, HintReason::kInvariantMismatch,
                                           evidence);
  EXPECT_TRUE(ts_.hive->CellConfirmedFailed(2));
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_EQ(ts_.hive->agreement().false_alerts(), 0u);
}

TEST_F(FailureRecoveryTest, UncorroboratedEvidenceIsVotedDownAndCleared) {
  // Cell 0 claims cell 1's clock froze at a bogus value. Voters re-read the
  // healthy clock, fail to corroborate, and vote the accusation down; the
  // single-use evidence is cleared so it cannot back a later hint.
  ts_.hive->agreement().set_mode(AgreementMode::kVoting);
  Cell& accuser = ts_.cell(0);
  Ctx ctx = accuser.MakeCtx();
  HintEvidence evidence;
  evidence.structure = EvidenceStructure::kClockWord;
  evidence.clock_value = 0xDEAD;  // Not the suspect's actual clock value.
  accuser.detector().RaiseHintWithEvidence(ctx, 1, HintReason::kClockStale, evidence);

  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_FALSE(ts_.hive->CellConfirmedFailed(1));
  EXPECT_GE(ts_.hive->agreement().false_alerts(), 1u);
  EXPECT_FALSE(accuser.detector().EvidenceAgainst(1).valid);
}

TEST_F(FailureRecoveryTest, BabbleThrottleMarksFloodingPeer) {
  // A flood of incoming requests from one peer crosses the throttle: the
  // peer is marked a babbler, further requests are rejected, and a
  // kBabbling hint is raised.
  Cell& victim = ts_.cell(0);
  Ctx ctx = victim.MakeCtx();
  FailureDetector& detector = victim.detector();
  ASSERT_FALSE(detector.IsBabbler(1));
  bool rejected = false;
  for (int i = 0; i < FailureDetector::kBabbleThreshold + 10 && !rejected; ++i) {
    rejected = !detector.RecordIncomingRequest(ctx, 1);
  }
  EXPECT_TRUE(rejected);
  EXPECT_TRUE(detector.IsBabbler(1));
  EXPECT_GE(detector.IncomingCount(1), FailureDetector::kBabbleThreshold);
  EXPECT_GE(detector.hints_for(HintReason::kBabbling), 1u);
}

TEST_F(FailureRecoveryTest, TraversalHighWaterMarkTracksWorstWalk) {
  FailureDetector& detector = ts_.cell(0).detector();
  const int before = detector.max_traversal_hops();
  detector.NoteTraversal(7);
  detector.NoteTraversal(3);
  EXPECT_GE(detector.max_traversal_hops(), 7);
  EXPECT_GE(detector.max_traversal_hops(), before);
}

// --- Page salvage and live rejoin (HiveOptions::salvage_pages /
// HiveOptions::live_rejoin). ---

class SalvageTest : public ::testing::Test {
 protected:
  static HiveOptions Options() {
    HiveOptions options;
    options.salvage_pages = true;
    return options;
  }
  SalvageTest() : ts_(hivetest::BootHive(4, 4, Options())) {}

  // Home creates a file; the client imports page 0 writable, which records
  // the export and the checksum baseline at the home. Returns the frame.
  PhysAddr StageWriteExport() {
    Cell& home = ts_.cell(0);
    Ctx hctx = home.MakeCtx();
    EXPECT_TRUE(
        home.fs().Create(hctx, "/salvage", workloads::PatternData(7, 4096)).ok());
    pre_failure_handle_ = *home.fs().Open(hctx, "/salvage");
    Cell& client = ts_.cell(2);
    Ctx cctx = client.MakeCtx();
    auto handle = client.fs().Open(cctx, "/salvage");
    EXPECT_TRUE(handle.ok());
    auto page = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true);
    EXPECT_TRUE(page.ok());
    const PhysAddr frame = (*page)->frame;
    client.fs().ReleasePage(cctx, *page);
    return frame;
  }

  void FailClientAndRecover() {
    flash::FaultInjector injector(ts_.machine.get(), 1);
    injector.ScheduleNodeFailure(2, ts_.machine->Now() + kMillisecond);
    ts_.machine->events().RunUntil(ts_.machine->Now() + 200 * kMillisecond);
    ASSERT_GE(ts_.hive->recovery().recoveries_run(), 1);
  }

  hivetest::TestSystem ts_;
  FileHandle pre_failure_handle_;
};

TEST_F(SalvageTest, CleanWriteExportedPageIsSalvagedNotDiscarded) {
  StageWriteExport();
  FailClientAndRecover();

  // The checksum proof admits the page: the dead client held write
  // permission but provably never used it.
  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  EXPECT_GE(stats.pages_salvaged, 1);
  ASSERT_GE(ts_.hive->recovery().salvage_log().size(), 1u);
  const SalvageRecord& record = ts_.hive->recovery().salvage_log()[0];
  EXPECT_EQ(record.owner, 0);
  EXPECT_TRUE(record.checksum_proof);
  EXPECT_GE(ts_.cell(0).allocator().frames_salvaged(), 1u);
  EXPECT_GE(ts_.cell(0).trace().Count(TraceEvent::kPageSalvaged), 1);

  // No discard means no generation bump: the pre-failure handle still reads
  // the intact data as current.
  Cell& home = ts_.cell(0);
  Ctx ctx = home.MakeCtx();
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(
      home.fs().Read(ctx, pre_failure_handle_, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(7, 4096));
}

TEST_F(SalvageTest, ScribbledWriteExportIsRejectedAndDiscarded) {
  const PhysAddr frame = StageWriteExport();
  // The client uses its hardware write permission before dying: the baseline
  // no longer matches, so the page must be discarded, not adopted.
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(2).FirstCpu(), frame + 8, 0xBAD);
  FailClientAndRecover();

  const RecoveryStats& stats = ts_.hive->recovery().last_stats();
  EXPECT_EQ(stats.pages_salvaged, 0);
  EXPECT_GE(stats.pages_discarded, 1);
  EXPECT_TRUE(ts_.hive->recovery().salvage_log().empty());
  EXPECT_GE(ts_.cell(0).trace().Count(TraceEvent::kSalvageRejected), 1);

  // The discard bumped the generation; a fresh open re-reads clean disk data.
  Cell& home = ts_.cell(0);
  Ctx ctx = home.MakeCtx();
  std::vector<uint8_t> buf(4096);
  EXPECT_EQ(home.fs().Read(ctx, pre_failure_handle_, 0, std::span<uint8_t>(buf)).code(),
            base::StatusCode::kStaleGeneration);
  auto fresh = home.fs().Open(ctx, "/salvage");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(home.fs().Read(ctx, *fresh, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(7, 4096));
}

TEST(LiveRejoinTest, RebootedCellConvergesToFullMemberUnderLiveRejoin) {
  HiveOptions options;
  options.live_rejoin = true;
  hivetest::TestSystem ts = hivetest::BootHive(4, 4, options);
  ts.hive->recovery().auto_reintegrate = true;

  flash::FaultInjector injector(ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts.machine->events().RunUntil(1 * kSecond);

  EXPECT_TRUE(ts.cell(2).alive());
  ASSERT_EQ(ts.hive->recovery().reintegration_log().size(), 1u);
  const ReintegrationRecord& record = ts.hive->recovery().reintegration_log()[0];
  EXPECT_EQ(record.cell, 2);
  EXPECT_GT(record.done_at, record.started_at);
  EXPECT_FALSE(record.re_excised);
  EXPECT_FALSE(record.failed);

  // The rejoined cell is a full member: it serves RPC and file reads under
  // its new incarnation, and survivors reach it without stale replay state.
  Cell& rejoined = ts.cell(2);
  Ctx rctx = rejoined.MakeCtx();
  ASSERT_TRUE(
      rejoined.fs().Create(rctx, "/after-rejoin", workloads::PatternData(5, 4096)).ok());
  Cell& peer = ts.cell(0);
  Ctx pctx = peer.MakeCtx();
  auto handle = peer.fs().Open(pctx, "/after-rejoin");
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(peer.fs().Read(pctx, *handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(5, 4096));
}

}  // namespace
}  // namespace hive
