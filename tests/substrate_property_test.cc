// Additional property sweeps over the substrate: disk model monotonicity,
// careful-reference address validation across the whole range space, RPC
// handler coverage, and event-queue stress.

#include <gtest/gtest.h>

#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/flash/disk.h"
#include "src/flash/event_queue.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

// Disk: for any request mix, latency is positive, transfer time grows with
// size, and sequential streaks beat random access on average.
class DiskPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiskPropertySweep, SequentialBeatsRandom) {
  const uint64_t seed = hivetest::TestSeed(GetParam());
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  flash::Disk seq_disk(seed);
  flash::Disk rand_disk(seed);
  base::Rng rng(seed * 7 + 1);

  Time seq_total = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const Time t = seq_disk.AccessTime(i * 4096, 4096);
    EXPECT_GT(t, 0);
    seq_total += t;
  }
  Time rand_total = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t offset =
        (rng.Below(rand_disk.capacity_bytes() / 4096)) * 4096;
    const Time t = rand_disk.AccessTime(offset, 4096);
    EXPECT_GT(t, 0);
    rand_total += t;
  }
  EXPECT_LT(seq_total, rand_total / 2);
}

TEST_P(DiskPropertySweep, LatencyMonotonicInTransferSize) {
  const uint64_t seed = hivetest::TestSeed(GetParam());
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  flash::Disk a(seed);
  flash::Disk b(seed);
  (void)a.AccessTime(0, 512);
  (void)b.AccessTime(0, 512);
  const Time small = a.AccessTime(512, 4096);
  const Time large = b.AccessTime(512, 64 * 4096);
  EXPECT_GT(large, small);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskPropertySweep, ::testing::Values(1u, 5u, 9u, 13u));

// Careful reference: for any address/alignment combination, out-of-range or
// misaligned accesses are rejected before touching memory, and in-range
// aligned reads succeed.
class CarefulRangeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CarefulRangeSweep, ValidationBeforeAccess) {
  const uint64_t seed = hivetest::TestSeed(GetParam());
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  auto ts = hivetest::BootHive(4, 4, {}, seed);
  Cell& reader = ts.cell(0);
  Cell& target = ts.cell(1);
  base::Rng rng(seed * 13 + 3);

  for (int trial = 0; trial < 200; ++trial) {
    Ctx ctx = reader.MakeCtx();
    CarefulRef careful(&ctx, &ts.machine->mem(), reader.costs(), target.id(),
                       target.mem_base(), target.mem_size());
    // Any address in the machine, any alignment.
    const PhysAddr addr = rng.Below(ts.machine->config().total_memory());
    auto result = careful.Read<uint64_t>(addr);
    const bool in_target = addr >= target.mem_base() &&
                           addr + 8 <= target.mem_base() + target.mem_size();
    const bool aligned = addr % 8 == 0;
    if (in_target && aligned) {
      EXPECT_TRUE(result.ok()) << addr;
    } else {
      EXPECT_EQ(result.status().code(), base::StatusCode::kBadRemoteData) << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CarefulRangeSweep, ::testing::Values(2u, 4u, 6u));

// Every message type the kernel sends has a registered handler on a booted
// cell (catches registration drift when new MsgTypes are added).
TEST(RpcCoverageTest, AllUsedMessageTypesHaveHandlers) {
  auto ts = hivetest::BootHive(4);
  const MsgType used[] = {
      MsgType::kNull,          MsgType::kNullQueued,   MsgType::kPageFault,
      MsgType::kUpgradeWrite,  MsgType::kReleasePage,  MsgType::kOpen,
      MsgType::kReadAhead,     MsgType::kWriteBehind,  MsgType::kWriteBehindBulk,
      MsgType::kSyncFile,      MsgType::kUnlink,       MsgType::kBorrowFrames,
      MsgType::kReturnFrame,   MsgType::kGrantFirewall, MsgType::kRevokeFirewall,
      MsgType::kCowBind,       MsgType::kKillProc,     MsgType::kPing,
      MsgType::kWaxHint,
  };
  for (MsgType type : used) {
    EXPECT_TRUE(ts.cell(1).rpc().HasHandler(type))
        << "no handler for MsgType " << static_cast<int>(type);
  }
  // And serving garbage args must never crash a cell: probe each with empty
  // args (most reject them; none may panic the serving kernel).
  for (MsgType type : used) {
    Ctx ctx = ts.cell(1).MakeCtx();
    RpcArgs args;
    RpcReply reply;
    (void)ts.cell(1).rpc().Serve(ctx, type, args, &reply);
    EXPECT_TRUE(ts.cell(1).alive()) << static_cast<int>(type);
  }
}

// Event queue stress: thousands of interleaved schedules/cancels from within
// callbacks preserve time ordering.
TEST(EventQueueStressTest, InterleavedScheduleCancelKeepsOrder) {
  const uint64_t seed = hivetest::TestSeed(99);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  flash::EventQueue queue;
  base::Rng rng(seed);
  Time last_seen = 0;
  int executed = 0;
  std::vector<flash::EventId> cancellable;

  std::function<void(int)> spawn = [&](int depth) {
    EXPECT_GE(queue.Now(), last_seen);
    last_seen = queue.Now();
    ++executed;
    if (depth <= 0) {
      return;
    }
    for (int i = 0; i < 3; ++i) {
      const Time delay = 1 + static_cast<Time>(rng.Below(1000));
      flash::EventId id =
          queue.ScheduleAfter(delay, [&spawn, depth] { spawn(depth - 1); });
      if (rng.OneIn(4)) {
        cancellable.push_back(id);
      }
    }
    if (!cancellable.empty() && rng.OneIn(2)) {
      queue.Cancel(cancellable.back());
      cancellable.pop_back();
    }
  };

  queue.ScheduleAt(0, [&spawn] { spawn(6); });
  const size_t ran = queue.Run();
  EXPECT_GT(executed, 100);
  EXPECT_EQ(static_cast<size_t>(executed), ran);
  EXPECT_TRUE(queue.empty());
}

// Generation numbers: every dirty-page loss bumps the generation exactly
// once per event, old handles stay broken, fresh handles work, across a
// sweep of loss counts.
class GenerationSweep : public ::testing::TestWithParam<int> {};

TEST_P(GenerationSweep, HandlesTrackGenerations) {
  auto ts = hivetest::BootHive(4);
  Cell& cell = ts.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/gen", workloads::PatternData(1, 4096));
  ASSERT_TRUE(id.ok());

  std::vector<FileHandle> handles;
  for (int loss = 0; loss < GetParam(); ++loss) {
    auto handle = cell.fs().Open(ctx, "/gen");
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
    cell.fs().NoteDirtyPageLost(id->vnode);
  }
  // Every pre-loss handle is stale; only a fresh one works.
  std::vector<uint8_t> buf(128);
  for (const FileHandle& handle : handles) {
    EXPECT_EQ(cell.fs().Read(ctx, handle, 0, std::span<uint8_t>(buf)).code(),
              base::StatusCode::kStaleGeneration);
  }
  auto fresh = cell.fs().Open(ctx, "/gen");
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(cell.fs().Read(ctx, *fresh, 0, std::span<uint8_t>(buf)).ok());
}

INSTANTIATE_TEST_SUITE_P(LossCounts, GenerationSweep, ::testing::Values(1, 2, 5));

}  // namespace
}  // namespace hive
