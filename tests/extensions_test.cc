// Tests for the paper's stated future-work features that this repo
// implements: spanning tasks (section 3.2), process migration (section 3.2),
// the Wax-directed clock hand / pageout daemon (sections 3.2, 5.7), and
// multi-failure recovery.

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/pageout.h"
#include "src/core/spanning_task.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

using workloads::OpBarrier;
using workloads::OpCompute;
using workloads::OpFaultRange;
using workloads::OpTouchMapped;
using workloads::ScriptedBehavior;

class SpanningTaskTest : public ::testing::Test {
 protected:
  SpanningTaskTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(SpanningTaskTest, CreatesOneComponentPerCell) {
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto task = SpanningTask::Create(ctx, ts_.hive.get(), {0, 1, 2, 3}, [](int thread) {
    auto behavior = std::make_unique<ScriptedBehavior>("t" + std::to_string(thread));
    behavior->Add(OpCompute(20 * kMillisecond));
    return behavior;
  });
  ASSERT_TRUE(task.ok());
  EXPECT_EQ((*task)->pids().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ts_.hive->FindProcessCell((*task)->pids()[i]), static_cast<CellId>(i));
  }
  ASSERT_TRUE(ts_.hive->RunUntilDone((*task)->pids(), 60 * kSecond));
  EXPECT_TRUE((*task)->Finished());
}

TEST_F(SpanningTaskTest, MapFileAllKeepsAddressMapsConsistent) {
  Ctx sctx = ts_.cell(1).MakeCtx();
  ASSERT_TRUE(ts_.cell(1).fs()
                  .Create(sctx, "/span", workloads::PatternData(5, 16 * 4096))
                  .ok());

  auto barrier = std::make_shared<UserBarrier>(4);
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto task = SpanningTask::Create(ctx, ts_.hive.get(), {0, 1, 2, 3}, [&](int) {
    auto behavior = std::make_unique<ScriptedBehavior>("mapper");
    behavior->Add(OpBarrier(barrier));  // Wait until the region exists.
    behavior->Add(OpFaultRange(0x7000000, 16, /*write=*/true));
    return behavior;
  });
  ASSERT_TRUE(task.ok());

  // The shared map update is applied to EVERY component.
  ASSERT_TRUE((*task)->MapFileAll(ctx, "/span", 0x7000000, 16 * 4096, true).ok());
  for (size_t i = 0; i < 4; ++i) {
    Cell& cell = ts_.hive->cell(static_cast<CellId>(i));
    Process* proc = cell.sched().FindProcess((*task)->pids()[i]);
    Ctx pctx = cell.MakeCtx();
    auto regions = proc->address_space().ListRegions(pctx);
    ASSERT_EQ(regions.size(), 1u) << i;
    EXPECT_EQ(regions[0].va_start, 0x7000000u);
    EXPECT_EQ(regions[0].data_home, 1);
  }
  // Release the components; all four write-fault the shared region.
  ASSERT_TRUE(ts_.hive->RunUntilDone((*task)->pids(), 60 * kSecond));
  for (ProcId pid : (*task)->pids()) {
    const CellId c = ts_.hive->FindProcessCell(pid);
    EXPECT_EQ(ts_.hive->cell(c).sched().FindProcess(pid)->state(), ProcState::kExited);
  }
}

TEST_F(SpanningTaskTest, KillAllTerminatesEveryComponent) {
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto task = SpanningTask::Create(ctx, ts_.hive.get(), {0, 1, 2, 3}, [](int) {
    auto behavior = std::make_unique<ScriptedBehavior>("long");
    behavior->Add(OpCompute(10 * kSecond));
    return behavior;
  });
  ASSERT_TRUE(task.ok());
  (*task)->KillAll(ctx);
  for (size_t i = 0; i < 4; ++i) {
    Process* proc =
        ts_.hive->cell(static_cast<CellId>(i)).sched().FindProcess((*task)->pids()[i]);
    EXPECT_EQ(proc->state(), ProcState::kKilled) << i;
  }
}

TEST_F(SpanningTaskTest, DiesAsGroupWhenMemberCellFails) {
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto task = SpanningTask::Create(ctx, ts_.hive.get(), {0, 1, 2, 3}, [](int) {
    auto behavior = std::make_unique<ScriptedBehavior>("long");
    behavior->Add(OpCompute(10 * kSecond));
    return behavior;
  });
  ASSERT_TRUE(task.ok());
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 50 * kMillisecond);
  ts_.machine->events().RunUntil(400 * kMillisecond);
  for (size_t i = 0; i < 4; ++i) {
    if (i == 2) {
      continue;  // Died with its cell.
    }
    Process* proc =
        ts_.hive->cell(static_cast<CellId>(i)).sched().FindProcess((*task)->pids()[i]);
    EXPECT_EQ(proc->state(), ProcState::kKilled) << i;
  }
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(MigrationTest, BehaviorResumesOnTargetCell) {
  // A process that computes in two halves; migrate it between them.
  auto behavior = std::make_unique<ScriptedBehavior>("mover");
  behavior->Add(OpCompute(50 * kMillisecond));
  behavior->Add(OpCompute(50 * kMillisecond));
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(pid.ok());

  // Let it run half way, then migrate while it is queued (not mid-slice).
  auto new_pid = std::make_shared<ProcId>(kInvalidProc);
  auto try_migrate = std::make_shared<std::function<void()>>();
  std::function<void()>* retry = try_migrate.get();
  *try_migrate = [this, pid, new_pid, retry] {
    Ctx mctx = ts_.cell(0).MakeCtx();
    auto migrated = ts_.hive->Migrate(mctx, *pid, 3);
    if (migrated.ok()) {
      *new_pid = *migrated;
      return;
    }
    ts_.machine->events().ScheduleAfter(2 * kMillisecond, *retry);
  };
  ts_.machine->events().ScheduleAt(55 * kMillisecond, [try_migrate] { (*try_migrate)(); });

  ts_.machine->events().RunUntil(2 * kSecond);
  ASSERT_NE(*new_pid, kInvalidProc);
  EXPECT_EQ(ts_.hive->FindProcessCell(*new_pid), 3);
  Process* moved = ts_.cell(3).sched().FindProcess(*new_pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state(), ProcState::kExited);  // Finished the second half.
  // The origin component was torn down as "migrated".
  Process* old_proc = ts_.cell(0).sched().FindProcess(*pid);
  EXPECT_EQ(old_proc->state(), ProcState::kKilled);
  EXPECT_NE(old_proc->exit_reason.find("migrated"), std::string::npos);
}

TEST_F(MigrationTest, MigratedProcessKeepsAnonPagesViaCowTree) {
  // The process creates anon data on cell 0, migrates to cell 2, and must
  // still read that data (through the cross-cell COW tree walk).
  auto behavior = std::make_unique<ScriptedBehavior>("anon-mover");
  behavior->Add(workloads::OpMapAnon(0x3000000, 8 * 4096, true));
  behavior->Add(OpFaultRange(0x3000000, 8, /*write=*/true));
  behavior->Add(OpCompute(40 * kMillisecond));
  // After migration: re-fault the same pages read-only (walks to cell 0).
  behavior->Add(OpFaultRange(0x3000000, 8, /*write=*/false));
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(pid.ok());

  auto new_pid = std::make_shared<ProcId>(kInvalidProc);
  auto try_migrate = std::make_shared<std::function<void()>>();
  std::function<void()>* retry = try_migrate.get();
  *try_migrate = [this, pid, new_pid, retry] {
    Ctx mctx = ts_.cell(0).MakeCtx();
    auto migrated = ts_.hive->Migrate(mctx, *pid, 2);
    if (migrated.ok()) {
      *new_pid = *migrated;
      return;
    }
    ts_.machine->events().ScheduleAfter(2 * kMillisecond, *retry);
  };
  ts_.machine->events().ScheduleAt(25 * kMillisecond, [try_migrate] { (*try_migrate)(); });

  ts_.machine->events().RunUntil(2 * kSecond);
  ASSERT_NE(*new_pid, kInvalidProc);
  Process* moved = ts_.cell(2).sched().FindProcess(*new_pid);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state(), ProcState::kExited);
  // Residual dependency on the origin cell (its anon pages live there).
  EXPECT_NE(moved->dependency_mask() & 1ull, 0u);
}

TEST_F(MigrationTest, MigrateToDeadCellFails) {
  auto behavior = std::make_unique<ScriptedBehavior>("stay");
  behavior->Add(OpCompute(1 * kSecond));
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ts_.machine->FailNode(3);
  Ctx mctx = ts_.cell(0).MakeCtx();
  EXPECT_EQ(ts_.hive->Migrate(mctx, *pid, 3).status().code(),
            base::StatusCode::kCellFailed);
}

class PageoutTest : public ::testing::Test {
 protected:
  PageoutTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(PageoutTest, NoReclaimAboveLowWater) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  EXPECT_EQ(cell.pageout().Scan(ctx), 0);
}

TEST_F(PageoutTest, ReclaimsCleanFilePagesUnderPressure) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  // Fill the page cache with a big clean file.
  auto id = cell.fs().Create(ctx, "/bigfile", workloads::PatternData(2, 512 * 4096));
  ASSERT_TRUE(id.ok());
  for (uint64_t p = 0; p < 512; ++p) {
    auto got = cell.fs().GetPageLocal(ctx, id->vnode, p, false);
    ASSERT_TRUE(got.ok());
    (*got)->refcount--;
  }
  // Drain free frames below the low-water mark.
  AllocConstraints constraints;
  constraints.kernel_internal = true;
  while (cell.allocator().free_frames() >= PageoutDaemon::kLowWaterFrames) {
    ASSERT_TRUE(cell.allocator().AllocFrame(ctx, constraints).ok());
  }
  const size_t before = cell.allocator().free_frames();
  const int freed = cell.pageout().Scan(ctx);
  EXPECT_GT(freed, 0);
  EXPECT_GT(cell.allocator().free_frames(), before);
}

TEST_F(PageoutTest, DirtyPagesWrittenBackBeforeReclaim) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/dirtyfile", {});
  ASSERT_TRUE(id.ok());
  auto handle = cell.fs().Open(ctx, "/dirtyfile");
  const auto data = workloads::PatternData(3, 64 * 4096);
  ASSERT_TRUE(cell.fs().Write(ctx, *handle, 0, std::span<const uint8_t>(data)).ok());

  AllocConstraints constraints;
  constraints.kernel_internal = true;
  while (cell.allocator().free_frames() >= PageoutDaemon::kLowWaterFrames) {
    ASSERT_TRUE(cell.allocator().AllocFrame(ctx, constraints).ok());
  }
  (void)cell.pageout().Scan(ctx, 1024);
  EXPECT_GT(cell.pageout().dirty_writebacks(), 0u);
  // The data survived on disk.
  const Vnode* vnode = cell.fs().FindVnode(id->vnode);
  ASSERT_GE(vnode->disk_image.size(), data.size());
  std::vector<uint8_t> disk(vnode->disk_image.begin(),
                            vnode->disk_image.begin() + static_cast<int64_t>(data.size()));
  EXPECT_EQ(workloads::Checksum(disk), workloads::Checksum(data));
}

TEST_F(PageoutTest, ReclaimedPageRefetchesCorrectly) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/refetch", workloads::PatternData(4, 16 * 4096));
  ASSERT_TRUE(id.ok());
  auto handle = cell.fs().Open(ctx, "/refetch");
  std::vector<uint8_t> buf(16 * 4096);
  ASSERT_TRUE(cell.fs().Read(ctx, *handle, 0, std::span<uint8_t>(buf)).ok());

  AllocConstraints constraints;
  constraints.kernel_internal = true;
  while (cell.allocator().free_frames() >= PageoutDaemon::kLowWaterFrames) {
    ASSERT_TRUE(cell.allocator().AllocFrame(ctx, constraints).ok());
  }
  (void)cell.pageout().Scan(ctx, 4096);
  // Read again: pages refetch from disk with identical contents.
  ASSERT_TRUE(cell.fs().Read(ctx, *handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(4, 16 * 4096));
}

class MultiFailureTest : public ::testing::Test {
 protected:
  MultiFailureTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(MultiFailureTest, TwoSequentialFailuresBothRecovered) {
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, 30 * kMillisecond);
  injector.ScheduleNodeFailure(3, 400 * kMillisecond);
  ts_.machine->events().RunUntil(1 * kSecond);
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 2);
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_FALSE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(2).alive());
  EXPECT_FALSE(ts_.cell(3).alive());
}

TEST_F(MultiFailureTest, SimultaneousFailuresEventuallyBothConfirmed) {
  flash::FaultInjector injector(ts_.machine.get(), 2);
  injector.ScheduleNodeFailure(1, 30 * kMillisecond);
  injector.ScheduleNodeFailure(2, 30 * kMillisecond + 100);  // Same tick window.
  ts_.machine->events().RunUntil(1 * kSecond);
  EXPECT_FALSE(ts_.cell(1).alive());
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
  EXPECT_GE(ts_.hive->recovery().recoveries_run(), 2);
  // Survivors keep functioning.
  Ctx ctx = ts_.cell(0).MakeCtx();
  EXPECT_TRUE(ts_.cell(0).fs().Create(ctx, "/after2", workloads::PatternData(1, 4096)).ok());
}

TEST_F(MultiFailureTest, OnlyOneLiveCellLeftStillStable) {
  flash::FaultInjector injector(ts_.machine.get(), 3);
  injector.ScheduleNodeFailure(0, 30 * kMillisecond);
  injector.ScheduleNodeFailure(1, 300 * kMillisecond);
  injector.ScheduleNodeFailure(2, 600 * kMillisecond);
  ts_.machine->events().RunUntil(2 * kSecond);
  EXPECT_TRUE(ts_.cell(3).alive());
  EXPECT_EQ(ts_.hive->LiveCells().size(), 1u);
  Ctx ctx = ts_.cell(3).MakeCtx();
  EXPECT_TRUE(ts_.cell(3).fs().Create(ctx, "/last", workloads::PatternData(9, 4096)).ok());
}

}  // namespace
}  // namespace hive

namespace hive {
namespace {

TEST(NumaPlacementTest, WritableExportMigratesPageNearClient) {
  auto machine = std::make_unique<flash::Machine>(hivetest::SmallConfig(), 55);
  HiveOptions options;
  options.num_cells = 4;
  options.numa_placement = true;
  HiveSystem hive(machine.get(), options);
  hive.Boot();

  Cell& home = hive.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/numa", workloads::PatternData(6, 4 * 4096));
  ASSERT_TRUE(id.ok());
  // Warm the home cache (pages in home frames initially).
  for (uint64_t p = 0; p < 4; ++p) {
    auto got = home.fs().GetPageLocal(hctx, id->vnode, p, false);
    ASSERT_TRUE(got.ok());
    (*got)->refcount--;
  }

  Cell& client = hive.cell(3);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/numa");
  ASSERT_TRUE(handle.ok());
  auto pfdat = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true);
  ASSERT_TRUE(pfdat.ok());
  // The page was migrated into the client's own memory (section 5.5: loaned
  // out and imported back through the pre-existing pfdat).
  EXPECT_EQ(hive.CellOfAddr((*pfdat)->frame), 3);
  EXPECT_FALSE((*pfdat)->extended);  // Reused regular pfdat of the loaned frame.
  // The client's store is local and permitted.
  machine->mem().WriteValue<uint64_t>(client.FirstCpu(), (*pfdat)->frame, 42);
  // The data home still serves the page (its hash points at the new frame),
  // and the contents survived the migration.
  std::vector<uint8_t> buf(4096);
  Ctx rctx = home.MakeCtx();
  auto hh = home.fs().Open(rctx, "/numa");
  ASSERT_TRUE(home.fs().Read(rctx, *hh, 4096, std::span<uint8_t>(buf)).ok());
  const auto expect = workloads::PatternData(6, 2 * 4096);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), expect.begin() + 4096));
}

TEST(NumaPlacementTest, OffByDefaultKeepsPagesAtHome) {
  auto ts = hivetest::BootHive(4);
  Cell& home = ts.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/nonuma", workloads::PatternData(7, 4096));
  ASSERT_TRUE(id.ok());
  Cell& client = ts.cell(2);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/nonuma");
  auto pfdat = client.fs().GetPage(cctx, *handle, 0, true);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_EQ(ts.hive->CellOfAddr((*pfdat)->frame), 1);
}

}  // namespace
}  // namespace hive
