// Tests for the hive_serve soak engine: SLO accounting, fault-plan coverage,
// graceful degradation, determinism across sim-thread counts, and the seeded
// sensitivity bugs that prove the SLO oracles can trip.

#include "src/serve/serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>

#include "src/campaign/scenario.h"
#include "src/core/types.h"

namespace serve {
namespace {

ServeOptions SmokeOptions(hive::Time duration_ns = 60 * hive::kSecond) {
  ServeOptions options;
  options.smoke = true;
  options.duration_ns = duration_ns;
  return options;
}

TEST(ServeTest, SoakMeetsSlosUnderFullFaultRotation) {
  const ServeResult result = RunSoak(SmokeOptions());
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? std::string("no violations")
                                   : result.violations.front());
  EXPECT_GT(result.submitted, 1000u);
  EXPECT_GT(result.completed, 1000u);
  EXPECT_EQ(result.hung, 0u);
  EXPECT_GT(result.latency.count(), 0u);
  EXPECT_EQ(result.latency.count(), result.completed);
  // The soak ran under continuous fault pressure, not a quiet machine.
  EXPECT_GT(result.episodes.size(), 10u);
  EXPECT_GT(result.episodes_landed, 10u);
  EXPECT_GT(result.requests_per_fault, 1.0);
}

TEST(ServeTest, FaultPlanCoversEveryFamily) {
  const ServeResult result = RunSoak(SmokeOptions());
  ASSERT_EQ(result.per_family.size(), std::size(campaign::kAllFaultKinds));
  for (size_t i = 0; i < result.per_family.size(); ++i) {
    EXPECT_GE(result.per_family[i], 1u)
        << "family never landed: "
        << campaign::FaultKindName(campaign::kAllFaultKinds[i]);
  }
}

TEST(ServeTest, RecoveryEpisodesAndAvailabilityAccounted) {
  const ServeResult result = RunSoak(SmokeOptions());
  // Node failures and reboot storms force real recoveries; each one must
  // leave a per-episode duration, and the victims' downtime must dent (but
  // not demolish) their availability windows.
  EXPECT_GT(result.recoveries_run, 0);
  EXPECT_GT(result.reintegrations, 0);
  ASSERT_FALSE(result.recovery_durations.empty());
  for (hive::Time d : result.recovery_durations) {
    EXPECT_GT(d, 0);
  }
  ASSERT_EQ(result.cells.size(), 4u);
  double total_down = 0;
  for (const ServeCellSummary& cell : result.cells) {
    EXPECT_LE(cell.availability, 1.0);
    EXPECT_GE(cell.availability, result.options.availability_floor);
    total_down += static_cast<double>(cell.down_ns + cell.suspended_ns);
  }
  EXPECT_GT(total_down, 0.0);
  EXPECT_LT(result.availability_min, 1.0);
  // Human-readable report carries all three tables.
  EXPECT_NE(result.report.find("Hive system state"), std::string::npos);
  EXPECT_NE(result.report.find("Recovery episodes"), std::string::npos);
  EXPECT_NE(result.report.find("Service SLO summary"), std::string::npos);
}

TEST(ServeTest, FingerprintIndependentOfSimThreads) {
  ServeOptions serial = SmokeOptions(20 * hive::kSecond);
  serial.sim_threads = 1;
  ServeOptions parallel = SmokeOptions(20 * hive::kSecond);
  parallel.sim_threads = 3;
  const ServeResult a = RunSoak(serial);
  const ServeResult b = RunSoak(parallel);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.episodes.size(), b.episodes.size());
  EXPECT_EQ(a.report, b.report);
}

TEST(ServeTest, DifferentSeedsDiverge) {
  ServeOptions one = SmokeOptions(20 * hive::kSecond);
  ServeOptions two = SmokeOptions(20 * hive::kSecond);
  two.seed = 2;
  EXPECT_NE(RunSoak(one).fingerprint, RunSoak(two).fingerprint);
}

TEST(ServeTest, TinyWatermarkShedsInsteadOfQueueing) {
  ServeOptions options = SmokeOptions(20 * hive::kSecond);
  options.admit_runq_watermark = 2;
  const ServeResult result = RunSoak(options);
  EXPECT_GT(result.shed, 0u);
  uint64_t per_cell_shed = 0;
  size_t max_runnable = 0;
  for (const ServeCellSummary& cell : result.cells) {
    per_cell_shed += cell.shed;
    max_runnable = std::max(max_runnable, cell.max_runnable);
  }
  EXPECT_EQ(per_cell_shed, result.shed);
  // Shedding at the door keeps the run queues near the watermark; the only
  // processes above it are ones already admitted (children of fork bursts
  // run on the home cell without re-admission).
  EXPECT_GT(max_runnable, 0u);
}

TEST(ServeTest, NoShedBugTripsLatencySlo) {
  ServeOptions options = SmokeOptions();
  options.bug = "no_shed";
  const ServeResult result = RunSoak(options);
  EXPECT_FALSE(result.ok());
  bool latency_tripped = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("latency-p999") != std::string::npos) {
      latency_tripped = true;
    }
  }
  EXPECT_TRUE(latency_tripped);
  // With admission control off, nothing is shed.
  EXPECT_EQ(result.shed, 0u);
}

TEST(ServeTest, SlowRecoveryBugTripsRecoverySlo) {
  ServeOptions options = SmokeOptions(10 * hive::kSecond);
  options.bug = "slow_recovery";
  const ServeResult result = RunSoak(options);
  EXPECT_FALSE(result.ok());
  bool recovery_tripped = false;
  for (const std::string& violation : result.violations) {
    if (violation.find("recovery-time") != std::string::npos) {
      recovery_tripped = true;
    }
  }
  EXPECT_TRUE(recovery_tripped);
}

}  // namespace
}  // namespace serve
