// Single-system-image features (paper section 3.3): the globally coherent
// file name space (create/open/unlink/rename/list from any cell),
// distributed process groups, and cross-cell signal delivery.

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

using workloads::OpCompute;
using workloads::ScriptedBehavior;

class SingleSystemTest : public ::testing::Test {
 protected:
  SingleSystemTest() : ts_(hivetest::BootHive(4)) {}

  ProcId SpawnBusy(CellId cell, int64_t group = -1) {
    auto behavior = std::make_unique<ScriptedBehavior>("busy");
    behavior->Add(OpCompute(10 * kSecond));
    Ctx ctx = ts_.cell(cell).MakeCtx();
    auto pid = ts_.hive->Fork(ctx, cell, std::move(behavior), group);
    EXPECT_TRUE(pid.ok());
    return *pid;
  }

  hivetest::TestSystem ts_;
};

TEST_F(SingleSystemTest, UnlinkLocalFile) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/u1", workloads::PatternData(1, 4096));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cell.fs().Unlink(ctx, "/u1").ok());
  EXPECT_EQ(ts_.hive->LookupPath("/u1").status().code(), base::StatusCode::kNotFound);
  EXPECT_EQ(cell.fs().FindVnode(id->vnode), nullptr);
  EXPECT_EQ(cell.fs().Open(ctx, "/u1").status().code(), base::StatusCode::kNotFound);
}

TEST_F(SingleSystemTest, UnlinkFromAnotherCell) {
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/u2", workloads::PatternData(2, 8192));
  ASSERT_TRUE(id.ok());
  // Warm the home's cache so unlink also has pages to drop.
  auto warm = home.fs().GetPageLocal(hctx, id->vnode, 0, false);
  ASSERT_TRUE(warm.ok());
  (*warm)->refcount--;

  Cell& other = ts_.cell(3);
  Ctx octx = other.MakeCtx();
  ASSERT_TRUE(other.fs().Unlink(octx, "/u2").ok());
  EXPECT_EQ(home.fs().FindVnode(id->vnode), nullptr);
  EXPECT_EQ(other.fs().Open(octx, "/u2").status().code(), base::StatusCode::kNotFound);
}

TEST_F(SingleSystemTest, UnlinkFreesCachedFrames) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/u3", workloads::PatternData(3, 32 * 4096));
  ASSERT_TRUE(id.ok());
  for (uint64_t p = 0; p < 32; ++p) {
    auto got = cell.fs().GetPageLocal(ctx, id->vnode, p, false);
    ASSERT_TRUE(got.ok());
    (*got)->refcount--;
  }
  const size_t free_before = cell.allocator().free_frames();
  ASSERT_TRUE(cell.fs().Unlink(ctx, "/u3").ok());
  EXPECT_EQ(cell.allocator().free_frames(), free_before + 32);
}

TEST_F(SingleSystemTest, RenameKeepsContents) {
  Cell& cell = ts_.cell(2);
  Ctx ctx = cell.MakeCtx();
  ASSERT_TRUE(cell.fs().Create(ctx, "/old", workloads::PatternData(4, 4096)).ok());
  ASSERT_TRUE(cell.fs().Rename(ctx, "/old", "/new").ok());
  EXPECT_EQ(ts_.hive->LookupPath("/old").status().code(), base::StatusCode::kNotFound);
  // Open and verify from yet another cell.
  Cell& reader = ts_.cell(0);
  Ctx rctx = reader.MakeCtx();
  auto handle = reader.fs().Open(rctx, "/new");
  ASSERT_TRUE(handle.ok());
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(reader.fs().Read(rctx, *handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(4, 4096));
}

TEST_F(SingleSystemTest, RenameToExistingPathFails) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  ASSERT_TRUE(cell.fs().Create(ctx, "/a", {}).ok());
  ASSERT_TRUE(cell.fs().Create(ctx, "/b", {}).ok());
  EXPECT_EQ(cell.fs().Rename(ctx, "/a", "/b").code(), base::StatusCode::kAlreadyExists);
}

TEST_F(SingleSystemTest, ListPathsByPrefix) {
  Ctx ctx0 = ts_.cell(0).MakeCtx();
  Ctx ctx1 = ts_.cell(1).MakeCtx();
  ASSERT_TRUE(ts_.cell(0).fs().Create(ctx0, "/dir/a", {}).ok());
  ASSERT_TRUE(ts_.cell(1).fs().Create(ctx1, "/dir/b", {}).ok());
  ASSERT_TRUE(ts_.cell(0).fs().Create(ctx0, "/other/c", {}).ok());
  const auto listing = ts_.hive->ListPaths("/dir/");
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0], "/dir/a");
  EXPECT_EQ(listing[1], "/dir/b");
}

TEST_F(SingleSystemTest, KillLocalProcess) {
  const ProcId pid = SpawnBusy(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(ts_.hive->Kill(ctx, pid).ok());
  EXPECT_EQ(ts_.cell(0).sched().FindProcess(pid)->state(), ProcState::kKilled);
}

TEST_F(SingleSystemTest, KillRemoteProcessViaRpc) {
  const ProcId pid = SpawnBusy(3);
  Ctx ctx = ts_.cell(0).MakeCtx();  // Signal sent from cell 0.
  ASSERT_TRUE(ts_.hive->Kill(ctx, pid).ok());
  EXPECT_EQ(ts_.cell(3).sched().FindProcess(pid)->state(), ProcState::kKilled);
  EXPECT_GT(ctx.elapsed, 7000);  // Paid an RPC.
}

TEST_F(SingleSystemTest, KillUnknownPidIsNotFound) {
  Ctx ctx = ts_.cell(0).MakeCtx();
  EXPECT_EQ(ts_.hive->Kill(ctx, 424242).code(), base::StatusCode::kNotFound);
}

TEST_F(SingleSystemTest, SignalGroupKillsAcrossCells) {
  const int64_t group = ts_.hive->NextTaskGroup();
  std::vector<ProcId> members;
  for (CellId c = 0; c < 4; ++c) {
    members.push_back(SpawnBusy(c, group));
  }
  const ProcId outsider = SpawnBusy(1);  // Not in the group.

  Ctx ctx = ts_.cell(2).MakeCtx();
  EXPECT_EQ(ts_.hive->SignalGroup(ctx, group), 4);
  for (CellId c = 0; c < 4; ++c) {
    EXPECT_EQ(ts_.cell(c).sched().FindProcess(members[static_cast<size_t>(c)])->state(),
              ProcState::kKilled)
        << c;
  }
  EXPECT_NE(ts_.cell(1).sched().FindProcess(outsider)->state(), ProcState::kKilled);
}

TEST_F(SingleSystemTest, SignalGroupSkipsMembersOnDeadCells) {
  const int64_t group = ts_.hive->NextTaskGroup();
  std::vector<ProcId> members;
  for (CellId c = 0; c < 4; ++c) {
    members.push_back(SpawnBusy(c, group));
  }
  ts_.machine->FailNode(2);
  Ctx ctx = ts_.cell(0).MakeCtx();
  // Member on cell 2 is unreachable; the other three die. (The group-kill of
  // recovery would get the stragglers once detection runs.)
  EXPECT_EQ(ts_.hive->SignalGroup(ctx, group), 3);
}

TEST_F(SingleSystemTest, GroupMembershipTracked) {
  const int64_t group = ts_.hive->NextTaskGroup();
  const ProcId a = SpawnBusy(0, group);
  const ProcId b = SpawnBusy(2, group);
  const auto& members = ts_.hive->GroupMembers(group);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], a);
  EXPECT_EQ(members[1], b);
  EXPECT_EQ(ts_.hive->GroupCells(group), 0b101ull);
}

}  // namespace
}  // namespace hive
