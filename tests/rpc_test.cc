#include "src/core/rpc.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : ts_(hivetest::BootHive(4)) {}

  hivetest::TestSystem ts_;
};

TEST_F(RpcTest, NullRpcLatencyMatchesPaper) {
  // Section 6: minimum end-to-end null RPC latency is 7.2 us.
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_EQ(ctx.elapsed, 7200);
}

TEST_F(RpcTest, FatStubRpcIsAbout9_6Us) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  CallOptions options;
  options.fat_stub = true;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply, options).ok());
  EXPECT_EQ(ctx.elapsed, 9600);
}

TEST_F(RpcTest, QueuedNullRpcIs34Us) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNullQueued, args, &reply).ok());
  // Initial interrupt-level RPC + queued service + completion: ~34 us.
  EXPECT_GE(ctx.elapsed, 26000);
  EXPECT_LE(ctx.elapsed, 36000);
}

TEST_F(RpcTest, CallToDeadCellTimesOutWithSpinCost) {
  ts_.machine->FailNode(2);
  // Run one tick so nothing else interferes; the RPC itself detects death.
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  base::Status status = client.rpc().Call(ctx, 2, MsgType::kNull, args, &reply);
  EXPECT_EQ(status.code(), base::StatusCode::kTimeout);
  // 50 us client spin + context switch.
  EXPECT_GE(ctx.elapsed, 60000);
  EXPECT_EQ(client.rpc().stats().timeouts, 1u);
}

TEST_F(RpcTest, TimeoutRaisesFailureHintAndTriggersRecovery) {
  ts_.machine->FailNode(2);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  (void)client.rpc().Call(ctx, 2, MsgType::kNull, args, &reply);
  // The hint triggered agreement (oracle) and recovery.
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(RpcTest, IntracellCallSkipsSips) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 0, MsgType::kNull, args, &reply).ok());
  EXPECT_LT(ctx.elapsed, 7200);
}

TEST_F(RpcTest, UnknownMessageTypeIsNotFound) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  EXPECT_EQ(client.rpc().Call(ctx, 1, MsgType::kForkRemote, args, &reply).code(),
            base::StatusCode::kNotFound);
}

TEST_F(RpcTest, ServerOccupancyAdvances) {
  Cell& client = ts_.cell(0);
  const int server_cpu = ts_.cell(1).FirstCpu();
  const Time before = ts_.machine->cpu(server_cpu).free_at;
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_GT(ts_.machine->cpu(server_cpu).free_at, before);
}

TEST_F(RpcTest, PingHandlerRegistered) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  EXPECT_TRUE(client.rpc().Call(ctx, 3, MsgType::kPing, args, &reply).ok());
}

}  // namespace
}  // namespace hive
