#include "src/core/rpc.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/flash/fault_injector.h"
#include "src/flash/sips.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : ts_(hivetest::BootHive(4)) {}

  // Installs a message-fault plan with the given per-mille rates over
  // [0, end) on every route.
  flash::MessageFaultModel* InstallPlan(uint32_t drop_pm, uint32_t dup_pm,
                                        uint32_t corrupt_pm, Time end) {
    flash::Sips& sips = ts_.machine->sips();
    if (sips.fault_model() == nullptr) {
      sips.EnableFaultModel(7);
    }
    flash::MessageFaultPlan plan;
    plan.start = 0;
    plan.end = end;
    plan.drop_pm = drop_pm;
    plan.dup_pm = dup_pm;
    plan.corrupt_pm = corrupt_pm;
    sips.fault_model()->AddPlan(plan);
    return sips.fault_model();
  }

  hivetest::TestSystem ts_;
};

TEST_F(RpcTest, NullRpcLatencyMatchesPaper) {
  // Section 6: minimum end-to-end null RPC latency is 7.2 us.
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_EQ(ctx.elapsed, 7200);
}

TEST_F(RpcTest, FatStubRpcIsAbout9_6Us) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  CallOptions options;
  options.fat_stub = true;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply, options).ok());
  EXPECT_EQ(ctx.elapsed, 9600);
}

TEST_F(RpcTest, QueuedNullRpcIs34Us) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNullQueued, args, &reply).ok());
  // Initial interrupt-level RPC + queued service + completion: ~34 us.
  EXPECT_GE(ctx.elapsed, 26000);
  EXPECT_LE(ctx.elapsed, 36000);
}

TEST_F(RpcTest, CallToDeadCellTimesOutWithSpinCost) {
  ts_.machine->FailNode(2);
  // Run one tick so nothing else interferes; the RPC itself detects death.
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  base::Status status = client.rpc().Call(ctx, 2, MsgType::kNull, args, &reply);
  EXPECT_EQ(status.code(), base::StatusCode::kTimeout);
  // 50 us client spin + context switch.
  EXPECT_GE(ctx.elapsed, 60000);
  EXPECT_EQ(client.rpc().stats().timeouts, 1u);
}

TEST_F(RpcTest, TimeoutRaisesFailureHintAndTriggersRecovery) {
  ts_.machine->FailNode(2);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  (void)client.rpc().Call(ctx, 2, MsgType::kNull, args, &reply);
  // The hint triggered agreement (oracle) and recovery.
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

TEST_F(RpcTest, IntracellCallSkipsSips) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 0, MsgType::kNull, args, &reply).ok());
  EXPECT_LT(ctx.elapsed, 7200);
}

TEST_F(RpcTest, UnknownMessageTypeIsNotFound) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  EXPECT_EQ(client.rpc().Call(ctx, 1, MsgType::kForkRemote, args, &reply).code(),
            base::StatusCode::kNotFound);
}

TEST_F(RpcTest, ServerOccupancyAdvances) {
  Cell& client = ts_.cell(0);
  const int server_cpu = ts_.cell(1).FirstCpu();
  const Time before = ts_.machine->cpu(server_cpu).free_at;
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_GT(ts_.machine->cpu(server_cpu).free_at, before);
}

TEST_F(RpcTest, PingHandlerRegistered) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  EXPECT_TRUE(client.rpc().Call(ctx, 3, MsgType::kPing, args, &reply).ok());
}

TEST_F(RpcTest, DeadCellHintedOncePerAgreementWindow) {
  // Regression: repeated calls (or retries) against a dead peer must raise
  // exactly one failure-detector hint per agreement window, not one per call.
  ts_.machine->FailNode(2);
  Cell& client = ts_.cell(0);
  RpcArgs args;
  RpcReply reply;
  for (int i = 0; i < 3; ++i) {
    Ctx ctx = client.MakeCtx();
    EXPECT_EQ(client.rpc().Call(ctx, 2, MsgType::kNull, args, &reply).code(),
              base::StatusCode::kTimeout);
  }
  EXPECT_EQ(client.detector().hints_raised(), 1u);
  EXPECT_EQ(client.rpc().stats().timeouts, 3u);
  // The one hint was enough: agreement confirmed the death and recovery ran.
  EXPECT_EQ(ts_.hive->recovery().recoveries_run(), 1);
}

TEST_F(RpcTest, RetryRecoversFromLostRequest) {
  // 100% drop, but only during a window that covers the first attempt; the
  // first backoff (>= 100 us) lands the retry after the window closes.
  InstallPlan(/*drop_pm=*/1000, /*dup_pm=*/0, /*corrupt_pm=*/0,
              /*end=*/ts_.machine->Now() + 120 * kMicrosecond);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_EQ(client.rpc().stats().retries, 1u);
  EXPECT_EQ(client.rpc().stats().timeouts, 0u);
  // The lost attempt cost a spin + context switch + backoff on top of the
  // 7.2 us happy path.
  EXPECT_GT(ctx.elapsed, 7200 + 100 * kMicrosecond);
  EXPECT_EQ(client.detector().hints_raised(), 0u);
}

TEST_F(RpcTest, DetectedCorruptionIsRetriedLikeLoss) {
  InstallPlan(/*drop_pm=*/0, /*dup_pm=*/0, /*corrupt_pm=*/1000,
              /*end=*/ts_.machine->Now() + 120 * kMicrosecond);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_GE(client.rpc().stats().corrupt_lost, 1u);
  EXPECT_EQ(client.rpc().stats().retries, 1u);
}

TEST_F(RpcTest, DuplicateMutationSuppressedByReplayCache) {
  // Every hop duplicated: the server sees the borrow request twice but must
  // execute it exactly once.
  InstallPlan(/*drop_pm=*/0, /*dup_pm=*/1000, /*corrupt_pm=*/0,
              /*end=*/ts_.machine->Now() + kSecond);
  Cell& client = ts_.cell(0);
  Cell& server = ts_.cell(1);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  args.w[0] = 0;  // Borrowing client.
  args.w[1] = 1;  // One frame.
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kBorrowFrames, args, &reply).ok());
  EXPECT_EQ(reply.w[0], 1u);
  EXPECT_GE(server.rpc().stats().duplicates_suppressed, 1u);
  EXPECT_EQ(server.rpc().stats().executed_mutations, 1u);
  EXPECT_EQ(server.rpc().stats().at_most_once_violations, 0u);
  EXPECT_EQ(client.rpc().stats().acked_mutations, 1u);
}

TEST_F(RpcTest, DisablingSuppressionReExecutesAndCountsViolations) {
  InstallPlan(/*drop_pm=*/0, /*dup_pm=*/1000, /*corrupt_pm=*/0,
              /*end=*/ts_.machine->Now() + kSecond);
  Cell& client = ts_.cell(0);
  Cell& server = ts_.cell(1);
  server.rpc().set_duplicate_suppression(false);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  args.w[0] = 0;
  args.w[1] = 1;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kBorrowFrames, args, &reply).ok());
  // The duplicated request re-ran the non-idempotent handler.
  EXPECT_GE(server.rpc().stats().at_most_once_violations, 1u);
  EXPECT_GE(server.rpc().stats().executed_mutations, 2u);
  EXPECT_EQ(server.rpc().stats().duplicates_suppressed, 0u);
}

TEST_F(RpcTest, RetryExhaustionQuarantinesPeerAndFailsFast) {
  // A permanently lossy path to a healthy peer: the call burns all attempts,
  // hints once, and the vetoed accusation puts the peer on probation.
  InstallPlan(/*drop_pm=*/1000, /*dup_pm=*/0, /*corrupt_pm=*/0,
              /*end=*/ts_.machine->Now() + 10 * kSecond);
  Cell& client = ts_.cell(0);
  RpcArgs args;
  RpcReply reply;

  Ctx ctx = client.MakeCtx();
  EXPECT_EQ(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).code(),
            base::StatusCode::kTimeout);
  EXPECT_EQ(client.rpc().stats().retries,
            static_cast<uint64_t>(kMaxRpcAttempts - 1));
  EXPECT_EQ(client.detector().hints_raised(), 1u);
  EXPECT_TRUE(ts_.cell(1).alive());  // Agreement refused to kill the peer.
  EXPECT_TRUE(client.rpc().quarantined(1));

  // While quarantined, ordinary traffic fails fast without burning retries.
  Ctx ctx2 = client.MakeCtx();
  EXPECT_EQ(client.rpc().Call(ctx2, 1, MsgType::kNull, args, &reply).code(),
            base::StatusCode::kUnavailable);
  EXPECT_GE(client.rpc().stats().quarantine_fail_fast, 1u);
  EXPECT_EQ(client.rpc().stats().retries,
            static_cast<uint64_t>(kMaxRpcAttempts - 1));
}

TEST_F(RpcTest, PingBypassesQuarantineAndProbationExpiryClearsIt) {
  flash::MessageFaultModel* model =
      InstallPlan(/*drop_pm=*/1000, /*dup_pm=*/0, /*corrupt_pm=*/0,
                  /*end=*/ts_.machine->Now() + 10 * kSecond);
  Cell& client = ts_.cell(0);
  RpcArgs args;
  RpcReply reply;
  Ctx ctx = client.MakeCtx();
  EXPECT_FALSE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());
  ASSERT_TRUE(client.rpc().quarantined(1));

  // The path heals; agreement probes (kPing) bypass the quarantine gate and
  // measure the real path, while ordinary traffic still fails fast.
  model->ClearPlans();
  Ctx pctx = client.MakeCtx();
  EXPECT_TRUE(client.rpc().Call(pctx, 1, MsgType::kPing, args, &reply).ok());
  EXPECT_TRUE(client.rpc().quarantined(1));
  Ctx fctx = client.MakeCtx();
  EXPECT_EQ(client.rpc().Call(fctx, 1, MsgType::kNull, args, &reply).code(),
            base::StatusCode::kUnavailable);

  // After the probation window the next call un-quarantines automatically.
  ts_.machine->events().RunUntil(ts_.machine->Now() + kQuarantineProbationNs +
                                 10 * kMillisecond);
  Ctx cctx = client.MakeCtx();
  EXPECT_TRUE(client.rpc().Call(cctx, 1, MsgType::kNull, args, &reply).ok());
  EXPECT_FALSE(client.rpc().quarantined(1));
}

}  // namespace
}  // namespace hive
