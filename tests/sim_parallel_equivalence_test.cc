// Equivalence oracle for the parallel simulation core: a scenario run with
// N worker threads must be observably indistinguishable from the 1-thread
// run -- byte-identical fingerprint, end time, injection record, trace
// signature, and oracle verdicts -- across seeds and every fault family.
// (On a small container the speedup itself is unmeasurable; equivalence is
// the property CI can actually pin.)

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "tests/test_util.h"

namespace campaign {
namespace {

// Runs `spec` with 1 and 4 simulation threads and asserts every observable
// matches. Returns the fault kinds the spec exercises.
void ExpectThreadCountInvariant(const ScenarioSpec& spec,
                                std::set<FaultKind>* seen) {
  SCOPED_TRACE(spec.ToString());
  for (const FaultSpec& fault : spec.faults) {
    seen->insert(fault.kind);
  }
  RunOptions serial;
  serial.sim_threads = 1;
  RunOptions parallel;
  parallel.sim_threads = 4;
  const ScenarioResult one = RunScenario(spec, serial);
  const ScenarioResult four = RunScenario(spec, parallel);
  EXPECT_EQ(one.fingerprint, four.fingerprint);
  EXPECT_EQ(one.end_time, four.end_time);
  EXPECT_EQ(one.events_run, four.events_run);
  EXPECT_EQ(one.injected, four.injected);
  EXPECT_EQ(one.trace_signature, four.trace_signature);
  EXPECT_EQ(one.excisions, four.excisions);
  EXPECT_EQ(one.pages_salvaged, four.pages_salvaged);
  EXPECT_EQ(one.coverage, four.coverage);
  ASSERT_EQ(one.violations.size(), four.violations.size());
  for (size_t v = 0; v < one.violations.size(); ++v) {
    EXPECT_EQ(one.violations[v].ToString(), four.violations[v].ToString());
  }
  EXPECT_EQ(one.spec.ReproLine(), four.spec.ReproLine());
}

// 12 master seeds; per seed, two default-generator scenarios (the mix that
// draws node failures, addr-map corruptions, wild writes, and false
// accusations) plus one scenario from each restricted generator. The final
// assertion proves the sweep exercised all seven fault families, so a tie
// break or merge-order bug in any family's path cannot hide.
TEST(SimParallelEquivalence, AllFaultFamiliesMatchAcrossThreadCounts) {
  std::set<FaultKind> seen;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("master_seed=" + std::to_string(seed));
    for (uint64_t index = 0; index < 2; ++index) {
      ExpectThreadCountInvariant(GenerateScenario(seed, index), &seen);
    }
    GeneratorOptions message;
    message.message_faults_only = true;
    ExpectThreadCountInvariant(GenerateScenario(seed, 0, message), &seen);
    GeneratorOptions rogue;
    rogue.rogue_only = true;
    ExpectThreadCountInvariant(GenerateScenario(seed, 0, rogue), &seen);
    GeneratorOptions storm;
    storm.reboot_storm_only = true;
    ExpectThreadCountInvariant(GenerateScenario(seed, 0, storm), &seen);
    GeneratorOptions wild;
    wild.wild_write_fixture = true;
    ExpectThreadCountInvariant(GenerateScenario(seed, 0, wild), &seen);
  }
  EXPECT_TRUE(seen.count(FaultKind::kNodeFailure));
  EXPECT_TRUE(seen.count(FaultKind::kAddrMapCorruption));
  EXPECT_TRUE(seen.count(FaultKind::kWildWrite));
  EXPECT_TRUE(seen.count(FaultKind::kFalseAccusation));
  EXPECT_TRUE(seen.count(FaultKind::kMessageFaults));
  EXPECT_TRUE(seen.count(FaultKind::kRogueCell));
  EXPECT_TRUE(seen.count(FaultKind::kRebootStorm));
}

// The acceptance geometry: a 16-cell machine gives the window scheduler 16
// independent bundles per window, the widest fan-out the campaign uses, and
// the result must still be thread-count invariant.
TEST(SimParallelEquivalence, SixteenCellGeometryMatches) {
  std::set<FaultKind> seen;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("master_seed=" + std::to_string(seed));
    ScenarioSpec spec = GenerateScenario(seed, 0);
    spec.num_cells = 16;
    ExpectThreadCountInvariant(spec, &seen);
  }
}

// Thread counts beyond the bundle count (more workers than live cells) and
// odd counts must also be invariant -- the dispatcher clamps internally.
TEST(SimParallelEquivalence, OversubscribedThreadCountsMatch) {
  const uint64_t seed = hivetest::TestSeed(3);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  const ScenarioSpec spec = GenerateScenario(seed, 0);
  RunOptions serial;
  serial.sim_threads = 1;
  const ScenarioResult base = RunScenario(spec, serial);
  for (int threads : {2, 3, 16}) {
    RunOptions run;
    run.sim_threads = threads;
    const ScenarioResult result = RunScenario(spec, run);
    EXPECT_EQ(result.fingerprint, base.fingerprint) << "threads=" << threads;
    EXPECT_EQ(result.end_time, base.end_time) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace campaign
