#include "src/flash/phys_mem.h"

#include <gtest/gtest.h>

#include "src/flash/bus_error.h"
#include "tests/test_util.h"

namespace flash {
namespace {

MachineConfig Config() { return hivetest::SmallConfig(); }

TEST(PhysMemTest, ReadWriteRoundTrip) {
  PhysMem mem(Config());
  mem.WriteValue<uint64_t>(0, 0x1000, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(mem.ReadValue<uint64_t>(0, 0x1000), 0xDEADBEEFCAFEBABEull);
}

TEST(PhysMemTest, MisalignedTypedAccessTraps) {
  PhysMem mem(Config());
  EXPECT_THROW(mem.ReadValue<uint64_t>(0, 0x1001), BusError);
  EXPECT_THROW(mem.WriteValue<uint32_t>(0, 0x1002, 7), BusError);
}

TEST(PhysMemTest, NonPowerOfTwoAccessSizeTraps) {
  PhysMem mem(Config());
  // The bus only performs naturally aligned power-of-two transfers: a
  // 3- or 12-byte "value" must trap even at an address it happens to divide.
  struct ThreeBytes {
    uint8_t b[3];
  };
  struct TwelveBytes {
    uint32_t w[3];
  };
  EXPECT_THROW(mem.ReadValue<ThreeBytes>(0, 0x3000), BusError);
  EXPECT_THROW(mem.WriteValue<TwelveBytes>(0, 0x3000, TwelveBytes{}), BusError);
  try {
    mem.ReadValue<ThreeBytes>(0, 0x3000);
    FAIL();
  } catch (const BusError& e) {
    EXPECT_EQ(e.kind(), BusErrorKind::kMisaligned);
  }
  // Power-of-two sizes at aligned addresses still work.
  mem.WriteValue<uint32_t>(0, 0x3000, 7);
  EXPECT_EQ(mem.ReadValue<uint32_t>(0, 0x3000), 7u);
}

TEST(PhysMemTest, OutOfRangeAccessTraps) {
  PhysMem mem(Config());
  const PhysAddr end = Config().total_memory();
  EXPECT_THROW(mem.ReadValue<uint64_t>(0, end), BusError);
  try {
    mem.ReadValue<uint64_t>(0, end);
    FAIL();
  } catch (const BusError& e) {
    EXPECT_EQ(e.kind(), BusErrorKind::kInvalidAddress);
  }
}

TEST(PhysMemTest, FailedNodeMemoryIsInaccessible) {
  PhysMem mem(Config());
  const PhysAddr node1 = Config().memory_per_node;
  mem.WriteValue<uint64_t>(1, node1, 42);
  mem.FailNode(1);
  EXPECT_THROW(mem.ReadValue<uint64_t>(0, node1), BusError);
  EXPECT_THROW(mem.WriteValue<uint64_t>(0, node1, 1), BusError);
  // The memory fault model: unaffected ranges keep working.
  mem.WriteValue<uint64_t>(0, 0x2000, 7);
  EXPECT_EQ(mem.ReadValue<uint64_t>(0, 0x2000), 7u);
}

TEST(PhysMemTest, CutoffBlocksRemoteButNotLocalAccess) {
  PhysMem mem(Config());
  const PhysAddr node1 = Config().memory_per_node;
  mem.CutOffNode(1);
  // CPU 1 is local to node 1: still works (the panicking kernel itself).
  mem.WriteValue<uint64_t>(1, node1, 42);
  EXPECT_EQ(mem.ReadValue<uint64_t>(1, node1), 42u);
  // CPU 0 is remote: cut off.
  EXPECT_THROW(mem.ReadValue<uint64_t>(0, node1), BusError);
}

TEST(PhysMemTest, RestoreNodeZeroesMemory) {
  PhysMem mem(Config());
  const PhysAddr node1 = Config().memory_per_node;
  mem.WriteValue<uint64_t>(1, node1, 42);
  mem.FailNode(1);
  mem.RestoreNode(1);
  EXPECT_EQ(mem.ReadValue<uint64_t>(0, node1), 0u);
}

TEST(PhysMemTest, FirewallBlocksUnauthorizedWrite) {
  PhysMem mem(Config());
  // Page 0 of node 1, writable only by CPU 1.
  const PhysAddr addr = Config().memory_per_node;
  const Pfn pfn = mem.PfnOfAddr(addr);
  mem.firewall().SetVector(pfn, 1ull << 1, /*requesting_cpu=*/1);

  mem.WriteValue<uint64_t>(1, addr, 1);  // Local CPU: allowed.
  EXPECT_THROW(mem.WriteValue<uint64_t>(0, addr, 2), BusError);
  try {
    mem.WriteValue<uint64_t>(0, addr, 2);
    FAIL();
  } catch (const BusError& e) {
    EXPECT_EQ(e.kind(), BusErrorKind::kFirewall);
  }
  // The wild write was blocked: the original value survives.
  EXPECT_EQ(mem.ReadValue<uint64_t>(1, addr), 1u);
  EXPECT_GT(mem.firewall().writes_denied(), 0u);
}

TEST(PhysMemTest, FirewallDoesNotBlockReads) {
  PhysMem mem(Config());
  const PhysAddr addr = Config().memory_per_node;
  mem.firewall().SetVector(mem.PfnOfAddr(addr), 1ull << 1, 1);
  mem.WriteValue<uint64_t>(1, addr, 99);
  EXPECT_EQ(mem.ReadValue<uint64_t>(0, addr), 99u);  // Remote read is fine.
}

TEST(PhysMemTest, FirewallCheckDisabledAllowsAll) {
  PhysMem mem(Config());
  const PhysAddr addr = Config().memory_per_node;
  mem.firewall().SetVector(mem.PfnOfAddr(addr), 1ull << 1, 1);
  mem.firewall().set_checking_enabled(false);
  mem.WriteValue<uint64_t>(0, addr, 2);  // SMP baseline: no defense.
  EXPECT_EQ(mem.ReadValue<uint64_t>(0, addr), 2u);
}

TEST(PhysMemTest, MultiPageWriteChecksEveryPage) {
  PhysMem mem(Config());
  const PhysAddr addr = Config().memory_per_node + Config().page_size - 8;
  const Pfn second = mem.PfnOfAddr(addr) + 1;
  mem.firewall().SetVector(second, 1ull << 1, 1);  // Deny CPU 0 on page 2.
  std::vector<uint8_t> data(16, 0xAB);
  EXPECT_THROW(mem.Write(0, addr, std::span<const uint8_t>(data)), BusError);
}

TEST(PhysMemTest, DmaWriteCheckedAsNodeProcessor) {
  PhysMem mem(Config());
  const PhysAddr addr = Config().memory_per_node;  // Node 1's memory.
  mem.firewall().SetVector(mem.PfnOfAddr(addr), 1ull << 1, 1);
  std::vector<uint8_t> data(8, 0x55);
  // DMA from node 1's device: allowed (checked as CPU 1).
  mem.DmaWrite(1, addr, std::span<const uint8_t>(data));
  // DMA from node 0's device: firewall trap.
  EXPECT_THROW(mem.DmaWrite(0, addr, std::span<const uint8_t>(data)), BusError);
}

TEST(FirewallTest, OnlyLocalCpuMayChangeBits) {
  PhysMem mem(Config());
  // Changing node 1's firewall from CPU 0 is a kernel bug -> CHECK death.
  EXPECT_DEATH(mem.firewall().SetVector(mem.PfnOfAddr(Config().memory_per_node), 0, 0),
               "only local processors");
}

TEST(FirewallTest, GrantRevokeCpus) {
  PhysMem mem(Config());
  Firewall& fw = mem.firewall();
  const Pfn pfn = 3;
  fw.SetVector(pfn, 1ull << 0, 0);
  EXPECT_TRUE(fw.MayWrite(pfn, 0));
  EXPECT_FALSE(fw.MayWrite(pfn, 2));
  fw.GrantCpus(pfn, 1ull << 2, 0);
  EXPECT_TRUE(fw.MayWrite(pfn, 2));
  fw.RevokeCpus(pfn, 1ull << 2, 0);
  EXPECT_FALSE(fw.MayWrite(pfn, 2));
}

}  // namespace
}  // namespace flash
