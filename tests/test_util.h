// Shared fixtures for Hive tests: a small simulated machine and a booted
// system in each configuration the paper evaluates.

#ifndef HIVE_TESTS_TEST_UTIL_H_
#define HIVE_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "src/core/hive_system.h"
#include "src/flash/machine.h"

namespace hivetest {

// Seed for randomized tests: the HIVE_TEST_SEED environment variable when
// set (so a failure seen elsewhere can be replayed exactly), else `fallback`.
// Pair with SeedTrace so every failure message names the seed it ran with:
//
//   const uint64_t seed = hivetest::TestSeed(GetParam());
//   SCOPED_TRACE(hivetest::SeedTrace(seed));
inline uint64_t TestSeed(uint64_t fallback) {
  if (const char* env = std::getenv("HIVE_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      return value;
    }
  }
  return fallback;
}

inline std::string SeedTrace(uint64_t seed) {
  return "seed=" + std::to_string(seed) + " (replay with HIVE_TEST_SEED=" +
         std::to_string(seed) + ")";
}

inline flash::MachineConfig SmallConfig(int nodes = 4, int cpus_per_node = 1) {
  flash::MachineConfig config;
  config.num_nodes = nodes;
  config.cpus_per_node = cpus_per_node;
  config.memory_per_node = 16ull * 1024 * 1024;  // Smaller than FLASH for speed.
  return config;
}

struct TestSystem {
  std::unique_ptr<flash::Machine> machine;
  std::unique_ptr<hive::HiveSystem> hive;

  hive::Cell& cell(hive::CellId id) { return hive->cell(id); }
};

inline TestSystem BootHive(int num_cells = 4, int nodes = 4,
                           hive::HiveOptions options = {}, uint64_t seed = 42) {
  TestSystem ts;
  ts.machine = std::make_unique<flash::Machine>(SmallConfig(nodes), seed);
  options.num_cells = num_cells;
  ts.hive = std::make_unique<hive::HiveSystem>(ts.machine.get(), options);
  ts.hive->Boot();
  return ts;
}

inline TestSystem BootSmp(int nodes = 4, uint64_t seed = 42) {
  hive::HiveOptions options;
  options.smp_mode = true;
  options.start_wax = false;
  return BootHive(1, nodes, options, seed);
}

}  // namespace hivetest

#endif  // HIVE_TESTS_TEST_UTIL_H_
