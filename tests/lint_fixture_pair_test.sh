#!/bin/sh
# Asserts one lint rule's fixture pair: the bad fixture must trip the rule,
# and its good twin(s) must stay completely silent. Run by the
# hive_lint_fixture_r* ctest entries.
#
# usage: lint_fixture_pair_test.sh <hive_lint> <fixture_root> <rule>
#            <bad_file> <good_file>...
set -u

LINT="$1"; ROOT="$2"; RULE="$3"; BAD="$4"
shift 4

OUT=$("$LINT" --root "$ROOT")
STATUS=$?
if [ "$STATUS" -ne 1 ]; then
  echo "FAIL: expected exit 1 from the fixture scan, got $STATUS"
  echo "$OUT"
  exit 1
fi

if ! echo "$OUT" | grep -q "^${BAD}:[0-9]*: \[${RULE}\]"; then
  echo "FAIL: expected a ${RULE} diagnostic in ${BAD}"
  echo "$OUT"
  exit 1
fi

for GOOD in "$@"; do
  if echo "$OUT" | grep -q "^${GOOD}:"; then
    echo "FAIL: good twin ${GOOD} produced diagnostics:"
    echo "$OUT" | grep "^${GOOD}:"
    exit 1
  fi
done

echo "PASS: ${RULE} fires in ${BAD}; good twin(s) silent"
exit 0
