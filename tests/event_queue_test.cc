#include "src/flash/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace flash {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(300, [&] { order.push_back(3); });
  queue.ScheduleAt(100, [&] { order.push_back(1); });
  queue.ScheduleAt(200, [&] { order.push_back(2); });
  EXPECT_EQ(queue.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.Now(), 300);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  queue.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue queue;
  Time seen = -1;
  queue.ScheduleAt(100, [&] {
    queue.ScheduleAfter(50, [&] { seen = queue.Now(); });
  });
  queue.Run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int count = 0;
  queue.ScheduleAt(10, [&] { ++count; });
  queue.ScheduleAt(20, [&] { ++count; });
  queue.ScheduleAt(30, [&] { ++count; });
  EXPECT_EQ(queue.RunUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(queue.Now(), 20);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle) {
  EventQueue queue;
  queue.RunUntil(500);
  EXPECT_EQ(queue.Now(), 500);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  EventId id = queue.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  queue.Run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunReturnsFalse) {
  EventQueue queue;
  EventId id = queue.ScheduleAt(10, [] {});
  queue.Run();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue queue;
  EventId id = queue.ScheduleAt(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, StepRunsOneEvent) {
  EventQueue queue;
  int count = 0;
  queue.ScheduleAt(10, [&] { ++count; });
  queue.ScheduleAt(20, [&] { ++count; });
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(queue.Step());
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue queue;
  int depth = 0;
  queue.ScheduleAt(10, [&] {
    ++depth;
    queue.ScheduleAfter(5, [&] { ++depth; });
  });
  queue.Run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(queue.Now(), 15);
}

}  // namespace
}  // namespace flash
