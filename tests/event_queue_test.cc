#include "src/flash/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace flash {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(300, [&] { order.push_back(3); });
  queue.ScheduleAt(100, [&] { order.push_back(1); });
  queue.ScheduleAt(200, [&] { order.push_back(2); });
  EXPECT_EQ(queue.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.Now(), 300);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  queue.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue queue;
  Time seen = -1;
  queue.ScheduleAt(100, [&] {
    queue.ScheduleAfter(50, [&] { seen = queue.Now(); });
  });
  queue.Run();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int count = 0;
  queue.ScheduleAt(10, [&] { ++count; });
  queue.ScheduleAt(20, [&] { ++count; });
  queue.ScheduleAt(30, [&] { ++count; });
  EXPECT_EQ(queue.RunUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(queue.Now(), 20);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle) {
  EventQueue queue;
  queue.RunUntil(500);
  EXPECT_EQ(queue.Now(), 500);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  EventId id = queue.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  queue.Run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunReturnsFalse) {
  EventQueue queue;
  EventId id = queue.ScheduleAt(10, [] {});
  queue.Run();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue queue;
  EventId id = queue.ScheduleAt(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, StepRunsOneEvent) {
  EventQueue queue;
  int count = 0;
  queue.ScheduleAt(10, [&] { ++count; });
  queue.ScheduleAt(20, [&] { ++count; });
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(queue.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(queue.Step());
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue queue;
  int depth = 0;
  queue.ScheduleAt(10, [&] {
    ++depth;
    queue.ScheduleAfter(5, [&] { ++depth; });
  });
  queue.Run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(queue.Now(), 15);
}

TEST(EventQueueTest, FifoTieBreakSurvivesInterleavedCancels) {
  // Cancelled tombstones between live entries at the same timestamp must not
  // perturb the FIFO order of the survivors.
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(queue.ScheduleAt(50, [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 20; i += 2) {
    EXPECT_TRUE(queue.Cancel(ids[static_cast<size_t>(i)]));
  }
  queue.Run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], 2 * i);
  }
}

TEST(EventQueueTest, PoolReusesSlotsAfterChurn) {
  // Heavy schedule/run/cancel churn must recycle slots instead of growing the
  // pool: the pool high-water mark tracks peak pending, not total scheduled.
  EventQueue queue;
  for (int round = 0; round < 100; ++round) {
    EventId keep = queue.ScheduleAfter(1, [] {});
    EventId drop = queue.ScheduleAfter(2, [] {});
    EXPECT_TRUE(queue.Cancel(drop));
    (void)keep;
    queue.Run();
  }
  EXPECT_EQ(queue.total_run(), 100u);
  EXPECT_LE(queue.pool_slots(), 4u);
}

TEST(EventQueueTest, StaleIdDoesNotCancelRecycledSlot) {
  // After a slot is recycled, the old EventId's generation no longer matches:
  // cancelling it must not kill the new occupant.
  EventQueue queue;
  EventId old_id = queue.ScheduleAt(10, [] {});
  queue.Run();  // Slot released; old_id is now stale.
  bool ran = false;
  queue.ScheduleAt(20, [&] { ran = true; });  // Likely reuses the slot.
  EXPECT_FALSE(queue.Cancel(old_id));
  queue.Run();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, LargeCallbackFallsBackToHeap) {
  // Callables bigger than the inline buffer take the heap path and must still
  // run, move, and destroy correctly.
  EventQueue queue;
  struct Big {
    char payload[EventFn::kInlineBytes * 2] = {};
  };
  Big big;
  big.payload[0] = 42;
  int seen = 0;
  queue.ScheduleAt(10, [big, &seen] { seen = big.payload[0]; });
  queue.Run();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, GoldenEventOrderRegression) {
  // Determinism regression: a fixed pseudo-random schedule/cancel workload
  // must execute in exactly the order of a reference model (stable sort by
  // timestamp, FIFO among equals). Any change to tie-breaking or tombstone
  // handling shows up as an order diff here before it corrupts campaign
  // fingerprints.
  EventQueue queue;
  std::vector<int> order;
  std::vector<std::pair<Time, int>> model;  // (when, tag) in schedule order.
  std::vector<EventId> ids;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 200; ++i) {
    const Time when = static_cast<Time>(next() % 16) * 100;
    ids.push_back(queue.ScheduleAt(when, [&order, i] { order.push_back(i); }));
    model.emplace_back(when, i);
  }
  // Cancel a deterministic subset.
  std::vector<bool> cancelled(200, false);
  for (int i = 0; i < 60; ++i) {
    const size_t pick = next() % 200;
    if (!cancelled[pick]) {
      EXPECT_TRUE(queue.Cancel(ids[pick]));
      cancelled[pick] = true;
    }
  }
  queue.Run();

  std::vector<int> expected;
  std::stable_sort(model.begin(), model.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [when, tag] : model) {
    if (!cancelled[static_cast<size_t>(tag)]) {
      expected.push_back(tag);
    }
  }
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace flash
