#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/table.h"

namespace base {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.name(), "OK");
}

TEST(StatusTest, ErrorCodesRoundTrip) {
  EXPECT_FALSE(Timeout().ok());
  EXPECT_EQ(Timeout().code(), StatusCode::kTimeout);
  EXPECT_EQ(BusErrorStatus().name(), "BUS_ERROR");
  EXPECT_EQ(StaleGeneration().name(), "STALE_GENERATION");
}

TEST(StatusTest, EqualityComparesCodes) {
  EXPECT_EQ(Timeout(), Timeout());
  EXPECT_FALSE(Timeout() == NotFound());
}

TEST(ResultTest, CarriesValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, CarriesError) {
  Result<int> result(NotFound());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 5);
}

Result<int> Doubler(Result<int> input) {
  ASSIGN_OR_RETURN(const int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Timeout()).status().code(), StatusCode::kTimeout);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(9);
  int buckets[10] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    buckets[rng.Below(10)]++;
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kSamples / 10, kSamples / 100) << b;
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram hist;
  for (int64_t v : {10, 20, 30, 40, 50}) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.min(), 10);
  EXPECT_EQ(hist.max(), 50);
  EXPECT_EQ(hist.sum(), 150);
  EXPECT_DOUBLE_EQ(hist.mean(), 30.0);
}

TEST(HistogramTest, Percentiles) {
  Histogram hist;
  for (int64_t v = 1; v <= 100; ++v) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.Percentile(0), 1);
  EXPECT_EQ(hist.Percentile(100), 100);
  EXPECT_NEAR(static_cast<double>(hist.Percentile(50)), 50, 1);
  EXPECT_NEAR(static_cast<double>(hist.Percentile(90)), 90, 1);
}

TEST(HistogramTest, EmptyMeanIsZero) {
  Histogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram hist;
  hist.Record(5);
  hist.Clear();
  EXPECT_TRUE(hist.empty());
}

// Quantiles must be exact order statistics even on a heavy-tailed
// distribution -- the SLO harness judges latency p999 against a hard bound,
// so approximation error there would turn the oracle mushy.
TEST(HistogramTest, QuantilesAreExactOrderStatistics) {
  Histogram hist;
  std::vector<int64_t> samples;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    // Heavy tail: mostly small values, occasional multi-thousand spikes.
    int64_t v = static_cast<int64_t>(rng.Below(100));
    if (rng.Below(100) == 0) {
      v += static_cast<int64_t>(1000 + rng.Below(9000));
    }
    samples.push_back(v);
    hist.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const size_t idx =
        static_cast<size_t>(p / 100.0 * static_cast<double>(samples.size() - 1));
    EXPECT_EQ(hist.Percentile(p), samples[idx]) << "p=" << p;
  }
  EXPECT_EQ(hist.Percentile(0), samples.front());
  EXPECT_EQ(hist.Percentile(100), samples.back());
}

// Merging per-cell histograms must yield the quantiles of the combined
// sample set -- the machine-wide latency distribution in the serve report is
// built exactly this way.
TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram cells[4];
  Histogram combined;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    // Give each "cell" a different latency regime so the merge actually has
    // to interleave, not concatenate sorted runs.
    const int cell = i % 4;
    const int64_t v = static_cast<int64_t>((cell + 1) * 100 + rng.Below(500));
    cells[cell].Record(v);
    combined.Record(v);
  }
  Histogram merged;
  for (const Histogram& h : cells) {
    merged.Merge(h);
  }
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.sum(), combined.sum());
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
  for (double p : {10.0, 50.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, MergeFromEmptyAndIntoEmpty) {
  Histogram a;
  Histogram b;
  a.Record(3);
  b.Merge(a);  // Into empty.
  EXPECT_EQ(b.count(), 1u);
  Histogram empty;
  b.Merge(empty);  // From empty: no change.
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.Percentile(50), 3);
}

TEST(TableTest, RendersHeaderAndRows) {
  Table table({"Name", "Value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "2"});
  const std::string out = table.Render("title");
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("| Name"), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  Table table({"A", "B", "C"});
  table.AddRow({"x"});
  const std::string out = table.Render("t");
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::F64(3.14159, 2), "3.14");
  EXPECT_EQ(Table::I64(-42), "-42");
  EXPECT_EQ(Table::Us(6900, 1), "6.9 us");
  EXPECT_EQ(Table::Ms(50700000, 1), "50.7 ms");
  EXPECT_EQ(Table::Pct(0.063, 1), "6.3%");
}

TEST(TableTest, SeparatorRendered) {
  Table table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.Render("t");
  // Three horizontal separators beyond top/header/bottom.
  size_t count = 0;
  for (size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 3u);
}

}  // namespace
}  // namespace base
