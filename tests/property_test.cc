// Property-style parameterized sweeps over the fault containment invariants:
// whatever we inject, wherever we inject it, the invariant of paper section 2
// must hold -- only applications using the failed cell's resources fail, and
// no surviving kernel is damaged.

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/kernel_heap.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

using hivetest::BootHive;
using hivetest::TestSystem;

workloads::PmakeParams TinyPmake(uint64_t seed) {
  workloads::PmakeParams params;
  params.jobs = 6;
  params.source_bytes = 8 * 1024;
  params.output_bytes = 16 * 1024;
  params.shared_text_pages = 20;
  params.private_file_pages = 40;
  params.anon_pages = 20;
  params.scratch_pages = 2;
  params.metadata_ops = 5;
  params.compute_per_job = 120 * kMillisecond;
  params.name_seed = seed;
  return params;
}

// Runs a tiny pmake with a node failure at `inject_ms`, and asserts the
// containment invariant.
void RunContainmentCase(CellId victim, Time inject_ms, uint64_t seed) {
  TestSystem ts = BootHive(4);
  workloads::PmakeWorkload pmake(ts.hive.get(), TinyPmake(seed));
  pmake.Setup();
  auto pids = pmake.Start();
  flash::FaultInjector injector(ts.machine.get(), seed);
  injector.ScheduleNodeFailure(victim, inject_ms * kMillisecond);
  (void)ts.hive->RunUntilDone(pids, 120 * kSecond);
  ts.machine->events().RunUntil(ts.machine->Now() + 300 * kMillisecond);

  // Invariant 1: exactly the victim died.
  for (CellId c = 0; c < 4; ++c) {
    EXPECT_EQ(ts.hive->cell(c).alive(), c != victim) << "cell " << c;
  }
  // Invariant 2: recovery ran exactly once.
  EXPECT_EQ(ts.hive->recovery().recoveries_run(), 1);
  // Invariant 3: no surviving kernel panicked.
  for (CellId c = 0; c < 4; ++c) {
    if (c != victim) {
      EXPECT_TRUE(ts.hive->cell(c).panic_reason().empty()) << ts.hive->cell(c).panic_reason();
    }
  }
  // Invariant 4: outputs of jobs that report success are uncorrupted (when
  // the file server survived to validate them).
  if (victim != 0) {
    EXPECT_EQ(pmake.ValidateOutputs(), 0);
  }
  // Invariant 5: survivors still do useful work.
  Cell& survivor = ts.hive->cell(victim == 0 ? 1 : 0);
  Ctx ctx = survivor.MakeCtx();
  EXPECT_TRUE(
      survivor.fs().Create(ctx, "/post-recovery", workloads::PatternData(1, 4096)).ok());
}

struct ContainmentParam {
  CellId victim;
  Time inject_ms;
};

class ContainmentSweep : public ::testing::TestWithParam<ContainmentParam> {};

TEST_P(ContainmentSweep, NodeFailureIsContained) {
  const uint64_t seed =
      hivetest::TestSeed(4000 + static_cast<uint64_t>(GetParam().victim) * 100 +
                         static_cast<uint64_t>(GetParam().inject_ms));
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  RunContainmentCase(GetParam().victim, GetParam().inject_ms, seed);
}

INSTANTIATE_TEST_SUITE_P(
    VictimsAndTimes, ContainmentSweep,
    ::testing::Values(ContainmentParam{0, 5}, ContainmentParam{0, 80},
                      ContainmentParam{1, 5}, ContainmentParam{1, 40},
                      ContainmentParam{1, 200}, ContainmentParam{2, 15},
                      ContainmentParam{2, 150}, ContainmentParam{3, 10},
                      ContainmentParam{3, 99}, ContainmentParam{3, 350}),
    [](const auto& info) {
      return "cell" + std::to_string(info.param.victim) + "_t" +
             std::to_string(info.param.inject_ms) + "ms";
    });

// Corruption modes: each of the paper's pathological pointer corruptions in a
// process address map panics only the victim cell.
class CorruptionModeSweep
    : public ::testing::TestWithParam<flash::PointerCorruptionMode> {};

TEST_P(CorruptionModeSweep, AddressMapCorruptionContained) {
  TestSystem ts = BootHive(4);
  const CellId victim = 2;

  // A long-lived process on the victim cell that keeps faulting fresh pages:
  // every fault miss walks the address map, so the corruption is discovered.
  auto behavior = std::make_unique<workloads::ScriptedBehavior>("walker");
  behavior->Add(workloads::OpMapAnon(0x1000000, 4096, true));
  behavior->Add(workloads::OpMapAnon(0x2000000, 2048 * 4096, true));
  behavior->Add(workloads::OpFaultRange(0x2000000, 2048, /*write=*/true, /*per_step=*/4));
  Ctx fctx = ts.cell(victim).MakeCtx();
  auto pid = ts.hive->Fork(fctx, victim, std::move(behavior));
  ASSERT_TRUE(pid.ok());

  // An unrelated process on another cell that must survive.
  auto bystander_behavior = std::make_unique<workloads::ScriptedBehavior>("bystander");
  bystander_behavior->Add(workloads::OpCompute(2 * kSecond));
  Ctx bctx = ts.cell(1).MakeCtx();
  auto bystander = ts.hive->Fork(bctx, 1, std::move(bystander_behavior));
  ASSERT_TRUE(bystander.ok());

  auto injected = std::make_shared<bool>(false);
  ts.machine->events().ScheduleAt(30 * kMillisecond, [&ts, victim, pid, injected, this] {
    Cell& cell = ts.hive->cell(victim);
    Process* proc = cell.sched().FindProcess(*pid);
    ASSERT_NE(proc, nullptr);
    Ctx ctx = cell.MakeCtx();
    auto regions = proc->address_space().ListRegions(ctx);
    ASSERT_GE(regions.size(), 2u);
    flash::FaultInjector injector(ts.machine.get(), 77);
    injector.CorruptPointer(regions[0].entry_addr + AddrMapEntryLayout::kNext, GetParam(),
                            cell.mem_base(), cell.mem_size(), ts.hive->cell(0).mem_base(),
                            ts.hive->cell(0).mem_size());
    *injected = true;
  });

  (void)ts.hive->RunUntilDone({*bystander}, 120 * kSecond);
  ts.machine->events().RunUntil(ts.machine->Now() + 500 * kMillisecond);

  ASSERT_TRUE(*injected);
  EXPECT_FALSE(ts.hive->cell(victim).alive());
  for (CellId c = 0; c < 4; ++c) {
    if (c != victim) {
      EXPECT_TRUE(ts.hive->cell(c).alive()) << c;
    }
  }
  // The bystander was untouched.
  EXPECT_EQ(ts.cell(1).sched().FindProcess(*bystander)->state(), ProcState::kExited);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CorruptionModeSweep,
    ::testing::Values(flash::PointerCorruptionMode::kRandomSameCell,
                      flash::PointerCorruptionMode::kRandomOtherCell,
                      flash::PointerCorruptionMode::kOffByOneWord,
                      flash::PointerCorruptionMode::kSelfPointing),
    [](const auto& info) {
      switch (info.param) {
        case flash::PointerCorruptionMode::kRandomSameCell:
          return std::string("RandomSameCell");
        case flash::PointerCorruptionMode::kRandomOtherCell:
          return std::string("RandomOtherCell");
        case flash::PointerCorruptionMode::kOffByOneWord:
          return std::string("OffByOneWord");
        case flash::PointerCorruptionMode::kSelfPointing:
          return std::string("SelfPointing");
      }
      return std::string("Unknown");
    });

// Detection latency is bounded by the monitoring period: latency <= stall +
// threshold * period + agreement, for every period.
class DetectionPeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(DetectionPeriodSweep, LatencyBoundedByPeriod) {
  const Time period = GetParam() * kMillisecond;
  auto machine = std::make_unique<flash::Machine>(hivetest::SmallConfig(), 123);
  HiveOptions options;
  options.num_cells = 4;
  options.start_wax = false;
  options.costs.clock_tick_period_ns = period;
  HiveSystem hive(machine.get(), options);
  hive.Boot();

  const Time inject = 37 * kMillisecond;
  flash::FaultInjector injector(machine.get(), 5);
  injector.ScheduleNodeFailure(2, inject);
  machine->events().RunUntil(inject + 4 * period + 100 * kMillisecond);

  ASSERT_EQ(hive.recovery().recoveries_run(), 1);
  const Time latency = hive.recovery().last_stats().detect_time - inject;
  EXPECT_GT(latency, 0);
  EXPECT_LE(latency, options.costs.failed_access_stall_ns + 2 * period + 10 * kMillisecond);
}

INSTANTIATE_TEST_SUITE_P(Periods, DetectionPeriodSweep, ::testing::Values(1, 2, 5, 10, 25),
                         [](const auto& info) {
                           return std::to_string(info.param) + "ms";
                         });

// Kernel heap: random alloc/free sequences keep payloads aligned, disjoint,
// tagged while live, and de-tagged when freed.
class HeapPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapPropertySweep, AllocationsDisjointAlignedTagged) {
  const uint64_t seed = hivetest::TestSeed(GetParam());
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  flash::PhysMem mem(hivetest::SmallConfig());
  KernelHeap heap(&mem, 0, 0, 2 << 20);
  base::Rng rng(seed);

  struct Alloc {
    PhysAddr addr;
    uint64_t size;
  };
  std::vector<Alloc> live;
  for (int step = 0; step < 600; ++step) {
    if (live.empty() || rng.Below(3) != 0) {
      const uint64_t size = 1 + rng.Below(512);
      auto addr = heap.Alloc(kTagGeneric, size);
      ASSERT_TRUE(addr.ok());
      EXPECT_EQ(*addr % 8, 0u);
      const uint64_t rounded = (size + 7) & ~7ull;
      for (const Alloc& other : live) {
        const bool disjoint =
            *addr + rounded <= other.addr || other.addr + other.size <= *addr;
        ASSERT_TRUE(disjoint) << "overlap at step " << step;
      }
      live.push_back({*addr, rounded});
    } else {
      const size_t idx = rng.Below(live.size());
      EXPECT_EQ(heap.ReadTypeTag(0, live[idx].addr), static_cast<uint32_t>(kTagGeneric));
      heap.Free(live[idx].addr);
      EXPECT_EQ(heap.ReadTypeTag(0, live[idx].addr), static_cast<uint32_t>(kTagFree));
      live.erase(live.begin() + static_cast<int64_t>(idx));
    }
  }
  uint64_t live_bytes = 0;
  for (const Alloc& alloc : live) {
    live_bytes += alloc.size;
  }
  EXPECT_EQ(heap.bytes_in_use(), live_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Firewall policies: the spanning application completes under every policy
// (the single-writer policy thrashes but the refault path keeps it alive).
class FirewallPolicySweep : public ::testing::TestWithParam<FirewallPolicy> {};

TEST_P(FirewallPolicySweep, OceanSurvivesPolicy) {
  auto machine = std::make_unique<flash::Machine>(hivetest::SmallConfig(), 321);
  HiveOptions options;
  options.num_cells = 4;
  options.firewall_policy = GetParam();
  HiveSystem hive(machine.get(), options);
  hive.Boot();

  workloads::OceanParams params;
  params.grid_pages = 96;
  params.timesteps = 5;
  params.compute_per_step = 5 * kMillisecond;
  params.touches_per_step = 8;
  params.halo_pages = 2;
  params.name_seed = 8800 + static_cast<uint64_t>(GetParam());
  workloads::OceanWorkload ocean(&hive, params);
  ocean.Setup();
  auto pids = ocean.Start();
  ASSERT_TRUE(hive.RunUntilDone(pids, 120 * kSecond));
  for (ProcId pid : pids) {
    const CellId c = hive.FindProcessCell(pid);
    EXPECT_EQ(hive.cell(c).sched().FindProcess(pid)->state(), ProcState::kExited);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, FirewallPolicySweep,
                         ::testing::Values(FirewallPolicy::kBitVector,
                                           FirewallPolicy::kGlobalBit,
                                           FirewallPolicy::kSingleWriter),
                         [](const auto& info) {
                           switch (info.param) {
                             case FirewallPolicy::kBitVector:
                               return std::string("BitVector");
                             case FirewallPolicy::kGlobalBit:
                               return std::string("GlobalBit");
                             case FirewallPolicy::kSingleWriter:
                               return std::string("SingleWriter");
                           }
                           return std::string("Unknown");
                         });

// Event-queue determinism: the same seed gives byte-identical outcomes.
class DeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismSweep, IdenticalSeedsIdenticalRuns) {
  auto run = [&](uint64_t seed) {
    TestSystem ts = BootHive(4, 4, {}, seed);
    workloads::PmakeWorkload pmake(ts.hive.get(), TinyPmake(seed));
    pmake.Setup();
    auto pids = pmake.Start();
    EXPECT_TRUE(ts.hive->RunUntilDone(pids, 120 * kSecond));
    Time finish = 0;
    for (ProcId pid : pids) {
      const CellId c = ts.hive->FindProcessCell(pid);
      finish = std::max(finish, ts.hive->cell(c).sched().FindProcess(pid)->finished_at);
    }
    return finish;
  };
  const uint64_t seed = hivetest::TestSeed(GetParam());
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  EXPECT_EQ(run(seed), run(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace hive
