// Fixture: R2 violation. Never compiled.
#include "src/flash/phys_mem.h"

namespace hive {

void ScribbleBehindTheFirewall(flash::PhysMem* mem, const uint8_t* data) {
  // The raw backdoor from kernel code: must be flagged (R2).
  mem->RawWrite(0x8000, std::span<const uint8_t>(data, 16));
}

}  // namespace hive
