// Fixture: R3 violations. Never compiled.
#include "src/flash/bus_error.h"
#include "src/flash/phys_mem.h"

namespace hive {

uint64_t SwallowTrap(flash::PhysMem* mem, int cpu) {
  try {
    return mem->ReadValue<uint64_t>(cpu, 0x1000);  // hive-lint: allow(R1): fixture focuses on R3; the access itself is not under test here.
  } catch (const flash::BusError&) {
    // Catching the trap outside careful_ref: must be flagged (R3).
    return 0;
  }
}

void FakeTrap() {
  // Raising the hardware trap from kernel code: must be flagged (R3).
  throw flash::BusError(flash::BusErrorKind::kFirewall, 0x2000);
}

}  // namespace hive
