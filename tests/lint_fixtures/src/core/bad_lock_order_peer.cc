// Fixture: R8 lock-order cycle, half B. Never compiled.
// See bad_lock_order.cc: this TU acquires g_fix_mu_b then g_fix_mu_a,
// closing the cross-TU cycle that R8 must report with both witness paths.
#include <mutex>

namespace hive {

std::mutex g_fix_mu_a;
std::mutex g_fix_mu_b;

void FixtureLockA() {
  std::lock_guard<std::mutex> guard(g_fix_mu_a);
}

// Edge g_fix_mu_b -> g_fix_mu_a, this time by direct nesting: must close the
// cycle against bad_lock_order.cc's a-then-b path.
void FixtureTakeBThenA() {
  std::lock_guard<std::mutex> guard(g_fix_mu_b);
  std::lock_guard<std::mutex> inner(g_fix_mu_a);
  (void)inner;
}

}  // namespace hive
