// Fixture: the name switch misses kForgottenEvent (R4). Never compiled.
#include "src/core/trace.h"

namespace hive {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kBoot:
      return "boot";
    case TraceEvent::kPanic:
      return "panic";
  }
  return "?";
}

}  // namespace hive
