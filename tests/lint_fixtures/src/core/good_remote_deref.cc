// Fixture: R11 good twin. Never compiled. Must produce no diagnostics.
// The sanctioned idiom: remote structures are named by address (uint64_t)
// and read through the CarefulRef accessors, which bound the access,
// validate the type tag, and convert bus errors to Status. Naming the type
// as a template argument (no '*') is fine -- only raw pointers and
// reinterpret_casts are dereferences-in-waiting.
#include <cstdint>

#include "src/base/status.h"

namespace hive {

struct RemoteSeqBlock;  // Tag-checked layout; defined in careful_ref.h.
class CarefulRef;

base::Result<uint64_t> GoodCarefulPeek(CarefulRef& careful, uint64_t addr);

base::Result<uint64_t> GoodChainWalk(CarefulRef& careful, uint64_t head_addr,
                                     int max_hops) {
  uint64_t cursor_addr = head_addr;
  for (int hop = 0; hop < max_hops && cursor_addr != 0; ++hop) {
    auto value = GoodCarefulPeek(careful, cursor_addr);
    RETURN_IF_ERROR_RESULT(value);
    cursor_addr = *value;
  }
  return cursor_addr;
}

}  // namespace hive
