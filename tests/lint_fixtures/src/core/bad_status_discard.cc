// Fixture: R9 discarded Status. Never compiled.
#include "src/base/status.h"

namespace hive {

base::Status FixtureRecoverHeap(int attempts);

void BadBareDiscard(int attempts) {
  // Bare expression statement: the Status evaporates. Must be flagged (R9).
  FixtureRecoverHeap(attempts);
}

struct FixtureRecoverer {
  base::Status Sweep();
};

void BadMemberDiscard(FixtureRecoverer* recoverer) {
  // Member-call receiver chain, same discard. Must be flagged (R9).
  recoverer->Sweep();
}

void SuppressedDiscard(int attempts) {
  // properly suppressed: must NOT be reported.
  // hive-lint: allow(R9): fixture exercising the suppression path; the caller's retry loop re-checks the heap.
  FixtureRecoverHeap(attempts);
}

}  // namespace hive
