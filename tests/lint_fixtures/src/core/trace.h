// Fixture: TraceEvent enum with an enumerator the name switch forgets (R4).
// Never compiled.
#ifndef FIXTURE_TRACE_H_
#define FIXTURE_TRACE_H_

#include <cstdint>

namespace hive {

enum class TraceEvent : uint8_t {
  kBoot,
  kPanic,
  kForgottenEvent,  // Not handled in trace.cc: must be flagged (R4).
};

const char* TraceEventName(TraceEvent event);

}  // namespace hive

#endif  // FIXTURE_TRACE_H_
