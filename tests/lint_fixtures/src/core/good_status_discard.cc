// Fixture: R9 good twin. Never compiled. Must produce no diagnostics.
// Every way a Status may legitimately flow: bound, returned, tested,
// propagated through RETURN_IF_ERROR, or explicitly (void)-discarded with a
// justifying comment.
#include "src/base/status.h"

namespace hive {

base::Status FixtureFlushQueue(int depth);

base::Status GoodReturned(int depth) {
  return FixtureFlushQueue(depth);
}

base::Status GoodBound(int depth) {
  base::Status status = FixtureFlushQueue(depth);
  return status;
}

base::Status GoodPropagated(int depth) {
  RETURN_IF_ERROR(FixtureFlushQueue(depth));
  return base::Status::Ok();
}

bool GoodTested(int depth) {
  if (!FixtureFlushQueue(depth).ok()) {
    return false;
  }
  return true;
}

void GoodVoidCast(int depth) {
  // Best-effort flush on the shutdown path; failure only delays reclaim.
  (void)FixtureFlushQueue(depth);
}

}  // namespace hive
