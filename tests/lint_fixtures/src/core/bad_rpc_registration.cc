// Fixture: R6 violations. Never compiled.
#include "src/core/rpc.h"

namespace hive {

void BadMutatingInterruptRegistration(RpcLayer& rpc) {
  // Frame borrowing mutates allocator state: a transport retry racing a
  // delayed original would grant frames twice. Must be flagged (R6).
  rpc.RegisterInterrupt(MsgType::kBorrowFrames,
                        [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
}

void BadMutatingQueuedRegistration(RpcLayer& rpc) {
  // The queued path is just as exposed to duplicate delivery. Must be
  // flagged (R6).
  rpc.RegisterQueued(
      MsgType::kUnlink,
      [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
}

void CorrectAtMostOnceRegistration(RpcLayer& rpc) {
  // The replay-cache path: must NOT be reported.
  rpc.RegisterInterruptAtMostOnce(
      MsgType::kReturnFrame,
      [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
}

void SuppressedIdempotentRegistration(RpcLayer& rpc) {
  // properly suppressed: must NOT be reported.
  // hive-lint: allow(R6): fixture stand-in for a grant-by-token handler that is idempotent by design.
  rpc.RegisterInterrupt(MsgType::kGrantFirewall,
                        [](Ctx&, const RpcArgs&, RpcReply*) { return base::OkStatus(); });
}

}  // namespace hive
