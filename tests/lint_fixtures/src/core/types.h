// Fixture: duplicate kernel type tags (R5). Never compiled.
#ifndef FIXTURE_TYPES_H_
#define FIXTURE_TYPES_H_

#include <cstdint>

namespace hive {

enum KernelTypeTag : uint32_t {
  kTagFree = 0xDEADBEEF,
  kTagClockWord = 0x434C4B31,
  kTagCowNode = 0x434F5731,
  kTagStaleCopy = 0x434F5731,  // Collides with kTagCowNode: must be flagged (R5).
};

}  // namespace hive

#endif  // FIXTURE_TYPES_H_
