// Fixture: R8 lock-order cycle, half A. Never compiled.
//
// This TU takes g_fix_mu_a and then (through a call) g_fix_mu_b;
// bad_lock_order_peer.cc takes them in the opposite order. Neither TU alone
// shows the cycle -- that is the point: R8 must stitch the order graph
// across translation units via the call-graph index.
#include <mutex>

namespace hive {

extern std::mutex g_fix_mu_a;
extern std::mutex g_fix_mu_b;

void FixtureLockA();   // Defined in bad_lock_order_peer.cc.
void FixtureLockB() {
  std::lock_guard<std::mutex> guard(g_fix_mu_b);
}

// Edge g_fix_mu_a -> g_fix_mu_b: B is acquired (via the call) while A is
// held. Must contribute half of the R8 cycle.
void FixtureTakeAThenB() {
  std::lock_guard<std::mutex> guard(g_fix_mu_a);
  FixtureLockB();
}

}  // namespace hive
