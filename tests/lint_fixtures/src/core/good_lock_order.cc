// Fixture: R8 good twin. Never compiled. Must produce no diagnostics.
//
// Same shape as the bad pair -- two mutexes, nesting, a cross-function
// acquisition -- but every path agrees on the order (ord_a before ord_b), and
// the one both-at-once site uses std::scoped_lock, which acquires its
// arguments deadlock-free as a unit (no order edge between same-site keys).
#include <mutex>

namespace hive {

std::mutex g_fix_ord_a;
std::mutex g_fix_ord_b;

void FixtureOrderedInner() {
  std::lock_guard<std::mutex> guard(g_fix_ord_b);
}

void FixtureOrderedOuter() {
  std::lock_guard<std::mutex> guard(g_fix_ord_a);
  FixtureOrderedInner();
}

void FixtureOrderedNested() {
  std::lock_guard<std::mutex> guard(g_fix_ord_a);
  std::lock_guard<std::mutex> inner(g_fix_ord_b);
  (void)inner;
}

void FixtureScopedBoth() {
  std::scoped_lock both(g_fix_ord_b, g_fix_ord_a);
}

}  // namespace hive
