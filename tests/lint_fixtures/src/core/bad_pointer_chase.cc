// Fixture: R7 violations. Never compiled.
#include "src/core/careful_ref.h"

namespace hive {

uint64_t BadChase(CarefulRef& careful, PhysAddr head) {
  uint64_t sum = 0;
  PhysAddr node = head;
  // Unbounded remote pointer chase: the cursor comes from remote data, the
  // loop has no hop cap, so a cyclic chain spins forever. Must be flagged (R7).
  while (node != 0) {
    auto value = careful.ReadTagged<uint64_t>(node, 0x43484E31u);
    if (!value.ok()) {
      break;
    }
    sum += *value;
    auto next = careful.Read<uint64_t>(node + 8);
    node = next.ok() ? *next : 0;
  }
  return sum;
}

void BadTagPoll(CarefulRef& careful, PhysAddr block) {
  // Per-iteration tag re-check with no visible cap: must be flagged (R7).
  for (;;) {
    if (careful.CheckTag(block, 0x53514231u).ok()) {
      return;
    }
  }
}

uint64_t SuppressedChase(CarefulRef& careful, PhysAddr head) {
  uint64_t sum = 0;
  PhysAddr node = head;
  // properly suppressed: must NOT be reported.
  // hive-lint: allow(R7): fixture exercising the suppression path; this chain is boot-built with exactly two nodes and never republished.
  while (node != 0) {
    auto value = careful.ReadTagged<uint64_t>(node, 0x43484E31u);
    if (!value.ok()) {
      break;
    }
    sum += *value;
    auto next = careful.Read<uint64_t>(node + 8);
    node = next.ok() ? *next : 0;
  }
  return sum;
}

}  // namespace hive
