// Fixture: R1 violations. Never compiled.
#include "src/flash/phys_mem.h"

namespace hive {

uint64_t BadDirectRead(flash::PhysMem* mem, int cpu) {
  // Direct typed access from core code: must be flagged (R1).
  return mem->ReadValue<uint64_t>(cpu, 0x1000);
}

void BadDirectWrite(flash::PhysMem& mem, int cpu, uint8_t* buf) {
  // Member call chain receiver: must be flagged (R1).
  mem.Write(cpu, 0x2000, std::span<const uint8_t>(buf, 8));
}

uint64_t SuppressedRead(flash::PhysMem* mem, int cpu) {
  // properly suppressed: must NOT be reported.
  // hive-lint: allow(R1): fixture exercising the suppression path; reads a local-only scratch word.
  return mem->ReadValue<uint64_t>(cpu, 0x3000);
}

uint64_t BadlySuppressedRead(flash::PhysMem* mem, int cpu) {
  // Missing justification: the suppression itself is an R0 violation and the
  // access below still counts as R1.
  // hive-lint: allow(R1)
  return mem->ReadValue<uint64_t>(cpu, 0x4000);
}

}  // namespace hive
