// Fixture: R11 raw access to tagged remote structures. Never compiled.
// RemoteChainNode models memory owned by ANOTHER cell; outside careful_ref
// it may only be named by address, never held as a raw pointer.
#include <cstdint>

namespace hive {

struct RemoteChainNode {
  uint64_t tag;
  uint64_t value;
  uint64_t next_addr;
};

uint64_t BadCastPeek(uint64_t addr) {
  // reinterpret_cast to a tagged remote structure. Must be flagged (R11).
  const auto* node = reinterpret_cast<const RemoteChainNode*>(addr);
  return node->value;
}

uint64_t BadRawPointerWalk(RemoteChainNode* head) {
  // Raw pointer declaration over remote memory. Must be flagged (R11): a
  // plain dereference turns a peer fault into a survivor crash.
  RemoteChainNode* cursor = head;
  return cursor->next_addr;
}

uint64_t SuppressedCast(uint64_t addr) {
  // properly suppressed: must NOT be reported.
  // hive-lint: allow(R11): fixture exercising the suppression path; the address is pinned local scratch, not another cell's memory.
  return reinterpret_cast<const RemoteChainNode*>(addr)->tag;
}

}  // namespace hive
