// Fixture: R10 nondeterminism on the parallel-sim worker path. Never
// compiled. `WorkerMain` and `ReplayWindow` carry the same simple names as
// the parallel executor's thread entry and per-cell merge, which the
// reachability analysis roots explicitly (a std::thread member-pointer
// launch never shows up as a call site), so everything below must be
// analyzed even though nothing in this file is called by name.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

namespace flash {

long ParallelBundleWallClock() {
  // Wall-clock read one hop below the worker entry. Must be flagged (R10):
  // worker-local time must come from the replayed event clock, never the
  // host.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void WorkerMain() {
  // Must be flagged (R10): rand() jitters the bundle pick, so two runs
  // with different thread interleavings execute different bundles.
  int pick = rand() % 4;
  (void)pick;
  (void)ParallelBundleWallClock();
}

long ReplayWindow(int bundles) {
  std::unordered_map<int, long> by_cell;
  for (int b = 0; b < bundles; ++b) {
    by_cell[b] = b * 2;
  }
  long merged = 0;
  // Must be flagged (R10): the merge walks per-cell results in hash order,
  // so the sequence numbers it hands out depend on the hash seed, not the
  // serial event order.
  for (const auto& [cell, value] : by_cell) {
    merged = merged * 31 + cell + value;
  }
  return merged;
}

}  // namespace flash
