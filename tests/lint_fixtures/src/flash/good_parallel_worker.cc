// Fixture: parallel-worker good twin. Never compiled. Must produce no
// diagnostics. The same rooted path (`ExecuteBundle` is an explicit R10
// root) written the deterministic way: worker-local virtual time instead of
// host clocks, a seeded counter instead of rand(), and a sorted snapshot of
// the per-cell map before anything order-dependent happens.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace flash {

struct GoodWorkerContext {
  long local_now = 0;
  unsigned long draw_state = 0;
};

unsigned long GoodBundleDraw(GoodWorkerContext& ctx) {
  // Seeded splitmix step: reproducible from the scenario seed alone.
  ctx.draw_state += 0x9e3779b97f4a7c15ul;
  unsigned long z = ctx.draw_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ul;
  return z ^ (z >> 31);
}

long ExecuteBundle(GoodWorkerContext& ctx, int events) {
  std::unordered_map<int, long> by_cell;
  for (int e = 0; e < events; ++e) {
    by_cell[e % 4] += static_cast<long>(GoodBundleDraw(ctx) % 16);
    ctx.local_now += 10;  // Virtual time, advanced by the event cost model.
  }
  std::vector<int> cells;
  cells.reserve(by_cell.size());
  // hive-lint: allow(R10): collection loop only; cells are sorted below before they touch the merged result.
  for (const auto& [cell, cost] : by_cell) {
    (void)cost;
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end());
  long merged = 0;
  for (int cell : cells) {
    merged = merged * 31 + cell + by_cell[cell];
  }
  return merged + ctx.local_now;
}

}  // namespace flash
