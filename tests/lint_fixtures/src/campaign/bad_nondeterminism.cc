// Fixture: R10 nondeterminism reachable from a scenario runner. Never
// compiled. This file defines a `RunScenario` -- the same simple name as the
// real campaign entry point, so the fixture tree's reachability analysis
// roots here -- and seeds every banned ingredient below it.
#include <chrono>
#include <map>
#include <random>
#include <unordered_map>

namespace campaign {

// Address-keyed ordered container: iteration follows ASLR'd addresses.
// Must be flagged (R10) at the declaration.
std::map<int*, int> g_fixture_by_addr;

int FixtureEntropyJitter() {
  // Hardware entropy in a helper two call hops below the root. Must be
  // flagged (R10).
  std::random_device entropy;
  return static_cast<int>(entropy() % 7);
}

long FixtureWallClock() {
  // Wall-clock read on a reachable path. Must be flagged (R10).
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int FixtureJitteredDelay() {
  // Must be flagged (R10): rand() on a reachable path.
  return FixtureEntropyJitter() + rand() % 3;
}

int RunScenario(unsigned seed) {
  std::unordered_map<int, int> counts;
  counts[static_cast<int>(seed)] = FixtureJitteredDelay();
  long sum = FixtureWallClock();
  // Must be flagged (R10): hash-order iteration feeding the result.
  for (const auto& [key, count] : counts) {
    sum += key * count;
  }
  return static_cast<int>(sum);
}

}  // namespace campaign
