// Fixture: R10 good twin. Never compiled. Must produce no diagnostics.
// A campaign root whose randomness is a seeded PRNG and whose iteration
// orders are all deterministic (ordered keys or a sorted snapshot of the
// unordered container).
#include <algorithm>
#include <map>
#include <random>
#include <unordered_map>
#include <vector>

namespace campaign {

int FixtureSeededJitter(std::mt19937_64& rng) {
  return static_cast<int>(rng() % 7);
}

int RunCampaign(unsigned seed) {
  std::mt19937_64 rng(seed);
  std::map<int, int> ordered_counts;
  ordered_counts[FixtureSeededJitter(rng)] = 1;
  int sum = 0;
  for (const auto& [key, count] : ordered_counts) {
    sum += key * count;
  }
  std::unordered_map<int, int> scratch;
  scratch[sum] = 2;
  std::vector<int> keys;
  keys.reserve(scratch.size());
  // hive-lint: allow(R10): collection loop only; keys are sorted below before they affect the result.
  for (const auto& [key, count] : scratch) {
    (void)count;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (int key : keys) {
    sum += scratch[key];
  }
  return sum;
}

}  // namespace campaign
