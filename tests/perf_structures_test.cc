// Tests for the hot-path data structures behind the simulator overhaul:
// the firewall manager's per-client reverse index and globally-writable
// counter, the page allocator's per-cell loan/borrow buckets, and the pfdat
// slab arena.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/pfdat.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

// --- FirewallManager reverse index + counters. ---

class FirewallIndexTest : public ::testing::Test {
 protected:
  FirewallIndexTest() : ts_(hivetest::BootHive(4)) {}

  Pfn LocalPfn(CellId cell, uint64_t offset_pages) {
    return ts_.machine->mem().PfnOfAddr(ts_.cell(cell).mem_base()) + offset_pages;
  }

  hivetest::TestSystem ts_;
};

TEST_F(FirewallIndexTest, RevokeAllForSweepsOnlyFailedCellAndSortsByPfn) {
  Cell& home = ts_.cell(0);
  Ctx ctx = home.MakeCtx();
  // Grant a scattered set of pages to cell 2 and a disjoint set to cell 3.
  const std::vector<uint64_t> cell2_pages = {9, 3, 14, 6};
  for (uint64_t page : cell2_pages) {
    ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, LocalPfn(0, page), 2).ok());
  }
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, LocalPfn(0, 4), 3).ok());
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, LocalPfn(0, 11), 3).ok());

  const std::vector<Pfn> swept = home.firewall_manager().RevokeAllFor(ctx, 2);
  ASSERT_EQ(swept.size(), cell2_pages.size());
  EXPECT_TRUE(std::is_sorted(swept.begin(), swept.end()));
  for (uint64_t page : cell2_pages) {
    EXPECT_TRUE(std::count(swept.begin(), swept.end(), LocalPfn(0, page)) == 1);
    EXPECT_FALSE(home.firewall_manager().HasGrant(LocalPfn(0, page), 2));
  }
  // Cell 3's grants are untouched.
  EXPECT_TRUE(home.firewall_manager().HasGrant(LocalPfn(0, 4), 3));
  EXPECT_TRUE(home.firewall_manager().HasGrant(LocalPfn(0, 11), 3));
  // A second sweep for the same cell finds nothing.
  EXPECT_TRUE(home.firewall_manager().RevokeAllFor(ctx, 2).empty());
}

TEST_F(FirewallIndexTest, NestedGrantsUnindexOnlyAtLastRevoke) {
  Cell& home = ts_.cell(0);
  Ctx ctx = home.MakeCtx();
  const Pfn pfn = LocalPfn(0, 5);
  // Two overlapping grants to the same cell: one revoke must not drop the
  // page from the reverse index.
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, pfn, 2).ok());
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, pfn, 2).ok());
  ASSERT_TRUE(home.firewall_manager().RevokeWrite(ctx, pfn, 2).ok());
  EXPECT_TRUE(home.firewall_manager().HasGrant(pfn, 2));
  EXPECT_EQ(home.firewall_manager().RevokeAllFor(ctx, 2).size(), 1u);
  EXPECT_FALSE(home.firewall_manager().HasGrant(pfn, 2));
}

TEST(FirewallCounterTest, GloballyWritableCounterTracksTransitions) {
  // Under the one-bit-per-page ablation a grant opens the page to everyone;
  // the counter must track kAllowAll transitions without scanning.
  HiveOptions options;
  options.firewall_policy = FirewallPolicy::kGlobalBit;
  auto ts = hivetest::BootHive(4, 4, options);
  Cell& home = ts.cell(0);
  Ctx ctx = home.MakeCtx();
  const Pfn base = ts.machine->mem().PfnOfAddr(home.mem_base());
  EXPECT_EQ(home.firewall_manager().GloballyWritablePages(), 0);

  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, base + 1, 2).ok());
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, base + 2, 3).ok());
  EXPECT_EQ(home.firewall_manager().GloballyWritablePages(), 2);
  // Overlapping grant on an already-open page: no double count.
  ASSERT_TRUE(home.firewall_manager().GrantWrite(ctx, base + 1, 3).ok());
  EXPECT_EQ(home.firewall_manager().GloballyWritablePages(), 2);

  ASSERT_TRUE(home.firewall_manager().RevokeWrite(ctx, base + 2, 3).ok());
  EXPECT_EQ(home.firewall_manager().GloballyWritablePages(), 1);
  // Failure sweep closes the remaining open page.
  (void)home.firewall_manager().RevokeAllFor(ctx, 2);
  (void)home.firewall_manager().RevokeAllFor(ctx, 3);
  EXPECT_EQ(home.firewall_manager().GloballyWritablePages(), 0);
}

// --- PageAllocator per-cell buckets. ---

class AllocatorBucketTest : public ::testing::Test {
 protected:
  AllocatorBucketTest() : ts_(hivetest::BootHive(4)) {}

  hivetest::TestSystem ts_;
};

TEST_F(AllocatorBucketTest, BorrowedFreeBucketServesRepeatAllocations) {
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  AllocConstraints constraints;
  constraints.preferred_cell = 2;
  auto first = client.allocator().AllocFrame(ctx, constraints);
  ASSERT_TRUE(first.ok());
  const uint64_t rpcs_after_first = client.allocator().borrow_rpcs();
  EXPECT_EQ(rpcs_after_first, 1u);
  // The borrow batch left spare frames in cell 2's bucket: later requests for
  // that home are served locally, with no further RPC.
  auto second = client.allocator().AllocFrame(ctx, constraints);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(client.allocator().borrow_rpcs(), rpcs_after_first);
  EXPECT_EQ((*second)->borrowed_from, 2);

  (*first)->refcount = 0;
  (*second)->refcount = 0;
  client.allocator().FreeFrame(ctx, *first);
  client.allocator().FreeFrame(ctx, *second);
}

TEST_F(AllocatorBucketTest, ReclaimLoansSweepsOnlyFailedBorrower) {
  Cell& home = ts_.cell(1);
  Ctx ctx = home.MakeCtx();
  const size_t free_before = home.allocator().free_frames();
  const std::vector<PhysAddr> to2 = home.allocator().LoanFrames(ctx, 2, 3);
  const std::vector<PhysAddr> to3 = home.allocator().LoanFrames(ctx, 3, 2);
  ASSERT_EQ(to2.size(), 3u);
  ASSERT_EQ(to3.size(), 2u);
  EXPECT_EQ(home.allocator().loaned_frames(), 5u);

  EXPECT_EQ(home.allocator().ReclaimLoansTo(2), 3);
  EXPECT_EQ(home.allocator().loaned_frames(), 2u);
  // Cell 3's loans survive; reclaiming cell 2 again is a no-op.
  EXPECT_EQ(home.allocator().ReclaimLoansTo(2), 0);
  EXPECT_EQ(home.allocator().ReclaimLoansTo(3), 2);
  EXPECT_EQ(home.allocator().loaned_frames(), 0u);
  EXPECT_EQ(home.allocator().free_frames(), free_before);
}

TEST_F(AllocatorBucketTest, DoubleReturnIsRejectedAsCarefulCheckFailure) {
  Cell& home = ts_.cell(1);
  Ctx ctx = home.MakeCtx();
  const std::vector<PhysAddr> frames = home.allocator().LoanFrames(ctx, 2, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(home.allocator().AcceptReturnedFrame(ctx, frames[0], 2).ok());
  // Returning the same frame twice (a confused or malicious borrower) must
  // fail the careful check, not corrupt the free list.
  EXPECT_FALSE(home.allocator().AcceptReturnedFrame(ctx, frames[0], 2).ok());
  EXPECT_EQ(home.allocator().loaned_frames(), 0u);
}

// --- Pfdat slab arena. ---

TEST(PfdatArenaTest, SlabsGrowByBlockAndRecycleSlots) {
  PfdatTable table;
  std::vector<Pfdat*> extended;
  for (uint64_t i = 0; i < PfdatTable::kSlabPfdats + 10; ++i) {
    extended.push_back(table.AddExtended(0x100000 + i * 4096));
  }
  EXPECT_EQ(table.arena_slabs(), 2u);
  EXPECT_EQ(table.total_pfdats(), PfdatTable::kSlabPfdats + 10);

  // Free half, then re-add as many: recycled slots, no new slab.
  for (uint64_t i = 0; i < PfdatTable::kSlabPfdats / 2; ++i) {
    table.RemoveExtended(extended[i]);
  }
  for (uint64_t i = 0; i < PfdatTable::kSlabPfdats / 2; ++i) {
    table.AddExtended(0x900000 + i * 4096);
  }
  EXPECT_EQ(table.arena_slabs(), 2u);
  EXPECT_EQ(table.total_pfdats(), PfdatTable::kSlabPfdats + 10);
}

TEST(PfdatArenaTest, PointersStayStableAsArenaGrows) {
  PfdatTable table;
  Pfdat* first = table.AddRegular(0x1000);
  first->refcount = 7;
  for (uint64_t i = 0; i < 4 * PfdatTable::kSlabPfdats; ++i) {
    table.AddExtended(0x200000 + i * 4096);
  }
  // The original pointer still names the same pfdat after the arena added
  // several slabs (slabs never move).
  EXPECT_EQ(table.FindByFrame(0x1000), first);
  EXPECT_EQ(first->refcount, 7);
  EXPECT_EQ(first->frame, 0x1000u);
}

TEST(PfdatArenaTest, ClearRetainsSlabMemoryForReboot) {
  PfdatTable table;
  for (uint64_t i = 0; i < 3 * PfdatTable::kSlabPfdats; ++i) {
    table.AddExtended(0x300000 + i * 4096);
  }
  const size_t slabs_before = table.arena_slabs();
  table.Clear();
  EXPECT_EQ(table.total_pfdats(), 0u);
  // Reboot re-populates out of the retained slabs: no new allocations.
  for (uint64_t i = 0; i < 3 * PfdatTable::kSlabPfdats; ++i) {
    table.AddExtended(0x300000 + i * 4096);
  }
  EXPECT_EQ(table.arena_slabs(), slabs_before);
}

}  // namespace
}  // namespace hive
