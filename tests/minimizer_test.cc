// Direct unit tests for the ddmin scenario minimizer: preservation of the
// violating property, 1-minimality of the result, determinism, and budget
// behaviour. Synthetic predicates drive the search without simulator runs;
// one end-to-end case pins the real RunScenario-backed wrapper.

#include "src/campaign/minimizer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"

namespace campaign {
namespace {

// A spec with five message-fault windows at 5/10/15/20/25 ms. Synthetic
// predicates key off the injection times, so each fault is identifiable.
ScenarioSpec FiveFaultSpec() {
  ScenarioSpec spec;
  spec.master_seed = 1;
  spec.index = 0;
  spec.seed = 12345;
  spec.num_cells = 4;
  spec.workload = WorkloadKind::kPmake;
  spec.workload_scale = 2;
  for (int i = 0; i < 5; ++i) {
    FaultSpec fault;
    fault.kind = FaultKind::kMessageFaults;
    fault.victim = -1;
    fault.target = -1;
    fault.inject_at = (5 + 5 * i) * hive::kMillisecond;
    fault.drop_pm = 20;
    fault.duration = 50 * hive::kMillisecond;
    spec.faults.push_back(fault);
  }
  return spec;
}

bool HasFaultAt(const ScenarioSpec& spec, Time when) {
  for (const FaultSpec& fault : spec.faults) {
    if (fault.inject_at == when) {
      return true;
    }
  }
  return false;
}

// Violation requires BOTH the 5 ms and the 25 ms fault: the unique minimal
// plan is exactly that pair.
bool NeedsPair(const ScenarioSpec& spec) {
  return HasFaultAt(spec, 5 * hive::kMillisecond) &&
         HasFaultAt(spec, 25 * hive::kMillisecond);
}

TEST(MinimizerTest, FindsTheMinimalFaultPair) {
  const ScenarioSpec original = FiveFaultSpec();
  ASSERT_TRUE(NeedsPair(original));
  const MinimizationResult result =
      MinimizeScenarioWith(original, /*max_runs=*/64, NeedsPair);

  // Preservation: the minimized spec still satisfies the predicate.
  EXPECT_TRUE(NeedsPair(result.minimized));
  // Exactly the two load-bearing faults survive.
  ASSERT_EQ(result.minimized.faults.size(), 2u);
  EXPECT_EQ(result.minimized.faults[0].inject_at, 5 * hive::kMillisecond);
  EXPECT_EQ(result.minimized.faults[1].inject_at, 25 * hive::kMillisecond);
  EXPECT_TRUE(result.reduced);
  // The predicate ignores the workload, so the minimizer drops it too.
  EXPECT_EQ(result.minimized.workload, WorkloadKind::kNone);
}

TEST(MinimizerTest, ResultIsOneMinimal) {
  const ScenarioSpec original = FiveFaultSpec();
  const MinimizationResult result =
      MinimizeScenarioWith(original, /*max_runs=*/64, NeedsPair);
  // 1-minimality: removing any single remaining fault breaks the property.
  for (size_t drop = 0; drop < result.minimized.faults.size(); ++drop) {
    ScenarioSpec smaller = result.minimized;
    smaller.faults.erase(smaller.faults.begin() + static_cast<ptrdiff_t>(drop));
    EXPECT_FALSE(NeedsPair(smaller)) << "dropping fault " << drop;
  }
}

TEST(MinimizerTest, SearchIsDeterministic) {
  const ScenarioSpec original = FiveFaultSpec();
  const MinimizationResult a =
      MinimizeScenarioWith(original, /*max_runs=*/64, NeedsPair);
  const MinimizationResult b =
      MinimizeScenarioWith(original, /*max_runs=*/64, NeedsPair);
  EXPECT_EQ(a.minimized.ToString(), b.minimized.ToString());
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.reduced, b.reduced);
}

TEST(MinimizerTest, ZeroBudgetIsANoOp) {
  const ScenarioSpec original = FiveFaultSpec();
  const MinimizationResult result =
      MinimizeScenarioWith(original, /*max_runs=*/0, NeedsPair);
  EXPECT_EQ(result.runs, 0);
  EXPECT_FALSE(result.reduced);
  EXPECT_EQ(result.minimized.ToString(), original.ToString());
}

TEST(MinimizerTest, PredicateCallsNeverExceedBudget) {
  const ScenarioSpec original = FiveFaultSpec();
  for (int budget : {1, 2, 3, 5, 8}) {
    int calls = 0;
    const MinimizationResult result = MinimizeScenarioWith(
        original, budget, [&calls](const ScenarioSpec& spec) {
          ++calls;
          return NeedsPair(spec);
        });
    EXPECT_LE(calls, budget) << "budget " << budget;
    EXPECT_EQ(calls, result.runs) << "budget " << budget;
    // Whatever the budget allowed, the property still holds (a failed probe
    // never replaces the current spec).
    EXPECT_TRUE(NeedsPair(result.minimized)) << "budget " << budget;
  }
}

TEST(MinimizerTest, AlwaysTruePredicateCollapsesEverything) {
  const ScenarioSpec original = FiveFaultSpec();
  const MinimizationResult result = MinimizeScenarioWith(
      original, /*max_runs=*/16, [](const ScenarioSpec&) { return true; });
  EXPECT_TRUE(result.minimized.faults.empty());
  EXPECT_EQ(result.minimized.workload, WorkloadKind::kNone);
  EXPECT_TRUE(result.reduced);
}

// End-to-end: the RunScenario-backed wrapper with a pinned target oracle.
// The wild-write fixture reliably trips the canary (generation-consistency)
// oracle, and the minimized spec must keep tripping that same oracle.
TEST(MinimizerTest, TargetOracleIsPreservedEndToEnd) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  const ScenarioSpec spec = GenerateScenario(7, 0, options);
  const ScenarioResult before = RunScenario(spec);
  ASSERT_TRUE(before.violated());
  const std::string oracle = before.violations[0].oracle;

  const MinimizationResult result =
      MinimizeScenario(spec, /*max_runs=*/24, oracle);
  const ScenarioResult after = RunScenario(result.minimized);
  bool same_oracle = false;
  for (const OracleViolation& violation : after.violations) {
    same_oracle = same_oracle || violation.oracle == oracle;
  }
  EXPECT_TRUE(same_oracle)
      << "minimized spec no longer trips " << oracle << ": "
      << result.minimized.ToString();
}

}  // namespace
}  // namespace campaign
