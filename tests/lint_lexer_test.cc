// Unit tests for the hive_lint tokenizer -- specifically the hardening
// against the three constructs that made v1 misfire: raw string literals
// (whose bodies can contain anything, including fake rule triggers),
// backslash-spliced line comments (whose tails must not tokenize as code),
// and `#if 0` regions (disabled code must not produce diagnostics).

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/hive_lint/lexer.h"

namespace lint {
namespace {

SourceFile Lex(const std::string& text) {
  SourceFile file;
  file.rel_path = "src/core/test_input.cc";
  Tokenize(text, &file);
  return file;
}

std::vector<std::string> Texts(const SourceFile& file) {
  std::vector<std::string> out;
  out.reserve(file.tokens.size());
  for (const Token& tok : file.tokens) {
    out.push_back(tok.text);
  }
  return out;
}

bool HasIdent(const SourceFile& file, const std::string& name) {
  for (const Token& tok : file.tokens) {
    if (tok.kind == Token::kIdent && tok.text == name) {
      return true;
    }
  }
  return false;
}

TEST(LexerTest, BasicTokensAndLines) {
  SourceFile file = Lex("int x = 42;\nfoo->bar(x);\n");
  const std::vector<std::string> texts = Texts(file);
  EXPECT_EQ(texts, (std::vector<std::string>{"int", "x", "=", "42", ";", "foo",
                                             "->", "bar", "(", "x", ")", ";"}));
  EXPECT_EQ(file.tokens.front().line, 1);
  EXPECT_EQ(file.tokens.back().line, 2);
}

TEST(LexerTest, RawStringBodyIsNotTokenized) {
  // A raw string whose body contains quotes, a fake RawWrite call, and a
  // paren imbalance. None of that may leak into the token stream.
  SourceFile file = Lex(
      "const char* kDoc = R\"(call RawWrite(\"x\") ) ( })\";\n"
      "int after = 1;\n");
  EXPECT_FALSE(HasIdent(file, "RawWrite"));
  EXPECT_TRUE(HasIdent(file, "after"));
  // The literal collapses to a single placeholder string token.
  int strings = 0;
  for (const Token& tok : file.tokens) {
    strings += tok.kind == Token::kString ? 1 : 0;
  }
  EXPECT_EQ(strings, 1);
}

TEST(LexerTest, RawStringCustomDelimiterAndNewlines) {
  // )x" inside the body must not close a delim)-guarded literal, and the
  // embedded newlines must keep later line numbers accurate.
  SourceFile file = Lex(
      "auto s = R\"delim(line one )\" still inside\nline two)delim\";\n"
      "int marker = 2;\n");
  EXPECT_TRUE(HasIdent(file, "marker"));
  for (const Token& tok : file.tokens) {
    if (tok.text == "marker") {
      EXPECT_EQ(tok.line, 3);
    }
  }
}

TEST(LexerTest, RawStringEncodingPrefixes) {
  for (const std::string prefix : {"u8R", "uR", "LR", "UR"}) {
    SourceFile file = Lex("auto s = " + prefix + "\"(hidden RawRead())\";\nint tail = 0;\n");
    EXPECT_FALSE(HasIdent(file, "RawRead")) << prefix;
    EXPECT_TRUE(HasIdent(file, "tail")) << prefix;
  }
  // An identifier merely ending in R (not a prefix) stays an identifier.
  SourceFile file = Lex("int VAR = 1; auto t = VAR\"s\";\n");
  EXPECT_TRUE(HasIdent(file, "VAR"));
}

TEST(LexerTest, SplicedLineCommentSwallowsContinuation) {
  // The backslash splices the second physical line into the comment: the
  // RawWrite there is commentary, not code.
  SourceFile file = Lex(
      "int a = 1; // comment continues \\\n"
      "RawWrite(0x10); still comment\n"
      "int b = 2;\n");
  EXPECT_FALSE(HasIdent(file, "RawWrite"));
  EXPECT_TRUE(HasIdent(file, "b"));
  for (const Token& tok : file.tokens) {
    if (tok.text == "b") {
      EXPECT_EQ(tok.line, 3);  // Line counting survives the splice.
    }
  }
  // The spliced tail is part of the comment body (suppressions keep working).
  ASSERT_EQ(file.comments.size(), 1u);
  EXPECT_NE(file.comments[0].text.find("RawWrite"), std::string::npos);
}

TEST(LexerTest, SplicedSuppressionCommentParses) {
  SourceFile file = Lex(
      "// hive-lint: allow(R2): justification split \\\n"
      "across physical lines for the test\n"
      "RawWrite(0);\n");
  ASSERT_EQ(file.comments.size(), 1u);
  EXPECT_NE(file.comments[0].text.find("allow(R2)"), std::string::npos);
  // The comment ends on line 2; the marker line is where the splice ends.
  EXPECT_EQ(file.comments[0].line, 2);
}

TEST(LexerTest, IfZeroRegionIsSkipped) {
  SourceFile file = Lex(
      "int before = 1;\n"
      "#if 0\n"
      "RawWrite(0xdead);  // disabled code must not tokenize\n"
      "#endif\n"
      "int after = 2;\n");
  EXPECT_FALSE(HasIdent(file, "RawWrite"));
  EXPECT_TRUE(HasIdent(file, "before"));
  EXPECT_TRUE(HasIdent(file, "after"));
  for (const Token& tok : file.tokens) {
    if (tok.text == "after") {
      EXPECT_EQ(tok.line, 5);  // Lines inside the dead region still count.
    }
  }
}

TEST(LexerTest, IfZeroElseArmIsLive) {
  // Only the 0-arm is dead; the #else arm is what the compiler builds.
  SourceFile file = Lex(
      "#if 0\n"
      "int dead = 1;\n"
      "#else\n"
      "int live = 2;\n"
      "#endif\n");
  EXPECT_FALSE(HasIdent(file, "dead"));
  EXPECT_TRUE(HasIdent(file, "live"));
}

TEST(LexerTest, IfZeroTracksNestedConditionals) {
  // The inner #ifdef/#endif must not terminate the outer dead region.
  SourceFile file = Lex(
      "#if 0\n"
      "#ifdef SOMETHING\n"
      "int dead_inner = 1;\n"
      "#endif\n"
      "int dead_outer = 2;\n"
      "#endif\n"
      "int live = 3;\n");
  EXPECT_FALSE(HasIdent(file, "dead_inner"));
  EXPECT_FALSE(HasIdent(file, "dead_outer"));
  EXPECT_TRUE(HasIdent(file, "live"));
}

TEST(LexerTest, OtherDirectivesStillTokenize) {
  // #if 1, #ifdef, #include: their lines flow through (the rules need to see
  // include tokens), and a '#' mid-line is plain punctuation.
  SourceFile file = Lex(
      "#if 1\n"
      "int kept = 1;\n"
      "#endif\n"
      "#define STR(x) #x\n");
  EXPECT_TRUE(HasIdent(file, "kept"));
  EXPECT_TRUE(HasIdent(file, "define"));
}

TEST(LexerTest, StringAndCharLiterals) {
  SourceFile file = Lex("const char* s = \"RawWrite(1)\"; char c = ')';\n");
  EXPECT_FALSE(HasIdent(file, "RawWrite"));
  ASSERT_GE(file.tokens.size(), 2u);
  int char_lits = 0;
  for (const Token& tok : file.tokens) {
    char_lits += tok.kind == Token::kCharLit ? 1 : 0;
  }
  EXPECT_EQ(char_lits, 1);
}

TEST(LexerTest, BlockCommentsCollectedWithEndLine) {
  SourceFile file = Lex("/* spans\nlines */ int x = 1;\n");
  ASSERT_EQ(file.comments.size(), 1u);
  EXPECT_EQ(file.comments[0].line, 2);
  EXPECT_TRUE(HasIdent(file, "x"));
  EXPECT_EQ(file.tokens.front().line, 2);
}

}  // namespace
}  // namespace lint
