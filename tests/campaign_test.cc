// Tests for the fault-campaign engine: seed derivation, scenario generation,
// run determinism, oracle sensitivity (the wild-write fixture), minimization,
// and worker-count independence of the parallel driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/campaign/campaign.h"
#include "src/campaign/corpus.h"
#include "src/campaign/coverage.h"
#include "src/campaign/minimizer.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "tests/test_util.h"

namespace campaign {
namespace {

// --- Seed derivation. ---

// Repro lines in old CI logs must keep meaning the same scenario: the
// derivation is pinned to golden values, not just to properties.
TEST(SeedDerivationTest, GoldenValuesAreStable) {
  EXPECT_EQ(DeriveScenarioSeed(1, 0), 0x7f46a57c92dbee5full);
  EXPECT_EQ(DeriveScenarioSeed(1, 1), 0xa6c7188e0551111eull);
  EXPECT_EQ(DeriveScenarioSeed(0xDEADBEEF, 42), 0xdd1fb5a40a828d4full);
}

TEST(SeedDerivationTest, NeighbouringInputsDecorrelate) {
  std::set<uint64_t> seeds;
  for (uint64_t master = 1; master <= 4; ++master) {
    for (uint64_t index = 0; index < 256; ++index) {
      seeds.insert(DeriveScenarioSeed(master, index));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 256u);  // No collisions across the grid.
  EXPECT_NE(DeriveScenarioSeed(1, 0), 0u);
}

// --- Scenario generation. ---

TEST(ScenarioGeneratorTest, SweepIsWellFormed) {
  const uint64_t master = hivetest::TestSeed(17);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 300; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    SCOPED_TRACE(spec.ToString());
    EXPECT_EQ(spec.seed, DeriveScenarioSeed(master, index));
    EXPECT_TRUE(spec.num_cells == 2 || spec.num_cells == 4);
    EXPECT_FALSE(spec.disable_firewall);
    ASSERT_GE(spec.faults.size(), 1u);
    ASSERT_LE(spec.faults.size(), 3u);
    EXPECT_LE(spec.NodeFailureCount(), spec.num_cells / 2);

    int accusations = 0;
    int message_plans = 0;
    std::set<hive::CellId> node_fail_victims;
    Time previous = 0;
    for (const FaultSpec& fault : spec.faults) {
      EXPECT_GE(fault.inject_at, previous);  // Sorted by injection time.
      previous = fault.inject_at;
      EXPECT_GE(fault.inject_at, 5 * hive::kMillisecond);
      EXPECT_LE(fault.inject_at, 600 * hive::kMillisecond);
      if (fault.kind != FaultKind::kMessageFaults) {
        EXPECT_GE(fault.victim, 0);
        EXPECT_LT(fault.victim, spec.num_cells);
      }
      switch (fault.kind) {
        case FaultKind::kNodeFailure:
          // Distinct victims: failing a dead node is a no-op.
          EXPECT_TRUE(node_fail_victims.insert(fault.victim).second);
          break;
        case FaultKind::kWildWrite:
        case FaultKind::kFalseAccusation:
          EXPECT_NE(fault.target, fault.victim);
          EXPECT_GE(fault.target, 0);
          EXPECT_LT(fault.target, spec.num_cells);
          accusations += fault.kind == FaultKind::kFalseAccusation ? 1 : 0;
          break;
        case FaultKind::kAddrMapCorruption:
          break;
        case FaultKind::kMessageFaults:
          ++message_plans;
          // Route: the all-routes wildcard or a directed pair in the hive.
          if (fault.victim >= 0) {
            EXPECT_LT(fault.victim, spec.num_cells);
            EXPECT_GE(fault.target, 0);
            EXPECT_LT(fault.target, spec.num_cells);
          } else {
            EXPECT_EQ(fault.target, -1);
          }
          EXPECT_GT(fault.duration, 0);
          // Per-hop loss (drop + detected corruption) stays low enough that
          // six consecutive lost round trips -- retry exhaustion against a
          // healthy peer -- remains negligible.
          EXPECT_LE(fault.drop_pm + fault.corrupt_pm, 76u);
          EXPECT_GT(fault.drop_pm + fault.dup_pm + fault.delay_pm + fault.corrupt_pm, 0u);
          break;
        case FaultKind::kRogueCell:
          // Rogue plans only come from the dedicated --faults=rogue modes,
          // never the default sweep (they need the 4-cell voting geometry).
          ADD_FAILURE() << "default sweep generated a rogue-cell plan";
          break;
        case FaultKind::kRebootStorm:
          // Storm plans only come from --faults=reboot-storm.
          ADD_FAILURE() << "default sweep generated a reboot-storm plan";
          break;
      }
    }
    EXPECT_LE(accusations, 1);
    EXPECT_LE(message_plans, 1);
    // Message faults and false accusations never mix in one generated
    // scenario: probe exhaustion during a lossy window would accumulate
    // voting strikes against the healthy accuser (a known flake class).
    EXPECT_FALSE(message_plans > 0 && accusations > 0);
  }
}

TEST(ScenarioGeneratorTest, FixtureModeGeneratesOneLandingWildWrite) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(7, index, options);
    EXPECT_TRUE(spec.disable_firewall);
    ASSERT_EQ(spec.faults.size(), 1u);
    EXPECT_EQ(spec.faults[0].kind, FaultKind::kWildWrite);
    EXPECT_NE(spec.faults[0].victim, spec.faults[0].target);
    EXPECT_NE(spec.ReproLine().find("--fixture=wild_write"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, MessageFaultSweepModeGeneratesOnlyMessagePlans) {
  GeneratorOptions options;
  options.message_faults_only = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(13, index, options);
    EXPECT_TRUE(spec.message_faults_only);
    EXPECT_FALSE(spec.disable_rpc_dedup);
    ASSERT_GE(spec.faults.size(), 1u);
    ASSERT_LE(spec.faults.size(), 2u);
    for (const FaultSpec& fault : spec.faults) {
      EXPECT_EQ(fault.kind, FaultKind::kMessageFaults);
    }
    EXPECT_NE(spec.ReproLine().find("--faults=message"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, NoDedupFixtureGeneratesDuplicationHeavyPlan) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(13, index, options);
    EXPECT_TRUE(spec.disable_rpc_dedup);
    EXPECT_FALSE(spec.auto_reintegrate);  // A reboot would wipe the counters.
    ASSERT_EQ(spec.faults.size(), 1u);
    const FaultSpec& fault = spec.faults[0];
    EXPECT_EQ(fault.kind, FaultKind::kMessageFaults);
    EXPECT_EQ(fault.victim, -1);  // All routes.
    EXPECT_EQ(fault.drop_pm, 0u);     // Pure duplication: losses mask the bug.
    EXPECT_EQ(fault.corrupt_pm, 0u);
    EXPECT_GE(fault.dup_pm, 350u);
    EXPECT_NE(spec.ReproLine().find("--fixture=no_dedup"), std::string::npos);
  }
}

// --- Run determinism. ---

// Golden fingerprints for seed 1, scenarios 0-3, re-captured when the
// dispatch grid of the parallel simulation core landed (dispatches now align
// to the strictly-next 1ms slice point, shifting some end times by a tick).
// These pin the simulator's observable behavior:
// any change to event ordering (tie-breaking, cancellation) or recovery sweep
// order that alters outcomes shows up as a fingerprint diff here. Note this
// only holds for the default generator (HIVE_TEST_SEED does not apply).
TEST(ScenarioRunnerTest, GoldenFingerprintsAreStable) {
  constexpr uint64_t kGolden[] = {
      0x0cd10d52dbd1d3fdull,
      0xfa4d21165034c4c5ull,
      0xd225d0e860f239c5ull,
      0x801a30dc22be1cc7ull,
  };
  constexpr Time kGoldenEndMs[] = {1215, 1039, 1206, 1074};
  for (uint64_t index = 0; index < 4; ++index) {
    const ScenarioSpec spec = GenerateScenario(1, index);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_EQ(result.fingerprint, kGolden[index]);
    EXPECT_EQ(result.end_time / hive::kMillisecond, kGoldenEndMs[index]);
  }
}

TEST(ScenarioRunnerTest, SameSpecSameFingerprint) {
  const uint64_t master = hivetest::TestSeed(5);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 3; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult first = RunScenario(spec);
    const ScenarioResult second = RunScenario(spec);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.end_time, second.end_time);
    EXPECT_EQ(first.injected, second.injected);
    ASSERT_EQ(first.violations.size(), second.violations.size());
    for (size_t v = 0; v < first.violations.size(); ++v) {
      EXPECT_EQ(first.violations[v].ToString(), second.violations[v].ToString());
    }
  }
}

TEST(ScenarioRunnerTest, HealthyScenariosPassAllOracles) {
  const uint64_t master = hivetest::TestSeed(11);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 12; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
  }
}

// --- Oracle sensitivity: the wild-write fixture must be caught. ---

TEST(ScenarioRunnerTest, WildWriteFixtureIsFlaggedAndReproducible) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  const uint64_t master = hivetest::TestSeed(7);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "landed wild write went undetected";
  ASSERT_TRUE(result.injected[0]);
  bool canary_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    canary_flagged = canary_flagged || violation.oracle == "generation-consistency";
  }
  EXPECT_TRUE(canary_flagged) << result.ViolationReport();

  // Reproduction: regenerating from (master_seed, index) -- what the printed
  // repro line encodes -- yields the identical spec and outcome.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
}

TEST(ScenarioRunnerTest, MessageFaultSweepPassesAllOracles) {
  // Loss + duplication + reordering + corruption with the reliable transport
  // intact: every cell survives and every mutation is at-most-once.
  GeneratorOptions options;
  options.message_faults_only = true;
  const uint64_t master = hivetest::TestSeed(13);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 8; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
  }
}

// --- Oracle sensitivity: the no-dedup fixture must trip at-most-once. ---

TEST(ScenarioRunnerTest, NoDedupFixtureTripsAtMostOnceOracleReproducibly) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  const uint64_t master = hivetest::TestSeed(13);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "re-executed duplicates went undetected";
  ASSERT_TRUE(result.injected[0]);
  bool at_most_once_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    at_most_once_flagged =
        at_most_once_flagged || violation.oracle == "rpc-at-most-once";
  }
  EXPECT_TRUE(at_most_once_flagged) << result.ViolationReport();

  // Reproduction: regenerating from (master_seed, index) -- the printed
  // `--seed=N --scenario=K --fixture=no_dedup` line -- yields the identical
  // spec and a byte-identical outcome.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
  ASSERT_EQ(rerun.violations.size(), result.violations.size());
  for (size_t v = 0; v < result.violations.size(); ++v) {
    EXPECT_EQ(rerun.violations[v].ToString(), result.violations[v].ToString());
  }
}

TEST(ScenarioRunnerTest, SuppressionOnRidesOutTheSameDuplication) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  ScenarioSpec spec = GenerateScenario(13, 0, options);
  // Same duplication-heavy plan, replay cache back on: every duplicate is
  // suppressed and every oracle must pass.
  spec.disable_rpc_dedup = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
}

TEST(ScenarioRunnerTest, FirewallOnStopsTheSameWildWrite) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  ScenarioSpec spec = GenerateScenario(7, 0, options);
  // Same fault plan, firewall checking back on: the writer must panic and
  // every oracle must pass (containment held).
  spec.disable_firewall = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
}

// --- Rogue-cell family (Byzantine survivors). ---

TEST(FaultKindNameTest, RoundTripsEveryKind) {
  for (FaultKind kind : kAllFaultKinds) {
    FaultKind parsed;
    ASSERT_TRUE(FaultKindFromName(FaultKindName(kind), &parsed)) << FaultKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(FaultKindFromName("not-a-fault", &parsed));
  EXPECT_FALSE(FaultKindFromName("", &parsed));
}

TEST(ScenarioGeneratorTest, RogueSweepModeGeneratesOneRoguePlan) {
  GeneratorOptions options;
  options.rogue_only = true;
  std::set<uint32_t> axes_seen;
  for (uint64_t index = 0; index < 60; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    SCOPED_TRACE(spec.ToString());
    EXPECT_TRUE(spec.rogue_only);
    EXPECT_EQ(spec.num_cells, 4);  // Three honest cells outvote one rogue.
    EXPECT_EQ(spec.agreement_mode, hive::AgreementMode::kVoting);
    EXPECT_FALSE(spec.auto_reintegrate);
    ASSERT_EQ(spec.faults.size(), 1u);
    const FaultSpec& fault = spec.faults[0];
    EXPECT_EQ(fault.kind, FaultKind::kRogueCell);
    EXPECT_GE(fault.victim, 0);
    EXPECT_LT(fault.victim, spec.num_cells);
    EXPECT_NE(fault.rogue_axes, 0u);
    axes_seen.insert(fault.rogue_axes);
    if (fault.rogue_axes & kRogueVoteAccuse) {
      EXPECT_GE(fault.target, 0);
      EXPECT_LT(fault.target, spec.num_cells);
      EXPECT_NE(fault.target, fault.victim);
    }
    // Babble and silence are same-category and can never combine.
    EXPECT_FALSE((fault.rogue_axes & kRogueRpcBabble) != 0 &&
                 (fault.rogue_axes & kRogueRpcSilence) != 0);
    EXPECT_NE(spec.ReproLine().find("--faults=rogue"), std::string::npos);
  }
  EXPECT_GE(axes_seen.size(), 10u);  // The sweep explores the axis space.
}

TEST(ScenarioGeneratorTest, HealthyBaselineGeneratesZeroFaults) {
  GeneratorOptions options;
  options.healthy_baseline = true;
  for (uint64_t index = 0; index < 20; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    EXPECT_TRUE(spec.healthy_baseline);
    EXPECT_EQ(spec.num_cells, 4);
    EXPECT_EQ(spec.agreement_mode, hive::AgreementMode::kVoting);
    EXPECT_TRUE(spec.faults.empty());
    EXPECT_NE(spec.ReproLine().find("--faults=none"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, NoHopBoundFixtureForcesCyclicChain) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  for (uint64_t index = 0; index < 20; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    EXPECT_TRUE(spec.disable_hop_bound);
    ASSERT_EQ(spec.faults.size(), 1u);
    EXPECT_EQ(spec.faults[0].kind, FaultKind::kRogueCell);
    EXPECT_NE(spec.faults[0].rogue_axes & kRogueHeapCycle, 0u);
    EXPECT_NE(spec.ReproLine().find("--fixture=no_hop_bound"), std::string::npos);
  }
}

TEST(ScenarioRunnerTest, RogueScenariosExciseTheRogueAndNobodyElse) {
  GeneratorOptions options;
  options.rogue_only = true;
  const uint64_t master = hivetest::TestSeed(19);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 8; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
    // Exactly the rogue is excised: detection fired, and no healthy cell
    // was voted out alongside it.
    EXPECT_EQ(result.excisions, 1);
  }
}

TEST(ScenarioRunnerTest, RogueScenarioRunsAreByteDeterministic) {
  GeneratorOptions options;
  options.rogue_only = true;
  const uint64_t master = hivetest::TestSeed(23);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 4; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult first = RunScenario(spec);
    const ScenarioResult second = RunScenario(spec);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.end_time, second.end_time);
    EXPECT_EQ(first.excisions, second.excisions);
    EXPECT_EQ(first.Summary(), second.Summary());
  }
}

TEST(ScenarioRunnerTest, HealthyBaselineSeesZeroExcisions) {
  // The sensitivity baseline: identical geometry and probe drivers, zero
  // faults. Any excision is a detector false positive.
  GeneratorOptions options;
  options.healthy_baseline = true;
  const uint64_t master = hivetest::TestSeed(29);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 6; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
    EXPECT_EQ(result.excisions, 0);
  }
}

TEST(ScenarioRunnerTest, NoHopBoundFixtureTripsNoSurvivorHangOracleReproducibly) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  const uint64_t master = hivetest::TestSeed(19);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "unbounded chain walk went undetected";
  bool hang_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    hang_flagged = hang_flagged || violation.oracle == "no-survivor-hang";
  }
  EXPECT_TRUE(hang_flagged) << result.ViolationReport();

  // The printed `--seed=N --scenario=K --fixture=no_hop_bound` line must
  // reproduce byte-identically.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
  ASSERT_EQ(rerun.violations.size(), result.violations.size());
  for (size_t v = 0; v < result.violations.size(); ++v) {
    EXPECT_EQ(rerun.violations[v].ToString(), result.violations[v].ToString());
  }
}

TEST(ScenarioRunnerTest, HopBoundOnRidesOutTheSameCyclicChain) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  ScenarioSpec spec = GenerateScenario(19, 0, options);
  // Same rogue cyclic-chain plan, hop bound restored: the walk fails fast,
  // the rogue is still excised, and every oracle passes.
  spec.disable_hop_bound = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
  EXPECT_EQ(result.excisions, 1);
}

// --- Minimization. ---

TEST(MinimizerTest, DropsFaultsIrrelevantToTheViolation) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  ScenarioSpec spec = GenerateScenario(7, 0, options);
  // Pad the landing wild write with two faults that cannot cause the canary
  // corruption: a false accusation and a second, never-landing wild write
  // against the accuser.
  FaultSpec accusation;
  accusation.kind = FaultKind::kFalseAccusation;
  accusation.victim = spec.faults[0].target;
  accusation.target = spec.faults[0].victim;
  accusation.inject_at = 20 * hive::kMillisecond;
  spec.faults.insert(spec.faults.begin(), accusation);
  ASSERT_TRUE(RunScenario(spec).violated());

  const MinimizationResult minimized = MinimizeScenario(spec);
  EXPECT_TRUE(minimized.reduced);
  ASSERT_EQ(minimized.minimized.faults.size(), 1u);
  EXPECT_EQ(minimized.minimized.faults[0].kind, FaultKind::kWildWrite);
  EXPECT_EQ(minimized.minimized.workload, WorkloadKind::kNone);
  // The minimized spec still reproduces the violation.
  EXPECT_TRUE(RunScenario(minimized.minimized).violated());
}

// --- Parallel driver. ---

TEST(CampaignDriverTest, WorkerCountDoesNotChangeOutcomes) {
  const uint64_t master = hivetest::TestSeed(3);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  auto sweep = [master](int workers) {
    CampaignOptions options;
    options.master_seed = master;
    options.num_scenarios = 24;
    options.workers = workers;
    options.minimize = false;
    std::map<uint64_t, uint64_t> fingerprints;
    options.on_result = [&fingerprints](const ScenarioResult& result) {
      fingerprints[result.spec.index] = result.fingerprint;
    };
    const CampaignReport report = RunCampaign(options);
    EXPECT_EQ(report.scenarios_run, 24u);
    return fingerprints;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), 24u);
  EXPECT_EQ(serial, parallel);
}

TEST(CampaignDriverTest, FixtureSweepReportsEveryViolationInOrder) {
  CampaignOptions options;
  options.master_seed = 7;
  options.num_scenarios = 4;
  options.workers = 4;
  options.wild_write_fixture = true;
  options.minimize = false;
  const CampaignReport report = RunCampaign(options);
  ASSERT_EQ(report.failures.size(), 4u);
  for (size_t i = 0; i < report.failures.size(); ++i) {
    EXPECT_EQ(report.failures[i].result.spec.index, i);
    EXPECT_NE(report.failures[i].Report().find("repro: hive_campaign --seed=7"),
              std::string::npos);
  }
}

// --- Mutation engine. ---

TEST(MutationTest, ChainFormatRoundTrips) {
  const std::vector<uint64_t> chain = {12, 7, 3099, 0xFFFFFFFFFFFFFFFFull};
  std::vector<uint64_t> parsed;
  ASSERT_TRUE(ParseMutationChain(FormatMutationChain(chain), &parsed));
  EXPECT_EQ(parsed, chain);

  for (const char* bad : {"", "12,", ",12", "12,,7", "12,x", "abc"}) {
    std::vector<uint64_t> out;
    EXPECT_FALSE(ParseMutationChain(bad, &out)) << "input: " << bad;
  }
}

TEST(MutationTest, MutantsAreDeterministicAndChainReplayable) {
  const ScenarioSpec root = GenerateScenario(9, 4);
  ScenarioSpec mutant = root;
  for (uint64_t step : {11ull, 22ull, 33ull}) {
    mutant = MutateScenario(mutant, step);
  }
  ASSERT_EQ(mutant.mutation_chain, (std::vector<uint64_t>{11, 22, 33}));
  // The chain alone rebuilds the mutant from the freshly generated root.
  const ScenarioSpec replayed = ApplyMutationChain(root, mutant.mutation_chain);
  EXPECT_EQ(replayed.ToString(), mutant.ToString());
  EXPECT_EQ(replayed.seed, mutant.seed);
  // A mutant's repro line is self-contained: it encodes the chain.
  EXPECT_NE(mutant.ReproLine().find("--mutate=11,22,33"), std::string::npos)
      << mutant.ReproLine();
}

// Every plan invariant the generator documents must survive mutation, deep
// chains included: a mutant may only trip an oracle by finding a real bug,
// never by violating a scenario precondition.
TEST(MutationTest, MutantsPreserveGeneratorInvariants) {
  const uint64_t master = hivetest::TestSeed(9);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t i = 0; i < 200; ++i) {
    ScenarioSpec spec = GenerateScenario(master, i % 8);
    for (uint64_t depth = 0; depth <= i % 3; ++depth) {
      spec = MutateScenario(spec, i * 31 + depth);
    }
    SCOPED_TRACE("mutant " + std::to_string(i) + ": " + spec.ToString());
    EXPECT_TRUE(spec.num_cells == 2 || spec.num_cells == 4);

    int node_failures = 0;
    int accusations = 0;
    bool has_message_faults = false;
    std::set<CellId> node_victims;
    Time last_inject = 0;
    for (const FaultSpec& fault : spec.faults) {
      EXPECT_GE(fault.inject_at, last_inject);  // Sorted by injection time.
      last_inject = fault.inject_at;
      EXPECT_GE(fault.victim, fault.kind == FaultKind::kMessageFaults ? -1 : 0);
      EXPECT_LT(fault.victim, spec.num_cells);
      switch (fault.kind) {
        case FaultKind::kNodeFailure:
          ++node_failures;
          EXPECT_TRUE(node_victims.insert(fault.victim).second)
              << "duplicate node-failure victim " << fault.victim;
          break;
        case FaultKind::kFalseAccusation:
          ++accusations;
          EXPECT_NE(fault.target, fault.victim);
          EXPECT_GE(fault.target, 0);
          EXPECT_LT(fault.target, spec.num_cells);
          break;
        case FaultKind::kMessageFaults:
          has_message_faults = true;
          EXPECT_LT(fault.target, spec.num_cells);
          break;
        case FaultKind::kWildWrite:
        case FaultKind::kRogueCell:
          EXPECT_NE(fault.target, fault.victim);
          EXPECT_GE(fault.target, 0);
          EXPECT_LT(fault.target, spec.num_cells);
          break;
        case FaultKind::kAddrMapCorruption:
          break;
        case FaultKind::kRebootStorm:
          // Default-sweep mutants can never introduce a storm (duplication
          // and retargeting both preserve the fault-kind population).
          ADD_FAILURE() << "default-sweep mutant produced a reboot-storm plan";
          break;
      }
    }
    EXPECT_LE(node_failures, spec.num_cells / 2);
    EXPECT_LE(accusations, 1);
    if (accusations > 0) {
      EXPECT_FALSE(has_message_faults)
          << "message faults mixed with a false accusation";
    }
  }
}

// --- Coverage extraction. ---

TEST(CoverageTest, ExtractionIsDeterministicAndNonEmpty) {
  const ScenarioSpec spec = GenerateScenario(3, 0);
  const ScenarioResult a = RunScenario(spec);
  const ScenarioResult b = RunScenario(spec);
  EXPECT_FALSE(a.coverage.empty());
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.trace_signature, b.trace_signature);
  EXPECT_NE(a.trace_signature, 0u);
  // The feature vector is sorted and duplicate-free (set semantics).
  EXPECT_TRUE(std::is_sorted(a.coverage.begin(), a.coverage.end()));
  EXPECT_TRUE(std::adjacent_find(a.coverage.begin(), a.coverage.end()) ==
              a.coverage.end());
}

TEST(CoverageTest, MapMergeCountsNovelFeaturesOnly) {
  CoverageMap map;
  EXPECT_EQ(map.Merge({1, 2, 3}), 3u);
  EXPECT_EQ(map.Merge({2, 3, 4}), 1u);
  EXPECT_EQ(map.size(), 4u);
  const uint64_t hash = map.Hash();
  EXPECT_EQ(map.Merge({1, 4}), 0u);
  EXPECT_EQ(map.Hash(), hash);  // No new features, digest unchanged.
}

// --- Corpus persistence. ---

TEST(CorpusTest, EntriesRoundTripThroughTextAndDisk) {
  CorpusEntry entry;
  entry.master_seed = 7;
  entry.index = 3;
  entry.options.message_faults_only = true;
  entry.mutation_chain = {11, 22};

  CorpusEntry parsed;
  ASSERT_TRUE(ParseCorpusEntry(SerializeCorpusEntry(entry), &parsed));
  EXPECT_EQ(parsed.master_seed, entry.master_seed);
  EXPECT_EQ(parsed.index, entry.index);
  EXPECT_STREQ(GeneratorModeName(parsed.options), GeneratorModeName(entry.options));
  EXPECT_EQ(parsed.mutation_chain, entry.mutation_chain);

  const std::string dir = testing::TempDir() + "hive_corpus_roundtrip";
  ASSERT_TRUE(SaveCorpusEntry(dir, entry));
  // Content-addressed names: re-saving the same recipe is idempotent.
  ASSERT_TRUE(SaveCorpusEntry(dir, entry));
  const std::vector<CorpusEntry> loaded = LoadCorpusDir(dir);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].master_seed, entry.master_seed);
  EXPECT_EQ(loaded[0].index, entry.index);
  EXPECT_EQ(loaded[0].mutation_chain, entry.mutation_chain);

  // Regeneration rebuilds exactly the scenario the recipe describes.
  GeneratorOptions options;
  options.message_faults_only = true;
  const ScenarioSpec expected =
      ApplyMutationChain(GenerateScenario(7, 3, options), entry.mutation_chain);
  EXPECT_EQ(RegenerateScenario(loaded[0]).ToString(), expected.ToString());
}

TEST(CorpusTest, ModeNamesRoundTripEveryGeneratorMode) {
  for (const char* name : {"default", "wild_write", "no_dedup", "message",
                           "rogue", "none", "no_hop_bound", "bug_no_dedup"}) {
    GeneratorOptions options;
    ASSERT_TRUE(GeneratorModeFromName(name, &options)) << name;
    EXPECT_STREQ(GeneratorModeName(options), name);
  }
  GeneratorOptions options;
  EXPECT_FALSE(GeneratorModeFromName("bogus", &options));
}

// --- Guided mode. ---

TEST(CampaignDriverTest, GuidedRunIsWorkerCountIndependent) {
  const uint64_t master = hivetest::TestSeed(5);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  auto sweep = [master](int workers) {
    CampaignOptions options;
    options.master_seed = master;
    options.num_scenarios = 24;
    options.workers = workers;
    options.guided = true;
    options.batch_size = 8;
    options.minimize = false;
    return RunCampaign(options);
  };
  const CampaignReport serial = sweep(1);
  const CampaignReport parallel = sweep(4);
  EXPECT_EQ(serial.scenarios_run, 24u);
  EXPECT_EQ(serial.scenarios_run, parallel.scenarios_run);
  EXPECT_EQ(serial.coverage_features, parallel.coverage_features);
  EXPECT_EQ(serial.coverage_hash, parallel.coverage_hash);
  EXPECT_EQ(serial.merged_fingerprint, parallel.merged_fingerprint);
  EXPECT_EQ(serial.corpus_size, parallel.corpus_size);
  EXPECT_EQ(serial.fresh_run, parallel.fresh_run);
  EXPECT_EQ(serial.mutants_run, parallel.mutants_run);
  EXPECT_EQ(serial.first_violation_order, parallel.first_violation_order);
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].result.spec.ToString(),
              parallel.failures[i].result.spec.ToString());
    EXPECT_EQ(serial.failures[i].order, parallel.failures[i].order);
  }
  ASSERT_EQ(serial.buckets.size(), parallel.buckets.size());
  for (size_t i = 0; i < serial.buckets.size(); ++i) {
    EXPECT_EQ(serial.buckets[i].oracle, parallel.buckets[i].oracle);
    EXPECT_EQ(serial.buckets[i].trace_signature, parallel.buckets[i].trace_signature);
    EXPECT_EQ(serial.buckets[i].count, parallel.buckets[i].count);
    EXPECT_EQ(serial.buckets[i].repro, parallel.buckets[i].repro);
  }
  // Guided mode actually exercised the mutation stage.
  EXPECT_GT(serial.mutants_run, 0u);
  EXPECT_GT(serial.fresh_run, 0u);
  EXPECT_GT(serial.corpus_size, 0u);
}

TEST(CampaignDriverTest, TriageBucketsPartitionTheFailures) {
  CampaignOptions options;
  options.master_seed = 7;
  options.num_scenarios = 4;
  options.workers = 4;
  options.wild_write_fixture = true;
  options.minimize = false;
  const CampaignReport report = RunCampaign(options);
  ASSERT_EQ(report.failures.size(), 4u);
  ASSERT_FALSE(report.buckets.empty());
  uint64_t bucketed = 0;
  std::set<std::pair<std::string, uint64_t>> keys;
  for (const TriageBucket& bucket : report.buckets) {
    bucketed += bucket.count;
    EXPECT_TRUE(keys.insert({bucket.oracle, bucket.trace_signature}).second)
        << "duplicate bucket key " << bucket.oracle;
    EXPECT_FALSE(bucket.repro.empty());
    EXPECT_GE(bucket.first_order, 1u);
  }
  EXPECT_EQ(bucketed, report.failures.size());
}

}  // namespace
}  // namespace campaign
