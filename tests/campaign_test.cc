// Tests for the fault-campaign engine: seed derivation, scenario generation,
// run determinism, oracle sensitivity (the wild-write fixture), minimization,
// and worker-count independence of the parallel driver.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/campaign/campaign.h"
#include "src/campaign/minimizer.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "tests/test_util.h"

namespace campaign {
namespace {

// --- Seed derivation. ---

// Repro lines in old CI logs must keep meaning the same scenario: the
// derivation is pinned to golden values, not just to properties.
TEST(SeedDerivationTest, GoldenValuesAreStable) {
  EXPECT_EQ(DeriveScenarioSeed(1, 0), 0x7f46a57c92dbee5full);
  EXPECT_EQ(DeriveScenarioSeed(1, 1), 0xa6c7188e0551111eull);
  EXPECT_EQ(DeriveScenarioSeed(0xDEADBEEF, 42), 0xdd1fb5a40a828d4full);
}

TEST(SeedDerivationTest, NeighbouringInputsDecorrelate) {
  std::set<uint64_t> seeds;
  for (uint64_t master = 1; master <= 4; ++master) {
    for (uint64_t index = 0; index < 256; ++index) {
      seeds.insert(DeriveScenarioSeed(master, index));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 256u);  // No collisions across the grid.
  EXPECT_NE(DeriveScenarioSeed(1, 0), 0u);
}

// --- Scenario generation. ---

TEST(ScenarioGeneratorTest, SweepIsWellFormed) {
  const uint64_t master = hivetest::TestSeed(17);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 300; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    SCOPED_TRACE(spec.ToString());
    EXPECT_EQ(spec.seed, DeriveScenarioSeed(master, index));
    EXPECT_TRUE(spec.num_cells == 2 || spec.num_cells == 4);
    EXPECT_FALSE(spec.disable_firewall);
    ASSERT_GE(spec.faults.size(), 1u);
    ASSERT_LE(spec.faults.size(), 3u);
    EXPECT_LE(spec.NodeFailureCount(), spec.num_cells / 2);

    int accusations = 0;
    int message_plans = 0;
    std::set<hive::CellId> node_fail_victims;
    Time previous = 0;
    for (const FaultSpec& fault : spec.faults) {
      EXPECT_GE(fault.inject_at, previous);  // Sorted by injection time.
      previous = fault.inject_at;
      EXPECT_GE(fault.inject_at, 5 * hive::kMillisecond);
      EXPECT_LE(fault.inject_at, 600 * hive::kMillisecond);
      if (fault.kind != FaultKind::kMessageFaults) {
        EXPECT_GE(fault.victim, 0);
        EXPECT_LT(fault.victim, spec.num_cells);
      }
      switch (fault.kind) {
        case FaultKind::kNodeFailure:
          // Distinct victims: failing a dead node is a no-op.
          EXPECT_TRUE(node_fail_victims.insert(fault.victim).second);
          break;
        case FaultKind::kWildWrite:
        case FaultKind::kFalseAccusation:
          EXPECT_NE(fault.target, fault.victim);
          EXPECT_GE(fault.target, 0);
          EXPECT_LT(fault.target, spec.num_cells);
          accusations += fault.kind == FaultKind::kFalseAccusation ? 1 : 0;
          break;
        case FaultKind::kAddrMapCorruption:
          break;
        case FaultKind::kMessageFaults:
          ++message_plans;
          // Route: the all-routes wildcard or a directed pair in the hive.
          if (fault.victim >= 0) {
            EXPECT_LT(fault.victim, spec.num_cells);
            EXPECT_GE(fault.target, 0);
            EXPECT_LT(fault.target, spec.num_cells);
          } else {
            EXPECT_EQ(fault.target, -1);
          }
          EXPECT_GT(fault.duration, 0);
          // Per-hop loss (drop + detected corruption) stays low enough that
          // six consecutive lost round trips -- retry exhaustion against a
          // healthy peer -- remains negligible.
          EXPECT_LE(fault.drop_pm + fault.corrupt_pm, 76u);
          EXPECT_GT(fault.drop_pm + fault.dup_pm + fault.delay_pm + fault.corrupt_pm, 0u);
          break;
        case FaultKind::kRogueCell:
          // Rogue plans only come from the dedicated --faults=rogue modes,
          // never the default sweep (they need the 4-cell voting geometry).
          ADD_FAILURE() << "default sweep generated a rogue-cell plan";
          break;
      }
    }
    EXPECT_LE(accusations, 1);
    EXPECT_LE(message_plans, 1);
    // Message faults and false accusations never mix in one generated
    // scenario: probe exhaustion during a lossy window would accumulate
    // voting strikes against the healthy accuser (a known flake class).
    EXPECT_FALSE(message_plans > 0 && accusations > 0);
  }
}

TEST(ScenarioGeneratorTest, FixtureModeGeneratesOneLandingWildWrite) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(7, index, options);
    EXPECT_TRUE(spec.disable_firewall);
    ASSERT_EQ(spec.faults.size(), 1u);
    EXPECT_EQ(spec.faults[0].kind, FaultKind::kWildWrite);
    EXPECT_NE(spec.faults[0].victim, spec.faults[0].target);
    EXPECT_NE(spec.ReproLine().find("--fixture=wild_write"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, MessageFaultSweepModeGeneratesOnlyMessagePlans) {
  GeneratorOptions options;
  options.message_faults_only = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(13, index, options);
    EXPECT_TRUE(spec.message_faults_only);
    EXPECT_FALSE(spec.disable_rpc_dedup);
    ASSERT_GE(spec.faults.size(), 1u);
    ASSERT_LE(spec.faults.size(), 2u);
    for (const FaultSpec& fault : spec.faults) {
      EXPECT_EQ(fault.kind, FaultKind::kMessageFaults);
    }
    EXPECT_NE(spec.ReproLine().find("--faults=message"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, NoDedupFixtureGeneratesDuplicationHeavyPlan) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  for (uint64_t index = 0; index < 50; ++index) {
    const ScenarioSpec spec = GenerateScenario(13, index, options);
    EXPECT_TRUE(spec.disable_rpc_dedup);
    EXPECT_FALSE(spec.auto_reintegrate);  // A reboot would wipe the counters.
    ASSERT_EQ(spec.faults.size(), 1u);
    const FaultSpec& fault = spec.faults[0];
    EXPECT_EQ(fault.kind, FaultKind::kMessageFaults);
    EXPECT_EQ(fault.victim, -1);  // All routes.
    EXPECT_EQ(fault.drop_pm, 0u);     // Pure duplication: losses mask the bug.
    EXPECT_EQ(fault.corrupt_pm, 0u);
    EXPECT_GE(fault.dup_pm, 350u);
    EXPECT_NE(spec.ReproLine().find("--fixture=no_dedup"), std::string::npos);
  }
}

// --- Run determinism. ---

// Golden fingerprints for seed 1, scenarios 0-3, captured before the event
// pool / indexed-sweep rework. These pin the simulator's observable behavior:
// any change to event ordering (tie-breaking, cancellation) or recovery sweep
// order that alters outcomes shows up as a fingerprint diff here. Note this
// only holds for the default generator (HIVE_TEST_SEED does not apply).
TEST(ScenarioRunnerTest, GoldenFingerprintsAreStable) {
  constexpr uint64_t kGolden[] = {
      0x0cd10d52dbd1d3fdull,
      0x68ef6467b4faefa0ull,
      0xd225d0e860f239c5ull,
      0x801a30dc22be1cc7ull,
  };
  constexpr Time kGoldenEndMs[] = {1215, 1037, 1206, 1074};
  for (uint64_t index = 0; index < 4; ++index) {
    const ScenarioSpec spec = GenerateScenario(1, index);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_EQ(result.fingerprint, kGolden[index]);
    EXPECT_EQ(result.end_time / hive::kMillisecond, kGoldenEndMs[index]);
  }
}

TEST(ScenarioRunnerTest, SameSpecSameFingerprint) {
  const uint64_t master = hivetest::TestSeed(5);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 3; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult first = RunScenario(spec);
    const ScenarioResult second = RunScenario(spec);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.end_time, second.end_time);
    EXPECT_EQ(first.injected, second.injected);
    ASSERT_EQ(first.violations.size(), second.violations.size());
    for (size_t v = 0; v < first.violations.size(); ++v) {
      EXPECT_EQ(first.violations[v].ToString(), second.violations[v].ToString());
    }
  }
}

TEST(ScenarioRunnerTest, HealthyScenariosPassAllOracles) {
  const uint64_t master = hivetest::TestSeed(11);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 12; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index);
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
  }
}

// --- Oracle sensitivity: the wild-write fixture must be caught. ---

TEST(ScenarioRunnerTest, WildWriteFixtureIsFlaggedAndReproducible) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  const uint64_t master = hivetest::TestSeed(7);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "landed wild write went undetected";
  ASSERT_TRUE(result.injected[0]);
  bool canary_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    canary_flagged = canary_flagged || violation.oracle == "generation-consistency";
  }
  EXPECT_TRUE(canary_flagged) << result.ViolationReport();

  // Reproduction: regenerating from (master_seed, index) -- what the printed
  // repro line encodes -- yields the identical spec and outcome.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
}

TEST(ScenarioRunnerTest, MessageFaultSweepPassesAllOracles) {
  // Loss + duplication + reordering + corruption with the reliable transport
  // intact: every cell survives and every mutation is at-most-once.
  GeneratorOptions options;
  options.message_faults_only = true;
  const uint64_t master = hivetest::TestSeed(13);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 8; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
  }
}

// --- Oracle sensitivity: the no-dedup fixture must trip at-most-once. ---

TEST(ScenarioRunnerTest, NoDedupFixtureTripsAtMostOnceOracleReproducibly) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  const uint64_t master = hivetest::TestSeed(13);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "re-executed duplicates went undetected";
  ASSERT_TRUE(result.injected[0]);
  bool at_most_once_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    at_most_once_flagged =
        at_most_once_flagged || violation.oracle == "rpc-at-most-once";
  }
  EXPECT_TRUE(at_most_once_flagged) << result.ViolationReport();

  // Reproduction: regenerating from (master_seed, index) -- the printed
  // `--seed=N --scenario=K --fixture=no_dedup` line -- yields the identical
  // spec and a byte-identical outcome.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
  ASSERT_EQ(rerun.violations.size(), result.violations.size());
  for (size_t v = 0; v < result.violations.size(); ++v) {
    EXPECT_EQ(rerun.violations[v].ToString(), result.violations[v].ToString());
  }
}

TEST(ScenarioRunnerTest, SuppressionOnRidesOutTheSameDuplication) {
  GeneratorOptions options;
  options.no_dedup_fixture = true;
  ScenarioSpec spec = GenerateScenario(13, 0, options);
  // Same duplication-heavy plan, replay cache back on: every duplicate is
  // suppressed and every oracle must pass.
  spec.disable_rpc_dedup = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
}

TEST(ScenarioRunnerTest, FirewallOnStopsTheSameWildWrite) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  ScenarioSpec spec = GenerateScenario(7, 0, options);
  // Same fault plan, firewall checking back on: the writer must panic and
  // every oracle must pass (containment held).
  spec.disable_firewall = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
}

// --- Rogue-cell family (Byzantine survivors). ---

TEST(FaultKindNameTest, RoundTripsEveryKind) {
  for (FaultKind kind : kAllFaultKinds) {
    FaultKind parsed;
    ASSERT_TRUE(FaultKindFromName(FaultKindName(kind), &parsed)) << FaultKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(FaultKindFromName("not-a-fault", &parsed));
  EXPECT_FALSE(FaultKindFromName("", &parsed));
}

TEST(ScenarioGeneratorTest, RogueSweepModeGeneratesOneRoguePlan) {
  GeneratorOptions options;
  options.rogue_only = true;
  std::set<uint32_t> axes_seen;
  for (uint64_t index = 0; index < 60; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    SCOPED_TRACE(spec.ToString());
    EXPECT_TRUE(spec.rogue_only);
    EXPECT_EQ(spec.num_cells, 4);  // Three honest cells outvote one rogue.
    EXPECT_EQ(spec.agreement_mode, hive::AgreementMode::kVoting);
    EXPECT_FALSE(spec.auto_reintegrate);
    ASSERT_EQ(spec.faults.size(), 1u);
    const FaultSpec& fault = spec.faults[0];
    EXPECT_EQ(fault.kind, FaultKind::kRogueCell);
    EXPECT_GE(fault.victim, 0);
    EXPECT_LT(fault.victim, spec.num_cells);
    EXPECT_NE(fault.rogue_axes, 0u);
    axes_seen.insert(fault.rogue_axes);
    if (fault.rogue_axes & kRogueVoteAccuse) {
      EXPECT_GE(fault.target, 0);
      EXPECT_LT(fault.target, spec.num_cells);
      EXPECT_NE(fault.target, fault.victim);
    }
    // Babble and silence are same-category and can never combine.
    EXPECT_FALSE((fault.rogue_axes & kRogueRpcBabble) != 0 &&
                 (fault.rogue_axes & kRogueRpcSilence) != 0);
    EXPECT_NE(spec.ReproLine().find("--faults=rogue"), std::string::npos);
  }
  EXPECT_GE(axes_seen.size(), 10u);  // The sweep explores the axis space.
}

TEST(ScenarioGeneratorTest, HealthyBaselineGeneratesZeroFaults) {
  GeneratorOptions options;
  options.healthy_baseline = true;
  for (uint64_t index = 0; index < 20; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    EXPECT_TRUE(spec.healthy_baseline);
    EXPECT_EQ(spec.num_cells, 4);
    EXPECT_EQ(spec.agreement_mode, hive::AgreementMode::kVoting);
    EXPECT_TRUE(spec.faults.empty());
    EXPECT_NE(spec.ReproLine().find("--faults=none"), std::string::npos);
  }
}

TEST(ScenarioGeneratorTest, NoHopBoundFixtureForcesCyclicChain) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  for (uint64_t index = 0; index < 20; ++index) {
    const ScenarioSpec spec = GenerateScenario(19, index, options);
    EXPECT_TRUE(spec.disable_hop_bound);
    ASSERT_EQ(spec.faults.size(), 1u);
    EXPECT_EQ(spec.faults[0].kind, FaultKind::kRogueCell);
    EXPECT_NE(spec.faults[0].rogue_axes & kRogueHeapCycle, 0u);
    EXPECT_NE(spec.ReproLine().find("--fixture=no_hop_bound"), std::string::npos);
  }
}

TEST(ScenarioRunnerTest, RogueScenariosExciseTheRogueAndNobodyElse) {
  GeneratorOptions options;
  options.rogue_only = true;
  const uint64_t master = hivetest::TestSeed(19);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 8; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
    // Exactly the rogue is excised: detection fired, and no healthy cell
    // was voted out alongside it.
    EXPECT_EQ(result.excisions, 1);
  }
}

TEST(ScenarioRunnerTest, RogueScenarioRunsAreByteDeterministic) {
  GeneratorOptions options;
  options.rogue_only = true;
  const uint64_t master = hivetest::TestSeed(23);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 4; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult first = RunScenario(spec);
    const ScenarioResult second = RunScenario(spec);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.end_time, second.end_time);
    EXPECT_EQ(first.excisions, second.excisions);
    EXPECT_EQ(first.Summary(), second.Summary());
  }
}

TEST(ScenarioRunnerTest, HealthyBaselineSeesZeroExcisions) {
  // The sensitivity baseline: identical geometry and probe drivers, zero
  // faults. Any excision is a detector false positive.
  GeneratorOptions options;
  options.healthy_baseline = true;
  const uint64_t master = hivetest::TestSeed(29);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  for (uint64_t index = 0; index < 6; ++index) {
    const ScenarioSpec spec = GenerateScenario(master, index, options);
    SCOPED_TRACE(spec.ToString());
    const ScenarioResult result = RunScenario(spec);
    EXPECT_FALSE(result.violated()) << result.ViolationReport();
    EXPECT_EQ(result.excisions, 0);
  }
}

TEST(ScenarioRunnerTest, NoHopBoundFixtureTripsNoSurvivorHangOracleReproducibly) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  const uint64_t master = hivetest::TestSeed(19);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  const ScenarioSpec spec = GenerateScenario(master, 0, options);
  const ScenarioResult result = RunScenario(spec);
  ASSERT_TRUE(result.violated()) << "unbounded chain walk went undetected";
  bool hang_flagged = false;
  for (const OracleViolation& violation : result.violations) {
    hang_flagged = hang_flagged || violation.oracle == "no-survivor-hang";
  }
  EXPECT_TRUE(hang_flagged) << result.ViolationReport();

  // The printed `--seed=N --scenario=K --fixture=no_hop_bound` line must
  // reproduce byte-identically.
  const ScenarioSpec again = GenerateScenario(spec.master_seed, spec.index, options);
  EXPECT_EQ(again.ToString(), spec.ToString());
  const ScenarioResult rerun = RunScenario(again);
  EXPECT_EQ(rerun.fingerprint, result.fingerprint);
  ASSERT_EQ(rerun.violations.size(), result.violations.size());
  for (size_t v = 0; v < result.violations.size(); ++v) {
    EXPECT_EQ(rerun.violations[v].ToString(), result.violations[v].ToString());
  }
}

TEST(ScenarioRunnerTest, HopBoundOnRidesOutTheSameCyclicChain) {
  GeneratorOptions options;
  options.no_hop_bound_fixture = true;
  ScenarioSpec spec = GenerateScenario(19, 0, options);
  // Same rogue cyclic-chain plan, hop bound restored: the walk fails fast,
  // the rogue is still excised, and every oracle passes.
  spec.disable_hop_bound = false;
  const ScenarioResult result = RunScenario(spec);
  EXPECT_FALSE(result.violated()) << result.ViolationReport();
  EXPECT_EQ(result.excisions, 1);
}

// --- Minimization. ---

TEST(MinimizerTest, DropsFaultsIrrelevantToTheViolation) {
  GeneratorOptions options;
  options.wild_write_fixture = true;
  ScenarioSpec spec = GenerateScenario(7, 0, options);
  // Pad the landing wild write with two faults that cannot cause the canary
  // corruption: a false accusation and a second, never-landing wild write
  // against the accuser.
  FaultSpec accusation;
  accusation.kind = FaultKind::kFalseAccusation;
  accusation.victim = spec.faults[0].target;
  accusation.target = spec.faults[0].victim;
  accusation.inject_at = 20 * hive::kMillisecond;
  spec.faults.insert(spec.faults.begin(), accusation);
  ASSERT_TRUE(RunScenario(spec).violated());

  const MinimizationResult minimized = MinimizeScenario(spec);
  EXPECT_TRUE(minimized.reduced);
  ASSERT_EQ(minimized.minimized.faults.size(), 1u);
  EXPECT_EQ(minimized.minimized.faults[0].kind, FaultKind::kWildWrite);
  EXPECT_EQ(minimized.minimized.workload, WorkloadKind::kNone);
  // The minimized spec still reproduces the violation.
  EXPECT_TRUE(RunScenario(minimized.minimized).violated());
}

// --- Parallel driver. ---

TEST(CampaignDriverTest, WorkerCountDoesNotChangeOutcomes) {
  const uint64_t master = hivetest::TestSeed(3);
  SCOPED_TRACE(hivetest::SeedTrace(master));
  auto sweep = [master](int workers) {
    CampaignOptions options;
    options.master_seed = master;
    options.num_scenarios = 24;
    options.workers = workers;
    options.minimize = false;
    std::map<uint64_t, uint64_t> fingerprints;
    options.on_result = [&fingerprints](const ScenarioResult& result) {
      fingerprints[result.spec.index] = result.fingerprint;
    };
    const CampaignReport report = RunCampaign(options);
    EXPECT_EQ(report.scenarios_run, 24u);
    return fingerprints;
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), 24u);
  EXPECT_EQ(serial, parallel);
}

TEST(CampaignDriverTest, FixtureSweepReportsEveryViolationInOrder) {
  CampaignOptions options;
  options.master_seed = 7;
  options.num_scenarios = 4;
  options.workers = 4;
  options.wild_write_fixture = true;
  options.minimize = false;
  const CampaignReport report = RunCampaign(options);
  ASSERT_EQ(report.failures.size(), 4u);
  for (size_t i = 0; i < report.failures.size(); ++i) {
    EXPECT_EQ(report.failures[i].result.spec.index, i);
    EXPECT_NE(report.failures[i].Report().find("repro: hive_campaign --seed=7"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace campaign
