#!/usr/bin/env bash
# End-to-end check of the campaign repro pipeline:
#   1. a wild-write fixture sweep (firewall checking off) must flag every
#      scenario and print a self-contained repro line;
#   2. rerunning the printed repro line must reproduce the violation
#      byte-identically (same spec, same fingerprint, same report).
#
# Usage: campaign_repro_test.sh <path-to-hive_campaign>
set -u

BIN="${1:?usage: campaign_repro_test.sh <hive_campaign>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "campaign_repro_test: FAIL: $*" >&2
  exit 1
}

# Fixture sweep: every scenario deliberately lands a wild write, so the
# sweep must exit nonzero and report the violations.
if "$BIN" --seed=7 --scenarios=3 --workers=2 --fixture=wild_write \
    --no-minimize >"$TMP/sweep.out" 2>&1; then
  cat "$TMP/sweep.out" >&2
  fail "fixture sweep exited 0 despite landed wild writes"
fi
grep -q "3 violation(s)" "$TMP/sweep.out" || \
  { cat "$TMP/sweep.out" >&2; fail "sweep did not flag all 3 scenarios"; }
grep -q "repro: hive_campaign --seed=7" "$TMP/sweep.out" || \
  { cat "$TMP/sweep.out" >&2; fail "sweep printed no repro line"; }

# Take the first printed repro line and run it twice through the binary.
repro="$(grep -m1 -o 'hive_campaign --seed=[0-9]* --scenario=[0-9]*.*' \
  "$TMP/sweep.out")" || fail "could not extract a repro line"
read -r -a repro_args <<<"${repro#hive_campaign }"

"$BIN" "${repro_args[@]}" >"$TMP/run1.out" 2>&1
status1=$?
"$BIN" "${repro_args[@]}" >"$TMP/run2.out" 2>&1
status2=$?

[[ "$status1" -eq 1 ]] || fail "repro run exited $status1, expected 1 (violation)"
[[ "$status2" -eq 1 ]] || fail "second repro run exited $status2, expected 1"
cmp -s "$TMP/run1.out" "$TMP/run2.out" || {
  diff "$TMP/run1.out" "$TMP/run2.out" >&2 || true
  fail "repro runs were not byte-identical"
}
grep -q "containment violation" "$TMP/run1.out" || \
  { cat "$TMP/run1.out" >&2; fail "repro run did not report the violation"; }
grep -q "fingerprint=0x" "$TMP/run1.out" || \
  fail "repro run printed no fingerprint"

echo "campaign_repro_test: OK (repro: $repro)"
