#include "src/core/filesystem.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() : ts_(hivetest::BootHive(4)) {}

  hivetest::TestSystem ts_;
};

TEST_F(FileSystemTest, CreateRegistersGlobalPath) {
  Cell& cell = ts_.cell(2);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/a/b", workloads::PatternData(1, 100));
  ASSERT_TRUE(id.ok());
  auto found = ts_.hive->LookupPath("/a/b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->data_home, 2);
}

TEST_F(FileSystemTest, DuplicateCreateFails) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  ASSERT_TRUE(cell.fs().Create(ctx, "/dup", {}).ok());
  EXPECT_EQ(cell.fs().Create(ctx, "/dup", {}).status().code(),
            base::StatusCode::kAlreadyExists);
}

TEST_F(FileSystemTest, OpenMissingFileIsNotFound) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  EXPECT_EQ(cell.fs().Open(ctx, "/nope").status().code(), base::StatusCode::kNotFound);
}

TEST_F(FileSystemTest, LocalReadAfterWriteRoundTrips) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  ASSERT_TRUE(cell.fs().Create(ctx, "/rw", {}).ok());
  auto handle = cell.fs().Open(ctx, "/rw");
  ASSERT_TRUE(handle.ok());
  const std::vector<uint8_t> data = workloads::PatternData(42, 10000);
  ASSERT_TRUE(cell.fs().Write(ctx, *handle, 100, std::span<const uint8_t>(data)).ok());
  std::vector<uint8_t> buf(10000);
  ASSERT_TRUE(cell.fs().Read(ctx, *handle, 100, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(buf, data);
}

TEST_F(FileSystemTest, WriteExtendsFileSize) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/grow", {});
  ASSERT_TRUE(id.ok());
  auto handle = cell.fs().Open(ctx, "/grow");
  const std::vector<uint8_t> data(5000, 0xAA);
  ASSERT_TRUE(cell.fs().Write(ctx, *handle, 20000, std::span<const uint8_t>(data)).ok());
  EXPECT_EQ(cell.fs().FindVnode(id->vnode)->size_bytes, 25000u);
}

TEST_F(FileSystemTest, RemoteOpenLatencyMatchesTable73) {
  // Table 7.3: open is 148 us local, 580 us remote (3.9x).
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/o", {}).ok());

  Ctx local_ctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Open(local_ctx, "/o").ok());

  Cell& client = ts_.cell(0);
  Ctx remote_ctx = client.MakeCtx();
  ASSERT_TRUE(client.fs().Open(remote_ctx, "/o").ok());

  EXPECT_NEAR(static_cast<double>(local_ctx.elapsed), 148000, 2000);
  EXPECT_NEAR(static_cast<double>(remote_ctx.elapsed), 580000, 60000);
  const double ratio =
      static_cast<double>(remote_ctx.elapsed) / static_cast<double>(local_ctx.elapsed);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(FileSystemTest, FourMbReadLatenciesMatchTable73) {
  // Table 7.3: 4 MB read is 65.0 ms local, 76.2 ms remote (1.2x).
  const uint64_t size = 4ull * 1024 * 1024;
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/big", workloads::PatternData(3, size)).ok());
  // Warm the home cache.
  auto hh = home.fs().Open(hctx, "/big");
  std::vector<uint8_t> buf(size);
  ASSERT_TRUE(home.fs().Read(hctx, *hh, 0, std::span<uint8_t>(buf)).ok());

  Ctx local_ctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Read(local_ctx, *hh, 0, std::span<uint8_t>(buf)).ok());

  Cell& client = ts_.cell(0);
  Ctx open_ctx = client.MakeCtx();
  auto ch = client.fs().Open(open_ctx, "/big");
  ASSERT_TRUE(ch.ok());
  Ctx remote_ctx = client.MakeCtx();
  ASSERT_TRUE(client.fs().Read(remote_ctx, *ch, 0, std::span<uint8_t>(buf)).ok());

  EXPECT_NEAR(static_cast<double>(local_ctx.elapsed) / 1e6, 65.0, 2.0);
  EXPECT_NEAR(static_cast<double>(remote_ctx.elapsed) / 1e6, 76.2, 3.0);
}

TEST_F(FileSystemTest, FourMbWriteLatenciesMatchTable73) {
  // Table 7.3: 4 MB write/extend is 83.7 ms local, 87.3 ms remote (1.1x).
  const uint64_t size = 4ull * 1024 * 1024;
  const std::vector<uint8_t> data = workloads::PatternData(5, size);
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/w", {}).ok());
  auto hh = home.fs().Open(hctx, "/w");

  Ctx local_ctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Write(local_ctx, *hh, 0, std::span<const uint8_t>(data)).ok());

  Cell& client = ts_.cell(0);
  Ctx open_ctx = client.MakeCtx();
  auto ch = client.fs().Open(open_ctx, "/w");
  ASSERT_TRUE(ch.ok());
  Ctx remote_ctx = client.MakeCtx();
  ASSERT_TRUE(client.fs().Write(remote_ctx, *ch, 0, std::span<const uint8_t>(data)).ok());

  EXPECT_NEAR(static_cast<double>(local_ctx.elapsed) / 1e6, 83.7, 2.0);
  EXPECT_NEAR(static_cast<double>(remote_ctx.elapsed) / 1e6, 87.3, 4.0);
}

TEST_F(FileSystemTest, StaleGenerationAfterDirtyPageLoss) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/gen", workloads::PatternData(9, 4096));
  ASSERT_TRUE(id.ok());
  auto old_handle = cell.fs().Open(ctx, "/gen");
  ASSERT_TRUE(old_handle.ok());

  // A recovery decided a dirty page of this file was lost.
  cell.fs().NoteDirtyPageLost(id->vnode);

  // The pre-failure handle observes an error (section 4.2).
  std::vector<uint8_t> buf(100);
  EXPECT_EQ(cell.fs().Read(ctx, *old_handle, 0, std::span<uint8_t>(buf)).code(),
            base::StatusCode::kStaleGeneration);

  // A fresh open reads whatever is on disk.
  auto new_handle = cell.fs().Open(ctx, "/gen");
  ASSERT_TRUE(new_handle.ok());
  EXPECT_TRUE(cell.fs().Read(ctx, *new_handle, 0, std::span<uint8_t>(buf)).ok());
}

TEST_F(FileSystemTest, SyncWritesDirtyPagesToDisk) {
  Cell& cell = ts_.cell(0);
  Ctx ctx = cell.MakeCtx();
  auto id = cell.fs().Create(ctx, "/sync", {});
  ASSERT_TRUE(id.ok());
  auto handle = cell.fs().Open(ctx, "/sync");
  const std::vector<uint8_t> data = workloads::PatternData(11, 8192);
  ASSERT_TRUE(cell.fs().Write(ctx, *handle, 0, std::span<const uint8_t>(data)).ok());
  EXPECT_LT(cell.fs().FindVnode(id->vnode)->disk_image.size(), 8192u);
  ASSERT_TRUE(cell.fs().Sync(ctx, id->vnode).ok());
  const Vnode* vnode = cell.fs().FindVnode(id->vnode);
  ASSERT_EQ(vnode->disk_image.size(), 8192u);
  EXPECT_EQ(workloads::Checksum(vnode->disk_image), workloads::Checksum(data));
}

TEST_F(FileSystemTest, ShadowVnodeReusedAcrossOpens) {
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/s", {}).ok());
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto h1 = client.fs().Open(ctx, "/s");
  auto h2 = client.fs().Open(ctx, "/s");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->local_vnode, h2->local_vnode);
  EXPECT_NE(client.fs().FindVnode(h1->local_vnode), nullptr);
  EXPECT_TRUE(client.fs().FindVnode(h1->local_vnode)->is_shadow);
}

TEST_F(FileSystemTest, OpenOfFileOnDeadCellTimesOut) {
  Cell& home = ts_.cell(2);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/dead", {}).ok());
  ts_.machine->FailNode(2);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto handle = client.fs().Open(ctx, "/dead");
  EXPECT_EQ(handle.status().code(), base::StatusCode::kTimeout);
}

}  // namespace
}  // namespace hive
