#include "src/core/trace.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/flash/fault_injector.h"
#include "tests/test_util.h"

namespace hive {
namespace {

TEST(TraceBufferTest, RecordsInOrder) {
  TraceBuffer trace;
  trace.Record(100, TraceEvent::kBoot);
  trace.Record(200, TraceEvent::kHintRaised, 2);
  trace.Record(300, TraceEvent::kEnterRecovery, 2);
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event, TraceEvent::kBoot);
  EXPECT_EQ(records[2].event, TraceEvent::kEnterRecovery);
  EXPECT_EQ(records[1].arg0, 2u);
}

TEST(TraceBufferTest, RingOverwritesOldest) {
  TraceBuffer trace;
  for (uint64_t i = 0; i < TraceBuffer::kCapacity + 10; ++i) {
    trace.Record(static_cast<Time>(i), TraceEvent::kSwapOut, i);
  }
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(records.front().arg0, 10u);  // The 10 oldest were overwritten.
  EXPECT_EQ(records.back().arg0, TraceBuffer::kCapacity + 9);
  EXPECT_EQ(trace.total_recorded(), TraceBuffer::kCapacity + 10);
}

TEST(TraceBufferTest, RenderNamesEvents) {
  TraceBuffer trace;
  trace.Record(1500, TraceEvent::kPanic);
  const std::string dump = trace.Render();
  EXPECT_NE(dump.find("panic"), std::string::npos);
  EXPECT_NE(dump.find("t=1us"), std::string::npos);
}

TEST(TraceIntegrationTest, FailureLeavesAuditTrailOnSurvivors) {
  auto ts = hivetest::BootHive(4);
  flash::FaultInjector injector(ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 30 * kMillisecond);
  ts.machine->events().RunUntil(300 * kMillisecond);

  // Every survivor booted, entered and exited recovery exactly once.
  for (CellId c : ts.hive->LiveCells()) {
    TraceBuffer& trace = ts.cell(c).trace();
    EXPECT_EQ(trace.Count(TraceEvent::kBoot), 1) << c;
    EXPECT_EQ(trace.Count(TraceEvent::kEnterRecovery), 1) << c;
    EXPECT_EQ(trace.Count(TraceEvent::kExitRecovery), 1) << c;
  }
  // Somebody raised the hint.
  int hints = 0;
  for (CellId c : ts.hive->LiveCells()) {
    hints += ts.cell(c).trace().Count(TraceEvent::kHintRaised);
  }
  EXPECT_GE(hints, 1);
}

TEST(TraceIntegrationTest, PanickedCellKeepsPostMortem) {
  auto ts = hivetest::BootHive(4);
  ts.cell(1).Panic("test");
  EXPECT_EQ(ts.cell(1).trace().Count(TraceEvent::kPanic), 1);
  EXPECT_NE(ts.cell(1).trace().Render().find("panic"), std::string::npos);
}

}  // namespace
}  // namespace hive
