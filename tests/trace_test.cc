#include "src/core/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/cell.h"
#include "src/flash/fault_injector.h"
#include "tests/test_util.h"

namespace hive {
namespace {

TEST(TraceBufferTest, RecordsInOrder) {
  TraceBuffer trace;
  trace.Record(100, TraceEvent::kBoot);
  trace.Record(200, TraceEvent::kHintRaised, 2);
  trace.Record(300, TraceEvent::kEnterRecovery, 2);
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event, TraceEvent::kBoot);
  EXPECT_EQ(records[2].event, TraceEvent::kEnterRecovery);
  EXPECT_EQ(records[1].arg0, 2u);
}

TEST(TraceBufferTest, RingOverwritesOldest) {
  TraceBuffer trace;
  for (uint64_t i = 0; i < TraceBuffer::kCapacity + 10; ++i) {
    trace.Record(static_cast<Time>(i), TraceEvent::kSwapOut, i);
  }
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(records.front().arg0, 10u);  // The 10 oldest were overwritten.
  EXPECT_EQ(records.back().arg0, TraceBuffer::kCapacity + 9);
  EXPECT_EQ(trace.total_recorded(), TraceBuffer::kCapacity + 10);
}

TEST(TraceBufferTest, SnapshotAtExactCapacityBoundary) {
  // next_ == kCapacity is the edge between the un-wrapped single-span path
  // and the wrapped two-span path: both sides of the boundary must agree.
  TraceBuffer trace;
  for (uint64_t i = 0; i < TraceBuffer::kCapacity; ++i) {
    trace.Record(static_cast<Time>(i), TraceEvent::kSwapIn, i);
  }
  auto full = trace.Snapshot();
  ASSERT_EQ(full.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(full.front().arg0, 0u);
  EXPECT_EQ(full.back().arg0, TraceBuffer::kCapacity - 1);

  trace.Record(static_cast<Time>(TraceBuffer::kCapacity), TraceEvent::kSwapIn,
               TraceBuffer::kCapacity);
  auto wrapped = trace.Snapshot();
  ASSERT_EQ(wrapped.size(), TraceBuffer::kCapacity);
  EXPECT_EQ(wrapped.front().arg0, 1u);  // Oldest slot was overwritten.
  EXPECT_EQ(wrapped.back().arg0, TraceBuffer::kCapacity);
}

TEST(TraceBufferTest, CountMatchesSnapshotBeforeAndAfterWrap) {
  TraceBuffer trace;
  auto count_via_snapshot = [&](TraceEvent event) {
    int n = 0;
    for (const TraceRecord& r : trace.Snapshot()) {
      n += r.event == event ? 1 : 0;
    }
    return n;
  };
  for (uint64_t i = 0; i < TraceBuffer::kCapacity / 2; ++i) {
    trace.Record(static_cast<Time>(i), TraceEvent::kSwapOut, i);
  }
  EXPECT_EQ(trace.Count(TraceEvent::kSwapOut), count_via_snapshot(TraceEvent::kSwapOut));
  for (uint64_t i = 0; i < TraceBuffer::kCapacity; ++i) {
    trace.Record(static_cast<Time>(i), TraceEvent::kSwapIn, i);
  }
  EXPECT_EQ(trace.Count(TraceEvent::kSwapOut), count_via_snapshot(TraceEvent::kSwapOut));
  EXPECT_EQ(trace.Count(TraceEvent::kSwapIn), count_via_snapshot(TraceEvent::kSwapIn));
}

TEST(TraceBufferTest, RenderNamesEvents) {
  TraceBuffer trace;
  trace.Record(1500, TraceEvent::kPanic);
  const std::string dump = trace.Render();
  EXPECT_NE(dump.find("panic"), std::string::npos);
  EXPECT_NE(dump.find("t=1us"), std::string::npos);
}

TEST(TraceBufferTest, EveryEventHasADistinctName) {
  // TraceEventName must cover the whole enum (the lint's R4 rule) and no two
  // events may share a name, or trace dumps and triage become ambiguous.
  std::set<std::string> names;
  for (uint8_t value = 0; value <= static_cast<uint8_t>(TraceEvent::kReintegrationDone);
       ++value) {
    const std::string name = TraceEventName(static_cast<TraceEvent>(value));
    EXPECT_NE(name, "?") << "unnamed event " << static_cast<int>(value);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_TRUE(names.count("page-salvaged"));
  EXPECT_TRUE(names.count("salvage-rejected"));
  EXPECT_TRUE(names.count("reintegration-start"));
  EXPECT_TRUE(names.count("reintegration-done"));
}

TEST(TraceIntegrationTest, FailureLeavesAuditTrailOnSurvivors) {
  auto ts = hivetest::BootHive(4);
  flash::FaultInjector injector(ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 30 * kMillisecond);
  ts.machine->events().RunUntil(300 * kMillisecond);

  // Every survivor booted, entered and exited recovery exactly once.
  for (CellId c : ts.hive->LiveCells()) {
    TraceBuffer& trace = ts.cell(c).trace();
    EXPECT_EQ(trace.Count(TraceEvent::kBoot), 1) << c;
    EXPECT_EQ(trace.Count(TraceEvent::kEnterRecovery), 1) << c;
    EXPECT_EQ(trace.Count(TraceEvent::kExitRecovery), 1) << c;
  }
  // Somebody raised the hint.
  int hints = 0;
  for (CellId c : ts.hive->LiveCells()) {
    hints += ts.cell(c).trace().Count(TraceEvent::kHintRaised);
  }
  EXPECT_GE(hints, 1);
}

TEST(TraceBufferTest, CountSurvivesWraparound) {
  // Mixed event kinds across several full ring wraps: Count must reflect
  // only the records still in the ring, and Snapshot must stay time-ordered.
  TraceBuffer trace;
  const uint64_t total = 3 * TraceBuffer::kCapacity + 7;
  for (uint64_t i = 0; i < total; ++i) {
    const TraceEvent event = i % 3 == 0   ? TraceEvent::kSwapOut
                             : i % 3 == 1 ? TraceEvent::kSwapIn
                                          : TraceEvent::kPageDiscarded;
    trace.Record(static_cast<Time>(i), event, i);
  }
  EXPECT_EQ(trace.total_recorded(), total);
  const auto records = trace.Snapshot();
  ASSERT_EQ(records.size(), TraceBuffer::kCapacity);
  // The ring holds exactly the newest kCapacity records, still in order.
  EXPECT_EQ(records.front().arg0, total - TraceBuffer::kCapacity);
  EXPECT_EQ(records.back().arg0, total - 1);
  int counted = 0;
  for (TraceEvent event :
       {TraceEvent::kSwapOut, TraceEvent::kSwapIn, TraceEvent::kPageDiscarded}) {
    counted += trace.Count(event);
  }
  EXPECT_EQ(counted, static_cast<int>(TraceBuffer::kCapacity));
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].when, records[i - 1].when);
  }
  // A kind that was never recorded counts zero even after wrapping.
  EXPECT_EQ(trace.Count(TraceEvent::kPanic), 0);
}

// Golden event order across a full fail -> agree -> recover sequence: on
// every survivor the recovery-related records appear in exactly the order
// the protocol prescribes, with consistent timestamps and arguments.
TEST(TraceIntegrationTest, GoldenEventOrderThroughRecovery) {
  auto ts = hivetest::BootHive(4);
  const CellId victim = 2;
  flash::FaultInjector injector(ts.machine.get(), 1);
  injector.ScheduleNodeFailure(victim, 30 * kMillisecond);
  ts.machine->events().RunUntil(400 * kMillisecond);
  ASSERT_FALSE(ts.cell(victim).alive());

  int accusers = 0;
  for (CellId c : ts.hive->LiveCells()) {
    TraceBuffer& trace = ts.cell(c).trace();
    // Filter to the recovery-protocol events.
    std::vector<TraceRecord> protocol;
    for (const TraceRecord& record : trace.Snapshot()) {
      switch (record.event) {
        case TraceEvent::kBoot:
        case TraceEvent::kHintRaised:
        case TraceEvent::kEnterRecovery:
        case TraceEvent::kExitRecovery:
          protocol.push_back(record);
          break;
        default:
          break;
      }
    }
    // Golden order: boot, optional hint, enter, exit -- nothing else.
    ASSERT_GE(protocol.size(), 3u) << "cell " << c;
    ASSERT_LE(protocol.size(), 4u) << "cell " << c;
    const bool raised_hint = protocol.size() == 4;
    size_t at = 0;
    EXPECT_EQ(protocol[at++].event, TraceEvent::kBoot) << c;
    if (raised_hint) {
      ++accusers;
      EXPECT_EQ(protocol[at].event, TraceEvent::kHintRaised) << c;
      // The hint names the failed cell.
      EXPECT_EQ(protocol[at].arg0, static_cast<uint64_t>(victim)) << c;
      EXPECT_GE(protocol[at].when, 30 * kMillisecond) << c;
      ++at;
    }
    EXPECT_EQ(protocol[at].event, TraceEvent::kEnterRecovery) << c;
    EXPECT_EQ(protocol[at].arg0, static_cast<uint64_t>(victim)) << c;
    ++at;
    EXPECT_EQ(protocol[at].event, TraceEvent::kExitRecovery) << c;
    // Timestamps are nondecreasing through the sequence.
    for (size_t i = 1; i < protocol.size(); ++i) {
      EXPECT_GE(protocol[i].when, protocol[i - 1].when) << c;
    }
    // The recovery entry cannot precede the injected failure. (Trace records
    // carry event-queue time; RecoveryStats carries virtual time -- the two
    // clocks are not comparable to each other.)
    EXPECT_GE(protocol[protocol.size() - 2].when, 30 * kMillisecond) << c;
    EXPECT_GE(ts.hive->recovery().last_stats().detect_time,
              30 * kMillisecond);
  }
  // Clock monitoring is a ring: exactly one survivor watches the victim.
  EXPECT_EQ(accusers, 1);
}

TEST(TraceIntegrationTest, PanickedCellKeepsPostMortem) {
  auto ts = hivetest::BootHive(4);
  ts.cell(1).Panic("test");
  EXPECT_EQ(ts.cell(1).trace().Count(TraceEvent::kPanic), 1);
  EXPECT_NE(ts.cell(1).trace().Render().find("panic"), std::string::npos);
}

}  // namespace
}  // namespace hive
