#include "src/core/careful_ref.h"

#include <gtest/gtest.h>

#include "src/core/kernel_heap.h"
#include "src/flash/phys_mem.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class CarefulRefTest : public ::testing::Test {
 protected:
  CarefulRefTest()
      : mem_(hivetest::SmallConfig()),
        // "Remote" cell 1 owns node 1's range; its heap lives there.
        remote_base_(hivetest::SmallConfig().memory_per_node),
        remote_size_(hivetest::SmallConfig().memory_per_node),
        remote_heap_(&mem_, /*owner_cpu=*/1, remote_base_, 1 << 20) {
    ctx_.cpu = 0;  // The reader runs on cell 0's processor.
  }

  CarefulRef MakeRef() {
    return CarefulRef(&ctx_, &mem_, costs_, /*target_cell=*/1, remote_base_, remote_size_);
  }

  flash::PhysMem mem_;
  PhysAddr remote_base_;
  uint64_t remote_size_;
  KernelHeap remote_heap_;
  KernelCosts costs_;
  Ctx ctx_;
};

TEST_F(CarefulRefTest, ReadsRemoteValue) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  ASSERT_TRUE(addr.ok());
  remote_heap_.Write<uint64_t>(*addr, 12345);

  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 12345u);
}

TEST_F(CarefulRefTest, TagMismatchIsBadRemoteData) {
  auto addr = remote_heap_.Alloc(kTagCowNode, 8);
  ASSERT_TRUE(addr.ok());
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, FreedAllocationFailsTagCheck) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  remote_heap_.Free(*addr);
  CarefulRef careful = MakeRef();
  EXPECT_EQ(careful.ReadTagged<uint64_t>(*addr, kTagClockWord).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, TagMismatchDoesNotSetBusErrorSeen) {
  // A failed consistency check is bad remote data, not a bus error: the two
  // produce different failure-detection hints.
  auto addr = remote_heap_.Alloc(kTagCowNode, 8);
  ASSERT_TRUE(addr.ok());
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_FALSE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, FreedAllocationDoesNotSetBusErrorSeen) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  remote_heap_.Free(*addr);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_FALSE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, BusErrorDuringTagCheckBecomesStatus) {
  // The node dies before the header read of step 4: the bus error surfaces
  // from the tag check itself.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  mem_.FailNode(1);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, BusErrorBetweenTagCheckAndPayloadRead) {
  // The node dies after the tag validated but before the payload copy
  // (step 4 passed, step 3 traps): still a contained Status, not a panic.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  CarefulRef careful = MakeRef();
  ASSERT_TRUE(careful.CheckTag(*addr, kTagClockWord).ok());
  EXPECT_FALSE(careful.bus_error_seen());
  mem_.FailNode(1);
  auto value = careful.Read<uint64_t>(*addr);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, AddressOutsideTargetCellRejected) {
  CarefulRef careful = MakeRef();
  // Address in cell 0's range, not the expected cell's.
  EXPECT_EQ(careful.Read<uint64_t>(0x1000).status().code(),
            base::StatusCode::kBadRemoteData);
  // Address beyond the machine.
  EXPECT_EQ(careful.Read<uint64_t>(~0ull & ~7ull).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, MisalignedAddressRejectedBeforeAccess) {
  CarefulRef careful = MakeRef();
  EXPECT_EQ(careful.Read<uint64_t>(remote_base_ + 1).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, BusErrorBecomesStatusNotPanic) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  mem_.FailNode(1);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, ChargesPaperLatencyForClockRead) {
  // Section 4.1: careful_on .. careful_off for a one-word read averages
  // 1.16 us, of which 0.7 us is the remote miss.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  Time elapsed;
  {
    Ctx ctx;
    ctx.cpu = 0;
    CarefulRef careful(&ctx, &mem_, costs_, 1, remote_base_, remote_size_);
    auto value = careful.Read<uint64_t>(*addr);
    ASSERT_TRUE(value.ok());
    elapsed = ctx.elapsed;
    // careful_off charged at destruction.
    (void)careful;
    // Hand-account the destructor charge below.
    elapsed += costs_.careful_off_ns;
  }
  EXPECT_EQ(elapsed, 1160);
}

TEST_F(CarefulRefTest, ReadBytesCopiesOut) {
  auto addr = remote_heap_.Alloc(kTagGeneric, 64);
  for (int i = 0; i < 8; ++i) {
    remote_heap_.Write<uint64_t>(*addr + static_cast<uint64_t>(i) * 8,
                                 static_cast<uint64_t>(i));
  }
  CarefulRef careful = MakeRef();
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(careful.ReadBytes(*addr, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(buf[8], 1);
  EXPECT_EQ(buf[16], 2);
}

}  // namespace
}  // namespace hive
