#include "src/core/careful_ref.h"

#include <gtest/gtest.h>

#include "src/core/kernel_heap.h"
#include "src/flash/phys_mem.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class CarefulRefTest : public ::testing::Test {
 protected:
  CarefulRefTest()
      : mem_(hivetest::SmallConfig()),
        // "Remote" cell 1 owns node 1's range; its heap lives there.
        remote_base_(hivetest::SmallConfig().memory_per_node),
        remote_size_(hivetest::SmallConfig().memory_per_node),
        remote_heap_(&mem_, /*owner_cpu=*/1, remote_base_, 1 << 20) {
    ctx_.cpu = 0;  // The reader runs on cell 0's processor.
  }

  CarefulRef MakeRef() {
    return CarefulRef(&ctx_, &mem_, costs_, /*target_cell=*/1, remote_base_, remote_size_);
  }

  flash::PhysMem mem_;
  PhysAddr remote_base_;
  uint64_t remote_size_;
  KernelHeap remote_heap_;
  KernelCosts costs_;
  Ctx ctx_;
};

TEST_F(CarefulRefTest, ReadsRemoteValue) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  ASSERT_TRUE(addr.ok());
  remote_heap_.Write<uint64_t>(*addr, 12345);

  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 12345u);
}

TEST_F(CarefulRefTest, TagMismatchIsBadRemoteData) {
  auto addr = remote_heap_.Alloc(kTagCowNode, 8);
  ASSERT_TRUE(addr.ok());
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, FreedAllocationFailsTagCheck) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  remote_heap_.Free(*addr);
  CarefulRef careful = MakeRef();
  EXPECT_EQ(careful.ReadTagged<uint64_t>(*addr, kTagClockWord).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, TagMismatchDoesNotSetBusErrorSeen) {
  // A failed consistency check is bad remote data, not a bus error: the two
  // produce different failure-detection hints.
  auto addr = remote_heap_.Alloc(kTagCowNode, 8);
  ASSERT_TRUE(addr.ok());
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_FALSE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, FreedAllocationDoesNotSetBusErrorSeen) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  remote_heap_.Free(*addr);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_FALSE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, BusErrorDuringTagCheckBecomesStatus) {
  // The node dies before the header read of step 4: the bus error surfaces
  // from the tag check itself.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  mem_.FailNode(1);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, BusErrorBetweenTagCheckAndPayloadRead) {
  // The node dies after the tag validated but before the payload copy
  // (step 4 passed, step 3 traps): still a contained Status, not a panic.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  CarefulRef careful = MakeRef();
  ASSERT_TRUE(careful.CheckTag(*addr, kTagClockWord).ok());
  EXPECT_FALSE(careful.bus_error_seen());
  mem_.FailNode(1);
  auto value = careful.Read<uint64_t>(*addr);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, AddressOutsideTargetCellRejected) {
  CarefulRef careful = MakeRef();
  // Address in cell 0's range, not the expected cell's.
  EXPECT_EQ(careful.Read<uint64_t>(0x1000).status().code(),
            base::StatusCode::kBadRemoteData);
  // Address beyond the machine.
  EXPECT_EQ(careful.Read<uint64_t>(~0ull & ~7ull).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, MisalignedAddressRejectedBeforeAccess) {
  CarefulRef careful = MakeRef();
  EXPECT_EQ(careful.Read<uint64_t>(remote_base_ + 1).status().code(),
            base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulRefTest, BusErrorBecomesStatusNotPanic) {
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  mem_.FailNode(1);
  CarefulRef careful = MakeRef();
  auto value = careful.ReadTagged<uint64_t>(*addr, kTagClockWord);
  EXPECT_EQ(value.status().code(), base::StatusCode::kBusError);
  EXPECT_TRUE(careful.bus_error_seen());
}

TEST_F(CarefulRefTest, ChargesPaperLatencyForClockRead) {
  // Section 4.1: careful_on .. careful_off for a one-word read averages
  // 1.16 us, of which 0.7 us is the remote miss.
  auto addr = remote_heap_.Alloc(kTagClockWord, 8);
  Time elapsed;
  {
    Ctx ctx;
    ctx.cpu = 0;
    CarefulRef careful(&ctx, &mem_, costs_, 1, remote_base_, remote_size_);
    auto value = careful.Read<uint64_t>(*addr);
    ASSERT_TRUE(value.ok());
    elapsed = ctx.elapsed;
    // careful_off charged at destruction.
    (void)careful;
    // Hand-account the destructor charge below.
    elapsed += costs_.careful_off_ns;
  }
  EXPECT_EQ(elapsed, 1160);
}

// --------------------------------------------------------------------------
// Adversarial traversals: a rogue peer controls every pointer the reader
// follows, so the bounded primitives must convert cycles, unbounded growth,
// mid-walk frees and torn seqlock updates into Status, never a hang.
// --------------------------------------------------------------------------

class CarefulChaseTest : public CarefulRefTest {
 protected:
  // Builds a chain of `n` tagged RemoteChainNode allocations with values
  // 0..n-1; returns the payload addresses in walk order.
  std::vector<PhysAddr> BuildChain(int n) {
    std::vector<PhysAddr> nodes;
    for (int i = 0; i < n; ++i) {
      auto addr = remote_heap_.Alloc(kTagChainNode, sizeof(RemoteChainNode));
      EXPECT_TRUE(addr.ok());
      nodes.push_back(*addr);
    }
    for (int i = 0; i < n; ++i) {
      remote_heap_.Write<uint64_t>(nodes[static_cast<size_t>(i)],
                                   static_cast<uint64_t>(i));
      remote_heap_.Write<uint64_t>(nodes[static_cast<size_t>(i)] + 8,
                                   i + 1 < n ? nodes[static_cast<size_t>(i) + 1] : 0);
    }
    return nodes;
  }

  // Builds a tagged RemoteSeqBlock {seq, word0, word1}.
  PhysAddr BuildSeqBlock(uint64_t seq, uint64_t word0, uint64_t word1) {
    auto addr = remote_heap_.Alloc(kTagSeqBlock, sizeof(RemoteSeqBlock));
    EXPECT_TRUE(addr.ok());
    remote_heap_.Write<uint64_t>(*addr, seq);
    remote_heap_.Write<uint64_t>(*addr + 8, word0);
    remote_heap_.Write<uint64_t>(*addr + 16, word1);
    return *addr;
  }
};

TEST_F(CarefulChaseTest, ChaseChainWalksHealthyChain) {
  std::vector<PhysAddr> nodes = BuildChain(3);
  CarefulRef careful = MakeRef();
  auto walk = careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/16);
  ASSERT_TRUE(walk.ok());
  EXPECT_EQ(walk->hops, 3);
  ASSERT_EQ(walk->values.size(), 3u);
  EXPECT_EQ(walk->values[0], 0u);
  EXPECT_EQ(walk->values[2], 2u);
  EXPECT_EQ(careful.last_chain_hops(), 3);
}

TEST_F(CarefulChaseTest, ChaseChainDetectsCycle) {
  // Rogue splice: the tail points back at the head. The revisit must fail
  // with kBadRemoteData before the hop bound is consumed.
  std::vector<PhysAddr> nodes = BuildChain(4);
  remote_heap_.Write<uint64_t>(nodes[3] + 8, nodes[0]);
  CarefulRef careful = MakeRef();
  auto walk = careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/64);
  EXPECT_EQ(walk.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_LE(careful.last_chain_hops(), 4);
}

TEST_F(CarefulChaseTest, ChaseChainHopBoundExhausted) {
  // A chain longer than the bound (rogue growth): kResourceExhausted after
  // exactly max_hops nodes, not an unbounded walk.
  std::vector<PhysAddr> nodes = BuildChain(8);
  CarefulRef careful = MakeRef();
  auto walk = careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/5);
  EXPECT_EQ(walk.status().code(), base::StatusCode::kResourceExhausted);
  EXPECT_EQ(careful.last_chain_hops(), 5);
}

TEST_F(CarefulChaseTest, ChaseChainCycleWithDetectionOffStillBounded) {
  // The no_hop_bound campaign fixture disables cycle detection; the hop
  // bound alone must still terminate a cyclic walk.
  std::vector<PhysAddr> nodes = BuildChain(2);
  remote_heap_.Write<uint64_t>(nodes[1] + 8, nodes[0]);
  CarefulRef careful = MakeRef();
  auto walk =
      careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/10, /*detect_cycles=*/false);
  EXPECT_EQ(walk.status().code(), base::StatusCode::kResourceExhausted);
  EXPECT_EQ(careful.last_chain_hops(), 10);
}

TEST_F(CarefulChaseTest, ChaseChainMidWalkFreeFailsTagCheck) {
  // The rogue frees (or retags) an interior node while the walk is in
  // flight: the per-hop tag check converts it to kBadRemoteData.
  std::vector<PhysAddr> nodes = BuildChain(3);
  remote_heap_.Free(nodes[1]);
  CarefulRef careful = MakeRef();
  auto walk = careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/16);
  EXPECT_EQ(walk.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_EQ(careful.last_chain_hops(), 1);
}

TEST_F(CarefulChaseTest, ChaseChainNextOutsideTargetCellRejected) {
  // A next pointer aimed at another cell's memory must fail the range check,
  // not read foreign memory.
  std::vector<PhysAddr> nodes = BuildChain(2);
  remote_heap_.Write<uint64_t>(nodes[0] + 8, 0x1000);  // Cell 0's range.
  CarefulRef careful = MakeRef();
  auto walk = careful.ChaseChain(nodes[0], kTagChainNode, /*max_hops=*/16);
  EXPECT_EQ(walk.status().code(), base::StatusCode::kBadRemoteData);
}

TEST_F(CarefulChaseTest, ReadSeqlockedReturnsConsistentSnapshot) {
  const PhysAddr block = BuildSeqBlock(/*seq=*/2, 0xAB, ~0xABull);
  CarefulRef careful = MakeRef();
  auto snap = careful.ReadSeqlocked(block, kTagSeqBlock, /*max_retries=*/3);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->word0, 0xABu);
  EXPECT_EQ(snap->word1, ~0xABull);
  EXPECT_EQ(snap->retries, 0);
}

TEST_F(CarefulChaseTest, ReadSeqlockedRetriesThroughTornUpdate) {
  // Writer caught mid-update (odd seq). The retry hook plays the writer
  // finishing the update; the generation retry then returns the new value.
  const PhysAddr block = BuildSeqBlock(/*seq=*/3, 0xAB, 0xCD);
  CarefulRef careful = MakeRef();
  careful.set_retry_hook_for_test([&](int) {
    remote_heap_.Write<uint64_t>(block + 8, 0x111);
    remote_heap_.Write<uint64_t>(block + 16, ~0x111ull);
    remote_heap_.Write<uint64_t>(block, 4);  // Even: update complete.
  });
  auto snap = careful.ReadSeqlocked(block, kTagSeqBlock, /*max_retries=*/3);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->word0, 0x111u);
  EXPECT_EQ(snap->word1, ~0x111ull);
  EXPECT_GE(snap->retries, 1);
}

TEST_F(CarefulChaseTest, ReadSeqlockedPersistentTearFails) {
  // A rogue parks the seq word at an odd value forever: bounded retries,
  // then kBadRemoteData -- never a spin.
  const PhysAddr block = BuildSeqBlock(/*seq=*/5, 0xAB, 0xCD);
  CarefulRef careful = MakeRef();
  int attempts = 0;
  careful.set_retry_hook_for_test([&](int) { ++attempts; });
  auto snap = careful.ReadSeqlocked(block, kTagSeqBlock, /*max_retries=*/3);
  EXPECT_EQ(snap.status().code(), base::StatusCode::kBadRemoteData);
  EXPECT_EQ(attempts, 3);
}

TEST_F(CarefulChaseTest, ReadSeqlockedSeqChangeMidCopyRetries) {
  // The seq word moves between the two reads of an attempt (writer raced the
  // copy-out): that attempt's words are discarded and the read retries.
  const PhysAddr block = BuildSeqBlock(/*seq=*/2, 0xAB, 0xCD);
  CarefulRef careful = MakeRef();
  bool bumped = false;
  // First attempt reads seq=2 and the payload; bump seq from under it by
  // retagging... instead, emulate with the hook: after the first failed
  // attempt the writer has settled at seq=4 with a consistent payload.
  careful.set_retry_hook_for_test([&](int) {
    if (!bumped) {
      bumped = true;
      remote_heap_.Write<uint64_t>(block + 8, 0x222);
      remote_heap_.Write<uint64_t>(block + 16, ~0x222ull);
    }
  });
  // Make the first attempt fail its re-read by starting mid-update.
  remote_heap_.Write<uint64_t>(block, 7);
  auto snap = careful.ReadSeqlocked(block, kTagSeqBlock, /*max_retries=*/3);
  EXPECT_EQ(snap.status().code(), base::StatusCode::kBadRemoteData);
  // Now the writer completes; a fresh read succeeds with the new payload.
  remote_heap_.Write<uint64_t>(block, 8);
  auto snap2 = careful.ReadSeqlocked(block, kTagSeqBlock, /*max_retries=*/3);
  ASSERT_TRUE(snap2.ok());
  EXPECT_EQ(snap2->word0, 0x222u);
}

TEST_F(CarefulRefTest, ReadBytesCopiesOut) {
  auto addr = remote_heap_.Alloc(kTagGeneric, 64);
  for (int i = 0; i < 8; ++i) {
    remote_heap_.Write<uint64_t>(*addr + static_cast<uint64_t>(i) * 8,
                                 static_cast<uint64_t>(i));
  }
  CarefulRef careful = MakeRef();
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(careful.ReadBytes(*addr, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(buf[8], 1);
  EXPECT_EQ(buf[16], 2);
}

}  // namespace
}  // namespace hive
