#include "src/core/scheduler.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

using workloads::OpCompute;
using workloads::ScriptedBehavior;

class SchedulerTest : public ::testing::Test {
 protected:
  // One cell with 4 CPUs: an SMP cell.
  SchedulerTest() : ts_(hivetest::BootHive(1, 4, NoWaxOptions())) {}

  static HiveOptions NoWaxOptions() {
    HiveOptions options;
    options.start_wax = false;
    return options;
  }

  ProcId Spawn(Time compute) {
    auto behavior = std::make_unique<ScriptedBehavior>("compute");
    behavior->Add(OpCompute(compute));
    Ctx ctx = ts_.cell(0).MakeCtx();
    auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
    EXPECT_TRUE(pid.ok());
    return *pid;
  }

  hivetest::TestSystem ts_;
};

TEST_F(SchedulerTest, SingleProcessRunsToCompletion) {
  const ProcId pid = Spawn(100 * kMillisecond);
  ASSERT_TRUE(ts_.hive->RunUntilDone({pid}, 10 * kSecond));
  Process* proc = ts_.cell(0).sched().FindProcess(pid);
  EXPECT_EQ(proc->state(), ProcState::kExited);
  // ~100ms of work plus fork/exit overheads.
  EXPECT_GE(proc->finished_at, 100 * kMillisecond);
  EXPECT_LE(proc->finished_at, 150 * kMillisecond);
}

TEST_F(SchedulerTest, FourProcessesRunInParallelOnFourCpus) {
  std::vector<ProcId> pids;
  for (int i = 0; i < 4; ++i) {
    pids.push_back(Spawn(200 * kMillisecond));
  }
  ASSERT_TRUE(ts_.hive->RunUntilDone(pids, 10 * kSecond));
  // All four finish in ~1x the single-process time: true parallelism.
  for (ProcId pid : pids) {
    EXPECT_LE(ts_.cell(0).sched().FindProcess(pid)->finished_at, 300 * kMillisecond);
  }
}

TEST_F(SchedulerTest, EightProcessesTimeShareFairly) {
  std::vector<ProcId> pids;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(Spawn(100 * kMillisecond));
  }
  ASSERT_TRUE(ts_.hive->RunUntilDone(pids, 10 * kSecond));
  // 8 x 100ms over 4 CPUs: makespan ~200ms, and no process starves.
  Time max_finish = 0;
  for (ProcId pid : pids) {
    max_finish = std::max(max_finish, ts_.cell(0).sched().FindProcess(pid)->finished_at);
  }
  EXPECT_GE(max_finish, 190 * kMillisecond);
  EXPECT_LE(max_finish, 320 * kMillisecond);
}

TEST_F(SchedulerTest, BarrierBlocksUntilAllArrive) {
  auto barrier = std::make_shared<UserBarrier>(3);
  std::vector<ProcId> pids;
  std::vector<Time> computes = {10 * kMillisecond, 50 * kMillisecond, 90 * kMillisecond};
  for (Time c : computes) {
    auto behavior = std::make_unique<ScriptedBehavior>("barrier-proc");
    behavior->Add(OpCompute(c));
    behavior->Add(workloads::OpBarrier(barrier));
    behavior->Add(OpCompute(10 * kMillisecond));
    Ctx ctx = ts_.cell(0).MakeCtx();
    auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  ASSERT_TRUE(ts_.hive->RunUntilDone(pids, 10 * kSecond));
  // Everyone finishes after the slowest arriver (90ms) plus the tail work.
  for (ProcId pid : pids) {
    EXPECT_GE(ts_.cell(0).sched().FindProcess(pid)->finished_at, 99 * kMillisecond);
  }
}

TEST_F(SchedulerTest, WaitAllBlocksParentUntilChildrenExit) {
  auto child_pids = std::make_shared<std::vector<ProcId>>();
  auto parent = std::make_unique<ScriptedBehavior>("parent");
  for (int i = 0; i < 3; ++i) {
    parent->Add(workloads::OpFork(
        0,
        [] {
          auto child = std::make_unique<ScriptedBehavior>("child");
          child->Add(OpCompute(50 * kMillisecond));
          return child;
        },
        child_pids));
  }
  parent->Add(workloads::OpWaitAll(child_pids));
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto parent_pid = ts_.hive->Fork(ctx, 0, std::move(parent));
  ASSERT_TRUE(parent_pid.ok());
  ASSERT_TRUE(ts_.hive->RunUntilDone({*parent_pid}, 10 * kSecond));
  Process* parent_proc = ts_.cell(0).sched().FindProcess(*parent_pid);
  // The parent outlives its children.
  for (ProcId child : *child_pids) {
    EXPECT_LE(ts_.cell(0).sched().FindProcess(child)->finished_at,
              parent_proc->finished_at);
  }
}

TEST_F(SchedulerTest, CpuBusyTimeAccounted) {
  const ProcId pid = Spawn(100 * kMillisecond);
  ASSERT_TRUE(ts_.hive->RunUntilDone({pid}, 10 * kSecond));
  EXPECT_GE(ts_.cell(0).sched().cpu_busy_ns(), 100 * kMillisecond);
}

}  // namespace
}  // namespace hive
