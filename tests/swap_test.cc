// The swap partition for anonymous pages (paper section 5.3's backing store)
// and its interaction with the pageout clock hand, faults, and remote COW
// binds.

#include "src/core/swap.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/pageout.h"
#include "src/core/vm_fault.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class SwapTest : public ::testing::Test {
 protected:
  SwapTest() : ts_(hivetest::BootHive(4)) {}

  Process* Spawn(CellId cell, Process* parent = nullptr) {
    Ctx ctx = ts_.cell(cell).MakeCtx();
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("idle");
    auto pid = ts_.hive->Fork(ctx, cell, std::move(behavior), -1, parent);
    EXPECT_TRUE(pid.ok());
    return ts_.cell(cell).sched().FindProcess(*pid);
  }

  // Creates `pages` anon pages for proc, stamps each with its index, and
  // unmaps them (so refcounts drop to zero and the clock hand may act).
  void MakeAnonPages(Process* proc, uint64_t pages) {
    Cell& cell = *proc->cell();
    Ctx ctx = cell.MakeCtx();
    ASSERT_TRUE(
        proc->address_space().MapAnon(ctx, 0x1000000, pages * 4096, true).ok());
    for (uint64_t p = 0; p < pages; ++p) {
      ASSERT_TRUE(PageFault(ctx, *proc, 0x1000000 + p * 4096, true).ok());
      Mapping* mapping = proc->address_space().FindMapping(0x1000000 + p * 4096);
      ts_.machine->mem().WriteValue<uint64_t>(cell.FirstCpu(), mapping->pfdat->frame,
                                              1000 + p);
    }
    proc->address_space().FlushMappings(ctx, /*remote_only=*/false);
  }

  void DrainFreeFrames(Cell& cell) {
    Ctx ctx = cell.MakeCtx();
    AllocConstraints constraints;
    constraints.kernel_internal = true;
    while (cell.allocator().free_frames() >= PageoutDaemon::kLowWaterFrames) {
      ASSERT_TRUE(cell.allocator().AllocFrame(ctx, constraints).ok());
    }
  }

  hivetest::TestSystem ts_;
};

TEST_F(SwapTest, ClockHandSwapsOutAnonPagesUnderPressure) {
  Process* proc = Spawn(0);
  MakeAnonPages(proc, 32);
  DrainFreeFrames(ts_.cell(0));
  Ctx ctx = ts_.cell(0).MakeCtx();
  (void)ts_.cell(0).pageout().Scan(ctx, 4096);
  EXPECT_GT(ts_.cell(0).swap().swap_outs(), 0u);
  EXPECT_GT(ts_.cell(0).swap().slots_in_use(), 0u);
}

TEST_F(SwapTest, SwappedPageFaultsBackWithContents) {
  Process* proc = Spawn(0);
  MakeAnonPages(proc, 32);
  DrainFreeFrames(ts_.cell(0));
  Ctx ctx = ts_.cell(0).MakeCtx();
  (void)ts_.cell(0).pageout().Scan(ctx, 4096);
  ASSERT_GT(ts_.cell(0).swap().swap_outs(), 0u);

  // Re-fault every page: swapped ones come back from disk with their data.
  for (uint64_t p = 0; p < 32; ++p) {
    Ctx fctx = ts_.cell(0).MakeCtx();
    ASSERT_TRUE(PageFault(fctx, *proc, 0x1000000 + p * 4096, false).ok()) << p;
    Mapping* mapping = proc->address_space().FindMapping(0x1000000 + p * 4096);
    ASSERT_NE(mapping, nullptr);
    EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(0).FirstCpu(),
                                                     mapping->pfdat->frame),
              1000 + p)
        << p;
  }
  EXPECT_GT(ts_.cell(0).swap().swap_ins(), 0u);
}

TEST_F(SwapTest, SwapInChargesDiskLatency) {
  Process* proc = Spawn(0);
  MakeAnonPages(proc, 8);
  DrainFreeFrames(ts_.cell(0));
  Ctx ctx = ts_.cell(0).MakeCtx();
  (void)ts_.cell(0).pageout().Scan(ctx, 4096);
  ASSERT_GT(ts_.cell(0).swap().swap_outs(), 0u);

  Ctx fctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(fctx, *proc, 0x1000000, false).ok());
  // A swap-in is a disk read: orders of magnitude above a cache-hit fault.
  EXPECT_GT(fctx.elapsed, 1 * kMillisecond);
}

TEST_F(SwapTest, RemoteChildBindsToSwappedParentPage) {
  // Parent's page gets swapped out; a child on another cell walks the COW
  // tree, the kCowBind handler swaps the page back in at the owner, and the
  // child imports it.
  Process* parent = Spawn(1);
  MakeAnonPages(parent, 16);
  Process* child = Spawn(2, parent);
  DrainFreeFrames(ts_.cell(1));
  Ctx ctx = ts_.cell(1).MakeCtx();
  (void)ts_.cell(1).pageout().Scan(ctx, 4096);
  ASSERT_GT(ts_.cell(1).swap().swap_outs(), 0u);

  Ctx cctx = ts_.cell(2).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000 + 5 * 4096, false).ok());
  Mapping* mapping = child->address_space().FindMapping(0x1000000 + 5 * 4096);
  ASSERT_NE(mapping, nullptr);
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(2).FirstCpu(),
                                                   mapping->pfdat->frame),
            1005u);
}

TEST_F(SwapTest, TeardownDropsSwapSlots) {
  Process* proc = Spawn(3);
  MakeAnonPages(proc, 16);
  DrainFreeFrames(ts_.cell(3));
  Ctx ctx = ts_.cell(3).MakeCtx();
  (void)ts_.cell(3).pageout().Scan(ctx, 4096);
  ASSERT_GT(ts_.cell(3).swap().slots_in_use(), 0u);
  Ctx kctx = ts_.cell(3).MakeCtx();
  ts_.cell(3).sched().KillProcess(kctx, proc, "test teardown");
  EXPECT_EQ(ts_.cell(3).swap().slots_in_use(), 0u);
}

TEST_F(SwapTest, ExportedPagesAreNotSwapped) {
  // A page imported by another cell stays in memory (the export pins it).
  Process* parent = Spawn(1);
  MakeAnonPages(parent, 4);
  Process* child = Spawn(0, parent);
  Ctx cctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, false).ok());  // Imports page 0.

  DrainFreeFrames(ts_.cell(1));
  Ctx ctx = ts_.cell(1).MakeCtx();
  (void)ts_.cell(1).pageout().Scan(ctx, 4096);
  // Page 0 is exported: it must still be present in the owner's cache.
  LogicalPageId lpid;
  lpid.kind = LogicalPageId::Kind::kAnon;
  lpid.data_home = 1;
  KernelHeap& heap = ts_.cell(1).heap();
  lpid.object = heap.Read<uint64_t>(parent->cow_leaf() + CowNodeLayout::kNodeId);
  // (The page was recorded in the pre-fork leaf, i.e. the parent of the
  // current leaf.)
  lpid.object = heap.Read<uint64_t>(
      heap.Read<uint64_t>(parent->cow_leaf() + CowNodeLayout::kParentAddr) +
      CowNodeLayout::kNodeId);
  lpid.page_offset = 0x1000000 / 4096;
  EXPECT_NE(ts_.cell(1).pfdats().FindByLpid(lpid), nullptr);
}

}  // namespace
}  // namespace hive
