// Wax, the user-level resource policy process (paper section 3.2), and the
// allocation paths it steers.

#include "src/core/wax.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class WaxTest : public ::testing::Test {
 protected:
  WaxTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(WaxTest, PeriodicScanDeliversHintsToEveryCell) {
  ts_.machine->events().RunUntil(350 * kMillisecond);
  EXPECT_GE(ts_.hive->wax().scans(), 2u);
  for (CellId c = 0; c < 4; ++c) {
    EXPECT_TRUE(ts_.cell(c).wax_hints().valid) << c;
    EXPECT_NE(ts_.cell(c).wax_hints().preferred_borrow_target, kInvalidCell);
  }
}

TEST_F(WaxTest, BorrowTargetIsMemoryRichCell) {
  // Drain most of cell 2's free list so it is NOT the richest.
  Ctx ctx2 = ts_.cell(2).MakeCtx();
  const size_t drain = ts_.cell(2).allocator().free_frames() - 64;
  for (size_t i = 0; i < drain; ++i) {
    AllocConstraints constraints;
    constraints.kernel_internal = true;
    auto pfdat = ts_.cell(2).allocator().AllocFrame(ctx2, constraints);
    ASSERT_TRUE(pfdat.ok());
  }
  ts_.machine->events().RunUntil(ts_.machine->Now() + 250 * kMillisecond);
  for (CellId c = 0; c < 4; ++c) {
    EXPECT_NE(ts_.cell(c).wax_hints().preferred_borrow_target, 2) << c;
  }
}

TEST_F(WaxTest, CellsSanityCheckHints) {
  // A corrupt Wax pushes a bogus hint: the cell must reject it.
  Cell& cell = ts_.cell(1);
  Ctx ctx = ts_.cell(0).MakeCtx();
  RpcArgs args;
  args.w[0] = 999;       // Nonsense borrow target.
  args.w[1] = ~0ull;     // Nonsense fork target.
  RpcReply reply;
  ASSERT_TRUE(ts_.cell(0).rpc().Call(ctx, 1, MsgType::kWaxHint, args, &reply).ok());
  EXPECT_TRUE(cell.wax_hints().valid);
  EXPECT_EQ(cell.wax_hints().preferred_borrow_target, kInvalidCell);
  EXPECT_EQ(cell.wax_hints().preferred_fork_target, kInvalidCell);
}

TEST_F(WaxTest, HintsNeverNameDeadCells) {
  ts_.machine->events().RunUntil(150 * kMillisecond);
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(1, ts_.machine->Now() + 10 * kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 800 * kMillisecond);
  ASSERT_TRUE(ts_.hive->wax().running());  // Restarted incarnation.
  for (CellId c : ts_.hive->LiveCells()) {
    const WaxHints& hints = ts_.cell(c).wax_hints();
    EXPECT_NE(hints.preferred_borrow_target, 1) << c;
    EXPECT_NE(hints.preferred_fork_target, 1) << c;
  }
}

TEST_F(WaxTest, AllocatorUsesBorrowHintUnderPressure) {
  ts_.machine->events().RunUntil(150 * kMillisecond);  // Hints delivered.
  Cell& cell = ts_.cell(3);
  Ctx ctx = cell.MakeCtx();
  // Exhaust local memory down to the reserve.
  while (cell.allocator().free_frames() > PageAllocator::kLocalReserveFrames) {
    AllocConstraints constraints;
    constraints.kernel_internal = true;
    ASSERT_TRUE(cell.allocator().AllocFrame(ctx, constraints).ok());
  }
  // The next unconstrained allocation borrows from the hinted cell.
  const CellId hinted = cell.wax_hints().preferred_borrow_target;
  ASSERT_NE(hinted, kInvalidCell);
  auto pfdat = cell.allocator().AllocFrame(ctx, AllocConstraints{});
  ASSERT_TRUE(pfdat.ok());
  EXPECT_TRUE((*pfdat)->extended);
  EXPECT_EQ((*pfdat)->borrowed_from, hinted);
}

TEST_F(WaxTest, NotStartedInSmpMode) {
  auto smp = hivetest::BootSmp();
  smp.machine->events().RunUntil(500 * kMillisecond);
  EXPECT_FALSE(smp.hive->wax().running());
  EXPECT_EQ(smp.hive->wax().scans(), 0u);
}

TEST_F(WaxTest, IncarnationCountsRestarts) {
  ts_.machine->events().RunUntil(150 * kMillisecond);
  EXPECT_EQ(ts_.hive->wax().incarnation(), 1);
  flash::FaultInjector injector(ts_.machine.get(), 2);
  injector.ScheduleNodeFailure(2, ts_.machine->Now() + 5 * kMillisecond);
  ts_.machine->events().RunUntil(ts_.machine->Now() + 800 * kMillisecond);
  EXPECT_EQ(ts_.hive->wax().incarnation(), 2);
}

}  // namespace
}  // namespace hive
