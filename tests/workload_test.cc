#include "src/workloads/workload.h"

#include <gtest/gtest.h>

#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"
#include "src/workloads/raytrace.h"
#include "tests/test_util.h"

namespace workloads {
namespace {

TEST(PatternDataTest, Deterministic) {
  EXPECT_EQ(PatternData(42, 1000), PatternData(42, 1000));
}

TEST(PatternDataTest, SeedsProduceDifferentStreams) {
  EXPECT_NE(PatternData(1, 256), PatternData(2, 256));
}

TEST(PatternDataTest, PrefixStable) {
  // Byte i depends only on (seed, i): a longer stream extends a shorter one,
  // which the offset-write verification relies on.
  const auto short_data = PatternData(7, 100);
  const auto long_data = PatternData(7, 1000);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(short_data[i], long_data[i]) << i;
  }
}

TEST(PatternDataTest, ChecksumDetectsCorruption) {
  auto data = PatternData(3, 512);
  const uint64_t clean = Checksum(data);
  data[100] ^= 0x01;
  EXPECT_NE(Checksum(data), clean);
}

TEST(PatternDataTest, PatternChecksumAgrees) {
  EXPECT_EQ(PatternChecksum(9, 333), Checksum(PatternData(9, 333)));
}

class ScriptedBehaviorTest : public ::testing::Test {
 protected:
  ScriptedBehaviorTest() : ts_(hivetest::BootHive(1, 4, NoWax())) {}
  static hive::HiveOptions NoWax() {
    hive::HiveOptions options;
    options.start_wax = false;
    return options;
  }
  hivetest::TestSystem ts_;
};

TEST_F(ScriptedBehaviorTest, OpsRunInOrder) {
  std::vector<int> order;
  auto behavior = std::make_unique<ScriptedBehavior>("ordered");
  for (int i = 0; i < 5; ++i) {
    behavior->Add([&order, i](Ctx& ctx, Process&) {
      ctx.Charge(1000);
      order.push_back(i);
      return StepOutcome::kContinue;
    });
  }
  hive::Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(ts_.hive->RunUntilDone({*pid}, 10 * hive::kSecond));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(ScriptedBehaviorTest, MultiStepOpRepeats) {
  auto behavior = std::make_unique<ScriptedBehavior>("compute");
  behavior->Add(OpCompute(42 * hive::kMillisecond, 5 * hive::kMillisecond));
  hive::Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(ts_.hive->RunUntilDone({*pid}, 10 * hive::kSecond));
  hive::Process* proc = ts_.cell(0).sched().FindProcess(*pid);
  EXPECT_GE(proc->finished_at, 42 * hive::kMillisecond);
}

TEST_F(ScriptedBehaviorTest, FailedOpAbortsProcess) {
  auto behavior = std::make_unique<ScriptedBehavior>("fail");
  auto fd = std::make_shared<int>(-1);
  behavior->Add(OpOpen("/does/not/exist", fd));
  behavior->Add([](Ctx&, Process&) {
    ADD_FAILURE() << "op after a failed op must not run";
    return StepOutcome::kContinue;
  });
  hive::Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(ts_.hive->RunUntilDone({*pid}, 10 * hive::kSecond));
  hive::Process* proc = ts_.cell(0).sched().FindProcess(*pid);
  EXPECT_EQ(proc->state(), hive::ProcState::kKilled);
  EXPECT_NE(proc->exit_reason.find("open failed"), std::string::npos);
}

TEST_F(ScriptedBehaviorTest, FileRoundTripThroughOps) {
  hive::Ctx sctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(ts_.cell(0).fs().Create(sctx, "/wt", {}).ok());
  auto behavior = std::make_unique<ScriptedBehavior>("rw");
  auto fd = std::make_shared<int>(-1);
  behavior->Add(OpOpen("/wt", fd));
  behavior->Add(OpWrite(fd, 0, 8192, /*seed=*/55));
  behavior->Add(OpRead(fd, 0, 8192, /*verify_seed=*/55));
  behavior->Add(OpClose(fd));
  hive::Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(ts_.hive->RunUntilDone({*pid}, 10 * hive::kSecond));
  EXPECT_EQ(ts_.cell(0).sched().FindProcess(*pid)->state(), hive::ProcState::kExited);
}

TEST_F(ScriptedBehaviorTest, ReadVerificationCatchesWrongSeed) {
  hive::Ctx sctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(ts_.cell(0).fs().Create(sctx, "/wv", PatternData(1, 4096)).ok());
  auto behavior = std::make_unique<ScriptedBehavior>("verify");
  auto fd = std::make_shared<int>(-1);
  behavior->Add(OpOpen("/wv", fd));
  behavior->Add(OpRead(fd, 0, 4096, /*verify_seed=*/2));  // Wrong seed.
  hive::Ctx ctx = ts_.cell(0).MakeCtx();
  auto pid = ts_.hive->Fork(ctx, 0, std::move(behavior));
  ASSERT_TRUE(ts_.hive->RunUntilDone({*pid}, 10 * hive::kSecond));
  hive::Process* proc = ts_.cell(0).sched().FindProcess(*pid);
  EXPECT_EQ(proc->state(), hive::ProcState::kKilled);
  EXPECT_EQ(proc->exit_reason, "read data corrupt");
}

// Property sweep: every workload completes and validates on every cell-count
// configuration the paper evaluates.
class WorkloadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadSweepTest, PmakeCompletesAndValidates) {
  const int cells = GetParam();
  auto ts = hivetest::BootHive(cells);
  PmakeParams params;
  params.jobs = 6;
  params.source_bytes = 8 * 1024;
  params.output_bytes = 16 * 1024;
  params.shared_text_pages = 20;
  params.private_file_pages = 40;
  params.anon_pages = 20;
  params.scratch_pages = 2;
  params.metadata_ops = 5;
  params.compute_per_job = 80 * hive::kMillisecond;
  params.name_seed = 7000 + static_cast<uint64_t>(cells);
  PmakeWorkload pmake(ts.hive.get(), params);
  pmake.Setup();
  auto pids = pmake.Start();
  ASSERT_TRUE(ts.hive->RunUntilDone(pids, 120 * hive::kSecond));
  EXPECT_EQ(pmake.CompletedJobs(), params.jobs);
  EXPECT_EQ(pmake.ValidateOutputs(), 0);
}

TEST_P(WorkloadSweepTest, OceanCompletes) {
  const int cells = GetParam();
  auto ts = hivetest::BootHive(cells);
  OceanParams params;
  params.grid_pages = 128;
  params.timesteps = 6;
  params.compute_per_step = 8 * hive::kMillisecond;
  params.touches_per_step = 8;
  params.name_seed = 7100 + static_cast<uint64_t>(cells);
  OceanWorkload ocean(ts.hive.get(), params);
  ocean.Setup();
  auto pids = ocean.Start();
  ASSERT_TRUE(ts.hive->RunUntilDone(pids, 120 * hive::kSecond));
  for (hive::ProcId pid : pids) {
    const hive::CellId c = ts.hive->FindProcessCell(pid);
    EXPECT_EQ(ts.hive->cell(c).sched().FindProcess(pid)->state(),
              hive::ProcState::kExited);
  }
}

TEST_P(WorkloadSweepTest, RaytraceCompletesAndValidates) {
  const int cells = GetParam();
  auto ts = hivetest::BootHive(cells);
  RaytraceParams params;
  params.scene_pages = 32;
  params.blocks_per_worker = 2;
  params.compute_per_block = 15 * hive::kMillisecond;
  params.result_bytes = 8 * 1024;
  params.name_seed = 7200 + static_cast<uint64_t>(cells);
  RaytraceWorkload ray(ts.hive.get(), params);
  auto pids = ray.Start();
  ASSERT_TRUE(ts.hive->RunUntilDone(pids, 120 * hive::kSecond));
  EXPECT_EQ(ray.ValidateOutputs(), 0);
}

INSTANTIATE_TEST_SUITE_P(CellCounts, WorkloadSweepTest, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return std::to_string(info.param) + "cells";
                         });

}  // namespace
}  // namespace workloads
