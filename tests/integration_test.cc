// End-to-end workload integration: pmake / ocean / raytrace run to
// completion on every configuration the paper evaluates, outputs validate
// against reference patterns, and the multicellular overhead has the shape of
// table 7.2 (small for parallel apps, larger for pmake).

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"
#include "src/workloads/raytrace.h"
#include "src/flash/fault_injector.h"
#include "tests/test_util.h"

namespace hive {
namespace {

// Scaled-down parameters so each test runs in well under a second of wall
// time; benches use the paper-calibrated defaults.
workloads::PmakeParams SmallPmake(uint64_t seed) {
  workloads::PmakeParams params;
  params.jobs = 8;  // Divisible by the CPU count: isolates kernel overhead
                    // from placement imbalance in the shape test.
  params.source_bytes = 8 * 1024;
  params.output_bytes = 16 * 1024;
  params.shared_text_pages = 30;
  params.private_file_pages = 60;
  params.anon_pages = 30;
  params.metadata_ops = 10;
  params.scratch_pages = 2;
  params.compute_per_job = 400 * kMillisecond;
  params.name_seed = seed;
  return params;
}

workloads::OceanParams SmallOcean(uint64_t seed) {
  workloads::OceanParams params;
  params.grid_pages = 128;
  params.timesteps = 10;
  params.compute_per_step = 10 * kMillisecond;
  params.touches_per_step = 16;
  params.name_seed = seed;
  return params;
}

workloads::RaytraceParams SmallRaytrace(uint64_t seed) {
  workloads::RaytraceParams params;
  params.scene_pages = 64;
  params.blocks_per_worker = 3;
  params.compute_per_block = 20 * kMillisecond;
  params.result_bytes = 16 * 1024;
  params.name_seed = seed;
  return params;
}

Time RunPmake(hivetest::TestSystem& ts, uint64_t seed) {
  workloads::PmakeWorkload pmake(ts.hive.get(), SmallPmake(seed));
  pmake.Setup();
  const Time start = ts.machine->Now();
  auto pids = pmake.Start();
  EXPECT_TRUE(ts.hive->RunUntilDone(pids, start + 120 * kSecond));
  EXPECT_EQ(pmake.CompletedJobs(), SmallPmake(seed).jobs);
  EXPECT_EQ(pmake.ValidateOutputs(), 0);
  Time finish = 0;
  for (ProcId pid : pids) {
    CellId c = ts.hive->FindProcessCell(pid);
    finish = std::max(finish, ts.hive->cell(c).sched().FindProcess(pid)->finished_at);
  }
  return finish - start;
}

TEST(IntegrationTest, PmakeCompletesOnSmpBaseline) {
  auto ts = hivetest::BootSmp();
  RunPmake(ts, 100);
}

TEST(IntegrationTest, PmakeCompletesOnOneCell) {
  HiveOptions options;
  options.start_wax = false;
  auto ts = hivetest::BootHive(1, 4, options);
  RunPmake(ts, 101);
}

TEST(IntegrationTest, PmakeCompletesOnTwoCells) {
  auto ts = hivetest::BootHive(2);
  RunPmake(ts, 102);
}

TEST(IntegrationTest, PmakeCompletesOnFourCells) {
  auto ts = hivetest::BootHive(4);
  RunPmake(ts, 103);
}

TEST(IntegrationTest, PmakeSlowdownShapeMatchesTable72) {
  // pmake stresses OS services: 4 cells must be slower than the SMP baseline
  // but within a modest factor (the paper reports 11%).
  auto smp = hivetest::BootSmp();
  const Time smp_time = RunPmake(smp, 104);
  auto hive4 = hivetest::BootHive(4);
  const Time hive_time = RunPmake(hive4, 104);
  EXPECT_GT(hive_time, smp_time);
  EXPECT_LT(static_cast<double>(hive_time), static_cast<double>(smp_time) * 1.4);
}

TEST(IntegrationTest, OceanCompletesOnFourCells) {
  auto ts = hivetest::BootHive(4);
  workloads::OceanWorkload ocean(ts.hive.get(), SmallOcean(200));
  ocean.Setup();
  auto pids = ocean.Start();
  ASSERT_EQ(pids.size(), 4u);  // One thread per CPU.
  // Mid-run, the write-shared segment keeps remotely-writable pages open at
  // the segment home (section 4.2's ocean observation)...
  ts.machine->events().RunUntil(60 * kMillisecond);
  EXPECT_GT(ts.cell(0).firewall_manager().RemotelyWritablePages(), 20);
  ASSERT_TRUE(ts.hive->RunUntilDone(pids, 120 * kSecond));
  for (ProcId pid : pids) {
    CellId c = ts.hive->FindProcessCell(pid);
    EXPECT_EQ(ts.hive->cell(c).sched().FindProcess(pid)->state(), ProcState::kExited);
  }
  // ...and closes them when the application exits (grants live only as long
  // as mappings do).
  EXPECT_EQ(ts.cell(0).firewall_manager().RemotelyWritablePages(), 0);
}

TEST(IntegrationTest, OceanSlowdownIsNegligible) {
  // Table 7.2: ocean shows ~0-1% slowdown on any cell count.
  auto run = [](hivetest::TestSystem& ts, uint64_t seed) {
    workloads::OceanWorkload ocean(ts.hive.get(), SmallOcean(seed));
    ocean.Setup();
    const Time start = ts.machine->Now();
    auto pids = ocean.Start();
    EXPECT_TRUE(ts.hive->RunUntilDone(pids, start + 120 * kSecond));
    Time finish = 0;
    for (ProcId pid : pids) {
      CellId c = ts.hive->FindProcessCell(pid);
      finish = std::max(finish, ts.hive->cell(c).sched().FindProcess(pid)->finished_at);
    }
    return finish - start;
  };
  auto smp = hivetest::BootSmp();
  const Time smp_time = run(smp, 201);
  auto hive4 = hivetest::BootHive(4);
  const Time hive_time = run(hive4, 201);
  EXPECT_LT(static_cast<double>(hive_time), static_cast<double>(smp_time) * 1.10);
}

TEST(IntegrationTest, RaytraceCompletesAcrossCells) {
  auto ts = hivetest::BootHive(4);
  workloads::RaytraceWorkload ray(ts.hive.get(), SmallRaytrace(300));
  auto pids = ray.Start();
  ASSERT_TRUE(ts.hive->RunUntilDone(pids, 120 * kSecond));
  EXPECT_EQ(ray.ValidateOutputs(), 0);
  // Workers on remote cells really bound the parent's scene pages.
  EXPECT_EQ(ray.worker_pids().size(), 4u);
  for (size_t w = 0; w < ray.worker_pids().size(); ++w) {
    CellId c = ts.hive->FindProcessCell(ray.worker_pids()[w]);
    Process* proc = ts.hive->cell(c).sched().FindProcess(ray.worker_pids()[w]);
    EXPECT_EQ(proc->state(), ProcState::kExited) << "worker " << w;
  }
}

TEST(IntegrationTest, PmakeSurvivesNodeFailureOnOtherCells) {
  // The paper's correctness check: after a fault, pmake still runs on the
  // surviving cells and its outputs are uncorrupted (section 7.4).
  auto ts = hivetest::BootHive(4);
  workloads::PmakeWorkload pmake(ts.hive.get(), SmallPmake(400));
  pmake.Setup();
  auto pids = pmake.Start();

  // Kill cell 3 mid-run (cell 3 hosts some jobs; the file server is cell 0).
  flash::FaultInjector injector(ts.machine.get(), 7);
  injector.ScheduleNodeFailure(3, 100 * kMillisecond);

  (void)ts.hive->RunUntilDone(pids, 120 * kSecond);
  EXPECT_FALSE(ts.cell(3).alive());

  // Jobs on surviving cells completed; outputs validate.
  EXPECT_GE(pmake.CompletedJobs(), 4);
  EXPECT_EQ(pmake.ValidateOutputs(), 0);

  // Correctness check run: a fresh pmake forked onto the survivors.
  workloads::PmakeWorkload check(ts.hive.get(), SmallPmake(401));
  check.Setup();
  auto check_pids = check.Start();
  ASSERT_TRUE(ts.hive->RunUntilDone(check_pids, ts.machine->Now() + 120 * kSecond));
  EXPECT_EQ(check.CompletedJobs(), SmallPmake(401).jobs);
  EXPECT_EQ(check.ValidateOutputs(), 0);
}

TEST(IntegrationTest, OceanDiesWithAnyCellButSystemSurvives) {
  auto ts = hivetest::BootHive(4);
  workloads::OceanWorkload ocean(ts.hive.get(), SmallOcean(500));
  ocean.Setup();
  auto pids = ocean.Start();

  flash::FaultInjector injector(ts.machine.get(), 7);
  injector.ScheduleNodeFailure(2, 50 * kMillisecond);
  ts.machine->events().RunUntil(500 * kMillisecond);

  // The spanning application is gone everywhere (it ran on all processors
  // and would have exited anyway, section 4.2).
  for (ProcId pid : pids) {
    CellId c = ts.hive->FindProcessCell(pid);
    if (!ts.hive->cell(c).alive()) {
      continue;
    }
    EXPECT_EQ(ts.hive->cell(c).sched().FindProcess(pid)->state(), ProcState::kKilled);
  }
  // But the surviving cells are fine.
  EXPECT_TRUE(ts.cell(0).alive());
  EXPECT_TRUE(ts.cell(1).alive());
  EXPECT_TRUE(ts.cell(3).alive());
}

}  // namespace
}  // namespace hive
