// Unit tests for the hive_lint whole-program index (pass 1): function
// definition discovery, cross-TU call-edge resolution, overload bucketing,
// recursion-safe transitive lock sets, lock-site scoping, container facts,
// and the Status-return classification R9 builds on.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/hive_lint/index.h"
#include "tools/hive_lint/lexer.h"

namespace lint {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  // Tokenizes and indexes one pseudo-file; keeps it alive for body scans.
  void AddFile(const std::string& rel_path, const std::string& text) {
    auto file = std::make_unique<SourceFile>();
    file->rel_path = rel_path;
    Tokenize(text, file.get());
    IndexFile(*file, &index_);
    files_.push_back(std::move(file));
  }

  const FunctionDef* Only(const std::string& name) {
    const std::vector<FunctionDef*> defs = index_.Resolve(name);
    return defs.size() == 1 ? defs[0] : nullptr;
  }

  ProgramIndex index_;
  std::vector<std::unique_ptr<SourceFile>> files_;
};

TEST_F(IndexTest, FindsDefinitionsAndQualifiedNames) {
  AddFile("src/core/a.cc",
          "namespace hive {\n"
          "class Widget {\n"
          " public:\n"
          "  int Size() const { return 1; }\n"
          "};\n"
          "int Widget2::Grow(int by) { return by; }\n"
          "}  // namespace hive\n");
  const FunctionDef* size = Only("Size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->qualified, "hive::Widget::Size");
  EXPECT_EQ(size->file, "src/core/a.cc");
  const FunctionDef* grow = Only("Grow");
  ASSERT_NE(grow, nullptr);
  EXPECT_EQ(grow->qualified, "hive::Widget2::Grow");
}

TEST_F(IndexTest, CrossTuCallEdgesResolve) {
  AddFile("src/core/caller.cc",
          "namespace hive {\n"
          "void Callee();\n"
          "void Caller() { Callee(); }\n"
          "}\n");
  AddFile("src/core/callee.cc",
          "namespace hive {\n"
          "void Callee() { }\n"
          "}\n");
  const FunctionDef* caller = Only("Caller");
  ASSERT_NE(caller, nullptr);
  ASSERT_EQ(caller->calls.size(), 1u);
  EXPECT_EQ(caller->calls[0].callee, "Callee");
  // Reachability crosses the TU boundary.
  std::set<const FunctionDef*> reach = index_.ReachableFrom({"Caller"});
  EXPECT_EQ(reach.size(), 2u);
  EXPECT_TRUE(reach.count(Only("Callee")) == 1);
}

TEST_F(IndexTest, OverloadsShareOneBucket) {
  AddFile("src/core/o1.cc", "int Parse(int x) { return x; }\n");
  AddFile("src/core/o2.cc", "double Parse(double x) { return x; }\n");
  EXPECT_EQ(index_.Resolve("Parse").size(), 2u);
  // A caller of Parse reaches both candidates (deliberate over-approximation).
  AddFile("src/core/o3.cc", "void UseParse() { Parse(1); }\n");
  EXPECT_EQ(index_.ReachableFrom({"UseParse"}).size(), 3u);
}

TEST_F(IndexTest, StatusReturnClassification) {
  AddFile("src/core/s.cc",
          "namespace hive {\n"
          "base::Status Recover(int n);\n"
          "base::Result<int> Count();\n"
          "void Helper();\n"
          "int Read(int addr) { return addr; }\n"
          "base::Status Read(double addr);\n"  // Overload with another type.
          "}\n");
  EXPECT_EQ(index_.status_returning.count("Recover"), 1u);
  EXPECT_EQ(index_.status_returning.count("Count"), 1u);
  EXPECT_EQ(index_.status_returning.count("Helper"), 0u);
  // "Read" is seen with both Status and non-Status returns: ambiguous, so R9
  // must not flag it.
  EXPECT_EQ(index_.status_returning.count("Read"), 1u);
  EXPECT_EQ(index_.status_ambiguous.count("Read"), 1u);
  EXPECT_EQ(index_.status_ambiguous.count("Recover"), 0u);
}

TEST_F(IndexTest, RecursionTerminatesTransitiveLocks) {
  // Mutual recursion with locks on both sides: TransitiveLocks must
  // terminate and accumulate both keys.
  AddFile("src/core/r.cc",
          "#include <mutex>\n"
          "std::mutex mu_even; std::mutex mu_odd;\n"
          "void Odd(int n);\n"
          "void Even(int n) {\n"
          "  std::lock_guard<std::mutex> g(mu_even);\n"
          "  if (n > 0) Odd(n - 1);\n"
          "}\n"
          "void Odd(int n) {\n"
          "  std::lock_guard<std::mutex> g(mu_odd);\n"
          "  if (n > 0) Even(n - 1);\n"
          "}\n");
  const FunctionDef* even = Only("Even");
  ASSERT_NE(even, nullptr);
  std::map<const FunctionDef*, std::set<std::string>> memo;
  const std::set<std::string>& locks = index_.TransitiveLocks(even, &memo);
  EXPECT_EQ(locks.count("mu_even"), 1u);
  EXPECT_EQ(locks.count("mu_odd"), 1u);
}

TEST_F(IndexTest, LockSitesAndScopes) {
  AddFile("src/core/l.cc",
          "#include <mutex>\n"
          "struct S {\n"
          "  void Narrow() {\n"
          "    { std::lock_guard<std::mutex> g(mu_); }\n"
          "    other_.lock();\n"
          "  }\n"
          "  void Both() { std::scoped_lock g(this->mu_, peer_mu); }\n"
          "};\n");
  const FunctionDef* narrow = Only("Narrow");
  ASSERT_NE(narrow, nullptr);
  ASSERT_EQ(narrow->locks.size(), 2u);
  // The braced guard's scope closes before the body end; the explicit
  // .lock() is (conservatively) held to the end of the body.
  EXPECT_LT(narrow->locks[0].scope_end, narrow->body_end);
  EXPECT_EQ(narrow->locks[1].scope_end, narrow->body_end);
  EXPECT_EQ(narrow->locks[1].keys, std::vector<std::string>{"other_"});
  const FunctionDef* both = Only("Both");
  ASSERT_NE(both, nullptr);
  ASSERT_EQ(both->locks.size(), 1u);
  // One scoped_lock site, two canonicalized keys (this-> stripped).
  EXPECT_EQ(both->locks[0].keys,
            (std::vector<std::string>{"mu_", "peer_mu"}));
}

TEST_F(IndexTest, ContainerAndRangeForFacts) {
  AddFile("src/core/c.cc",
          "#include <map>\n#include <unordered_map>\n"
          "struct T {\n"
          "  std::unordered_map<int, int> counts_;\n"
          "  std::map<int*, int> by_addr_;\n"
          "  std::map<int, int> ordered_;\n"
          "  int Sum() {\n"
          "    int s = 0;\n"
          "    for (const auto& [k, v] : counts_) { s += v; }\n"
          "    for (const auto& [k, v] : ordered_) { s += v; }\n"
          "    return s;\n"
          "  }\n"
          "};\n");
  EXPECT_EQ(index_.unordered_containers.count("counts_"), 1u);
  EXPECT_EQ(index_.unordered_containers.count("ordered_"), 0u);
  ASSERT_EQ(index_.ptr_keyed_ordered.size(), 1u);
  EXPECT_EQ(index_.ptr_keyed_ordered[0].name, "by_addr_");
  const FunctionDef* sum = Only("Sum");
  ASSERT_NE(sum, nullptr);
  ASSERT_EQ(sum->range_fors.size(), 2u);
  EXPECT_EQ(sum->range_fors[0].range_ident, "counts_");
  EXPECT_FALSE(sum->range_fors[0].calls_range);
}

TEST_F(IndexTest, RangeOverCallIsMarked) {
  AddFile("src/core/rc.cc",
          "void Visit() {\n"
          "  for (int* p : AllProcesses()) { (void)p; }\n"
          "}\n");
  const FunctionDef* visit = Only("Visit");
  ASSERT_NE(visit, nullptr);
  ASSERT_EQ(visit->range_fors.size(), 1u);
  EXPECT_EQ(visit->range_fors[0].range_ident, "AllProcesses");
  EXPECT_TRUE(visit->range_fors[0].calls_range);
}

TEST_F(IndexTest, StructNamesRegistered) {
  AddFile("src/core/t.cc",
          "struct RemoteThing { int x; };\n"
          "struct Forward;\n"
          "class LocalThing { };\n");
  EXPECT_EQ(index_.struct_names.count("RemoteThing"), 1u);
  EXPECT_EQ(index_.struct_names.count("LocalThing"), 1u);
  // Forward declarations do not define a layout; they are not registered.
  EXPECT_EQ(index_.struct_names.count("Forward"), 0u);
}

TEST_F(IndexTest, ConstructorInitListsParse) {
  // A ctor with both paren and brace initializers must still be recognized
  // so its body's calls land in the graph.
  AddFile("src/core/ctor.cc",
          "namespace hive {\n"
          "Widget::Widget(int n) : size_(n), items_{n} { Setup(); }\n"
          "}\n");
  const FunctionDef* ctor = Only("Widget");
  ASSERT_NE(ctor, nullptr);
  ASSERT_EQ(ctor->calls.size(), 1u);
  EXPECT_EQ(ctor->calls[0].callee, "Setup");
}

}  // namespace
}  // namespace lint
