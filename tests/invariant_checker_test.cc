// The debug-mode invariant auditor: firewall vectors vs kernel bookkeeping
// (see src/core/invariant_checker.h).

#include "src/core/invariant_checker.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class InvariantCheckerTest : public ::testing::Test {
 protected:
  InvariantCheckerTest() : ts_(hivetest::BootHive(4)) {}

  hivetest::TestSystem ts_;
};

TEST_F(InvariantCheckerTest, CleanAfterBoot) {
  InvariantChecker checker(ts_.hive.get());
  const InvariantReport report = checker.AuditAll();
  EXPECT_TRUE(report.clean()) << report.mismatches.front().ToString();
  EXPECT_EQ(report.cells_audited, 4);
  EXPECT_GT(report.pages_audited, 0u);
}

TEST_F(InvariantCheckerTest, CatchesUnauthorizedFirewallGrant) {
  // Model a wild write into the firewall configuration path: cell 1's page
  // becomes writable by cell 0's processors with no kernel bookkeeping
  // behind it. The audit must notice, name the page, and raise a
  // failure-detection hint against the cell holding the unauthorized bits.
  Cell& victim = ts_.cell(1);
  const Pfn pfn = ts_.machine->mem().PfnOfAddr(victim.mem_base());
  ts_.machine->firewall().GrantCpus(pfn, ts_.cell(0).CpuMask(), victim.FirstCpu());

  InvariantChecker checker(ts_.hive.get());
  const uint64_t hints_before = victim.detector().hints_raised();
  const InvariantReport report = checker.AuditAll(/*raise_hints=*/true);

  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.mismatches.front().cell, 1);
  EXPECT_EQ(report.mismatches.front().pfn, pfn);
  EXPECT_EQ(report.mismatches.front().actual & ~report.mismatches.front().expected,
            ts_.cell(0).CpuMask());
  EXPECT_EQ(victim.detector().hints_raised(), hints_before + 1);
  EXPECT_GT(victim.trace().Count(TraceEvent::kInvariantMismatch), 0);
  // Agreement (oracle) votes the accusation down: cell 0 is actually fine.
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());

  // Repairing the vector makes the audit clean again.
  ts_.machine->firewall().RevokeCpus(pfn, ts_.cell(0).CpuMask(), victim.FirstCpu());
  EXPECT_TRUE(checker.AuditAll().clean());
}

TEST_F(InvariantCheckerTest, CatchesLoanBookkeepingMismatch) {
  // A pfdat that claims its frame is loaned out while the allocator disagrees
  // is corrupt bookkeeping (and the firewall vector no longer matches the
  // claimed borrower).
  Cell& cell = ts_.cell(2);
  Pfdat* pfdat = nullptr;
  cell.pfdats().ForEach([&](Pfdat* p) {
    if (pfdat == nullptr && !p->extended && !p->loaned_out) {
      pfdat = p;
    }
  });
  ASSERT_NE(pfdat, nullptr);
  pfdat->loaned_out = true;
  pfdat->loaned_to = 0;

  InvariantChecker checker(ts_.hive.get());
  const InvariantReport report = checker.AuditCell(2);
  ASSERT_FALSE(report.clean());
  bool loan_mismatch = false;
  for (const InvariantMismatch& m : report.mismatches) {
    loan_mismatch = loan_mismatch || m.detail.find("loan") != std::string::npos;
  }
  EXPECT_TRUE(loan_mismatch);

  pfdat->loaned_out = false;
  pfdat->loaned_to = kInvalidCell;
  EXPECT_TRUE(checker.AuditCell(2).clean());
}

TEST_F(InvariantCheckerTest, CleanWhileSharingActive) {
  // Cross-cell file writes set up real exports, grants and (under NUMA
  // placement) loans; the audit must agree with all of it.
  Ctx ctx = ts_.cell(1).MakeCtx();
  ASSERT_TRUE(ts_.cell(1).fs().Create(ctx, "/shared.dat", {}).ok());
  std::vector<uint8_t> data(4096, 0x5A);
  auto home_handle = ts_.cell(1).fs().Open(ctx, "/shared.dat");
  ASSERT_TRUE(home_handle.ok());
  ASSERT_TRUE(ts_.cell(1)
                  .fs()
                  .Write(ctx, *home_handle, 0, std::span<const uint8_t>(data))
                  .ok());
  Ctx client_ctx = ts_.cell(3).MakeCtx();
  auto client_handle = ts_.cell(3).fs().Open(client_ctx, "/shared.dat");
  ASSERT_TRUE(client_handle.ok());
  ASSERT_TRUE(ts_.cell(3)
                  .fs()
                  .Write(client_ctx, *client_handle, 0, std::span<const uint8_t>(data))
                  .ok());

  InvariantChecker checker(ts_.hive.get());
  const InvariantReport report = checker.AuditAll();
  EXPECT_TRUE(report.clean()) << report.mismatches.front().ToString();
}

TEST_F(InvariantCheckerTest, CleanAfterRecovery) {
  // Recovery rewrites grant/export/loan state on every survivor; the
  // post-recovery audit (wired into RecoveryManager::Run) and this explicit
  // one must both find the books balanced.
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  ts_.machine->events().RunUntil(200 * kMillisecond);
  ASSERT_EQ(ts_.hive->recovery().recoveries_run(), 1);
  ASSERT_FALSE(ts_.cell(2).alive());

  InvariantChecker checker(ts_.hive.get());
  const InvariantReport report = checker.AuditAll();
  EXPECT_TRUE(report.clean()) << report.mismatches.front().ToString();
  EXPECT_EQ(report.cells_audited, 3);
}

TEST(InvariantCheckerSmpTest, AuditSkippedInSmpMode) {
  hivetest::TestSystem ts = hivetest::BootSmp();
  InvariantChecker checker(ts.hive.get());
  const InvariantReport report = checker.AuditAll();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.cells_audited, 0);
  EXPECT_EQ(report.pages_audited, 0u);
}

}  // namespace
}  // namespace hive
