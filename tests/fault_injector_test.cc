#include "src/flash/fault_injector.h"

#include <gtest/gtest.h>

#include <array>

#include "src/flash/sips.h"
#include "tests/test_util.h"

namespace flash {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : machine_(hivetest::SmallConfig(), 1), injector_(&machine_, 7) {}

  uint64_t ReadWord(PhysAddr addr) {
    uint64_t value = 0;
    machine_.mem().RawRead(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), 8));
    return value;
  }
  void WriteWord(PhysAddr addr, uint64_t value) {
    machine_.mem().RawWrite(addr,
                            std::span<const uint8_t>(reinterpret_cast<uint8_t*>(&value), 8));
  }

  Machine machine_;
  FaultInjector injector_;
};

TEST_F(FaultInjectorTest, ScheduledNodeFailureFiresAtTime) {
  injector_.ScheduleNodeFailure(2, 1000);
  EXPECT_FALSE(machine_.NodeDead(2));
  machine_.events().RunUntil(999);
  EXPECT_FALSE(machine_.NodeDead(2));
  machine_.events().RunUntil(1000);
  EXPECT_TRUE(machine_.NodeDead(2));
  EXPECT_TRUE(machine_.cpu(machine_.FirstCpuOfNode(2)).halted);
}

TEST_F(FaultInjectorTest, OffByOneWordMode) {
  WriteWord(0x1000, 0x2000);
  const uint64_t corrupt = injector_.CorruptPointer(
      0x1000, PointerCorruptionMode::kOffByOneWord, 0, 1 << 20, 1 << 20, 1 << 20);
  EXPECT_EQ(corrupt, 0x2008u);
  EXPECT_EQ(ReadWord(0x1000), 0x2008u);
}

TEST_F(FaultInjectorTest, SelfPointingMode) {
  WriteWord(0x1000, 0xAAAA);
  const uint64_t corrupt = injector_.CorruptPointer(
      0x1000, PointerCorruptionMode::kSelfPointing, 0, 1 << 20, 1 << 20, 1 << 20);
  EXPECT_EQ(corrupt, 0x1000u);
}

TEST_F(FaultInjectorTest, RandomSameCellStaysInVictimRange) {
  for (int i = 0; i < 50; ++i) {
    const uint64_t corrupt = injector_.CorruptPointer(
        0x1000, PointerCorruptionMode::kRandomSameCell, 0x100000, 0x10000, 0x800000,
        0x10000);
    EXPECT_GE(corrupt, 0x100000u);
    EXPECT_LT(corrupt, 0x110000u);
    EXPECT_EQ(corrupt % 8, 0u);
  }
}

TEST_F(FaultInjectorTest, RandomOtherCellStaysInOtherRange) {
  for (int i = 0; i < 50; ++i) {
    const uint64_t corrupt = injector_.CorruptPointer(
        0x1000, PointerCorruptionMode::kRandomOtherCell, 0x100000, 0x10000, 0x800000,
        0x10000);
    EXPECT_GE(corrupt, 0x800000u);
    EXPECT_LT(corrupt, 0x810000u);
  }
}

TEST_F(FaultInjectorTest, CorruptBytesMutatesRange) {
  std::vector<uint8_t> zeros(1024, 0);
  machine_.mem().RawWrite(0x4000, std::span<const uint8_t>(zeros));
  injector_.CorruptBytes(0x4000, 1024);
  std::vector<uint8_t> after(1024);
  machine_.mem().RawRead(0x4000, std::span<uint8_t>(after));
  int changed = 0;
  for (uint8_t byte : after) {
    changed += byte != 0 ? 1 : 0;
  }
  EXPECT_GT(changed, 900);  // Random garbage, not zeros.
}

TEST_F(FaultInjectorTest, CorruptionBypassesFirewall) {
  // The injector models the victim's own bug: it writes regardless of the
  // firewall (a cell can always scribble its own memory).
  machine_.firewall().SetVector(1, 0, 0);  // Nobody may write page 1.
  injector_.CorruptBytes(4096, 64);        // Still succeeds.
  std::vector<uint8_t> after(64);
  machine_.mem().RawRead(4096, std::span<uint8_t>(after));
  int nonzero = 0;
  for (uint8_t byte : after) {
    nonzero += byte != 0 ? 1 : 0;
  }
  EXPECT_GT(nonzero, 0);
}

TEST_F(FaultInjectorTest, HaltCpuLeavesMemoryAccessible) {
  machine_.HaltCpu(1);
  EXPECT_TRUE(machine_.cpu(1).halted);
  // Memory of the node is still accessible (processor fault, not node fault).
  machine_.mem().WriteValue<uint64_t>(0, hivetest::SmallConfig().memory_per_node, 5);
}

TEST_F(FaultInjectorTest, RestoreNodeRevivesCpus) {
  machine_.FailNode(1);
  EXPECT_TRUE(machine_.NodeDead(1));
  machine_.RestoreNode(1);
  EXPECT_FALSE(machine_.NodeDead(1));
  EXPECT_FALSE(machine_.cpu(machine_.FirstCpuOfNode(1)).halted);
  machine_.mem().WriteValue<uint64_t>(machine_.FirstCpuOfNode(1),
                                      hivetest::SmallConfig().memory_per_node, 7);
}

MessageFaultPlan AllRoutesPlan(Time start, Time end, uint32_t drop_pm, uint32_t dup_pm,
                               uint32_t delay_pm, uint32_t corrupt_pm) {
  MessageFaultPlan plan;
  plan.start = start;
  plan.end = end;
  plan.drop_pm = drop_pm;
  plan.dup_pm = dup_pm;
  plan.delay_pm = delay_pm;
  plan.corrupt_pm = corrupt_pm;
  return plan;
}

TEST(MessageFaultModelTest, DrawsNothingOutsideActiveWindows) {
  MessageFaultModel model(11);
  model.AddPlan(AllRoutesPlan(1000, 2000, 1000, 0, 0, 0));
  // Before, after, and between windows: no decision and -- critically for
  // no-fault determinism -- no RNG draw.
  EXPECT_FALSE(model.Active(999, 0, 1));
  EXPECT_EQ(model.Sample(999, 0, 1).kind, MessageFaultKind::kNone);
  EXPECT_EQ(model.Sample(2000, 0, 1).kind, MessageFaultKind::kNone);
  EXPECT_EQ(model.stats().sampled, 0u);
  EXPECT_TRUE(model.Active(1000, 0, 1));
  EXPECT_EQ(model.Sample(1500, 0, 1).kind, MessageFaultKind::kDrop);
  EXPECT_EQ(model.stats().sampled, 1u);
  EXPECT_EQ(model.stats().dropped, 1u);
}

TEST(MessageFaultModelTest, DirectedPlanMatchesOnlyItsRoute) {
  MessageFaultModel model(11);
  MessageFaultPlan plan = AllRoutesPlan(0, 1000, 1000, 0, 0, 0);
  plan.src_node = 2;
  plan.dst_node = 3;
  model.AddPlan(plan);
  EXPECT_FALSE(model.Active(10, 0, 1));
  EXPECT_FALSE(model.Active(10, 3, 2));  // Directed: reverse route unaffected.
  EXPECT_TRUE(model.Active(10, 2, 3));
  EXPECT_EQ(model.Sample(10, 0, 1).kind, MessageFaultKind::kNone);
  EXPECT_EQ(model.Sample(10, 2, 3).kind, MessageFaultKind::kDrop);
}

TEST(MessageFaultModelTest, SameSeedSameDecisionSequence) {
  MessageFaultModel a(99);
  MessageFaultModel b(99);
  a.AddPlan(AllRoutesPlan(0, 1 << 30, 100, 150, 200, 50));
  b.AddPlan(AllRoutesPlan(0, 1 << 30, 100, 150, 200, 50));
  for (int i = 0; i < 500; ++i) {
    const MessageFaultDecision da = a.Sample(i, 0, 1);
    const MessageFaultDecision db = b.Sample(i, 0, 1);
    EXPECT_EQ(da.kind, db.kind) << i;
    EXPECT_EQ(da.delay_ns, db.delay_ns) << i;
    EXPECT_EQ(da.corrupt_byte, db.corrupt_byte) << i;
    EXPECT_EQ(da.corrupt_mask, db.corrupt_mask) << i;
  }
  EXPECT_EQ(a.stats().sampled, 500u);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().delayed, b.stats().delayed);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  // With 50% total fault mass over 500 draws, every family fired.
  EXPECT_GT(a.stats().dropped, 0u);
  EXPECT_GT(a.stats().duplicated, 0u);
  EXPECT_GT(a.stats().delayed, 0u);
  EXPECT_GT(a.stats().corrupted, 0u);
}

TEST(MessageFaultModelTest, SipsChecksumDetectsSingleBitFlip) {
  std::array<uint8_t, kSipsPayloadBytes> payload{};
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  const uint32_t clean = SipsChecksum(payload);
  payload[17] ^= 0x10;
  EXPECT_NE(SipsChecksum(payload), clean);
  payload[17] ^= 0x10;
  EXPECT_EQ(SipsChecksum(payload), clean);
}

}  // namespace
}  // namespace flash
