#include <gtest/gtest.h>

#include "src/flash/disk.h"
#include "src/flash/event_queue.h"
#include "src/flash/sips.h"
#include "tests/test_util.h"

namespace flash {
namespace {

class SipsTest : public ::testing::Test {
 protected:
  SipsTest()
      : config_(hivetest::SmallConfig()),
        interconnect_(config_),
        sips_(&queue_, config_, &interconnect_) {}

  std::array<uint8_t, kSipsPayloadBytes> Payload(uint8_t fill) {
    std::array<uint8_t, kSipsPayloadBytes> p;
    p.fill(fill);
    return p;
  }

  MachineConfig config_;
  Interconnect interconnect_;
  EventQueue queue_;
  Sips sips_;
};

TEST(InterconnectTest, FourNodesFormTwoByTwoMesh) {
  Interconnect mesh(hivetest::SmallConfig(4));
  EXPECT_EQ(mesh.width(), 2);
  EXPECT_EQ(mesh.height(), 2);
  EXPECT_EQ(mesh.HopDistance(0, 0), 0);
  EXPECT_EQ(mesh.HopDistance(0, 1), 1);
  EXPECT_EQ(mesh.HopDistance(0, 2), 1);
  EXPECT_EQ(mesh.HopDistance(0, 3), 2);  // Diagonal corner.
}

TEST(InterconnectTest, DistanceIsSymmetric) {
  MachineConfig config = hivetest::SmallConfig(4);
  config.num_nodes = 9;
  Interconnect mesh(config);
  EXPECT_EQ(mesh.width(), 3);
  for (int a = 0; a < 9; ++a) {
    for (int b = 0; b < 9; ++b) {
      EXPECT_EQ(mesh.HopDistance(a, b), mesh.HopDistance(b, a));
    }
  }
  EXPECT_EQ(mesh.HopDistance(0, 8), 4);  // Opposite corners of 3x3.
}

TEST(InterconnectTest, PerHopLatencyAppliesToSips) {
  MachineConfig config = hivetest::SmallConfig(4);
  config.latency.mesh_hop_extra_ns = 100;
  Interconnect mesh(config);
  EventQueue queue;
  Sips sips(&queue, config, &mesh);
  Time near_delivery = 0;
  Time far_delivery = 0;
  sips.SetHandler(1, [&](const SipsMessage& msg) { near_delivery = msg.deliver_time; });
  sips.SetHandler(3, [&](const SipsMessage& msg) { far_delivery = msg.deliver_time; });
  std::array<uint8_t, kSipsPayloadBytes> payload{};
  ASSERT_TRUE(sips.Send(0, 1, false, payload).ok());  // 1 hop.
  ASSERT_TRUE(sips.Send(0, 3, false, payload).ok());  // 2 hops (diagonal).
  queue.Run();
  EXPECT_EQ(far_delivery - near_delivery, 100);
}

TEST_F(SipsTest, DeliversWithIpiPlusPayloadLatency) {
  Time delivered_at = -1;
  std::array<uint8_t, kSipsPayloadBytes> seen{};
  sips_.SetHandler(1, [&](const SipsMessage& msg) {
    delivered_at = msg.deliver_time;
    seen = msg.payload;
  });
  ASSERT_TRUE(sips_.Send(0, 1, /*is_reply=*/false, Payload(0x7F)).ok());
  queue_.Run();
  EXPECT_EQ(delivered_at, config_.latency.ipi_ns + config_.latency.sips_payload_ns);
  EXPECT_EQ(seen[0], 0x7F);
  EXPECT_EQ(seen[kSipsPayloadBytes - 1], 0x7F);
}

TEST_F(SipsTest, QueueDepthProvidesFlowControl) {
  sips_.SetHandler(1, [](const SipsMessage&) {});
  for (int i = 0; i < config_.sips_queue_depth; ++i) {
    ASSERT_TRUE(sips_.Send(0, 1, false, Payload(0)).ok());
  }
  // The receive queue is full: hardware flow control pushes back.
  EXPECT_EQ(sips_.Send(0, 1, false, Payload(0)).code(),
            base::StatusCode::kResourceExhausted);
  queue_.Run();
  // Drained: sending works again.
  EXPECT_TRUE(sips_.Send(0, 1, false, Payload(0)).ok());
}

TEST_F(SipsTest, RequestAndReplyQueuesAreSeparate) {
  sips_.SetHandler(1, [](const SipsMessage&) {});
  for (int i = 0; i < config_.sips_queue_depth; ++i) {
    ASSERT_TRUE(sips_.Send(0, 1, /*is_reply=*/false, Payload(0)).ok());
  }
  // Requests are full but replies still flow: deadlock avoidance (section 6).
  EXPECT_TRUE(sips_.Send(0, 1, /*is_reply=*/true, Payload(0)).ok());
}

TEST_F(SipsTest, MessagesToDeadNodeVanish) {
  int delivered = 0;
  sips_.SetHandler(1, [&](const SipsMessage&) { ++delivered; });
  sips_.SetNodeDead(1, true);
  EXPECT_TRUE(sips_.Send(0, 1, false, Payload(0)).ok());  // Send "succeeds".
  queue_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_GT(sips_.messages_dropped(), 0u);
}

TEST_F(SipsTest, MessagesInFlightToNodeThatDiesAreDropped) {
  int delivered = 0;
  sips_.SetHandler(1, [&](const SipsMessage&) { ++delivered; });
  ASSERT_TRUE(sips_.Send(0, 1, false, Payload(0)).ok());
  sips_.SetNodeDead(1, true);  // Dies before delivery.
  queue_.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(DiskTest, SequentialAccessIsCheaperThanRandom) {
  Disk disk(1);
  const Time first = disk.AccessTime(0, 4096);
  const Time sequential = disk.AccessTime(4096, 4096);
  Disk disk2(2);
  (void)disk2.AccessTime(0, 4096);
  const Time random = disk2.AccessTime(disk2.capacity_bytes() / 2, 4096);
  EXPECT_LT(sequential, random);
  EXPECT_GT(first, 0);
  EXPECT_EQ(disk.sequential_accesses(), 1u);
}

TEST(DiskTest, TransferTimeScalesWithSize) {
  Disk disk(1);
  (void)disk.AccessTime(0, 4096);
  const Time small = disk.AccessTime(4096, 4096);
  const Time large = disk.AccessTime(8192, 64 * 4096);
  EXPECT_GT(large, small * 10);
}

TEST(DiskTest, SeekTimeMatchesHp97560Curve) {
  // A full-stroke seek on the HP 97560 is ~8 + 0.008 * 1962 ~= 23.7 ms; with
  // rotation it stays under ~39 ms; short seeks are a few ms.
  Disk disk(1);
  (void)disk.AccessTime(0, 512);
  const Time full_stroke = disk.AccessTime(disk.capacity_bytes() - 512, 512);
  EXPECT_GT(full_stroke, 20 * kMillisecond);
  EXPECT_LT(full_stroke, 45 * kMillisecond);
}

}  // namespace
}  // namespace flash
