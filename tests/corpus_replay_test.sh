#!/bin/sh
# Corpus regression replay: every checked-in corpus entry must regenerate and
# replay clean, and the merged campaign output (coverage map, merged
# fingerprint, violation count) must be byte-identical for 1 and 4 workers.
#
# Usage: corpus_replay_test.sh <hive_campaign-binary> <corpus-dir>
set -eu

CAMPAIGN="$1"
CORPUS="$2"

fail() {
  echo "corpus_replay_test: $1" >&2
  exit 1
}

[ -x "$CAMPAIGN" ] || fail "campaign binary '$CAMPAIGN' not executable"
[ -d "$CORPUS" ] || fail "corpus dir '$CORPUS' missing"

entries=$(ls "$CORPUS"/*.corpus 2>/dev/null | wc -l)
[ "$entries" -gt 0 ] || fail "corpus dir '$CORPUS' has no *.corpus entries"

out1=$(mktemp)
out4=$(mktemp)
trap 'rm -f "$out1" "$out4"' EXIT

"$CAMPAIGN" --corpus="$CORPUS" --replay-corpus --workers=1 > "$out1" 2>&1 \
  || fail "1-worker replay exited non-zero (a checked-in entry regressed):
$(cat "$out1")"
"$CAMPAIGN" --corpus="$CORPUS" --replay-corpus --workers=4 > "$out4" 2>&1 \
  || fail "4-worker replay exited non-zero:
$(cat "$out4")"

grep -q "ran $entries scenarios" "$out1" \
  || fail "expected to replay all $entries entries:
$(cat "$out1")"
grep -q "0 violation(s)" "$out1" \
  || fail "replay reported violations:
$(cat "$out1")"
grep -q "($entries loaded)" "$out1" \
  || fail "expected '($entries loaded)' in the corpus line:
$(cat "$out1")"
grep -q "merged-fingerprint=0x" "$out1" \
  || fail "missing merged-fingerprint line:
$(cat "$out1")"

# Worker-count independence of the merged output (only the workers= echo in
# the header may differ).
if ! diff "$(printf %s "$out1")" "$(printf %s "$out4")" >/dev/null 2>&1; then
  sed 's/workers=[0-9]*/workers=N/' "$out1" > "$out1.norm"
  sed 's/workers=[0-9]*/workers=N/' "$out4" > "$out4.norm"
  trap 'rm -f "$out1" "$out4" "$out1.norm" "$out4.norm"' EXIT
  diff "$out1.norm" "$out4.norm" \
    || fail "1-worker and 4-worker replay outputs differ beyond workers="
fi

echo "corpus_replay_test: OK ($entries entries, worker-count independent)"
