#include "src/core/kernel_heap.h"

#include <gtest/gtest.h>

#include "src/flash/phys_mem.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class KernelHeapTest : public ::testing::Test {
 protected:
  KernelHeapTest()
      : mem_(hivetest::SmallConfig()),
        heap_(&mem_, /*owner_cpu=*/0, /*base=*/0, /*size=*/1 << 20) {}

  flash::PhysMem mem_;
  KernelHeap heap_;
};

TEST_F(KernelHeapTest, AllocWritesTypeTag) {
  auto addr = heap_.Alloc(kTagCowNode, 64);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(heap_.ReadTypeTag(0, *addr), static_cast<uint32_t>(kTagCowNode));
  EXPECT_EQ(heap_.ReadAllocSize(0, *addr), 64u);
}

TEST_F(KernelHeapTest, FreeDestroysTypeTag) {
  auto addr = heap_.Alloc(kTagCowNode, 64);
  ASSERT_TRUE(addr.ok());
  heap_.Free(*addr);
  // Paper 4.1 step 4: the tag is "removed by the memory deallocator", so a
  // stale remote pointer fails the careful check.
  EXPECT_EQ(heap_.ReadTypeTag(0, *addr), static_cast<uint32_t>(kTagFree));
}

TEST_F(KernelHeapTest, AllocationsAreZeroed) {
  auto a = heap_.Alloc(kTagGeneric, 128);
  ASSERT_TRUE(a.ok());
  heap_.Write<uint64_t>(*a + 8, 0xFFFFFFFFFFFFFFFFull);
  heap_.Free(*a);
  auto b = heap_.Alloc(kTagGeneric, 128);  // Reuses the freed block.
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);
  EXPECT_EQ(heap_.Read<uint64_t>(*b + 8), 0u);
}

TEST_F(KernelHeapTest, FreeListReusesSameSize) {
  auto a = heap_.Alloc(kTagGeneric, 96);
  heap_.Free(*a);
  auto b = heap_.Alloc(kTagGeneric, 96);
  EXPECT_EQ(*a, *b);
}

TEST_F(KernelHeapTest, PayloadsAreAligned) {
  for (uint64_t size : {1u, 7u, 8u, 13u, 64u, 100u}) {
    auto addr = heap_.Alloc(kTagGeneric, size);
    ASSERT_TRUE(addr.ok());
    EXPECT_EQ(*addr % 8, 0u) << size;
  }
}

TEST_F(KernelHeapTest, ExhaustionReturnsOutOfMemory) {
  flash::PhysMem mem(hivetest::SmallConfig());
  KernelHeap tiny(&mem, 0, 0, 256);
  auto a = tiny.Alloc(kTagGeneric, 64);
  ASSERT_TRUE(a.ok());
  auto b = tiny.Alloc(kTagGeneric, 200);
  EXPECT_EQ(b.status().code(), base::StatusCode::kOutOfMemory);
}

TEST_F(KernelHeapTest, DoubleFreeIsFatal) {
  auto addr = heap_.Alloc(kTagGeneric, 32);
  heap_.Free(*addr);
  EXPECT_DEATH(heap_.Free(*addr), "double free");
}

TEST_F(KernelHeapTest, BytesInUseTracksAllocations) {
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  auto a = heap_.Alloc(kTagGeneric, 64);
  EXPECT_EQ(heap_.bytes_in_use(), 64u);
  heap_.Free(*a);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
}

TEST_F(KernelHeapTest, HeapStoresGoThroughFirewall) {
  // Protect the heap's pages so only CPU 1 may write, then watch the owner
  // (CPU 0) trap: kernel heaps rely on the normal checked store path.
  flash::PhysMem mem(hivetest::SmallConfig());
  for (flash::Pfn pfn = 0; pfn < 4; ++pfn) {
    mem.firewall().SetVector(pfn, 1ull << 1, 0);
  }
  KernelHeap heap(&mem, /*owner_cpu=*/0, 0, 16384);
  EXPECT_THROW((void)heap.Alloc(kTagGeneric, 32), flash::BusError);
}

}  // namespace
}  // namespace hive
