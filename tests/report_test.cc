#include "src/core/report.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/filesystem.h"
#include "src/core/recovery.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(ReportTest, SystemReportListsEveryCell) {
  const std::string report = RenderSystemReport(*ts_.hive);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("cell " + std::to_string(c)), std::string::npos) << c;
  }
  EXPECT_NE(report.find("RUNNING"), std::string::npos);
}

TEST_F(ReportTest, DeadCellRendersAsDead) {
  ts_.machine->FailNode(2);
  ts_.machine->events().RunUntil(100 * kMillisecond);
  const std::string report = RenderSystemReport(*ts_.hive);
  EXPECT_NE(report.find("DEAD"), std::string::npos);
}

TEST_F(ReportTest, SharingViewShowsExportsAndImports) {
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/r", workloads::PatternData(1, 4096));
  ASSERT_TRUE(id.ok());
  Cell& client = ts_.cell(0);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/r");
  auto pfdat = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true);
  ASSERT_TRUE(pfdat.ok());

  const std::string home_view = RenderCellSharing(*ts_.hive, 1);
  EXPECT_NE(home_view.find("exported-to"), std::string::npos);
  EXPECT_NE(home_view.find("writable"), std::string::npos);
  const std::string client_view = RenderCellSharing(*ts_.hive, 0);
  EXPECT_NE(client_view.find("imported-from=1"), std::string::npos);
}

TEST_F(ReportTest, RpcTransportTableShowsCallsTimeoutsAndRetries) {
  // One successful intercell call, then calls against a dead peer: the table
  // must surface the per-cell call, timeout and quarantine counters.
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  RpcArgs args;
  RpcReply reply;
  ASSERT_TRUE(client.rpc().Call(ctx, 1, MsgType::kNull, args, &reply).ok());

  ts_.machine->FailNode(2);
  for (int i = 0; i < 3; ++i) {
    Ctx dctx = client.MakeCtx();
    EXPECT_FALSE(client.rpc().Call(dctx, 2, MsgType::kNull, args, &reply).ok());
  }

  const std::string report = RenderRpcTransport(*ts_.hive);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("cell " + std::to_string(c)), std::string::npos) << c;
  }
  EXPECT_NE(report.find("Timeouts"), std::string::npos);
  EXPECT_NE(report.find("Retries"), std::string::npos);
  EXPECT_NE(report.find("Quarantines"), std::string::npos);
  EXPECT_NE(report.find("AMO-viol"), std::string::npos);
  const RpcCallStats& stats = client.rpc().stats();
  EXPECT_GE(stats.calls, 4u);
  EXPECT_GE(stats.timeouts, 1u);
}

TEST_F(ReportTest, RecoveryEpisodesEmptyBeforeAnyRecovery) {
  EXPECT_EQ(RenderRecoveryEpisodes(*ts_.hive), "");
}

TEST_F(ReportTest, RecoveryEpisodesTableRendersDurations) {
  // Two node failures, two recovery episodes: the table must list both with
  // a positive duration and render the duration distribution footer the
  // serve harness' recovery-time SLO reads.
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  injector.ScheduleNodeFailure(3, 150 * kMillisecond);
  ts_.machine->events().RunUntil(400 * kMillisecond);
  ASSERT_EQ(ts_.hive->recovery().recoveries_run(), 2);

  const std::string report = RenderRecoveryEpisodes(*ts_.hive);
  EXPECT_NE(report.find("Recovery episodes"), std::string::npos);
  EXPECT_NE(report.find("Duration (ms)"), std::string::npos);
  EXPECT_NE(report.find("recovery duration (ms): count=2"), std::string::npos);
  const auto& episodes = ts_.hive->recovery().episodes();
  ASSERT_EQ(episodes.size(), 2u);
  for (const RecoveryStats& episode : episodes) {
    EXPECT_GT(episode.duration_ns, 0);
  }
  EXPECT_EQ(episodes[0].failed_cells[0], 2);
  EXPECT_EQ(episodes[1].failed_cells[0], 3);
}

TEST_F(ReportTest, SharingViewEmptyWhenNoSharing) {
  const std::string view = RenderCellSharing(*ts_.hive, 3);
  EXPECT_NE(view.find("no intercell sharing"), std::string::npos);
}

TEST_F(ReportTest, SharingViewOfDeadCellSaysSo) {
  ts_.machine->FailNode(3);
  ts_.machine->events().RunUntil(100 * kMillisecond);
  const std::string view = RenderCellSharing(*ts_.hive, 3);
  EXPECT_NE(view.find("DEAD"), std::string::npos);
}

TEST_F(ReportTest, FailureDetectionTableListsEveryHintReason) {
  // The table carries one column per HintReason so a rogue's footprint is
  // visible at a glance.
  const std::string report = RenderFailureDetection(*ts_.hive);
  for (HintReason reason : kAllHintReasons) {
    EXPECT_NE(report.find(HintReasonName(reason)), std::string::npos)
        << HintReasonName(reason);
  }
  EXPECT_NE(report.find("Max-hops"), std::string::npos);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("cell " + std::to_string(c)), std::string::npos) << c;
  }
}

TEST(RecoverySalvageReportTest, TableShowsAdoptionsAndReintegrations) {
  // A salvageable write-export plus an auto-reintegrated victim: the table
  // must show the home's adoption and the victim's converged rejoin.
  HiveOptions options;
  options.salvage_pages = true;
  options.live_rejoin = true;
  hivetest::TestSystem ts = hivetest::BootHive(4, 4, options);
  ts.hive->recovery().auto_reintegrate = true;

  Cell& home = ts.cell(0);
  Ctx hctx = home.MakeCtx();
  ASSERT_TRUE(home.fs().Create(hctx, "/sr", workloads::PatternData(3, 4096)).ok());
  Cell& client = ts.cell(2);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/sr");
  ASSERT_TRUE(handle.ok());
  auto page = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true);
  ASSERT_TRUE(page.ok());
  client.fs().ReleasePage(cctx, *page);

  flash::FaultInjector injector(ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, ts.machine->Now() + kMillisecond);
  ts.machine->events().RunUntil(1 * kSecond);
  ASSERT_GE(ts.hive->recovery().salvage_log().size(), 1u);
  ASSERT_GE(ts.hive->recovery().reintegration_log().size(), 1u);

  const std::string report = RenderRecoverySalvage(*ts.hive);
  EXPECT_NE(report.find("Salvage & reintegration"), std::string::npos);
  EXPECT_NE(report.find("Frames-adopted"), std::string::npos);
  EXPECT_NE(report.find("Checksum-proof"), std::string::npos);
  EXPECT_NE(report.find("Reint-done"), std::string::npos);
  EXPECT_NE(report.find("page(s) salvaged"), std::string::npos);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("cell " + std::to_string(c)), std::string::npos) << c;
  }
}

TEST_F(ReportTest, FailureDetectionTableCountsHintsByReason) {
  // A node failure raises bus-error/stale hints at the monitoring cell; the
  // per-reason counters must be non-zero afterwards.
  ts_.machine->FailNode(2);
  ts_.machine->events().RunUntil(150 * kMillisecond);
  uint64_t total = 0;
  for (CellId c = 0; c < ts_.hive->num_cells(); ++c) {
    total += ts_.cell(c).detector().hints_raised();
  }
  ASSERT_GE(total, 1u);
  const std::string report = RenderFailureDetection(*ts_.hive);
  EXPECT_NE(report.find("Failure detection"), std::string::npos);
}

}  // namespace
}  // namespace hive
