#include "src/core/report.h"

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : ts_(hivetest::BootHive(4)) {}
  hivetest::TestSystem ts_;
};

TEST_F(ReportTest, SystemReportListsEveryCell) {
  const std::string report = RenderSystemReport(*ts_.hive);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(report.find("cell " + std::to_string(c)), std::string::npos) << c;
  }
  EXPECT_NE(report.find("RUNNING"), std::string::npos);
}

TEST_F(ReportTest, DeadCellRendersAsDead) {
  ts_.machine->FailNode(2);
  ts_.machine->events().RunUntil(100 * kMillisecond);
  const std::string report = RenderSystemReport(*ts_.hive);
  EXPECT_NE(report.find("DEAD"), std::string::npos);
}

TEST_F(ReportTest, SharingViewShowsExportsAndImports) {
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/r", workloads::PatternData(1, 4096));
  ASSERT_TRUE(id.ok());
  Cell& client = ts_.cell(0);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/r");
  auto pfdat = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true);
  ASSERT_TRUE(pfdat.ok());

  const std::string home_view = RenderCellSharing(*ts_.hive, 1);
  EXPECT_NE(home_view.find("exported-to"), std::string::npos);
  EXPECT_NE(home_view.find("writable"), std::string::npos);
  const std::string client_view = RenderCellSharing(*ts_.hive, 0);
  EXPECT_NE(client_view.find("imported-from=1"), std::string::npos);
}

TEST_F(ReportTest, SharingViewEmptyWhenNoSharing) {
  const std::string view = RenderCellSharing(*ts_.hive, 3);
  EXPECT_NE(view.find("no intercell sharing"), std::string::npos);
}

TEST_F(ReportTest, SharingViewOfDeadCellSaysSo) {
  ts_.machine->FailNode(3);
  ts_.machine->events().RunUntil(100 * kMillisecond);
  const std::string view = RenderCellSharing(*ts_.hive, 3);
  EXPECT_NE(view.find("DEAD"), std::string::npos);
}

}  // namespace
}  // namespace hive
