// Copy-on-write trees, address spaces, and the page fault path (paper
// sections 5.1 and 5.3).

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/vm_fault.h"
#include "src/workloads/workload.h"
#include "src/flash/fault_injector.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class CowVmTest : public ::testing::Test {
 protected:
  CowVmTest() : ts_(hivetest::BootHive(4)) {}

  // Creates a bare process on `cell` with an idle behavior.
  Process* Spawn(CellId cell, Process* parent = nullptr) {
    Ctx ctx = ts_.cell(cell).MakeCtx();
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("idle");
    auto pid = ts_.hive->Fork(ctx, cell, std::move(behavior), -1, parent);
    EXPECT_TRUE(pid.ok());
    return ts_.cell(cell).sched().FindProcess(*pid);
  }

  hivetest::TestSystem ts_;
};

TEST_F(CowVmTest, AnonZeroFillFault) {
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(proc->address_space().MapAnon(ctx, 0x1000000, 64 * 4096, true).ok());
  ASSERT_TRUE(PageFault(ctx, *proc, 0x1000000, /*write=*/true).ok());
  Mapping* mapping = proc->address_space().FindMapping(0x1000000);
  ASSERT_NE(mapping, nullptr);
  EXPECT_TRUE(mapping->writable);
  // The page is zero-filled.
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(0).FirstCpu(),
                                                   mapping->pfdat->frame + 64),
            0u);
}

TEST_F(CowVmTest, SecondFaultIsTlbRefill) {
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(proc->address_space().MapAnon(ctx, 0x1000000, 4096, true).ok());
  ASSERT_TRUE(PageFault(ctx, *proc, 0x1000000, true).ok());
  Ctx ctx2 = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(ctx2, *proc, 0x1000000, true).ok());
  EXPECT_LT(ctx2.elapsed, 2000);
}

TEST_F(CowVmTest, UnmappedAddressIsNotFound) {
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  EXPECT_EQ(PageFault(ctx, *proc, 0xDEAD0000, false).code(), base::StatusCode::kNotFound);
}

TEST_F(CowVmTest, WriteToReadOnlyRegionIsPermissionDenied) {
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(proc->address_space().MapAnon(ctx, 0x1000000, 4096, false).ok());
  EXPECT_EQ(PageFault(ctx, *proc, 0x1000000, true).code(),
            base::StatusCode::kPermissionDenied);
}

TEST_F(CowVmTest, ChildSeesParentPagesAfterLocalFork) {
  Process* parent = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(parent->address_space().MapAnon(ctx, 0x1000000, 16 * 4096, true).ok());
  ASSERT_TRUE(PageFault(ctx, *parent, 0x1000000, true).ok());
  // Write a sentinel into the parent's page.
  Mapping* pm = parent->address_space().FindMapping(0x1000000);
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(0).FirstCpu(), pm->pfdat->frame, 777);

  Process* child = Spawn(0, parent);
  Ctx cctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, /*write=*/false).ok());
  Mapping* cm = child->address_space().FindMapping(0x1000000);
  ASSERT_NE(cm, nullptr);
  // The child shares the parent's physical page (no copy on read).
  EXPECT_EQ(cm->pfdat->frame, pm->pfdat->frame);
  EXPECT_FALSE(cm->writable);
}

TEST_F(CowVmTest, ChildWriteBreaksCow) {
  Process* parent = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(parent->address_space().MapAnon(ctx, 0x1000000, 4096, true).ok());
  ASSERT_TRUE(PageFault(ctx, *parent, 0x1000000, true).ok());
  Mapping* pm = parent->address_space().FindMapping(0x1000000);
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(0).FirstCpu(), pm->pfdat->frame, 777);

  Process* child = Spawn(0, parent);
  Ctx cctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, /*write=*/true).ok());
  Mapping* cm = child->address_space().FindMapping(0x1000000);
  ASSERT_NE(cm, nullptr);
  EXPECT_NE(cm->pfdat->frame, pm->pfdat->frame);  // Private copy.
  EXPECT_TRUE(cm->writable);
  // The copy carries the parent's data.
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(0).FirstCpu(),
                                                   cm->pfdat->frame),
            777u);
  // And the parent's page is untouched by child writes.
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(0).FirstCpu(), cm->pfdat->frame, 888);
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(0).FirstCpu(),
                                                   pm->pfdat->frame),
            777u);
}

TEST_F(CowVmTest, RemoteForkWalksCowTreeAcrossCells) {
  // Paper section 5.3: parent and child on different cells; the child's read
  // fault searches up the tree with the careful reference protocol and binds
  // with an RPC to the owning cell.
  Process* parent = Spawn(1);
  Ctx pctx = ts_.cell(1).MakeCtx();
  ASSERT_TRUE(parent->address_space().MapAnon(pctx, 0x1000000, 8 * 4096, true).ok());
  ASSERT_TRUE(PageFault(pctx, *parent, 0x1000000, true).ok());
  Mapping* pm = parent->address_space().FindMapping(0x1000000);
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(1).FirstCpu(), pm->pfdat->frame, 4242);

  Process* child = Spawn(2, parent);  // Forked onto another cell.
  const uint64_t remote_reads_before = ts_.cell(2).cow().remote_node_reads();
  Ctx cctx = ts_.cell(2).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, /*write=*/false).ok());
  EXPECT_GT(ts_.cell(2).cow().remote_node_reads(), remote_reads_before);

  Mapping* cm = child->address_space().FindMapping(0x1000000);
  ASSERT_NE(cm, nullptr);
  EXPECT_TRUE(cm->pfdat->extended);  // Imported from the parent's cell.
  EXPECT_EQ(cm->pfdat->imported_from, 1);
  // The child really reads the parent's data through shared memory.
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(2).FirstCpu(),
                                                   cm->pfdat->frame),
            4242u);
  // Anonymous imports are hard dependencies for the kill policy.
  EXPECT_NE(child->dependency_mask() & (1ull << 1), 0u);
}

TEST_F(CowVmTest, RemoteChildWriteMakesPrivateCopy) {
  Process* parent = Spawn(1);
  Ctx pctx = ts_.cell(1).MakeCtx();
  ASSERT_TRUE(parent->address_space().MapAnon(pctx, 0x1000000, 4096, true).ok());
  ASSERT_TRUE(PageFault(pctx, *parent, 0x1000000, true).ok());
  Mapping* pm = parent->address_space().FindMapping(0x1000000);
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(1).FirstCpu(), pm->pfdat->frame, 99);

  Process* child = Spawn(3, parent);
  Ctx cctx = ts_.cell(3).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1000000, /*write=*/true).ok());
  Mapping* cm = child->address_space().FindMapping(0x1000000);
  ASSERT_NE(cm, nullptr);
  // The copy lives on the child's cell now.
  EXPECT_EQ(ts_.hive->CellOfAddr(cm->pfdat->frame), 3);
  EXPECT_EQ(ts_.machine->mem().ReadValue<uint64_t>(ts_.cell(3).FirstCpu(),
                                                   cm->pfdat->frame),
            99u);
}

TEST_F(CowVmTest, PagesWrittenAfterForkInvisibleToChild) {
  Process* parent = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(parent->address_space().MapAnon(ctx, 0x1000000, 8 * 4096, true).ok());
  Process* child = Spawn(0, parent);
  // Parent creates a page AFTER the fork.
  ASSERT_TRUE(PageFault(ctx, *parent, 0x1002000, true).ok());
  // Child's read fault must NOT find it: zero-fills its own page instead.
  Ctx cctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(PageFault(cctx, *child, 0x1002000, false).ok());
  Mapping* pm = parent->address_space().FindMapping(0x1002000);
  Mapping* cm = child->address_space().FindMapping(0x1002000);
  EXPECT_NE(pm->pfdat->frame, cm->pfdat->frame);
}

TEST_F(CowVmTest, FileRegionGenerationSnapshotDetectsStaleness) {
  Cell& home = ts_.cell(1);
  Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/m", workloads::PatternData(1, 8192));
  ASSERT_TRUE(id.ok());

  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  auto handle = ts_.cell(0).fs().Open(ctx, "/m");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(proc->address_space().MapFile(ctx, 0x2000000, 8192, *handle, false).ok());
  ASSERT_TRUE(PageFault(ctx, *proc, 0x2000000, false).ok());

  // The file loses a dirty page (generation bump at the data home) and the
  // mapping is flushed (recovery would do both).
  home.fs().NoteDirtyPageLost(id->vnode);
  proc->address_space().FlushMappings(ctx, /*remote_only=*/false);
  ts_.cell(0).fs().DropAllImports(ctx);

  EXPECT_EQ(PageFault(ctx, *proc, 0x2000000, false).code(),
            base::StatusCode::kStaleGeneration);
}

TEST_F(CowVmTest, AddressMapEntriesLiveInKernelHeap) {
  Process* proc = Spawn(0);
  Ctx ctx = ts_.cell(0).MakeCtx();
  ASSERT_TRUE(proc->address_space().MapAnon(ctx, 0x1000000, 4096, true).ok());
  auto regions = proc->address_space().ListRegions(ctx);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_TRUE(ts_.cell(0).heap().Contains(regions[0].entry_addr));
  EXPECT_EQ(ts_.cell(0).heap().ReadTypeTag(ts_.cell(0).FirstCpu(), regions[0].entry_addr),
            static_cast<uint32_t>(kTagAddrMapEntry));
}

TEST_F(CowVmTest, CorruptAddressMapPanicsOwnCellOnly) {
  Process* proc = Spawn(2);
  Ctx ctx = ts_.cell(2).MakeCtx();
  ASSERT_TRUE(proc->address_space().MapAnon(ctx, 0x1000000, 4096, true).ok());
  auto regions = proc->address_space().ListRegions(ctx);
  ASSERT_EQ(regions.size(), 1u);

  // Corrupt the entry's type tag region by freeing it behind the kernel's
  // back (simulates a kernel bug).
  flash::FaultInjector injector(ts_.machine.get(), 1);
  injector.CorruptBytes(regions[0].entry_addr - KernelHeap::kHeaderSize, 16);

  EXPECT_EQ(PageFault(ctx, *proc, 0x1000000, false).code(), base::StatusCode::kInternal);
  EXPECT_FALSE(ts_.cell(2).alive());
  EXPECT_TRUE(ts_.cell(0).alive());
  EXPECT_TRUE(ts_.cell(1).alive());
  EXPECT_TRUE(ts_.cell(3).alive());
}

}  // namespace
}  // namespace hive
