// Tests for the per-subsystem timing attribution (base::SimProfile) that
// feeds hive_bench's schema-v2 report: the exclusive-time invariant (sums
// equal the bracketed wall time), clean reset between scenarios, and
// deterministic op counts across runs.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "src/base/sim_profile.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "tests/test_util.h"

namespace campaign {
namespace {

using base::SimProfile;
using base::SimSubsystem;

uint64_t HostNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Runs one scenario under an activated profile and returns it.
SimProfile ProfiledRun(uint64_t master_seed, uint64_t index,
                       uint64_t* wall_ns = nullptr) {
  const ScenarioSpec spec = GenerateScenario(master_seed, index);
  SimProfile profile;
  SimProfile::SetActive(&profile);
  const uint64_t start = HostNs();
  profile.Begin();
  RunScenario(spec);
  profile.End();
  const uint64_t stop = HostNs();
  SimProfile::SetActive(nullptr);
  if (wall_ns != nullptr) {
    *wall_ns = stop - start;
  }
  return profile;
}

// The exclusive-time design means every host nanosecond between Begin and End
// is attributed to exactly one subsystem (unattributed time lands in kOther),
// so the per-subsystem sums must reproduce the bracketed wall time to within
// measurement slop (the two extra clock reads around the bracket).
TEST(SimProfileAttribution, SubsystemNsSumToBracketedWallTime) {
  const uint64_t seed = hivetest::TestSeed(1);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  uint64_t wall_ns = 0;
  const SimProfile profile = ProfiledRun(seed, 0, &wall_ns);
  const uint64_t sum = profile.total_ns();
  ASSERT_GT(wall_ns, 0u);
  ASSERT_GT(sum, 0u);
  const double ratio = static_cast<double>(sum) / static_cast<double>(wall_ns);
  EXPECT_GT(ratio, 0.99) << "sum=" << sum << " wall=" << wall_ns;
  EXPECT_LT(ratio, 1.01) << "sum=" << sum << " wall=" << wall_ns;
}

// A scenario run must touch the instrumented kernel paths: attribution that
// reports zero ops for every named subsystem would mean the scopes are dead
// and the bench's per-subsystem table is vacuous.
TEST(SimProfileAttribution, InstrumentedSubsystemsReportOps) {
  const uint64_t seed = hivetest::TestSeed(1);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  const SimProfile profile = ProfiledRun(seed, 0);
  EXPECT_GT(profile.ops(SimSubsystem::kScheduler), 0u);
  EXPECT_GT(profile.ops(SimSubsystem::kVmFault), 0u);
  // SIPS delivery is modeled inline in the RPC hop sampler; its scope must
  // still attribute, or the bench table silently loses the transport row.
  EXPECT_GT(profile.ops(SimSubsystem::kSips), 0u);
  EXPECT_GT(profile.total_ops(), 0u);
}

// Reset must clear every counter so one profile can be reused across
// scenarios without attribution bleeding from one run into the next.
TEST(SimProfileAttribution, ResetClearsBetweenScenarios) {
  const uint64_t seed = hivetest::TestSeed(1);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  const ScenarioSpec spec = GenerateScenario(seed, 0);

  SimProfile profile;
  SimProfile::SetActive(&profile);
  profile.Begin();
  RunScenario(spec);
  profile.End();
  SimProfile::SetActive(nullptr);
  ASSERT_GT(profile.total_ops(), 0u);
  ASSERT_GT(profile.total_ns(), 0u);

  profile.Reset();
  for (int s = 0; s < base::kSimSubsystemCount; ++s) {
    const auto subsystem = static_cast<SimSubsystem>(s);
    EXPECT_EQ(profile.ns(subsystem), 0u);
    EXPECT_EQ(profile.ops(subsystem), 0u);
  }

  // A fresh run on the reset profile must match a run on a brand-new profile
  // op-for-op: no residue survives Reset.
  SimProfile::SetActive(&profile);
  profile.Begin();
  RunScenario(spec);
  profile.End();
  SimProfile::SetActive(nullptr);
  const SimProfile fresh = ProfiledRun(seed, 0);
  for (int s = 0; s < base::kSimSubsystemCount; ++s) {
    const auto subsystem = static_cast<SimSubsystem>(s);
    EXPECT_EQ(profile.ops(subsystem), fresh.ops(subsystem))
        << SimSubsystemName(subsystem);
  }
}

// Op counts are a pure function of the simulation: two runs of the same
// scenario must attribute identically, entry for entry. (The ns figures are
// host wall time and intentionally not compared.)
TEST(SimProfileAttribution, OpCountsAreDeterministicAcrossRuns) {
  const uint64_t seed = hivetest::TestSeed(7);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  for (uint64_t index = 0; index < 3; ++index) {
    const SimProfile first = ProfiledRun(seed, index);
    const SimProfile second = ProfiledRun(seed, index);
    for (int s = 0; s < base::kSimSubsystemCount; ++s) {
      const auto subsystem = static_cast<SimSubsystem>(s);
      EXPECT_EQ(first.ops(subsystem), second.ops(subsystem))
          << "index=" << index << " subsystem=" << SimSubsystemName(subsystem);
    }
  }
}

// Merge accumulates: bench aggregates per-scenario profiles into a stage
// total, which must equal the element-wise sum.
TEST(SimProfileAttribution, MergeAccumulatesCounters) {
  const uint64_t seed = hivetest::TestSeed(1);
  SCOPED_TRACE(hivetest::SeedTrace(seed));
  const SimProfile a = ProfiledRun(seed, 0);
  const SimProfile b = ProfiledRun(seed, 1);
  SimProfile merged;
  merged.Merge(a);
  merged.Merge(b);
  for (int s = 0; s < base::kSimSubsystemCount; ++s) {
    const auto subsystem = static_cast<SimSubsystem>(s);
    EXPECT_EQ(merged.ops(subsystem), a.ops(subsystem) + b.ops(subsystem));
    EXPECT_EQ(merged.ns(subsystem), a.ns(subsystem) + b.ns(subsystem));
  }
}

}  // namespace
}  // namespace campaign
