// Per-oracle unit tests: each containment/RPC/rogue oracle is driven against
// a hand-built violating state (it must fire) and a healthy twin (it must
// stay silent), so an oracle regression is caught without a campaign run.
//
// Tests call the individual Check* functions, not CheckAllOracles, so a
// deliberately broken state for one oracle cannot bleed into another's
// verdict.

#include "src/campaign/oracles.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/campaign/scenario.h"
#include "src/core/cell.h"
#include "src/core/failure_detection.h"
#include "src/core/filesystem.h"
#include "src/core/recovery.h"
#include "src/core/rpc.h"
#include "src/core/trace.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace campaign {
namespace {

using hive::Cell;
using hive::CellId;
using hive::Ctx;
using hive::kMillisecond;
using hive::Time;

// Harness: a booted 4-cell hive plus the spec/canary/injection context the
// oracle under test reads. The spec defaults to zero faults.
struct OracleHarness {
  explicit OracleHarness(hive::HiveOptions options = {})
      : ts(hivetest::BootHive(4, 4, options)) {
    spec.master_seed = 1;
    spec.index = 0;
    spec.seed = 99;
    spec.num_cells = 4;
    spec.workload = WorkloadKind::kNone;
  }

  OracleInput Input() {
    OracleInput input;
    input.spec = &spec;
    input.system = ts.hive.get();
    input.canaries = &canaries;
    input.injected = injected;
    input.corrupt_outputs = corrupt_outputs;
    input.wild_write_frames = wild_write_frames;
    return input;
  }

  hivetest::TestSystem ts;
  ScenarioSpec spec;
  CanaryState canaries;
  std::vector<bool> injected;
  int corrupt_outputs = -1;
  std::vector<hive::PhysAddr> wild_write_frames;
};

bool Fired(const std::vector<OracleViolation>& violations, const std::string& oracle) {
  for (const OracleViolation& violation : violations) {
    if (violation.oracle == oracle) {
      return true;
    }
  }
  return false;
}

std::string Render(const std::vector<OracleViolation>& violations) {
  std::string out;
  for (const OracleViolation& violation : violations) {
    out += violation.ToString() + "\n";
  }
  return out;
}

FaultSpec NodeFailureFault(CellId victim) {
  FaultSpec fault;
  fault.kind = FaultKind::kNodeFailure;
  fault.victim = victim;
  fault.inject_at = 25 * kMillisecond;
  return fault;
}

TEST(FaultContainmentOracle, FiresOnUnexplainedDeath) {
  OracleHarness h;
  // A cell died with zero faults in the plan: the death is unexplained.
  h.ts.cell(1).Panic("spontaneous");
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "fault-containment")) << Render(violations);
}

TEST(FaultContainmentOracle, SilentOnHealthyHive) {
  OracleHarness h;
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(DetectionCompleteOracle, FiresWhenFailStopVictimStaysAlive) {
  OracleHarness h;
  // The plan says cell 1 took a landed fail-stop fault, yet it is alive:
  // either the injection bookkeeping or the detection pipeline lost it.
  h.spec.faults.push_back(NodeFailureFault(1));
  h.injected = {true};
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "detection-complete")) << Render(violations);
}

TEST(DetectionCompleteOracle, SilentWhenTheFaultNeverLanded) {
  OracleHarness h;
  h.spec.faults.push_back(NodeFailureFault(1));
  h.injected = {false};
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(DetectionCompleteOracle, SilentOnDetectedAndConfirmedFailure) {
  OracleHarness h;
  h.spec.faults.push_back(NodeFailureFault(2));
  h.injected = {true};
  // Real flow: fail the node, let clock monitoring detect and agreement
  // confirm. The victim is dead AND confirmed: nothing to report.
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  h.ts.machine->events().RunUntil(300 * kMillisecond);
  ASSERT_FALSE(h.ts.cell(2).alive());
  ASSERT_TRUE(h.ts.hive->CellConfirmedFailed(2));
  std::vector<OracleViolation> violations;
  CheckContainmentAndDetection(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(RecoveryBarriersOracle, FiresOnLingeringInRecoveryFlag) {
  OracleHarness h;
  h.spec.faults.push_back(NodeFailureFault(2));
  h.injected = {true};
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  h.ts.machine->events().RunUntil(300 * kMillisecond);
  ASSERT_GE(h.ts.hive->recovery().recoveries_run(), 1);
  // A survivor stuck in recovery at scenario end: barrier 2 never released it.
  h.ts.cell(0).set_in_recovery(true);
  std::vector<OracleViolation> violations;
  CheckRecoveryBarriers(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "recovery-barriers")) << Render(violations);
}

TEST(RecoveryBarriersOracle, SilentAfterCleanRecovery) {
  OracleHarness h;
  h.spec.faults.push_back(NodeFailureFault(2));
  h.injected = {true};
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  h.ts.machine->events().RunUntil(300 * kMillisecond);
  ASSERT_GE(h.ts.hive->recovery().recoveries_run(), 1);
  std::vector<OracleViolation> violations;
  CheckRecoveryBarriers(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(FirewallInvariantsOracle, FiresOnVectorKernelMismatch) {
  OracleHarness h;
  // Open the hardware firewall for another cell's CPU on one of cell 0's
  // pages without any kernel-side grant: the audit must see the extra bit.
  Cell& owner = h.ts.cell(0);
  flash::PhysMem& mem = h.ts.machine->mem();
  const hive::Pfn pfn = mem.PfnOfAddr(owner.mem_base());
  const int owner_cpu = h.ts.machine->FirstCpuOfNode(owner.first_node());
  const int rogue_cpu = h.ts.machine->FirstCpuOfNode(h.ts.cell(2).first_node());
  h.ts.machine->firewall().GrantCpus(pfn, 1ull << rogue_cpu, owner_cpu);
  std::vector<OracleViolation> violations;
  CheckFirewallInvariants(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "firewall-invariants")) << Render(violations);
}

TEST(FirewallInvariantsOracle, SilentOnCleanBoot) {
  OracleHarness h;
  std::vector<OracleViolation> violations;
  CheckFirewallInvariants(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(NoStaleExportsOracle, FiresOnExportToFailedCell) {
  OracleHarness h;
  // Populate cell 0's pfdat table with a real file page, then mark it
  // exported to cell 2 and kill cell 2 without running recovery scrubbing.
  Cell& owner = h.ts.cell(0);
  Ctx ctx = owner.MakeCtx();
  ASSERT_TRUE(owner.fs().Create(ctx, "/stale", workloads::PatternData(5, 4096)).ok());
  auto handle = owner.fs().Open(ctx, "/stale");
  ASSERT_TRUE(handle.ok());
  auto page = owner.fs().GetPage(ctx, *handle, 0, /*want_write=*/false,
                                 hive::FileSystem::AccessPath::kSyscall);
  ASSERT_TRUE(page.ok());
  (*page)->exported_to |= 1ull << 2;
  h.ts.cell(2).Panic("victim");
  std::vector<OracleViolation> violations;
  CheckNoStaleExports(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "no-stale-exports")) << Render(violations);
}

TEST(NoStaleExportsOracle, SilentWithoutStaleState) {
  OracleHarness h;
  h.ts.cell(2).Panic("victim");
  std::vector<OracleViolation> violations;
  CheckNoStaleExports(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

// Builds one canary on cell 0 with a cross-cell handle held by cell 1,
// mirroring the runner's SetUpCanaries (minus the warming read, so the
// reader has no cached copy and must pull the home cell's bytes).
CanaryState OneCanary(OracleHarness& h, uint64_t pattern_seed) {
  CanaryState canaries;
  canaries.cells.resize(1);
  CanaryState::PerCell& canary = canaries.cells[0];
  canary.path = "/canary-0";
  canary.pattern_seed = pattern_seed;
  canary.size = 8192;
  Cell& owner = h.ts.cell(0);
  Ctx octx = owner.MakeCtx();
  EXPECT_TRUE(owner.fs()
                  .Create(octx, canary.path,
                          workloads::PatternData(pattern_seed, canary.size))
                  .ok());
  Cell& reader = h.ts.cell(1);
  Ctx rctx = reader.MakeCtx();
  auto handle = reader.fs().Open(rctx, canary.path);
  EXPECT_TRUE(handle.ok());
  canary.cross_handle = *handle;
  canary.cross_reader = 1;
  canary.valid = true;
  return canaries;
}

TEST(GenerationConsistencyOracle, FiresOnCorruptDataServedAsFresh) {
  OracleHarness h;
  h.canaries = OneCanary(h, 0xC0FFEE);
  // Scribble the canary page in the home cell's page cache through the home
  // cell's own CPU (its own memory: no firewall involvement). No generation
  // bump happens, so the pre-fault handle serves the corrupt bytes as fresh.
  Cell& owner = h.ts.cell(0);
  Ctx ctx = owner.MakeCtx();
  auto handle = owner.fs().Open(ctx, "/canary-0");
  ASSERT_TRUE(handle.ok());
  auto page = owner.fs().GetPage(ctx, *handle, 0, /*want_write=*/false,
                                 hive::FileSystem::AccessPath::kSyscall);
  ASSERT_TRUE(page.ok());
  const std::vector<uint8_t> garbage(32, 0xEE);
  h.ts.machine->mem().Write(h.ts.machine->FirstCpuOfNode(owner.first_node()),
                            (*page)->frame + 64, garbage);
  std::vector<OracleViolation> violations;
  CheckCanaries(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "generation-consistency")) << Render(violations);
}

TEST(GenerationConsistencyOracle, SilentOnIntactCanary) {
  OracleHarness h;
  h.canaries = OneCanary(h, 0xC0FFEE);
  std::vector<OracleViolation> violations;
  CheckCanaries(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(SurvivorsFunctionalOracle, FiresWhenSurvivorsCannotShareFiles) {
  OracleHarness h;
  // The probe creates a file on the first live cell and cross-reads it from
  // the last. With cell 0 stuck in cell 3's quarantine (a quarantine that
  // outlived whatever raised it), the cross-cell open fails fast: two
  // nominally healthy survivors that cannot share files.
  Cell& reader = h.ts.cell(3);
  Ctx ctx = reader.MakeCtx();
  reader.rpc().QuarantinePeer(ctx, /*peer=*/0);
  std::vector<OracleViolation> violations;
  CheckSurvivorsFunctional(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "survivors-functional")) << Render(violations);
}

TEST(SurvivorsFunctionalOracle, SilentOnHealthyHive) {
  OracleHarness h;
  std::vector<OracleViolation> violations;
  CheckSurvivorsFunctional(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(OutputIntegrityOracle, FiresOnCorruptOutputs) {
  OracleHarness h;
  h.corrupt_outputs = 2;
  std::vector<OracleViolation> violations;
  CheckOutputs(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "output-integrity")) << Render(violations);
}

TEST(OutputIntegrityOracle, SilentOnCleanOrUnvalidatedOutputs) {
  OracleHarness h;
  h.corrupt_outputs = 0;
  std::vector<OracleViolation> violations;
  CheckOutputs(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
  h.corrupt_outputs = -1;  // Not validated: also not a violation.
  violations.clear();
  CheckOutputs(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(RpcAtMostOnceOracle, FiresOnReExecutedRequest) {
  OracleHarness h;
  // Real replay-cache path: with suppression off, serving the same sequence
  // number twice re-executes a non-idempotent handler and bumps the counter.
  Cell& server = h.ts.cell(1);
  server.rpc().set_duplicate_suppression(false);
  Ctx ctx = server.MakeCtx();
  hive::RpcArgs args;
  hive::RpcReply reply;
  (void)server.rpc().ServeSequenced(ctx, /*client=*/0, /*seq=*/42,
                                    hive::MsgType::kBorrowFrames, args, &reply);
  (void)server.rpc().ServeSequenced(ctx, /*client=*/0, /*seq=*/42,
                                    hive::MsgType::kBorrowFrames, args, &reply);
  ASSERT_GT(server.rpc().stats().at_most_once_violations, 0u);
  std::vector<OracleViolation> violations;
  CheckRpcAtMostOnce(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "rpc-at-most-once")) << Render(violations);
}

TEST(RpcAtMostOnceOracle, SilentWhenTheReplayCacheSuppresses) {
  OracleHarness h;
  // Same duplicate delivery, suppression on (the default): the cached reply
  // is returned and no violation is counted.
  Cell& server = h.ts.cell(1);
  Ctx ctx = server.MakeCtx();
  hive::RpcArgs args;
  hive::RpcReply reply;
  (void)server.rpc().ServeSequenced(ctx, /*client=*/0, /*seq=*/42,
                                    hive::MsgType::kBorrowFrames, args, &reply);
  (void)server.rpc().ServeSequenced(ctx, /*client=*/0, /*seq=*/42,
                                    hive::MsgType::kBorrowFrames, args, &reply);
  EXPECT_GT(server.rpc().stats().duplicates_suppressed, 0u);
  std::vector<OracleViolation> violations;
  CheckRpcAtMostOnce(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(RpcNoLostAckOracle, FiresWhenAcksExceedExecutions) {
  OracleHarness h;
  // A client believes 5 more mutations were acknowledged than any server
  // executed: lost writes.
  h.ts.cell(0).rpc().mutable_stats_for_test().acked_mutations += 5;
  std::vector<OracleViolation> violations;
  CheckRpcNoLostAck(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "rpc-no-lost-ack")) << Render(violations);
}

TEST(RpcNoLostAckOracle, SilentWhenEveryAckWasExecuted) {
  OracleHarness h;
  h.ts.cell(0).rpc().mutable_stats_for_test().acked_mutations += 5;
  h.ts.cell(1).rpc().mutable_stats_for_test().executed_mutations += 5;
  std::vector<OracleViolation> violations;
  CheckRpcNoLostAck(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(RpcLivenessOracle, FiresWhenMessageFaultsAloneKillACell) {
  OracleHarness h;
  FaultSpec fault;
  fault.kind = FaultKind::kMessageFaults;
  fault.victim = -1;
  fault.target = -1;
  fault.inject_at = 10 * kMillisecond;
  fault.drop_pm = 40;
  fault.duration = 100 * kMillisecond;
  h.spec.faults.push_back(fault);
  h.injected = {true};
  h.ts.cell(2).Panic("retry exhaustion mishandled");
  std::vector<OracleViolation> violations;
  CheckRpcLiveness(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "rpc-liveness")) << Render(violations);
}

TEST(RpcLivenessOracle, SilentWhenEveryCellRidesOutTheFaults) {
  OracleHarness h;
  FaultSpec fault;
  fault.kind = FaultKind::kMessageFaults;
  fault.victim = -1;
  fault.target = -1;
  fault.inject_at = 10 * kMillisecond;
  fault.drop_pm = 40;
  fault.duration = 100 * kMillisecond;
  h.spec.faults.push_back(fault);
  h.injected = {true};
  std::vector<OracleViolation> violations;
  CheckRpcLiveness(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(QuarantineImpliesHintOracle, FiresOnSilentQuarantine) {
  OracleHarness h;
  // A quarantine was entered but the detector never raised any hint: the
  // escalation happened without its mandatory preceding judgement.
  h.ts.cell(0).rpc().mutable_stats_for_test().quarantines_entered += 1;
  ASSERT_EQ(h.ts.cell(0).detector().hints_raised(), 0u);
  std::vector<OracleViolation> violations;
  CheckQuarantineImpliesHint(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "quarantine-implies-hint")) << Render(violations);
}

TEST(QuarantineImpliesHintOracle, SilentWhenAHintPrecededTheQuarantine) {
  OracleHarness h;
  Cell& cell = h.ts.cell(0);
  cell.rpc().mutable_stats_for_test().quarantines_entered += 1;
  Ctx ctx = cell.MakeCtx();
  cell.detector().RaiseHint(ctx, /*suspect=*/1, hive::HintReason::kRpcTimeout);
  ASSERT_GT(cell.detector().hints_raised(), 0u);
  std::vector<OracleViolation> violations;
  CheckQuarantineImpliesHint(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

FaultSpec RogueFault(CellId victim) {
  FaultSpec fault;
  fault.kind = FaultKind::kRogueCell;
  fault.victim = victim;
  fault.target = (victim + 1) % 4;
  fault.inject_at = 25 * kMillisecond;
  fault.rogue_axes = kRogueClockFreeze;
  return fault;
}

TEST(RogueDetectedOracle, FiresWhenTheRogueIsNeverExcised) {
  OracleHarness h;
  h.spec.rogue_only = true;
  h.spec.faults.push_back(RogueFault(2));
  h.injected = {true};
  ASSERT_FALSE(h.ts.hive->CellConfirmedFailed(2));
  std::vector<OracleViolation> violations;
  CheckRogueDetection(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "rogue-detected")) << Render(violations);
}

TEST(RogueDetectedOracle, SilentWhenTheRogueNeverActivated) {
  OracleHarness h;
  h.spec.rogue_only = true;
  h.spec.faults.push_back(RogueFault(2));
  h.injected = {false};
  std::vector<OracleViolation> violations;
  CheckRogueDetection(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(NoSurvivorHangOracle, FiresOnUnboundedTraversal) {
  OracleHarness h;
  h.spec.rogue_only = true;
  // A survivor chased a remote chain for 1000 hops: the hop bound failed.
  h.ts.cell(0).detector().NoteTraversal(1000);
  std::vector<OracleViolation> violations;
  CheckNoSurvivorHang(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "no-survivor-hang")) << Render(violations);
}

TEST(NoSurvivorHangOracle, SilentOnBoundedTraversal) {
  OracleHarness h;
  h.spec.rogue_only = true;
  h.ts.cell(0).detector().NoteTraversal(8);
  std::vector<OracleViolation> violations;
  CheckNoSurvivorHang(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(NoFalseExcisionOracle, FiresWhenTheBaselineExcisesACell) {
  OracleHarness h;
  h.spec.healthy_baseline = true;
  // The baseline spec carries zero faults, yet agreement confirmed a cell
  // failed (here: the node really died, but per the spec's view the hive is
  // healthy -- exactly the false-excision evidence the sweep looks for).
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  h.ts.machine->events().RunUntil(300 * kMillisecond);
  ASSERT_TRUE(h.ts.hive->CellConfirmedFailed(2));
  std::vector<OracleViolation> violations;
  CheckNoFalseExcision(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "no-false-excision")) << Render(violations);
}

TEST(NoFalseExcisionOracle, SilentWhenNothingWasExcised) {
  OracleHarness h;
  h.spec.healthy_baseline = true;
  h.ts.machine->events().RunUntil(300 * kMillisecond);
  std::vector<OracleViolation> violations;
  CheckNoFalseExcision(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(TraceConsistencyOracle, FiresOnUnbalancedRecoveryEvents) {
  OracleHarness h;
  h.ts.cell(0).trace().Record(0, hive::TraceEvent::kEnterRecovery, 0);
  std::vector<OracleViolation> violations;
  CheckTraceConsistency(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "trace-consistency")) << Render(violations);
}

TEST(TraceConsistencyOracle, SilentOnBalancedRecoveryEvents) {
  OracleHarness h;
  h.ts.cell(0).trace().Record(0, hive::TraceEvent::kEnterRecovery, 0);
  h.ts.cell(0).trace().Record(1 * kMillisecond, hive::TraceEvent::kExitRecovery, 0);
  std::vector<OracleViolation> violations;
  CheckTraceConsistency(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

// Options for a hive that salvages discard candidates during recovery; with
// verify=false both adoption proofs are skipped (the seeded salvage bug).
hive::HiveOptions SalvageOptions(bool verify) {
  hive::HiveOptions options;
  options.salvage_pages = true;
  options.salvage_verify = verify;
  return options;
}

// Stages the canary's first page as a salvage candidate: the client imports
// it writable (export record + checksum baseline at the home), then the
// client's node fails so recovery judges the page. Returns the frame.
hive::PhysAddr StageCanarySalvageCandidate(OracleHarness& h, CellId client_id) {
  Cell& client = h.ts.cell(client_id);
  Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/canary-0");
  EXPECT_TRUE(handle.ok());
  auto page = client.fs().GetPage(cctx, *handle, 0, /*want_write=*/true,
                                  hive::FileSystem::AccessPath::kSyscall);
  EXPECT_TRUE(page.ok());
  const hive::PhysAddr frame = (*page)->frame;
  client.fs().ReleasePage(cctx, *page);
  return frame;
}

TEST(NoCorruptAdoptionOracle, FiresOnBlindAdoptionOfScribbledPage) {
  // Salvage with both proofs disabled and the firewall off: a wild write
  // lands in the exported canary page, the writer dies, and recovery adopts
  // the corrupt page blind.
  OracleHarness h(SalvageOptions(/*verify=*/false));
  h.ts.machine->firewall().set_checking_enabled(false);
  h.canaries = OneCanary(h, 0xC0FFEE);
  const hive::PhysAddr frame = StageCanarySalvageCandidate(h, /*client_id=*/2);
  const std::vector<uint8_t> garbage(48, 0xEE);
  h.ts.machine->mem().Write(h.ts.cell(2).FirstCpu(), frame + 64, garbage);
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, h.ts.machine->Now() + kMillisecond);
  h.ts.machine->events().RunUntil(h.ts.machine->Now() + 300 * kMillisecond);
  ASSERT_GE(h.ts.hive->recovery().salvage_log().size(), 1u);
  std::vector<OracleViolation> violations;
  CheckNoCorruptAdoption(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "no-corrupt-adoption")) << Render(violations);
}

TEST(NoCorruptAdoptionOracle, SilentOnVerifiedCleanSalvage) {
  // Checked salvage of an untouched write-export: the content checksum
  // proves the dead client never wrote, so adoption is clean.
  OracleHarness h(SalvageOptions(/*verify=*/true));
  h.canaries = OneCanary(h, 0xC0FFEE);
  StageCanarySalvageCandidate(h, /*client_id=*/2);
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, h.ts.machine->Now() + kMillisecond);
  h.ts.machine->events().RunUntil(h.ts.machine->Now() + 300 * kMillisecond);
  ASSERT_GE(h.ts.hive->recovery().salvage_log().size(), 1u);
  std::vector<OracleViolation> violations;
  CheckNoCorruptAdoption(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(ReintegrationConvergesOracle, FiresOnReintegrationThatNeverConverged) {
  OracleHarness h;
  // A reintegration record stuck with no terminal state long past the
  // bound: the rebooted cell never became a full member.
  hive::ReintegrationRecord record;
  record.cell = 2;
  record.started_at = 0;
  h.ts.hive->recovery().mutable_reintegration_log_for_test().push_back(record);
  h.ts.machine->events().RunUntil(400 * kMillisecond);
  std::vector<OracleViolation> violations;
  CheckReintegrationConverges(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "reintegration-converges")) << Render(violations);
}

TEST(ReintegrationConvergesOracle, SilentOnLiveRejoinThatConverged) {
  hive::HiveOptions options;
  options.live_rejoin = true;
  OracleHarness h(options);
  h.ts.hive->recovery().auto_reintegrate = true;
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, 25 * kMillisecond);
  h.ts.machine->events().RunUntil(1 * hive::kSecond);
  ASSERT_GE(h.ts.hive->recovery().reintegration_log().size(), 1u);
  EXPECT_GT(h.ts.hive->recovery().reintegration_log()[0].done_at, 0);
  std::vector<OracleViolation> violations;
  CheckReintegrationConverges(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

TEST(SalvageContainmentOracle, FiresWhenAWildWrittenFrameWasSalvaged) {
  OracleHarness h;
  hive::SalvageRecord record;
  record.owner = 0;
  record.frame = 0x2400000;
  h.ts.hive->recovery().mutable_salvage_log_for_test().push_back(record);
  h.wild_write_frames = {0x2400000};
  std::vector<OracleViolation> violations;
  CheckSalvageContainment(h.Input(), &violations);
  EXPECT_TRUE(Fired(violations, "salvage-containment")) << Render(violations);
}

TEST(SalvageContainmentOracle, SilentWhenSalvagesAvoidWildWrittenFrames) {
  // A real checked salvage of a clean page, plus a wild write that landed in
  // some unrelated frame: containment held.
  OracleHarness h(SalvageOptions(/*verify=*/true));
  h.canaries = OneCanary(h, 0xC0FFEE);
  const hive::PhysAddr frame = StageCanarySalvageCandidate(h, /*client_id=*/2);
  flash::FaultInjector injector(h.ts.machine.get(), 1);
  injector.ScheduleNodeFailure(2, h.ts.machine->Now() + kMillisecond);
  h.ts.machine->events().RunUntil(h.ts.machine->Now() + 300 * kMillisecond);
  ASSERT_GE(h.ts.hive->recovery().salvage_log().size(), 1u);
  h.wild_write_frames = {frame + 0x100000};
  std::vector<OracleViolation> violations;
  CheckSalvageContainment(h.Input(), &violations);
  EXPECT_TRUE(violations.empty()) << Render(violations);
}

}  // namespace
}  // namespace campaign
