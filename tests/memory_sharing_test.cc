// Tests for logical-level sharing (export/import, table 5.1) and
// physical-level sharing (loan/borrow) of paper section 5.

#include <gtest/gtest.h>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/workloads/workload.h"
#include "tests/test_util.h"

namespace hive {
namespace {

class MemorySharingTest : public ::testing::Test {
 protected:
  MemorySharingTest() : ts_(hivetest::BootHive(4)) {}

  FileHandle CreateAndOpen(CellId home, CellId client, const std::string& path,
                           uint64_t seed, uint64_t size) {
    Cell& home_cell = ts_.cell(home);
    Ctx hctx = home_cell.MakeCtx();
    auto id = home_cell.fs().Create(hctx, path, workloads::PatternData(seed, size));
    EXPECT_TRUE(id.ok());
    Cell& client_cell = ts_.cell(client);
    Ctx cctx = client_cell.MakeCtx();
    auto handle = client_cell.fs().Open(cctx, path);
    EXPECT_TRUE(handle.ok());
    return *handle;
  }

  hivetest::TestSystem ts_;
};

TEST_F(MemorySharingTest, RemoteFaultImportsPage) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto pfdat = client.fs().GetPage(ctx, handle, 0, /*want_write=*/false);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_TRUE((*pfdat)->extended);
  EXPECT_EQ((*pfdat)->imported_from, 1);
  // The frame physically lives in cell 1's memory.
  EXPECT_EQ(ts_.hive->CellOfAddr((*pfdat)->frame), 1);
  // The data home recorded the export.
  Pfdat* home_pfdat = ts_.cell(1).pfdats().FindByLpid((*pfdat)->lpid);
  ASSERT_NE(home_pfdat, nullptr);
  EXPECT_NE(home_pfdat->exported_to & 1ull, 0u);
}

TEST_F(MemorySharingTest, SecondFaultHitsClientHash) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx1 = client.MakeCtx();
  auto first = client.fs().GetPage(ctx1, handle, 0, false);
  ASSERT_TRUE(first.ok());
  const Time remote_cost = ctx1.elapsed;

  Ctx ctx2 = client.MakeCtx();
  auto second = client.fs().GetPage(ctx2, handle, 0, false);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  // Table 7.3: local hit 6.9 us vs remote 50.7 us.
  EXPECT_LT(ctx2.elapsed, remote_cost / 5);
}

TEST_F(MemorySharingTest, RemoteFaultLatencyMatchesTable52) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  // Warm the data home's cache so the fault hits there.
  Ctx hctx = ts_.cell(1).MakeCtx();
  auto warm = ts_.cell(1).fs().GetPageLocal(hctx, handle.vnode, 0, false);
  ASSERT_TRUE(warm.ok());
  (*warm)->refcount--;

  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  FaultBreakdown bd;
  ctx.fault_bd = &bd;
  auto pfdat = client.fs().GetPage(ctx, handle, 0, false);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_EQ(ctx.elapsed, 50700);  // 50.7 us.
  EXPECT_EQ(bd.client_fs, 9000);
  EXPECT_EQ(bd.client_locking, 5500);
  EXPECT_EQ(bd.client_vm_misc, 8700);
  EXPECT_EQ(bd.client_import, 4800);
  EXPECT_EQ(bd.home_vm_misc, 3400);
  EXPECT_EQ(bd.home_export, 2000);
  EXPECT_EQ(bd.rpc_stub + bd.rpc_hw + bd.rpc_copy + bd.rpc_alloc, 17300);
}

TEST_F(MemorySharingTest, WritableExportGrantsFirewall) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto pfdat = client.fs().GetPage(ctx, handle, 0, /*want_write=*/true);
  ASSERT_TRUE(pfdat.ok());
  // Every processor of the client cell got write access (section 4.2 policy).
  const flash::Pfn pfn = ts_.machine->mem().PfnOfAddr((*pfdat)->frame);
  for (int cpu : client.cpus()) {
    EXPECT_TRUE(ts_.machine->firewall().MayWrite(pfn, cpu));
  }
  EXPECT_EQ(ts_.cell(1).firewall_manager().RemotelyWritablePages(), 1);
  // And the client can genuinely store to the remote frame.
  ts_.machine->mem().WriteValue<uint64_t>(client.FirstCpu(), (*pfdat)->frame, 123);
}

TEST_F(MemorySharingTest, ReadOnlyExportBlocksClientWrites) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto pfdat = client.fs().GetPage(ctx, handle, 0, /*want_write=*/false);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_THROW(
      ts_.machine->mem().WriteValue<uint64_t>(client.FirstCpu(), (*pfdat)->frame, 1),
      flash::BusError);
}

TEST_F(MemorySharingTest, UpgradeToWritableImport) {
  FileHandle handle = CreateAndOpen(1, 0, "/f", 7, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  auto ro = client.fs().GetPage(ctx, handle, 0, false);
  ASSERT_TRUE(ro.ok());
  EXPECT_FALSE((*ro)->import_writable);
  auto rw = client.fs().GetPage(ctx, handle, 0, true);
  ASSERT_TRUE(rw.ok());
  EXPECT_TRUE((*rw)->import_writable);
  ts_.machine->mem().WriteValue<uint64_t>(client.FirstCpu(), (*rw)->frame, 5);
}

TEST_F(MemorySharingTest, RemoteReadSeesDataWrittenAtHome) {
  FileHandle handle = CreateAndOpen(1, 0, "/data", 99, 16384);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  std::vector<uint8_t> buf(16384);
  ASSERT_TRUE(client.fs().Read(ctx, handle, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(workloads::Checksum(buf), workloads::PatternChecksum(99, 16384));
}

TEST_F(MemorySharingTest, RemoteWriteReachesHomeDisk) {
  FileHandle handle = CreateAndOpen(1, 0, "/data", 99, 8192);
  Cell& client = ts_.cell(0);
  Ctx ctx = client.MakeCtx();
  const std::vector<uint8_t> data = workloads::PatternData(1234, 8192);
  ASSERT_TRUE(client.fs().Write(ctx, handle, 0, std::span<const uint8_t>(data)).ok());
  const VnodeId home_vnode = handle.vnode;
  client.fs().Close(ctx, handle);  // Sync at the data home.
  const Vnode* vnode = ts_.cell(1).fs().FindVnode(home_vnode);
  ASSERT_NE(vnode, nullptr);
  std::vector<uint8_t> disk(vnode->disk_image.begin(), vnode->disk_image.begin() + 8192);
  EXPECT_EQ(workloads::Checksum(disk), workloads::Checksum(data));
}

// --- Physical-level sharing. ---

TEST_F(MemorySharingTest, BorrowFrameFromPreferredCell) {
  Cell& borrower = ts_.cell(0);
  Ctx ctx = borrower.MakeCtx();
  AllocConstraints constraints;
  constraints.preferred_cell = 2;
  auto pfdat = borrower.allocator().AllocFrame(ctx, constraints);
  ASSERT_TRUE(pfdat.ok());
  EXPECT_TRUE((*pfdat)->extended);
  EXPECT_EQ((*pfdat)->borrowed_from, 2);
  EXPECT_EQ(ts_.hive->CellOfAddr((*pfdat)->frame), 2);
  // The lender moved the batch to its reserved (loaned) list ("asking for a
  // set of pages", section 5.4).
  EXPECT_GE(ts_.cell(2).allocator().loaned_frames(), 1u);
  // The borrower has write control over the frame.
  ts_.machine->mem().WriteValue<uint64_t>(borrower.FirstCpu(), (*pfdat)->frame, 77);
  // The memory home does NOT (policy: loan hands over control).
  EXPECT_THROW(
      ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(2).FirstCpu(), (*pfdat)->frame, 1),
      flash::BusError);
}

TEST_F(MemorySharingTest, ReturnFrameRestoresLender) {
  Cell& borrower = ts_.cell(0);
  Ctx ctx = borrower.MakeCtx();
  AllocConstraints constraints;
  constraints.preferred_cell = 2;
  auto pfdat = borrower.allocator().AllocFrame(ctx, constraints);
  ASSERT_TRUE(pfdat.ok());
  const flash::PhysAddr frame = (*pfdat)->frame;
  const size_t loaned_before = ts_.cell(2).allocator().loaned_frames();
  (*pfdat)->refcount = 0;
  borrower.allocator().FreeFrame(ctx, *pfdat);
  EXPECT_EQ(ts_.cell(2).allocator().loaned_frames(), loaned_before - 1);
  // Back under the lender's control.
  ts_.machine->mem().WriteValue<uint64_t>(ts_.cell(2).FirstCpu(), frame, 1);
}

TEST_F(MemorySharingTest, KernelInternalAllocationsAreLocal) {
  Cell& cell = ts_.cell(3);
  Ctx ctx = cell.MakeCtx();
  AllocConstraints constraints;
  constraints.kernel_internal = true;
  for (int i = 0; i < 10; ++i) {
    auto pfdat = cell.allocator().AllocFrame(ctx, constraints);
    ASSERT_TRUE(pfdat.ok());
    EXPECT_EQ(ts_.hive->CellOfAddr((*pfdat)->frame), 3);
  }
}

TEST_F(MemorySharingTest, LenderKeepsLocalReserve) {
  Cell& lender = ts_.cell(2);
  Ctx ctx = lender.MakeCtx();
  // Ask for far more frames than the lender can give.
  const int huge = static_cast<int>(lender.allocator().free_frames());
  const std::vector<flash::PhysAddr> frames = lender.allocator().LoanFrames(ctx, 0, huge);
  EXPECT_LT(frames.size(), static_cast<size_t>(huge));
  EXPECT_GE(lender.allocator().free_frames(), PageAllocator::kLocalReserveFrames);
}

TEST_F(MemorySharingTest, LoanedFrameImportedBackReusesPfdat) {
  // Section 5.5: a frame simultaneously loaned out and imported back into the
  // memory home reuses the pre-existing pfdat.
  Cell& data_home = ts_.cell(1);
  Ctx dctx = data_home.MakeCtx();
  // Data home (cell 1) borrows a frame from cell 0 and caches a file page in
  // it by allocating the file page while preferring cell-0 memory.
  auto id = data_home.fs().Create(dctx, "/loanback", workloads::PatternData(5, 4096));
  ASSERT_TRUE(id.ok());
  // Force the next file page allocation on cell 1 to use cell 0's memory.
  AllocConstraints constraints;
  constraints.preferred_cell = 0;
  auto frame = data_home.allocator().AllocFrame(dctx, constraints);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(ts_.hive->CellOfAddr((*frame)->frame), 0);
  // Cell 0's pfdat table knows this frame as loaned out.
  Pfdat* memory_home_view = ts_.cell(0).pfdats().FindByFrame((*frame)->frame);
  ASSERT_NE(memory_home_view, nullptr);
  EXPECT_TRUE(memory_home_view->loaned_out);
}

}  // namespace
}  // namespace hive
