#!/usr/bin/env bash
# Repository check driver:
#   1. hive_lint passes clean on the shipped tree;
#   2. hive_lint flags every seeded violation in tests/lint_fixtures
#      (including the R0 bad-suppression case) and honours the one properly
#      suppressed site;
#   3. the full test suite builds and passes under ASan+UBSan.
#
# Usage: ci/run_checks.sh [primary-build-dir]
# Also registered as the `run_checks` ctest entry (see tests/CMakeLists.txt),
# which passes the primary build dir and sets HIVE_SOURCE_DIR.
set -euo pipefail

BUILD_DIR="${1:-build}"
SOURCE_DIR="${HIVE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
LINT="$BUILD_DIR/tools/hive_lint/hive_lint"
JOBS="$(nproc 2>/dev/null || echo 4)"

fail() {
  echo "run_checks: FAIL: $*" >&2
  exit 1
}

[[ -x "$LINT" ]] || fail "hive_lint not built at $LINT (build the primary tree first)"

echo "== hive_lint: shipped tree must be clean =="
"$LINT" --root "$SOURCE_DIR" || fail "hive_lint found violations in the shipped tree"

echo "== hive_lint: seeded fixtures must be flagged =="
fixture_out="$("$LINT" --root "$SOURCE_DIR/tests/lint_fixtures" 2>&1)" && \
  fail "hive_lint exited 0 on the seeded fixture tree"
echo "$fixture_out"
for rule in R0 R1 R2 R3 R4 R5; do
  grep -q ": $rule:" <<<"$fixture_out" || fail "fixture scan did not report $rule"
done
# The properly suppressed site (bad_direct_access.cc line 19) must be absent.
grep -q "bad_direct_access.cc:19" <<<"$fixture_out" && \
  fail "hive_lint reported the properly suppressed fixture line"

echo "== sanitizer build: ASan+UBSan test suite =="
ASAN_DIR="$BUILD_DIR/check-asan"
cmake -B "$ASAN_DIR" -S "$SOURCE_DIR" \
  -DHIVE_SANITIZE=address,undefined \
  -DHIVE_ENABLE_CHECKS_TEST=OFF >/dev/null
cmake --build "$ASAN_DIR" --target hive_tests -j "$JOBS" >/dev/null
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" \
  -E '^(hive_lint_clean|hive_lint_fixture)$' || fail "sanitizer test suite failed"

echo "run_checks: OK"
