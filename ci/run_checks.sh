#!/usr/bin/env bash
# Repository check driver:
#   1. hive_lint passes clean on the shipped tree, its --format=json report
#      diffs empty against ci/lint_baseline.json (fail on new diagnostics,
#      warn on stale baseline entries), and the full-tree run stays under
#      the 5-second budget;
#   2. hive_lint flags every seeded violation in tests/lint_fixtures
#      (including the R0 bad-suppression case and the whole-program rules
#      R8-R11) and honours the one properly suppressed site;
#   2b. when clang-tidy is installed, the pinned .clang-tidy profile
#      (bugprone-* + concurrency-*) runs clean over src/base/ using the
#      compile_commands.json exported by the primary build;
#   3. a message-fault campaign sweep (loss+duplication+reordering) passes
#      every transport oracle, and the no_dedup fixture demonstrably trips
#      the rpc-at-most-once oracle (the oracle can fail, not just pass);
#   4. a rogue-cell sweep (live Byzantine cells) passes every
#      Byzantine-survivor oracle, the zero-fault baseline sees zero
#      excisions, and the no_hop_bound fixture demonstrably trips the
#      no-survivor-hang oracle;
#   4b. a 200-scenario reboot-storm sweep (rotating kill/rejoin with page
#      salvage + live rejoin) passes every oracle worker-count-independently,
#      a salvage sweep adopts at least one page with zero violations, and
#      the salvage_unchecked fixture demonstrably trips the
#      no-corrupt-adoption oracle with byte-identical repro output;
#   4c. the hive_serve soak smoke meets every SLO, its BENCH_serve.json
#       validates against schema hive-serve-v1, the summary fingerprint is
#       --sim-threads-independent, and both seeded --bug modes demonstrably
#       trip an SLO oracle (exit 3);
#   5. the full test suite builds and passes under ASan+UBSan;
#   6. the campaign thread pool -- including the RPC retry/quarantine state
#      it exercises -- builds and runs clean under TSan;
#   7. optionally, a nightly-scale campaign sweep (HIVE_CAMPAIGN_SCENARIOS).
#
# Usage: ci/run_checks.sh [primary-build-dir]
# Also registered as the `run_checks` ctest entry (see tests/CMakeLists.txt),
# which passes the primary build dir and sets HIVE_SOURCE_DIR.
#
# Environment:
#   HIVE_CAMPAIGN_SCENARIOS  when set to a positive integer, additionally run
#                            a nightly-scale fault campaign of that many
#                            scenarios with the primary-build hive_campaign
#                            (e.g. HIVE_CAMPAIGN_SCENARIOS=2000 for nightly CI).
#   HIVE_CAMPAIGN_SEED       master seed for the nightly sweep (default 1).
#   HIVE_TEST_SEED           master seed for the message-fault sweep and the
#                            no_dedup fixture check (default 1).
set -euo pipefail

BUILD_DIR="${1:-build}"
SOURCE_DIR="${HIVE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
LINT="$BUILD_DIR/tools/hive_lint/hive_lint"
JOBS="$(nproc 2>/dev/null || echo 4)"

fail() {
  echo "run_checks: FAIL: $*" >&2
  exit 1
}

[[ -x "$LINT" ]] || fail "hive_lint not built at $LINT (build the primary tree first)"

echo "== hive_lint: shipped tree must be clean =="
"$LINT" --root "$SOURCE_DIR" || fail "hive_lint found violations in the shipped tree"

echo "== hive_lint: JSON report vs ci/lint_baseline.json =="
lint_json="$BUILD_DIR/lint_report.json"
lint_status=0
"$LINT" --root "$SOURCE_DIR" --format=json >"$lint_json" || lint_status=$?
[[ "$lint_status" -le 1 ]] || fail "hive_lint --format=json errored (exit $lint_status)"
grep -q '"schema": "hive-lint-v2"' "$lint_json" || \
  fail "lint report is not schema hive-lint-v2"
BASELINE="$SOURCE_DIR/ci/lint_baseline.json"
diag_keys() {
  # Prints file:line:rule per diagnostic; jq when present, python3 otherwise.
  if command -v jq >/dev/null 2>&1; then
    jq -r '.diagnostics[] | "\(.file):\(.line):\(.rule)"' "$1"
  else
    python3 - "$1" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for d in doc["diagnostics"]:
    print(f"{d['file']}:{d['line']}:{d['rule']}")
PYEOF
  fi
}
new_diags="$(comm -23 <(diag_keys "$lint_json" | sort) \
                      <(diag_keys "$BASELINE" | sort))"
stale_baseline="$(comm -13 <(diag_keys "$lint_json" | sort) \
                           <(diag_keys "$BASELINE" | sort))"
if [[ -n "$new_diags" ]]; then
  echo "$new_diags"
  fail "hive_lint diagnostics not present in ci/lint_baseline.json (fix or add a justified suppression)"
fi
if [[ -n "$stale_baseline" ]]; then
  echo "run_checks: WARN: stale ci/lint_baseline.json entries (no longer reported):"
  echo "$stale_baseline"
fi

echo "== hive_lint: full-tree run must stay under the 5s budget =="
if command -v jq >/dev/null 2>&1; then
  total_ms="$(jq '.stats.total_ms' "$lint_json")"
else
  total_ms="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["stats"]["total_ms"])' "$lint_json")"
fi
awk -v ms="$total_ms" 'BEGIN { exit !(ms + 0 < 5000) }' || \
  fail "hive_lint full-tree run took ${total_ms} ms (budget: 5000 ms)"
echo "hive_lint full-tree run: ${total_ms} ms"

echo "== hive_lint: seeded fixtures must be flagged =="
fixture_out="$("$LINT" --root "$SOURCE_DIR/tests/lint_fixtures" 2>&1)" && \
  fail "hive_lint exited 0 on the seeded fixture tree"
echo "$fixture_out"
for rule in R0 R1 R2 R3 R4 R5 R6 R7 R8 R9 R10 R11; do
  grep -q "\[$rule\]" <<<"$fixture_out" || fail "fixture scan did not report $rule"
done
# Good twins of the whole-program rules must be completely silent.
for good in good_lock_order.cc good_status_discard.cc good_nondeterminism.cc \
            good_remote_deref.cc; do
  grep -q "/$good:" <<<"$fixture_out" && \
    fail "hive_lint reported diagnostics in good twin $good"
done
# The properly suppressed site (bad_direct_access.cc line 19) must be absent.
grep -q "bad_direct_access.cc:19" <<<"$fixture_out" && \
  fail "hive_lint reported the properly suppressed fixture line"

echo "== clang-tidy smoke: pinned profile over src/base/ =="
# Uses the compile_commands.json exported by the primary build and the
# checked-in .clang-tidy (bugprone-* + concurrency-*). The container used in
# CI may not ship clang-tidy; warn-skip rather than fail so the lane degrades
# gracefully -- the repo-specific rules above have no such dependency.
if command -v clang-tidy >/dev/null 2>&1; then
  [[ -f "$BUILD_DIR/compile_commands.json" ]] || \
    fail "compile_commands.json missing from $BUILD_DIR (CMAKE_EXPORT_COMPILE_COMMANDS should be ON)"
  clang-tidy -p "$BUILD_DIR" --quiet "$SOURCE_DIR"/src/base/*.cc || \
    fail "clang-tidy reported warnings-as-errors in src/base/"
else
  echo "run_checks: WARN: clang-tidy not installed; skipping the src/base/ smoke"
fi

echo "== message-fault campaign: loss+duplication+reordering sweep =="
CAMPAIGN="$BUILD_DIR/tools/hive_campaign/hive_campaign"
[[ -x "$CAMPAIGN" ]] || fail "hive_campaign not built at $CAMPAIGN"
MSG_SEED="${HIVE_TEST_SEED:-1}"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=40 --workers="$JOBS" --faults=message || \
  fail "message-fault sweep reported transport-oracle violations"

echo "== no_dedup fixture: at-most-once oracle must trip =="
# With duplicate suppression disabled, duplicated mutating RPCs re-execute;
# the sweep must fail AND name the rpc-at-most-once oracle. This proves the
# oracle detects real violations rather than passing vacuously.
nodedup_log="$BUILD_DIR/no_dedup_fixture.log"
if "$CAMPAIGN" --seed="$MSG_SEED" --scenarios=10 --workers="$JOBS" \
     --fixture=no_dedup >"$nodedup_log" 2>&1; then
  cat "$nodedup_log"
  fail "no_dedup fixture sweep passed; the at-most-once oracle never tripped"
fi
grep -q "rpc-at-most-once" "$nodedup_log" || {
  cat "$nodedup_log"
  fail "no_dedup fixture failed without an rpc-at-most-once diagnostic"
}

echo "== rogue-cell campaign: Byzantine-survivor sweep =="
# Live Byzantine cells (frozen/drifting clocks, heap scribbles, babbling,
# garbage replies, silence, contrarian votes, false accusations): survivors
# must detect and excise every rogue, hang nowhere, and excise nobody else.
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=40 --workers="$JOBS" --faults=rogue || \
  fail "rogue-cell sweep reported Byzantine-survivor oracle violations"

echo "== healthy baseline: zero-fault sweep must see zero excisions =="
# Same 4-cell voting geometry with no fault plan: the detection machinery's
# sensitivity check. Any excision here is a false positive.
baseline_log="$BUILD_DIR/healthy_baseline.log"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=20 --workers="$JOBS" \
  --faults=none >"$baseline_log" 2>&1 || {
  cat "$baseline_log"
  fail "healthy-baseline sweep reported oracle violations"
}
grep -q " 0 excision(s)," "$baseline_log" || {
  cat "$baseline_log"
  fail "healthy-baseline sweep excised a cell with no fault injected"
}

echo "== no_hop_bound fixture: no-survivor-hang oracle must trip =="
# With the survivors' chain-chase hop bound removed, a rogue cyclic chain
# makes the prober walk thousands of hops; the sweep must fail AND name the
# no-survivor-hang oracle. This proves the oracle detects real hangs rather
# than passing vacuously.
nohop_log="$BUILD_DIR/no_hop_bound_fixture.log"
if "$CAMPAIGN" --seed="$MSG_SEED" --scenarios=10 --workers="$JOBS" \
     --fixture=no_hop_bound >"$nohop_log" 2>&1; then
  cat "$nohop_log"
  fail "no_hop_bound fixture sweep passed; the no-survivor-hang oracle never tripped"
fi
grep -q "no-survivor-hang" "$nohop_log" || {
  cat "$nohop_log"
  fail "no_hop_bound fixture failed without a no-survivor-hang diagnostic"
}

echo "== reboot-storm campaign: rotating kill/rejoin sweep =="
# Salvage + live rejoin under rotating kill/rejoin cycles (some kills land
# inside a prior victim's warm-rejoin window). Every oracle must pass, and
# the merged fingerprint must be independent of worker count.
storm_log="$BUILD_DIR/storm_sweep.log"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=200 --workers="$JOBS" \
  --faults=reboot-storm >"$storm_log" 2>&1 || {
  cat "$storm_log"
  fail "reboot-storm sweep reported salvage/reintegration oracle violations"
}
storm_log1="$BUILD_DIR/storm_sweep_w1.log"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=200 --workers=1 \
  --faults=reboot-storm >"$storm_log1" 2>&1 || {
  cat "$storm_log1"
  fail "1-worker reboot-storm sweep reported oracle violations"
}
storm_fp="$(grep -o 'merged-fingerprint=0x[0-9a-f]*' "$storm_log")"
storm_fp1="$(grep -o 'merged-fingerprint=0x[0-9a-f]*' "$storm_log1")"
[[ -n "$storm_fp" && "$storm_fp" == "$storm_fp1" ]] || \
  fail "reboot-storm merged fingerprint differs across worker counts ($storm_fp vs $storm_fp1)"

echo "== salvage campaign: adoption must happen and stay clean =="
# Node-failure sweep with page salvage enabled: at least one page must be
# adopted by proof (the path is exercised, not vacuous) with zero violations
# (notably zero no-corrupt-adoption trips).
salvage_log="$BUILD_DIR/salvage_sweep.log"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=30 --workers="$JOBS" \
  --salvage >"$salvage_log" 2>&1 || {
  cat "$salvage_log"
  fail "salvage sweep reported oracle violations"
}
salvaged="$(grep -o '[0-9]* page(s) salvaged' "$salvage_log" | grep -o '^[0-9]*')"
[[ -n "$salvaged" && "$salvaged" -gt 0 ]] || {
  cat "$salvage_log"
  fail "salvage sweep adopted zero pages; the salvage path never fired"
}

echo "== salvage_unchecked fixture: blind adoption must trip =="
# With the salvage proofs disabled (and the firewall down so the wild write
# lands), recovery adopts a scribbled page; the sweep must fail AND name the
# no-corrupt-adoption oracle, and the repro output must be byte-identical
# across runs.
unchecked_log="$BUILD_DIR/salvage_unchecked.log"
if "$CAMPAIGN" --seed="$MSG_SEED" --scenarios=10 --workers="$JOBS" \
     --bug=salvage_unchecked >"$unchecked_log" 2>&1; then
  cat "$unchecked_log"
  fail "salvage_unchecked sweep passed; the no-corrupt-adoption oracle never tripped"
fi
grep -q "no-corrupt-adoption" "$unchecked_log" || {
  cat "$unchecked_log"
  fail "salvage_unchecked failure does not name the no-corrupt-adoption oracle"
}
unchecked_log2="$BUILD_DIR/salvage_unchecked2.log"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios=10 --workers="$JOBS" \
  --bug=salvage_unchecked >"$unchecked_log2" 2>&1 || true
diff "$unchecked_log" "$unchecked_log2" >/dev/null || \
  fail "salvage_unchecked repro output is not byte-identical across runs"

echo "== guided campaign: budgeted coverage-guided run =="
# A coverage-guided sweep over healthy code must still pass every oracle, and
# must actually exercise the corpus/mutation machinery (corpus line present).
# HIVE_CAMPAIGN_SCENARIOS scales the budget for nightly lanes.
GUIDED_SCENARIOS="${HIVE_CAMPAIGN_SCENARIOS:-64}"
guided_log="$BUILD_DIR/guided_campaign.log"
rm -rf "$BUILD_DIR/ci_corpus"
"$CAMPAIGN" --seed="$MSG_SEED" --scenarios="$GUIDED_SCENARIOS" \
  --workers="$JOBS" --guided --corpus="$BUILD_DIR/ci_corpus" \
  >"$guided_log" 2>&1 || {
  cat "$guided_log"
  fail "guided campaign sweep reported containment violations"
}
grep -q "^corpus: " "$guided_log" || {
  cat "$guided_log"
  fail "guided sweep did not report a corpus (mutation machinery inactive?)"
}
grep -q "^draws: " "$guided_log" || {
  cat "$guided_log"
  fail "guided sweep did not report its fresh/mutant draw mix"
}

echo "== guided vs random: seeded-bug discovery cost =="
# The coverage-guided loop must *earn* its complexity: with duplicate
# suppression silently broken on one cell (--bug=no_dedup) and every
# duplicate-delivery channel thinned to trace levels, the guided mode must
# rediscover the bug in strictly fewer scenarios (median discovery cost over
# 10 master seeds) than the random sweep. Budget 160 scenarios; a run that
# never trips scores budget+1.
BUG_BUDGET=160
discovery_cost() {
  # $1 = extra flags; prints one cost per seed. The campaign exits non-zero
  # when it finds the bug, so capture first and grep after.
  local bug_seed out cost
  for bug_seed in 1 2 3 4 5 6 7 8 9 10; do
    # shellcheck disable=SC2086
    out="$("$CAMPAIGN" --seed="$bug_seed" --scenarios="$BUG_BUDGET" \
        --workers="$JOBS" --bug=no_dedup --stop-on-violation --no-minimize \
        $1 2>&1 || true)"
    cost="$(grep -o 'first violation at scenario [0-9]*' <<<"$out" | \
            grep -o '[0-9]*$' || true)"
    echo "${cost:-$((BUG_BUDGET + 1))}"
  done
}
median() {
  sort -n | awk '{ v[NR] = $1 } END {
    if (NR % 2) { print v[(NR + 1) / 2] }
    else { print int((v[NR / 2] + v[NR / 2 + 1]) / 2) }
  }'
}
random_costs="$(discovery_cost "")"
guided_costs="$(discovery_cost "--guided --batch=16")"
random_median="$(median <<<"$random_costs")"
guided_median="$(median <<<"$guided_costs")"
echo "random discovery costs: $(tr '\n' ' ' <<<"$random_costs")(median $random_median)"
echo "guided discovery costs: $(tr '\n' ' ' <<<"$guided_costs")(median $guided_median)"
[[ "$guided_median" -lt "$random_median" ]] || \
  fail "guided median discovery cost ($guided_median) is not below random ($random_median)"

# The discovered bug must be the planted one: a guided bug run's failure
# report names the rpc-at-most-once oracle.
bug_log="$BUILD_DIR/guided_bug.log"
if "$CAMPAIGN" --seed=1 --scenarios="$BUG_BUDGET" --workers="$JOBS" \
     --bug=no_dedup --stop-on-violation --guided --batch=16 \
     >"$bug_log" 2>&1; then
  cat "$bug_log"
  fail "guided --bug=no_dedup run passed; the seeded bug was never exposed"
fi
grep -q "rpc-at-most-once" "$bug_log" || {
  cat "$bug_log"
  fail "guided --bug=no_dedup failure does not name the rpc-at-most-once oracle"
}

echo "== hive_bench smoke: throughput harness emits valid JSON =="
BENCH="$BUILD_DIR/tools/hive_bench/hive_bench"
[[ -x "$BENCH" ]] || fail "hive_bench not built at $BENCH"
bench_json="$BUILD_DIR/bench_smoke.json"
"$BENCH" --smoke --out="$bench_json" || fail "hive_bench --smoke exited nonzero"
[[ -s "$bench_json" ]] || fail "hive_bench --smoke wrote no JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$bench_json" <<'PYEOF' || fail "hive_bench JSON failed schema validation"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "hive-bench-v2", doc.get("schema")
# v2 dropped the top-level mirrors of per-stage rates; each stage owns its
# numbers and the only top-level metric left is peak RSS.
for dropped in ("events_per_sec", "ns_per_event", "scenarios_per_sec"):
    assert dropped not in doc, f"v1 mirror key {dropped} resurfaced at top level"
assert isinstance(doc["peak_rss_bytes"], int) and doc["peak_rss_bytes"] > 0
assert isinstance(doc["sim_threads"], int) and doc["sim_threads"] >= 1
assert doc["event_queue"]["schedule_run"]["events_per_sec"] > 0
assert doc["event_queue"]["cancel_churn"]["ops_per_sec"] > 0
for stage in ("single_scenario", "parallel_sim", "campaign"):
    assert doc[stage]["scenarios_per_sec"] > 0, stage
    assert doc[stage]["sim_events"] > 0, stage
    assert doc[stage]["ns_per_event"] > 0, stage
assert doc["parallel_sim"]["sim_threads"] >= 1
subsystems = doc["single_scenario"]["subsystems"]
expected = {"vm_fault", "scheduler", "filesystem", "careful_rpc",
            "sips", "recovery", "other"}
assert set(subsystems) == expected, sorted(subsystems)
for name, entry in subsystems.items():
    for field in ("ns", "ops", "ns_per_op", "share"):
        assert isinstance(entry[field], (int, float)), (name, field)
    assert 0.0 <= entry["share"] <= 1.0, name
# Exclusive attribution: shares of the bracketed run partition it.
assert 0.97 <= sum(e["share"] for e in subsystems.values()) <= 1.01
PYEOF
else
  # No python3: structural grep fallback on the required fields.
  for field in '"schema": "hive-bench-v2"' '"peak_rss_bytes"' '"schedule_run"' \
               '"cancel_churn"' '"single_scenario"' '"parallel_sim"' \
               '"campaign"' '"subsystems"' '"vm_fault"' '"careful_rpc"'; do
    grep -qF "$field" "$bench_json" || fail "hive_bench JSON missing $field"
  done
fi

echo "== hive_bench regression gate: smoke vs committed baseline =="
# Guard the tentpole per-event win: the smoke numbers must stay within 25% of
# the committed baseline (ci/bench_baseline.json, captured on the CI-class
# container). Wall-clock smoke runs on a loaded 1-core box are noisy, so the
# gate takes the best of three runs before comparing; a genuine 25% per-event
# regression survives any scheduling jitter, a noisy neighbour does not.
bench_baseline="$SOURCE_DIR/ci/bench_baseline.json"
[[ -s "$bench_baseline" ]] || fail "missing committed baseline $bench_baseline"
if command -v python3 >/dev/null 2>&1; then
  bench_json2="$BUILD_DIR/bench_smoke2.json"
  bench_json3="$BUILD_DIR/bench_smoke3.json"
  "$BENCH" --smoke --out="$bench_json2" >/dev/null \
    || fail "hive_bench --smoke rerun exited nonzero"
  "$BENCH" --smoke --out="$bench_json3" >/dev/null \
    || fail "hive_bench --smoke rerun exited nonzero"
  python3 - "$bench_baseline" "$bench_json" "$bench_json2" "$bench_json3" \
      <<'PYEOF' || fail "hive_bench smoke regressed >25% vs ci/bench_baseline.json"
import json, sys

def load(path):
    with open(path) as f:
        return json.load(f)

baseline = load(sys.argv[1])
runs = [load(p) for p in sys.argv[2:]]

def metric(doc, path):
    node = doc
    for key in path:
        node = node[key]
    return float(node)

# Lower is better for every gated metric (cost per event / per op).
GATED = [
    ("event_queue", "schedule_run", "ns_per_event"),
    ("event_queue", "cancel_churn", "ns_per_op"),
    ("single_scenario", "ns_per_event"),
    ("campaign", "ns_per_event"),
]
LIMIT = 1.25
failed = False
for path in GATED:
    name = ".".join(path)
    base = metric(baseline, path)
    best = min(metric(run, path) for run in runs)
    ratio = best / base if base > 0 else float("inf")
    verdict = "ok" if ratio <= LIMIT else "REGRESSED"
    print(f"  {name}: baseline={base:.1f} best-of-3={best:.1f} "
          f"ratio={ratio:.2f} [{verdict}]")
    failed |= ratio > LIMIT
sys.exit(1 if failed else 0)
PYEOF
else
  echo "  (python3 unavailable; skipping numeric regression comparison)"
fi

echo "== hive_serve smoke: soak harness meets SLOs and emits valid JSON =="
SERVE="$BUILD_DIR/tools/hive_serve/hive_serve"
[[ -x "$SERVE" ]] || fail "hive_serve not built at $SERVE"
serve_json="$BUILD_DIR/serve_smoke.json"
"$SERVE" --smoke --out="$serve_json" || fail "hive_serve --smoke exited nonzero"
[[ -s "$serve_json" ]] || fail "hive_serve --smoke wrote no JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$serve_json" <<'PYEOF' || fail "hive_serve JSON failed schema validation"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "hive-serve-v1", doc.get("schema")
assert doc["oracles"]["ok"] is True and doc["oracles"]["violations"] == []
req = doc["requests"]
assert req["submitted"] > 0 and req["completed"] > 0
assert req["hung"] == 0
assert req["shed"] > 0, "admission control never fired under the overload bursts"
lat = doc["latency_ns"]
assert lat["count"] == req["completed"]
assert 0 < lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]
avail = doc["availability"]
assert len(avail["per_cell"]) == doc["cells"]
assert 0.0 < avail["min"] <= 1.0
assert avail["min"] == min(avail["per_cell"])
faults = doc["faults"]
assert faults["landed"] > 0 and faults["requests_per_fault"] > 0
for family, landed in faults["per_family"].items():
    assert landed > 0, f"fault family never landed: {family}"
rec = doc["recovery"]
assert rec["episodes"] > 0 and rec["recoveries_run"] > 0
assert rec["reintegrations"] > 0
assert 0 < rec["duration_ms_p50"] <= rec["duration_ms_max"]
assert isinstance(doc["fingerprint"], str) and len(doc["fingerprint"]) == 16
int(doc["fingerprint"], 16)
assert isinstance(doc["peak_rss_bytes"], int) and doc["peak_rss_bytes"] > 0
PYEOF
else
  for field in '"schema": "hive-serve-v1"' '"requests"' '"latency_ns"' \
               '"availability"' '"per_family"' '"recovery"' '"fingerprint"' \
               '"oracles"'; do
    grep -qF "$field" "$serve_json" || fail "hive_serve JSON missing $field"
  done
fi

echo "== hive_serve determinism: fingerprint independent of --sim-threads =="
serve_json_mt="$BUILD_DIR/serve_smoke_mt.json"
"$SERVE" --smoke --sim-threads=3 --out="$serve_json_mt" >/dev/null || \
  fail "hive_serve --sim-threads=3 exited nonzero"
serve_fp="$(grep -o '"fingerprint": "[0-9a-f]*"' "$serve_json")"
serve_fp_mt="$(grep -o '"fingerprint": "[0-9a-f]*"' "$serve_json_mt")"
[[ -n "$serve_fp" && "$serve_fp" == "$serve_fp_mt" ]] || \
  fail "hive_serve fingerprint differs across sim-threads ($serve_fp vs $serve_fp_mt)"

echo "== hive_serve sensitivity: seeded bugs must trip the SLO oracles =="
# Each --bug mode disables one defense; the run must exit 3 (SLO violations)
# and name the violated oracle, proving the SLO accounting can fail rather
# than passing vacuously.
noshed_log="$BUILD_DIR/serve_no_shed.log"
serve_status=0
"$SERVE" --smoke --bug=no_shed --out="$BUILD_DIR/serve_no_shed.json" \
  >"$noshed_log" 2>&1 || serve_status=$?
[[ "$serve_status" -eq 3 ]] || {
  cat "$noshed_log"
  fail "hive_serve --bug=no_shed exited $serve_status (want 3: SLO violation)"
}
grep -q "latency-p999" "$noshed_log" || {
  cat "$noshed_log"
  fail "no_shed run did not name the latency-p999 SLO"
}
slowrec_log="$BUILD_DIR/serve_slow_recovery.log"
serve_status=0
"$SERVE" --smoke --bug=slow_recovery --out="$BUILD_DIR/serve_slow_recovery.json" \
  >"$slowrec_log" 2>&1 || serve_status=$?
[[ "$serve_status" -eq 3 ]] || {
  cat "$slowrec_log"
  fail "hive_serve --bug=slow_recovery exited $serve_status (want 3: SLO violation)"
}
grep -q "recovery-time" "$slowrec_log" || {
  cat "$slowrec_log"
  fail "slow_recovery run did not name the recovery-time SLO"
}

echo "== sanitizer build: ASan+UBSan test suite =="
ASAN_DIR="$BUILD_DIR/check-asan"
cmake -B "$ASAN_DIR" -S "$SOURCE_DIR" \
  -DHIVE_SANITIZE=address,undefined \
  -DHIVE_ENABLE_CHECKS_TEST=OFF >/dev/null
cmake --build "$ASAN_DIR" --target hive_tests -j "$JOBS" >/dev/null
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" \
  -E '^(hive_lint_clean|hive_lint_fixture)' || fail "sanitizer test suite failed"

echo "== sanitizer build: TSan campaign thread pool =="
# The campaign driver is the only multithreaded component (scenario worker
# pool); build just it and its tests under ThreadSanitizer and run a
# multi-worker sweep to shake out data races in the pool. The message-fault
# sweep additionally exercises the RPC retry/backoff/quarantine state machine
# on every worker thread.
TSAN_DIR="$BUILD_DIR/check-tsan"
cmake -B "$TSAN_DIR" -S "$SOURCE_DIR" \
  -DHIVE_SANITIZE=thread \
  -DHIVE_ENABLE_CHECKS_TEST=OFF >/dev/null
cmake --build "$TSAN_DIR" --target campaign_test hive_campaign -j "$JOBS" >/dev/null
"$TSAN_DIR/tests/campaign_test" \
  --gtest_filter='CampaignDriverTest.*' || fail "TSan campaign_test failed"
"$TSAN_DIR/tools/hive_campaign/hive_campaign" \
  --seed=1 --scenarios=40 --workers=8 || fail "TSan campaign sweep failed"
"$TSAN_DIR/tools/hive_campaign/hive_campaign" \
  --seed="$MSG_SEED" --scenarios=24 --workers=8 --faults=message || \
  fail "TSan message-fault sweep failed"
"$TSAN_DIR/tools/hive_campaign/hive_campaign" \
  --seed="$MSG_SEED" --scenarios=24 --workers=8 --faults=reboot-storm || \
  fail "TSan reboot-storm sweep failed"

if [[ "${HIVE_CAMPAIGN_SCENARIOS:-0}" -gt 0 ]]; then
  echo "== nightly-scale campaign: ${HIVE_CAMPAIGN_SCENARIOS} scenarios =="
  CAMPAIGN="$BUILD_DIR/tools/hive_campaign/hive_campaign"
  [[ -x "$CAMPAIGN" ]] || fail "hive_campaign not built at $CAMPAIGN"
  "$CAMPAIGN" --seed="${HIVE_CAMPAIGN_SEED:-1}" \
    --scenarios="$HIVE_CAMPAIGN_SCENARIOS" --workers="$JOBS" || \
    fail "nightly campaign sweep reported containment violations"
fi

echo "run_checks: OK"
