// Reproduces paper table 7.4: fault injection tests on a four-processor
// four-cell Hive.
//
//   Injected fault (workload)              #   latency until last cell
//                                              enters recovery (avg/max ms)
//   node failure during process creation P 20  16 / 21
//   node failure during COW search      R  9   10 / 11
//   node failure at random time         P 20   21 / 45
//   corrupt pointer in address map      P  8   38 / 65
//   corrupt pointer in COW tree         R 12   401 / 760
//
// In all tests the effects of the fault must be contained to the cell where
// it was injected, and no output files may be corrupted. After the injected
// fault and the main workload, a pmake run on the survivors acts as the
// system correctness check, exactly as in the paper.

#include <functional>

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/pmake.h"
#include "src/workloads/raytrace.h"

namespace {

using hive::CellId;
using hive::kMillisecond;
using hive::kSecond;
using hive::ProcId;
using hive::Time;

// Reduced-compute workload parameters: detection latency does not depend on
// how long the jobs compute, and the paper's random-injection window is
// rescaled to the shorter run.
workloads::PmakeParams InjectionPmake(uint64_t seed) {
  workloads::PmakeParams params;
  params.compute_per_job = 500 * kMillisecond;
  params.name_seed = seed;
  return params;
}

workloads::RaytraceParams InjectionRaytrace(uint64_t seed) {
  workloads::RaytraceParams params;
  params.blocks_per_worker = 8;
  params.compute_per_block = 130 * kMillisecond;
  params.name_seed = seed;
  return params;
}

struct TestResult {
  bool contained = false;
  bool correctness_ok = false;
  Time detection_latency = 0;
};

struct ClassResult {
  int tests = 0;
  int contained = 0;
  int correct = 0;
  base::Histogram latency;
};

// Runs the system correctness check: a fresh pmake forked to the surviving
// cells, with output files compared to reference copies.
bool CorrectnessCheck(bench::System& system, uint64_t seed) {
  if (system.hive->LiveCells().empty()) {
    return false;
  }
  workloads::PmakeParams params = InjectionPmake(seed);
  params.compute_per_job = 100 * kMillisecond;
  params.file_server = system.hive->LiveCells().front();
  workloads::PmakeWorkload check(system.hive.get(), params);
  check.Setup();
  auto pids = check.Start();
  if (!system.hive->RunUntilDone(pids, system.machine->Now() + 600 * kSecond)) {
    return false;
  }
  return check.CompletedJobs() == params.jobs && check.ValidateOutputs() == 0;
}

// Evaluates one injection experiment after it ran.
TestResult Evaluate(bench::System& system, CellId victim, Time inject_time,
                    uint64_t check_seed, int expected_recoveries = 1) {
  TestResult result;
  // The workload may have finished (or died) before detection completed:
  // keep the machine running long enough for monitoring + recovery.
  system.machine->events().RunUntil(system.machine->Now() + 500 * kMillisecond);
  if (system.hive->recovery().recoveries_run() < expected_recoveries) {
    return result;  // Never detected: not contained (the test fails loudly).
  }
  const hive::RecoveryStats& stats = system.hive->recovery().last_stats();

  // Containment: every cell other than the victim survived.
  result.contained = true;
  for (CellId c = 0; c < system.hive->num_cells(); ++c) {
    const bool alive = system.hive->cell(c).alive();
    if (c == victim ? alive : !alive) {
      result.contained = false;
    }
  }
  Time last_entry = stats.detect_time;
  for (Time entry : stats.entered_recovery) {
    last_entry = std::max(last_entry, entry);
  }
  result.detection_latency = last_entry - inject_time;
  result.correctness_ok = CorrectnessCheck(system, check_seed);
  return result;
}

// --- Hardware fail-stop classes. ---

TestResult NodeFailurePmake(uint64_t seed, Time inject_time, CellId victim) {
  bench::System system = bench::Boot(4, 4, false, seed);
  workloads::PmakeWorkload pmake(system.hive.get(), InjectionPmake(seed));
  pmake.Setup();
  auto pids = pmake.Start();
  flash::FaultInjector injector(system.machine.get(), seed);
  injector.ScheduleNodeFailure(victim, inject_time);
  (void)system.hive->RunUntilDone(pids, 600 * kSecond);
  TestResult result = Evaluate(system, victim, inject_time, seed * 13 + 7);
  // Outputs written by jobs that claim success must be uncorrupted.
  if (pmake.ValidateOutputs() > 0) {
    result.correctness_ok = false;
  }
  return result;
}

TestResult NodeFailureRaytrace(uint64_t seed, CellId victim) {
  bench::System system = bench::Boot(4, 4, false, seed);
  workloads::RaytraceWorkload ray(system.hive.get(), InjectionRaytrace(seed));
  auto pids = ray.Start();
  // Fail the parent's cell while workers are performing remote COW searches
  // of the scene (shortly after the scene build + forks).
  base::Rng rng(seed);
  const Time inject_time = 230 * kMillisecond +
                           static_cast<Time>(rng.Below(20)) * kMillisecond;
  flash::FaultInjector injector(system.machine.get(), seed);
  injector.ScheduleNodeFailure(victim, inject_time);
  (void)system.hive->RunUntilDone(pids, 600 * kSecond);
  return Evaluate(system, victim, inject_time, seed * 17 + 3);
}

// --- Software corruption classes. ---

flash::PointerCorruptionMode ModeFor(uint64_t i) {
  switch (i % 4) {
    case 0:
      return flash::PointerCorruptionMode::kRandomSameCell;
    case 1:
      return flash::PointerCorruptionMode::kRandomOtherCell;
    case 2:
      return flash::PointerCorruptionMode::kOffByOneWord;
    default:
      return flash::PointerCorruptionMode::kSelfPointing;
  }
}

TestResult CorruptAddressMap(uint64_t seed, CellId victim) {
  bench::System system = bench::Boot(4, 4, false, seed);
  workloads::PmakeWorkload pmake(system.hive.get(), InjectionPmake(seed));
  pmake.Setup();
  auto pids = pmake.Start();

  // Let the jobs establish their address spaces, then corrupt the next
  // pointer of a map entry of a process on the victim cell. The process's
  // next fault walks into garbage, fails the type-tag check, and the victim
  // kernel panics; the other cells detect the dead kernel by clock
  // monitoring.
  auto inject_time = std::make_shared<Time>(0);
  base::Rng rng(seed * 3 + 1);
  const Time when = 60 * kMillisecond + static_cast<Time>(rng.Below(30)) * kMillisecond;
  // Retry every 10 ms until some process on the victim cell has built its
  // address map (jobs spend their first tens of ms in metadata calls).
  auto try_inject = std::make_shared<std::function<void()>>();
  std::function<void()>* retry = try_inject.get();
  *try_inject = [&system, victim, seed, inject_time, retry] {
    hive::Cell& cell = system.hive->cell(victim);
    for (hive::Process* proc : cell.sched().AllProcesses()) {
      if (proc->finished()) {
        continue;
      }
      hive::Ctx ctx = cell.MakeCtx();
      auto regions = proc->address_space().ListRegions(ctx);
      if (regions.size() < 2) {
        continue;
      }
      flash::FaultInjector injector(system.machine.get(), seed * 7 + 5);
      // Corrupting the first entry's next pointer poisons every walk that
      // has to search past it (all subsequent fault misses).
      hive::Cell& other = system.hive->cell((victim + 1) % 4);
      injector.CorruptPointer(regions[0].entry_addr + hive::AddrMapEntryLayout::kNext,
                              ModeFor(seed), cell.mem_base(), cell.mem_size(),
                              other.mem_base(), other.mem_size());
      *inject_time = system.machine->Now();
      return;
    }
    if (system.machine->Now() < 2 * kSecond) {
      system.machine->events().ScheduleAfter(10 * kMillisecond, *retry);
    }
  };
  system.machine->events().ScheduleAt(when, [try_inject] { (*try_inject)(); });
  (void)system.hive->RunUntilDone(pids, 600 * kSecond);
  if (*inject_time == 0) {
    return TestResult{};  // No target process found: count as failure.
  }
  return Evaluate(system, victim, *inject_time, seed * 19 + 11);
}

TestResult CorruptCowTree(uint64_t seed) {
  const CellId victim = 0;  // The raytrace parent's cell owns the scene tree.
  bench::System system = bench::Boot(4, 4, false, seed);
  workloads::RaytraceWorkload ray(system.hive.get(), InjectionRaytrace(seed));
  auto pids = ray.Start();

  // After the scene is built and the workers forked, corrupt the parent
  // pointer of a COW node on the victim cell. The local worker's next scene
  // slice fault walks the tree and panics the victim; remote workers'
  // careful references merely fail. Detection is slow because COW searches
  // are infrequent (the paper's 401 ms average).
  auto inject_time = std::make_shared<Time>(0);
  base::Rng rng(seed * 5 + 3);
  const Time when = 300 * kMillisecond + static_cast<Time>(rng.Below(60)) * kMillisecond;
  auto try_inject = std::make_shared<std::function<void()>>();
  std::function<void()>* retry = try_inject.get();
  *try_inject = [&system, seed, inject_time, retry] {
    hive::Cell& cell = system.hive->cell(victim);
    for (hive::Process* proc : cell.sched().AllProcesses()) {
      // Target the local *worker* (it keeps walking the tree for later scene
      // slices); the parent sits in wait() and would never traverse again.
      if (proc->finished() || proc->cow_leaf() == 0 ||
          proc->parent == hive::kInvalidProc) {
        continue;
      }
      flash::FaultInjector injector(system.machine.get(), seed * 11 + 1);
      hive::Cell& other = system.hive->cell(1);
      injector.CorruptPointer(proc->cow_leaf() + hive::CowNodeLayout::kParentAddr,
                              ModeFor(seed), cell.mem_base(), cell.mem_size(),
                              other.mem_base(), other.mem_size());
      *inject_time = system.machine->Now();
      return;
    }
    if (system.machine->Now() < 2 * kSecond) {
      system.machine->events().ScheduleAfter(10 * kMillisecond, *retry);
    }
  };
  system.machine->events().ScheduleAt(when, [try_inject] { (*try_inject)(); });
  (void)system.hive->RunUntilDone(pids, 600 * kSecond);
  if (*inject_time == 0) {
    return TestResult{};
  }
  return Evaluate(system, victim, *inject_time, seed * 23 + 9);
}

void Accumulate(ClassResult* cls, const TestResult& result) {
  ++cls->tests;
  if (result.contained) {
    ++cls->contained;
  }
  if (result.correctness_ok) {
    ++cls->correct;
  }
  if (result.detection_latency > 0) {
    cls->latency.Record(result.detection_latency);
  }
}

std::string LatencyCell(const ClassResult& cls) {
  if (cls.latency.empty()) {
    return "-";
  }
  return base::Table::F64(cls.latency.mean() / 1e6, 0) + " / " +
         base::Table::F64(static_cast<double>(cls.latency.max()) / 1e6, 0);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "tab74_fault_injection: fail-stop and kernel-corruption campaigns",
      "49 hardware + 20 software injections, all contained; detection "
      "latency avg/max per class: 16/21, 10/11, 21/45, 38/65, 401/760 ms");

  ClassResult fork_class, cow_hw_class, random_class, map_class, cowtree_class;

  // Node failure during process creation (pmake): inject while the fork burst
  // is in flight.
  for (uint64_t i = 0; i < 20; ++i) {
    base::Rng rng(9000 + i);
    const Time inject = 2 * kMillisecond + static_cast<Time>(rng.Below(6)) * kMillisecond;
    Accumulate(&fork_class,
               NodeFailurePmake(9000 + i, inject, static_cast<CellId>(1 + i % 3)));
  }

  // Node failure during the copy-on-write search (raytrace).
  for (uint64_t i = 0; i < 9; ++i) {
    Accumulate(&cow_hw_class, NodeFailureRaytrace(9100 + i, /*victim=*/0));
  }

  // Node failure at a random time (pmake).
  for (uint64_t i = 0; i < 20; ++i) {
    base::Rng rng(9200 + i);
    const Time inject = static_cast<Time>(rng.Below(1500)) * kMillisecond;
    Accumulate(&random_class,
               NodeFailurePmake(9200 + i, inject, static_cast<CellId>(i % 4)));
  }

  // Corrupt pointer in a process address map (pmake).
  for (uint64_t i = 0; i < 8; ++i) {
    Accumulate(&map_class, CorruptAddressMap(9300 + i, static_cast<CellId>(1 + i % 3)));
  }

  // Corrupt pointer in a COW tree (raytrace).
  for (uint64_t i = 0; i < 12; ++i) {
    Accumulate(&cowtree_class, CorruptCowTree(9400 + i));
  }

  base::Table table({"Injected fault type and workload", "#", "Contained", "Check OK",
                     "Latency avg/max (ms)", "Paper (ms)"});
  auto row = [&](const char* name, const ClassResult& cls, const char* paper) {
    table.AddRow({name, base::Table::I64(cls.tests),
                  base::Table::I64(cls.contained) + "/" + base::Table::I64(cls.tests),
                  base::Table::I64(cls.correct) + "/" + base::Table::I64(cls.tests),
                  LatencyCell(cls), paper});
  };
  row("node failure during process creation (P)", fork_class, "16 / 21");
  row("node failure during COW search (R)", cow_hw_class, "10 / 11");
  row("node failure at random time (P)", random_class, "21 / 45");
  row("corrupt pointer in process address map (P)", map_class, "38 / 65");
  row("corrupt pointer in COW tree (R)", cowtree_class, "401 / 760");
  std::printf("%s", table.Render("Table 7.4: fault injection results").c_str());

  const int total_tests = fork_class.tests + cow_hw_class.tests + random_class.tests +
                          map_class.tests + cowtree_class.tests;
  const int total_contained = fork_class.contained + cow_hw_class.contained +
                              random_class.contained + map_class.contained +
                              cowtree_class.contained;
  std::printf("\nContained %d of %d injected faults (paper: 69 of 69).\n", total_contained,
              total_tests);
  return total_contained == total_tests ? 0 : 1;
}
