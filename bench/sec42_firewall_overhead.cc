// Reproduces the firewall performance measurement of paper section 4.2: with
// a cycle-accurate memory model, enabling the firewall check increases the
// average remote write cache miss latency by 6.3% under pmake and 4.4% under
// ocean, with little overall effect since write misses are a small fraction
// of run time.

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"

namespace {

using hive::ProcId;
using hive::Time;

struct RunResult {
  Time makespan = 0;
  double avg_miss_ns = 0;
  uint64_t write_misses = 0;
};

Time Makespan(bench::System& system, const std::vector<ProcId>& pids, Time start) {
  Time finish = start;
  for (ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    hive::Process* proc = system.hive->cell(c).sched().FindProcess(pid);
    if (proc != nullptr) {
      finish = std::max(finish, proc->finished_at);
    }
  }
  return finish - start;
}

RunResult RunPmake(bool checking, uint64_t seed) {
  bench::System system = bench::Boot(4);
  system.machine->firewall().set_checking_enabled(checking);
  workloads::PmakeParams params;
  params.name_seed = seed;
  workloads::PmakeWorkload pmake(system.hive.get(), params);
  pmake.Setup();
  system.machine->cache().ResetCounters();
  const Time start = system.machine->Now();
  auto pids = pmake.Start();
  (void)system.hive->RunUntilDone(pids, start + 600 * hive::kSecond);
  RunResult result;
  result.makespan = Makespan(system, pids, start);
  result.avg_miss_ns = system.machine->cache().AvgRemoteWriteMissNs();
  result.write_misses = system.machine->cache().remote_write_misses();
  return result;
}

RunResult RunOcean(bool checking, uint64_t seed) {
  bench::System system = bench::Boot(4);
  system.machine->firewall().set_checking_enabled(checking);
  workloads::OceanParams params;
  params.name_seed = seed;
  workloads::OceanWorkload ocean(system.hive.get(), params);
  ocean.Setup();
  system.machine->cache().ResetCounters();
  const Time start = system.machine->Now();
  auto pids = ocean.Start();
  (void)system.hive->RunUntilDone(pids, start + 600 * hive::kSecond);
  RunResult result;
  result.makespan = Makespan(system, pids, start);
  result.avg_miss_ns = system.machine->cache().AvgRemoteWriteMissNs();
  result.write_misses = system.machine->cache().remote_write_misses();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "sec42_firewall_overhead: cost of the firewall permission check",
      "+6.3% (pmake) / +4.4% (ocean) on the average remote write miss "
      "latency; little overall effect on run time");

  const RunResult pmake_off = RunPmake(false, 1111);
  const RunResult pmake_on = RunPmake(true, 1112);
  const RunResult ocean_off = RunOcean(false, 2221);
  const RunResult ocean_on = RunOcean(true, 2222);

  auto pct = [](double on, double off) { return (on / off - 1.0) * 100.0; };

  base::Table table({"Workload", "Avg write miss (off)", "Avg write miss (on)",
                     "Increase", "Paper", "Overall run time delta"});
  table.AddRow({"pmake", base::Table::I64(static_cast<int64_t>(pmake_off.avg_miss_ns)) + " ns",
                base::Table::I64(static_cast<int64_t>(pmake_on.avg_miss_ns)) + " ns",
                base::Table::F64(pct(pmake_on.avg_miss_ns, pmake_off.avg_miss_ns), 1) + "%",
                "6.3%",
                base::Table::F64(pct(static_cast<double>(pmake_on.makespan),
                                     static_cast<double>(pmake_off.makespan)),
                                 2) +
                    "%"});
  table.AddRow({"ocean", base::Table::I64(static_cast<int64_t>(ocean_off.avg_miss_ns)) + " ns",
                base::Table::I64(static_cast<int64_t>(ocean_on.avg_miss_ns)) + " ns",
                base::Table::F64(pct(ocean_on.avg_miss_ns, ocean_off.avg_miss_ns), 1) + "%",
                "4.4%",
                base::Table::F64(pct(static_cast<double>(ocean_on.makespan),
                                     static_cast<double>(ocean_off.makespan)),
                                 2) +
                    "%"});
  std::printf("%s", table.Render("Section 4.2: firewall check latency cost").c_str());
  std::printf("\nRemote write misses observed: pmake %llu, ocean %llu\n",
              static_cast<unsigned long long>(pmake_on.write_misses),
              static_cast<unsigned long long>(ocean_on.write_misses));
  return 0;
}
