// Ablation: firewall storage alternatives (paper section 4.2).
//
// "We chose a bit vector per page after rejecting two options that would
// require less storage. A single bit per page, granting global write access,
// would provide no fault containment for processes that use any remote
// memory. A byte or halfword per page, naming a processor with write access,
// would prevent the scheduler in each cell from balancing the load on its
// processors" -- and, for pages genuinely write-shared by several cells,
// forces a revoke+regrant cycle on every writer change.
//
// This bench runs pmake and ocean under the three policies and reports the
// containment exposure (pages writable by everyone) and the extra management
// traffic (writer-eviction conflicts).

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"

namespace {

using hive::FirewallPolicy;
using hive::kMillisecond;
using hive::kSecond;
using hive::Time;

struct Result {
  Time makespan = 0;
  int peak_remote_writable = 0;
  int peak_global_writable = 0;
  uint64_t writer_conflicts = 0;
};

Result Run(FirewallPolicy policy, bool ocean, uint64_t seed) {
  bench::System system;
  system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(), seed);
  hive::HiveOptions options;
  options.num_cells = 4;
  options.firewall_policy = policy;
  system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
  system.hive->Boot();

  Result result;
  // Sample containment exposure every 20 ms.
  auto sampler = [&system, &result] {
    for (hive::CellId c = 0; c < 4; ++c) {
      result.peak_remote_writable =
          std::max(result.peak_remote_writable,
                   system.hive->cell(c).firewall_manager().RemotelyWritablePages());
      result.peak_global_writable =
          std::max(result.peak_global_writable,
                   system.hive->cell(c).firewall_manager().GloballyWritablePages());
    }
  };
  for (Time t = 0; t < 4 * kSecond; t += 20 * kMillisecond) {
    system.machine->events().ScheduleAt(t, sampler);
  }

  std::vector<hive::ProcId> pids;
  const Time start = system.machine->Now();
  std::unique_ptr<workloads::PmakeWorkload> pmake;
  std::unique_ptr<workloads::OceanWorkload> ow;
  if (ocean) {
    workloads::OceanParams params;
    params.timesteps = 20;
    params.name_seed = seed;
    ow = std::make_unique<workloads::OceanWorkload>(system.hive.get(), params);
    ow->Setup();
    pids = ow->Start();
  } else {
    workloads::PmakeParams params;
    params.compute_per_job = 800 * kMillisecond;
    params.name_seed = seed;
    pmake = std::make_unique<workloads::PmakeWorkload>(system.hive.get(), params);
    pmake->Setup();
    pids = pmake->Start();
  }
  (void)system.hive->RunUntilDone(pids, start + 600 * kSecond);
  for (hive::ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    hive::Process* proc = system.hive->cell(c).sched().FindProcess(pid);
    if (proc != nullptr) {
      result.makespan = std::max(result.makespan, proc->finished_at - start);
    }
  }
  for (hive::CellId c = 0; c < 4; ++c) {
    result.writer_conflicts += system.hive->cell(c).firewall_manager().writer_conflicts();
  }
  return result;
}

const char* PolicyName(FirewallPolicy policy) {
  switch (policy) {
    case FirewallPolicy::kBitVector:
      return "bit vector per page (Hive)";
    case FirewallPolicy::kGlobalBit:
      return "single bit per page";
    case FirewallPolicy::kSingleWriter:
      return "one writer per page";
  }
  return "?";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "abl_firewall_policy: firewall storage alternatives",
      "section 4.2: bit vector chosen over 1-bit (no containment for remote "
      "memory users) and single-writer (blocks intra-cell load balancing, "
      "evicts concurrent writers)");

  base::Table table({"Workload", "Policy", "Makespan", "Peak remote-writable",
                     "Peak writable-by-ALL", "Writer evictions"});
  uint64_t seed = 4100;
  for (bool ocean : {false, true}) {
    for (FirewallPolicy policy :
         {FirewallPolicy::kBitVector, FirewallPolicy::kGlobalBit,
          FirewallPolicy::kSingleWriter}) {
      const Result result = Run(policy, ocean, seed++);
      table.AddRow({ocean ? "ocean" : "pmake", PolicyName(policy),
                    base::Table::F64(static_cast<double>(result.makespan) / 1e9, 2) + " s",
                    base::Table::I64(result.peak_remote_writable),
                    base::Table::I64(result.peak_global_writable),
                    base::Table::I64(static_cast<int64_t>(result.writer_conflicts))});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.Render("Firewall policy ablation").c_str());
  std::printf(
      "\nWith one bit per page, every exported-writable page becomes writable by\n"
      "every processor in the machine: any wild write lands. The single-writer\n"
      "encoding keeps containment but pays an eviction cycle whenever a second\n"
      "cell writes a page, and would also forbid rescheduling the writing\n"
      "process onto the cell's other CPUs (not modelled).\n");
  return 0;
}
