// Reproduces the firewall management policy measurement of paper section 4.2:
// over 5.0 seconds of execution sampled at 20 millisecond intervals, pmake
// averages 15 remotely writable pages per cell (out of ~6000 user pages per
// cell; the peak of 42 is on the /tmp file-server cell), while ocean averages
// 550 because its global data segment is write-shared by all processors.

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"

namespace {

using hive::kMillisecond;
using hive::kSecond;
using hive::Time;

struct Samples {
  double avg_per_cell = 0;
  int max_any_cell = 0;
  hive::CellId max_cell = hive::kInvalidCell;
  int count = 0;
};

// Samples RemotelyWritablePages on every cell each 20 ms over `duration`.
Samples Sample(bench::System& system, Time start, Time duration) {
  auto samples = std::make_shared<Samples>();
  auto total = std::make_shared<int64_t>(0);
  const int n = system.hive->num_cells();
  std::function<void()> tick = [&system, samples, total, n]() {
    for (hive::CellId c = 0; c < n; ++c) {
      const int pages = system.hive->cell(c).firewall_manager().RemotelyWritablePages();
      *total += pages;
      if (pages > samples->max_any_cell) {
        samples->max_any_cell = pages;
        samples->max_cell = c;
      }
      ++samples->count;
    }
  };
  for (Time t = start; t < start + duration; t += 20 * kMillisecond) {
    system.machine->events().ScheduleAt(t, tick);
  }
  system.machine->events().RunUntil(start + duration);
  samples->avg_per_cell =
      samples->count == 0 ? 0.0 : static_cast<double>(*total) / samples->count;
  return *samples;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "sec42_writable_pages: remotely writable pages under the grant policy",
      "pmake: avg 15 per cell, max 42 (on the /tmp file-server cell); "
      "ocean: avg 550 (write-shared data segment); ~6000-7000 user pages/cell");

  base::Table table({"Workload", "Avg writable/cell", "Max (cell)", "Paper"});

  {
    bench::System system = bench::Boot(4);
    workloads::PmakeWorkload pmake(system.hive.get(), workloads::PmakeParams{});
    pmake.Setup();
    auto pids = pmake.Start();
    const Samples s = Sample(system, system.machine->Now(), 5 * kSecond);
    (void)system.hive->RunUntilDone(pids, 600 * kSecond);
    table.AddRow({"pmake", base::Table::F64(s.avg_per_cell, 1),
                  base::Table::I64(s.max_any_cell) + " (cell " +
                      base::Table::I64(s.max_cell) + ")",
                  "avg 15, max 42 on file server"});
  }
  {
    bench::System system = bench::Boot(4);
    workloads::OceanParams params;
    workloads::OceanWorkload ocean(system.hive.get(), params);
    ocean.Setup();
    auto pids = ocean.Start();
    const Samples s = Sample(system, system.machine->Now(), 5 * kSecond);
    (void)system.hive->RunUntilDone(pids, 600 * kSecond);
    table.AddRow({"ocean", base::Table::F64(s.avg_per_cell, 1),
                  base::Table::I64(s.max_any_cell) + " (cell " +
                      base::Table::I64(s.max_cell) + ")",
                  "avg 550 (segment home)"});
  }

  std::printf("%s",
              table.Render("Section 4.2: remotely writable pages per cell "
                           "(20 ms samples over 5 s)")
                  .c_str());
  std::printf(
      "\npmake write-shares only its /tmp scratch pages, so the policy keeps\n"
      "nearly every page protected; ocean's data segment is write-shared by\n"
      "all processors, so protecting it would only add overhead for an\n"
      "application that dies with any cell anyway (section 4.2).\n");
  return 0;
}
