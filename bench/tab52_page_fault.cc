// Reproduces paper table 5.2: components of the remote page fault latency,
// averaged across 1024 faults that hit in the data home page cache. Local
// fault: 6.9 us; remote fault: 50.7 us (client cell 28.0, data home 5.4,
// RPC 17.3).

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/workloads/workload.h"

int main() {
  bench::PrintHeader("tab52_page_fault: remote page fault latency breakdown",
                     "local 6.9 us; remote 50.7 us = client 28.0 + home 5.4 + "
                     "RPC 17.3 (averaged across 1024 faults hitting the data "
                     "home page cache)");

  bench::System system = bench::Boot(4);
  hive::Cell& home = system.cell(1);
  hive::Cell& client = system.cell(0);
  const uint64_t page_size = system.machine->mem().page_size();
  constexpr int kFaults = 1024;

  // One file with 1024 pages, warmed in the data home's cache.
  hive::Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/t52",
                             workloads::PatternData(1, kFaults * page_size));
  if (!id.ok()) {
    return 1;
  }
  for (int p = 0; p < kFaults; ++p) {
    auto warm = home.fs().GetPageLocal(hctx, id->vnode, static_cast<uint64_t>(p), false);
    if (!warm.ok()) {
      return 1;
    }
    (*warm)->refcount--;
  }

  // Local faults: hits in the home's own page cache.
  base::Histogram local_hist;
  auto local_handle = home.fs().Open(hctx, "/t52");
  for (int p = 0; p < kFaults; ++p) {
    hive::Ctx ctx = home.MakeCtx();
    auto pfdat = home.fs().GetPage(ctx, *local_handle, static_cast<uint64_t>(p), false,
                                   hive::FileSystem::AccessPath::kFault);
    if (!pfdat.ok()) {
      return 1;
    }
    home.fs().ReleasePage(ctx, *pfdat);
    local_hist.Record(ctx.elapsed);
  }

  // Remote faults from the client, with the component breakdown attached.
  hive::Ctx cctx = client.MakeCtx();
  auto handle = client.fs().Open(cctx, "/t52");
  if (!handle.ok()) {
    return 1;
  }
  base::Histogram remote_hist;
  hive::FaultBreakdown bd;
  for (int p = 0; p < kFaults; ++p) {
    hive::Ctx ctx = client.MakeCtx();
    ctx.fault_bd = &bd;
    auto pfdat = client.fs().GetPage(ctx, *handle, static_cast<uint64_t>(p), false,
                                     hive::FileSystem::AccessPath::kFault);
    if (!pfdat.ok()) {
      std::fprintf(stderr, "remote fault failed\n");
      return 1;
    }
    client.fs().ReleasePage(ctx, *pfdat);
    remote_hist.Record(ctx.elapsed);
  }
  const double n = kFaults;

  base::Table table({"Component", "Paper", "Measured"});
  table.AddRow({"Total local page fault latency", "6.9 us",
                base::Table::Us(local_hist.mean(), 1)});
  table.AddRow({"Total remote page fault latency", "50.7 us",
                base::Table::Us(remote_hist.mean(), 1)});
  table.AddSeparator();
  table.AddRow({"Client cell", "28.0 us",
                base::Table::Us(static_cast<double>(bd.client_fs + bd.client_locking +
                                                    bd.client_vm_misc + bd.client_import) / n,
                                1)});
  table.AddRow({"  File system", "9.0 us",
                base::Table::Us(static_cast<double>(bd.client_fs) / n, 1)});
  table.AddRow({"  Locking overhead", "5.5 us",
                base::Table::Us(static_cast<double>(bd.client_locking) / n, 1)});
  table.AddRow({"  Miscellaneous VM", "8.7 us",
                base::Table::Us(static_cast<double>(bd.client_vm_misc) / n, 1)});
  table.AddRow({"  Import page", "4.8 us",
                base::Table::Us(static_cast<double>(bd.client_import) / n, 1)});
  table.AddSeparator();
  table.AddRow({"Data home", "5.4 us",
                base::Table::Us(static_cast<double>(bd.home_vm_misc + bd.home_export) / n, 1)});
  table.AddRow({"  Miscellaneous VM", "3.4 us",
                base::Table::Us(static_cast<double>(bd.home_vm_misc) / n, 1)});
  table.AddRow({"  Export page", "2.0 us",
                base::Table::Us(static_cast<double>(bd.home_export) / n, 1)});
  table.AddSeparator();
  table.AddRow({"RPC", "17.3 us",
                base::Table::Us(static_cast<double>(bd.rpc_stub + bd.rpc_hw + bd.rpc_copy +
                                                    bd.rpc_alloc) / n,
                                1)});
  table.AddRow({"  Stubs and RPC subsystem", "4.9 us",
                base::Table::Us(static_cast<double>(bd.rpc_stub) / n, 1)});
  table.AddRow({"  Hardware message and interrupts", "4.7 us",
                base::Table::Us(static_cast<double>(bd.rpc_hw) / n, 1)});
  table.AddRow({"  Arg/result copy through shared memory", "4.0 us",
                base::Table::Us(static_cast<double>(bd.rpc_copy) / n, 1)});
  table.AddRow({"  Allocate/free arg and result memory", "3.7 us",
                base::Table::Us(static_cast<double>(bd.rpc_alloc) / n, 1)});
  std::printf("%s", table.Render("Table 5.2: components of the remote page fault latency")
                        .c_str());
  return 0;
}
