// Reproduces paper table 7.2: workload timings on a four-processor machine
// for the SMP-OS baseline (IRIX stand-in) and Hive with 1, 2, and 4 cells.
//
//   Workload   IRIX time   1 cell   2 cells   4 cells
//   ocean      6.07 s      1%       1%        -1%
//   raytrace   4.35 s      0%       0%        1%
//   pmake      5.77 s      1%       10%       11%

#include <functional>

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/ocean.h"
#include "src/workloads/pmake.h"
#include "src/workloads/raytrace.h"

namespace {

using hive::kSecond;
using hive::ProcId;
using hive::Time;

Time Makespan(bench::System& system, const std::vector<ProcId>& pids, Time start) {
  Time finish = start;
  for (ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    if (c == hive::kInvalidCell || !system.hive->cell(c).alive()) {
      continue;
    }
    hive::Process* proc = system.hive->cell(c).sched().FindProcess(pid);
    if (proc != nullptr) {
      finish = std::max(finish, proc->finished_at);
    }
  }
  return finish - start;
}

Time RunPmake(bench::System& system, uint64_t seed) {
  workloads::PmakeParams params;
  params.name_seed = seed;
  workloads::PmakeWorkload pmake(system.hive.get(), params);
  pmake.Setup();
  const Time start = system.machine->Now();
  auto pids = pmake.Start();
  if (!system.hive->RunUntilDone(pids, start + 600 * kSecond)) {
    std::fprintf(stderr, "pmake did not finish\n");
  }
  if (pmake.ValidateOutputs() != 0) {
    std::fprintf(stderr, "pmake outputs corrupt!\n");
  }
  return Makespan(system, pids, start);
}

Time RunOcean(bench::System& system, uint64_t seed) {
  workloads::OceanParams params;
  params.name_seed = seed;
  workloads::OceanWorkload ocean(system.hive.get(), params);
  ocean.Setup();
  const Time start = system.machine->Now();
  auto pids = ocean.Start();
  if (!system.hive->RunUntilDone(pids, start + 600 * kSecond)) {
    std::fprintf(stderr, "ocean did not finish\n");
  }
  return Makespan(system, pids, start);
}

Time RunRaytrace(bench::System& system, uint64_t seed) {
  workloads::RaytraceParams params;
  params.name_seed = seed;
  workloads::RaytraceWorkload ray(system.hive.get(), params);
  const Time start = system.machine->Now();
  auto pids = ray.Start();
  if (!system.hive->RunUntilDone(pids, start + 600 * kSecond)) {
    std::fprintf(stderr, "raytrace did not finish\n");
  }
  if (ray.ValidateOutputs() != 0) {
    std::fprintf(stderr, "raytrace outputs corrupt!\n");
  }
  return Makespan(system, pids, start);
}

std::string Slowdown(Time hive_time, Time base_time) {
  const double pct =
      (static_cast<double>(hive_time) / static_cast<double>(base_time) - 1.0) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", pct);
  return buf;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "tab72_workloads: workload timings, SMP baseline vs 1/2/4 cells",
      "ocean 6.07s (1/1/-1%), raytrace 4.35s (0/0/1%), pmake 5.77s (1/10/11%)");

  struct Row {
    const char* name;
    std::function<Time(bench::System&, uint64_t)> run;
    uint64_t seed;
    const char* paper_time;
    const char* paper_slow;
  };
  const Row rows[] = {
      {"ocean", RunOcean, 71, "6.07 s", "1% / 1% / -1%"},
      {"raytrace", RunRaytrace, 72, "4.35 s", "0% / 0% / 1%"},
      {"pmake", RunPmake, 73, "5.77 s", "1% / 10% / 11%"},
  };

  base::Table table({"Workload", "SMP-OS time", "1 cell", "2 cells", "4 cells",
                     "Paper (time; 1/2/4)"});
  for (const Row& row : rows) {
    bench::System smp = bench::Boot(1, 4, /*smp=*/true);
    const Time base_time = row.run(smp, row.seed);

    std::string cells_result[3];
    const int cell_counts[] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      bench::System system = bench::Boot(cell_counts[i], 4);
      const Time t = row.run(system, row.seed + 1000ull * static_cast<uint64_t>(i));
      cells_result[i] = Slowdown(t, base_time);
    }
    table.AddRow({row.name,
                  base::Table::F64(static_cast<double>(base_time) / 1e9, 2) + " s",
                  cells_result[0], cells_result[1], cells_result[2],
                  std::string(row.paper_time) + "; " + row.paper_slow});
  }
  std::printf("%s",
              table.Render("Table 7.2: workload timings on a four-processor machine")
                  .c_str());
  std::printf(
      "\nNote: slowdowns are relative to the same kernel in shared-everything\n"
      "SMP mode (the IRIX 5.2 stand-in). Parallel applications spend almost\n"
      "all their time at user level, so the cell partition barely affects\n"
      "them; pmake exercises OS services across cells and pays the most.\n");
  return 0;
}
