// Ablation: interrupt-level vs queued service for the page-fault RPC.
//
// Paper section 6: "the significant difference in latency between
// interrupt-level and queued RPCs had two effects on the structure of Hive.
// First, we reorganized data structures and locking to make it possible to
// service common RPCs at interrupt level" -- the double-barrier recovery
// design exists precisely so the page-fault server path takes no blocking
// locks (section 4.3). This bench quantifies what that restructuring bought:
// it forces every page-fault RPC through the queued path and measures the
// remote fault latency and the pmake slowdown.

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/workloads/pmake.h"
#include "src/workloads/workload.h"

namespace {

using hive::kMillisecond;
using hive::kSecond;
using hive::Time;

bench::System BootWith(bool force_queued, uint64_t seed) {
  bench::System system;
  system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(), seed);
  hive::HiveOptions options;
  options.num_cells = 4;
  options.costs.force_queued_fault_rpc = force_queued;
  system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
  system.hive->Boot();
  return system;
}

double RemoteFaultUs(bench::System& system) {
  hive::Cell& home = system.cell(1);
  hive::Cell& client = system.cell(0);
  hive::Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/abl", workloads::PatternData(1, 256 * 4096));
  base::Histogram hist;
  for (uint64_t p = 0; p < 256; ++p) {
    auto warm = home.fs().GetPageLocal(hctx, id->vnode, p, false);
    (*warm)->refcount--;
  }
  hive::Ctx open_ctx = client.MakeCtx();
  auto handle = client.fs().Open(open_ctx, "/abl");
  for (uint64_t p = 0; p < 256; ++p) {
    hive::Ctx ctx = client.MakeCtx();
    auto pfdat = client.fs().GetPage(ctx, *handle, p, false,
                                     hive::FileSystem::AccessPath::kFault);
    if (pfdat.ok()) {
      client.fs().ReleasePage(ctx, *pfdat);
      hist.Record(ctx.elapsed);
    }
  }
  return hist.mean() / 1000.0;
}

Time PmakeMakespan(bench::System& system, uint64_t seed) {
  workloads::PmakeParams params;
  params.name_seed = seed;
  workloads::PmakeWorkload pmake(system.hive.get(), params);
  pmake.Setup();
  const Time start = system.machine->Now();
  auto pids = pmake.Start();
  (void)system.hive->RunUntilDone(pids, start + 600 * kSecond);
  Time finish = 0;
  for (hive::ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    finish = std::max(finish, system.hive->cell(c).sched().FindProcess(pid)->finished_at);
  }
  return finish - start;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "abl_rpc_level: interrupt-level vs queued page-fault service",
      "section 6: common RPCs were restructured to run at interrupt level; "
      "the queued path adds ~27 us of context switch + synchronization");

  bench::System interrupt_sys = BootWith(false, 8801);
  bench::System queued_sys = BootWith(true, 8802);

  const double int_us = RemoteFaultUs(interrupt_sys);
  const double q_us = RemoteFaultUs(queued_sys);
  const Time int_make = PmakeMakespan(interrupt_sys, 8803);
  const Time q_make = PmakeMakespan(queued_sys, 8804);

  base::Table table({"Fault RPC service", "Remote fault latency", "pmake makespan",
                     "pmake vs interrupt-level"});
  table.AddRow({"interrupt-level (Hive)", base::Table::F64(int_us, 1) + " us",
                base::Table::F64(static_cast<double>(int_make) / 1e9, 2) + " s", "-"});
  table.AddRow({"queued server process", base::Table::F64(q_us, 1) + " us",
                base::Table::F64(static_cast<double>(q_make) / 1e9, 2) + " s",
                base::Table::F64((static_cast<double>(q_make) / static_cast<double>(int_make) -
                                  1.0) * 100.0, 1) + "%"});
  std::printf("%s", table.Render("Page-fault RPC service level").c_str());
  std::printf(
      "\nServicing faults at interrupt level required the lock-free server path\n"
      "the double-barrier recovery protocol makes safe (section 4.3): a fault\n"
      "that arrives after a cell joined barrier 1 is held on the client side,\n"
      "so the handler never races recovery.\n");
  return 0;
}
