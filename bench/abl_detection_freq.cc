// Ablation: failure detection frequency vs the window of vulnerability.
//
// Paper section 3.1: "The window of vulnerability can be reduced by
// increasing the frequency of checks during normal operation. This is
// another tradeoff between fault containment and performance." This bench
// sweeps the clock monitoring period and reports the detection latency of a
// node failure together with the monitoring cost each cell pays (one careful
// remote clock read of 1.16 us per tick, plus its own clock update).

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/flash/fault_injector.h"

namespace {

using hive::kMillisecond;
using hive::Time;

struct Point {
  Time period;
  double avg_latency_ms = 0;
  double max_latency_ms = 0;
  double monitor_cpu_pct = 0;
};

Point Measure(Time period) {
  Point point;
  point.period = period;
  base::Histogram latency;
  for (uint64_t trial = 0; trial < 12; ++trial) {
    bench::System system;
    system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(), 7000 + trial);
    hive::HiveOptions options;
    options.num_cells = 4;
    options.start_wax = false;
    options.costs.clock_tick_period_ns = period;
    system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
    system.hive->Boot();

    base::Rng rng(trial * 31 + 5);
    const Time inject = 50 * kMillisecond + static_cast<Time>(rng.Below(50)) * kMillisecond;
    flash::FaultInjector injector(system.machine.get(), trial);
    injector.ScheduleNodeFailure(static_cast<int>(1 + trial % 3), inject);
    system.machine->events().RunUntil(inject + 40 * period + 200 * kMillisecond);
    if (system.hive->recovery().recoveries_run() == 0) {
      continue;
    }
    latency.Record(system.hive->recovery().last_stats().detect_time - inject);
  }
  if (!latency.empty()) {
    point.avg_latency_ms = latency.mean() / 1e6;
    point.max_latency_ms = static_cast<double>(latency.max()) / 1e6;
  }
  // Monitoring cost per CPU: (careful read 1.16 us + own clock update ~0.2 us)
  // every `period`.
  point.monitor_cpu_pct = (1160.0 + 200.0) / static_cast<double>(period) * 100.0;
  return point;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "abl_detection_freq: clock monitoring period vs window of vulnerability",
      "section 3.1 tradeoff: faster checks shrink the wild-write window but "
      "cost CPU on every tick (the paper's prototype ticks at 10 ms)");

  base::Table table({"Tick period", "Detection avg (ms)", "Detection max (ms)",
                     "Monitoring CPU/cell"});
  for (Time period : {1 * kMillisecond, 2 * kMillisecond, 5 * kMillisecond,
                      10 * kMillisecond, 20 * kMillisecond, 50 * kMillisecond}) {
    const Point point = Measure(period);
    table.AddRow({base::Table::Ms(static_cast<double>(period), 0),
                  base::Table::F64(point.avg_latency_ms, 1),
                  base::Table::F64(point.max_latency_ms, 1),
                  base::Table::F64(point.monitor_cpu_pct, 3) + "%"});
  }
  std::printf("%s", table.Render("Detection period sweep (12 node-failure trials each)")
                        .c_str());
  std::printf(
      "\nDetection latency tracks the tick period plus the bounded stall on the\n"
      "failed access; monitoring cost stays negligible even at 1 ms ticks, but\n"
      "each check also steals cache/bus bandwidth the model does not charge.\n");
  return 0;
}
