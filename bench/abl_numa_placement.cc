// Ablation: CC-NUMA page placement through physical-level sharing (paper
// section 5.5): "a frame might be simultaneously loaned out and imported back
// into the memory home. This can occur when the data home places a page in
// the memory of the client cell that has faulted to it, which helps to
// improve CC-NUMA locality."
//
// With placement on, the data home caches pages faulted by a remote client in
// frames borrowed from that client's memory; the client's subsequent stores
// are node-local instead of remote.

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/ocean.h"

namespace {

using hive::kSecond;
using hive::Time;

struct Result {
  Time makespan = 0;
  uint64_t remote_write_misses = 0;
  uint64_t local_misses = 0;
  uint64_t loans = 0;
};

Result Run(bool placement, uint64_t seed) {
  bench::System system;
  system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(), seed);
  hive::HiveOptions options;
  options.num_cells = 4;
  options.numa_placement = placement;
  system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
  system.hive->Boot();

  workloads::OceanParams params;
  params.timesteps = 30;
  params.name_seed = seed;
  workloads::OceanWorkload ocean(system.hive.get(), params);
  ocean.Setup();
  system.machine->cache().ResetCounters();
  const Time start = system.machine->Now();
  auto pids = ocean.Start();
  (void)system.hive->RunUntilDone(pids, start + 600 * kSecond);

  Result result;
  for (hive::ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    hive::Process* proc = system.hive->cell(c).sched().FindProcess(pid);
    if (proc != nullptr) {
      result.makespan = std::max(result.makespan, proc->finished_at - start);
    }
  }
  result.remote_write_misses = system.machine->cache().remote_write_misses();
  result.local_misses = system.machine->cache().local_misses();
  for (hive::CellId c = 0; c < 4; ++c) {
    result.loans += system.hive->cell(c).allocator().loaned_frames();
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "abl_numa_placement: CC-NUMA page placement via loaned frames",
      "section 5.5: the data home places pages in the faulting client's "
      "memory (frame loaned out and imported back through the pre-existing "
      "pfdat), converting the client's remote write misses into local ones");

  const Result off = Run(false, 6601);
  const Result on = Run(true, 6602);

  base::Table table({"Placement", "ocean makespan", "Remote write misses",
                     "Local misses", "Frames on loan"});
  table.AddRow({"off (all pages at data home)",
                base::Table::F64(static_cast<double>(off.makespan) / 1e9, 3) + " s",
                base::Table::I64(static_cast<int64_t>(off.remote_write_misses)),
                base::Table::I64(static_cast<int64_t>(off.local_misses)),
                base::Table::I64(static_cast<int64_t>(off.loans))});
  table.AddRow({"on (pages near the faulting cell)",
                base::Table::F64(static_cast<double>(on.makespan) / 1e9, 3) + " s",
                base::Table::I64(static_cast<int64_t>(on.remote_write_misses)),
                base::Table::I64(static_cast<int64_t>(on.local_misses)),
                base::Table::I64(static_cast<int64_t>(on.loans))});
  std::printf("%s", table.Render("CC-NUMA placement ablation (ocean, 4 cells)").c_str());
  std::printf(
      "\nEach thread's partition lands in its own cell's memory, so the grid\n"
      "stores that were remote misses become local ones; only the halo pages\n"
      "(placed near their first toucher) stay remote for the neighbour. At\n"
      "ocean's touch rate the one-time migration copies roughly pay for the\n"
      "per-store savings -- the paper's point that \"the tradeoffs in page\n"
      "allocation ... are complex\" (section 5.6); store-hot workloads win.\n");
  return 0;
}
