// Google-benchmark microbenchmarks for the substrate data structures: the
// event queue, physical memory access path (with and without firewall
// checking), kernel heap, pfdat hash, and careful reference protocol. These
// measure the *simulator's* wall-clock cost, which bounds how large an
// experiment the repo can run; the simulated latencies are covered by the
// paper-table benches.

#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/core/careful_ref.h"
#include "src/core/kernel_heap.h"
#include "src/core/pfdat.h"
#include "src/flash/event_queue.h"
#include "src/flash/machine.h"

namespace {

flash::MachineConfig Config() {
  flash::MachineConfig config;
  config.num_nodes = 4;
  config.memory_per_node = 16ull * 1024 * 1024;
  return config;
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    flash::EventQueue queue;
    for (int i = 0; i < 1024; ++i) {
      queue.ScheduleAt(i * 10, [] {});
    }
    benchmark::DoNotOptimize(queue.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_PhysMemCheckedWrite(benchmark::State& state) {
  flash::PhysMem mem(Config());
  uint64_t value = 0;
  for (auto _ : state) {
    mem.WriteValue<uint64_t>(0, 4096, ++value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhysMemCheckedWrite);

void BM_PhysMemWriteNoFirewall(benchmark::State& state) {
  flash::PhysMem mem(Config());
  mem.firewall().set_checking_enabled(false);
  uint64_t value = 0;
  for (auto _ : state) {
    mem.WriteValue<uint64_t>(0, 4096, ++value);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhysMemWriteNoFirewall);

void BM_KernelHeapAllocFree(benchmark::State& state) {
  flash::PhysMem mem(Config());
  hive::KernelHeap heap(&mem, 0, 0, 8 << 20);
  for (auto _ : state) {
    auto addr = heap.Alloc(hive::kTagGeneric, 64);
    heap.Free(*addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelHeapAllocFree);

void BM_PfdatHashLookup(benchmark::State& state) {
  hive::PfdatTable table;
  const int n = static_cast<int>(state.range(0));
  std::vector<hive::LogicalPageId> ids;
  for (int i = 0; i < n; ++i) {
    hive::Pfdat* pfdat = table.AddRegular(static_cast<flash::PhysAddr>(i) * 4096);
    pfdat->lpid.kind = hive::LogicalPageId::Kind::kFile;
    pfdat->lpid.data_home = 0;
    pfdat->lpid.object = static_cast<uint64_t>(i % 64);
    pfdat->lpid.page_offset = static_cast<uint64_t>(i);
    table.InsertHash(pfdat);
    ids.push_back(pfdat->lpid);
  }
  base::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.FindByLpid(ids[rng.Below(ids.size())]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PfdatHashLookup)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_CarefulRefRead(benchmark::State& state) {
  flash::PhysMem mem(Config());
  const flash::PhysAddr base = Config().memory_per_node;
  hive::KernelHeap heap(&mem, 1, base, 1 << 20);
  auto addr = heap.Alloc(hive::kTagClockWord, 8);
  hive::KernelCosts costs;
  for (auto _ : state) {
    hive::Ctx ctx;
    ctx.cpu = 0;
    hive::CarefulRef careful(&ctx, &mem, costs, 1, base, Config().memory_per_node);
    benchmark::DoNotOptimize(careful.ReadTagged<uint64_t>(*addr, hive::kTagClockWord));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CarefulRefRead);

void BM_Xoshiro(benchmark::State& state) {
  base::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
