// Ablation: oracle vs real distributed agreement (paper section 4.3).
//
// The paper's experiments simulated the distributed agreement protocol with
// an oracle; the real group-membership-style protocol was future work. This
// repo implements both. The bench compares detection+confirmation latency
// for genuine failures and shows what the oracle cannot do at all: vote down
// a false accusation and eventually declare a repeat accuser corrupt.

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/flash/fault_injector.h"

namespace {

using hive::AgreementMode;
using hive::kMillisecond;
using hive::Time;

base::Histogram MeasureDetection(AgreementMode mode, int trials) {
  base::Histogram latency;
  for (int trial = 0; trial < trials; ++trial) {
    bench::System system;
    system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(),
                                                      5000 + static_cast<uint64_t>(trial));
    hive::HiveOptions options;
    options.num_cells = 4;
    options.agreement_mode = mode;
    options.start_wax = false;
    system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
    system.hive->Boot();

    base::Rng rng(static_cast<uint64_t>(trial) * 17 + 1);
    const Time inject = 40 * kMillisecond + static_cast<Time>(rng.Below(40)) * kMillisecond;
    flash::FaultInjector injector(system.machine.get(), static_cast<uint64_t>(trial));
    injector.ScheduleNodeFailure(1 + trial % 3, inject);
    system.machine->events().RunUntil(inject + 300 * kMillisecond);
    if (system.hive->recovery().recoveries_run() > 0) {
      latency.Record(system.hive->recovery().last_stats().detect_time - inject);
    }
  }
  return latency;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "abl_agreement: oracle vs real distributed agreement",
      "the paper used an oracle (section 7.2); the voting protocol it "
      "planned (per Ricciardi & Birman) must confirm failures and reject "
      "false accusations");

  const base::Histogram oracle = MeasureDetection(AgreementMode::kOracle, 16);
  const base::Histogram voting = MeasureDetection(AgreementMode::kVoting, 16);

  base::Table table({"Mode", "Confirmations", "Detect+confirm avg", "max"});
  table.AddRow({"oracle (paper's setup)", base::Table::I64(static_cast<int64_t>(oracle.count())) + "/16",
                base::Table::Ms(oracle.mean(), 1),
                base::Table::Ms(static_cast<double>(oracle.max()), 1)});
  table.AddRow({"voting (majority probe)", base::Table::I64(static_cast<int64_t>(voting.count())) + "/16",
                base::Table::Ms(voting.mean(), 1),
                base::Table::Ms(static_cast<double>(voting.max()), 1)});
  std::printf("%s", table.Render("Genuine node failures").c_str());

  // False accusation handling, which only the real protocol provides.
  bench::System system;
  system.machine = std::make_unique<flash::Machine>(bench::PaperConfig(), 6001);
  hive::HiveOptions options;
  options.num_cells = 4;
  options.agreement_mode = AgreementMode::kVoting;
  options.start_wax = false;
  system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
  system.hive->Boot();
  hive::Ctx ctx = system.cell(0).MakeCtx();
  system.hive->HandleAlert(ctx, /*accuser=*/0, /*suspect=*/2, hive::HintReason::kClockStale);
  const bool first_rejected =
      system.cell(2).alive() && system.hive->recovery().recoveries_run() == 0;
  system.hive->HandleAlert(ctx, 0, 2, hive::HintReason::kClockStale);
  const bool accuser_expelled = !system.cell(0).alive() && system.cell(2).alive();

  std::printf("\nFalse-accusation handling (voting only):\n");
  std::printf("  first bogus alert voted down, suspect survives:   %s\n",
              first_rejected ? "yes" : "NO");
  std::printf("  second identical alert expels the accuser itself: %s\n",
              accuser_expelled ? "yes" : "NO");
  std::printf("  false alerts recorded by the protocol: %llu\n",
              static_cast<unsigned long long>(system.hive->agreement().false_alerts()));
  std::printf(
      "\nThe voting round costs tens of microseconds more than the oracle (the\n"
      "probes are careful clock reads + pings), a negligible share of the\n"
      "clock-tick-dominated detection latency -- and it is the only variant\n"
      "that stops a corrupt cell from rebooting healthy ones.\n");
  return first_rejected && accuser_expelled ? 0 : 1;
}
