// Reproduces the RPC latency measurements of paper section 6:
//   - minimum end-to-end null interrupt-level RPC: 7.2 us (2 us SIPS)
//   - commonly-used interrupt-level request (fat stubs): ~9.6 us
//   - minimum end-to-end null queued RPC: 34 us

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"

namespace {

using hive::Ctx;
using hive::MsgType;
using hive::RpcArgs;
using hive::RpcReply;

double MeasureUs(bench::System& system, MsgType type, bool fat, int iterations) {
  base::Histogram hist;
  hive::Cell& client = system.cell(0);
  for (int i = 0; i < iterations; ++i) {
    Ctx ctx = client.MakeCtx();
    RpcArgs args;
    RpcReply reply;
    hive::CallOptions options;
    options.fat_stub = fat;
    const hive::CellId target = 1 + (i % 3);
    base::Status status = client.rpc().Call(ctx, target, type, args, &reply, options);
    if (!status.ok()) {
      std::fprintf(stderr, "rpc failed: %s\n", std::string(status.name()).c_str());
      continue;
    }
    hist.Record(ctx.elapsed);
  }
  return hist.mean() / 1000.0;
}

}  // namespace

int main() {
  bench::PrintHeader("sec6_rpc: intercell RPC latency",
                     "null RPC 7.2 us; common interrupt-level RPC 9.6 us; "
                     "null queued RPC 34 us; SIPS delivers one 128-byte line "
                     "in about a remote miss");

  bench::System system = bench::Boot(4);
  constexpr int kIters = 1024;

  const double null_us = MeasureUs(system, MsgType::kNull, false, kIters);
  const double fat_us = MeasureUs(system, MsgType::kNull, true, kIters);
  const double queued_us = MeasureUs(system, MsgType::kNullQueued, false, kIters);
  const double sips_us =
      static_cast<double>(system.machine->config().latency.ipi_ns +
                          system.machine->config().latency.sips_payload_ns) /
      1000.0;

  base::Table table({"Operation", "Paper", "Measured"});
  table.AddRow({"SIPS one-way message", "1.0 us", base::Table::F64(sips_us, 2) + " us"});
  table.AddRow({"Null interrupt-level RPC", "7.2 us", base::Table::F64(null_us, 2) + " us"});
  table.AddRow({"Common interrupt-level RPC (fat stubs)", "9.6 us",
                base::Table::F64(fat_us, 2) + " us"});
  table.AddRow({"Null queued RPC", "34.0 us", base::Table::F64(queued_us, 2) + " us"});
  std::printf("%s", table.Render("Section 6: RPC performance").c_str());
  return 0;
}
