// Shared infrastructure for the paper-reproduction benchmark binaries. Each
// bench boots the full-size machine model of paper section 7.2 (four 200 MHz
// processors, 32 MB per node, HP 97560 disks) and prints its table with
// paper-reported values alongside the measured ones.

#ifndef HIVE_BENCH_BENCH_UTIL_H_
#define HIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/base/table.h"
#include "src/core/hive_system.h"
#include "src/flash/machine.h"

namespace bench {

inline flash::MachineConfig PaperConfig(int nodes = 4) {
  flash::MachineConfig config;
  config.num_nodes = nodes;
  config.cpus_per_node = 1;
  config.memory_per_node = 32ull * 1024 * 1024;
  return config;
}

struct System {
  std::unique_ptr<flash::Machine> machine;
  std::unique_ptr<hive::HiveSystem> hive;

  hive::Cell& cell(hive::CellId id) { return hive->cell(id); }
};

// Boots a Hive with `num_cells` cells on a `nodes`-node machine. In SMP mode
// (num_cells == 1 && smp) the same kernel acts as the IRIX stand-in baseline.
inline System Boot(int num_cells, int nodes = 4, bool smp = false, uint64_t seed = 42,
                   bool start_wax = true) {
  System system;
  system.machine = std::make_unique<flash::Machine>(PaperConfig(nodes), seed);
  hive::HiveOptions options;
  options.num_cells = num_cells;
  options.smp_mode = smp;
  options.start_wax = start_wax && !smp && num_cells > 1;
  system.hive = std::make_unique<hive::HiveSystem>(system.machine.get(), options);
  system.hive->Boot();
  return system;
}

inline void PrintHeader(const std::string& bench, const std::string& claim) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n", bench.c_str());
  std::printf("# Paper: %s\n", claim.c_str());
  std::printf("################################################################\n");
}

}  // namespace bench

#endif  // HIVE_BENCH_BENCH_UTIL_H_
