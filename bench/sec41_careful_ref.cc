// Reproduces the careful reference protocol measurement of paper section 4.1:
// the clock monitoring algorithm's careful_on .. careful_off read of a remote
// cell's clock value averages 1.16 us (232 cycles), of which 0.7 us is the
// cache miss to the line holding the clock; an RPC for the same data costs a
// minimum of 7.2 us and interrupts a remote processor.

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"

int main() {
  bench::PrintHeader("sec41_careful_ref: careful reference protocol",
                     "careful remote clock read 1.16 us (0.7 us miss) vs "
                     ">= 7.2 us for the RPC alternative");

  bench::System system = bench::Boot(4);
  hive::Cell& reader = system.cell(0);
  hive::Cell& target = system.cell(1);

  constexpr int kIters = 4096;
  base::Histogram careful_hist;
  for (int i = 0; i < kIters; ++i) {
    hive::Ctx ctx = reader.MakeCtx();
    {
      hive::CarefulRef careful(&ctx, &system.machine->mem(), reader.costs(), target.id(),
                               target.mem_base(), target.mem_size());
      auto value = careful.ReadTagged<uint64_t>(target.clock_word_addr(),
                                                hive::kTagClockWord);
      if (!value.ok()) {
        std::fprintf(stderr, "careful read failed\n");
        return 1;
      }
    }
    careful_hist.Record(ctx.elapsed);
  }

  base::Histogram rpc_hist;
  for (int i = 0; i < kIters; ++i) {
    hive::Ctx ctx = reader.MakeCtx();
    hive::RpcArgs args;
    hive::RpcReply reply;
    (void)reader.rpc().Call(ctx, target.id(), hive::MsgType::kPing, args, &reply);
    rpc_hist.Record(ctx.elapsed);
  }

  base::Table table({"Path", "Paper", "Measured"});
  table.AddRow({"careful_on..careful_off clock read", "1.16 us",
                base::Table::Us(careful_hist.mean(), 2)});
  table.AddRow({"  of which remote cache miss", "0.70 us",
                base::Table::Us(static_cast<double>(reader.costs().remote_miss_ns), 2)});
  table.AddRow({"RPC fetching the same value", ">= 7.2 us",
                base::Table::Us(rpc_hist.mean(), 2)});
  table.AddRow({"careful / RPC advantage", "6.2x",
                base::Table::F64(rpc_hist.mean() / careful_hist.mean(), 1) + "x"});
  std::printf("%s", table.Render("Section 4.1: careful reference protocol cost").c_str());
  return 0;
}
