// Reproduces paper table 7.3: local vs. remote latency for kernel operations
// on a two-processor two-cell system with warm file caches.
//   4 MB file read:          65.0 ms -> 76.2 ms  (1.2x)
//   4 MB file write/extend:  83.7 ms -> 87.3 ms  (1.1x)
//   open file:               148 us  -> 580 us   (3.9x)
//   page fault hitting file cache: 6.9 us -> 50.7 us (7.4x)

#include "bench/bench_util.h"
#include "src/base/histogram.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/workloads/workload.h"

namespace {

using hive::Ctx;
using hive::Time;

std::string Row(double v_ns, bool ms) {
  return ms ? base::Table::Ms(v_ns, 1) : base::Table::Us(v_ns, 1);
}

}  // namespace

int main() {
  bench::PrintHeader("tab73_kernel_ops: local vs remote kernel operations",
                     "read 1.2x, write 1.1x, open 3.9x, quick fault 7.4x on a "
                     "two-processor two-cell system with warm caches");

  bench::System system = bench::Boot(/*num_cells=*/2, /*nodes=*/2);
  hive::Cell& home = system.cell(1);
  hive::Cell& client = system.cell(0);
  const uint64_t size = 4ull * 1024 * 1024;
  const uint64_t page_size = system.machine->mem().page_size();

  hive::Ctx hctx = home.MakeCtx();
  auto id = home.fs().Create(hctx, "/big", workloads::PatternData(3, size));
  auto wid = home.fs().Create(hctx, "/w", {});
  if (!id.ok() || !wid.ok()) {
    return 1;
  }
  // Warm the home cache.
  auto hh = home.fs().Open(hctx, "/big");
  std::vector<uint8_t> buf(size);
  (void)home.fs().Read(hctx, *hh, 0, std::span<uint8_t>(buf));

  // --- 4 MB read. ---
  Ctx local_read = home.MakeCtx();
  (void)home.fs().Read(local_read, *hh, 0, std::span<uint8_t>(buf));
  Ctx open_tmp = client.MakeCtx();
  auto ch = client.fs().Open(open_tmp, "/big");
  Ctx remote_read = client.MakeCtx();
  (void)client.fs().Read(remote_read, *ch, 0, std::span<uint8_t>(buf));

  // --- 4 MB write/extend. ---
  const std::vector<uint8_t> data = workloads::PatternData(5, size);
  auto wh = home.fs().Open(hctx, "/w");
  Ctx local_write = home.MakeCtx();
  (void)home.fs().Write(local_write, *wh, 0, std::span<const uint8_t>(data));
  Ctx open_tmp2 = client.MakeCtx();
  auto cw = client.fs().Open(open_tmp2, "/w");
  Ctx remote_write = client.MakeCtx();
  (void)client.fs().Write(remote_write, *cw, 0, std::span<const uint8_t>(data));

  // --- open. ---
  Ctx local_open = home.MakeCtx();
  (void)home.fs().Open(local_open, "/big");
  Ctx remote_open = client.MakeCtx();
  (void)client.fs().Open(remote_open, "/big");

  // --- page fault hitting the file cache. ---
  base::Histogram local_fault;
  base::Histogram remote_fault;
  const uint64_t pages = size / page_size;
  for (uint64_t p = 0; p < pages; ++p) {
    Ctx ctx = home.MakeCtx();
    auto pf = home.fs().GetPage(ctx, *hh, p, false, hive::FileSystem::AccessPath::kFault);
    if (pf.ok()) {
      home.fs().ReleasePage(ctx, *pf);
      local_fault.Record(ctx.elapsed);
    }
    Ctx rctx = client.MakeCtx();
    auto rpf = client.fs().GetPage(rctx, *ch, p, false, hive::FileSystem::AccessPath::kFault);
    if (rpf.ok()) {
      client.fs().ReleasePage(rctx, *rpf);
      remote_fault.Record(rctx.elapsed);
    }
  }

  auto ratio = [](double remote, double local) {
    return base::Table::F64(remote / local, 1);
  };

  base::Table table({"Operation", "Local", "Remote", "Remote/local", "Paper"});
  table.AddRow({"4 MB file read", Row(static_cast<double>(local_read.elapsed), true),
                Row(static_cast<double>(remote_read.elapsed), true),
                ratio(static_cast<double>(remote_read.elapsed),
                      static_cast<double>(local_read.elapsed)),
                "65.0 -> 76.2 ms (1.2)"});
  table.AddRow({"4 MB file write/extend", Row(static_cast<double>(local_write.elapsed), true),
                Row(static_cast<double>(remote_write.elapsed), true),
                ratio(static_cast<double>(remote_write.elapsed),
                      static_cast<double>(local_write.elapsed)),
                "83.7 -> 87.3 ms (1.1)"});
  table.AddRow({"open file", Row(static_cast<double>(local_open.elapsed), false),
                Row(static_cast<double>(remote_open.elapsed), false),
                ratio(static_cast<double>(remote_open.elapsed),
                      static_cast<double>(local_open.elapsed)),
                "148 -> 580 us (3.9)"});
  table.AddRow({"page fault hitting file cache", Row(local_fault.mean(), false),
                Row(remote_fault.mean(), false),
                ratio(remote_fault.mean(), local_fault.mean()), "6.9 -> 50.7 us (7.4)"});
  std::printf("%s",
              table.Render("Table 7.3: local vs remote latency for kernel operations")
                  .c_str());
  return 0;
}
