// Reproduces the paper's section 5.2 measurement of remote fault impact on
// pmake: during ~6 seconds of execution on four processors there are 8935
// page faults that hit in the page cache, of which 4946 are remote on the
// four-cell system; this raises cumulative fault time from 117 ms to 455 ms,
// about 13% of the overall slowdown from one cell to four.

#include "bench/bench_util.h"
#include "src/core/cell.h"
#include "src/workloads/pmake.h"

namespace {

using hive::ProcId;
using hive::Time;

struct FaultTotals {
  uint64_t faults = 0;
  uint64_t cache_hit = 0;
  uint64_t remote = 0;
  Time fault_ns = 0;
  Time makespan = 0;
};

FaultTotals Run(int cells, uint64_t seed) {
  bench::System system = bench::Boot(cells);
  workloads::PmakeParams params;
  params.name_seed = seed;
  workloads::PmakeWorkload pmake(system.hive.get(), params);
  pmake.Setup();
  const Time start = system.machine->Now();
  auto pids = pmake.Start();
  (void)system.hive->RunUntilDone(pids, start + 600 * hive::kSecond);

  FaultTotals totals;
  for (hive::CellId c = 0; c < system.hive->num_cells(); ++c) {
    const hive::VmStats& stats = system.hive->cell(c).vm_stats();
    totals.faults += stats.faults;
    totals.cache_hit += stats.cache_hit_faults;
    totals.remote += stats.remote_faults;
    totals.fault_ns += stats.fault_ns;
  }
  for (ProcId pid : pids) {
    const hive::CellId c = system.hive->FindProcessCell(pid);
    hive::Process* proc = system.hive->cell(c).sched().FindProcess(pid);
    if (proc != nullptr) {
      totals.makespan = std::max(totals.makespan, proc->finished_at - start);
    }
  }
  return totals;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "sec52_pmake_faults: remote faults' contribution to pmake slowdown",
      "8935 page-cache faults, 4946 remote on four cells; fault time "
      "117 -> 455 ms (cumulative across processors), ~13% of the 1->4 cell "
      "slowdown");

  const FaultTotals one = Run(1, 501);
  const FaultTotals four = Run(4, 502);

  base::Table table({"Metric", "1 cell", "4 cells", "Paper (4 cells)"});
  table.AddRow({"page faults entering the kernel", base::Table::I64(one.faults),
                base::Table::I64(four.faults), "~"});
  table.AddRow({"faults that hit in a page cache", base::Table::I64(one.cache_hit),
                base::Table::I64(four.cache_hit), "8935"});
  table.AddRow({"  of which remote", base::Table::I64(one.remote),
                base::Table::I64(four.remote), "4946"});
  table.AddRow({"cumulative time in faults", base::Table::Ms(static_cast<double>(one.fault_ns), 0),
                base::Table::Ms(static_cast<double>(four.fault_ns), 0), "117 -> 455 ms"});
  table.AddRow({"workload makespan",
                base::Table::F64(static_cast<double>(one.makespan) / 1e9, 2) + " s",
                base::Table::F64(static_cast<double>(four.makespan) / 1e9, 2) + " s", "~"});

  const double extra_fault_ms =
      static_cast<double>(four.fault_ns - one.fault_ns) / 1e6;
  const double slowdown_cpu_ms =
      static_cast<double>(four.makespan - one.makespan) / 1e6 * 4.0;
  table.AddRow({"fault share of 1->4 cell slowdown", "-",
                base::Table::F64(extra_fault_ms / slowdown_cpu_ms * 100.0, 0) + "%",
                "~13%"});
  std::printf("%s",
              table.Render("Section 5.2: page fault counts and times under pmake").c_str());
  return 0;
}
