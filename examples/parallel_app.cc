// Spanning parallel application: an ocean-style solver with one thread per
// processor and a write-shared data segment crossing every cell boundary
// (logical-level sharing + firewall grants, paper sections 4.2 and 5.2).
// Shows what the multicellular architecture costs such applications (almost
// nothing) and what happens to them when a cell fails (they die as a group,
// which the paper argues is acceptable because they span the whole machine).
//
//   $ ./examples/parallel_app

#include <cstdio>

#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/ocean.h"

using hive::kMillisecond;
using hive::kSecond;

namespace {

hive::Time Run(int cells, bool smp, bool inject_fault) {
  flash::MachineConfig config;
  config.num_nodes = 4;
  config.memory_per_node = 32ull * 1024 * 1024;
  flash::Machine machine(config, 21);
  hive::HiveOptions options;
  options.num_cells = cells;
  options.smp_mode = smp;
  options.start_wax = !smp && cells > 1;
  hive::HiveSystem hive(&machine, options);
  hive.Boot();

  workloads::OceanParams params;
  params.timesteps = 20;
  params.name_seed = 31 + static_cast<uint64_t>(cells) + (inject_fault ? 100 : 0);
  workloads::OceanWorkload ocean(&hive, params);
  ocean.Setup();
  auto pids = ocean.Start();

  if (inject_fault) {
    flash::FaultInjector injector(&machine, 5);
    injector.ScheduleNodeFailure(1, 800 * kMillisecond);
  }
  const hive::Time start = machine.Now();
  (void)hive.RunUntilDone(pids, start + 600 * kSecond);
  machine.events().RunUntil(machine.Now() + 300 * kMillisecond);

  if (inject_fault) {
    int killed = 0;
    for (hive::ProcId pid : pids) {
      const hive::CellId c = hive.FindProcessCell(pid);
      if (!hive.cell(c).alive() ||
          hive.cell(c).sched().FindProcess(pid)->state() == hive::ProcState::kKilled) {
        ++killed;
      }
    }
    std::printf("  after failing cell 1: %d of %zu threads gone (the app spans all\n"
                "  cells, so recovery kills the whole task group); %d cells survive\n",
                killed, pids.size(), static_cast<int>(hive.LiveCells().size()));
    return 0;
  }

  hive::Time finish = 0;
  for (hive::ProcId pid : pids) {
    const hive::CellId c = hive.FindProcessCell(pid);
    finish = std::max(finish, hive.cell(c).sched().FindProcess(pid)->finished_at);
  }
  // Report the remotely-writable page count the write-shared segment caused.
  std::printf("  %d-cell%s run: %.3f s; remotely writable pages at segment home: %d\n",
              cells, smp ? " (SMP baseline)" : "", static_cast<double>(finish - start) / 1e9,
              hive.cell(0).firewall_manager().RemotelyWritablePages());
  return finish - start;
}

}  // namespace

int main() {
  std::printf("== A parallel application spanning every cell ==\n\n");
  std::printf("ocean solver, 20 timesteps, one thread per processor:\n");
  const hive::Time smp = Run(1, /*smp=*/true, false);
  const hive::Time hive4 = Run(4, /*smp=*/false, false);
  std::printf("  multicellular cost: %+.1f%% (the paper reports -1%%..1%%)\n\n",
              (static_cast<double>(hive4) / static_cast<double>(smp) - 1.0) * 100.0);

  std::printf("the same application when a cell fails mid-run:\n");
  Run(4, false, /*inject_fault=*/true);
  std::printf("\nLarge spanning applications protect themselves by checkpointing\n"
              "(section 2); Hive's guarantee is that everyone else survives.\n");
  return 0;
}
