// Rolling maintenance: the paper's section 1 observation that with a
// multicellular kernel, "scheduled hardware maintenance and kernel software
// upgrades can proceed transparently to applications, one cell at a time."
//
// Takes each cell down in turn (controlled failure + diagnostics + reboot +
// reintegration) while independent services keep running on the other cells.
//
//   $ ./examples/maintenance

#include <cstdio>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/workloads/workload.h"

using hive::kMillisecond;
using hive::kSecond;

int main() {
  std::printf("== Rolling cell maintenance ==\n\n");

  flash::MachineConfig config;
  config.num_nodes = 4;
  config.memory_per_node = 32ull * 1024 * 1024;
  flash::Machine machine(config, 99);
  hive::HiveOptions options;
  options.num_cells = 4;
  options.auto_reintegrate = true;  // Diagnostics pass -> reboot + rejoin.
  hive::HiveSystem hive(&machine, options);
  hive.Boot();

  // A long-running service on each cell: periodically appends to a log file
  // homed on its own cell.
  std::vector<hive::ProcId> services;
  for (hive::CellId c = 0; c < 4; ++c) {
    hive::Ctx ctx = hive.cell(c).MakeCtx();
    const std::string log_path = "/var/log/service" + std::to_string(c);
    (void)hive.cell(c).fs().Create(ctx, log_path, {});
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("service");
    auto fd = std::make_shared<int>(-1);
    behavior->Add(workloads::OpOpen(log_path, fd));
    for (int burst = 0; burst < 40; ++burst) {
      behavior->Add(workloads::OpCompute(100 * kMillisecond));
      behavior->Add(workloads::OpWrite(fd, static_cast<uint64_t>(burst) * 512, 512,
                                       1000 + static_cast<uint64_t>(c)));
    }
    behavior->Add(workloads::OpClose(fd));
    auto pid = hive.Fork(ctx, c, std::move(behavior));
    services.push_back(*pid);
  }
  std::printf("4 long-running services started, one per cell\n\n");

  // Take cells 1..3 down one at a time, 1.2 s apart, for "maintenance".
  for (hive::CellId c = 1; c < 4; ++c) {
    machine.events().ScheduleAt(static_cast<hive::Time>(c) * 1200 * kMillisecond,
                                [&machine, c] { machine.FailNode(c); });
  }

  (void)hive.RunUntilDone(services, 60 * kSecond);
  machine.events().RunUntil(machine.Now() + 2 * kSecond);

  std::printf("timeline complete at t=%.1f s\n", static_cast<double>(machine.Now()) / 1e9);
  std::printf("recoveries run: %d (one per maintained cell)\n\n",
              hive.recovery().recoveries_run());
  for (hive::CellId c = 0; c < 4; ++c) {
    std::printf("cell %d: %s\n", c,
                hive.cell(c).alive() ? "RUNNING (rebooted and reintegrated)" : "DOWN");
  }

  // The service on cell 0 (never maintained) must have finished untouched.
  hive::Process* service0 = hive.cell(0).sched().FindProcess(services[0]);
  std::printf("\nservice on cell 0: %s\n",
              service0->state() == hive::ProcState::kExited ? "completed all 40 bursts"
                                                            : "disturbed (BUG)");
  std::printf("Applications only noticed the cells they were actually using.\n");
  return service0->state() == hive::ProcState::kExited ? 0 : 1;
}
