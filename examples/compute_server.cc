// Compute-server scenario: the paper's motivating workload (section 1).
// Multiple independent jobs run across the machine, a cell dies, and only
// the jobs that used that cell's resources are lost -- "the probability that
// an application fails is proportional to the amount of resources used by
// that application" (section 2).
//
//   $ ./examples/compute_server

#include <cstdio>

#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/flash/fault_injector.h"
#include "src/workloads/pmake.h"

using hive::kMillisecond;
using hive::kSecond;

int main() {
  std::printf("== Hive as a multiprogrammed compute server ==\n\n");

  flash::MachineConfig config;
  config.num_nodes = 4;
  config.memory_per_node = 32ull * 1024 * 1024;
  flash::Machine machine(config, 11);
  hive::HiveOptions options;
  options.num_cells = 4;
  hive::HiveSystem hive(&machine, options);
  hive.Boot();

  // A parallel make: 11 independent compile jobs, spread over the cells,
  // with cell 0 serving /tmp and the sources.
  workloads::PmakeParams params;
  params.compute_per_job = 600 * kMillisecond;
  params.name_seed = 0xC0FFEE;
  workloads::PmakeWorkload pmake(&hive, params);
  pmake.Setup();
  auto pids = pmake.Start();
  std::printf("started %d compile jobs; /tmp served by cell 0\n",
              static_cast<int>(pids.size()));

  // A board falls out mid-build.
  flash::FaultInjector injector(&machine, 3);
  injector.ScheduleNodeFailure(3, 400 * kMillisecond);
  std::printf("node 3 will fail at t=400ms (mid-build)\n\n");

  (void)hive.RunUntilDone(pids, 600 * kSecond);
  machine.events().RunUntil(machine.Now() + 500 * kMillisecond);

  int finished = 0;
  int lost = 0;
  for (size_t i = 0; i < pids.size(); ++i) {
    const hive::CellId c = hive.FindProcessCell(pids[i]);
    if (!hive.cell(c).alive()) {
      ++lost;
      std::printf("job %2zu on cell %d: LOST (its cell failed)\n", i, c);
      continue;
    }
    hive::Process* proc = hive.cell(c).sched().FindProcess(pids[i]);
    if (proc->state() == hive::ProcState::kExited) {
      ++finished;
      std::printf("job %2zu on cell %d: finished at t=%.2fs\n", i, c,
                  static_cast<double>(proc->finished_at) / 1e9);
    } else {
      std::printf("job %2zu on cell %d: %s (%s)\n", i, c,
                  proc->state() == hive::ProcState::kKilled ? "killed" : "failed",
                  proc->exit_reason.c_str());
    }
  }

  const int corrupt = pmake.ValidateOutputs();
  std::printf("\n%d jobs finished, %d lost with cell 3; %d output files corrupt\n",
              finished, lost, corrupt);
  std::printf("An SMP OS would have lost the whole build (and the machine).\n");
  return corrupt == 0 ? 0 : 1;
}
