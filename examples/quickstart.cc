// Quickstart: boot a four-cell Hive on the simulated FLASH machine, run a few
// processes, share memory across cells, inject a node failure, and watch the
// survivors keep working.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <memory>

#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/core/report.h"
#include "src/flash/fault_injector.h"
#include "src/flash/machine.h"
#include "src/workloads/workload.h"

using hive::kMillisecond;
using hive::kSecond;

int main() {
  std::printf("== Hive quickstart ==\n\n");

  // 1. A FLASH-like machine: 4 nodes, one 200 MHz processor and 32 MB each.
  flash::MachineConfig config;
  config.num_nodes = 4;
  config.memory_per_node = 32ull * 1024 * 1024;
  flash::Machine machine(config, /*seed=*/1);

  // 2. Boot Hive with one cell per node. Each cell is an independent kernel;
  //    together they present a single-system image.
  hive::HiveOptions options;
  options.num_cells = 4;
  hive::HiveSystem hive(&machine, options);
  hive.Boot();
  std::printf("booted %d cells; cell 0 owns %llu MB at physical 0x%llx\n",
              hive.num_cells(),
              static_cast<unsigned long long>(hive.cell(0).mem_size() >> 20),
              static_cast<unsigned long long>(hive.cell(0).mem_base()));

  // 3. Create a file on cell 0 and read it from cell 3: the pages are cached
  //    once at their data home and exported across the firewall boundary.
  hive::Ctx ctx0 = hive.cell(0).MakeCtx();
  const auto data = workloads::PatternData(/*seed=*/7, 64 * 1024);
  auto file = hive.cell(0).fs().Create(ctx0, "/shared/data", data);
  if (!file.ok()) {
    return 1;
  }
  hive::Ctx ctx3 = hive.cell(3).MakeCtx();
  auto handle = hive.cell(3).fs().Open(ctx3, "/shared/data");
  std::vector<uint8_t> buf(64 * 1024);
  (void)hive.cell(3).fs().Read(ctx3, *handle, 0, std::span<uint8_t>(buf));
  std::printf("cell 3 read 64 KB homed on cell 0 in %.1f us (checksum %s)\n",
              static_cast<double>(ctx3.elapsed) / 1000.0,
              workloads::Checksum(buf) == workloads::Checksum(data) ? "ok" : "BAD");

  // 4. Run compute processes on every cell.
  std::vector<hive::ProcId> pids;
  for (hive::CellId c = 0; c < 4; ++c) {
    auto behavior = std::make_unique<workloads::ScriptedBehavior>("worker");
    behavior->Add(workloads::OpCompute(300 * kMillisecond));
    hive::Ctx ctx = hive.cell(c).MakeCtx();
    auto pid = hive.Fork(ctx, c, std::move(behavior));
    pids.push_back(*pid);
    std::printf("forked pid %lld onto cell %d\n", static_cast<long long>(*pid), c);
  }

  // 5. Fail node 2 mid-run: the firewall + preemptive discard confine the
  //    damage; clock monitoring detects the failure and recovery runs.
  flash::FaultInjector injector(&machine, /*seed=*/2);
  injector.ScheduleNodeFailure(2, 100 * kMillisecond);
  std::printf("\ninjecting a hardware failure of node 2 at t=100ms...\n");

  (void)hive.RunUntilDone(pids, 5 * kSecond);
  machine.events().RunUntil(machine.Now() + 500 * kMillisecond);

  const hive::RecoveryStats& stats = hive.recovery().last_stats();
  std::printf("recovery: detected at t=%.1f ms, users resumed at t=%.1f ms\n",
              static_cast<double>(stats.detect_time) / 1e6,
              static_cast<double>(stats.barrier2_time) / 1e6);
  std::printf("pages discarded: %d, processes killed: %d\n\n", stats.pages_discarded,
              stats.processes_killed);

  for (hive::CellId c = 0; c < 4; ++c) {
    hive::Process* proc = hive.cell(c).alive()
                              ? hive.cell(c).sched().FindProcess(pids[static_cast<size_t>(c)])
                              : nullptr;
    std::printf("cell %d: %-9s  worker: %s\n", c,
                hive.cell(c).alive() ? "RUNNING" : "FAILED",
                proc == nullptr                               ? "lost with its cell"
                : proc->state() == hive::ProcState::kExited   ? "finished normally"
                : proc->state() == hive::ProcState::kKilled   ? "killed"
                                                              : "still running");
  }

  std::printf("\nThe fault was contained: only cell 2 and its worker were lost.\n");
  std::printf("%s", hive::RenderSystemReport(hive).c_str());
  return 0;
}
