// hive_serve: long-running multi-tenant soak of a Hive machine under
// continuous fault pressure, with per-request SLO accounting and graceful
// degradation (admission shedding on run-queue/heap watermarks).
//
// Tenants submit a steady request mix (file reads/writes, page-fault bursts,
// metadata walks, fork storms) for a 60-second simulated window while a
// background fault plan rotates through all seven campaign fault families,
// one episode at a time. The run judges SLO oracles -- per-cell availability
// floor, end-to-end latency p999 bound, per-episode recovery-time bound, and
// no hung requests -- and emits machine-readable BENCH_serve.json (schema
// "hive-serve-v1") plus human-readable tables. The summary fingerprint is a
// function of --seed alone: byte-identical for every --sim-threads value.
//
// Exit codes: 0 = SLOs met, 1 = I/O failure writing the JSON, 2 = usage
// error, 3 = SLO violations (the --bug= sensitivity modes must exit 3).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/histogram.h"
#include "src/campaign/scenario.h"
#include "src/serve/serve.h"

namespace {

struct Args {
  uint64_t seed = 1;
  int cells = 4;
  int tenants = 8;
  int sim_threads = 1;
  uint64_t duration_s = 60;
  std::string bug;
  bool smoke = false;
  std::string out = "BENCH_serve.json";
};

void Usage() {
  std::fprintf(stderr,
               "usage: hive_serve [--seed=N] [--cells=N] [--tenants=N]\n"
               "                  [--sim-threads=N] [--duration-s=N] [--bug=NAME]\n"
               "                  [--out=PATH] [--smoke]\n"
               "\n"
               "  --seed=N        soak master seed (default 1); the summary\n"
               "                  fingerprint is a function of the seed alone\n"
               "  --cells=N       cells in the machine, 2..16 (default 4)\n"
               "  --tenants=N     tenant request streams (default 8)\n"
               "  --sim-threads=N parallel-simulation threads (default 1);\n"
               "                  the fingerprint is identical for every value\n"
               "  --duration-s=N  simulated submission window in seconds (default 60)\n"
               "  --bug=NAME      seeded sensitivity bug: no_shed | slow_recovery;\n"
               "                  each must trip an SLO oracle (exit 3)\n"
               "  --out=PATH      where to write the JSON report (default BENCH_serve.json)\n"
               "  --smoke         lighter request mix for CI; same 60 s window and\n"
               "                  the same full fault rotation\n");
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseU64(arg + 7, &value)) {
      args->seed = value;
    } else if (std::strncmp(arg, "--cells=", 8) == 0 && ParseU64(arg + 8, &value) &&
               value >= 2 && value <= 16) {
      args->cells = static_cast<int>(value);
    } else if (std::strncmp(arg, "--tenants=", 10) == 0 && ParseU64(arg + 10, &value) &&
               value >= 1 && value <= 256) {
      args->tenants = static_cast<int>(value);
    } else if (std::strncmp(arg, "--sim-threads=", 14) == 0 &&
               ParseU64(arg + 14, &value) && value >= 1 && value <= 64) {
      args->sim_threads = static_cast<int>(value);
    } else if (std::strncmp(arg, "--duration-s=", 13) == 0 &&
               ParseU64(arg + 13, &value) && value >= 5 && value <= 3600) {
      args->duration_s = value;
    } else if (std::strncmp(arg, "--bug=", 6) == 0) {
      args->bug = arg + 6;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args->out = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args->smoke = true;
    } else {
      std::fprintf(stderr, "hive_serve: bad argument '%s'\n", arg);
      return false;
    }
  }
  if (!args->bug.empty() && args->bug != "no_shed" && args->bug != "slow_recovery") {
    std::fprintf(stderr, "hive_serve: unknown --bug '%s'\n", args->bug.c_str());
    return false;
  }
  return true;
}

uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

void WriteJsonString(std::FILE* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (c == '\n') {
      std::fputs("\\n", out);
    } else {
      std::fputc(c, out);
    }
  }
}

bool WriteJson(const Args& args, const serve::ServeResult& result, uint64_t peak_rss) {
  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "hive_serve: cannot write %s\n", args.out.c_str());
    return false;
  }
  const base::Histogram& lat = result.latency;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"%s\",\n", serve::kServeSchema);
  std::fprintf(out, "  \"mode\": \"%s\",\n", args.smoke ? "smoke" : "full");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", args.seed);
  std::fprintf(out, "  \"cells\": %d,\n", args.cells);
  std::fprintf(out, "  \"tenants\": %d,\n", result.options.tenants);
  std::fprintf(out, "  \"sim_threads\": %d,\n", args.sim_threads);
  std::fprintf(out, "  \"duration_s\": %" PRIu64 ",\n", args.duration_s);
  std::fprintf(out, "  \"bug\": \"%s\",\n", args.bug.c_str());
  std::fprintf(out, "  \"requests\": {\n");
  std::fprintf(out,
               "    \"submitted\": %" PRIu64 ", \"completed\": %" PRIu64
               ", \"shed\": %" PRIu64 ",\n",
               result.submitted, result.completed, result.shed);
  std::fprintf(out,
               "    \"unroutable\": %" PRIu64 ", \"lost\": %" PRIu64
               ", \"hung\": %" PRIu64 "\n",
               result.unroutable, result.lost, result.hung);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"latency_ns\": {\n");
  std::fprintf(out,
               "    \"count\": %" PRIu64 ", \"p50\": %" PRId64 ", \"p99\": %" PRId64
               ", \"p999\": %" PRId64 ",\n",
               static_cast<uint64_t>(lat.count()),
               lat.empty() ? 0 : lat.Percentile(50.0),
               lat.empty() ? 0 : lat.Percentile(99.0),
               lat.empty() ? 0 : lat.Percentile(99.9));
  std::fprintf(out, "    \"max\": %" PRId64 ", \"mean\": %.1f\n",
               lat.empty() ? 0 : lat.max(), lat.empty() ? 0.0 : lat.mean());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"availability\": {\n");
  std::fprintf(out, "    \"min\": %.6f,\n", result.availability_min);
  std::fprintf(out, "    \"per_cell\": [");
  for (size_t i = 0; i < result.cells.size(); ++i) {
    std::fprintf(out, "%s%.6f", i > 0 ? ", " : "", result.cells[i].availability);
  }
  std::fprintf(out, "]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"faults\": {\n");
  std::fprintf(out,
               "    \"episodes\": %zu, \"landed\": %" PRIu64
               ", \"requests_per_fault\": %.1f,\n",
               result.episodes.size(), result.episodes_landed,
               result.requests_per_fault);
  std::fprintf(out, "    \"per_family\": {");
  for (size_t i = 0; i < result.per_family.size(); ++i) {
    std::fprintf(out, "%s\"%s\": %" PRIu64, i > 0 ? ", " : "",
                 campaign::FaultKindName(campaign::kAllFaultKinds[i]),
                 result.per_family[i]);
  }
  std::fprintf(out, "}\n");
  std::fprintf(out, "  },\n");
  base::Histogram recovery;
  for (hive::Time d : result.recovery_durations) {
    recovery.Record(static_cast<int64_t>(d));
  }
  std::fprintf(out, "  \"recovery\": {\n");
  std::fprintf(out,
               "    \"episodes\": %zu, \"recoveries_run\": %d, \"reintegrations\": %d,\n",
               result.recovery_durations.size(), result.recoveries_run,
               result.reintegrations);
  std::fprintf(out, "    \"duration_ms_p50\": %.3f, \"duration_ms_max\": %.3f\n",
               recovery.empty() ? 0.0 : recovery.Percentile(50.0) / 1e6,
               recovery.empty() ? 0.0 : recovery.max() / 1e6);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"oracles\": {\n");
  std::fprintf(out, "    \"ok\": %s,\n", result.ok() ? "true" : "false");
  std::fprintf(out, "    \"violations\": [");
  for (size_t i = 0; i < result.violations.size(); ++i) {
    std::fprintf(out, "%s\"", i > 0 ? ", " : "");
    WriteJsonString(out, result.violations[i]);
    std::fprintf(out, "\"");
  }
  std::fprintf(out, "]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fingerprint\": \"%016" PRIx64 "\",\n", result.fingerprint);
  std::fprintf(out, "  \"peak_rss_bytes\": %" PRIu64 "\n", peak_rss);
  std::fprintf(out, "}\n");
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  std::printf("hive_serve: seed=%" PRIu64 " cells=%d tenants=%d sim_threads=%d "
              "duration=%" PRIu64 "s%s%s%s\n",
              args.seed, args.cells, args.tenants, args.sim_threads, args.duration_s,
              args.smoke ? " (smoke)" : "", args.bug.empty() ? "" : " bug=",
              args.bug.c_str());

  serve::ServeOptions options;
  options.seed = args.seed;
  options.num_cells = args.cells;
  options.tenants = args.tenants;
  options.sim_threads = args.sim_threads;
  options.duration_ns = static_cast<hive::Time>(args.duration_s) * hive::kSecond;
  options.bug = args.bug;
  options.smoke = args.smoke;

  const serve::ServeResult result = serve::RunSoak(options);
  const uint64_t peak_rss = PeakRssBytes();

  std::printf("%s", result.report.c_str());
  std::printf("fingerprint: %016" PRIx64 "   peak_rss: %" PRIu64 " bytes\n",
              result.fingerprint, peak_rss);

  if (!WriteJson(args, result, peak_rss)) {
    return 1;
  }
  std::printf("wrote %s\n", args.out.c_str());

  if (!result.ok()) {
    std::printf("SLO VIOLATIONS (%zu):\n", result.violations.size());
    for (const std::string& violation : result.violations) {
      std::printf("  - %s\n", violation.c_str());
    }
    return 3;
  }
  std::printf("all SLOs met\n");
  return 0;
}
