// hive_bench: wall-clock throughput harness for the simulator hot paths.
//
// The fault-campaign engine drives thousands of isolated simulator runs per
// nightly sweep, so simulator throughput (scenarios/sec, events/sec) is the
// perf trajectory every PR is judged against. This harness times:
//
//   1. event-queue microbenchmarks (schedule+run, schedule+cancel churn),
//   2. single-scenario simulation with per-subsystem attribution (which
//      kernel-model subsystem burns the host cycles per simulated event),
//   3. the same scenarios under the parallel simulation core (--sim-threads),
//   4. multi-worker campaign throughput (the nightly-sweep shape),
//
// and emits machine-readable BENCH_sim.json (schema "hive-bench-v2") plus a
// human-readable table. Per-subsystem `ops` counts are deterministic (a pure
// function of the simulation); `ns` figures are host wall time and only
// meaningful as ratios. CI validates the JSON shape (`--smoke`) and gates the
// single-scenario ns/event against ci/bench_baseline.json; cross-PR
// trajectories are judged by comparing committed BENCH_sim.json snapshots.
//
// Exit codes: 0 = ok, 1 = I/O failure writing the JSON, 2 = usage error.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/base/sim_profile.h"
#include "src/campaign/campaign.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "src/flash/event_queue.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Args {
  uint64_t seed = 1;
  int workers = 4;
  int sim_threads = 4;           // Parallel-sim stage thread count.
  uint64_t scenarios = 64;       // Campaign-stage scenario count.
  uint64_t serial_scenarios = 8; // Single-scenario stage count.
  double eq_seconds = 0.5;       // Wall-time budget per event-queue stage.
  bool smoke = false;
  std::string out = "BENCH_sim.json";
};

void Usage() {
  std::fprintf(stderr,
               "usage: hive_bench [--seed=N] [--workers=N] [--scenarios=N]\n"
               "                  [--sim-threads=N] [--out=PATH] [--smoke]\n"
               "\n"
               "  --seed=N        campaign master seed for the scenario stages (default 1)\n"
               "  --workers=N     worker threads for the campaign stage (default 4)\n"
               "  --scenarios=N   scenarios in the campaign stage (default 64)\n"
               "  --sim-threads=N threads for the parallel-sim stage (default 4);\n"
               "                  outcomes are identical for every value, only the\n"
               "                  wall clock moves\n"
               "  --out=PATH      where to write the JSON report (default BENCH_sim.json)\n"
               "  --smoke         tiny sizes for CI schema validation (seconds, not minutes)\n");
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseU64(arg + 7, &value)) {
      args->seed = value;
    } else if (std::strncmp(arg, "--workers=", 10) == 0 && ParseU64(arg + 10, &value) &&
               value >= 1 && value <= 256) {
      args->workers = static_cast<int>(value);
    } else if (std::strncmp(arg, "--sim-threads=", 14) == 0 &&
               ParseU64(arg + 14, &value) && value >= 1 && value <= 64) {
      args->sim_threads = static_cast<int>(value);
    } else if (std::strncmp(arg, "--scenarios=", 12) == 0 && ParseU64(arg + 12, &value) &&
               value >= 1) {
      args->scenarios = value;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args->out = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args->smoke = true;
    } else {
      std::fprintf(stderr, "hive_bench: bad argument '%s'\n", arg);
      return false;
    }
  }
  if (args->smoke) {
    args->scenarios = 4;
    args->serial_scenarios = 2;
    args->eq_seconds = 0.02;
  }
  return true;
}

struct StageResult {
  uint64_t items = 0;      // Events fired / scenarios completed.
  double wall_seconds = 0;

  double PerSec() const { return wall_seconds > 0 ? items / wall_seconds : 0; }
  double NsPerItem() const { return items > 0 ? wall_seconds * 1e9 / items : 0; }
};

// Best-of-N repetitions: microbenchmark numbers on a shared machine are
// throttled by scheduler noise, so the least-disturbed repetition is the
// estimator closest to the code's actual cost.
template <typename Stage>
StageResult BestOf(int reps, Stage&& stage) {
  StageResult best;
  for (int i = 0; i < reps; ++i) {
    const StageResult attempt = stage();
    if (attempt.PerSec() > best.PerSec()) {
      best = attempt;
    }
  }
  return best;
}

// --- Stage 1a: schedule+run throughput. ---
// Batches of events with captures shaped like the simulator's real callbacks
// (a couple of pointers plus an index), drained in timestamp order.
StageResult BenchEventQueueScheduleRun(double budget_seconds) {
  constexpr int kBatch = 4096;
  StageResult result;
  uint64_t sink = 0;
  // One long-lived queue, filled and drained per round: steady-state
  // throughput of the schedule/sift/dispatch cycle, the shape of a scenario
  // run (one queue, millions of events), not of queue construction.
  flash::EventQueue queue;
  const Clock::time_point start = Clock::now();
  while (SecondsSince(start) < budget_seconds) {
    uint64_t* sink_ptr = &sink;
    const flash::EventQueue* queue_ptr = &queue;
    const flash::Time base = queue.Now();
    for (int i = 0; i < kBatch; ++i) {
      // Timestamps interleave (i % 16 spreads arrival order) so the heap does
      // real sifting instead of append-only work.
      queue.ScheduleAt(base + (i % 16) * 1000 + i, [sink_ptr, queue_ptr, i] {
        *sink_ptr += static_cast<uint64_t>(i) + queue_ptr->pending();
      });
    }
    result.items += queue.Run();
  }
  result.wall_seconds = SecondsSince(start);
  if (sink == 0xdead) {
    std::printf("impossible\n");  // Keep the side effect observable.
  }
  return result;
}

// --- Stage 1b: schedule+cancel churn. ---
// Two schedules and one cancellation per iteration, with periodic drains: the
// shape of timer-heavy kernel paths (clock ticks, RPC timeouts) where most
// scheduled events never fire.
StageResult BenchEventQueueCancelChurn(double budget_seconds) {
  constexpr int kBatch = 2048;
  StageResult result;
  uint64_t sink = 0;
  flash::EventQueue queue;  // Long-lived: steady-state churn, as above.
  const Clock::time_point start = Clock::now();
  while (SecondsSince(start) < budget_seconds) {
    uint64_t* sink_ptr = &sink;
    const flash::Time base = queue.Now();
    for (int i = 0; i < kBatch; ++i) {
      queue.ScheduleAt(base + i + 1,
                       [sink_ptr, i] { *sink_ptr += static_cast<uint64_t>(i); });
      const flash::EventId doomed = queue.ScheduleAt(
          base + i + 2, [sink_ptr, i] { *sink_ptr -= static_cast<uint64_t>(i); });
      queue.Cancel(doomed);
    }
    result.items += queue.Run();
    // Count cancelled schedules too: the stage measures schedule+cancel ops.
    result.items += kBatch;
  }
  result.wall_seconds = SecondsSince(start);
  if (sink == 0xdead) {
    std::printf("impossible\n");
  }
  return result;
}

// --- Stages 2+3: scenario simulation (with per-subsystem attribution). ---
struct ScenarioStage {
  StageResult scenarios;
  uint64_t sim_events = 0;
  base::SimProfile profile;  // Merged across the stage's scenarios.

  double EventsPerSec() const {
    return scenarios.wall_seconds > 0 ? sim_events / scenarios.wall_seconds : 0;
  }
  double NsPerEvent() const {
    return sim_events > 0 ? scenarios.wall_seconds * 1e9 / sim_events : 0;
  }
};

ScenarioStage BenchSerialScenarios(uint64_t seed, uint64_t count,
                                   int sim_threads) {
  ScenarioStage stage;
  campaign::RunOptions run;
  run.sim_threads = sim_threads;
  const Clock::time_point start = Clock::now();
  for (uint64_t index = 0; index < count; ++index) {
    const campaign::ScenarioSpec spec = campaign::GenerateScenario(seed, index);
    // One profile activation per scenario: attribution covers exactly the
    // simulation (not spec generation), and the per-scenario reset path is
    // the one sim_profile_test pins.
    base::SimProfile profile;
    base::SimProfile::SetActive(&profile);
    profile.Begin();
    const campaign::ScenarioResult result = campaign::RunScenario(spec, run);
    profile.End();
    base::SimProfile::SetActive(nullptr);
    stage.profile.Merge(profile);
    stage.sim_events += result.events_run;
    ++stage.scenarios.items;
  }
  stage.scenarios.wall_seconds = SecondsSince(start);
  return stage;
}

// --- Stage 4: multi-worker campaign throughput. ---
ScenarioStage BenchCampaign(uint64_t seed, uint64_t scenarios, int workers) {
  ScenarioStage stage;
  campaign::CampaignOptions options;
  options.master_seed = seed;
  options.num_scenarios = scenarios;
  options.workers = workers;
  options.minimize = false;
  uint64_t sim_events = 0;
  options.on_result = [&sim_events](const campaign::ScenarioResult& result) {
    sim_events += result.events_run;  // Invoked under the campaign lock.
  };
  const Clock::time_point start = Clock::now();
  const campaign::CampaignReport report = campaign::RunCampaign(options);
  stage.scenarios.wall_seconds = SecondsSince(start);
  stage.scenarios.items = report.scenarios_run;
  stage.sim_events = sim_events;
  return stage;
}

// Peak RSS in bytes from /proc/self/status (0 when unavailable).
uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

void WriteScenarioStage(std::FILE* out, const ScenarioStage& stage,
                        bool with_subsystems) {
  std::fprintf(out,
               "    \"scenarios\": %" PRIu64 ", \"wall_seconds\": %.6f, "
               "\"scenarios_per_sec\": %.3f,\n",
               stage.scenarios.items, stage.scenarios.wall_seconds,
               stage.scenarios.PerSec());
  std::fprintf(out,
               "    \"sim_events\": %" PRIu64 ", \"events_per_sec\": %.0f, "
               "\"ns_per_event\": %.2f%s\n",
               stage.sim_events, stage.EventsPerSec(), stage.NsPerEvent(),
               with_subsystems ? "," : "");
  if (!with_subsystems) {
    return;
  }
  // Per-subsystem attribution: exclusive host ns, scope-entry ops, and the
  // share of the stage's attributed wall time. `ops` is deterministic; `ns`
  // is measurement.
  const uint64_t total_ns = stage.profile.total_ns();
  std::fprintf(out, "    \"subsystems\": {\n");
  for (int s = 0; s < base::kSimSubsystemCount; ++s) {
    const auto subsystem = static_cast<base::SimSubsystem>(s);
    const uint64_t ns = stage.profile.ns(subsystem);
    const uint64_t ops = stage.profile.ops(subsystem);
    std::fprintf(out,
                 "      \"%.*s\": {\"ns\": %" PRIu64 ", \"ops\": %" PRIu64
                 ", \"ns_per_op\": %.2f, \"share\": %.4f}%s\n",
                 static_cast<int>(base::SimSubsystemName(subsystem).size()),
                 base::SimSubsystemName(subsystem).data(), ns, ops,
                 ops > 0 ? static_cast<double>(ns) / static_cast<double>(ops) : 0.0,
                 total_ns > 0 ? static_cast<double>(ns) / static_cast<double>(total_ns)
                              : 0.0,
                 s + 1 < base::kSimSubsystemCount ? "," : "");
  }
  std::fprintf(out, "    }\n");
}

bool WriteJson(const Args& args, const StageResult& eq_run, const StageResult& eq_churn,
               const ScenarioStage& serial, const ScenarioStage& parallel_sim,
               const ScenarioStage& campaign_stage, uint64_t peak_rss) {
  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "hive_bench: cannot write %s\n", args.out.c_str());
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"hive-bench-v2\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", args.smoke ? "smoke" : "full");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", args.seed);
  std::fprintf(out, "  \"workers\": %d,\n", args.workers);
  std::fprintf(out, "  \"sim_threads\": %d,\n", args.sim_threads);
  std::fprintf(out, "  \"event_queue\": {\n");
  std::fprintf(out,
               "    \"schedule_run\": {\"events\": %" PRIu64
               ", \"wall_seconds\": %.6f, \"events_per_sec\": %.0f, "
               "\"ns_per_event\": %.2f},\n",
               eq_run.items, eq_run.wall_seconds, eq_run.PerSec(), eq_run.NsPerItem());
  std::fprintf(out,
               "    \"cancel_churn\": {\"ops\": %" PRIu64
               ", \"wall_seconds\": %.6f, \"ops_per_sec\": %.0f, "
               "\"ns_per_op\": %.2f}\n",
               eq_churn.items, eq_churn.wall_seconds, eq_churn.PerSec(),
               eq_churn.NsPerItem());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"single_scenario\": {\n");
  WriteScenarioStage(out, serial, /*with_subsystems=*/true);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"parallel_sim\": {\n");
  std::fprintf(out, "    \"sim_threads\": %d,\n", args.sim_threads);
  WriteScenarioStage(out, parallel_sim, /*with_subsystems=*/false);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"campaign\": {\n");
  WriteScenarioStage(out, campaign_stage, /*with_subsystems=*/false);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"peak_rss_bytes\": %" PRIu64 "\n", peak_rss);
  std::fprintf(out, "}\n");
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  std::printf("hive_bench: seed=%" PRIu64 " workers=%d sim_threads=%d scenarios=%"
              PRIu64 "%s\n",
              args.seed, args.workers, args.sim_threads, args.scenarios,
              args.smoke ? " (smoke)" : "");

  const StageResult eq_run =
      BestOf(3, [&] { return BenchEventQueueScheduleRun(args.eq_seconds); });
  const StageResult eq_churn =
      BestOf(3, [&] { return BenchEventQueueCancelChurn(args.eq_seconds); });
  const ScenarioStage serial =
      BenchSerialScenarios(args.seed, args.serial_scenarios, /*sim_threads=*/1);
  const ScenarioStage parallel_sim =
      BenchSerialScenarios(args.seed, args.serial_scenarios, args.sim_threads);
  const ScenarioStage campaign_stage =
      BenchCampaign(args.seed, args.scenarios, args.workers);
  const uint64_t peak_rss = PeakRssBytes();

  std::printf("\n%-24s %14s %14s %12s\n", "stage", "items", "items/sec", "ns/item");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "eq/schedule_run",
              eq_run.items, eq_run.PerSec(), eq_run.NsPerItem());
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "eq/cancel_churn",
              eq_churn.items, eq_churn.PerSec(), eq_churn.NsPerItem());
  std::printf("%-24s %14" PRIu64 " %14.3f %12s\n", "scenario/serial",
              serial.scenarios.items, serial.scenarios.PerSec(), "-");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "scenario/serial-events",
              serial.sim_events, serial.EventsPerSec(), serial.NsPerEvent());
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "scenario/parallel-sim",
              parallel_sim.sim_events, parallel_sim.EventsPerSec(),
              parallel_sim.NsPerEvent());
  std::printf("%-24s %14" PRIu64 " %14.3f %12s\n", "campaign/parallel",
              campaign_stage.scenarios.items, campaign_stage.scenarios.PerSec(), "-");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "campaign/parallel-events",
              campaign_stage.sim_events, campaign_stage.EventsPerSec(),
              campaign_stage.NsPerEvent());
  std::printf("%-24s %14" PRIu64 " %14s %12s\n", "peak_rss_bytes", peak_rss, "-", "-");

  const uint64_t total_ns = serial.profile.total_ns();
  std::printf("\n%-24s %14s %14s %8s\n", "subsystem (serial)", "ops", "ns/op", "share");
  for (int s = 0; s < base::kSimSubsystemCount; ++s) {
    const auto subsystem = static_cast<base::SimSubsystem>(s);
    const uint64_t ns = serial.profile.ns(subsystem);
    const uint64_t ops = serial.profile.ops(subsystem);
    std::printf("%-24.*s %14" PRIu64 " %14.2f %7.1f%%\n",
                static_cast<int>(base::SimSubsystemName(subsystem).size()),
                base::SimSubsystemName(subsystem).data(), ops,
                ops > 0 ? static_cast<double>(ns) / static_cast<double>(ops) : 0.0,
                total_ns > 0 ? 100.0 * static_cast<double>(ns) /
                                   static_cast<double>(total_ns)
                             : 0.0);
  }

  if (!WriteJson(args, eq_run, eq_churn, serial, parallel_sim, campaign_stage,
                 peak_rss)) {
    return 1;
  }
  std::printf("\nwrote %s\n", args.out.c_str());
  return 0;
}
