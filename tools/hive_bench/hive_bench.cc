// hive_bench: wall-clock throughput harness for the simulator hot paths.
//
// The fault-campaign engine drives thousands of isolated simulator runs per
// nightly sweep, so simulator throughput (scenarios/sec, events/sec) is the
// perf trajectory every PR is judged against. This harness times:
//
//   1. event-queue microbenchmarks (schedule+run, schedule+cancel churn),
//   2. single-scenario simulation (one campaign scenario per run, serial),
//   3. multi-worker campaign throughput (the nightly-sweep shape),
//
// and emits machine-readable BENCH_sim.json (schema "hive-bench-v1") plus a
// human-readable table. Wall-clock numbers are informational -- CI only
// validates that the JSON is well-formed (`--smoke`); regressions are judged
// by comparing committed BENCH_sim.json snapshots across PRs.
//
// Exit codes: 0 = ok, 1 = I/O failure writing the JSON, 2 = usage error.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/campaign/runner.h"
#include "src/campaign/scenario.h"
#include "src/flash/event_queue.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Args {
  uint64_t seed = 1;
  int workers = 4;
  uint64_t scenarios = 64;       // Campaign-stage scenario count.
  uint64_t serial_scenarios = 8; // Single-scenario stage count.
  double eq_seconds = 0.5;       // Wall-time budget per event-queue stage.
  bool smoke = false;
  std::string out = "BENCH_sim.json";
};

void Usage() {
  std::fprintf(stderr,
               "usage: hive_bench [--seed=N] [--workers=N] [--scenarios=N]\n"
               "                  [--out=PATH] [--smoke]\n"
               "\n"
               "  --seed=N      campaign master seed for the scenario stages (default 1)\n"
               "  --workers=N   worker threads for the campaign stage (default 4)\n"
               "  --scenarios=N scenarios in the campaign stage (default 64)\n"
               "  --out=PATH    where to write the JSON report (default BENCH_sim.json)\n"
               "  --smoke       tiny sizes for CI schema validation (seconds, not minutes)\n");
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseU64(arg + 7, &value)) {
      args->seed = value;
    } else if (std::strncmp(arg, "--workers=", 10) == 0 && ParseU64(arg + 10, &value) &&
               value >= 1 && value <= 256) {
      args->workers = static_cast<int>(value);
    } else if (std::strncmp(arg, "--scenarios=", 12) == 0 && ParseU64(arg + 12, &value) &&
               value >= 1) {
      args->scenarios = value;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      args->out = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      args->smoke = true;
    } else {
      std::fprintf(stderr, "hive_bench: bad argument '%s'\n", arg);
      return false;
    }
  }
  if (args->smoke) {
    args->scenarios = 4;
    args->serial_scenarios = 2;
    args->eq_seconds = 0.02;
  }
  return true;
}

struct StageResult {
  uint64_t items = 0;      // Events fired / scenarios completed.
  double wall_seconds = 0;

  double PerSec() const { return wall_seconds > 0 ? items / wall_seconds : 0; }
  double NsPerItem() const { return items > 0 ? wall_seconds * 1e9 / items : 0; }
};

// Best-of-N repetitions: microbenchmark numbers on a shared machine are
// throttled by scheduler noise, so the least-disturbed repetition is the
// estimator closest to the code's actual cost.
template <typename Stage>
StageResult BestOf(int reps, Stage&& stage) {
  StageResult best;
  for (int i = 0; i < reps; ++i) {
    const StageResult attempt = stage();
    if (attempt.PerSec() > best.PerSec()) {
      best = attempt;
    }
  }
  return best;
}

// --- Stage 1a: schedule+run throughput. ---
// Batches of events with captures shaped like the simulator's real callbacks
// (a couple of pointers plus an index), drained in timestamp order.
StageResult BenchEventQueueScheduleRun(double budget_seconds) {
  constexpr int kBatch = 4096;
  StageResult result;
  uint64_t sink = 0;
  // One long-lived queue, filled and drained per round: steady-state
  // throughput of the schedule/sift/dispatch cycle, the shape of a scenario
  // run (one queue, millions of events), not of queue construction.
  flash::EventQueue queue;
  const Clock::time_point start = Clock::now();
  while (SecondsSince(start) < budget_seconds) {
    uint64_t* sink_ptr = &sink;
    const flash::EventQueue* queue_ptr = &queue;
    const flash::Time base = queue.Now();
    for (int i = 0; i < kBatch; ++i) {
      // Timestamps interleave (i % 16 spreads arrival order) so the heap does
      // real sifting instead of append-only work.
      queue.ScheduleAt(base + (i % 16) * 1000 + i, [sink_ptr, queue_ptr, i] {
        *sink_ptr += static_cast<uint64_t>(i) + queue_ptr->pending();
      });
    }
    result.items += queue.Run();
  }
  result.wall_seconds = SecondsSince(start);
  if (sink == 0xdead) {
    std::printf("impossible\n");  // Keep the side effect observable.
  }
  return result;
}

// --- Stage 1b: schedule+cancel churn. ---
// Two schedules and one cancellation per iteration, with periodic drains: the
// shape of timer-heavy kernel paths (clock ticks, RPC timeouts) where most
// scheduled events never fire.
StageResult BenchEventQueueCancelChurn(double budget_seconds) {
  constexpr int kBatch = 2048;
  StageResult result;
  uint64_t sink = 0;
  flash::EventQueue queue;  // Long-lived: steady-state churn, as above.
  const Clock::time_point start = Clock::now();
  while (SecondsSince(start) < budget_seconds) {
    uint64_t* sink_ptr = &sink;
    const flash::Time base = queue.Now();
    for (int i = 0; i < kBatch; ++i) {
      queue.ScheduleAt(base + i + 1,
                       [sink_ptr, i] { *sink_ptr += static_cast<uint64_t>(i); });
      const flash::EventId doomed = queue.ScheduleAt(
          base + i + 2, [sink_ptr, i] { *sink_ptr -= static_cast<uint64_t>(i); });
      queue.Cancel(doomed);
    }
    result.items += queue.Run();
    // Count cancelled schedules too: the stage measures schedule+cancel ops.
    result.items += kBatch;
  }
  result.wall_seconds = SecondsSince(start);
  if (sink == 0xdead) {
    std::printf("impossible\n");
  }
  return result;
}

// --- Stage 2: serial single-scenario simulation. ---
struct ScenarioStage {
  StageResult scenarios;
  uint64_t sim_events = 0;

  double EventsPerSec() const {
    return scenarios.wall_seconds > 0 ? sim_events / scenarios.wall_seconds : 0;
  }
  double NsPerEvent() const {
    return sim_events > 0 ? scenarios.wall_seconds * 1e9 / sim_events : 0;
  }
};

ScenarioStage BenchSerialScenarios(uint64_t seed, uint64_t count) {
  ScenarioStage stage;
  const Clock::time_point start = Clock::now();
  for (uint64_t index = 0; index < count; ++index) {
    const campaign::ScenarioSpec spec = campaign::GenerateScenario(seed, index);
    const campaign::ScenarioResult result = campaign::RunScenario(spec);
    stage.sim_events += result.events_run;
    ++stage.scenarios.items;
  }
  stage.scenarios.wall_seconds = SecondsSince(start);
  return stage;
}

// --- Stage 3: multi-worker campaign throughput. ---
ScenarioStage BenchCampaign(uint64_t seed, uint64_t scenarios, int workers) {
  ScenarioStage stage;
  campaign::CampaignOptions options;
  options.master_seed = seed;
  options.num_scenarios = scenarios;
  options.workers = workers;
  options.minimize = false;
  uint64_t sim_events = 0;
  options.on_result = [&sim_events](const campaign::ScenarioResult& result) {
    sim_events += result.events_run;  // Invoked under the campaign lock.
  };
  const Clock::time_point start = Clock::now();
  const campaign::CampaignReport report = campaign::RunCampaign(options);
  stage.scenarios.wall_seconds = SecondsSince(start);
  stage.scenarios.items = report.scenarios_run;
  stage.sim_events = sim_events;
  return stage;
}

// Peak RSS in bytes from /proc/self/status (0 when unavailable).
uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

bool WriteJson(const Args& args, const StageResult& eq_run, const StageResult& eq_churn,
               const ScenarioStage& serial, const ScenarioStage& parallel,
               uint64_t peak_rss) {
  std::FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "hive_bench: cannot write %s\n", args.out.c_str());
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"hive-bench-v1\",\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", args.smoke ? "smoke" : "full");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", args.seed);
  std::fprintf(out, "  \"workers\": %d,\n", args.workers);
  std::fprintf(out, "  \"event_queue\": {\n");
  std::fprintf(out,
               "    \"schedule_run\": {\"events\": %" PRIu64
               ", \"wall_seconds\": %.6f, \"events_per_sec\": %.0f, "
               "\"ns_per_event\": %.2f},\n",
               eq_run.items, eq_run.wall_seconds, eq_run.PerSec(), eq_run.NsPerItem());
  std::fprintf(out,
               "    \"cancel_churn\": {\"ops\": %" PRIu64
               ", \"wall_seconds\": %.6f, \"ops_per_sec\": %.0f, "
               "\"ns_per_op\": %.2f}\n",
               eq_churn.items, eq_churn.wall_seconds, eq_churn.PerSec(),
               eq_churn.NsPerItem());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"single_scenario\": {\n");
  std::fprintf(out,
               "    \"scenarios\": %" PRIu64 ", \"wall_seconds\": %.6f, "
               "\"scenarios_per_sec\": %.3f,\n",
               serial.scenarios.items, serial.scenarios.wall_seconds,
               serial.scenarios.PerSec());
  std::fprintf(out,
               "    \"sim_events\": %" PRIu64 ", \"events_per_sec\": %.0f, "
               "\"ns_per_event\": %.2f\n",
               serial.sim_events, serial.EventsPerSec(), serial.NsPerEvent());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"campaign\": {\n");
  std::fprintf(out,
               "    \"scenarios\": %" PRIu64 ", \"wall_seconds\": %.6f, "
               "\"scenarios_per_sec\": %.3f,\n",
               parallel.scenarios.items, parallel.scenarios.wall_seconds,
               parallel.scenarios.PerSec());
  std::fprintf(out,
               "    \"sim_events\": %" PRIu64 ", \"events_per_sec\": %.0f, "
               "\"ns_per_event\": %.2f\n",
               parallel.sim_events, parallel.EventsPerSec(), parallel.NsPerEvent());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"peak_rss_bytes\": %" PRIu64 ",\n", peak_rss);
  // Headline trio: the event-queue microbenchmark is the events/sec and
  // ns/event trajectory; the multi-worker campaign is the scenarios/sec
  // trajectory (the nightly-sweep shape).
  std::fprintf(out, "  \"events_per_sec\": %.0f,\n", eq_run.PerSec());
  std::fprintf(out, "  \"ns_per_event\": %.2f,\n", eq_run.NsPerItem());
  std::fprintf(out, "  \"scenarios_per_sec\": %.3f\n", parallel.scenarios.PerSec());
  std::fprintf(out, "}\n");
  const bool ok = std::fclose(out) == 0;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  std::printf("hive_bench: seed=%" PRIu64 " workers=%d scenarios=%" PRIu64 "%s\n",
              args.seed, args.workers, args.scenarios, args.smoke ? " (smoke)" : "");

  const StageResult eq_run =
      BestOf(3, [&] { return BenchEventQueueScheduleRun(args.eq_seconds); });
  const StageResult eq_churn =
      BestOf(3, [&] { return BenchEventQueueCancelChurn(args.eq_seconds); });
  const ScenarioStage serial = BenchSerialScenarios(args.seed, args.serial_scenarios);
  const ScenarioStage parallel = BenchCampaign(args.seed, args.scenarios, args.workers);
  const uint64_t peak_rss = PeakRssBytes();

  std::printf("\n%-24s %14s %14s %12s\n", "stage", "items", "items/sec", "ns/item");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "eq/schedule_run",
              eq_run.items, eq_run.PerSec(), eq_run.NsPerItem());
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "eq/cancel_churn",
              eq_churn.items, eq_churn.PerSec(), eq_churn.NsPerItem());
  std::printf("%-24s %14" PRIu64 " %14.3f %12s\n", "scenario/serial",
              serial.scenarios.items, serial.scenarios.PerSec(), "-");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "scenario/serial-events",
              serial.sim_events, serial.EventsPerSec(), serial.NsPerEvent());
  std::printf("%-24s %14" PRIu64 " %14.3f %12s\n", "campaign/parallel",
              parallel.scenarios.items, parallel.scenarios.PerSec(), "-");
  std::printf("%-24s %14" PRIu64 " %14.0f %12.2f\n", "campaign/parallel-events",
              parallel.sim_events, parallel.EventsPerSec(), parallel.NsPerEvent());
  std::printf("%-24s %14" PRIu64 " %14s %12s\n", "peak_rss_bytes", peak_rss, "-", "-");

  if (!WriteJson(args, eq_run, eq_churn, serial, parallel, peak_rss)) {
    return 1;
  }
  std::printf("\nwrote %s\n", args.out.c_str());
  return 0;
}
