#include "tools/hive_lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace lint {
namespace {

// True when text[i] starts a backslash-newline line splice ("\\\n" or
// "\\\r\n"). `len` receives the splice length.
bool IsSplice(const std::string& text, size_t i, size_t* len) {
  if (i + 1 < text.size() && text[i] == '\\' && text[i + 1] == '\n') {
    *len = 2;
    return true;
  }
  if (i + 2 < text.size() && text[i] == '\\' && text[i + 1] == '\r' &&
      text[i + 2] == '\n') {
    *len = 3;
    return true;
  }
  return false;
}

bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR" ||
         ident == "UR";
}

// Scans a raw string literal starting at the '"' of `R"delim(`. Returns the
// index one past the closing quote and bumps `line` for embedded newlines.
size_t ScanRawString(const std::string& text, size_t quote, int* line) {
  const size_t n = text.size();
  size_t j = quote + 1;
  std::string delim;
  while (j < n && text[j] != '(') {
    delim.push_back(text[j++]);
  }
  const std::string closer = ")" + delim + "\"";
  size_t end = text.find(closer, j);
  end = end == std::string::npos ? n : end + closer.size();
  for (size_t k = quote; k < end; ++k) {
    if (text[k] == '\n') {
      ++*line;
    }
  }
  return end;
}

// Reads the directive word after a '#' at `hash`, e.g. "if", "endif".
// `after` receives the index one past the word.
std::string DirectiveWord(const std::string& text, size_t hash, size_t* after) {
  const size_t n = text.size();
  size_t j = hash + 1;
  while (j < n && (text[j] == ' ' || text[j] == '\t')) {
    ++j;
  }
  size_t start = j;
  while (j < n && std::isalpha(static_cast<unsigned char>(text[j]))) {
    ++j;
  }
  *after = j;
  return text.substr(start, j - start);
}

// True when the condition after `#if` (starting at `after`) is the literal 0
// (optionally followed by a comment): the canonical disabled-code idiom.
bool ConditionIsZero(const std::string& text, size_t after) {
  const size_t n = text.size();
  size_t j = after;
  while (j < n && (text[j] == ' ' || text[j] == '\t')) {
    ++j;
  }
  if (j >= n || text[j] != '0') {
    return false;
  }
  ++j;
  while (j < n && (text[j] == ' ' || text[j] == '\t' || text[j] == '\r')) {
    ++j;
  }
  return j >= n || text[j] == '\n' || (text[j] == '/' && j + 1 < n &&
                                       (text[j + 1] == '/' || text[j + 1] == '*'));
}

// Skips a disabled `#if 0` region. `i` points anywhere inside the `#if 0`
// line; returns the index just past the terminating directive line (`#endif`
// closing the region, or an `#else`/`#elif` arm -- whose code is potentially
// live and therefore tokenized). Nested conditionals of any flavour are
// tracked so an inner `#ifdef`'s `#endif` does not end the region early.
size_t SkipDisabledRegion(const std::string& text, size_t i, int* line) {
  const size_t n = text.size();
  int depth = 0;
  auto skip_to_eol = [&](size_t k) {
    while (k < n) {
      size_t splice_len = 0;
      if (IsSplice(text, k, &splice_len)) {
        ++*line;
        k += splice_len;
        continue;
      }
      if (text[k] == '\n') {
        ++*line;
        return k + 1;
      }
      ++k;
    }
    return n;
  };
  i = skip_to_eol(i);
  while (i < n) {
    size_t j = i;
    while (j < n && (text[j] == ' ' || text[j] == '\t')) {
      ++j;
    }
    if (j < n && text[j] == '#') {
      size_t after = 0;
      const std::string directive = DirectiveWord(text, j, &after);
      if (directive == "if" || directive == "ifdef" || directive == "ifndef") {
        ++depth;
      } else if (directive == "endif") {
        if (depth == 0) {
          return skip_to_eol(after);
        }
        --depth;
      } else if ((directive == "else" || directive == "elif") && depth == 0) {
        return skip_to_eol(after);
      }
    }
    i = skip_to_eol(i);
  }
  return n;
}

}  // namespace

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void Tokenize(const std::string& text, SourceFile* out) {
  size_t i = 0;
  int line = 1;
  bool line_start = true;  // Only whitespace seen since the last newline.
  const size_t n = text.size();
  auto peek = [&](size_t ahead) -> char {
    return i + ahead < n ? text[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = text[i];
    size_t splice_len = 0;
    if (IsSplice(text, i, &splice_len)) {
      ++line;
      i += splice_len;
      continue;
    }
    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: only `#if 0` regions are interpreted (skipped
    // until a live arm); every other directive's tokens flow through.
    if (c == '#' && line_start) {
      size_t after = 0;
      if (DirectiveWord(text, i, &after) == "if" && ConditionIsZero(text, after)) {
        i = SkipDisabledRegion(text, i, &line);
        line_start = true;
        continue;
      }
      out->tokens.push_back({Token::kPunct, "#", line});
      line_start = false;
      ++i;
      continue;
    }
    // Line comment; a trailing backslash splices the next physical line into
    // the comment, so spliced tails never tokenize as code.
    if (c == '/' && peek(1) == '/') {
      std::string body;
      i += 2;
      while (i < n) {
        if (IsSplice(text, i, &splice_len)) {
          ++line;
          i += splice_len;
          body.push_back(' ');
          continue;
        }
        if (text[i] == '\n') {
          break;
        }
        body.push_back(text[i]);
        ++i;
      }
      out->comments.push_back({body, line});
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      const size_t end = i < n ? i : n;
      out->comments.push_back({text.substr(start, end - start), line});
      i = i + 2 < n ? i + 2 : n;
      continue;
    }
    // Raw string literal with no encoding prefix: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      i = ScanRawString(text, i + 1, &line);
      out->tokens.push_back({Token::kString, "R\"...\"", line});
      line_start = false;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') {
          ++j;
          if (j < n && text[j] == '\n') {
            ++line;  // Escaped (spliced) newline inside the literal.
          }
        } else if (text[j] == '\n') {
          ++line;  // Unterminated literal: stay line-accurate anyway.
        }
        ++j;
      }
      out->tokens.push_back(
          {quote == '"' ? Token::kString : Token::kCharLit, text.substr(i, j + 1 - i), line});
      i = j + 1;
      line_start = false;
      continue;
    }
    // Identifier / keyword; an identifier that is exactly a raw-string
    // encoding prefix (u8R, LR, ...) followed by '"' opens a raw string.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) {
        ++j;
      }
      const std::string ident = text.substr(i, j - i);
      if (j < n && text[j] == '"' && IsRawStringPrefix(ident)) {
        i = ScanRawString(text, j, &line);
        out->tokens.push_back({Token::kString, "R\"...\"", line});
        line_start = false;
        continue;
      }
      out->tokens.push_back({Token::kIdent, ident, line});
      i = j;
      line_start = false;
      continue;
    }
    // Number (decimal, hex, binary; digit separators and suffixes included).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '\'')) {
        ++j;
      }
      out->tokens.push_back({Token::kNumber, text.substr(i, j - i), line});
      i = j;
      line_start = false;
      continue;
    }
    // Multi-char punctuation the rules care about; everything else single.
    if (c == '-' && peek(1) == '>') {
      out->tokens.push_back({Token::kPunct, "->", line});
      i += 2;
      line_start = false;
      continue;
    }
    if (c == ':' && peek(1) == ':') {
      out->tokens.push_back({Token::kPunct, "::", line});
      i += 2;
      line_start = false;
      continue;
    }
    out->tokens.push_back({Token::kPunct, std::string(1, c), line});
    ++i;
    line_start = false;
  }
}

}  // namespace lint
