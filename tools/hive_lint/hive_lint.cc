// hive_lint v2 driver.
//
// Pass 1: tokenize every .h/.cc under <root>/{src,tests,bench} (skipping
// tests/lint_fixtures, which holds deliberate violations) and build the
// whole-program index. Pass 2: run the registered rules (R1-R11; R0 falls
// out of suppression parsing), apply `hive-lint: allow(Rn): why` markers
// (same line or the line above; R0 itself is unsuppressible), sort, render.
//
//   hive_lint [--root <dir>] [--format=text|json] [--stats] [--verbose]
//
// Exit codes: 0 clean, 1 diagnostics remain, 2 usage/IO error. JSON output
// (schema "hive-lint-v2") always embeds the stats block so CI can assert the
// time budget from the same artifact it diffs against the baseline.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/hive_lint/index.h"
#include "tools/hive_lint/lexer.h"
#include "tools/hive_lint/rules.h"

namespace lint {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct RuleStat {
  std::string id;
  std::string title;
  double ms = 0.0;
  size_t raw_diags = 0;  // Before suppression.
};

struct RunStats {
  size_t files = 0;
  size_t tokens = 0;
  size_t functions = 0;
  size_t suppressions = 0;
  double read_ms = 0.0;   // Read + tokenize + suppression parse.
  double index_ms = 0.0;  // Pass 1.
  std::vector<RuleStat> rules;
  double total_ms = 0.0;
};

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Collects the files to scan, sorted for deterministic output.
std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* top : {"src", "tests", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();  // Deliberate violations live there.
        continue;
      }
      if (!it->is_regular_file()) {
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".cc" || ext == ".h") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool DiagLess(const Diagnostic& a, const Diagnostic& b) {
  if (a.rel_path != b.rel_path) {
    return a.rel_path < b.rel_path;
  }
  if (a.line != b.line) {
    return a.line < b.line;
  }
  if (a.rule != b.rule) {
    return a.rule < b.rule;
  }
  return a.message < b.message;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintJson(const std::vector<Diagnostic>& diags, const RunStats& stats,
               const std::string& root) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"hive-lint-v2\",\n";
  out << "  \"root\": \"" << JsonEscape(root) << "\",\n";
  out << "  \"diagnostics\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << JsonEscape(diags[i].rel_path)
        << "\", \"line\": " << diags[i].line << ", \"rule\": \""
        << JsonEscape(diags[i].rule) << "\", \"message\": \""
        << JsonEscape(diags[i].message) << "\"}";
  }
  out << (diags.empty() ? "],\n" : "\n  ],\n");
  out << "  \"stats\": {\n";
  out << "    \"files\": " << stats.files << ",\n";
  out << "    \"tokens\": " << stats.tokens << ",\n";
  out << "    \"functions\": " << stats.functions << ",\n";
  out << "    \"suppressions\": " << stats.suppressions << ",\n";
  out << "    \"read_ms\": " << stats.read_ms << ",\n";
  out << "    \"index_ms\": " << stats.index_ms << ",\n";
  out << "    \"rules\": [";
  for (size_t i = 0; i < stats.rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "      {\"id\": \"" << stats.rules[i].id << "\", \"ms\": "
        << stats.rules[i].ms << ", \"diagnostics\": " << stats.rules[i].raw_diags
        << "}";
  }
  out << (stats.rules.empty() ? "],\n" : "\n    ],\n");
  out << "    \"total_ms\": " << stats.total_ms << "\n  }\n}\n";
  std::cout << out.str();
}

void PrintStatsText(const RunStats& stats) {
  std::fprintf(stderr,
               "hive_lint: %zu files, %zu tokens, %zu functions, %zu suppressions\n",
               stats.files, stats.tokens, stats.functions, stats.suppressions);
  std::fprintf(stderr, "  read+tokenize %8.2f ms\n", stats.read_ms);
  std::fprintf(stderr, "  index         %8.2f ms\n", stats.index_ms);
  for (const RuleStat& r : stats.rules) {
    std::fprintf(stderr, "  %-4s          %8.2f ms  %4zu diag(s)  %s\n", r.id.c_str(),
                 r.ms, r.raw_diags, r.title.c_str());
  }
  std::fprintf(stderr, "  total         %8.2f ms\n", stats.total_ms);
}

int Run(const std::string& root_arg, const std::string& format, bool stats_flag,
        bool verbose) {
  const auto t0 = Clock::now();
  const fs::path root(root_arg);
  if (!fs::exists(root)) {
    std::cerr << "hive_lint: root does not exist: " << root_arg << "\n";
    return 2;
  }
  RunStats stats;
  std::vector<SourceFile> files;
  std::vector<Diagnostic> diags;
  std::vector<std::pair<std::string, Suppression>> sups;  // (rel_path, marker).

  const auto t_read = Clock::now();
  for (const fs::path& path : CollectFiles(root)) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::cerr << "hive_lint: cannot read " << path << "\n";
      return 2;
    }
    SourceFile file;
    file.rel_path = fs::relative(path, root).generic_string();
    Tokenize(text, &file);
    stats.tokens += file.tokens.size();
    files.push_back(std::move(file));
  }
  stats.files = files.size();
  for (const SourceFile& file : files) {
    for (const Suppression& sup : ParseSuppressions(file, &diags)) {
      sups.emplace_back(file.rel_path, sup);
    }
  }
  stats.suppressions = sups.size();
  stats.read_ms = MsSince(t_read);

  const auto t_index = Clock::now();
  ProgramIndex index;
  for (const SourceFile& file : files) {
    IndexFile(file, &index);
  }
  stats.functions = index.functions.size();
  stats.index_ms = MsSince(t_index);

  RuleContext ctx{&files, &index, &diags};
  for (const RuleInfo& rule : AllRules()) {
    const auto t_rule = Clock::now();
    const size_t before = diags.size();
    rule.fn(ctx);
    stats.rules.push_back({rule.id, rule.title, MsSince(t_rule), diags.size() - before});
  }

  // Apply suppressions: same file, same rule, marker on the diagnostic's
  // line or the line above. R0 (suppression hygiene) is unsuppressible.
  std::vector<Diagnostic> active;
  size_t suppressed = 0;
  for (const Diagnostic& diag : diags) {
    bool keep = true;
    if (diag.rule != "R0") {
      for (const auto& [rel_path, sup] : sups) {
        if (rel_path == diag.rel_path && sup.rule == diag.rule &&
            (sup.line == diag.line || sup.line == diag.line - 1)) {
          keep = false;
          ++suppressed;
          break;
        }
      }
    }
    if (keep) {
      active.push_back(diag);
    }
  }
  std::sort(active.begin(), active.end(), DiagLess);
  stats.total_ms = MsSince(t0);

  if (format == "json") {
    PrintJson(active, stats, root_arg);
  } else {
    for (const Diagnostic& diag : active) {
      std::cout << diag.rel_path << ":" << diag.line << ": [" << diag.rule << "] "
                << diag.message << "\n";
    }
    if (verbose || !active.empty()) {
      std::cout << "hive_lint: " << active.size() << " diagnostic(s), " << suppressed
                << " suppressed, " << stats.files << " file(s) scanned\n";
    }
  }
  if (stats_flag && format != "json") {
    PrintStatsText(stats);
  }
  return active.empty() ? 0 : 1;
}

int Usage(int code) {
  std::cout <<
      "usage: hive_lint [--root <dir>] [--format=text|json] [--stats] [--verbose]\n"
      "\n"
      "Whole-program lint for the Hive fault-containment discipline.\n"
      "Scans <root>/{src,tests,bench} (skipping tests/lint_fixtures).\n"
      "\n"
      "Rules:\n"
      "  R0   suppression hygiene: allow(Rn) markers must carry a justification\n";
  for (const RuleInfo& rule : AllRules()) {
    std::cout << "  " << rule.id << (std::string(rule.id).size() < 3 ? "   " : "  ")
              << rule.title << "\n";
  }
  std::cout <<
      "\n"
      "Suppress with '// hive-lint: allow(Rn): <justification>' on the flagged\n"
      "line or the line above. Exit: 0 clean, 1 diagnostics, 2 usage/IO error.\n";
  return code;
}

}  // namespace
}  // namespace lint

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  bool stats = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "hive_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return lint::Usage(0);
    } else {
      std::cerr << "hive_lint: unknown argument '" << arg << "'\n";
      return lint::Usage(2);
    }
  }
  return lint::Run(root, format, stats, verbose);
}
