// Whole-program rules R8-R11. These are the rules that need pass 1's
// ProgramIndex: lock-order consistency across translation units (R8),
// unchecked Status results (R9), determinism purity of everything reachable
// from the simulator/campaign entry points (R10), and confinement of the
// tagged remote structures to the careful-reference module (R11).

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/hive_lint/rules.h"

namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// R8: lock-order consistency.
//
// An order edge A -> B means "some thread can block on B while holding A":
//   - intra-function: lock site B acquired while site A's guard scope is
//     still open;
//   - inter-procedural: a call made while A is held, where the callee (or
//     anything it transitively calls) acquires B.
// scoped_lock(a, b) acquires its keys deadlock-free as one unit, so keys of
// the same site never produce an edge. Lock keys are canonicalized token
// spellings ("mu_", "state.mu"), name-keyed across TUs: two classes with a
// member both called "mu_" alias into one node, which can only create false
// cycles (reviewable, suppressible), never hide a real one.
//
// A cycle in the edge graph is a potential deadlock; the diagnostic names a
// witness for every edge of the cycle so both (all) paths can be audited.
// ---------------------------------------------------------------------------

struct OrderEdge {
  std::string from;
  std::string to;
  std::string file;  // Witness location: where `to` is acquired under `from`.
  int line = 0;
  std::string desc;  // Human-readable witness sentence.
};

void CheckR8Impl(const RuleContext& ctx) {
  const ProgramIndex& index = *ctx.index;
  // (from, to) -> first witness found.
  std::map<std::pair<std::string, std::string>, OrderEdge> edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           const std::string& file, int line, std::string desc) {
    if (from == to) {
      return;  // Same canonical key: re-acquisition aliasing, not an order.
    }
    edges.emplace(std::make_pair(from, to),
                  OrderEdge{from, to, file, line, std::move(desc)});
  };
  std::map<const FunctionDef*, std::set<std::string>> memo;
  for (const auto& fn : index.functions) {
    // Intra-function nesting.
    for (size_t a = 0; a < fn->locks.size(); ++a) {
      const LockSite& outer = fn->locks[a];
      for (size_t b = a + 1; b < fn->locks.size(); ++b) {
        const LockSite& inner = fn->locks[b];
        if (inner.tok >= outer.scope_end) {
          continue;  // Sequential, not nested.
        }
        for (const std::string& from : outer.keys) {
          for (const std::string& to : inner.keys) {
            std::ostringstream w;
            w << fn->qualified << " (" << fn->file << ":" << inner.line
              << ") acquires '" << to << "' while holding '" << from << "'";
            add_edge(from, to, fn->file, inner.line, w.str());
          }
        }
      }
    }
    // Calls made under a held lock reach the callee's transitive lock set.
    for (const LockSite& held : fn->locks) {
      for (const CallSite& call : fn->calls) {
        if (call.tok <= held.tok || call.tok >= held.scope_end) {
          continue;
        }
        for (FunctionDef* callee : index.Resolve(call.callee)) {
          const std::set<std::string>& acquired = index.TransitiveLocks(callee, &memo);
          for (const std::string& from : held.keys) {
            for (const std::string& to : acquired) {
              std::ostringstream w;
              w << fn->qualified << " (" << fn->file << ":" << call.line
                << ") calls " << call.callee << " while holding '" << from
                << "', and " << callee->qualified << " acquires '" << to
                << "' (possibly transitively)";
              add_edge(from, to, fn->file, call.line, w.str());
            }
          }
        }
      }
    }
  }
  // Adjacency for path search.
  std::map<std::string, std::vector<const OrderEdge*>> adj;
  for (const auto& [key, edge] : edges) {
    adj[edge.from].push_back(&edge);
  }
  // For every edge A->B, a path B ->* A closes a cycle. BFS with parent
  // tracking reconstructs the return path; the node set (sorted) dedupes the
  // same cycle discovered from each of its edges.
  std::set<std::string> reported;
  for (const auto& [key, edge] : edges) {
    std::map<std::string, const OrderEdge*> parent;  // node -> edge that reached it.
    std::deque<std::string> queue{edge.to};
    std::set<std::string> visited{edge.to};
    bool found = false;
    while (!queue.empty() && !found) {
      const std::string node = queue.front();
      queue.pop_front();
      auto it = adj.find(node);
      if (it == adj.end()) {
        continue;
      }
      for (const OrderEdge* next : it->second) {
        if (!visited.insert(next->to).second) {
          continue;
        }
        parent[next->to] = next;
        if (next->to == edge.from) {
          found = true;
          break;
        }
        queue.push_back(next->to);
      }
    }
    if (!found) {
      continue;
    }
    // Reconstruct the return path B ->* A.
    std::vector<const OrderEdge*> back;
    for (std::string node = edge.from; node != edge.to;) {
      const OrderEdge* via = parent[node];
      back.push_back(via);
      node = via->from;
    }
    std::reverse(back.begin(), back.end());
    // Canonical cycle id: the sorted set of nodes involved.
    std::set<std::string> nodes{edge.from, edge.to};
    for (const OrderEdge* e : back) {
      nodes.insert(e->to);
    }
    std::string cycle_id;
    for (const std::string& node : nodes) {
      cycle_id += node + "|";
    }
    if (!reported.insert(cycle_id).second) {
      continue;
    }
    std::ostringstream msg;
    msg << "lock-order cycle: '" << edge.from << "' -> '" << edge.to << "'";
    for (const OrderEdge* e : back) {
      msg << " -> '" << e->to << "'";
    }
    msg << "; witness paths: [" << edge.desc << "]";
    for (const OrderEdge* e : back) {
      msg << " vs [" << e->desc << "]";
    }
    msg << " -- two threads taking these locks in opposite orders deadlock, "
           "which in Hive stalls a whole cell past its heartbeat";
    ctx.diags->push_back({edge.file, edge.line, "R8", msg.str()});
  }
}

// ---------------------------------------------------------------------------
// R9: unchecked base::Status / Result.
//
// base::Status is [[nodiscard]], but that attribute evaporates through
// type-erasing wrappers and is a warning, not an error, under some
// configurations -- and the campaign layer's whole job is to notice failed
// recovery steps. A call to a Status-returning function used as a bare
// expression statement (value neither bound, returned, tested, nor cast to
// void) silently swallows a failure.
//
// Resolution is by simple name, so only the *unambiguous* set is flagged:
// names every sighting of which (definition or declaration, any TU) returns
// Status/StatusOr/Result. A name that also appears with any other return
// type (overloads like Read/Write) is excluded rather than guessed at.
// ---------------------------------------------------------------------------

// Walks left from the callee identifier across the receiver chain
// (`a.b()->c::Foo` => index of `a`). Bails (returns `i`) on shapes it does
// not understand; the caller then sees a non-statement-start and skips.
size_t ChainBegin(const std::vector<Token>& toks, size_t i) {
  size_t j = i;
  while (j >= 2) {
    const std::string& p = toks[j - 1].text;
    if (p != "." && p != "->" && p != "::") {
      break;
    }
    size_t k = j - 2;
    if (toks[k].kind == Token::kIdent) {
      j = k;
      continue;
    }
    if (toks[k].text == ")" || toks[k].text == "]") {
      const std::string closer = toks[k].text;
      const std::string opener = closer == ")" ? "(" : "[";
      int depth = 1;
      while (k > 0 && depth > 0) {
        --k;
        if (toks[k].text == closer) {
          ++depth;
        } else if (toks[k].text == opener) {
          --depth;
        }
      }
      if (depth != 0) {
        break;
      }
      if (k > 0 && toks[k - 1].kind == Token::kIdent) {
        j = k - 1;
        continue;
      }
      j = k;  // `(expr).Foo()`: the chain begins at '('.
      continue;
    }
    break;
  }
  return j;
}

void CheckR9Impl(const RuleContext& ctx) {
  const ProgramIndex& index = *ctx.index;
  std::set<std::string> unambiguous;
  for (const std::string& name : index.status_returning) {
    if (index.status_ambiguous.count(name) == 0) {
      unambiguous.insert(name);
    }
  }
  for (const SourceFile& file : *ctx.files) {
    if (!StartsWith(file.rel_path, "src/")) {
      continue;  // Tests assert on Status values through gtest macros.
    }
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::kIdent || toks[i + 1].text != "(" ||
          unambiguous.count(toks[i].text) == 0) {
        continue;
      }
      const size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close + 1 >= toks.size() || toks[close + 1].text != ";") {
        continue;  // Value consumed by an enclosing expression / definition.
      }
      const size_t begin = ChainBegin(toks, i);
      if (begin > 0) {
        const std::string& before = toks[begin - 1].text;
        if (before != ";" && before != "{" && before != "}") {
          // `return Foo();`, `s = Foo();`, `(void)Foo();`, `if (..) Foo();`
          // -- wait: `if (cond) Foo();` IS a discard, but the token before
          // the chain is ')', indistinguishable from `(void)Foo();` without
          // real parsing. The cast-to-void idiom wins; braced bodies (the
          // styleguide default) are still covered.
          continue;
        }
      }
      ctx.diags->push_back(
          {file.rel_path, toks[i].line, "R9",
           "result of '" + toks[i].text +
               "' (base::Status/Result) is discarded; bind it, RETURN_IF_ERROR "
               "it, or write '(void)" + toks[i].text +
               "(...)' with a justifying comment -- a swallowed Status hides a "
               "failed recovery step"});
    }
  }
}

// ---------------------------------------------------------------------------
// R10: determinism purity.
//
// The campaign layer fingerprints end-to-end runs (FNV-1a over final state)
// and the golden-fingerprint tests -- plus the planned parallel simulation
// core -- require every path reachable from the simulator/campaign entry
// points to be bit-reproducible from the seed. Reachability is computed over
// the pass-1 call graph from the roots below; inside reachable functions the
// rule flags:
//   - std::random_device (hardware entropy),
//   - rand/srand/*rand48/random and wall-clock time() reads,
//   - std::chrono {system,steady,high_resolution}_clock::now(),
//   - range-for over a name declared as std::unordered_map/unordered_set
//     (iteration order varies across libstdc++ versions and hash seeds),
// and, anywhere in src/ (declarations are not inside a function body):
//   - std::map/std::set keyed by a raw pointer (address-order iteration
//     varies run to run under ASLR and allocator nondeterminism).
// ---------------------------------------------------------------------------

// Roots: the serial scenario/campaign entry points plus the parallel
// simulation core's worker path. WorkerMain is a std::thread entry reached
// only through a member-function pointer, and ExecuteBundle/ReplayWindow
// (the per-cell bundle body and the deterministic merge) can be reached
// through that same pointer call -- all invisible to the pass-1 call graph,
// so they are rooted explicitly. Nondeterminism on any of these paths would
// break the N-thread == 1-thread fingerprint guarantee, not just the serial
// golden oracle.
// RunSoak is the serve harness entry point: its fingerprint must be a
// function of --seed alone, so it is held to the same determinism bar.
const char* const kR10Roots[] = {"RunScenario", "RunCampaign", "WorkerMain",
                                 "ExecuteBundle", "ReplayWindow", "RunSoak"};

void CheckR10Impl(const RuleContext& ctx) {
  const ProgramIndex& index = *ctx.index;
  std::string root_list;
  std::vector<std::string> roots;
  for (const char* root : kR10Roots) {
    roots.emplace_back(root);
    if (!root_list.empty()) {
      root_list += "/";
    }
    root_list += root;
  }
  std::set<const FunctionDef*> reachable = index.ReachableFrom(roots);
  std::set<std::pair<std::string, int>> emitted;
  auto emit = [&ctx, &emitted](const std::string& file, int line, std::string msg) {
    if (emitted.insert({file, line}).second) {
      ctx.diags->push_back({file, line, "R10", std::move(msg)});
    }
  };
  static const std::set<std::string> kBannedCalls = {
      "rand", "srand", "rand_r", "random", "drand48", "lrand48", "mrand48",
      "srand48", "random_shuffle",
  };
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock",
  };
  for (const FunctionDef* fn : reachable) {
    if (!StartsWith(fn->file, "src/")) {
      continue;  // Tests and bench may time/randomize around the sim.
    }
    const std::string where =
        " in " + fn->qualified + ", which is reachable from the scenario/campaign/"
        "parallel-sim entry points (" + root_list +
        "); simulation outcomes must be a pure function of the seed "
        "(golden-fingerprint oracle and the N-thread == 1-thread "
        "equivalence oracle)";
    for (const CallSite& call : fn->calls) {
      if (kBannedCalls.count(call.callee) > 0) {
        emit(fn->file, call.line,
             "call to '" + call.callee + "'" + where);
      }
    }
    // Token-level scans inside the body: random_device construction, clock
    // reads, and wall-clock time(nullptr).
    const SourceFile* src = nullptr;
    for (const SourceFile& file : *ctx.files) {
      if (file.rel_path == fn->file) {
        src = &file;
        break;
      }
    }
    if (src == nullptr) {
      continue;
    }
    const std::vector<Token>& toks = src->tokens;
    for (size_t j = fn->body_begin; j < fn->body_end && j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind != Token::kIdent) {
        continue;
      }
      if (t.text == "random_device") {
        emit(fn->file, t.line, "std::random_device (hardware entropy)" + where);
      } else if (kClocks.count(t.text) > 0 && j + 2 < toks.size() &&
                 toks[j + 1].text == "::" && toks[j + 2].text == "now") {
        emit(fn->file, t.line,
             "wall-clock read 'std::chrono::" + t.text + "::now()'" + where);
      } else if (t.text == "time" && j + 2 < toks.size() && toks[j + 1].text == "(" &&
                 (toks[j + 2].text == "nullptr" || toks[j + 2].text == "NULL" ||
                  toks[j + 2].text == "0")) {
        emit(fn->file, t.line, "wall-clock read 'time(...)'" + where);
      }
    }
    for (const RangeForSite& site : fn->range_fors) {
      if (!site.calls_range && index.unordered_containers.count(site.range_ident) > 0) {
        emit(fn->file, site.line,
             "range-for over unordered container '" + site.range_ident + "'" + where +
                 "; iterate a sorted copy or restructure if the loop affects "
                 "output, or suppress if provably order-independent");
      }
    }
  }
  for (const ProgramIndex::PtrKeyedDecl& decl : index.ptr_keyed_ordered) {
    if (!StartsWith(decl.file, "src/")) {
      continue;
    }
    emit(decl.file, decl.line,
         "'" + decl.name + "' is a std::map/std::set keyed by a raw pointer; "
         "iteration follows address order, which varies run to run (ASLR, "
         "allocator) -- key by a stable id instead (determinism purity)");
  }
}

// ---------------------------------------------------------------------------
// R11: careful-read completeness.
//
// Structures whose names start with "Remote" (RemoteChainNode,
// RemoteSeqBlock, ...) model data living in *another cell's* memory: the
// whole point of the careful-reference protocol (paper 4.1) is that such
// memory may disappear or be corrupted at any instant, so it may only be
// touched through CarefulRef (bounded, tag-checked, BusError-converting
// accessors) inside src/core/careful_ref.{h,cc}. Anywhere else in src/, a
// raw `Remote*` pointer declaration or a reinterpret_cast to one is a
// dereference-in-waiting that would turn a peer fault into a survivor crash.
// ---------------------------------------------------------------------------

void CheckR11Impl(const RuleContext& ctx) {
  const ProgramIndex& index = *ctx.index;
  auto is_tagged = [&index](const std::string& name) {
    return StartsWith(name, "Remote") && index.struct_names.count(name) > 0;
  };
  std::set<std::pair<std::string, int>> emitted;
  auto emit = [&ctx, &emitted](const std::string& file, int line, std::string msg) {
    if (emitted.insert({file, line}).second) {
      ctx.diags->push_back({file, line, "R11", std::move(msg)});
    }
  };
  for (const SourceFile& file : *ctx.files) {
    if (!StartsWith(file.rel_path, "src/") ||
        file.rel_path == "src/core/careful_ref.h" ||
        file.rel_path == "src/core/careful_ref.cc") {
      continue;
    }
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::kIdent) {
        continue;
      }
      if (t.text == "reinterpret_cast" && i + 1 < toks.size() &&
          toks[i + 1].text == "<") {
        const size_t close = MatchForward(toks, i + 1, "<", ">");
        for (size_t j = i + 2; j < close && j < toks.size(); ++j) {
          if (toks[j].kind == Token::kIdent && is_tagged(toks[j].text)) {
            emit(file.rel_path, t.line,
                 "reinterpret_cast to tagged remote structure '" + toks[j].text +
                     "' outside careful_ref; remote memory may vanish or be "
                     "corrupt at any instant -- use CarefulRef::ReadTagged/"
                     "ChaseChain/ReadSeqlocked (paper 4.1)");
            break;
          }
        }
      } else if (is_tagged(t.text) && i + 2 < toks.size() && toks[i + 1].text == "*" &&
                 toks[i + 2].kind == Token::kIdent) {
        emit(file.rel_path, t.line,
             "raw pointer to tagged remote structure '" + t.text +
                 "' outside careful_ref; a plain dereference of another cell's "
                 "memory turns a peer fault into a survivor crash -- hold an "
                 "address + CarefulRef instead (paper 4.1)");
      }
    }
  }
}

}  // namespace

// Registered from rules_file.cc's AllRules().
void CheckR8(const RuleContext& ctx) { CheckR8Impl(ctx); }
void CheckR9(const RuleContext& ctx) { CheckR9Impl(ctx); }
void CheckR10(const RuleContext& ctx) { CheckR10Impl(ctx); }
void CheckR11(const RuleContext& ctx) { CheckR11Impl(ctx); }

}  // namespace lint
