// Per-file rules R0-R7, ported unchanged from hive_lint v1 (they predate the
// whole-program index and deliberately do not use it), plus the two
// cross-file enum rules R4/R5. Receiver heuristics are documented next to
// each rule; see DESIGN.md "Verification layers" for the discipline each one
// enforces.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/hive_lint/rules.h"

namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Receiver name of a member call at token index `access` (the '.' or '->'
// token): the identifier directly before it, or, for a call-chain receiver
// like `machine().mem().Write`, the identifier naming the innermost call
// (`mem`). Returns "" when the receiver is not a simple name or call.
std::string ReceiverName(const std::vector<Token>& toks, size_t access) {
  if (access == 0) {
    return "";
  }
  size_t i = access - 1;
  if (toks[i].kind == Token::kIdent) {
    return toks[i].text;
  }
  if (toks[i].text == ")") {
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (toks[i].text == ")") {
        ++depth;
      } else if (toks[i].text == "(") {
        --depth;
      }
    }
    if (depth == 0 && i > 0 && toks[i - 1].kind == Token::kIdent) {
      return toks[i - 1].text;
    }
  }
  return "";
}

// R1: direct PhysMem access from src/core/. `ReadValue`/`WriteValue` exist
// only on PhysMem, so any member call to them is flagged. Plain `Read`/
// `Write` are common method names (CarefulRef, KernelHeap, FileSystem...), so
// they are flagged only when the receiver is named `mem`/`mem_` -- the
// codebase-wide convention for the PhysMem instance (`machine().mem()`,
// member `mem_`).
void CheckR1(const SourceFile& file, std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kAllowlist = {
      // The careful-reference boundary itself (steps 2-4 wrap raw access).
      "src/core/careful_ref.h", "src/core/careful_ref.cc",
      // The allocator that writes the type tags the protocol checks.
      "src/core/kernel_heap.h", "src/core/kernel_heap.cc",
      // Address maps are published data; their accessor owns its discipline.
      "src/core/address_space.cc",
      // The unified page cache: page-content copies on the checked store
      // path (firewall + fault model apply); never careful-reference
      // structure reads.
      "src/core/filesystem.cc",
  };
  if (!StartsWith(file.rel_path, "src/core/") || kAllowlist.count(file.rel_path) > 0) {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "." && toks[i].text != "->") {
      continue;
    }
    const Token& method = toks[i + 1];
    if (method.kind != Token::kIdent) {
      continue;
    }
    if (method.text == "ReadValue" || method.text == "WriteValue") {
      diags->push_back({file.rel_path, method.line, "R1",
                        "direct PhysMem::" + method.text +
                            " from core kernel code; intercell reads must go through "
                            "CarefulRef (paper 4.1)"});
      continue;
    }
    if ((method.text == "Read" || method.text == "Write")) {
      const std::string receiver = ReceiverName(toks, i);
      if (receiver == "mem" || receiver == "mem_") {
        diags->push_back({file.rel_path, method.line, "R1",
                          "direct PhysMem::" + method.text +
                              " from core kernel code; intercell reads must go through "
                              "CarefulRef (paper 4.1)"});
      }
    }
  }
}

// R2: RawWrite/RawRead bypass the firewall and the fault flags; only the
// fault injector (modelling a cell's own bug), PhysMem itself, and test
// assertions may use them.
void CheckR2(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (file.rel_path == "src/flash/fault_injector.cc" ||
      file.rel_path == "src/flash/phys_mem.h" || file.rel_path == "src/flash/phys_mem.cc" ||
      StartsWith(file.rel_path, "tests/")) {
    return;
  }
  for (const Token& tok : file.tokens) {
    if (tok.kind == Token::kIdent && (tok.text == "RawWrite" || tok.text == "RawRead")) {
      diags->push_back({file.rel_path, tok.line, "R2",
                        tok.text + " bypasses the firewall; only the fault injector and "
                                   "tests may use the backdoor (paper 4.2)"});
    }
  }
}

// R3: BusError must be converted to base::Status at the careful-reference
// boundary. src/flash/ raises it; careful_ref.* catches it; tests/ observe
// the raw trap when testing the substrate itself.
void CheckR3(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (StartsWith(file.rel_path, "src/flash/") || StartsWith(file.rel_path, "tests/") ||
      file.rel_path == "src/core/careful_ref.h" ||
      file.rel_path == "src/core/careful_ref.cc") {
    return;
  }
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent) {
      continue;
    }
    if (toks[i].text == "throw") {
      for (size_t j = i + 1; j < toks.size() && j < i + 8 && toks[j].text != ";"; ++j) {
        if (toks[j].kind == Token::kIdent && toks[j].text == "BusError") {
          diags->push_back({file.rel_path, toks[i].line, "R3",
                            "BusError thrown outside src/flash/; the simulated trap is "
                            "raised only by the substrate"});
          break;
        }
      }
    } else if (toks[i].text == "catch" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      int depth = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          if (--depth == 0) {
            break;
          }
        } else if (toks[j].kind == Token::kIdent && toks[j].text == "BusError") {
          diags->push_back({file.rel_path, toks[i].line, "R3",
                            "BusError caught outside careful_ref; bus errors must become "
                            "base::Status at the careful-reference boundary (paper 4.1)"});
          break;
        }
      }
    }
  }
}

// R6: the reliable transport retries timed-out requests, so a handler for a
// mutating message type that is registered through the plain
// RegisterInterrupt/RegisterQueued path would re-execute its side effect when
// a retry races a delayed original. Mutating types must use the AtMostOnce
// registration (server-side replay cache) or carry a justified suppression
// explaining why the handler is idempotent by design. Heuristic: a
// RegisterInterrupt/RegisterQueued call site whose argument tokens (next few
// tokens after the call) name a mutating MsgType enumerator. The
// ...AtMostOnce identifiers are distinct tokens and never match.
void CheckR6(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (!StartsWith(file.rel_path, "src/")) {
    return;  // Tests may register intentionally unsafe handlers.
  }
  static const std::set<std::string> kMutatingTypes = {
      "kForkRemote", "kCreate",      "kUnlink",
      "kBorrowFrames", "kReturnFrame", "kGrantFirewall",
  };
  const std::vector<Token>& toks = file.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent ||
        (toks[i].text != "RegisterInterrupt" && toks[i].text != "RegisterQueued")) {
      continue;
    }
    if (toks[i + 1].text != "(") {
      continue;  // Mention in a declaration list or comment-adjacent token.
    }
    // The MsgType argument is within the first few tokens of the call
    // (`MsgType :: kFoo` or a bare enumerator); the handler lambda follows.
    for (size_t j = i + 2; j < toks.size() && j < i + 8; ++j) {
      if (toks[j].kind == Token::kIdent && kMutatingTypes.count(toks[j].text) > 0) {
        diags->push_back(
            {file.rel_path, toks[i].line, "R6",
             "non-idempotent RPC handler for MsgType::" + toks[j].text +
                 " registered without the replay cache; use Register" +
                 (toks[i].text == "RegisterInterrupt" ? "Interrupt" : "Queued") +
                 std::string("AtMostOnce so a transport retry cannot re-execute "
                             "the mutation (at-most-once contract, rpc.h)")});
        break;
      }
    }
  }
}

// R7: a loop that re-validates a remote type tag per iteration (CheckTag or
// ReadTagged) is the token signature of a hand-rolled pointer chase: the
// cursor comes from remote data the peer controls, so without a hop bound a
// rogue peer that splices its chain into a cycle (or grows it forever) hangs
// the surviving reader. Heuristic: the loop counts as bounded when its
// condition or body mentions an identifier containing "hop", "max",
// "attempt", "retr" or "bound" -- the codebase's bound-variable vocabulary
// (max_hops, kMaxVisit, max_retries, attempt). The bounded traversal
// primitives in careful_ref.cc pass on their own bound identifiers.
void CheckR7(const SourceFile& file, std::vector<Diagnostic>* diags) {
  if (!StartsWith(file.rel_path, "src/")) {
    return;  // Tests may exercise deliberately unbounded walks.
  }
  const std::vector<Token>& toks = file.tokens;
  auto is_bound_ident = [](const std::string& text) {
    std::string lower;
    lower.reserve(text.size());
    for (char c : text) {
      lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    for (const char* marker : {"hop", "max", "attempt", "retr", "bound"}) {
      if (lower.find(marker) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::kIdent ||
        (toks[i].text != "for" && toks[i].text != "while") || toks[i + 1].text != "(") {
      continue;
    }
    const size_t cond_open = i + 1;
    const size_t cond_close = MatchForward(toks, cond_open, "(", ")");
    if (cond_close >= toks.size()) {
      continue;
    }
    size_t body_end;
    const size_t body_begin = cond_close + 1;
    if (body_begin < toks.size() && toks[body_begin].text == "{") {
      body_end = MatchForward(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && toks[body_end].text != ";") {
        ++body_end;
      }
    }
    bool tagged_read = false;
    bool bounded = false;
    for (size_t j = cond_open; j <= body_end && j < toks.size(); ++j) {
      if (toks[j].kind != Token::kIdent) {
        continue;
      }
      if ((toks[j].text == "CheckTag" || toks[j].text == "ReadTagged") &&
          j + 1 < toks.size() && (toks[j + 1].text == "(" || toks[j + 1].text == "<")) {
        tagged_read = true;
      } else if (is_bound_ident(toks[j].text)) {
        bounded = true;
      }
    }
    if (tagged_read && !bounded) {
      diags->push_back(
          {file.rel_path, toks[i].line, "R7",
           "remote pointer-chase loop without a hop bound: per-node tagged reads "
           "(CheckTag/ReadTagged) follow pointers the remote cell controls, so a "
           "rogue peer can hang this reader; use CarefulRef::ChaseChain / "
           "ReadSeqlocked or bound the walk (no-survivor-hang discipline)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-file enum rules R4-R5.
// ---------------------------------------------------------------------------

struct Enumerator {
  std::string name;
  uint64_t value;
  int line;
};

// Parses the body of an enum starting at the '{' token at `open`, resolving
// implicit values. Only literal values are resolved; expressions stop value
// tracking for R5 (none exist in this codebase).
std::vector<Enumerator> ParseEnumBody(const std::vector<Token>& toks, size_t open) {
  std::vector<Enumerator> out;
  uint64_t next_value = 0;
  bool value_known = true;
  for (size_t i = open + 1; i < toks.size() && toks[i].text != "}";) {
    if (toks[i].kind != Token::kIdent) {
      ++i;
      continue;
    }
    Enumerator e{toks[i].text, 0, toks[i].line};
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "=") {
      ++j;
      if (j < toks.size() && toks[j].kind == Token::kNumber) {
        e.value = std::stoull(toks[j].text, nullptr, 0);
        next_value = e.value + 1;
        value_known = true;
        ++j;
      } else {
        value_known = false;  // Expression initializer: skip value tracking.
      }
      // Skip to the ',' or '}'.
      while (j < toks.size() && toks[j].text != "," && toks[j].text != "}") {
        ++j;
      }
    } else {
      e.value = next_value++;
    }
    if (value_known) {
      out.push_back(e);
    }
    i = (j < toks.size() && toks[j].text == ",") ? j + 1 : j;
  }
  return out;
}

// Finds `enum [class] <name> [ : type ] {` and returns the index of the '{'.
std::optional<size_t> FindEnum(const std::vector<Token>& toks, const std::string& name) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Token::kIdent && toks[i].text == "enum") {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "class") {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Token::kIdent && toks[j].text == name) {
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
          ++j;
        }
        if (j < toks.size() && toks[j].text == "{") {
          return j;
        }
      }
    }
  }
  return std::nullopt;
}

// R4: every TraceEvent enumerator appears as `TraceEvent::<name>` inside the
// body of the TraceEventName function definition.
void CheckR4(const std::vector<SourceFile>& files, std::vector<Diagnostic>* diags) {
  const SourceFile* enum_file = nullptr;
  std::vector<Enumerator> events;
  for (const SourceFile& file : files) {
    if (auto open = FindEnum(file.tokens, "TraceEvent")) {
      enum_file = &file;
      events = ParseEnumBody(file.tokens, *open);
      break;
    }
  }
  if (enum_file == nullptr) {
    return;  // Nothing to check in this tree.
  }
  // Locate the TraceEventName definition: identifier followed by '(',
  // a ')' and then '{' (a declaration ends with ';').
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::kIdent || toks[i].text != "TraceEventName" ||
          toks[i + 1].text != "(") {
        continue;
      }
      size_t j = i + 1;
      int depth = 0;
      while (j < toks.size()) {
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          if (--depth == 0) {
            break;
          }
        }
        ++j;
      }
      ++j;
      if (j >= toks.size() || toks[j].text != "{") {
        continue;  // Declaration, not definition.
      }
      // Collect TraceEvent::<name> references in the function body.
      std::set<std::string> handled;
      int body_depth = 0;
      const int fn_line = toks[i].line;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "{") {
          ++body_depth;
        } else if (toks[j].text == "}") {
          if (--body_depth == 0) {
            break;
          }
        } else if (toks[j].kind == Token::kIdent && toks[j].text == "TraceEvent" &&
                   j + 2 < toks.size() && toks[j + 1].text == "::") {
          handled.insert(toks[j + 2].text);
        }
      }
      for (const Enumerator& e : events) {
        if (handled.count(e.name) == 0) {
          diags->push_back({file.rel_path, fn_line, "R4",
                            "TraceEvent::" + e.name +
                                " is not handled in the TraceEventName switch; the "
                                "post-mortem trace would print '?'"});
        }
      }
      return;
    }
  }
  diags->push_back({enum_file->rel_path, 1, "R4",
                    "enum TraceEvent is defined but no TraceEventName definition was found "
                    "in the scanned tree"});
}

// R5: KernelTypeTag values must be unique; a duplicate tag would let the
// careful reference protocol validate a pointer against the wrong type.
void CheckR5(const std::vector<SourceFile>& files, std::vector<Diagnostic>* diags) {
  for (const SourceFile& file : files) {
    auto open = FindEnum(file.tokens, "KernelTypeTag");
    if (!open) {
      continue;
    }
    std::map<uint64_t, std::string> seen;
    for (const Enumerator& e : ParseEnumBody(file.tokens, *open)) {
      auto [it, inserted] = seen.emplace(e.value, e.name);
      if (!inserted) {
        std::ostringstream msg;
        msg << "duplicate kernel type tag 0x" << std::hex << std::uppercase << e.value
            << std::dec << ": " << e.name << " collides with " << it->second
            << "; the type-tag defense (paper 4.1 step 4) requires unique tags";
        diags->push_back({file.rel_path, e.line, "R5", msg.str()});
      }
    }
  }
}

template <void (*PerFile)(const SourceFile&, std::vector<Diagnostic>*)>
void ForEachFile(const RuleContext& ctx) {
  for (const SourceFile& file : *ctx.files) {
    PerFile(file, ctx.diags);
  }
}

void RunR4(const RuleContext& ctx) { CheckR4(*ctx.files, ctx.diags); }
void RunR5(const RuleContext& ctx) { CheckR5(*ctx.files, ctx.diags); }

}  // namespace

// Whole-program rules, defined in rules_whole_program.cc.
void CheckR8(const RuleContext& ctx);
void CheckR9(const RuleContext& ctx);
void CheckR10(const RuleContext& ctx);
void CheckR11(const RuleContext& ctx);

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"R1", "no direct PhysMem access from src/core/", &ForEachFile<CheckR1>},
      {"R2", "RawWrite/RawRead backdoor confined to the fault injector",
       &ForEachFile<CheckR2>},
      {"R3", "BusError converted to Status at the careful-ref boundary",
       &ForEachFile<CheckR3>},
      {"R4", "every TraceEvent enumerator named in TraceEventName", &RunR4},
      {"R5", "KernelTypeTag values pairwise distinct", &RunR5},
      {"R6", "mutating RPC handlers registered at-most-once", &ForEachFile<CheckR6>},
      {"R7", "remote pointer-chase loops hop-bounded", &ForEachFile<CheckR7>},
      {"R8", "lock-order consistency across translation units", &CheckR8},
      {"R9", "Status/Result results consumed, returned, or (void)-justified",
       &CheckR9},
      {"R10", "determinism purity on simulator/campaign-reachable paths",
       &CheckR10},
      {"R11", "tagged remote structures only behind CarefulRef", &CheckR11},
  };
  return kRules;
}

std::vector<Suppression> ParseSuppressions(const SourceFile& file,
                                           std::vector<Diagnostic>* diags) {
  std::vector<Suppression> sups;
  for (const Comment& comment : file.comments) {
    const size_t marker = comment.text.find("hive-lint:");
    if (marker == std::string::npos) {
      continue;
    }
    const size_t allow = comment.text.find("allow(", marker);
    const size_t close = allow == std::string::npos ? std::string::npos
                                                    : comment.text.find(')', allow);
    if (close == std::string::npos) {
      diags->push_back({file.rel_path, comment.line, "R0",
                        "malformed hive-lint comment: expected 'allow(<rule>)'"});
      continue;
    }
    // Justification: non-empty text after the closing ')' and a separator.
    std::string rest = comment.text.substr(close + 1);
    while (!rest.empty() && (rest.front() == ':' || rest.front() == '-' ||
                             std::isspace(static_cast<unsigned char>(rest.front())))) {
      rest.erase(rest.begin());
    }
    if (rest.size() < 8) {  // A real reason, not "ok" or empty.
      diags->push_back({file.rel_path, comment.line, "R0",
                        "hive-lint suppression requires a justification after the rule "
                        "('// hive-lint: allow(Rn): <why this is safe>')"});
      continue;
    }
    std::string rules = comment.text.substr(allow + 6, close - allow - 6);
    std::stringstream ss(rules);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](char c) { return std::isspace(static_cast<unsigned char>(c)); }),
                 rule.end());
      if (!rule.empty()) {
        sups.push_back({rule, comment.line});
      }
    }
  }
  return sups;
}

}  // namespace lint
