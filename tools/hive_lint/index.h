// hive_lint whole-program index (pass 1 of 2).
//
// A single sweep over every tokenized file builds the program model the
// whole-program rules (R8-R11) consume:
//   - function definitions (qualified name, body token range, return kind)
//     and Status/Result-returning declarations;
//   - call edges: identifier-followed-by-'(' sites inside each body,
//     resolved by simple name (all same-named definitions are linked, which
//     over-approximates overloads -- the right bias for a linter);
//   - lock acquisition sites (std::lock_guard / unique_lock / scoped_lock /
//     explicit .lock()) with the token index where the guard's scope closes,
//     plus seqlock read sites (CarefulRef::ReadSeqlocked);
//   - container determinism facts: names declared as std::unordered_map/
//     unordered_set (members or locals) and pointer-keyed ordered
//     containers, plus every range-for site with the identifier it iterates;
//   - struct definitions, so rules can recognize the tagged remote
//     structures (Remote*) by name.
//
// There is no libclang here: the "parser" is a brace/paren-matching token
// scanner. It is documented heuristic by heuristic and unit-tested in
// tests/lint_index_test.cc; soundness is traded for zero dependencies and a
// sub-second full-tree pass.

#ifndef HIVE_TOOLS_HIVE_LINT_INDEX_H_
#define HIVE_TOOLS_HIVE_LINT_INDEX_H_

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tools/hive_lint/lexer.h"

namespace lint {

// One identifier-followed-by-'(' site inside a function body. `callee` is
// the last identifier of the (possibly qualified / member) callee chain.
struct CallSite {
  std::string callee;
  int line = 0;
  size_t tok = 0;  // Token index of the callee identifier.
};

// One lock acquisition site. A std::scoped_lock(a, b) contributes one site
// with two keys (those locks are acquired deadlock-free as a unit, so no
// order edge is drawn between keys of the same site).
struct LockSite {
  std::vector<std::string> keys;  // Canonical lock names, e.g. "mu_" or "state.mutex".
  int line = 0;
  size_t tok = 0;        // Token index of the acquisition.
  size_t scope_end = 0;  // Token index of the '}' closing the guard's scope
                         // (body end for explicit .lock()).
};

// One range-based for site: `for (decl : range)`. `range_ident` is the last
// identifier of the range expression ("faults" for state->spec->faults).
struct RangeForSite {
  std::string range_ident;
  bool calls_range = false;  // Range expression ends in a call: `Foo()`.
  int line = 0;
};

struct FunctionDef {
  std::string name;       // Simple name: "RunScenario", "AllProcesses".
  std::string qualified;  // Scope-qualified: "campaign::RunScenario".
  std::string file;       // rel_path of the defining file.
  int line = 0;
  size_t body_begin = 0;  // Token index of the body '{'.
  size_t body_end = 0;    // Token index of the matching '}'.
  bool returns_status = false;  // base::Status
  bool returns_result = false;  // base::Result<T> / StatusOr
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
  std::vector<CallSite> seqlock_reads;
  std::vector<RangeForSite> range_fors;
};

struct ProgramIndex {
  std::vector<std::unique_ptr<FunctionDef>> functions;
  // Simple name -> every definition with that name (cross-TU; overloads and
  // same-named methods of different classes all land in one bucket).
  std::map<std::string, std::vector<FunctionDef*>> by_name;
  // Simple names known (from a definition or declaration, any TU) to return
  // base::Status, and names for which *every* sighting returns Status /
  // Result -- the unambiguous set R9 flags on.
  std::set<std::string> status_returning;
  std::set<std::string> status_ambiguous;  // Also seen with another return type.
  // Names (members or locals) declared with an iteration-order-unstable
  // container type. Name-keyed across TUs: an over-approximation when two
  // classes share a member name, which only widens R10's net.
  std::set<std::string> unordered_containers;
  // Declaration sites of pointer-keyed std::map/std::set (address-ordered
  // iteration): file, line, declared name.
  struct PtrKeyedDecl {
    std::string file;
    int line;
    std::string name;
  };
  std::vector<PtrKeyedDecl> ptr_keyed_ordered;
  // Struct/class names defined anywhere in the scanned tree.
  std::set<std::string> struct_names;

  std::vector<FunctionDef*> Resolve(const std::string& name) const;
  // Definitions reachable from any root name via call edges (roots included).
  std::set<const FunctionDef*> ReachableFrom(const std::vector<std::string>& roots) const;
  // Every lock key acquired by `fn` or (transitively) by its callees.
  // `memo` caches across calls; cycles in the call graph are handled.
  const std::set<std::string>& TransitiveLocks(
      const FunctionDef* fn,
      std::map<const FunctionDef*, std::set<std::string>>* memo) const;
};

// Pass 1 entry point: index one tokenized file into `index`.
void IndexFile(const SourceFile& file, ProgramIndex* index);

// Matches forward from the opener token at `open` to its closer; returns the
// closer's index, or tokens.size() when unmatched. Exposed for rules/tests.
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const std::string& opener, const std::string& closer);

}  // namespace lint

#endif  // HIVE_TOOLS_HIVE_LINT_INDEX_H_
