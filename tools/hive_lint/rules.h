// hive_lint rule framework (pass 2 of 2).
//
// Every rule is a free function over the RuleContext: the tokenized files
// plus the whole-program index built in pass 1. Rules append Diagnostics;
// the driver applies suppressions, sorts, and renders (text or JSON).
//
// Rule lifecycle (see DESIGN.md "Verification layers"):
//   1. add the rule function and register it in AllRules() with an id and a
//      one-line title (the id is what suppressions and the baseline name);
//   2. add a bad/good fixture pair under tests/lint_fixtures/ and a
//      hive_lint_fixture_<id> ctest entry proving the bad twin trips
//      exactly this rule and the good twin stays silent;
//   3. run the tool on the real tree: fix or justify (allow(<id>)) every
//      hit, leaving ci/lint_baseline.json empty;
//   4. document the rule in the README table.

#ifndef HIVE_TOOLS_HIVE_LINT_RULES_H_
#define HIVE_TOOLS_HIVE_LINT_RULES_H_

#include <string>
#include <vector>

#include "tools/hive_lint/index.h"
#include "tools/hive_lint/lexer.h"

namespace lint {

struct Diagnostic {
  std::string rel_path;
  int line;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::string rule;
  int line;
};

struct RuleContext {
  const std::vector<SourceFile>* files = nullptr;
  const ProgramIndex* index = nullptr;
  std::vector<Diagnostic>* diags = nullptr;
};

struct RuleInfo {
  const char* id;     // "R1" ... "R11".
  const char* title;  // One-line summary for --help / --stats.
  void (*fn)(const RuleContext&);
};

// Registered rules in id order. R0 (suppression hygiene) is not listed: it
// is emitted by ParseSuppressions while the driver collects suppressions.
const std::vector<RuleInfo>& AllRules();

// Parses `hive-lint: allow(Rn): justification` comments; emits R0
// diagnostics for malformed or unjustified markers.
std::vector<Suppression> ParseSuppressions(const SourceFile& file,
                                           std::vector<Diagnostic>* diags);

}  // namespace lint

#endif  // HIVE_TOOLS_HIVE_LINT_RULES_H_
