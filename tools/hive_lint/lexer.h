// hive_lint lexer: a dependency-free C++ tokenizer shared by every rule.
//
// The token stream is what the rules pattern-match against, so its blind
// spots become rule blind spots. Three classes of input are handled
// explicitly because per-file rules used to false-positive inside them:
//   - raw string literals, including encoding-prefixed forms
//     (R"(..)", u8R"(..)", LR"(..)", uR"(..)", UR"(..)") -- their contents
//     collapse to a single opaque string token;
//   - line-spliced comments: a `//` comment whose line ends in a backslash
//     continues onto the next physical line (the preprocessor splices them
//     before comment removal), so the spliced tail must not be tokenized as
//     code;
//   - `#if 0 ... #endif` regions: disabled code is skipped entirely (an
//     `#else` arm of an `#if 0` is live and is tokenized). Other
//     preprocessor conditionals are not evaluated; their branches all
//     tokenize, which is the conservative choice for a linter.
//
// Comments never enter the token stream; they are collected separately so
// suppression comments can be parsed and commented-out code cannot trip a
// rule.

#ifndef HIVE_TOOLS_HIVE_LINT_LEXER_H_
#define HIVE_TOOLS_HIVE_LINT_LEXER_H_

#include <string>
#include <vector>

namespace lint {

struct Token {
  enum Kind { kIdent, kNumber, kString, kCharLit, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;
  int line;  // Line the comment ends on.
};

struct SourceFile {
  std::string rel_path;  // Relative to the scan root, '/' separators.
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes `text` into `out->tokens` / `out->comments`.
void Tokenize(const std::string& text, SourceFile* out);

bool IsIdentStart(char c);
bool IsIdentChar(char c);

}  // namespace lint

#endif  // HIVE_TOOLS_HIVE_LINT_LEXER_H_
