#include "tools/hive_lint/index.h"

#include <algorithm>
#include <deque>

namespace lint {
namespace {

// Keywords that can never be a function name or a callee. Keeps control
// statements and casts out of the call graph.
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "if",       "else",     "for",      "while",    "do",       "switch",
      "case",     "return",   "sizeof",   "alignof",  "alignas",  "new",
      "delete",   "throw",    "catch",    "try",      "operator", "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "typeid",
      "co_await", "co_return", "co_yield", "requires", "static_assert",
      "defined",  "assert",
  };
  return kKeywords;
}

bool IsKeyword(const std::string& text) { return Keywords().count(text) > 0; }

// Matches a template argument list starting at the '<' token at `open`.
// Returns the index of the matching '>' or tokens.size() on failure. Angle
// brackets are ambiguous with comparisons, so the match is budgeted and
// bails on statement punctuation -- callers treat failure as "not a
// template".
size_t MatchAngles(const std::vector<Token>& toks, size_t open, size_t budget = 64) {
  int depth = 0;
  for (size_t j = open; j < toks.size() && j < open + budget; ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) {
        return j;
      }
    } else if (t == ";" || t == "{" || t == "}") {
      break;
    }
  }
  return toks.size();
}

struct Header {
  std::string chain;   // "Scheduler::AllProcesses" for out-of-line methods.
  std::string simple;  // Last chain element.
  size_t name_tok = 0;
  size_t params_open = 0;
  size_t body_begin = 0;  // Definition only.
  size_t body_end = 0;
  size_t end = 0;  // Last token consumed (';' or body '}').
  bool returns_status = false;
  bool returns_result = false;
  bool returns_other = false;
};

enum class HeaderKind { kNo, kDefinition, kDeclaration };

// Scans the return-type tokens directly before the name chain. The walk
// stops at statement boundaries; what remains is the declaration specifier
// sequence ("base :: Status", "static bool", ...). Constructors simply see
// an empty sequence.
void ClassifyReturnType(const std::vector<Token>& toks, size_t chain_start, Header* h) {
  static const std::set<std::string> kBoundary = {";", "{", "}", ":", "(", ")",
                                                  ",", "public", "private",
                                                  "protected", "="};
  bool saw_type_word = false;
  size_t steps = 0;
  for (size_t j = chain_start; j > 0 && steps < 24; ++steps) {
    --j;
    const Token& t = toks[j];
    if (t.kind == Token::kPunct && kBoundary.count(t.text) > 0) {
      break;
    }
    if (t.kind == Token::kIdent && kBoundary.count(t.text) > 0) {
      break;
    }
    if (t.text == "Status" || t.text == "StatusOr") {
      h->returns_status = true;
    } else if (t.text == "Result") {
      h->returns_result = true;
    } else if (t.kind == Token::kIdent && t.text != "base" && t.text != "std" &&
               t.text != "inline" && t.text != "static" && t.text != "virtual" &&
               t.text != "constexpr" && t.text != "explicit" && t.text != "friend" &&
               t.text != "const") {
      saw_type_word = true;
    }
  }
  // "base::Result<T>" must win over the T inside the angle brackets.
  if (h->returns_status || h->returns_result) {
    return;
  }
  h->returns_other = saw_type_word;
}

// Tries to match a function definition or declaration whose name chain
// starts at token `i`. The grammar accepted (heuristically):
//   ident (:: ident)* ( params ) [const|noexcept[(..)]|override|final|&]*
//       [-> trailing-type] [: ctor-init-list] ( '{' body '}' | ';' | '= ..;' )
// Anything else returns kNo and the caller advances one token.
HeaderKind MatchFunctionHeader(const std::vector<Token>& toks, size_t i, Header* h) {
  const size_t n = toks.size();
  if (toks[i].kind != Token::kIdent || IsKeyword(toks[i].text)) {
    return HeaderKind::kNo;
  }
  // Name chain.
  size_t j = i;
  std::string chain = toks[j].text;
  std::string simple = toks[j].text;
  ++j;
  while (j + 1 < n && toks[j].text == "::" && toks[j + 1].kind == Token::kIdent) {
    if (IsKeyword(toks[j + 1].text)) {
      return HeaderKind::kNo;
    }
    chain += "::" + toks[j + 1].text;
    simple = toks[j + 1].text;
    j += 2;
  }
  if (j >= n || toks[j].text != "(") {
    return HeaderKind::kNo;
  }
  h->chain = chain;
  h->simple = simple;
  h->name_tok = i;
  h->params_open = j;
  const size_t rp = MatchForward(toks, j, "(", ")");
  if (rp >= n) {
    return HeaderKind::kNo;
  }
  size_t k = rp + 1;
  // Trailing qualifiers.
  while (k < n) {
    const std::string& t = toks[k].text;
    if (t == "const" || t == "override" || t == "final" || t == "mutable" ||
        t == "&") {
      ++k;
    } else if (t == "noexcept") {
      ++k;
      if (k < n && toks[k].text == "(") {
        k = MatchForward(toks, k, "(", ")") + 1;
      }
    } else if (t == "->") {
      // Trailing return type: skip to the body / terminator.
      ++k;
      while (k < n && toks[k].text != "{" && toks[k].text != ";" &&
             toks[k].text != "=") {
        ++k;
      }
      break;
    } else {
      break;
    }
  }
  if (k >= n) {
    return HeaderKind::kNo;
  }
  // Constructor initializer list: `: member_(x), other_{y} {`.
  if (toks[k].text == ":") {
    ++k;
    while (k < n) {
      while (k < n && (toks[k].kind == Token::kIdent || toks[k].text == "::")) {
        ++k;
      }
      if (k < n && toks[k].text == "<") {
        const size_t close = MatchAngles(toks, k);
        if (close >= n) {
          return HeaderKind::kNo;
        }
        k = close + 1;
      }
      if (k >= n || (toks[k].text != "(" && toks[k].text != "{")) {
        return HeaderKind::kNo;
      }
      const bool paren = toks[k].text == "(";
      k = MatchForward(toks, k, paren ? "(" : "{", paren ? ")" : "}") + 1;
      if (k < n && toks[k].text == ",") {
        ++k;
        continue;
      }
      break;
    }
  }
  if (k >= n) {
    return HeaderKind::kNo;
  }
  ClassifyReturnType(toks, i, h);
  if (toks[k].text == "{") {
    h->body_begin = k;
    h->body_end = MatchForward(toks, k, "{", "}");
    if (h->body_end >= n) {
      return HeaderKind::kNo;
    }
    h->end = h->body_end;
    return HeaderKind::kDefinition;
  }
  if (toks[k].text == ";") {
    h->end = k;
    return HeaderKind::kDeclaration;
  }
  if (toks[k].text == "=") {
    // `= default` / `= delete` / `= 0`.
    while (k < n && toks[k].text != ";") {
      ++k;
    }
    h->end = k;
    return HeaderKind::kDeclaration;
  }
  return HeaderKind::kNo;
}

// Detects a container declaration at token `i`:
//   std::unordered_map<..> name   -> unordered_containers
//   std::unordered_set<..> name   -> unordered_containers
//   std::map<K*, ..> / std::set<K*> name -> ptr_keyed_ordered
// Returns the token index to resume from, or `i` when nothing matched.
size_t TryContainerDecl(const std::vector<Token>& toks, size_t i,
                        const std::string& rel_path, ProgramIndex* index) {
  const size_t n = toks.size();
  if (toks[i].text != "std" || i + 2 >= n || toks[i + 1].text != "::") {
    return i;
  }
  const std::string& kind = toks[i + 2].text;
  const bool unordered = kind == "unordered_map" || kind == "unordered_set";
  const bool ordered = kind == "map" || kind == "set";
  if (!unordered && !ordered) {
    return i;
  }
  size_t j = i + 3;
  if (j >= n || toks[j].text != "<") {
    return i;
  }
  const size_t close = MatchAngles(toks, j);
  if (close >= n) {
    return i;
  }
  // Pointer-keyed ordered containers iterate in address order. The key type
  // is everything up to the first top-level ',' (or the whole list for set).
  bool ptr_key = false;
  int depth = 0;
  for (size_t t = j; t <= close; ++t) {
    if (toks[t].text == "<") {
      ++depth;
    } else if (toks[t].text == ">") {
      --depth;
    } else if (toks[t].text == "," && depth == 1) {
      break;
    } else if (toks[t].text == "*" && depth == 1) {
      ptr_key = true;
    }
  }
  size_t name_tok = close + 1;
  if (name_tok >= n || toks[name_tok].kind != Token::kIdent) {
    return i;  // A type use (parameter, return type, template arg), not a decl.
  }
  const size_t after = name_tok + 1;
  if (after < n && (toks[after].text == ";" || toks[after].text == "=" ||
                    toks[after].text == "{")) {
    if (unordered) {
      index->unordered_containers.insert(toks[name_tok].text);
    } else if (ptr_key) {
      index->ptr_keyed_ordered.push_back(
          {rel_path, toks[name_tok].line, toks[name_tok].text});
    }
    return after;
  }
  return i;
}

// Joins the texts of tokens [begin, end) -- used to canonicalize lock keys.
std::string JoinTokens(const std::vector<Token>& toks, size_t begin, size_t end) {
  std::string out;
  for (size_t j = begin; j < end && j < toks.size(); ++j) {
    out += toks[j].text;
  }
  return out;
}

// Token index of the '}' closing the innermost scope open at `at` (searching
// within (at, limit]); `limit` when the scope runs to the body end.
size_t FindScopeEnd(const std::vector<Token>& toks, size_t at, size_t limit) {
  int depth = 0;
  for (size_t j = at; j <= limit && j < toks.size(); ++j) {
    if (toks[j].text == "{") {
      ++depth;
    } else if (toks[j].text == "}") {
      if (depth == 0) {
        return j;
      }
      --depth;
    }
  }
  return limit;
}

// Scans a function body for call sites, lock sites, seqlock reads,
// range-for sites, and local container declarations.
void ScanBody(const SourceFile& file, FunctionDef* def, ProgramIndex* index) {
  const std::vector<Token>& toks = file.tokens;
  for (size_t j = def->body_begin + 1; j < def->body_end; ++j) {
    const Token& t = toks[j];
    if (t.kind != Token::kIdent) {
      continue;
    }
    // Local container declarations feed the same determinism facts as
    // members.
    const size_t advanced = TryContainerDecl(toks, j, file.rel_path, index);
    if (advanced != j) {
      j = advanced;
      continue;
    }
    // Range-based for.
    if (t.text == "for" && j + 1 < toks.size() && toks[j + 1].text == "(") {
      const size_t rp = MatchForward(toks, j + 1, "(", ")");
      if (rp >= toks.size()) {
        continue;
      }
      int parens = 0, brackets = 0, braces = 0;
      size_t colon = 0;
      for (size_t k = j + 1; k < rp; ++k) {
        const std::string& p = toks[k].text;
        if (p == "(") ++parens;
        else if (p == ")") --parens;
        else if (p == "[") ++brackets;
        else if (p == "]") --brackets;
        else if (p == "{") ++braces;
        else if (p == "}") --braces;
        else if (p == ":" && parens == 1 && brackets == 0 && braces == 0) {
          colon = k;
          break;
        } else if (p == ";") {
          break;  // Classic three-clause for.
        }
      }
      if (colon != 0) {
        RangeForSite site;
        site.line = t.line;
        size_t last = rp - 1;
        if (toks[last].text == ")") {
          // Range expression is a call: find its callee.
          int depth = 1;
          size_t k = last;
          while (k > colon && depth > 0) {
            --k;
            if (toks[k].text == ")") ++depth;
            else if (toks[k].text == "(") --depth;
          }
          if (k > colon && toks[k - 1].kind == Token::kIdent) {
            site.range_ident = toks[k - 1].text;
            site.calls_range = true;
          }
        } else if (toks[last].kind == Token::kIdent) {
          site.range_ident = toks[last].text;
        }
        if (!site.range_ident.empty()) {
          def->range_fors.push_back(site);
        }
      }
      continue;  // The body of the for is scanned by the outer loop anyway.
    }
    // RAII lock guards: std::lock_guard<..> g(mu); scoped_lock may name
    // several locks in one site.
    if (t.text == "lock_guard" || t.text == "unique_lock" || t.text == "scoped_lock") {
      size_t k = j + 1;
      if (k < toks.size() && toks[k].text == "<") {
        const size_t close = MatchAngles(toks, k);
        if (close >= toks.size()) {
          continue;
        }
        k = close + 1;
      }
      if (k >= toks.size() || toks[k].kind != Token::kIdent) {
        continue;  // A type use, not a guard declaration.
      }
      ++k;  // Guard variable name.
      if (k >= toks.size() || toks[k].text != "(") {
        continue;
      }
      const size_t rp = MatchForward(toks, k, "(", ")");
      if (rp >= toks.size() || rp > def->body_end) {
        continue;
      }
      LockSite site;
      site.line = t.line;
      site.tok = j;
      int depth = 0;
      size_t arg_begin = k + 1;
      for (size_t a = k + 1; a <= rp; ++a) {
        const std::string& p = toks[a].text;
        if (p == "(" || p == "[" || p == "{" || p == "<") {
          ++depth;
        } else if (p == ")" || p == "]" || p == "}" || p == ">") {
          --depth;
        }
        if ((p == "," && depth == 0) || a == rp) {
          std::string key = JoinTokens(toks, arg_begin, a);
          // Normalize the common spellings: `&mu`, `*mu_ptr`, `this->mu_`.
          while (!key.empty() && (key.front() == '&' || key.front() == '*')) {
            key.erase(key.begin());
          }
          if (key.rfind("this->", 0) == 0) {
            key = key.substr(6);
          }
          if (!key.empty() && key != "std::adopt_lock" && key != "std::defer_lock" &&
              key != "std::try_to_lock") {
            site.keys.push_back(key);
          }
          arg_begin = a + 1;
        }
      }
      if (!site.keys.empty()) {
        site.scope_end = FindScopeEnd(toks, rp + 1, def->body_end);
        def->locks.push_back(site);
      }
      j = rp;
      continue;
    }
    // Explicit mu.lock(): held (conservatively) to the end of the body.
    if (t.text == "lock" && j > 0 && (toks[j - 1].text == "." || toks[j - 1].text == "->") &&
        j + 1 < toks.size() && toks[j + 1].text == "(" && j >= 2 &&
        toks[j - 2].kind == Token::kIdent) {
      LockSite site;
      site.line = t.line;
      site.tok = j;
      site.keys.push_back(toks[j - 2].text);
      site.scope_end = def->body_end;
      def->locks.push_back(site);
      continue;
    }
    // Plain or templated call site.
    if (IsKeyword(t.text)) {
      continue;
    }
    size_t call_paren = 0;
    if (j + 1 < toks.size() && toks[j + 1].text == "(") {
      call_paren = j + 1;
    } else if (j + 1 < toks.size() && toks[j + 1].text == "<") {
      const size_t close = MatchAngles(toks, j + 1, 24);
      if (close < toks.size() && close + 1 < toks.size() &&
          toks[close + 1].text == "(") {
        bool type_like = true;
        for (size_t a = j + 2; a < close; ++a) {
          const Token& arg = toks[a];
          if (arg.kind == Token::kString || arg.kind == Token::kCharLit ||
              arg.text == ";" || arg.text == "==") {
            type_like = false;
            break;
          }
        }
        if (type_like) {
          call_paren = close + 1;
        }
      }
    }
    if (call_paren != 0) {
      def->calls.push_back({t.text, t.line, j});
      if (t.text == "ReadSeqlocked") {
        def->seqlock_reads.push_back({t.text, t.line, j});
      }
    }
  }
}

}  // namespace

size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const std::string& opener, const std::string& closer) {
  int depth = 0;
  size_t j = open;
  for (; j < toks.size(); ++j) {
    if (toks[j].text == opener) {
      ++depth;
    } else if (toks[j].text == closer && --depth == 0) {
      break;
    }
  }
  return j;
}

void IndexFile(const SourceFile& file, ProgramIndex* index) {
  const std::vector<Token>& toks = file.tokens;
  const size_t n = toks.size();
  struct ScopeFrame {
    std::string name;  // Empty for plain blocks and anonymous namespaces.
  };
  std::vector<ScopeFrame> scopes;
  // Names seen with a non-Status return type anywhere poison R9's
  // "unambiguously Status-returning" set.
  auto note_return_kind = [&](const Header& h) {
    if (h.returns_status || h.returns_result) {
      index->status_returning.insert(h.simple);
    } else if (h.returns_other) {
      index->status_ambiguous.insert(h.simple);
    }
  };
  size_t i = 0;
  while (i < n) {
    const Token& t = toks[i];
    if (t.kind == Token::kIdent) {
      if (t.text == "namespace") {
        size_t j = i + 1;
        std::string name;
        while (j < n && (toks[j].kind == Token::kIdent || toks[j].text == "::")) {
          if (toks[j].kind == Token::kIdent) {
            name = name.empty() ? toks[j].text : name + "::" + toks[j].text;
          }
          ++j;
        }
        if (j < n && toks[j].text == "{") {
          scopes.push_back({name});
          i = j + 1;
          continue;
        }
        i = j;
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        size_t j = i + 1;
        std::string name;
        if (j < n && toks[j].kind == Token::kIdent) {
          name = toks[j].text;
          ++j;
        }
        // Skip `final` and the base clause; stop at the body or a
        // non-definition use (fwd decl, elaborated type, parameter).
        size_t budget = 48;
        while (j < n && budget-- > 0 && toks[j].text != "{" && toks[j].text != ";" &&
               toks[j].text != ")" && toks[j].text != "=" && toks[j].text != ",") {
          ++j;
        }
        if (j < n && toks[j].text == "{" && !name.empty()) {
          index->struct_names.insert(name);
          scopes.push_back({name});
          i = j + 1;
          continue;
        }
        i = j;
        continue;
      }
      if (t.text == "enum") {
        size_t j = i + 1;
        size_t budget = 16;
        while (j < n && budget-- > 0 && toks[j].text != "{" && toks[j].text != ";") {
          ++j;
        }
        i = (j < n && toks[j].text == "{") ? MatchForward(toks, j, "{", "}") + 1 : j + 1;
        continue;
      }
      if (t.text == "using" || t.text == "typedef") {
        while (i < n && toks[i].text != ";") {
          ++i;
        }
        ++i;
        continue;
      }
      if (t.text == "template" && i + 1 < n && toks[i + 1].text == "<") {
        const size_t close = MatchAngles(toks, i + 1);
        i = close < n ? close + 1 : i + 1;
        continue;
      }
      const size_t advanced = TryContainerDecl(toks, i, file.rel_path, index);
      if (advanced != i) {
        i = advanced;
        continue;
      }
      Header h;
      switch (MatchFunctionHeader(toks, i, &h)) {
        case HeaderKind::kDefinition: {
          auto def = std::make_unique<FunctionDef>();
          def->name = h.simple;
          std::string scope;
          for (const ScopeFrame& frame : scopes) {
            if (!frame.name.empty()) {
              scope += frame.name + "::";
            }
          }
          def->qualified = scope + h.chain;
          def->file = file.rel_path;
          def->line = toks[h.name_tok].line;
          def->body_begin = h.body_begin;
          def->body_end = h.body_end;
          def->returns_status = h.returns_status;
          def->returns_result = h.returns_result;
          ScanBody(file, def.get(), index);
          note_return_kind(h);
          index->by_name[def->name].push_back(def.get());
          index->functions.push_back(std::move(def));
          i = h.end + 1;
          continue;
        }
        case HeaderKind::kDeclaration:
          note_return_kind(h);
          i = h.end + 1;
          continue;
        case HeaderKind::kNo:
          break;
      }
      ++i;
      continue;
    }
    if (t.text == "{") {
      scopes.push_back({""});
      ++i;
      continue;
    }
    if (t.text == "}") {
      if (!scopes.empty()) {
        scopes.pop_back();
      }
      ++i;
      continue;
    }
    ++i;
  }
}

std::vector<FunctionDef*> ProgramIndex::Resolve(const std::string& name) const {
  auto it = by_name.find(name);
  return it == by_name.end() ? std::vector<FunctionDef*>{} : it->second;
}

std::set<const FunctionDef*> ProgramIndex::ReachableFrom(
    const std::vector<std::string>& roots) const {
  std::set<const FunctionDef*> reachable;
  std::deque<const FunctionDef*> worklist;
  for (const std::string& root : roots) {
    for (FunctionDef* def : Resolve(root)) {
      if (reachable.insert(def).second) {
        worklist.push_back(def);
      }
    }
  }
  while (!worklist.empty()) {
    const FunctionDef* def = worklist.front();
    worklist.pop_front();
    for (const CallSite& call : def->calls) {
      for (FunctionDef* callee : Resolve(call.callee)) {
        if (reachable.insert(callee).second) {
          worklist.push_back(callee);
        }
      }
    }
  }
  return reachable;
}

const std::set<std::string>& ProgramIndex::TransitiveLocks(
    const FunctionDef* fn,
    std::map<const FunctionDef*, std::set<std::string>>* memo) const {
  auto it = memo->find(fn);
  if (it != memo->end()) {
    return it->second;
  }
  // Seed the memo entry first so call-graph cycles terminate (a recursive
  // chain sees the partial set -- conservative for a linter).
  auto& slot = (*memo)[fn];
  std::set<std::string> acc;
  for (const LockSite& site : fn->locks) {
    acc.insert(site.keys.begin(), site.keys.end());
  }
  for (const CallSite& call : fn->calls) {
    for (FunctionDef* callee : Resolve(call.callee)) {
      if (callee == fn) {
        continue;
      }
      const std::set<std::string>& sub = TransitiveLocks(callee, memo);
      acc.insert(sub.begin(), sub.end());
    }
  }
  slot = std::move(acc);
  return (*memo)[fn];
}

}  // namespace lint
