// hive_campaign: seed-driven fault-campaign runner.
//
// Sweep mode (default): generate and run `--scenarios` randomized fault
// scenarios from `--seed`, in parallel on `--workers` threads, judging each
// with the containment oracle library. Any violation is minimized and
// reported with a self-contained repro line.
//
// Repro mode (`--scenario=K`): run exactly scenario K of the campaign rooted
// at `--seed` and print its full outcome. All output is a pure function of
// (seed, scenario, fixture): rerunning a printed repro line produces
// byte-identical output.
//
// Exit codes: 0 = all oracles passed, 1 = violation(s), 2 = usage error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/campaign/campaign.h"

namespace {

struct Args {
  uint64_t seed = 1;
  uint64_t scenarios = 200;
  int workers = 4;
  bool have_scenario = false;
  uint64_t scenario = 0;
  bool wild_write_fixture = false;
  bool no_dedup_fixture = false;
  bool no_hop_bound_fixture = false;
  bool message_faults_only = false;
  bool rogue_only = false;
  bool healthy_baseline = false;
  bool minimize = true;
  bool verbose = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: hive_campaign [--seed=N] [--scenarios=N] [--workers=N]\n"
               "                     [--scenario=K]\n"
               "                     [--fixture=wild_write|no_dedup|no_hop_bound]\n"
               "                     [--faults=message|rogue|none] [--no-minimize]\n"
               "                     [--verbose]\n"
               "\n"
               "  --seed=N             campaign master seed (default: $HIVE_TEST_SEED or 1)\n"
               "  --scenarios=N        number of scenarios to sweep (default 200)\n"
               "  --workers=N          worker threads (default 4)\n"
               "  --scenario=K         run only scenario K and print its outcome\n"
               "  --fixture=wild_write generate landing wild writes (firewall checking\n"
               "                       off); every scenario is expected to violate\n"
               "  --fixture=no_dedup   disable RPC duplicate suppression under a\n"
               "                       duplication-heavy message-fault plan; every\n"
               "                       scenario is expected to trip the at-most-once\n"
               "                       oracle\n"
               "  --fixture=no_hop_bound rogue cyclic-chain scenarios with the\n"
               "                       survivors' chain-chase hop bound removed; every\n"
               "                       scenario is expected to trip the\n"
               "                       no-survivor-hang oracle\n"
               "  --faults=message     restrict fault plans to SIPS message faults\n"
               "                       (drop/duplicate/delay/corrupt); the reliable\n"
               "                       transport must pass every oracle\n"
               "  --faults=rogue       restrict fault plans to one rogue-cell fault\n"
               "                       each (a live Byzantine cell); the survivors\n"
               "                       must excise the rogue and nobody else\n"
               "  --faults=none        rogue-sweep geometry with zero faults; the\n"
               "                       sensitivity baseline must see zero excisions\n"
               "  --no-minimize        skip minimization of violating scenarios\n"
               "  --verbose            print a line per scenario\n");
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (const char* env_seed = std::getenv("HIVE_TEST_SEED")) {
    if (!ParseU64(env_seed, &args->seed)) {
      std::fprintf(stderr, "hive_campaign: bad HIVE_TEST_SEED '%s'\n", env_seed);
      return false;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseU64(arg + 7, &value)) {
      args->seed = value;
    } else if (std::strncmp(arg, "--scenarios=", 12) == 0 && ParseU64(arg + 12, &value)) {
      args->scenarios = value;
    } else if (std::strncmp(arg, "--workers=", 10) == 0 && ParseU64(arg + 10, &value) &&
               value >= 1 && value <= 256) {
      args->workers = static_cast<int>(value);
    } else if (std::strncmp(arg, "--scenario=", 11) == 0 && ParseU64(arg + 11, &value)) {
      args->have_scenario = true;
      args->scenario = value;
    } else if (std::strcmp(arg, "--fixture=wild_write") == 0) {
      args->wild_write_fixture = true;
    } else if (std::strcmp(arg, "--fixture=no_dedup") == 0) {
      args->no_dedup_fixture = true;
    } else if (std::strcmp(arg, "--fixture=no_hop_bound") == 0) {
      args->no_hop_bound_fixture = true;
    } else if (std::strcmp(arg, "--faults=message") == 0) {
      args->message_faults_only = true;
    } else if (std::strcmp(arg, "--faults=rogue") == 0) {
      args->rogue_only = true;
    } else if (std::strcmp(arg, "--faults=none") == 0) {
      args->healthy_baseline = true;
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      args->minimize = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "hive_campaign: bad argument '%s'\n", arg);
      return false;
    }
  }
  return true;
}

int RunSingle(const Args& args) {
  campaign::GeneratorOptions gen_options;
  gen_options.wild_write_fixture = args.wild_write_fixture;
  gen_options.no_dedup_fixture = args.no_dedup_fixture;
  gen_options.no_hop_bound_fixture = args.no_hop_bound_fixture;
  gen_options.message_faults_only = args.message_faults_only;
  gen_options.rogue_only = args.rogue_only;
  gen_options.healthy_baseline = args.healthy_baseline;
  const campaign::ScenarioSpec spec =
      campaign::GenerateScenario(args.seed, args.scenario, gen_options);
  std::printf("%s\n", spec.ToString().c_str());
  const campaign::ScenarioResult result = campaign::RunScenario(spec);
  std::printf("end_time=%" PRId64 "ms excisions=%d fingerprint=0x%016" PRIx64 "\n",
              result.end_time / hive::kMillisecond, result.excisions,
              result.fingerprint);
  if (!result.violated()) {
    std::printf("all oracles passed\n");
    return 0;
  }
  std::printf("%s", result.ViolationReport().c_str());
  if (args.minimize) {
    const campaign::MinimizationResult minimized =
        campaign::MinimizeScenario(spec);
    if (minimized.reduced) {
      std::printf("minimized (%d runs): %s\n", minimized.runs,
                  minimized.minimized.ToString().c_str());
    }
  }
  return 1;
}

int RunSweep(const Args& args) {
  campaign::CampaignOptions options;
  options.master_seed = args.seed;
  options.num_scenarios = args.scenarios;
  options.workers = args.workers;
  options.wild_write_fixture = args.wild_write_fixture;
  options.no_dedup_fixture = args.no_dedup_fixture;
  options.no_hop_bound_fixture = args.no_hop_bound_fixture;
  options.message_faults_only = args.message_faults_only;
  options.rogue_only = args.rogue_only;
  options.healthy_baseline = args.healthy_baseline;
  options.minimize = args.minimize;
  if (args.verbose) {
    options.on_result = [](const campaign::ScenarioResult& result) {
      std::printf("%s\n", result.Summary().c_str());
    };
  }
  std::printf("campaign: seed=%" PRIu64 " scenarios=%" PRIu64 " workers=%d%s%s%s%s%s%s\n",
              args.seed, args.scenarios, args.workers,
              args.wild_write_fixture ? " fixture=wild_write" : "",
              args.no_dedup_fixture ? " fixture=no_dedup" : "",
              args.no_hop_bound_fixture ? " fixture=no_hop_bound" : "",
              args.message_faults_only ? " faults=message" : "",
              args.rogue_only ? " faults=rogue" : "",
              args.healthy_baseline ? " faults=none" : "");
  const campaign::CampaignReport report = campaign::RunCampaign(options);
  std::printf("ran %" PRIu64 " scenarios, %" PRIu64 " faults landed, %" PRIu64
              " excision(s), %zu violation(s)\n",
              report.scenarios_run, report.faults_injected, report.excisions,
              report.failures.size());
  for (const campaign::CampaignFailure& failure : report.failures) {
    std::printf("%s", failure.Report().c_str());
  }
  if (report.ok()) {
    std::printf("all containment oracles passed\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  return args.have_scenario ? RunSingle(args) : RunSweep(args);
}
