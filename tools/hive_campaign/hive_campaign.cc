// hive_campaign: seed-driven fault-campaign runner.
//
// Sweep mode (default): generate and run `--scenarios` randomized fault
// scenarios from `--seed`, in parallel on `--workers` threads, judging each
// with the containment oracle library. Any violation is minimized and
// reported with a self-contained repro line.
//
// Repro mode (`--scenario=K`): run exactly scenario K of the campaign rooted
// at `--seed` and print its full outcome. All output is a pure function of
// (seed, scenario, fixture): rerunning a printed repro line produces
// byte-identical output.
//
// Exit codes: 0 = all oracles passed, 1 = violation(s), 2 = usage error.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/campaign/campaign.h"
#include "src/campaign/corpus.h"
#include "src/core/report.h"

namespace {

struct Args {
  uint64_t seed = 1;
  uint64_t scenarios = 200;
  int workers = 4;
  int sim_threads = 1;
  bool have_scenario = false;
  uint64_t scenario = 0;
  bool wild_write_fixture = false;
  bool no_dedup_fixture = false;
  bool no_hop_bound_fixture = false;
  bool message_faults_only = false;
  bool rogue_only = false;
  bool healthy_baseline = false;
  bool bug_no_dedup = false;
  bool salvage = false;
  bool reboot_storm_only = false;
  bool bug_salvage_unchecked = false;
  bool guided = false;
  int batch_size = 16;
  std::string corpus_dir;
  bool replay_corpus = false;
  bool stop_on_violation = false;
  std::vector<uint64_t> mutation_chain;
  bool minimize = true;
  bool verbose = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: hive_campaign [--seed=N] [--scenarios=N] [--workers=N]\n"
               "                     [--sim-threads=N]\n"
               "                     [--scenario=K] [--mutate=CHAIN]\n"
               "                     [--fixture=wild_write|no_dedup|no_hop_bound]\n"
               "                     [--faults=message|rogue|reboot-storm|none]\n"
               "                     [--bug=no_dedup|salvage_unchecked] [--salvage]\n"
               "                     [--guided] [--batch=N] [--corpus=DIR]\n"
               "                     [--replay-corpus] [--stop-on-violation]\n"
               "                     [--no-minimize] [--verbose]\n"
               "\n"
               "  --seed=N             campaign master seed (default: $HIVE_TEST_SEED or 1)\n"
               "  --scenarios=N        number of scenarios to sweep (default 200)\n"
               "  --workers=N          worker threads (default 4)\n"
               "  --sim-threads=N      threads inside each scenario's simulation core\n"
               "                       (default 1); never changes outcomes -- repro\n"
               "                       lines and fingerprints are byte-identical for\n"
               "                       every value\n"
               "  --scenario=K         run only scenario K and print its outcome\n"
               "  --fixture=wild_write generate landing wild writes (firewall checking\n"
               "                       off); every scenario is expected to violate\n"
               "  --fixture=no_dedup   disable RPC duplicate suppression under a\n"
               "                       duplication-heavy message-fault plan; every\n"
               "                       scenario is expected to trip the at-most-once\n"
               "                       oracle\n"
               "  --fixture=no_hop_bound rogue cyclic-chain scenarios with the\n"
               "                       survivors' chain-chase hop bound removed; every\n"
               "                       scenario is expected to trip the\n"
               "                       no-survivor-hang oracle\n"
               "  --faults=message     restrict fault plans to SIPS message faults\n"
               "                       (drop/duplicate/delay/corrupt); the reliable\n"
               "                       transport must pass every oracle\n"
               "  --faults=rogue       restrict fault plans to one rogue-cell fault\n"
               "                       each (a live Byzantine cell); the survivors\n"
               "                       must excise the rogue and nobody else\n"
               "  --faults=reboot-storm restrict fault plans to one reboot-storm\n"
               "                       fault each (rotating kill/rejoin cycles with\n"
               "                       live rejoin and page salvage on); every rejoin\n"
               "                       must converge and every salvage stay clean\n"
               "  --faults=none        rogue-sweep geometry with zero faults; the\n"
               "                       sensitivity baseline must see zero excisions\n"
               "  --salvage            default fault plans with page salvage enabled;\n"
               "                       wild-write plans pre-stage a writable canary\n"
               "                       import so recovery has a page to salvage\n"
               "  --bug=no_dedup       seeded-bug discovery mode: duplicate\n"
               "                       suppression silently broken on one cell under\n"
               "                       default fault plans with thinned duplication;\n"
               "                       only a rare scenario exposes it\n"
               "  --bug=salvage_unchecked seeded-bug sensitivity mode: salvage with\n"
               "                       both adoption proofs disabled (blind adoption\n"
               "                       of a scribbled page); every scenario must trip\n"
               "                       the salvage oracles\n"
               "  --guided             coverage-guided mode: mutate coverage-novel\n"
               "                       corpus entries instead of only drawing fresh\n"
               "                       scenarios\n"
               "  --batch=N            scenarios per guided batch (1..1024, default 16)\n"
               "  --corpus=DIR         load corpus entries from DIR before the run and\n"
               "                       persist newly admitted entries into it\n"
               "  --replay-corpus      run exactly the corpus entries in --corpus=DIR\n"
               "                       (regression replay; no mutation, no admission)\n"
               "  --stop-on-violation  stop at the first batch boundary after a\n"
               "                       violation and report its discovery cost\n"
               "  --mutate=CHAIN       with --scenario=K: apply this comma-separated\n"
               "                       mutation chain to the generated scenario (the\n"
               "                       self-contained repro form of a guided mutant)\n"
               "  --no-minimize        skip minimization of violating scenarios\n"
               "  --verbose            print a line per scenario\n");
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (const char* env_seed = std::getenv("HIVE_TEST_SEED")) {
    if (!ParseU64(env_seed, &args->seed)) {
      std::fprintf(stderr, "hive_campaign: bad HIVE_TEST_SEED '%s'\n", env_seed);
      return false;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseU64(arg + 7, &value)) {
      args->seed = value;
    } else if (std::strncmp(arg, "--scenarios=", 12) == 0 && ParseU64(arg + 12, &value)) {
      args->scenarios = value;
    } else if (std::strncmp(arg, "--workers=", 10) == 0 && ParseU64(arg + 10, &value) &&
               value >= 1 && value <= 256) {
      args->workers = static_cast<int>(value);
    } else if (std::strncmp(arg, "--sim-threads=", 14) == 0 &&
               ParseU64(arg + 14, &value) && value >= 1 && value <= 64) {
      args->sim_threads = static_cast<int>(value);
    } else if (std::strncmp(arg, "--scenario=", 11) == 0 && ParseU64(arg + 11, &value)) {
      args->have_scenario = true;
      args->scenario = value;
    } else if (std::strcmp(arg, "--fixture=wild_write") == 0) {
      args->wild_write_fixture = true;
    } else if (std::strcmp(arg, "--fixture=no_dedup") == 0) {
      args->no_dedup_fixture = true;
    } else if (std::strcmp(arg, "--fixture=no_hop_bound") == 0) {
      args->no_hop_bound_fixture = true;
    } else if (std::strcmp(arg, "--faults=message") == 0) {
      args->message_faults_only = true;
    } else if (std::strcmp(arg, "--faults=rogue") == 0) {
      args->rogue_only = true;
    } else if (std::strcmp(arg, "--faults=none") == 0) {
      args->healthy_baseline = true;
    } else if (std::strcmp(arg, "--faults=reboot-storm") == 0) {
      args->reboot_storm_only = true;
    } else if (std::strcmp(arg, "--salvage") == 0) {
      args->salvage = true;
    } else if (std::strcmp(arg, "--bug=no_dedup") == 0) {
      args->bug_no_dedup = true;
    } else if (std::strcmp(arg, "--bug=salvage_unchecked") == 0) {
      args->bug_salvage_unchecked = true;
    } else if (std::strcmp(arg, "--guided") == 0) {
      args->guided = true;
    } else if (std::strncmp(arg, "--batch=", 8) == 0 && ParseU64(arg + 8, &value) &&
               value >= 1 && value <= 1024) {
      args->batch_size = static_cast<int>(value);
    } else if (std::strncmp(arg, "--corpus=", 9) == 0 && arg[9] != '\0') {
      args->corpus_dir = arg + 9;
    } else if (std::strcmp(arg, "--replay-corpus") == 0) {
      args->replay_corpus = true;
    } else if (std::strcmp(arg, "--stop-on-violation") == 0) {
      args->stop_on_violation = true;
    } else if (std::strncmp(arg, "--mutate=", 9) == 0 &&
               campaign::ParseMutationChain(arg + 9, &args->mutation_chain)) {
      // Chain applied in RunSingle; requires --scenario=K.
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      args->minimize = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "hive_campaign: bad argument '%s'\n", arg);
      return false;
    }
  }
  return true;
}

int RunSingle(const Args& args) {
  campaign::GeneratorOptions gen_options;
  gen_options.wild_write_fixture = args.wild_write_fixture;
  gen_options.no_dedup_fixture = args.no_dedup_fixture;
  gen_options.no_hop_bound_fixture = args.no_hop_bound_fixture;
  gen_options.message_faults_only = args.message_faults_only;
  gen_options.rogue_only = args.rogue_only;
  gen_options.healthy_baseline = args.healthy_baseline;
  gen_options.bug_no_dedup = args.bug_no_dedup;
  gen_options.salvage = args.salvage;
  gen_options.reboot_storm_only = args.reboot_storm_only;
  gen_options.bug_salvage_unchecked = args.bug_salvage_unchecked;
  const campaign::ScenarioSpec root =
      campaign::GenerateScenario(args.seed, args.scenario, gen_options);
  const campaign::ScenarioSpec spec =
      campaign::ApplyMutationChain(root, args.mutation_chain);
  std::printf("%s\n", spec.ToString().c_str());
  campaign::RunOptions run;
  run.sim_threads = args.sim_threads;
  const campaign::ScenarioResult result = campaign::RunScenario(spec, run);
  std::printf("end_time=%" PRId64 "ms excisions=%d fingerprint=0x%016" PRIx64 "\n",
              result.end_time / hive::kMillisecond, result.excisions,
              result.fingerprint);
  if (!result.violated()) {
    std::printf("all oracles passed\n");
    return 0;
  }
  std::printf("%s", result.ViolationReport().c_str());
  if (args.minimize) {
    const campaign::MinimizationResult minimized =
        campaign::MinimizeScenario(spec);
    if (minimized.reduced) {
      std::printf("minimized (%d runs): %s\n", minimized.runs,
                  minimized.minimized.ToString().c_str());
    }
  }
  return 1;
}

int RunSweep(const Args& args) {
  campaign::CampaignOptions options;
  options.master_seed = args.seed;
  options.num_scenarios = args.scenarios;
  options.workers = args.workers;
  options.sim_threads = args.sim_threads;
  options.wild_write_fixture = args.wild_write_fixture;
  options.no_dedup_fixture = args.no_dedup_fixture;
  options.no_hop_bound_fixture = args.no_hop_bound_fixture;
  options.message_faults_only = args.message_faults_only;
  options.rogue_only = args.rogue_only;
  options.healthy_baseline = args.healthy_baseline;
  options.bug_no_dedup = args.bug_no_dedup;
  options.salvage = args.salvage;
  options.reboot_storm_only = args.reboot_storm_only;
  options.bug_salvage_unchecked = args.bug_salvage_unchecked;
  options.guided = args.guided;
  options.batch_size = args.batch_size;
  options.corpus_dir = args.corpus_dir;
  options.corpus_replay_only = args.replay_corpus;
  options.stop_on_violation = args.stop_on_violation;
  options.minimize = args.minimize;
  if (args.verbose) {
    options.on_result = [](const campaign::ScenarioResult& result) {
      std::printf("%s\n", result.Summary().c_str());
    };
  }
  std::printf("campaign: seed=%" PRIu64 " scenarios=%" PRIu64
              " workers=%d%s%s%s%s%s%s%s%s%s%s%s\n",
              args.seed, args.scenarios, args.workers,
              args.wild_write_fixture ? " fixture=wild_write" : "",
              args.no_dedup_fixture ? " fixture=no_dedup" : "",
              args.no_hop_bound_fixture ? " fixture=no_hop_bound" : "",
              args.message_faults_only ? " faults=message" : "",
              args.rogue_only ? " faults=rogue" : "",
              args.reboot_storm_only ? " faults=reboot-storm" : "",
              args.healthy_baseline ? " faults=none" : "",
              args.salvage ? " salvage" : "",
              args.bug_no_dedup ? " bug=no_dedup" : "",
              args.bug_salvage_unchecked ? " bug=salvage_unchecked" : "",
              args.guided ? " guided" : args.replay_corpus ? " replay" : "");
  const campaign::CampaignReport report = campaign::RunCampaign(options);
  std::printf("ran %" PRIu64 " scenarios, %" PRIu64 " faults landed, %" PRIu64
              " excision(s), %" PRIu64 " page(s) salvaged, %zu violation(s)\n",
              report.scenarios_run, report.faults_injected, report.excisions,
              report.pages_salvaged, report.failures.size());
  std::printf("coverage: %" PRIu64 " feature(s) hash=0x%016" PRIx64
              " merged-fingerprint=0x%016" PRIx64 "\n",
              report.coverage_features, report.coverage_hash,
              report.merged_fingerprint);
  if (!args.corpus_dir.empty() || args.guided) {
    std::printf("corpus: %" PRIu64 " entr%s (%" PRIu64 " loaded)\n",
                report.corpus_size, report.corpus_size == 1 ? "y" : "ies",
                report.corpus_loaded);
  }
  if (args.guided) {
    std::printf("draws: %" PRIu64 " fresh, %" PRIu64 " mutant(s)\n",
                report.fresh_run, report.mutants_run);
  }
  if (report.first_violation_order != 0) {
    std::printf("first violation at scenario %" PRIu64 "\n",
                report.first_violation_order);
  }
  for (const campaign::CampaignFailure& failure : report.failures) {
    std::printf("%s", failure.Report().c_str());
  }
  if (!report.buckets.empty()) {
    std::vector<hive::TriageBucketRow> rows;
    rows.reserve(report.buckets.size());
    for (const campaign::TriageBucket& bucket : report.buckets) {
      hive::TriageBucketRow row;
      row.oracle = bucket.oracle;
      row.trace_signature = bucket.trace_signature;
      row.count = bucket.count;
      row.repro = bucket.repro;
      row.minimized = args.minimize ? bucket.minimized : "";
      rows.push_back(row);
    }
    std::printf("%s", hive::RenderTriageBuckets(rows).c_str());
  }
  if (report.ok()) {
    std::printf("all containment oracles passed\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  if (!args.mutation_chain.empty() && !args.have_scenario) {
    std::fprintf(stderr, "hive_campaign: --mutate requires --scenario=K\n");
    return 2;
  }
  if (args.replay_corpus && args.corpus_dir.empty()) {
    std::fprintf(stderr, "hive_campaign: --replay-corpus requires --corpus=DIR\n");
    return 2;
  }
  return args.have_scenario ? RunSingle(args) : RunSweep(args);
}
