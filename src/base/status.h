// Error propagation primitives for the Hive reproduction.
//
// Kernel code paths never throw across module boundaries; they return Status or
// Result<T>. The only exception type in the codebase is flash::BusError, which
// models the hardware trap (see src/flash/bus_error.h).

#ifndef HIVE_SRC_BASE_STATUS_H_
#define HIVE_SRC_BASE_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>
#include <utility>

namespace base {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfMemory = 4,
  kTimeout = 5,        // RPC timeout: feeds a failure hint.
  kBusError = 6,       // Hardware trap observed under a careful section.
  kBadRemoteData = 7,  // Careful-reference sanity check failed.
  kStaleGeneration = 8,  // File generation mismatch after preemptive discard.
  kIoError = 9,
  kCellFailed = 10,  // Target cell is (believed) dead.
  kPermissionDenied = 11,
  kResourceExhausted = 12,
  kUnavailable = 13,  // Transient: retry may succeed (e.g. recovery in progress).
  kInternal = 14,
};

std::string_view StatusCodeName(StatusCode code);

// A thin status word. Cheap to copy; carries no message allocation so it is
// safe to use on simulated interrupt paths.
class [[nodiscard]] Status {
 public:
  constexpr Status() : code_(StatusCode::kOk) {}
  constexpr explicit Status(StatusCode code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }

  constexpr bool ok() const { return code_ == StatusCode::kOk; }
  constexpr StatusCode code() const { return code_; }
  std::string_view name() const { return StatusCodeName(code_); }

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
};

inline constexpr Status OkStatus() { return Status::Ok(); }
inline constexpr Status InvalidArgument() { return Status(StatusCode::kInvalidArgument); }
inline constexpr Status NotFound() { return Status(StatusCode::kNotFound); }
inline constexpr Status AlreadyExists() { return Status(StatusCode::kAlreadyExists); }
inline constexpr Status OutOfMemory() { return Status(StatusCode::kOutOfMemory); }
inline constexpr Status Timeout() { return Status(StatusCode::kTimeout); }
inline constexpr Status BusErrorStatus() { return Status(StatusCode::kBusError); }
inline constexpr Status BadRemoteData() { return Status(StatusCode::kBadRemoteData); }
inline constexpr Status StaleGeneration() { return Status(StatusCode::kStaleGeneration); }
inline constexpr Status IoError() { return Status(StatusCode::kIoError); }
inline constexpr Status CellFailed() { return Status(StatusCode::kCellFailed); }
inline constexpr Status PermissionDenied() { return Status(StatusCode::kPermissionDenied); }
inline constexpr Status ResourceExhausted() { return Status(StatusCode::kResourceExhausted); }
inline constexpr Status Unavailable() { return Status(StatusCode::kUnavailable); }
inline constexpr Status Internal() { return Status(StatusCode::kInternal); }

std::ostream& operator<<(std::ostream& os, Status status);

// Result<T>: either a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(OkStatus()), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(status) {  // NOLINT(google-explicit-constructor)
    assert(!status.ok() && "ok Result must carry a value");
  }
  Result(StatusCode code) : Result(Status(code)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-ok status out of the enclosing function.
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::base::Status status_macro_ = (expr);   \
    if (!status_macro_.ok()) {               \
      return status_macro_;                  \
    }                                        \
  } while (false)

// Propagates a non-ok Status out of a function that returns Result<T>.
#define RETURN_IF_ERROR_RESULT(expr)        \
  do {                                      \
    ::base::Status status_macro2_ = (expr); \
    if (!status_macro2_.ok()) {             \
      return status_macro2_;                \
    }                                       \
  } while (false)

// Evaluates a Result expression, assigning the value or propagating the error.
#define BASE_STATUS_CONCAT_INNER(a, b) a##b
#define BASE_STATUS_CONCAT(a, b) BASE_STATUS_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                          \
  if (!tmp.ok()) {                            \
    return tmp.status();                      \
  }                                           \
  lhs = std::move(tmp).value()
#define ASSIGN_OR_RETURN(lhs, expr) \
  ASSIGN_OR_RETURN_IMPL(BASE_STATUS_CONCAT(result_macro_, __LINE__), lhs, expr)

}  // namespace base

#endif  // HIVE_SRC_BASE_STATUS_H_
