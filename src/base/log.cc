#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace base {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory prefix for readability.
  std::string_view path(file);
  size_t slash = path.rfind('/');
  if (slash != std::string_view::npos) {
    path = path.substr(slash + 1);
  }
  stream_ << "[" << LevelTag(level) << " " << path << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace base
