// Minimal leveled logging. Benches and tests set the level; kernel code logs
// through LOG(level) << ... streams. Logging never allocates on the hot path
// when the level is disabled.

#ifndef HIVE_SRC_BASE_LOG_H_
#define HIVE_SRC_BASE_LOG_H_

#include <sstream>
#include <string_view>

namespace base {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kFatal = 5,
};

// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace base

#define HIVE_LOG_ENABLED(level) (::base::LogLevel::level >= ::base::GetLogLevel())

#define LOG(level)                         \
  if (!HIVE_LOG_ENABLED(level)) {          \
  } else                                   \
    ::base::internal::LogMessage(::base::LogLevel::level, __FILE__, __LINE__).stream()

#define CHECK(cond)                                                       \
  if (cond) {                                                             \
  } else                                                                  \
    ::base::internal::LogMessage(::base::LogLevel::kFatal, __FILE__, __LINE__).stream() \
        << "CHECK failed: " #cond " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // HIVE_SRC_BASE_LOG_H_
