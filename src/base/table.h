// Fixed-width table printer. Every bench binary renders its paper table with
// this so the output is uniform and easy to diff against EXPERIMENTS.md.

#ifndef HIVE_SRC_BASE_TABLE_H_
#define HIVE_SRC_BASE_TABLE_H_

#include <string>
#include <vector>

namespace base {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds one row; cells beyond the header width are dropped, missing cells are
  // rendered empty.
  void AddRow(std::vector<std::string> row);

  // Adds a horizontal separator line.
  void AddSeparator();

  // Renders with a title, column alignment (first column left, rest right),
  // and box-drawing separators.
  std::string Render(const std::string& title) const;

  // Convenience formatting helpers for cells.
  static std::string F64(double v, int precision = 2);
  static std::string I64(int64_t v);
  static std::string Us(double nanoseconds, int precision = 1);  // ns -> "x.y us"
  static std::string Ms(double nanoseconds, int precision = 1);  // ns -> "x.y ms"
  static std::string Pct(double fraction, int precision = 1);    // 0.063 -> "6.3%"

 private:
  static constexpr const char* kSeparatorTag = "\x01--";

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace base

#endif  // HIVE_SRC_BASE_TABLE_H_
