#include "src/base/histogram.h"

#include <cassert>
#include <numeric>

namespace base {

int64_t Histogram::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

int64_t Histogram::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

int64_t Histogram::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), int64_t{0});
}

double Histogram::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return static_cast<double>(sum()) / static_cast<double>(samples_.size());
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

int64_t Histogram::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::vector<int64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(rank);
  return sorted[idx];
}

}  // namespace base
