// Deterministic PRNG (xoshiro256++) so every experiment in the repo is exactly
// reproducible from a seed. Do not use std::mt19937 directly: its seeding and
// distribution behaviour differ across standard libraries.

#ifndef HIVE_SRC_BASE_RNG_H_
#define HIVE_SRC_BASE_RNG_H_

#include <cassert>
#include <cstdint>

namespace base {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed, per Vigna's recommendation.
    uint64_t x = seed + 0x9E3779B97F4A7C15ull;
    for (auto& word : state_) {
      uint64_t z = (x += 0x9E3779B97F4A7C15ull);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t Below(uint64_t bound) {
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace base

#endif  // HIVE_SRC_BASE_RNG_H_
