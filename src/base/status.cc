#include "src/base/status.h"

namespace base {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kBusError:
      return "BUS_ERROR";
    case StatusCode::kBadRemoteData:
      return "BAD_REMOTE_DATA";
    case StatusCode::kStaleGeneration:
      return "STALE_GENERATION";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCellFailed:
      return "CELL_FAILED";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::ostream& operator<<(std::ostream& os, Status status) { return os << status.name(); }

}  // namespace base
