#include "src/base/sim_profile.h"

#include <chrono>

#include "src/base/log.h"

namespace base {

namespace {

thread_local SimProfile* g_active_profile = nullptr;

uint64_t HostNowNs() {
  // Host-clock read feeds only the benchmark attribution profile (ns
  // totals), never simulation state; deterministic outputs use the op
  // counters.
  // hive-lint: allow(R10): attribution-only host clock; no simulation state reads it.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

}  // namespace

std::string_view SimSubsystemName(SimSubsystem subsystem) {
  switch (subsystem) {
    case SimSubsystem::kVmFault:
      return "vm_fault";
    case SimSubsystem::kScheduler:
      return "scheduler";
    case SimSubsystem::kFilesystem:
      return "filesystem";
    case SimSubsystem::kCarefulRpc:
      return "careful_rpc";
    case SimSubsystem::kSips:
      return "sips";
    case SimSubsystem::kRecovery:
      return "recovery";
    case SimSubsystem::kOther:
      return "other";
    case SimSubsystem::kCount:
      break;
  }
  return "invalid";
}

SimProfile* SimProfile::Active() { return g_active_profile; }

void SimProfile::SetActive(SimProfile* profile) { g_active_profile = profile; }

void SimProfile::Begin() {
  CHECK(!running_);
  running_ = true;
  current_ = SimSubsystem::kOther;
  last_stamp_ = HostNowNs();
}

void SimProfile::End() {
  CHECK(running_);
  FlushTo(current_, HostNowNs());
  running_ = false;
}

void SimProfile::Reset() {
  CHECK(!running_);
  ns_.fill(0);
  ops_.fill(0);
  current_ = SimSubsystem::kOther;
  last_stamp_ = 0;
}

void SimProfile::FlushTo(SimSubsystem subsystem, uint64_t now) {
  if (now > last_stamp_) {
    ns_[static_cast<int>(subsystem)] += now - last_stamp_;
  }
  last_stamp_ = now;
}

uint64_t SimProfile::total_ns() const {
  uint64_t total = 0;
  for (uint64_t v : ns_) {
    total += v;
  }
  return total;
}

uint64_t SimProfile::total_ops() const {
  uint64_t total = 0;
  for (uint64_t v : ops_) {
    total += v;
  }
  return total;
}

void SimProfile::Merge(const SimProfile& other) {
  for (int i = 0; i < kSimSubsystemCount; ++i) {
    ns_[static_cast<size_t>(i)] += other.ns_[static_cast<size_t>(i)];
    ops_[static_cast<size_t>(i)] += other.ops_[static_cast<size_t>(i)];
  }
}

SimProfileScope::SimProfileScope(SimSubsystem subsystem)
    : profile_(g_active_profile) {
  if (profile_ == nullptr || !profile_->running_) {
    profile_ = nullptr;
    return;
  }
  outer_ = profile_->current_;
  profile_->FlushTo(outer_, HostNowNs());
  profile_->current_ = subsystem;
  profile_->ops_[static_cast<int>(subsystem)] += 1;
}

SimProfileScope::~SimProfileScope() {
  if (profile_ == nullptr) {
    return;
  }
  profile_->FlushTo(profile_->current_, HostNowNs());
  profile_->current_ = outer_;
}

}  // namespace base
