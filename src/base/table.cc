#include "src/base/table.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace base {
namespace {

std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string Format(const char* fmt, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() { rows_.push_back({kSeparatorTag}); }

std::string Table::Render(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      continue;
    }
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](char fill, char cross) {
    std::string line;
    line += cross;
    for (size_t c = 0; c < widths.size(); ++c) {
      line.append(widths[c] + 2, fill);
      line += cross;
    }
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ';
      if (c == 0) {
        line += cell;
        line.append(widths[c] - cell.size(), ' ');
      } else {
        line.append(widths[c] - cell.size(), ' ');
        line += cell;
      }
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::ostringstream out;
  out << "\n== " << title << " ==\n";
  out << render_line('-', '+');
  out << render_row(header_);
  out << render_line('=', '+');
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      out << render_line('-', '+');
    } else {
      out << render_row(row);
    }
  }
  out << render_line('-', '+');
  return out.str();
}

std::string Table::F64(double v, int precision) { return Format("%.*f", precision, v); }

std::string Table::I64(int64_t v) { return Format("%" PRId64, v); }

std::string Table::Us(double nanoseconds, int precision) {
  return Format("%.*f us", precision, nanoseconds / 1000.0);
}

std::string Table::Ms(double nanoseconds, int precision) {
  return Format("%.*f ms", precision, nanoseconds / 1e6);
}

std::string Table::Pct(double fraction, int precision) {
  return Format("%.*f%%", precision, fraction * 100.0);
}

}  // namespace base
