// Per-subsystem attribution of simulation wall time (hive_bench schema v2).
//
// The campaign's cost per simulated event is dominated by kernel-model code,
// not the event queue, so the bench harness needs to know *which* subsystem
// burns the host cycles. A SimProfile is activated per thread around a
// scenario run; instrumented kernel paths open a SimProfileScope and the
// profile accrues EXCLUSIVE host-clock time per subsystem: entering a nested
// scope (a page fault issuing an RPC, say) pauses the outer subsystem's
// clock, so the per-subsystem sums add up to the bracketed total instead of
// double-counting.
//
// Two kinds of output with different determinism properties:
//  - op counts: how many times each subsystem scope was entered. These are a
//    pure function of the simulation and must be bit-identical across runs
//    (the attribution test asserts this).
//  - ns: host wall time, measurement-noisy by nature. Only ratios and sums
//    are meaningful.
//
// When no profile is active (every run except benchmarking), a scope is two
// branches on a thread-local pointer.

#ifndef HIVE_SRC_BASE_SIM_PROFILE_H_
#define HIVE_SRC_BASE_SIM_PROFILE_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace base {

enum class SimSubsystem : int {
  kVmFault = 0,   // Page fault path (TLB refill through page bind).
  kScheduler,     // Run-slice dispatch, context switches, clock ticks.
  kFilesystem,    // File operations and page cache service.
  kCarefulRpc,    // Careful reference protocol + RPC stubs/transport.
  kSips,          // SIPS message delivery.
  kRecovery,      // Agreement, recovery rounds, invariant audits.
  kOther,         // Everything outside an instrumented scope.
  kCount,
};

constexpr int kSimSubsystemCount = static_cast<int>(SimSubsystem::kCount);

std::string_view SimSubsystemName(SimSubsystem subsystem);

class SimProfile {
 public:
  SimProfile() = default;

  // Thread-local activation. The caller owns the profile and must deactivate
  // (SetActive(nullptr)) before it goes out of scope.
  static SimProfile* Active();
  static void SetActive(SimProfile* profile);

  // Brackets the measured region: all host time between Begin and End is
  // attributed somewhere (unattributed time lands in kOther), so the
  // per-subsystem ns sum equals the bracketed wall time.
  void Begin();
  void End();

  void Reset();

  uint64_t ns(SimSubsystem subsystem) const {
    return ns_[static_cast<int>(subsystem)];
  }
  uint64_t ops(SimSubsystem subsystem) const {
    return ops_[static_cast<int>(subsystem)];
  }
  uint64_t total_ns() const;
  uint64_t total_ops() const;

  // Accumulates another profile's totals (bench aggregates scenarios).
  void Merge(const SimProfile& other);

 private:
  friend class SimProfileScope;

  // Flushes elapsed host time since last_stamp_ to the current subsystem.
  void FlushTo(SimSubsystem subsystem, uint64_t now);

  std::array<uint64_t, kSimSubsystemCount> ns_ = {};
  std::array<uint64_t, kSimSubsystemCount> ops_ = {};
  SimSubsystem current_ = SimSubsystem::kOther;
  uint64_t last_stamp_ = 0;
  bool running_ = false;
};

// RAII exclusive-time scope. Cheap no-op when no profile is active on this
// thread.
class SimProfileScope {
 public:
  explicit SimProfileScope(SimSubsystem subsystem);
  ~SimProfileScope();

  SimProfileScope(const SimProfileScope&) = delete;
  SimProfileScope& operator=(const SimProfileScope&) = delete;

 private:
  SimProfile* profile_;
  SimSubsystem outer_ = SimSubsystem::kOther;
};

}  // namespace base

#endif  // HIVE_SRC_BASE_SIM_PROFILE_H_
