// Latency statistics accumulator used by the benchmark harnesses.

#ifndef HIVE_SRC_BASE_HISTOGRAM_H_
#define HIVE_SRC_BASE_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace base {

// Records samples (typically nanoseconds) and reports summary statistics.
// Keeps all samples; experiments in this repo record at most a few million.
class Histogram {
 public:
  Histogram() = default;

  void Record(int64_t sample) { samples_.push_back(sample); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  int64_t min() const;
  int64_t max() const;
  int64_t sum() const;
  double mean() const;

  // p in [0, 100]. Exact order statistic (sorts a copy on demand).
  int64_t Percentile(double p) const;

  // Appends every sample of `other` (per-cell SLO histograms merge into the
  // machine-wide distribution). Quantiles of the merged histogram are exact
  // order statistics of the combined sample set, not an approximation.
  void Merge(const Histogram& other);

  void Clear() { samples_.clear(); }

 private:
  std::vector<int64_t> samples_;
};

}  // namespace base

#endif  // HIVE_SRC_BASE_HISTOGRAM_H_
