#include "src/core/hive_system.h"

#include <algorithm>
#include <limits>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/cow_tree.h"
#include "src/core/vm_fault.h"

namespace hive {

HiveSystem::HiveSystem(flash::Machine* machine, const HiveOptions& options)
    : machine_(machine), options_(options) {
  CHECK_GT(options.num_cells, 0);
  CHECK(!options.smp_mode || options.num_cells == 1)
      << "the SMP baseline is a single shared-everything kernel";
  CHECK_EQ(machine->config().num_nodes % options.num_cells, 0)
      << "cells own equal node ranges";
  agreement_ = std::make_unique<Agreement>(this, options.agreement_mode);
  recovery_ = std::make_unique<RecoveryManager>(this);
  recovery_->auto_reintegrate = options.auto_reintegrate;
  wax_ = std::make_unique<Wax>(this);
}

HiveSystem::~HiveSystem() = default;

void HiveSystem::Boot() {
  const int nodes_per_cell = machine_->config().num_nodes / options_.num_cells;
  node_to_cell_.resize(static_cast<size_t>(machine_->config().num_nodes));
  for (int c = 0; c < options_.num_cells; ++c) {
    cells_.push_back(std::make_unique<Cell>(this, c, c * nodes_per_cell, nodes_per_cell));
    for (int n = c * nodes_per_cell; n < (c + 1) * nodes_per_cell; ++n) {
      node_to_cell_[static_cast<size_t>(n)] = c;
    }
  }
  if (options_.smp_mode) {
    // The shared-everything baseline has no wild-write defense.
    machine_->firewall().set_checking_enabled(false);
  }
  for (auto& cell : cells_) {
    cell->Boot();
  }
  if (options_.start_wax && !options_.smp_mode && options_.num_cells > 1) {
    wax_->Start(machine_->Now() + Wax::kScanPeriod);
  }
}

CellId HiveSystem::CellOfNode(int node) const {
  return node_to_cell_[static_cast<size_t>(node)];
}

CellId HiveSystem::CellOfCpu(int cpu) const {
  return CellOfNode(cpu / machine_->config().cpus_per_node);
}

CellId HiveSystem::CellOfAddr(PhysAddr addr) const {
  return CellOfNode(static_cast<int>(addr / machine_->config().memory_per_node));
}

bool HiveSystem::CellReachable(CellId cell_id) const {
  const Cell& c = *cells_[static_cast<size_t>(cell_id)];
  if (!c.alive()) {
    return false;
  }
  for (int node = c.first_node(); node < c.first_node() + c.num_nodes(); ++node) {
    if (machine_->NodeDead(node)) {
      return false;
    }
  }
  return true;
}

std::vector<CellId> HiveSystem::LiveCells() const {
  std::vector<CellId> live;
  for (const auto& cell : cells_) {
    if (cell->alive()) {
      live.push_back(cell->id());
    }
  }
  return live;
}

base::Result<FileId> HiveSystem::LookupPath(const std::string& path) const {
  auto it = name_space_.find(path);
  if (it == name_space_.end()) {
    return base::NotFound();
  }
  return it->second;
}

void HiveSystem::RegisterPath(const std::string& path, FileId id) {
  name_space_[path] = id;
}

void HiveSystem::UnregisterPath(const std::string& path) { name_space_.erase(path); }

base::Status HiveSystem::RenamePath(const std::string& from, const std::string& to) {
  auto it = name_space_.find(from);
  if (it == name_space_.end()) {
    return base::NotFound();
  }
  if (name_space_.count(to) > 0) {
    return base::AlreadyExists();
  }
  name_space_[to] = it->second;
  name_space_.erase(it);
  return base::OkStatus();
}

std::vector<std::string> HiveSystem::ListPaths(const std::string& prefix) const {
  std::vector<std::string> matches;
  for (const auto& [path, id] : name_space_) {
    (void)id;
    if (path.compare(0, prefix.size(), prefix) == 0) {
      matches.push_back(path);
    }
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

CellId HiveSystem::FindProcessCell(ProcId pid) const {
  auto it = pid_to_cell_.find(pid);
  return it == pid_to_cell_.end() ? kInvalidCell : it->second;
}

base::Result<ProcId> HiveSystem::Fork(Ctx& ctx, CellId target,
                                      std::unique_ptr<Behavior> behavior, int64_t task_group,
                                      Process* parent) {
  if (target < 0 || target >= num_cells()) {
    return base::InvalidArgument();
  }
  Cell& tcell = cell(target);
  const bool remote = ctx.cell != nullptr && ctx.cell->id() != target;
  ctx.Charge(costs().fork_local_ns);
  if (remote) {
    // The remote fork is a queued RPC carrying the process image (section
    // 3.3 "forks across cell boundaries").
    ctx.Charge(costs().fork_remote_extra_ns + costs().rpc_queue_service_ns);
    if (!CellReachable(target)) {
      if (ctx.cell != nullptr) {
        ctx.Charge(costs().rpc_client_spin_poll_ns);
        ctx.cell->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
      }
      return base::Timeout();
    }
  }
  if (!CellReachable(target)) {
    return base::CellFailed();
  }

  const ProcId pid = NextPid();
  auto proc = std::make_unique<Process>(pid, &tcell, std::move(behavior));
  proc->created_at = ctx.VirtualNow();
  if (task_group >= 0) {
    proc->set_task_group(task_group);
    NoteGroupCell(task_group, target);
  }

  Ctx tctx = tcell.MakeCtx();
  tctx.start = ctx.VirtualNow();

  if (parent != nullptr) {
    // UNIX fork: split the COW tree leaf (paper section 5.3). The child's
    // fresh leaf lives on its own cell; the parent also moves to a fresh
    // leaf so pages it writes after the fork stay invisible to the child.
    Cell* pcell = parent->cell();
    Ctx pctx = pcell->MakeCtx();
    pctx.start = ctx.VirtualNow();

    ASSIGN_OR_RETURN(const PhysAddr child_leaf,
                     tcell.cow().CreateChild(tctx, parent->cow_leaf(), pcell->id()));
    proc->set_cow_leaf(child_leaf);
    ASSIGN_OR_RETURN(const PhysAddr new_parent_leaf,
                     pcell->cow().CreateChild(pctx, parent->cow_leaf(), pcell->id()));
    parent->set_cow_leaf(new_parent_leaf);

    RETURN_IF_ERROR_RESULT(proc->address_space().CopyFrom(tctx, pctx, parent->address_space()));
    proc->parent = parent->pid();
    if (remote || pcell->id() != target) {
      proc->AddDependency(pcell->id());
    }
    ctx.Charge(pctx.elapsed);
  } else {
    ASSIGN_OR_RETURN(const PhysAddr root, tcell.cow().CreateRoot(tctx));
    proc->set_cow_leaf(root);
  }
  ctx.Charge(tctx.elapsed);

  NoteProcessCell(pid, target);
  if (task_group >= 0) {
    group_members_[task_group].push_back(pid);
  }
  tcell.sched().AddProcess(std::move(proc));
  return pid;
}

base::Status HiveSystem::Kill(Ctx& ctx, ProcId pid) {
  const CellId target = FindProcessCell(pid);
  if (target == kInvalidCell) {
    return base::NotFound();
  }
  if (!CellReachable(target)) {
    return base::CellFailed();
  }
  if (ctx.cell != nullptr && ctx.cell->id() != target) {
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(pid);
    RpcReply reply;
    return ctx.cell->rpc().Call(ctx, target, MsgType::kKillProc, args, &reply);
  }
  Process* proc = cell(target).sched().FindProcess(pid);
  if (proc == nullptr || proc->finished()) {
    return base::NotFound();
  }
  cell(target).sched().KillProcess(ctx, proc, "killed by signal");
  return base::OkStatus();
}

int HiveSystem::SignalGroup(Ctx& ctx, int64_t group) {
  int killed = 0;
  auto it = group_members_.find(group);
  if (it == group_members_.end()) {
    return 0;
  }
  for (ProcId pid : it->second) {
    if (Kill(ctx, pid).ok()) {
      ++killed;
    }
  }
  return killed;
}

base::Result<ProcId> HiveSystem::Migrate(Ctx& ctx, ProcId pid, CellId target) {
  const CellId source = FindProcessCell(pid);
  if (source == kInvalidCell || target < 0 || target >= num_cells()) {
    return base::InvalidArgument();
  }
  if (!CellReachable(source) || !CellReachable(target)) {
    return base::CellFailed();
  }
  Process* proc = cell(source).sched().FindProcess(pid);
  if (proc == nullptr || proc->finished() || proc->behavior() == nullptr) {
    return base::NotFound();
  }
  // Must not be invoked from within the process's own behaviour step; any
  // other moment is safe (events are serialized, so a "running" process is
  // merely awaiting its requeue, which checks the state before re-adding).
  std::unique_ptr<Behavior> behavior = proc->ReleaseBehavior();
  auto new_pid = Fork(ctx, target, std::move(behavior), proc->task_group(), proc);
  if (!new_pid.ok()) {
    return new_pid;
  }
  // The original component is torn down; its COW leaf stays reachable as the
  // parent of the migrated process's fresh leaf.
  Ctx sctx = cell(source).MakeCtx();
  sctx.start = ctx.VirtualNow();
  cell(source).sched().KillProcess(sctx, proc, "migrated to cell " + std::to_string(target));
  ctx.Charge(sctx.elapsed);
  return new_pid;
}

void HiveSystem::NoteCellReintegrated(CellId cell_id) {
  confirmed_failed_.erase(cell_id);
  for (CellId live : LiveCells()) {
    if (live != cell_id) {
      cell(live).rpc().ForgetPeer(cell_id);
    }
  }
}

void HiveSystem::HandleAlert(Ctx& ctx, CellId accuser, CellId suspect, HintReason reason) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kRecovery);
  // Alerts mutate global state (agreement, recovery, every cell's RPC
  // layer); a safe-tagged event must never reach this path (lint R10,
  // parallel form).
  CHECK(!flash::EventQueue::OnWorkerThread()) << "alert from a safe parallel event";
  if (smp_mode() || alert_in_progress_) {
    return;
  }
  if (confirmed_failed_.count(suspect) > 0) {
    return;  // Already handled; late hints are harmless.
  }
  alert_in_progress_ = true;
  LOG(kInfo) << "alert: cell " << accuser << " accuses cell " << suspect << " ("
             << HintReasonName(reason) << ") at t=" << ctx.VirtualNow();

  // All cells temporarily suspend user-level processes while the agreement
  // algorithm runs (section 4.3).
  const AgreementResult result = agreement_->RunRound(ctx, accuser, suspect, reason);
  const Time agreement_done = ctx.VirtualNow();
  for (CellId live : LiveCells()) {
    cell(live).SuspendUsersUntil(agreement_done);
  }

  if (result.confirmed) {
    for (CellId f : result.failed) {
      confirmed_failed_.insert(f);
      cell(f).MarkDead();
      // Every surviving cell records the excision: the failed cell is out of
      // the live set from this moment (its own ring stops at kMarkedDead).
      for (CellId live : LiveCells()) {
        cell(live).Trace(TraceEvent::kCellExcised, static_cast<uint64_t>(f));
      }
    }
    wax_->OnCellFailure();
    const RecoveryStats stats = recovery_->Run(ctx, result.failed);
    if (options_.start_wax && !LiveCells().empty()) {
      // The recovery process starts a fresh incarnation of Wax, which forks
      // to all cells and rebuilds its view from scratch (section 3.2).
      wax_->Restart(stats.barrier2_time + 100 * kMillisecond);
    }
  } else {
    // The accusation was vetoed: the suspect is healthy by majority vote.
    // Tell every live transport so outstanding suspicion decays into a
    // bounded probation instead of an endless hint/quarantine.
    for (CellId live : LiveCells()) {
      if (live != suspect) {
        cell(live).rpc().OnSuspectCleared(suspect);
      }
    }
  }
  alert_in_progress_ = false;
}

bool HiveSystem::RunUntilDone(const std::vector<ProcId>& pids, Time deadline) {
  auto all_done = [&]() {
    for (ProcId pid : pids) {
      const CellId cell_id = FindProcessCell(pid);
      if (cell_id == kInvalidCell) {
        continue;
      }
      if (!cell(cell_id).alive()) {
        continue;  // The process died with its cell.
      }
      Process* proc = cell(cell_id).sched().FindProcess(pid);
      if (proc != nullptr && !proc->finished()) {
        return false;
      }
    }
    return true;
  };
  flash::ParallelExecutor* exec = machine_->parallel_exec();
  // With the parallel core the predicate is polled at block granularity (one
  // unsafe event or one whole window) instead of per event; the blocks' upper
  // bound is unbounded, mirroring the serial loop, which steps past the
  // deadline and only then notices.
  const Time no_limit = std::numeric_limits<Time>::max() - 1;
  while (machine_->Now() < deadline) {
    if (all_done()) {
      return true;
    }
    if (exec != nullptr) {
      size_t ran = 0;
      if (!exec->RunBlock(no_limit, &ran)) {
        return all_done();
      }
    } else if (!machine_->events().Step()) {
      return all_done();
    }
  }
  return all_done();
}

bool HiveSystem::ProcessFinished(ProcId pid) {
  const CellId cell_id = FindProcessCell(pid);
  if (cell_id == kInvalidCell) {
    return true;
  }
  Cell& c = cell(cell_id);
  if (!c.alive()) {
    return true;  // The process died with its cell.
  }
  Process* proc = c.sched().FindProcess(pid);
  return proc == nullptr || proc->finished();
}

bool HiveSystem::AddExitWaiter(ProcId child, Process* waiter) {
  if (ProcessFinished(child)) {
    return false;
  }
  exit_waiters_[child].push_back(waiter);
  return true;
}

void HiveSystem::NotifyExit(ProcId pid) {
  auto it = exit_waiters_.find(pid);
  if (it == exit_waiters_.end()) {
    return;
  }
  std::vector<Process*> waiters = std::move(it->second);
  exit_waiters_.erase(it);
  for (Process* waiter : waiters) {
    if (!waiter->finished() && waiter->cell()->alive()) {
      waiter->cell()->sched().MakeRunnable(waiter);
    }
  }
}

void HiveSystem::WakeOrphanedWaiters() {
  std::vector<ProcId> orphaned;
  // hive-lint: allow(R10): collection loop only; orphaned is sorted below before waiters are woken.
  for (auto& [child, waiters] : exit_waiters_) {
    (void)waiters;
    if (ProcessFinished(child)) {
      orphaned.push_back(child);
    }
  }
  // Wake in pid order: the hash map's iteration order must not decide which
  // waiter becomes runnable first (determinism purity, lint R10).
  std::sort(orphaned.begin(), orphaned.end());
  for (ProcId child : orphaned) {
    NotifyExit(child);
  }
}

Time HiveSystem::TotalCpuBusy() const {
  Time total = 0;
  for (const auto& cell : cells_) {
    total += cell->sched().cpu_busy_ns();
  }
  return total;
}

}  // namespace hive
