#include "src/core/kernel_heap.h"

#include "src/base/log.h"

namespace hive {

KernelHeap::KernelHeap(flash::PhysMem* mem, int owner_cpu, PhysAddr base, uint64_t size)
    : mem_(mem), owner_cpu_(owner_cpu), base_(base), size_(size), bump_(base) {
  CHECK_EQ(base % 8, 0u);
}

base::Result<PhysAddr> KernelHeap::Alloc(uint32_t type_tag, uint64_t size) {
  // Round the payload to 8 bytes so typed accesses stay aligned.
  const uint64_t rounded = (size + 7) & ~7ull;
  PhysAddr payload = 0;

  auto it = free_lists_.find(rounded);
  if (it != free_lists_.end() && !it->second.empty()) {
    payload = it->second.back();
    it->second.pop_back();
  } else {
    const uint64_t need = kHeaderSize + rounded;
    if (bump_ + need > base_ + size_) {
      return base::OutOfMemory();
    }
    payload = bump_ + kHeaderSize;
    bump_ += need;
  }

  const PhysAddr header = payload - kHeaderSize;
  mem_->WriteValue<uint32_t>(owner_cpu_, header, kHeaderMagic);
  mem_->WriteValue<uint32_t>(owner_cpu_, header + 4, type_tag);
  mem_->WriteValue<uint64_t>(owner_cpu_, header + 8, rounded);

  // Zero the payload: kernel allocations must not leak stale data.
  static constexpr uint8_t kZeros[256] = {};
  uint64_t remaining = rounded;
  PhysAddr cursor = payload;
  while (remaining > 0) {
    const uint64_t chunk = std::min<uint64_t>(remaining, sizeof(kZeros));
    mem_->Write(owner_cpu_, cursor, std::span<const uint8_t>(kZeros, chunk));
    cursor += chunk;
    remaining -= chunk;
  }

  bytes_in_use_ += rounded;
  ++allocations_;
  return payload;
}

void KernelHeap::Free(PhysAddr payload) {
  const PhysAddr header = payload - kHeaderSize;
  CHECK(Contains(header));
  CHECK_EQ(mem_->ReadValue<uint32_t>(owner_cpu_, header), kHeaderMagic)
      << "Free of a non-allocation address";
  const uint32_t tag = mem_->ReadValue<uint32_t>(owner_cpu_, header + 4);
  CHECK_NE(tag, static_cast<uint32_t>(kTagFree)) << "double free";
  const uint64_t size = mem_->ReadValue<uint64_t>(owner_cpu_, header + 8);

  mem_->WriteValue<uint32_t>(owner_cpu_, header + 4, kTagFree);
  free_lists_[size].push_back(payload);
  bytes_in_use_ -= size;
}

uint32_t KernelHeap::ReadTypeTag(int reader_cpu, PhysAddr payload) const {
  return mem_->ReadValue<uint32_t>(reader_cpu, payload - kHeaderSize + 4);
}

uint64_t KernelHeap::ReadAllocSize(int reader_cpu, PhysAddr payload) const {
  return mem_->ReadValue<uint64_t>(reader_cpu, payload - kHeaderSize + 8);
}

}  // namespace hive
