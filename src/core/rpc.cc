#include "src/core/rpc.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {
namespace {

// A cell is reachable if its kernel is up AND the hardware under it is alive
// (a freshly failed node drops SIPS messages before the kernel state knows).
bool Reachable(Cell& cell) {
  if (!cell.alive()) {
    return false;
  }
  for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes(); ++node) {
    if (cell.machine().NodeDead(node)) {
      return false;
    }
  }
  return true;
}

}  // namespace

RpcLayer::RpcLayer(Cell* cell, HiveSystem* system, const KernelCosts& costs)
    : cell_(cell), system_(system), costs_(costs) {}

void RpcLayer::RegisterInterrupt(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] = Registration{std::move(handler), /*queued=*/false};
}

void RpcLayer::RegisterQueued(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] = Registration{std::move(handler), /*queued=*/true};
}

base::Status RpcLayer::Serve(Ctx& server_ctx, MsgType type, const RpcArgs& args,
                             RpcReply* reply) {
  auto it = handlers_.find(static_cast<uint32_t>(type));
  if (it == handlers_.end()) {
    return base::NotFound();
  }
  if (it->second.queued) {
    // Queued service: the interrupt-level stub launches the operation on a
    // server process; context switch + synchronization dominate (section 6).
    server_ctx.Charge(costs_.rpc_queue_service_ns);
    ++stats_.queued_calls;
  }
  return it->second.handler(server_ctx, args, reply);
}

base::Status RpcLayer::Call(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                            RpcReply* reply, const CallOptions& options) {
  ++stats_.calls;
  const flash::LatencyParams& lat = cell_->machine().config().latency;
  const Time sips_hop = lat.ipi_ns + lat.sips_payload_ns;

  // Client stub marshals the request.
  ctx.Charge(costs_.rpc_client_stub_ns);
  if (options.fat_stub) {
    ctx.Charge(costs_.rpc_fat_stub_extra_ns);
  }
  if (options.bulk_bytes > 0) {
    // Argument/result data beyond the 128-byte line: allocate shared-memory
    // buffers and copy through them.
    ctx.Charge(costs_.rpc_arg_alloc_ns + costs_.rpc_arg_copy_ns);
  }

  if (target == cell_->id()) {
    // Intracell shortcut: dispatch directly (no SIPS).
    return Serve(ctx, type, args, reply);
  }

  Cell& tcell = system_->cell(target);
  if (!Reachable(tcell)) {
    // The message vanishes; the client spins 50 us for the reply, then
    // context-switches, and the timeout raises a failure hint.
    ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
    ++stats_.timeouts;
    cell_->Trace(TraceEvent::kRpcTimeout, static_cast<uint64_t>(target));
    cell_->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
    return base::Timeout();
  }
  if (tcell.in_recovery()) {
    // Requests to a cell that already joined the recovery barrier are held on
    // the client side (section 4.3); the caller retries after recovery.
    return base::Unavailable();
  }

  // Request message delivery.
  ctx.Charge(sips_hop);

  // Service on the target: round-robin over its processors.
  const auto& tcpus = tcell.cpus();
  const int server_cpu = tcpus[static_cast<size_t>(next_server_cpu_++) % tcpus.size()];
  Ctx server_ctx;
  server_ctx.cell = &tcell;
  server_ctx.cpu = server_cpu;
  server_ctx.start = ctx.VirtualNow();
  server_ctx.fault_bd = ctx.fault_bd;

  server_ctx.Charge(costs_.rpc_dispatch_ns + costs_.rpc_server_stub_ns);
  base::Status status = base::OkStatus();
  try {
    status = tcell.rpc().Serve(server_ctx, type, args, reply);
    // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
  } catch (const flash::BusError& e) {
    // A bus error during kernel service outside a careful section means the
    // serving kernel is corrupt: it panics, and the client times out.
    tcell.Panic(std::string("bus error during RPC service: ") + e.what());
  }

  if (!Reachable(tcell)) {
    ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
    ++stats_.timeouts;
    cell_->Trace(TraceEvent::kRpcTimeout, static_cast<uint64_t>(target));
    cell_->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
    return base::Timeout();
  }

  // Server occupancy: the serving CPU is busy for the service duration.
  flash::Cpu& scpu = cell_->machine().cpu(server_cpu);
  scpu.free_at = std::max(scpu.free_at, server_ctx.start) + server_ctx.elapsed;

  // The client waits for the full service, then the reply message.
  ctx.Charge(server_ctx.elapsed);
  ctx.Charge(sips_hop);
  return status;
}

base::Status RpcLayer::CallFault(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                                 RpcReply* reply) {
  ++stats_.calls;

  // Table 5.2 RPC components, charged on the client side (the client spins
  // for the whole exchange).
  ctx.Charge(costs_.fault_rpc_stub_ns);
  ctx.Charge(costs_.fault_rpc_hw_ns);
  ctx.Charge(costs_.fault_rpc_copy_ns);
  ctx.Charge(costs_.fault_rpc_alloc_ns);
  if (ctx.fault_bd != nullptr) {
    ctx.fault_bd->rpc_stub += costs_.fault_rpc_stub_ns;
    ctx.fault_bd->rpc_hw += costs_.fault_rpc_hw_ns;
    ctx.fault_bd->rpc_copy += costs_.fault_rpc_copy_ns;
    ctx.fault_bd->rpc_alloc += costs_.fault_rpc_alloc_ns;
  }

  Cell& tcell = system_->cell(target);
  if (!Reachable(tcell)) {
    ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
    ++stats_.timeouts;
    cell_->Trace(TraceEvent::kRpcTimeout, static_cast<uint64_t>(target));
    cell_->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
    return base::Timeout();
  }
  if (tcell.in_recovery()) {
    return base::Unavailable();
  }

  const auto& tcpus = tcell.cpus();
  const int server_cpu = tcpus[static_cast<size_t>(next_server_cpu_++) % tcpus.size()];
  Ctx server_ctx;
  server_ctx.cell = &tcell;
  server_ctx.cpu = server_cpu;
  server_ctx.start = ctx.VirtualNow();
  server_ctx.fault_bd = ctx.fault_bd;

  base::Status status = base::OkStatus();
  try {
    status = tcell.rpc().Serve(server_ctx, type, args, reply);
    // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
  } catch (const flash::BusError& e) {
    tcell.Panic(std::string("bus error during RPC service: ") + e.what());
  }

  if (!Reachable(tcell)) {
    ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
    ++stats_.timeouts;
    cell_->Trace(TraceEvent::kRpcTimeout, static_cast<uint64_t>(target));
    cell_->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
    return base::Timeout();
  }

  flash::Cpu& scpu = cell_->machine().cpu(server_cpu);
  scpu.free_at = std::max(scpu.free_at, server_ctx.start) + server_ctx.elapsed;
  ctx.Charge(server_ctx.elapsed);
  return status;
}

}  // namespace hive
