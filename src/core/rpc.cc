#include "src/core/rpc.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"
#include "src/flash/fault_injector.h"

namespace hive {
namespace {

// A cell is reachable if its kernel is up AND the hardware under it is alive
// (a freshly failed node drops SIPS messages before the kernel state knows).
bool Reachable(Cell& cell) {
  if (!cell.alive()) {
    return false;
  }
  for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes(); ++node) {
    if (cell.machine().NodeDead(node)) {
      return false;
    }
  }
  return true;
}

// Fate of one message hop under the active fault model (if any). A corrupted
// line is detected by the per-line checksum at the receiver, so for the
// synchronous client it is indistinguishable from a drop except in the stats.
struct HopFate {
  bool lost = false;
  bool corrupt = false;
  bool duplicate = false;
  Time extra_delay = 0;
};

HopFate SampleHop(flash::MessageFaultModel* model, const flash::Interconnect& mesh,
                  Time now, int src_node, int dst_node) {
  // One SIPS line crossing the mesh. The transport layer models the wire
  // inline rather than round-tripping through flash::Sips, so this is where
  // SIPS delivery work is attributable: its own profile row (nested under the
  // caller's kCarefulRpc scope, which pauses while the hop is sampled)
  // instead of being folded into careful_rpc/other. ops(kSips) counts hops.
  base::SimProfileScope profile_scope(base::SimSubsystem::kSips);
  HopFate fate;
  if (model == nullptr) {
    return fate;
  }
  const flash::MessageFaultDecision decision = model->Sample(now, src_node, dst_node);
  switch (decision.kind) {
    case flash::MessageFaultKind::kNone:
      break;
    case flash::MessageFaultKind::kDrop:
      fate.lost = true;
      break;
    case flash::MessageFaultKind::kCorrupt:
      fate.lost = true;
      fate.corrupt = true;
      break;
    case flash::MessageFaultKind::kDuplicate:
      fate.duplicate = true;
      break;
    case flash::MessageFaultKind::kDelay:
      // A delayed line took a non-minimal route: at least one detour hop.
      fate.extra_delay = std::max<Time>(decision.delay_ns,
                                        mesh.DetourExtraNs(src_node, dst_node, 1));
      break;
  }
  return fate;
}

}  // namespace

RpcLayer::RpcLayer(Cell* cell, HiveSystem* system, const KernelCosts& costs)
    : cell_(cell), system_(system), costs_(costs) {}

void RpcLayer::RegisterInterrupt(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] =
      Registration{std::move(handler), /*queued=*/false, /*at_most_once=*/false};
}

void RpcLayer::RegisterQueued(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] =
      Registration{std::move(handler), /*queued=*/true, /*at_most_once=*/false};
}

void RpcLayer::RegisterInterruptAtMostOnce(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] =
      Registration{std::move(handler), /*queued=*/false, /*at_most_once=*/true};
}

void RpcLayer::RegisterQueuedAtMostOnce(MsgType type, RpcHandler handler) {
  handlers_[static_cast<uint32_t>(type)] =
      Registration{std::move(handler), /*queued=*/true, /*at_most_once=*/true};
}

bool RpcLayer::IsAtMostOnce(MsgType type) const {
  auto it = handlers_.find(static_cast<uint32_t>(type));
  return it != handlers_.end() && it->second.at_most_once;
}

base::Status RpcLayer::Serve(Ctx& server_ctx, MsgType type, const RpcArgs& args,
                             RpcReply* reply) {
  auto it = handlers_.find(static_cast<uint32_t>(type));
  if (it == handlers_.end()) {
    return base::NotFound();
  }
  if (it->second.queued) {
    // Queued service: the interrupt-level stub launches the operation on a
    // server process; context switch + synchronization dominate (section 6).
    server_ctx.Charge(costs_.rpc_queue_service_ns);
    ++stats_.queued_calls;
  }
  return it->second.handler(server_ctx, args, reply);
}

base::Status RpcLayer::ServeSequenced(Ctx& server_ctx, CellId client, uint64_t seq,
                                      MsgType type, const RpcArgs& args, RpcReply* reply,
                                      uint64_t client_epoch) {
  if (client_epoch != 0) {
    uint64_t& known = peer_epoch_[static_cast<int>(client)];
    if (client_epoch > known) {
      // The client rebooted since we last heard from it: its sequence space
      // restarted, so pre-crash replay entries must not answer its new calls.
      replay_.erase(static_cast<int>(client));
      known = client_epoch;
    } else if (client_epoch < known) {
      // A pre-crash straggler from an earlier incarnation (e.g. a duplicate
      // the substrate held across the reboot): serving it could mutate state
      // on behalf of a kernel that no longer exists.
      return base::Unavailable();
    }
  }
  auto& cache = replay_[static_cast<int>(client)];
  auto hit = cache.find(seq);
  const bool seen = hit != cache.end();
  if (seen && duplicate_suppression_) {
    // Retransmission or substrate duplicate of a request already served:
    // return the cached reply without re-running the handler.
    ++stats_.duplicates_suppressed;
    cell_->Trace(TraceEvent::kRpcDuplicateSuppressed, static_cast<uint64_t>(client));
    *reply = hit->second.reply;
    return hit->second.status;
  }
  if (seen && IsAtMostOnce(type)) {
    // Suppression is disabled (campaign fixture): this re-execution of a
    // non-idempotent handler is exactly the bug the replay cache prevents.
    ++stats_.at_most_once_violations;
  }
  const base::Status status = Serve(server_ctx, type, args, reply);
  if (status.ok() && IsAtMostOnce(type)) {
    ++stats_.executed_mutations;
  }
  if (!seen) {
    cache.emplace(seq, ReplayEntry{status, *reply});
    if (cache.size() > kReplayCacheEntries) {
      cache.erase(cache.begin());  // Oldest sequence number.
    }
  }
  return status;
}

base::Status RpcLayer::TimeoutPath(Ctx& ctx, CellId target, bool exhausted) {
  // The client spins 50 us for a reply that never comes, then context
  // switches away.
  ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
  ++stats_.timeouts;
  cell_->Trace(TraceEvent::kRpcTimeout, static_cast<uint64_t>(target));

  PeerHealth& health = health_[static_cast<int>(target)];
  bool raise = false;
  if (!health.hint_outstanding) {
    // At most one hint per agreement window: the flag stays set until the
    // suspect is cleared by agreement (probation expiry) or forgotten on
    // reintegration, so retries and repeated calls do not hint-storm the
    // voting protocol.
    health.hint_outstanding = true;
    raise = true;
  }
  if (exhausted) {
    ++health.consecutive_exhaustions;
    if (!health.quarantined && health.consecutive_exhaustions >= kQuarantineThreshold) {
      health.quarantined = true;
      health.quarantine_until = ctx.VirtualNow() + kQuarantineProbationNs;
      ++stats_.quarantines_entered;
      cell_->Trace(TraceEvent::kPeerQuarantined, static_cast<uint64_t>(target));
    }
  }
  if (raise) {
    // RaiseHint may run agreement and recovery synchronously, which can
    // mutate health_ (OnSuspectCleared / ForgetPeer); `health` must not be
    // touched after this point.
    cell_->detector().RaiseHint(ctx, target, HintReason::kRpcTimeout);
  }
  return base::Timeout();
}

void RpcLayer::Unquarantine(PeerHealth& health, CellId peer) {
  health.quarantined = false;
  health.hint_outstanding = false;
  health.consecutive_exhaustions = 0;
  cell_->Trace(TraceEvent::kPeerUnquarantined, static_cast<uint64_t>(peer));
}

void RpcLayer::ForgetPeer(CellId peer) {
  health_.erase(static_cast<int>(peer));
  next_seq_.erase(static_cast<int>(peer));
  replay_.erase(static_cast<int>(peer));
  peer_epoch_.erase(static_cast<int>(peer));
}

void RpcLayer::OnSuspectCleared(CellId suspect) {
  auto it = health_.find(static_cast<int>(suspect));
  if (it == health_.end()) {
    return;
  }
  PeerHealth& health = it->second;
  health.consecutive_exhaustions = 0;
  if (!health.hint_outstanding && !health.quarantined) {
    return;  // This cell never suspected the peer; nothing to reset.
  }
  // The peer is healthy by majority vote. Convert the suspicion into a
  // bounded probation: fail fast until it expires, then automatically
  // un-quarantine and allow a fresh hint. This rate-limits hint storms
  // (which would accumulate voting strikes against a healthy accuser) and
  // bounds how long a quarantine can outlive the agreement that cleared it.
  const Time now = cell_->machine().Now();
  if (!health.quarantined) {
    health.quarantined = true;
    ++stats_.quarantines_entered;
    cell_->Trace(TraceEvent::kPeerQuarantined, static_cast<uint64_t>(suspect));
  }
  health.quarantine_until = std::max(health.quarantine_until, now + kQuarantineProbationNs);
}

bool RpcLayer::quarantined(CellId peer) const {
  auto it = health_.find(static_cast<int>(peer));
  return it != health_.end() && it->second.quarantined;
}

void RpcLayer::QuarantinePeer(Ctx& ctx, CellId peer) {
  PeerHealth& health = health_[static_cast<int>(peer)];
  // Suppress the redundant rpc-timeout hint: the caller (babble throttle)
  // raises its own, more specific hint.
  health.hint_outstanding = true;
  health.quarantine_until =
      std::max(health.quarantine_until, ctx.VirtualNow() + kQuarantineProbationNs);
  if (!health.quarantined) {
    health.quarantined = true;
    ++stats_.quarantines_entered;
    cell_->Trace(TraceEvent::kPeerQuarantined, static_cast<uint64_t>(peer));
  }
}

base::Status RpcLayer::Call(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                            RpcReply* reply, const CallOptions& options) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kCarefulRpc);
  // Intercell RPC is a cross-cell effect; safe-tagged events must not call
  // it (lint R10, parallel form).
  CHECK(!flash::EventQueue::OnWorkerThread()) << "RPC from a safe parallel event";
  ++stats_.calls;
  const flash::LatencyParams& lat = cell_->machine().config().latency;
  const Time sips_hop = lat.ipi_ns + lat.sips_payload_ns;

  // Client stub marshals the request.
  ctx.Charge(costs_.rpc_client_stub_ns);
  if (options.fat_stub) {
    ctx.Charge(costs_.rpc_fat_stub_extra_ns);
  }
  if (options.bulk_bytes > 0) {
    // Argument/result data beyond the 128-byte line: allocate shared-memory
    // buffers and copy through them.
    ctx.Charge(costs_.rpc_arg_alloc_ns + costs_.rpc_arg_copy_ns);
  }

  if (target == cell_->id()) {
    // Intracell shortcut: dispatch directly (no SIPS, no transport).
    return Serve(ctx, type, args, reply);
  }

  // Quarantine fail-fast. Agreement probes (kPing) bypass the gate so the
  // voting protocol always measures the real path.
  if (type != MsgType::kPing) {
    auto hit = health_.find(static_cast<int>(target));
    if (hit != health_.end() && hit->second.quarantined) {
      if (ctx.VirtualNow() >= hit->second.quarantine_until) {
        Unquarantine(hit->second, target);
      } else {
        ++stats_.quarantine_fail_fast;
        return base::Unavailable();
      }
    }
  }

  Cell& tcell = system_->cell(target);
  if (!Reachable(tcell)) {
    // The message vanishes and no retry can help: the node is gone. The
    // timeout raises a failure hint (at most one per agreement window).
    return TimeoutPath(ctx, target, /*exhausted=*/false);
  }
  if (tcell.in_recovery()) {
    // Requests to a cell that already joined the recovery barrier are held on
    // the client side (section 4.3); the caller retries after recovery.
    return base::Unavailable();
  }

  flash::MessageFaultModel* model = cell_->machine().sips().fault_model();
  const flash::Interconnect& mesh = cell_->machine().interconnect();
  const int cpus_per_node = cell_->machine().config().cpus_per_node;
  const int src_node = ctx.cpu >= 0 ? ctx.cpu / cpus_per_node : cell_->first_node();
  // One sequence number per logical call; every retransmission reuses it so
  // the server's replay cache can tell a retry from a new call.
  const uint64_t seq = ++next_seq_[static_cast<int>(target)];

  for (int attempt = 0; attempt < kMaxRpcAttempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      cell_->Trace(TraceEvent::kRpcRetry, static_cast<uint64_t>(target));
      // Capped exponential backoff with deterministic jitter from the
      // scenario RNG (retries only happen under an active fault model).
      Time backoff = std::min<Time>(kRpcBackoffBaseNs << (attempt - 1), kRpcBackoffCapNs);
      if (model != nullptr) {
        backoff += static_cast<Time>(
            model->rng().Below(static_cast<uint64_t>(kRpcBackoffJitterNs)));
      }
      ctx.Charge(backoff);
    }

    // Service on the target: round-robin over its processors.
    const auto& tcpus = tcell.cpus();
    const int server_cpu = tcpus[static_cast<size_t>(next_server_cpu_++) % tcpus.size()];
    const int dst_node = server_cpu / cpus_per_node;

    const HopFate request = SampleHop(model, mesh, ctx.VirtualNow(), src_node, dst_node);
    if (request.lost) {
      if (request.corrupt) {
        ++stats_.corrupt_lost;
      }
      // The request never arrived; spin out the reply window, then retry.
      ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
      continue;
    }

    // Request message delivery (plus any detour the fault model imposed).
    ctx.Charge(sips_hop + request.extra_delay);

    if (tcell.rogue().rpc_silent) {
      // Rogue silence: the request is delivered, but the Byzantine kernel
      // drops it on the floor -- no handler runs and no reply is sent. Every
      // attempt spins out, so the call exhausts its retries and the timeout
      // path escalates exactly as for a lossy link.
      ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
      continue;
    }

    Ctx server_ctx;
    server_ctx.cell = &tcell;
    server_ctx.cpu = server_cpu;
    server_ctx.start = ctx.VirtualNow();
    server_ctx.fault_bd = ctx.fault_bd;

    server_ctx.Charge(costs_.rpc_dispatch_ns + costs_.rpc_server_stub_ns);
    base::Status status = base::OkStatus();
    if (!tcell.detector().RecordIncomingRequest(server_ctx, cell_->id())) {
      // Babble throttle: the server rejects the request at the dispatch
      // boundary -- O(1) for the victim, a full round trip for the babbler.
      status = base::Unavailable();
    } else {
      try {
        status = tcell.rpc().ServeSequenced(server_ctx, cell_->id(), seq, type, args, reply,
                                            cell_->incarnation());
        // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
      } catch (const flash::BusError& e) {
        // A bus error during kernel service outside a careful section means the
        // serving kernel is corrupt: it panics, and the client times out.
        tcell.Panic(std::string("bus error during RPC service: ") + e.what());
      }
    }

    if (tcell.rogue().rpc_garbage && status.ok() &&
        (type == MsgType::kNull || type == MsgType::kBorrowFrames)) {
      // Rogue garbage: the reply payload is scribbled but claims success.
      // Scoped to the probe/borrow control plane; clients of kBorrowFrames
      // validate the returned frame addresses against the lender's range
      // and convert nonsense into a careful-check hint.
      for (uint64_t& word : reply->w) {
        word = tcell.NextRogueGarbage();
      }
    }

    Time extra_occupancy = 0;
    if (request.duplicate && tcell.alive()) {
      // The duplicated request line arrives right behind the original; the
      // server pays the interrupt + stub again and the replay cache absorbs
      // it (or, with suppression disabled, re-executes -- the at-most-once
      // violation the campaign fixture exists to demonstrate). The client
      // already has its reply and does not wait for this.
      Ctx dup_ctx;
      dup_ctx.cell = &tcell;
      dup_ctx.cpu = server_cpu;
      dup_ctx.start = server_ctx.VirtualNow();
      dup_ctx.Charge(costs_.rpc_dispatch_ns + costs_.rpc_server_stub_ns);
      RpcReply scratch;
      try {
        // The duplicate's status is deliberately dropped: the client already
        // answered from the original; only the occupancy cost matters here.
        (void)tcell.rpc().ServeSequenced(dup_ctx, cell_->id(), seq, type, args, &scratch,
                                         cell_->incarnation());
        // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
      } catch (const flash::BusError& e) {
        tcell.Panic(std::string("bus error during RPC service: ") + e.what());
      }
      extra_occupancy = dup_ctx.elapsed;
    }

    if (!Reachable(tcell)) {
      return TimeoutPath(ctx, target, /*exhausted=*/false);
    }

    // Server occupancy: the serving CPU is busy for the service duration.
    flash::Cpu& scpu = cell_->machine().cpu(server_cpu);
    scpu.free_at = std::max(scpu.free_at, server_ctx.start) + server_ctx.elapsed +
                   extra_occupancy;

    // The client waits for the full service, then the reply message.
    ctx.Charge(server_ctx.elapsed);

    const HopFate reply_hop = SampleHop(model, mesh, ctx.VirtualNow(), dst_node, src_node);
    if (reply_hop.lost) {
      if (reply_hop.corrupt) {
        ++stats_.corrupt_lost;
      }
      // The reply vanished AFTER the handler ran: retransmit the same
      // sequence number; the server's replay cache makes this safe.
      ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
      continue;
    }
    // A duplicated reply is trivially ignored by the spinning client.
    ctx.Charge(sips_hop + reply_hop.extra_delay);

    auto health_it = health_.find(static_cast<int>(target));
    if (health_it != health_.end()) {
      health_it->second.consecutive_exhaustions = 0;
    }
    if (status.ok() && tcell.rpc().IsAtMostOnce(type)) {
      ++stats_.acked_mutations;
    }
    return status;
  }

  // Every attempt lost a hop: the peer may be unreachable in a way the
  // node-death check cannot see, or the path is too lossy to use.
  return TimeoutPath(ctx, target, /*exhausted=*/true);
}

base::Status RpcLayer::CallFault(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                                 RpcReply* reply) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kCarefulRpc);
  ++stats_.calls;

  // Table 5.2 RPC components, charged on the client side (the client spins
  // for the whole exchange).
  ctx.Charge(costs_.fault_rpc_stub_ns);
  ctx.Charge(costs_.fault_rpc_hw_ns);
  ctx.Charge(costs_.fault_rpc_copy_ns);
  ctx.Charge(costs_.fault_rpc_alloc_ns);
  if (ctx.fault_bd != nullptr) {
    ctx.fault_bd->rpc_stub += costs_.fault_rpc_stub_ns;
    ctx.fault_bd->rpc_hw += costs_.fault_rpc_hw_ns;
    ctx.fault_bd->rpc_copy += costs_.fault_rpc_copy_ns;
    ctx.fault_bd->rpc_alloc += costs_.fault_rpc_alloc_ns;
  }

  {
    auto hit = health_.find(static_cast<int>(target));
    if (hit != health_.end() && hit->second.quarantined) {
      if (ctx.VirtualNow() >= hit->second.quarantine_until) {
        Unquarantine(hit->second, target);
      } else {
        ++stats_.quarantine_fail_fast;
        return base::Unavailable();
      }
    }
  }

  Cell& tcell = system_->cell(target);
  if (!Reachable(tcell)) {
    return TimeoutPath(ctx, target, /*exhausted=*/false);
  }
  if (tcell.in_recovery()) {
    return base::Unavailable();
  }

  flash::MessageFaultModel* model = cell_->machine().sips().fault_model();
  const flash::Interconnect& mesh = cell_->machine().interconnect();
  const int cpus_per_node = cell_->machine().config().cpus_per_node;
  const int src_node = ctx.cpu >= 0 ? ctx.cpu / cpus_per_node : cell_->first_node();
  const uint64_t seq = ++next_seq_[static_cast<int>(target)];

  for (int attempt = 0; attempt < kMaxRpcAttempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      cell_->Trace(TraceEvent::kRpcRetry, static_cast<uint64_t>(target));
      Time backoff = std::min<Time>(kRpcBackoffBaseNs << (attempt - 1), kRpcBackoffCapNs);
      if (model != nullptr) {
        backoff += static_cast<Time>(
            model->rng().Below(static_cast<uint64_t>(kRpcBackoffJitterNs)));
      }
      ctx.Charge(backoff);
    }

    const auto& tcpus = tcell.cpus();
    const int server_cpu = tcpus[static_cast<size_t>(next_server_cpu_++) % tcpus.size()];
    const int dst_node = server_cpu / cpus_per_node;

    const HopFate request = SampleHop(model, mesh, ctx.VirtualNow(), src_node, dst_node);
    if (request.lost) {
      if (request.corrupt) {
        ++stats_.corrupt_lost;
      }
      ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
      continue;
    }
    ctx.Charge(request.extra_delay);

    Ctx server_ctx;
    server_ctx.cell = &tcell;
    server_ctx.cpu = server_cpu;
    server_ctx.start = ctx.VirtualNow();
    server_ctx.fault_bd = ctx.fault_bd;

    base::Status status = base::OkStatus();
    try {
      status = tcell.rpc().ServeSequenced(server_ctx, cell_->id(), seq, type, args, reply,
                                          cell_->incarnation());
      // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
    } catch (const flash::BusError& e) {
      tcell.Panic(std::string("bus error during RPC service: ") + e.what());
    }

    Time extra_occupancy = 0;
    if (request.duplicate && tcell.alive()) {
      Ctx dup_ctx;
      dup_ctx.cell = &tcell;
      dup_ctx.cpu = server_cpu;
      dup_ctx.start = server_ctx.VirtualNow();
      RpcReply scratch;
      try {
        // The duplicate's status is deliberately dropped: the client already
        // answered from the original; only the occupancy cost matters here.
        (void)tcell.rpc().ServeSequenced(dup_ctx, cell_->id(), seq, type, args, &scratch,
                                         cell_->incarnation());
        // hive-lint: allow(R3): bus error in kernel service means the serving kernel is corrupt; the catch is the panic path.
      } catch (const flash::BusError& e) {
        tcell.Panic(std::string("bus error during RPC service: ") + e.what());
      }
      extra_occupancy = dup_ctx.elapsed;
    }

    if (!Reachable(tcell)) {
      return TimeoutPath(ctx, target, /*exhausted=*/false);
    }

    flash::Cpu& scpu = cell_->machine().cpu(server_cpu);
    scpu.free_at = std::max(scpu.free_at, server_ctx.start) + server_ctx.elapsed +
                   extra_occupancy;
    ctx.Charge(server_ctx.elapsed);

    const HopFate reply_hop = SampleHop(model, mesh, ctx.VirtualNow(), dst_node, src_node);
    if (reply_hop.lost) {
      if (reply_hop.corrupt) {
        ++stats_.corrupt_lost;
      }
      ctx.Charge(costs_.rpc_client_spin_poll_ns + costs_.rpc_context_switch_ns);
      continue;
    }
    ctx.Charge(reply_hop.extra_delay);

    auto health_it = health_.find(static_cast<int>(target));
    if (health_it != health_.end()) {
      health_it->second.consecutive_exhaustions = 0;
    }
    if (status.ok() && tcell.rpc().IsAtMostOnce(type)) {
      ++stats_.acked_mutations;
    }
    return status;
  }

  return TimeoutPath(ctx, target, /*exhausted=*/true);
}

}  // namespace hive
