#include "src/core/spanning_task.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"

namespace hive {

base::Result<std::unique_ptr<SpanningTask>> SpanningTask::Create(
    Ctx& ctx, HiveSystem* system, const std::vector<CellId>& cells,
    const std::function<std::unique_ptr<Behavior>(int)>& factory) {
  if (cells.empty()) {
    return base::InvalidArgument();
  }
  auto task = std::unique_ptr<SpanningTask>(
      new SpanningTask(system, system->NextTaskGroup()));
  int thread = 0;
  for (CellId cell_id : cells) {
    ASSIGN_OR_RETURN(const ProcId pid,
                     system->Fork(ctx, cell_id, factory(thread), task->task_group_));
    task->pids_.push_back(pid);
    task->cells_.push_back(cell_id);
    ++thread;
  }
  return task;
}

base::Status SpanningTask::MapFileAll(Ctx& ctx, const std::string& path, VirtAddr va,
                                      uint64_t length, bool writable) {
  // Keeping the shared address space map consistent: the update is applied on
  // every component's cell; remote components pay an RPC round (section 3.2).
  for (size_t i = 0; i < pids_.size(); ++i) {
    Cell& cell = system_->cell(cells_[i]);
    if (!cell.alive()) {
      return base::CellFailed();
    }
    Process* proc = cell.sched().FindProcess(pids_[i]);
    if (proc == nullptr || proc->finished()) {
      return base::NotFound();
    }
    Ctx mctx = cell.MakeCtx();
    mctx.start = ctx.VirtualNow();
    auto handle = cell.fs().Open(mctx, path);
    if (!handle.ok()) {
      return handle.status();
    }
    proc->AddFile(*handle);
    RETURN_IF_ERROR(proc->address_space().MapFile(mctx, va, length, *handle, writable));
    if (cells_[i] != ctx.cell->id()) {
      ctx.Charge(ctx.cell->costs().NullRpcNs(ctx.cell->machine().config().latency));
    }
    ctx.Charge(mctx.elapsed);
  }
  return base::OkStatus();
}

base::Status SpanningTask::MapAnonAll(Ctx& ctx, VirtAddr va, uint64_t length,
                                      bool writable) {
  for (size_t i = 0; i < pids_.size(); ++i) {
    Cell& cell = system_->cell(cells_[i]);
    if (!cell.alive()) {
      return base::CellFailed();
    }
    Process* proc = cell.sched().FindProcess(pids_[i]);
    if (proc == nullptr || proc->finished()) {
      return base::NotFound();
    }
    Ctx mctx = cell.MakeCtx();
    mctx.start = ctx.VirtualNow();
    RETURN_IF_ERROR(proc->address_space().MapAnon(mctx, va, length, writable));
    if (cells_[i] != ctx.cell->id()) {
      ctx.Charge(ctx.cell->costs().NullRpcNs(ctx.cell->machine().config().latency));
    }
    ctx.Charge(mctx.elapsed);
  }
  return base::OkStatus();
}

void SpanningTask::KillAll(Ctx& ctx) {
  for (size_t i = 0; i < pids_.size(); ++i) {
    Cell& cell = system_->cell(cells_[i]);
    if (!cell.alive()) {
      continue;
    }
    if (cells_[i] == ctx.cell->id()) {
      Process* proc = cell.sched().FindProcess(pids_[i]);
      if (proc != nullptr) {
        cell.sched().KillProcess(ctx, proc, "spanning task killed");
      }
      continue;
    }
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(pids_[i]);
    RpcReply reply;
    (void)ctx.cell->rpc().Call(ctx, cells_[i], MsgType::kKillProc, args, &reply);
  }
}

bool SpanningTask::Finished() const {
  for (size_t i = 0; i < pids_.size(); ++i) {
    Cell& cell = system_->cell(cells_[i]);
    if (!cell.alive()) {
      continue;
    }
    Process* proc = cell.sched().FindProcess(pids_[i]);
    if (proc != nullptr && !proc->finished()) {
      return false;
    }
  }
  return true;
}

}  // namespace hive
