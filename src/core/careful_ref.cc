#include "src/core/careful_ref.h"

namespace hive {

CarefulRef::CarefulRef(Ctx* ctx, flash::PhysMem* mem, const KernelCosts& costs,
                       CellId target_cell, PhysAddr range_base, uint64_t range_size)
    : ctx_(ctx),
      mem_(mem),
      costs_(costs),
      target_cell_(target_cell),
      range_base_(range_base),
      range_size_(range_size) {
  // careful_on: capture the stack frame and record the intended cell.
  ctx_->Charge(costs_.careful_on_ns);
}

CarefulRef::~CarefulRef() {
  // careful_off: future bus errors in the reading cell panic the kernel again.
  ctx_->Charge(costs_.careful_off_ns);
}

base::Status CarefulRef::CheckAddr(PhysAddr addr, uint64_t size, uint64_t alignment) const {
  if (alignment != 0 && addr % alignment != 0) {
    return base::BadRemoteData();
  }
  if (size > range_size_ || addr < range_base_ || addr - range_base_ > range_size_ - size) {
    // Not within the memory range belonging to the expected cell.
    return base::BadRemoteData();
  }
  return base::OkStatus();
}

void CarefulRef::ChargeAccessAt(PhysAddr addr, uint64_t bytes) {
  const uint64_t first = addr / 128;
  const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / 128;
  bool charged_header = false;
  for (uint64_t line = first; line <= last; ++line) {
    if (line == last_line_) {
      continue;
    }
    if (!charged_header) {
      ctx_->Charge(costs_.careful_check_ns + costs_.careful_copy_ns);
      charged_header = true;
    }
    ctx_->Charge(costs_.remote_miss_ns);
    last_line_ = line;
  }
}

base::Status CarefulRef::CheckTag(PhysAddr payload, uint32_t expected_tag) {
  // The header sits kHeaderSize bytes below the payload: {magic, tag, size}.
  if (payload < KernelHeap::kHeaderSize) {
    return base::BadRemoteData();
  }
  const PhysAddr header = payload - KernelHeap::kHeaderSize;
  RETURN_IF_ERROR(CheckAddr(header, KernelHeap::kHeaderSize, 8));
  ChargeAccessAt(header, KernelHeap::kHeaderSize);
  try {
    const uint32_t magic = mem_->ReadValue<uint32_t>(ctx_->cpu, header);
    const uint32_t tag = mem_->ReadValue<uint32_t>(ctx_->cpu, header + 4);
    if (magic != KernelHeap::kHeaderMagic || tag != expected_tag) {
      return base::BadRemoteData();
    }
  } catch (const flash::BusError&) {
    bus_error_seen_ = true;
    ctx_->Charge(costs_.failed_access_stall_ns);
    return base::BusErrorStatus();
  }
  return base::OkStatus();
}

base::Status CarefulRef::ReadBytes(PhysAddr addr, std::span<uint8_t> out) {
  RETURN_IF_ERROR(CheckAddr(addr, out.size(), 1));
  ChargeAccessAt(addr, out.size());
  try {
    mem_->Read(ctx_->cpu, addr, out);
  } catch (const flash::BusError&) {
    bus_error_seen_ = true;
    ctx_->Charge(costs_.failed_access_stall_ns);
    return base::BusErrorStatus();
  }
  return base::OkStatus();
}

}  // namespace hive
