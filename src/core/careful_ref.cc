#include "src/core/careful_ref.h"

namespace hive {

CarefulRef::CarefulRef(Ctx* ctx, flash::PhysMem* mem, const KernelCosts& costs,
                       CellId target_cell, PhysAddr range_base, uint64_t range_size)
    : ctx_(ctx),
      mem_(mem),
      costs_(costs),
      target_cell_(target_cell),
      range_base_(range_base),
      range_size_(range_size) {
  // careful_on: capture the stack frame and record the intended cell.
  ctx_->Charge(costs_.careful_on_ns);
}

CarefulRef::~CarefulRef() {
  // careful_off: future bus errors in the reading cell panic the kernel again.
  ctx_->Charge(costs_.careful_off_ns);
}

base::Status CarefulRef::CheckAddr(PhysAddr addr, uint64_t size, uint64_t alignment) const {
  if (alignment != 0 && addr % alignment != 0) {
    return base::BadRemoteData();
  }
  if (size > range_size_ || addr < range_base_ || addr - range_base_ > range_size_ - size) {
    // Not within the memory range belonging to the expected cell.
    return base::BadRemoteData();
  }
  return base::OkStatus();
}

void CarefulRef::ChargeAccessAt(PhysAddr addr, uint64_t bytes) {
  const uint64_t first = addr / 128;
  const uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / 128;
  bool charged_header = false;
  for (uint64_t line = first; line <= last; ++line) {
    if (line == last_line_) {
      continue;
    }
    if (!charged_header) {
      ctx_->Charge(costs_.careful_check_ns + costs_.careful_copy_ns);
      charged_header = true;
    }
    ctx_->Charge(costs_.remote_miss_ns);
    last_line_ = line;
  }
}

base::Status CarefulRef::CheckTag(PhysAddr payload, uint32_t expected_tag) {
  // The header sits kHeaderSize bytes below the payload: {magic, tag, size}.
  if (payload < KernelHeap::kHeaderSize) {
    return base::BadRemoteData();
  }
  const PhysAddr header = payload - KernelHeap::kHeaderSize;
  RETURN_IF_ERROR(CheckAddr(header, KernelHeap::kHeaderSize, 8));
  ChargeAccessAt(header, KernelHeap::kHeaderSize);
  try {
    const uint32_t magic = mem_->ReadValue<uint32_t>(ctx_->cpu, header);
    const uint32_t tag = mem_->ReadValue<uint32_t>(ctx_->cpu, header + 4);
    if (magic != KernelHeap::kHeaderMagic || tag != expected_tag) {
      return base::BadRemoteData();
    }
  } catch (const flash::BusError&) {
    bus_error_seen_ = true;
    ctx_->Charge(costs_.failed_access_stall_ns);
    return base::BusErrorStatus();
  }
  return base::OkStatus();
}

base::Result<ChainWalk> CarefulRef::ChaseChain(PhysAddr head, uint32_t expected_tag,
                                               int max_hops, bool detect_cycles) {
  ChainWalk walk;
  last_chain_hops_ = 0;
  std::vector<PhysAddr> visited;
  PhysAddr node = head;
  while (node != 0) {
    if (walk.hops >= max_hops) {
      // Hop bound exhausted: a rogue peer may have grown (or looped) the
      // chain; return a Status instead of chasing it forever.
      return base::ResourceExhausted();
    }
    if (detect_cycles) {
      for (PhysAddr seen : visited) {
        if (seen == node) {
          return base::BadRemoteData();
        }
      }
      visited.push_back(node);
    }
    // Copy the node out word-by-word (RemoteChainNode layout: value, next);
    // the bus only transfers naturally aligned power-of-two sizes.
    RETURN_IF_ERROR_RESULT(CheckTag(node, expected_tag));
    ASSIGN_OR_RETURN(const uint64_t value, Read<uint64_t>(node));
    ASSIGN_OR_RETURN(const uint64_t next, Read<uint64_t>(node + 8));
    ++walk.hops;
    last_chain_hops_ = walk.hops;
    walk.values.push_back(value);
    node = next;
  }
  return walk;
}

base::Result<SeqSnapshot> CarefulRef::ReadSeqlocked(PhysAddr block, uint32_t expected_tag,
                                                    int max_retries) {
  SeqSnapshot snapshot;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0 && retry_hook_) {
      retry_hook_(attempt);
    }
    // Word-by-word copy-out (RemoteSeqBlock layout: seq, word0, word1).
    RETURN_IF_ERROR_RESULT(CheckTag(block, expected_tag));
    ASSIGN_OR_RETURN(const uint64_t seq_before, Read<uint64_t>(block));
    if (seq_before % 2 != 0) {
      // Writer mid-update: the payload words may be torn; retry.
      snapshot.retries = attempt + 1;
      continue;
    }
    ASSIGN_OR_RETURN(snapshot.word0, Read<uint64_t>(block + 8));
    ASSIGN_OR_RETURN(snapshot.word1, Read<uint64_t>(block + 16));
    // Re-read the sequence word: if it moved, the copy above may mix old and
    // new halves and must be discarded.
    ASSIGN_OR_RETURN(const uint64_t after, Read<uint64_t>(block));
    if (after != seq_before) {
      snapshot.retries = attempt + 1;
      continue;
    }
    snapshot.retries = attempt;
    return snapshot;
  }
  // Persistently torn across every retry: treat as corrupt remote data.
  return base::BadRemoteData();
}

base::Status CarefulRef::ReadBytes(PhysAddr addr, std::span<uint8_t> out) {
  RETURN_IF_ERROR(CheckAddr(addr, out.size(), 1));
  ChargeAccessAt(addr, out.size());
  try {
    mem_->Read(ctx_->cpu, addr, out);
  } catch (const flash::BusError&) {
    bus_error_seen_ = true;
    ctx_->Charge(costs_.failed_access_stall_ns);
    return base::BusErrorStatus();
  }
  return base::OkStatus();
}

}  // namespace hive
