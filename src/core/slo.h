// Service-level accounting for long-running soak runs (hive_serve): per-cell
// request counters, submit-to-completion latency distributions, availability
// windows and admission-shed counts. The recorder is attached to a HiveSystem
// by the harness; core hooks (Cell::Panic/MarkDead/Boot, RecoveryManager::Run,
// Cell::AdmitRequest) feed it when present and cost nothing when absent.
//
// All mutations happen on the main simulation thread (panics, boots, recovery
// and the serve pump are serial events), so the recorder needs no locking and
// its contents are deterministic for a fixed seed.

#ifndef HIVE_SRC_CORE_SLO_H_
#define HIVE_SRC_CORE_SLO_H_

#include <cstdint>
#include <vector>

#include "src/base/histogram.h"
#include "src/core/types.h"

namespace hive {

// Per-cell service view over the whole run window.
struct CellSloStats {
  uint64_t submitted = 0;   // Requests admitted and forked onto this cell.
  uint64_t completed = 0;   // ... that ran to completion.
  uint64_t shed = 0;        // Rejected by admission control (graceful degradation).
  base::Histogram latency;  // Submit-to-completion, simulated ns, completed only.
  Time down_ns = 0;         // Total time the cell was not alive (panic/dead/reboot).
  Time suspended_ns = 0;    // User execution frozen by recovery barriers while alive.
  // Open downtime interval; closed by NoteCellUp or Finish.
  Time down_since = 0;
  bool down = false;
};

class SloRecorder {
 public:
  explicit SloRecorder(size_t num_cells) : cells_(num_cells) {}

  void NoteSubmitted(CellId cell) { ++cells_[cell].submitted; }
  void NoteCompleted(CellId cell, Time latency_ns) {
    CellSloStats& s = cells_[cell];
    ++s.completed;
    s.latency.Record(static_cast<int64_t>(latency_ns));
  }
  void NoteShed(CellId cell) { ++cells_[cell].shed; }

  // Down/up transitions are idempotent: a panic followed by MarkDead (or a
  // reboot-storm re-kill mid-boot) opens a single downtime interval.
  void NoteCellDown(CellId cell, Time now);
  void NoteCellUp(CellId cell, Time now);

  // Recovery barrier window: user execution on a *live* cell frozen from the
  // failure being confirmed until barrier 2 releases the survivors.
  void NoteSuspension(CellId cell, Time from, Time until);

  // Closes every open downtime interval at `end` so availability reflects the
  // full run window even for cells that died and never came back.
  void Finish(Time end);

  size_t num_cells() const { return cells_.size(); }
  const CellSloStats& cell(size_t id) const { return cells_[id]; }

  // Availability of one cell over a window of `window_ns`: the fraction of
  // the window it was alive and not barrier-frozen. Call after Finish().
  double Availability(size_t id, Time window_ns) const;

 private:
  std::vector<CellSloStats> cells_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_SLO_H_
