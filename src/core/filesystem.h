// Per-cell file system with a page cache unified with the virtual memory
// system (paper sections 5.1-5.2). The same GetPage path serves page faults,
// read(), and write(); pages cached on other cells are reached through the
// export/import logical-level sharing mechanism.

#ifndef HIVE_SRC_CORE_FILESYSTEM_H_
#define HIVE_SRC_CORE_FILESYSTEM_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/pfdat.h"
#include "src/core/types.h"
#include "src/core/vnode.h"

namespace hive {

class Cell;

class FileSystem {
 public:
  explicit FileSystem(Cell* cell);

  // --- Name space operations. ---

  // Creates a file with this cell as data home and registers it in the global
  // name space. `initial_data` becomes the on-disk contents.
  base::Result<FileId> Create(Ctx& ctx, const std::string& path,
                              std::span<const uint8_t> initial_data = {});

  // Opens a file by path; resolves the data home through the global name
  // space, setting up a shadow vnode for remote files.
  base::Result<FileHandle> Open(Ctx& ctx, const std::string& path);

  void Close(Ctx& ctx, FileHandle& handle);

  // Removes a file from the global name space and its data home. Cached
  // pages are dropped; handles opened earlier observe kNotFound afterwards
  // (a simplification of UNIX's unlink-while-open semantics).
  base::Status Unlink(Ctx& ctx, const std::string& path);

  // Renames within the globally coherent name space.
  base::Status Rename(Ctx& ctx, const std::string& from, const std::string& to);

  // --- Data operations (unified page cache). ---

  // Reads [offset, offset+out.size()) into `out`. Checks the handle's
  // generation: a stale handle (the file lost dirty pages in a recovery)
  // fails with kStaleGeneration.
  base::Status Read(Ctx& ctx, const FileHandle& handle, uint64_t offset,
                    std::span<uint8_t> out);

  // Writes bytes, extending the file if needed. The store into the page frame
  // goes through the firewall-checked path as ctx.cpu.
  base::Status Write(Ctx& ctx, const FileHandle& handle, uint64_t offset,
                     std::span<const uint8_t> data);

  // Writes all dirty locally-homed pages of the file back to disk.
  base::Status Sync(Ctx& ctx, VnodeId local_vnode);

  // How a page lookup was reached; determines the cost accounting (a trap
  // through the fault path is dearer than a lookup from read()/write()).
  enum class AccessPath { kFault, kSyscall };

  // The unified page lookup used by faults and I/O. For a remotely-homed file
  // this is the full remote fault path of table 5.2 (export/import).
  // `want_write` requests a writable binding (firewall grant on export).
  base::Result<Pfdat*> GetPage(Ctx& ctx, const FileHandle& handle, uint64_t page_index,
                               bool want_write, AccessPath path = AccessPath::kFault);

  // Data-home-local page lookup/creation for a locally-owned vnode. When
  // `place_near` names a cell and CC-NUMA placement is enabled, a fresh page
  // is cached in a frame borrowed from that cell's memory, so the client's
  // later accesses are node-local (paper section 5.5: the loaned frame is
  // imported back by its memory home through the pre-existing pfdat).
  base::Result<Pfdat*> GetPageLocal(Ctx& ctx, VnodeId vnode_id, uint64_t page_index,
                                    bool want_write, bool fill_from_disk = true,
                                    CellId place_near = kInvalidCell);

  // Releases one client reference to a page previously returned by GetPage.
  void ReleasePage(Ctx& ctx, Pfdat* pfdat);

  // release() (paper table 5.1): frees the extended pfdat and tells the data
  // home, which drops its export record and revokes any firewall grant. Used
  // when the last mapping of a writable import goes away (the section 4.2
  // policy: "write permission remains granted as long as any process on that
  // cell has the page mapped").
  void DropImport(Ctx& ctx, Pfdat* pfdat);

  // --- Recovery integration. ---

  // Content checksum of one page frame (FNV-1a over the frame bytes, read by
  // DMA). Returns false if the frame's memory is unreachable. Used by the
  // salvage path to recompute a candidate's checksum during recovery.
  bool PageChecksum(PhysAddr frame, uint64_t* sum_out) const;

  // A dirty page of `vnode_id` was discarded: bump the generation so handles
  // opened before the failure observe an error (paper section 4.2).
  void NoteDirtyPageLost(VnodeId vnode_id);

  // Drops every cached page imported from `failed_cell` and every shadow
  // binding to it. Returns the number of pages dropped.
  int DropImportsFrom(Ctx& ctx, CellId failed_cell);

  // Recovery: drops every import regardless of home. After the first global
  // barrier no remote mapping is valid anywhere, so bindings are rebuilt by
  // fresh faults (paper section 4.3).
  int DropAllImports(Ctx& ctx);

  // --- Accessors. ---
  Vnode* FindVnode(VnodeId id);
  const Vnode* FindVnode(VnodeId id) const;
  Vnode* FindShadowFor(CellId data_home, VnodeId remote_id);

  uint64_t remote_faults() const { return remote_faults_; }
  uint64_t local_fault_hits() const { return local_fault_hits_; }

  // RPC service entry points (registered by Cell at boot).
  void RegisterHandlers();

  // Reboot: page cache state is gone (it lived in failed memory), disk images
  // and generations persist. Shadow bindings are transient and dropped.
  void OnReboot();

 private:
  friend class CowManager;

  base::Result<Pfdat*> ImportRemotePage(Ctx& ctx, const FileHandle& handle,
                                        uint64_t page_index, bool want_write);
  base::Result<VnodeId> EnsureShadow(Ctx& ctx, CellId data_home, VnodeId remote_id,
                                     const std::string& path);
  // Export service (data home side): binds the page for `client` and adjusts
  // the firewall. Returns the frame address.
  base::Result<PhysAddr> ExportPage(Ctx& ctx, VnodeId vnode_id, uint64_t page_index,
                                    CellId client, bool writable, Generation* gen_out);

  // Unlink service: drops the vnode and its cached pages at the data home.
  base::Status RemoveVnode(Ctx& ctx, VnodeId vnode_id);

  // CC-NUMA page migration: rebinds the page onto a frame borrowed from
  // `client`'s memory (sections 5.5/5.6). Returns the new pfdat.
  base::Result<Pfdat*> MigratePageNear(Ctx& ctx, Pfdat* pfdat, CellId client);

  // Salvage support (HiveOptions::salvage_pages): records the page's current
  // content checksum and generation in the pfdat, so recovery can verify the
  // page was not scribbled by the failed cell before adopting it.
  void RecordSalvageSum(Pfdat* pfdat);

  Cell* cell_;
  std::unordered_map<VnodeId, Vnode> vnodes_;
  VnodeId next_vnode_id_ = 1;
  // (data_home, remote_id) -> local shadow vnode id.
  std::unordered_map<uint64_t, VnodeId> shadow_index_;

  uint64_t remote_faults_ = 0;
  uint64_t local_fault_hits_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_FILESYSTEM_H_
