// Vnodes and file handles. Each cell's file system owns the files whose
// backing store lives on its disks (it is their *data home*). Files on other
// cells are reached through shadow vnodes (paper section 5.2), which record
// the data home and the remote vnode identity.
//
// Each vnode carries a generation number, incremented when a dirty page of
// the file is lost to preemptive discard. A process copies the generation
// into its file descriptor (or address space region) at open/map time; a
// mismatched access yields an I/O error, while fresh opens read whatever is
// on disk (paper section 4.2, relaxed stable-write semantics).

#ifndef HIVE_SRC_CORE_VNODE_H_
#define HIVE_SRC_CORE_VNODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace hive {

struct Vnode {
  VnodeId id = kInvalidVnode;
  std::string path;
  uint64_t size_bytes = 0;
  Generation generation = 0;

  // The "disk surface": contents as last written back. Owned natively because
  // the disk is a device, not shared memory; it survives a cell failure and
  // is readable again after reboot/reintegration.
  std::vector<uint8_t> disk_image;

  // Shadow vnode state: set when this vnode stands in for a remote file.
  bool is_shadow = false;
  CellId shadow_data_home = kInvalidCell;
  VnodeId shadow_remote_id = kInvalidVnode;

  int open_count = 0;
};

// A process's reference to an open file.
struct FileHandle {
  CellId data_home = kInvalidCell;
  VnodeId vnode = kInvalidVnode;       // Vnode id on the data home.
  VnodeId local_vnode = kInvalidVnode;  // Local (possibly shadow) vnode id.
  Generation generation = 0;            // Snapshot at open time.
  uint64_t size_bytes = 0;              // Snapshot at open time.

  bool valid() const { return vnode != kInvalidVnode; }
};

// Identity of a file in the global name space.
struct FileId {
  CellId data_home = kInvalidCell;
  VnodeId vnode = kInvalidVnode;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_VNODE_H_
