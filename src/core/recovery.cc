#include "src/core/recovery.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/core/invariant_checker.h"

namespace hive {
namespace {

constexpr Time kAlertDeliveryNs = 1 * kMicrosecond;
constexpr Time kDiagnosticsDelayNs = 5 * kMillisecond;

}  // namespace

Time RecoveryManager::PhaseFlushMappings(Ctx& ctx, CellId cell_id) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();
  phase_ctx.Charge(cell.costs().recovery_tlb_flush_ns);
  for (Process* proc : cell.sched().AllProcesses()) {
    if (!proc->finished()) {
      proc->address_space().FlushMappings(phase_ctx, /*remote_only=*/false);
    }
  }
  return phase_ctx.elapsed;
}

Time RecoveryManager::PhaseDiscardAndCleanup(Ctx& ctx, CellId cell_id,
                                             const std::vector<CellId>& failed,
                                             RecoveryStats* stats) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();

  uint64_t failed_mask = 0;
  for (CellId f : failed) {
    failed_mask |= 1ull << f;
  }

  // Scanning the virtual memory state costs time proportional to the pfdat
  // table (the dominant recovery cost for large memories).
  phase_ctx.Charge(static_cast<Time>(cell.pfdats().total_pfdats()) *
                   cell.costs().recovery_per_page_scan_ns);

  // 1. Revoke firewall write permission granted to the failed cells; the
  //    pages they could write are preemptively discarded below.
  (void)cell.firewall_manager().RevokeAllFor(phase_ctx, failed.front());
  for (size_t i = 1; i < failed.size(); ++i) {
    (void)cell.firewall_manager().RevokeAllFor(phase_ctx, failed[i]);
  }

  // 2. Drop the spare borrowed frames still sitting in the allocator's
  //    per-home free buckets. This must happen before the pfdat walk below:
  //    those spares are extended pfdats borrowed from the failed cells, so
  //    the walk would otherwise collect them into dead_borrows and remove
  //    them a second time behind the allocator's back.
  cell.allocator().DropBorrowsFrom(failed.front());
  for (size_t i = 1; i < failed.size(); ++i) {
    cell.allocator().DropBorrowsFrom(failed[i]);
  }

  // 3. Walk the pfdat table: discard pages writable by failed cells, drop
  //    bindings cached in frames whose memory home failed, clear export
  //    state (every remaining remote grant is also revoked -- no remote
  //    mapping survives barrier 1).
  std::vector<Pfdat*> dead_borrows;
  cell.pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->extended && pfdat->borrowed_from != kInvalidCell &&
        (failed_mask & (1ull << pfdat->borrowed_from)) != 0) {
      dead_borrows.push_back(pfdat);
      return;
    }
    if (!pfdat->extended && pfdat->HasLogicalBinding() &&
        (pfdat->exported_writable & failed_mask) != 0) {
      // Pessimistic assumption: everything the failed cell could write is
      // corrupt (paper section 3.1).
      ++stats->pages_discarded;
      cell.Trace(TraceEvent::kPageDiscarded, pfdat->frame);
      if (pfdat->dirty && pfdat->lpid.kind == LogicalPageId::Kind::kFile) {
        cell.fs().NoteDirtyPageLost(static_cast<VnodeId>(pfdat->lpid.object));
        ++stats->dirty_pages_lost;
      }
      cell.pfdats().RemoveHash(pfdat);
      pfdat->lpid = LogicalPageId{};
      pfdat->dirty = false;
      pfdat->exported_to = 0;
      pfdat->exported_writable = 0;
      if (pfdat->refcount == 0 && !pfdat->loaned_out) {
        cell.allocator().ReleaseToFreeList(pfdat);
      }
      return;
    }
    pfdat->exported_to = 0;
    pfdat->exported_writable = 0;
  });
  for (Pfdat* pfdat : dead_borrows) {
    // The frame's memory is gone. Dirty file data cached there is lost.
    if (pfdat->HasLogicalBinding() && pfdat->dirty &&
        pfdat->lpid.kind == LogicalPageId::Kind::kFile &&
        pfdat->lpid.data_home == cell.id()) {
      cell.fs().NoteDirtyPageLost(static_cast<VnodeId>(pfdat->lpid.object));
      ++stats->dirty_pages_lost;
    }
    cell.pfdats().RemoveExtended(pfdat);
  }

  // 4. Drop all imports (rebuilt by fresh faults) and remaining grants.
  stats->imports_dropped += cell.fs().DropAllImports(phase_ctx);
  cell.firewall_manager().RevokeAllRemote(phase_ctx);

  // 5. Reclaim frames loaned to failed cells.
  for (CellId f : failed) {
    stats->loans_reclaimed += cell.allocator().ReclaimLoansTo(f);
  }

  phase_ctx.Charge(cell.costs().recovery_fs_cleanup_ns);
  return phase_ctx.elapsed;
}

Time RecoveryManager::PhaseKillDependents(Ctx& ctx, CellId cell_id,
                                          const std::vector<CellId>& failed,
                                          RecoveryStats* stats) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();

  uint64_t failed_mask = 0;
  for (CellId f : failed) {
    failed_mask |= 1ull << f;
  }

  for (Process* proc : cell.sched().AllProcesses()) {
    if (proc->finished()) {
      continue;
    }
    const bool hard_dependency = (proc->dependency_mask() & failed_mask) != 0;
    const bool group_hit =
        proc->task_group() >= 0 &&
        (system_->GroupCells(proc->task_group()) & failed_mask) != 0;
    if (hard_dependency || group_hit) {
      cell.sched().KillProcess(phase_ctx, proc,
                               hard_dependency ? "used resources of a failed cell"
                                               : "task group member on a failed cell");
      ++stats->processes_killed;
    }
  }
  return phase_ctx.elapsed;
}

RecoveryStats RecoveryManager::Run(Ctx& ctx, const std::vector<CellId>& failed_cells) {
  ++recoveries_run_;
  RecoveryStats stats;
  stats.failed_cells = failed_cells;
  stats.detect_time = ctx.VirtualNow();

  const std::vector<CellId> live = system_->LiveCells();
  if (live.empty()) {
    last_stats_ = stats;
    return stats;
  }

  // Every live cell enters recovery when the confirmation broadcast reaches
  // it; processes already running at kernel level complete their current
  // operation (modelled as the alert delivery cost).
  std::vector<Time> entry(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    entry[i] = stats.detect_time + kAlertDeliveryNs;
    system_->cell(live[i]).set_in_recovery(true);
    system_->cell(live[i]).Trace(TraceEvent::kEnterRecovery,
                                 static_cast<uint64_t>(failed_cells.front()));
  }
  stats.entered_recovery = entry;

  // Phase A (before barrier 1): flush TLBs, remove mappings. Page faults that
  // arrive after a cell joins the barrier are held up on the client side.
  Time barrier1 = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    const Time cost = PhaseFlushMappings(ctx, live[i]);
    barrier1 = std::max(barrier1, entry[i] + cost);
  }
  barrier1 += system_->costs().recovery_barrier_round_ns;
  stats.barrier1_time = barrier1;

  // Phase B (between barriers): revoke grants, preemptive discard, VM and
  // process cleanup.
  Time barrier2 = barrier1;
  for (CellId cell_id : live) {
    Time cost = PhaseDiscardAndCleanup(ctx, cell_id, failed_cells, &stats);
    cost += PhaseKillDependents(ctx, cell_id, failed_cells, &stats);
    barrier2 = std::max(barrier2, barrier1 + cost);
  }
  barrier2 += system_->costs().recovery_barrier_round_ns;
  stats.barrier2_time = barrier2;

  // Cells that exit the second barrier resume normal operation.
  for (CellId cell_id : live) {
    Cell& cell = system_->cell(cell_id);
    cell.SuspendUsersUntil(barrier2);
    cell.set_in_recovery(false);
    cell.Trace(TraceEvent::kExitRecovery, static_cast<uint64_t>(stats.pages_discarded));
    cell.detector().ForgetCell(failed_cells.front());
    for (size_t i = 1; i < failed_cells.size(); ++i) {
      cell.detector().ForgetCell(failed_cells[i]);
    }
    cell.sched().KickAll();
  }

  // Waiters blocked on processes that died with a failed cell are woken.
  system_->WakeOrphanedWaiters();

  // Elect the recovery master (lowest live cell id) and run diagnostics on
  // the failed nodes; if they pass, reboot and reintegrate.
  stats.recovery_master = *std::min_element(live.begin(), live.end());
  if (auto_reintegrate) {
    for (CellId f : failed_cells) {
      system_->machine().events().ScheduleAt(
          barrier2 + kDiagnosticsDelayNs, [this, f] {
            Ctx reint_ctx;
            Cell& master = system_->cell(system_->LiveCells().front());
            reint_ctx.cell = &master;
            reint_ctx.cpu = master.FirstCpu();
            reint_ctx.start = system_->machine().Now();
            (void)Reintegrate(reint_ctx, f);
          });
    }
  }

  // Debug-mode audit: recovery just rewrote grant, export and loan state on
  // every live cell; verify the firewall vectors agree with the new
  // bookkeeping. Raised hints are absorbed by the in-progress alert episode.
  if (system_->options().audit_invariants) {
    InvariantChecker checker(system_);
    const InvariantReport audit = checker.AuditAll(/*raise_hints=*/true);
    for (const InvariantMismatch& mismatch : audit.mismatches) {
      LOG(kWarn) << "post-recovery invariant audit: " << mismatch.ToString();
    }
  }

  LOG(kInfo) << "recovery complete: " << stats.pages_discarded << " pages discarded, "
             << stats.dirty_pages_lost << " dirty pages lost, " << stats.processes_killed
             << " processes killed; users resume at t=" << barrier2;
  last_stats_ = stats;
  return stats;
}

base::Status RecoveryManager::Reintegrate(Ctx& ctx, CellId cell_id) {
  (void)ctx;
  Cell& cell = system_->cell(cell_id);
  if (cell.alive()) {
    return base::InvalidArgument();
  }
  for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes(); ++node) {
    system_->machine().RestoreNode(node);
  }
  cell.Reboot();
  system_->NoteCellReintegrated(cell_id);
  LOG(kInfo) << "cell " << cell_id << " rebooted and reintegrated at t="
             << system_->machine().Now();
  return base::OkStatus();
}

}  // namespace hive
