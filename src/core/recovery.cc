#include "src/core/recovery.h"

#include <algorithm>
#include <unordered_set>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/core/invariant_checker.h"
#include "src/core/rpc.h"

namespace hive {
namespace {

constexpr Time kAlertDeliveryNs = 1 * kMicrosecond;
constexpr Time kDiagnosticsDelayNs = 5 * kMillisecond;
// Live rejoin runs shortly after the rebooted kernel comes up, while the
// survivors are back under load (recovery released them at barrier 2).
constexpr Time kWarmRejoinDelayNs = 2 * kMillisecond;

}  // namespace

Time RecoveryManager::PhaseFlushMappings(Ctx& ctx, CellId cell_id) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();
  phase_ctx.Charge(cell.costs().recovery_tlb_flush_ns);
  for (Process* proc : cell.sched().AllProcesses()) {
    if (!proc->finished()) {
      proc->address_space().FlushMappings(phase_ctx, /*remote_only=*/false);
    }
  }
  return phase_ctx.elapsed;
}

Time RecoveryManager::PhaseDiscardAndCleanup(Ctx& ctx, CellId cell_id,
                                             const std::vector<CellId>& failed,
                                             RecoveryStats* stats) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();

  uint64_t failed_mask = 0;
  for (CellId f : failed) {
    failed_mask |= 1ull << f;
  }

  // Scanning the virtual memory state costs time proportional to the pfdat
  // table (the dominant recovery cost for large memories).
  phase_ctx.Charge(static_cast<Time>(cell.pfdats().total_pfdats()) *
                   cell.costs().recovery_per_page_scan_ns);

  // 1. Revoke firewall write permission granted to the failed cells. The
  //    returned pfns are exactly the local pages a failed cell could reach
  //    with hardware stores at failure time: the salvage path below must
  //    assume those are corrupt, while an export record with no backing
  //    grant (e.g. evicted under the single-writer ablation) proves the
  //    failed cell never had write access.
  std::unordered_set<Pfn> hw_writable;
  for (Pfn pfn : cell.firewall_manager().RevokeAllFor(phase_ctx, failed.front())) {
    hw_writable.insert(pfn);
  }
  for (size_t i = 1; i < failed.size(); ++i) {
    for (Pfn pfn : cell.firewall_manager().RevokeAllFor(phase_ctx, failed[i])) {
      hw_writable.insert(pfn);
    }
  }

  // 2. Drop the spare borrowed frames still sitting in the allocator's
  //    per-home free buckets. This must happen before the pfdat walk below:
  //    those spares are extended pfdats borrowed from the failed cells, so
  //    the walk would otherwise collect them into dead_borrows and remove
  //    them a second time behind the allocator's back.
  cell.allocator().DropBorrowsFrom(failed.front());
  for (size_t i = 1; i < failed.size(); ++i) {
    cell.allocator().DropBorrowsFrom(failed[i]);
  }

  // 3. Walk the pfdat table: discard pages writable by failed cells (unless
  //    a salvage proof admits them), drop bindings cached in frames whose
  //    memory home failed, clear export state (every remaining remote grant
  //    is also revoked -- no remote mapping survives barrier 1).
  const HiveOptions& opts = system_->options();
  const bool firewall_checking = cell.machine().firewall().checking_enabled();

  // Salvage proof check for one discard candidate. Proof A: the firewall
  // vector shows the failed cell never held hardware write permission on the
  // frame (export record without a backing grant). Proof B: the content
  // checksum recorded at the last checked write still matches the frame and
  // the generation is unchanged -- any unchecked store (a wild write) breaks
  // it. With salvage_verify off (the seeded salvage_unchecked bug) every
  // candidate is adopted blind, which the no-corrupt-adoption oracle exists
  // to catch.
  auto salvage_proof = [&](Pfdat* pfdat, SalvageRecord* record) -> bool {
    if (!opts.salvage_pages) {
      return false;
    }
    if (firewall_checking && cell.OwnsAddr(pfdat->frame) &&
        hw_writable.count(cell.machine().mem().PfnOfAddr(pfdat->frame)) == 0) {
      record->firewall_proof = true;
      return true;
    }
    if (!opts.salvage_verify) {
      return true;  // Seeded bug: adopt without recomputing the checksum.
    }
    if (!pfdat->salvage_sum_valid || pfdat->salvage_gen != pfdat->generation) {
      return false;  // No recorded baseline to check against.
    }
    phase_ctx.Charge(cell.costs().recovery_salvage_check_ns);
    uint64_t sum = 0;
    if (!cell.fs().PageChecksum(pfdat->frame, &sum) || sum != pfdat->salvage_sum) {
      cell.Trace(TraceEvent::kSalvageRejected, pfdat->frame,
                 static_cast<uint64_t>(failed.front()));
      return false;
    }
    record->sum = sum;
    record->checksum_proof = true;
    return true;
  };

  std::vector<Pfdat*> dead_borrows;
  cell.pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->extended && pfdat->borrowed_from != kInvalidCell &&
        (failed_mask & (1ull << pfdat->borrowed_from)) != 0) {
      dead_borrows.push_back(pfdat);
      return;
    }
    if (!pfdat->extended && pfdat->HasLogicalBinding() &&
        (pfdat->exported_writable & failed_mask) != 0) {
      SalvageRecord record;
      if (salvage_proof(pfdat, &record)) {
        // Adoption: the surviving data home keeps the page instead of
        // discarding it. Export state is cleared below like any other
        // survivor page (no remote mapping outlives barrier 1; surviving
        // clients re-import by fresh faults), and the allocator is told so
        // the frame stays accounted as a live cache page.
        ++stats->pages_salvaged;
        cell.Trace(TraceEvent::kPageSalvaged, pfdat->frame,
                   static_cast<uint64_t>(failed.front()));
        cell.allocator().NoteSalvagedAdoption(pfdat);
        record.owner = cell.id();
        record.frame = pfdat->frame;
        record.lpid = pfdat->lpid;
        salvage_log_.push_back(record);
      } else {
        // Pessimistic assumption: everything the failed cell could write is
        // corrupt (paper section 3.1).
        ++stats->pages_discarded;
        cell.Trace(TraceEvent::kPageDiscarded, pfdat->frame);
        if (pfdat->dirty && pfdat->lpid.kind == LogicalPageId::Kind::kFile) {
          cell.fs().NoteDirtyPageLost(static_cast<VnodeId>(pfdat->lpid.object));
          ++stats->dirty_pages_lost;
        }
        cell.pfdats().RemoveHash(pfdat);
        pfdat->lpid = LogicalPageId{};
        pfdat->dirty = false;
        pfdat->salvage_sum_valid = false;
        pfdat->exported_to = 0;
        pfdat->exported_writable = 0;
        if (pfdat->refcount == 0 && !pfdat->loaned_out) {
          cell.allocator().ReleaseToFreeList(pfdat);
        }
        return;
      }
    }
    pfdat->exported_to = 0;
    pfdat->exported_writable = 0;
  });
  for (Pfdat* pfdat : dead_borrows) {
    // The frame's memory is gone. Dirty file data cached there is lost.
    if (pfdat->HasLogicalBinding() && pfdat->dirty &&
        pfdat->lpid.kind == LogicalPageId::Kind::kFile &&
        pfdat->lpid.data_home == cell.id()) {
      cell.fs().NoteDirtyPageLost(static_cast<VnodeId>(pfdat->lpid.object));
      ++stats->dirty_pages_lost;
    }
    cell.pfdats().RemoveExtended(pfdat);
  }

  // 4. Drop all imports (rebuilt by fresh faults) and remaining grants.
  stats->imports_dropped += cell.fs().DropAllImports(phase_ctx);
  cell.firewall_manager().RevokeAllRemote(phase_ctx);

  // 5. Reclaim frames loaned to failed cells.
  for (CellId f : failed) {
    stats->loans_reclaimed += cell.allocator().ReclaimLoansTo(f);
  }

  phase_ctx.Charge(cell.costs().recovery_fs_cleanup_ns);
  return phase_ctx.elapsed;
}

Time RecoveryManager::PhaseKillDependents(Ctx& ctx, CellId cell_id,
                                          const std::vector<CellId>& failed,
                                          RecoveryStats* stats) {
  Cell& cell = system_->cell(cell_id);
  Ctx phase_ctx = cell.MakeCtx();
  phase_ctx.start = ctx.VirtualNow();

  uint64_t failed_mask = 0;
  for (CellId f : failed) {
    failed_mask |= 1ull << f;
  }

  for (Process* proc : cell.sched().AllProcesses()) {
    if (proc->finished()) {
      continue;
    }
    const bool hard_dependency = (proc->dependency_mask() & failed_mask) != 0;
    const bool group_hit =
        proc->task_group() >= 0 &&
        (system_->GroupCells(proc->task_group()) & failed_mask) != 0;
    if (hard_dependency || group_hit) {
      cell.sched().KillProcess(phase_ctx, proc,
                               hard_dependency ? "used resources of a failed cell"
                                               : "task group member on a failed cell");
      ++stats->processes_killed;
    }
  }
  return phase_ctx.elapsed;
}

RecoveryStats RecoveryManager::Run(Ctx& ctx, const std::vector<CellId>& failed_cells) {
  ++recoveries_run_;
  RecoveryStats stats;
  stats.failed_cells = failed_cells;
  stats.detect_time = ctx.VirtualNow();

  const std::vector<CellId> live = system_->LiveCells();
  if (live.empty()) {
    last_stats_ = stats;
    return stats;
  }

  // Every live cell enters recovery when the confirmation broadcast reaches
  // it; processes already running at kernel level complete their current
  // operation (modelled as the alert delivery cost).
  std::vector<Time> entry(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    entry[i] = stats.detect_time + kAlertDeliveryNs;
    system_->cell(live[i]).set_in_recovery(true);
    system_->cell(live[i]).Trace(TraceEvent::kEnterRecovery,
                                 static_cast<uint64_t>(failed_cells.front()));
  }
  stats.entered_recovery = entry;

  // Phase A (before barrier 1): flush TLBs, remove mappings. Page faults that
  // arrive after a cell joins the barrier are held up on the client side.
  Time barrier1 = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    const Time cost = PhaseFlushMappings(ctx, live[i]);
    barrier1 = std::max(barrier1, entry[i] + cost);
  }
  barrier1 += system_->costs().recovery_barrier_round_ns;
  stats.barrier1_time = barrier1;

  // Phase B (between barriers): revoke grants, preemptive discard, VM and
  // process cleanup.
  Time barrier2 = barrier1;
  for (CellId cell_id : live) {
    Time cost = PhaseDiscardAndCleanup(ctx, cell_id, failed_cells, &stats);
    cost += PhaseKillDependents(ctx, cell_id, failed_cells, &stats);
    barrier2 = std::max(barrier2, barrier1 + cost);
  }
  barrier2 += system_->costs().recovery_barrier_round_ns;
  stats.barrier2_time = barrier2;

  // Cells that exit the second barrier resume normal operation.
  for (CellId cell_id : live) {
    Cell& cell = system_->cell(cell_id);
    cell.SuspendUsersUntil(barrier2);
    if (system_->slo_recorder() != nullptr) {
      // Survivors were frozen from confirmation to barrier 2; the window
      // counts against their availability even though they never went down.
      system_->slo_recorder()->NoteSuspension(cell_id, stats.detect_time, barrier2);
    }
    cell.set_in_recovery(false);
    cell.Trace(TraceEvent::kExitRecovery, static_cast<uint64_t>(stats.pages_discarded));
    cell.detector().ForgetCell(failed_cells.front());
    for (size_t i = 1; i < failed_cells.size(); ++i) {
      cell.detector().ForgetCell(failed_cells[i]);
    }
    cell.sched().KickAll();
  }

  // Waiters blocked on processes that died with a failed cell are woken.
  system_->WakeOrphanedWaiters();

  // Elect the recovery master (lowest live cell id) and run diagnostics on
  // the failed nodes; if they pass, reboot and reintegrate.
  stats.recovery_master = *std::min_element(live.begin(), live.end());
  if (auto_reintegrate) {
    for (CellId f : failed_cells) {
      system_->machine().events().ScheduleAt(
          barrier2 + kDiagnosticsDelayNs, [this, f] {
            const std::vector<CellId> live_now = system_->LiveCells();
            if (live_now.empty()) {
              return;
            }
            Ctx reint_ctx;
            Cell& master = system_->cell(live_now.front());
            reint_ctx.cell = &master;
            reint_ctx.cpu = master.FirstCpu();
            reint_ctx.start = system_->machine().Now();
            const base::Status status = Reintegrate(reint_ctx, f);
            if (!status.ok() && !system_->cell(f).alive()) {
              // Diagnostics/reboot failed: the cell stays excised and the
              // master records the failure as careful-check evidence so the
              // episode is visible to detection, not silently dropped.
              LOG(kWarn) << "reintegration of cell " << f
                         << " failed: " << status.name() << "; cell stays excised";
              master.detector().RaiseHint(reint_ctx, f,
                                          HintReason::kCarefulCheckFailed);
            }
          });
    }
  }

  // Debug-mode audit: recovery just rewrote grant, export and loan state on
  // every live cell; verify the firewall vectors agree with the new
  // bookkeeping. Raised hints are absorbed by the in-progress alert episode.
  if (system_->options().audit_invariants) {
    InvariantChecker checker(system_);
    const InvariantReport audit = checker.AuditAll(/*raise_hints=*/true);
    for (const InvariantMismatch& mismatch : audit.mismatches) {
      LOG(kWarn) << "post-recovery invariant audit: " << mismatch.ToString();
    }
  }

  LOG(kInfo) << "recovery complete: " << stats.pages_discarded << " pages discarded, "
             << stats.dirty_pages_lost << " dirty pages lost, " << stats.processes_killed
             << " processes killed; users resume at t=" << barrier2;
  stats.duration_ns = barrier2 - stats.detect_time;
  last_stats_ = stats;
  episodes_.push_back(stats);
  return stats;
}

base::Status RecoveryManager::Reintegrate(Ctx& ctx, CellId cell_id) {
  Cell& cell = system_->cell(cell_id);
  if (cell.alive()) {
    return base::InvalidArgument();
  }
  const size_t log_index = reintegration_log_.size();
  ReintegrationRecord record;
  record.cell = cell_id;
  record.started_at = system_->machine().Now();
  reintegration_log_.push_back(record);
  if (ctx.cell != nullptr) {
    // Traced on the master: the rejoining cell's ring wraps during its own
    // boot, and a storm can kill it again before anyone reads it.
    ctx.cell->Trace(TraceEvent::kReintegrationStart, static_cast<uint64_t>(cell_id));
  }
  for (int node = cell.first_node(); node < cell.first_node() + cell.num_nodes(); ++node) {
    system_->machine().RestoreNode(node);
  }
  cell.Reboot();
  system_->NoteCellReintegrated(cell_id);
  if (system_->options().live_rejoin) {
    // Phase 2 (live rejoin): once survivors are back under load, the fresh
    // kernel re-enters the transport and the frame economy before it counts
    // as a full member. Page imports/exports are rebuilt demand-driven by
    // its first faults, as after any recovery.
    system_->machine().events().ScheduleAfter(
        kWarmRejoinDelayNs, [this, cell_id, log_index] { WarmRejoin(cell_id, log_index); });
  } else {
    // Quiet reintegration: the reboot itself is the whole rejoin.
    reintegration_log_[log_index].done_at = system_->machine().Now();
    if (ctx.cell != nullptr) {
      ctx.cell->Trace(TraceEvent::kReintegrationDone, static_cast<uint64_t>(cell_id));
    }
  }
  LOG(kInfo) << "cell " << cell_id << " rebooted and reintegrated at t="
             << system_->machine().Now();
  return base::OkStatus();
}

void RecoveryManager::WarmRejoin(CellId cell_id, size_t log_index) {
  Cell& cell = system_->cell(cell_id);
  if (!cell.alive() || !system_->CellReachable(cell_id)) {
    // Killed again before converging (reboot storm): this episode is settled
    // by the new excision; a later reintegration starts its own record.
    reintegration_log_[log_index].re_excised = true;
    return;
  }
  Ctx ctx = cell.MakeCtx();
  ctx.start = system_->machine().Now();

  // Re-enter the transport: a null ping to every survivor makes both sides
  // rebuild per-peer state under the new incarnation epoch (stale pre-crash
  // replay entries were dropped by ForgetPeer / the epoch bump).
  CellId lender = kInvalidCell;
  for (CellId peer : system_->LiveCells()) {
    if (peer == cell_id) {
      continue;
    }
    RpcArgs args;
    RpcReply reply;
    if (cell.rpc().Call(ctx, peer, MsgType::kNull, args, &reply).ok() &&
        lender == kInvalidCell) {
      lender = peer;
    }
  }

  // Re-enter the frame economy: borrow a frame batch from the first
  // responsive survivor and return it, proving the loan/return path works
  // end to end for the new incarnation.
  if (lender != kInvalidCell) {
    RpcArgs borrow;
    borrow.w[0] = static_cast<uint64_t>(cell_id);
    borrow.w[1] = 1;
    RpcReply frames;
    if (cell.rpc().Call(ctx, lender, MsgType::kBorrowFrames, borrow, &frames).ok() &&
        frames.w[0] >= 1) {
      RpcArgs give_back;
      give_back.w[0] = static_cast<uint64_t>(cell_id);
      give_back.w[1] = frames.w[1];
      RpcReply ignored;
      (void)cell.rpc().Call(ctx, lender, MsgType::kReturnFrame, give_back, &ignored);
    }
  }

  // Re-index: the pings above can run agreement + recovery synchronously,
  // and a nested Reintegrate growing the log would invalidate a reference.
  reintegration_log_[log_index].done_at = system_->machine().Now();
  cell.Trace(TraceEvent::kReintegrationDone, static_cast<uint64_t>(cell_id));
}

}  // namespace hive
