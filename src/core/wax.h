// Wax: the user-level resource management policy process (paper section 3.2).
//
// Wax is a multithreaded user-level process with threads on every cell. It
// reads state from all cells through shared memory, builds a global view, and
// provides hints that drive the resource management policies needing that
// global view (page allocation targets, clock-hand deallocation targets,
// scheduling/placement). Cells sanity-check every input from Wax, and
// correctness-critical operations never depend on it: a damaged Wax can hurt
// performance but not correctness.
//
// Wax uses resources from all cells, so whenever any cell fails it simply
// exits; recovery starts a fresh incarnation which forks to all cells and
// rebuilds its picture of the system from scratch.

#ifndef HIVE_SRC_CORE_WAX_H_
#define HIVE_SRC_CORE_WAX_H_

#include <cstdint>
#include <vector>

#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class HiveSystem;

// The hint block a cell keeps from Wax (after sanity-checking).
struct WaxHints {
  CellId preferred_borrow_target = kInvalidCell;  // Memory-rich cell.
  CellId preferred_fork_target = kInvalidCell;    // Least-loaded cell.
  bool valid = false;
};

class Wax {
 public:
  explicit Wax(HiveSystem* system) : system_(system) {}

  // Forks Wax threads to all live cells and schedules the periodic scan.
  void Start(Time when);

  // Any cell failed: Wax's pages are discarded and it exits. Recovery calls
  // Restart afterwards.
  void OnCellFailure();
  void Restart(Time when);

  bool running() const { return running_; }
  int incarnation() const { return incarnation_; }
  uint64_t scans() const { return scans_; }

  static constexpr Time kScanPeriod = 100 * kMillisecond;

 private:
  void ScheduleScan();
  void Scan();

  HiveSystem* system_;
  bool running_ = false;
  int incarnation_ = 0;
  uint64_t scans_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_WAX_H_
