// Per-cell page frame allocation with physical-level sharing (paper
// section 5.4): a cell that has a free page frame can transfer control over
// that frame to another cell (loan_frame / borrow_frame / return_frame).
//
// Frame loaning is demand-driven: when a request cannot or should not be
// satisfied locally, the allocator sends an RPC to a memory home asking for a
// set of pages. Allocation requests carry constraints: a set of cells
// acceptable for the request and one preferred cell. Frames allocated for
// internal kernel use must be local, since the firewall does not defend
// against wild writes by the memory home.
//
// Loaned and borrowed frames are bucketed per peer cell so the hot reuse
// probe in AllocFrame is O(1) and the failure-time sweeps
// (ReclaimLoansTo / DropBorrowsFrom) are proportional to the *failed cell's*
// frames, not to every loan or borrow this cell has outstanding.

#ifndef HIVE_SRC_CORE_PAGE_ALLOCATOR_H_
#define HIVE_SRC_CORE_PAGE_ALLOCATOR_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/pfdat.h"
#include "src/core/types.h"

namespace hive {

class Cell;

struct AllocConstraints {
  uint64_t acceptable_cells = ~0ull;   // Bitmask; default: anywhere.
  CellId preferred_cell = kInvalidCell;  // kInvalidCell: local.
  bool kernel_internal = false;        // Must be local memory.
};

class PageAllocator {
 public:
  PageAllocator(Cell* cell);

  // Called at boot with every local paged frame.
  void AddBootFrame(Pfdat* pfdat);

  // Allocates a frame subject to constraints. May borrow remotely. The
  // returned pfdat has no logical binding and refcount 1.
  base::Result<Pfdat*> AllocFrame(Ctx& ctx, const AllocConstraints& constraints = {});

  // Frees a frame previously returned by AllocFrame. Borrowed frames are
  // returned to their memory home with an RPC (current policy: immediately,
  // section 5.4 "we have not yet developed a better policy").
  void FreeFrame(Ctx& ctx, Pfdat* pfdat);

  // --- Memory home side of physical-level sharing. ---
  // Loans up to `count` local free frames to `client`. Returns the frame
  // addresses. Loaned frames move to the reserved list and are ignored until
  // returned or until the borrower fails.
  std::vector<PhysAddr> LoanFrames(Ctx& ctx, CellId client, int count);

  // return_frame service: the borrower freed the frame.
  base::Status AcceptReturnedFrame(Ctx& ctx, PhysAddr frame, CellId client);

  // Recovery: reclaims every frame loaned to a failed cell (contents are
  // untrusted; the frame goes back to the free list). O(frames loaned to the
  // failed cell); reclaimed frames rejoin the free list in frame-address
  // order (deterministic regardless of hash/pointer layout).
  int ReclaimLoansTo(CellId failed_cell);

  // Recovery: drops records of frames borrowed from a failed memory home.
  // O(frames borrowed from that home).
  int DropBorrowsFrom(CellId failed_cell);

  // Recovery/eviction: puts an unbound local frame back on the free list.
  void ReleaseToFreeList(Pfdat* pfdat);

  // Recovery salvage: the data home adopted a bound page instead of
  // discarding it. Audits that the frame is a live local cache page (not
  // free, not loaned) and counts the adoption.
  void NoteSalvagedAdoption(Pfdat* pfdat);
  uint64_t frames_salvaged() const { return frames_salvaged_; }

  // Invariant auditing: whether this local frame is currently loaned out
  // (must agree with the pfdat's loaned_out flag). Scans the per-client
  // buckets rather than trusting the pfdat's own loaned_to field, so corrupt
  // pfdat state cannot hide a disagreement.
  bool IsLoanedFrame(const Pfdat* pfdat) const;

  size_t free_frames() const { return free_list_.size(); }
  size_t loaned_frames() const { return loaned_count_; }
  uint64_t borrow_rpcs() const { return borrow_rpcs_; }

  // Low-water mark: below this many local free frames the allocator tries to
  // borrow for non-local-constrained requests (keeps local reserve to avoid
  // deadlock, section 3.2).
  static constexpr size_t kLocalReserveFrames = 32;

 private:
  base::Result<Pfdat*> BorrowFrom(Ctx& ctx, CellId memory_home);
  base::Result<Pfdat*> TakeLocalFree(Ctx& ctx);

  Cell* cell_;
  std::deque<Pfdat*> free_list_;  // Local free frames.
  // Borrowed frames not yet in use, bucketed by memory home: the AllocFrame
  // reuse probe pops the target home's bucket in O(1).
  std::unordered_map<CellId, std::deque<Pfdat*>> borrowed_free_;
  // Local frames loaned out, bucketed by borrower.
  std::unordered_map<CellId, std::unordered_set<Pfdat*>> loaned_;
  size_t loaned_count_ = 0;
  uint64_t borrow_rpcs_ = 0;
  uint64_t frames_salvaged_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_PAGE_ALLOCATOR_H_
