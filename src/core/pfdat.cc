#include "src/core/pfdat.h"

#include "src/base/log.h"

namespace hive {

Pfdat* PfdatTable::AddRegular(PhysAddr frame) {
  auto pfdat = std::make_unique<Pfdat>();
  pfdat->frame = frame;
  pfdat->extended = false;
  Pfdat* raw = pfdat.get();
  auto [it, inserted] = by_frame_.emplace(frame, std::move(pfdat));
  CHECK(inserted) << "duplicate pfdat for frame";
  (void)it;
  return raw;
}

Pfdat* PfdatTable::AddExtended(PhysAddr frame) {
  auto pfdat = std::make_unique<Pfdat>();
  pfdat->frame = frame;
  pfdat->extended = true;
  Pfdat* raw = pfdat.get();
  auto [it, inserted] = by_frame_.emplace(frame, std::move(pfdat));
  CHECK(inserted) << "extended pfdat collides with existing pfdat for frame";
  (void)it;
  return raw;
}

void PfdatTable::RemoveExtended(Pfdat* pfdat) {
  CHECK(pfdat->extended);
  if (pfdat->HasLogicalBinding()) {
    RemoveHash(pfdat);
  }
  by_frame_.erase(pfdat->frame);  // Destroys *pfdat.
}

Pfdat* PfdatTable::FindByFrame(PhysAddr frame) {
  auto it = by_frame_.find(frame);
  return it == by_frame_.end() ? nullptr : it->second.get();
}

Pfdat* PfdatTable::FindByLpid(const LogicalPageId& lpid) {
  auto it = by_lpid_.find(lpid);
  return it == by_lpid_.end() ? nullptr : it->second;
}

void PfdatTable::InsertHash(Pfdat* pfdat) {
  CHECK(pfdat->HasLogicalBinding());
  auto [it, inserted] = by_lpid_.emplace(pfdat->lpid, pfdat);
  CHECK(inserted) << "logical page already present in hash";
  (void)it;
}

void PfdatTable::RemoveHash(Pfdat* pfdat) {
  auto it = by_lpid_.find(pfdat->lpid);
  if (it != by_lpid_.end() && it->second == pfdat) {
    by_lpid_.erase(it);
  }
}

}  // namespace hive
