#include "src/core/pfdat.h"

#include <algorithm>

#include "src/base/log.h"

namespace hive {

Pfdat* PfdatTable::AllocateSlot() {
  if (!free_slots_.empty()) {
    Pfdat* slot = free_slots_.back();
    free_slots_.pop_back();
    *slot = Pfdat{};
    return slot;
  }
  if (slab_used_ == kSlabPfdats) {
    if (slab_cursor_ + 1 < slabs_.size()) {
      ++slab_cursor_;  // Recycle a slab retained across Clear().
    } else {
      slabs_.push_back(std::make_unique<Pfdat[]>(kSlabPfdats));
      slab_cursor_ = slabs_.size() - 1;
    }
    slab_used_ = 0;
  }
  Pfdat* slot = &slabs_[slab_cursor_][slab_used_++];
  *slot = Pfdat{};
  return slot;
}

void PfdatTable::ReleaseSlot(Pfdat* pfdat) {
  // Careful check: a second RemoveExtended on a recycled slot (a double
  // remove would push the slot onto the free list twice, later aliasing two
  // live pfdats) now trips RemoveExtended's CHECK instead.
  pfdat->extended = false;
  free_slots_.push_back(pfdat);
}

Pfdat* PfdatTable::FindRegular(PhysAddr frame) {
  if (dense_stride_ != 0) {
    if (frame < dense_base_) {
      return nullptr;
    }
    const uint64_t offset = frame - dense_base_;
    const uint64_t index = offset / dense_stride_;
    if (offset % dense_stride_ != 0 || index >= dense_regular_.size()) {
      return nullptr;
    }
    return dense_regular_[index];
  }
  auto it = std::lower_bound(
      regulars_.begin(), regulars_.end(), frame,
      [](const Pfdat* p, PhysAddr f) { return p->frame < f; });
  return (it != regulars_.end() && (*it)->frame == frame) ? *it : nullptr;
}

Pfdat* PfdatTable::AddRegular(PhysAddr frame) {
  CHECK(FindByFrame(frame) == nullptr) << "duplicate pfdat for frame";
  Pfdat* pfdat = AllocateSlot();
  pfdat->frame = frame;
  pfdat->extended = false;
  // Maintain the dense fault-path index while boot keeps a uniform stride.
  if (regulars_.empty()) {
    dense_base_ = frame;
    dense_stride_ = 0;
    dense_regular_.assign(1, pfdat);
  } else if (dense_stride_ == 0 && !dense_regular_.empty() && frame > dense_base_) {
    dense_stride_ = frame - dense_base_;
    dense_regular_.push_back(pfdat);
  } else if (dense_stride_ != 0 &&
             frame == dense_base_ + dense_stride_ * dense_regular_.size()) {
    dense_regular_.push_back(pfdat);
  } else {
    dense_regular_.clear();
    dense_stride_ = 0;
  }
  auto it = std::lower_bound(
      regulars_.begin(), regulars_.end(), frame,
      [](const Pfdat* p, PhysAddr f) { return p->frame < f; });
  regulars_.insert(it, pfdat);
  return pfdat;
}

Pfdat* PfdatTable::AddExtended(PhysAddr frame) {
  CHECK(FindRegular(frame) == nullptr)
      << "extended pfdat collides with existing pfdat for frame";
  Pfdat* pfdat = AllocateSlot();
  pfdat->frame = frame;
  pfdat->extended = true;
  auto [it, inserted] = extended_by_frame_.emplace(frame, pfdat);
  CHECK(inserted) << "extended pfdat collides with existing pfdat for frame";
  (void)it;
  return pfdat;
}

void PfdatTable::RemoveExtended(Pfdat* pfdat) {
  CHECK(pfdat->extended);
  if (pfdat->HasLogicalBinding()) {
    RemoveHash(pfdat);
  }
  extended_by_frame_.erase(pfdat->frame);
  ReleaseSlot(pfdat);  // Recycled; the slot stays owned by the arena.
}

Pfdat* PfdatTable::FindByFrame(PhysAddr frame) {
  if (Pfdat* regular = FindRegular(frame)) {
    return regular;
  }
  auto it = extended_by_frame_.find(frame);
  return it == extended_by_frame_.end() ? nullptr : it->second;
}

Pfdat* PfdatTable::FindByLpid(const LogicalPageId& lpid) {
  auto it = by_lpid_.find(lpid);
  return it == by_lpid_.end() ? nullptr : it->second;
}

void PfdatTable::InsertHash(Pfdat* pfdat) {
  CHECK(pfdat->HasLogicalBinding());
  auto [it, inserted] = by_lpid_.emplace(pfdat->lpid, pfdat);
  CHECK(inserted) << "logical page already present in hash";
  (void)it;
}

void PfdatTable::RemoveHash(Pfdat* pfdat) {
  auto it = by_lpid_.find(pfdat->lpid);
  if (it != by_lpid_.end() && it->second == pfdat) {
    by_lpid_.erase(it);
  }
}

}  // namespace hive
