#include "src/core/pfdat.h"

#include "src/base/log.h"

namespace hive {

Pfdat* PfdatTable::AllocateSlot() {
  if (!free_slots_.empty()) {
    Pfdat* slot = free_slots_.back();
    free_slots_.pop_back();
    *slot = Pfdat{};
    return slot;
  }
  if (slab_used_ == kSlabPfdats) {
    if (slab_cursor_ + 1 < slabs_.size()) {
      ++slab_cursor_;  // Recycle a slab retained across Clear().
    } else {
      slabs_.push_back(std::make_unique<Pfdat[]>(kSlabPfdats));
      slab_cursor_ = slabs_.size() - 1;
    }
    slab_used_ = 0;
  }
  Pfdat* slot = &slabs_[slab_cursor_][slab_used_++];
  *slot = Pfdat{};
  return slot;
}

void PfdatTable::ReleaseSlot(Pfdat* pfdat) {
  // Careful check: a second RemoveExtended on a recycled slot (a double
  // remove would push the slot onto the free list twice, later aliasing two
  // live pfdats) now trips RemoveExtended's CHECK instead.
  pfdat->extended = false;
  free_slots_.push_back(pfdat);
}

Pfdat* PfdatTable::AddRegular(PhysAddr frame) {
  Pfdat* pfdat = AllocateSlot();
  pfdat->frame = frame;
  pfdat->extended = false;
  auto [it, inserted] = by_frame_.emplace(frame, pfdat);
  CHECK(inserted) << "duplicate pfdat for frame";
  (void)it;
  return pfdat;
}

Pfdat* PfdatTable::AddExtended(PhysAddr frame) {
  Pfdat* pfdat = AllocateSlot();
  pfdat->frame = frame;
  pfdat->extended = true;
  auto [it, inserted] = by_frame_.emplace(frame, pfdat);
  CHECK(inserted) << "extended pfdat collides with existing pfdat for frame";
  (void)it;
  return pfdat;
}

void PfdatTable::RemoveExtended(Pfdat* pfdat) {
  CHECK(pfdat->extended);
  if (pfdat->HasLogicalBinding()) {
    RemoveHash(pfdat);
  }
  by_frame_.erase(pfdat->frame);
  ReleaseSlot(pfdat);  // Recycled; the slot stays owned by the arena.
}

Pfdat* PfdatTable::FindByFrame(PhysAddr frame) {
  auto it = by_frame_.find(frame);
  return it == by_frame_.end() ? nullptr : it->second;
}

Pfdat* PfdatTable::FindByLpid(const LogicalPageId& lpid) {
  auto it = by_lpid_.find(lpid);
  return it == by_lpid_.end() ? nullptr : it->second;
}

void PfdatTable::InsertHash(Pfdat* pfdat) {
  CHECK(pfdat->HasLogicalBinding());
  auto [it, inserted] = by_lpid_.emplace(pfdat->lpid, pfdat);
  CHECK(inserted) << "logical page already present in hash";
  (void)it;
}

void PfdatTable::RemoveHash(Pfdat* pfdat) {
  auto it = by_lpid_.find(pfdat->lpid);
  if (it != by_lpid_.end() && it->second == pfdat) {
    by_lpid_.erase(it);
  }
}

}  // namespace hive
