// A Hive cell: an independent kernel owning a range of nodes (paper section
// 3). Each cell manages the processors, memory and I/O devices on its nodes
// as if it were an independent operating system; cells cooperate to present
// the single-system image.

#ifndef HIVE_SRC_CORE_CELL_H_
#define HIVE_SRC_CORE_CELL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/context.h"
#include "src/core/costs.h"
#include "src/core/cow_tree.h"
#include "src/core/failure_detection.h"
#include "src/core/filesystem.h"
#include "src/core/firewall_manager.h"
#include "src/core/kernel_heap.h"
#include "src/core/page_allocator.h"
#include "src/core/pageout.h"
#include "src/core/pfdat.h"
#include "src/core/rpc.h"
#include "src/core/scheduler.h"
#include "src/core/swap.h"
#include "src/core/trace.h"
#include "src/core/types.h"
#include "src/core/wax.h"
#include "src/flash/machine.h"

namespace hive {

class HiveSystem;

enum class CellState {
  kBooting,
  kRunning,
  kPanicked,   // Software fault: cut off memory, halted.
  kDead,       // Hardware fault took the node(s) down.
  kRebooting,  // Undergoing diagnostics + reboot.
};

// Byzantine misbehavior knobs for the campaign's rogue-cell fault family
// (DESIGN.md section 9). A rogue cell stays kRunning but misbehaves along
// the enabled axes; survivors must detect and excise it via the hardened
// detection paths. Cleared on (re)boot.
struct RogueBehavior {
  bool active = false;
  bool clock_freeze = false;    // Stop incrementing the monitored clock word.
  bool clock_drift = false;     // Increment only every clock_drift_divisor-th tick.
  int clock_drift_divisor = 2;  // 2 => half rate: below stale threshold, caught by drift.
  bool rpc_silent = false;      // Drop every incoming RPC; votes time out.
  bool rpc_garbage = false;     // Scribble reply payloads of served requests.
  bool vote_contrarian = false; // Invert this cell's probe votes in agreement rounds.
  uint64_t garbage_seed = 0;    // Deterministic stream for reply scribbles.
};

// Per-cell VM statistics for the section 5.2 measurement.
struct VmStats {
  uint64_t faults = 0;          // Page faults entering the kernel fault path.
  uint64_t cache_hit_faults = 0;  // Faults satisfied from a page cache.
  uint64_t remote_faults = 0;   // ... that went to another cell.
  Time fault_ns = 0;            // Cumulative time spent in faults.
};

class Cell {
 public:
  // The cell owns nodes [first_node, first_node + num_nodes).
  Cell(HiveSystem* system, CellId id, int first_node, int num_nodes);
  ~Cell();

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  // Boots the kernel: carves the kernel heap out of the first node, protects
  // kernel memory with the firewall, builds the pfdat table for paged memory,
  // registers RPC handlers, starts the clock.
  void Boot();

  // --- Identity / geometry. ---
  CellId id() const { return id_; }
  HiveSystem* system() const { return system_; }
  flash::Machine& machine() const;
  const KernelCosts& costs() const;

  int first_node() const { return first_node_; }
  int num_nodes() const { return num_nodes_; }
  const std::vector<int>& cpus() const { return cpus_; }
  int FirstCpu() const { return cpus_.front(); }
  uint64_t CpuMask() const;  // Firewall bitmask of this cell's CPUs.

  PhysAddr mem_base() const { return mem_base_; }
  uint64_t mem_size() const { return mem_size_; }
  bool OwnsAddr(PhysAddr addr) const { return addr >= mem_base_ && addr < mem_base_ + mem_size_; }

  // --- State. ---
  CellState state() const { return state_; }
  // Boot incarnation: 1 after the first Boot(), bumped by every reboot.
  // Carried on outgoing RPCs so peers' replay caches can tell this kernel's
  // fresh sequence numbers from a crashed predecessor's (see RpcLayer).
  uint64_t incarnation() const { return incarnation_; }
  bool alive() const { return state_ == CellState::kRunning || state_ == CellState::kBooting; }
  bool in_recovery() const { return in_recovery_; }
  void set_in_recovery(bool v) { in_recovery_ = v; }

  // User-level execution suspension (agreement + recovery).
  Time user_suspended_until() const { return user_suspended_until_; }
  void SuspendUsersUntil(Time t);

  // Kernel panic (paper section 4.1): a bus error outside a careful section
  // or an internal consistency failure. Cuts off remote access to this cell's
  // memory (table 8.1 "memory cutoff") and halts its processors.
  void Panic(const std::string& reason);

  // Hardware death (node failure).
  void MarkDead();

  // Fresh boot after diagnostics (reintegration).
  void Reboot();

  // --- Clock (section 4.3 clock monitoring). ---
  PhysAddr clock_word_addr() const { return clock_word_addr_; }
  uint64_t ReadOwnClock() const;
  void StartClock();

  // --- Rogue (Byzantine) fault-injection state. ---
  const RogueBehavior& rogue() const { return rogue_; }
  bool rogue_active() const { return rogue_.active; }
  void SetRogueBehavior(const RogueBehavior& behavior);
  // Next word of the deterministic garbage stream used for reply scribbles.
  uint64_t NextRogueGarbage();

  // Publishes the remotely probed structures (a tagged pointer chain and a
  // tagged seqlock block) survivors walk to health-check this cell.
  // Idempotent, and allocated lazily -- NOT at Boot() -- so healthy runs keep
  // a byte-identical kernel heap layout.
  void PublishProbeStructures();
  PhysAddr chain_head_addr() const { return chain_head_addr_; }
  const std::vector<PhysAddr>& chain_node_addrs() const { return chain_node_addrs_; }
  PhysAddr seq_block_addr() const { return seq_block_addr_; }

  // --- Subsystems. ---
  KernelHeap& heap() { return *heap_; }
  RpcLayer& rpc() { return *rpc_; }
  PfdatTable& pfdats() { return pfdat_table_; }
  PageAllocator& allocator() { return *allocator_; }
  FileSystem& fs() { return *fs_; }
  CowManager& cow() { return *cow_; }
  Scheduler& sched() { return *sched_; }
  FirewallManager& firewall_manager() { return *fwm_; }
  FailureDetector& detector() { return *detector_; }
  PageoutDaemon& pageout() { return *pageout_; }
  SwapArea& swap() { return *swap_; }
  TraceBuffer& trace() { return trace_; }
  void Trace(TraceEvent event, uint64_t arg0 = 0, uint64_t arg1 = 0) {
    trace_.Record(machine().Now(), event, arg0, arg1);
  }

  WaxHints& wax_hints() { return wax_hints_; }
  VmStats& vm_stats() { return vm_stats_; }

  // Makes a kernel execution context on this cell's CPU `cpu_index` (index
  // into cpus(), not a global id).
  Ctx MakeCtx(int cpu_index = 0);

  // Charges the Hive multicellular bookkeeping tax on kernel entry (zero in
  // SMP baseline mode).
  void ChargeSyscallTax(Ctx& ctx);

  // Admission control (graceful degradation): true if a new request may fork
  // onto this cell, false if the ready queue or kernel heap has crossed its
  // HiveOptions watermark. A shed is traced (kAdmissionShed) and counted by
  // the SLO recorder; with watermarks unset (the default) always admits.
  bool AdmitRequest();

  std::string panic_reason() const { return panic_reason_; }

  // Number of user-visible pages (paged memory frames) this cell owns.
  uint64_t paged_frames() const { return paged_frames_; }

 private:
  void ClockTick();
  void RegisterMiscHandlers();

  HiveSystem* system_;
  CellId id_;
  int first_node_;
  int num_nodes_;
  std::vector<int> cpus_;
  PhysAddr mem_base_ = 0;
  uint64_t mem_size_ = 0;
  uint64_t paged_frames_ = 0;

  CellState state_ = CellState::kBooting;
  uint64_t incarnation_ = 0;
  bool in_recovery_ = false;
  Time user_suspended_until_ = 0;
  std::string panic_reason_;

  PhysAddr clock_word_addr_ = 0;
  flash::EventId clock_event_ = flash::kInvalidEventId;
  uint64_t clock_ticks_ = 0;

  RogueBehavior rogue_;
  uint64_t rogue_garbage_state_ = 0;
  PhysAddr chain_head_addr_ = 0;
  std::vector<PhysAddr> chain_node_addrs_;
  PhysAddr seq_block_addr_ = 0;

  std::unique_ptr<KernelHeap> heap_;
  std::unique_ptr<RpcLayer> rpc_;
  PfdatTable pfdat_table_;
  std::unique_ptr<PageAllocator> allocator_;
  std::unique_ptr<FileSystem> fs_;
  std::unique_ptr<CowManager> cow_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<FirewallManager> fwm_;
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<PageoutDaemon> pageout_;
  std::unique_ptr<SwapArea> swap_;
  TraceBuffer trace_;
  WaxHints wax_hints_;
  VmStats vm_stats_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_CELL_H_
