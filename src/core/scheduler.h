// Per-cell process scheduler. Each cell schedules processes onto its own
// CPUs with quantum-based time slicing; processes execute synchronously in
// simulation events, charging latency to their context.
//
// During failure recovery user-level execution is suspended (paper section
// 4.3): the scheduler re-queues run events until the cell resumes.

#ifndef HIVE_SRC_CORE_SCHEDULER_H_
#define HIVE_SRC_CORE_SCHEDULER_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/process.h"
#include "src/core/types.h"

namespace hive {

class Cell;

class Scheduler {
 public:
  explicit Scheduler(Cell* cell);
  ~Scheduler();  // Cancels pending run-slice events (they capture `this`).

  static constexpr Time kQuantum = 10 * kMillisecond;

  // Takes ownership and makes the process runnable.
  Process* AddProcess(std::unique_ptr<Process> proc);

  void MakeRunnable(Process* proc);

  // Called when a CPU may have work: schedules a run-slice event.
  void KickCpu(int cpu);
  void KickAll();

  Process* FindProcess(ProcId pid);

  // Kills a process (recovery / signal); releases its resources.
  void KillProcess(Ctx& ctx, Process* proc, const std::string& reason);

  // Process exit path (normal completion).
  void ExitProcess(Ctx& ctx, Process* proc, StepOutcome outcome);

  // All processes, including finished ones (kept for result inspection).
  std::vector<Process*> AllProcesses();
  size_t runnable() const { return ready_.size(); }
  // High-water mark of the ready queue since boot; the overload signal
  // admission control (Cell::AdmitRequest) reports alongside its shed counts.
  size_t max_runnable() const { return max_runnable_; }
  int64_t context_switches() const { return context_switches_; }
  Time cpu_busy_ns() const { return cpu_busy_ns_; }

 private:
  void RunSlice(int cpu);
  // Safe continuation slice (parallel core): re-runs `proc` on the same CPU
  // while its next steps are declared cell-local, bypassing the ready queue.
  void RunPinnedSlice(int cpu, Process* proc);
  // Schedules proc's next dispatch after a slice left it runnable at
  // `resume`: a pinned safe slice when it is the sole runnable process with
  // local steps ahead, else the ready-queue wake event.
  void ScheduleResume(int cpu, Process* proc, Time resume);
  // Snaps a dispatch time up to the slice grid (identity when the parallel
  // core is off). Real kernels dispatch on timer ticks; the grid is what
  // lines different cells' compute slices up into common parallel windows.
  Time AlignDispatch(Time when) const;

  Cell* cell_;
  std::deque<Process*> ready_;
  std::unordered_map<ProcId, std::unique_ptr<Process>> processes_;
  std::vector<bool> cpu_has_event_;  // Guards against duplicate run events.
  std::vector<uint64_t> cpu_event_id_;  // For cancellation at teardown.
  int64_t context_switches_ = 0;
  size_t max_runnable_ = 0;
  Time cpu_busy_ns_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_SCHEDULER_H_
