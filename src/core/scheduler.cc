#include "src/core/scheduler.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {

Scheduler::Scheduler(Cell* cell) : cell_(cell) {
  cpu_has_event_.resize(cell->cpus().size(), false);
  cpu_event_id_.resize(cell->cpus().size(), 0);
}

Scheduler::~Scheduler() {
  for (uint64_t id : cpu_event_id_) {
    if (id != 0) {
      cell_->machine().events().Cancel(id);
    }
  }
}

Process* Scheduler::AddProcess(std::unique_ptr<Process> proc) {
  Process* raw = proc.get();
  processes_[raw->pid()] = std::move(proc);
  MakeRunnable(raw);
  return raw;
}

Process* Scheduler::FindProcess(ProcId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void Scheduler::MakeRunnable(Process* proc) {
  if (proc->finished()) {
    return;
  }
  proc->set_state(ProcState::kReady);
  ready_.push_back(proc);
  if (ready_.size() > max_runnable_) {
    max_runnable_ = ready_.size();
  }
  KickAll();
}

void Scheduler::KickAll() {
  for (size_t i = 0; i < cell_->cpus().size(); ++i) {
    KickCpu(static_cast<int>(i));
  }
}

Time Scheduler::AlignDispatch(Time when) const {
  const Time grid = cell_->machine().slice_grid_ns();
  if (grid == 0) {
    return when;
  }
  // Strictly-next grid point, even when `when` is already aligned: dispatch
  // events are unsafe (they may touch the ready queue fed by remote wakeups),
  // so a safe event at an aligned time must push them past its own execution
  // window, never into it.
  return (when / grid + 1) * grid;
}

void Scheduler::KickCpu(int cpu_index) {
  if (!cell_->alive() || cpu_has_event_[static_cast<size_t>(cpu_index)] || ready_.empty()) {
    return;
  }
  const int cpu_id = cell_->cpus()[static_cast<size_t>(cpu_index)];
  flash::Machine& machine = cell_->machine();
  if (machine.cpu(cpu_id).halted) {
    return;
  }
  // A full dispatch may run any process step, so it is an unsafe event; the
  // grid keeps it on a window boundary (and satisfies the safe-event
  // scheduling contract when the kick comes from inside a window).
  const Time when = AlignDispatch(std::max({machine.Now(), machine.cpu(cpu_id).free_at,
                                            cell_->user_suspended_until()}));
  cpu_has_event_[static_cast<size_t>(cpu_index)] = true;
  cpu_event_id_[static_cast<size_t>(cpu_index)] = machine.events().ScheduleAtTagged(
      when, cell_->id(), /*safe=*/false, [this, cpu_index] { RunSlice(cpu_index); });
}

void Scheduler::RunSlice(int cpu_index) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kScheduler);
  cpu_has_event_[static_cast<size_t>(cpu_index)] = false;
  cpu_event_id_[static_cast<size_t>(cpu_index)] = 0;
  if (!cell_->alive()) {
    return;
  }
  flash::Machine& machine = cell_->machine();
  const int cpu_id = cell_->cpus()[static_cast<size_t>(cpu_index)];
  if (machine.cpu(cpu_id).halted) {
    return;
  }
  const Time now = machine.Now();
  if (now < cell_->user_suspended_until() || now < machine.cpu(cpu_id).free_at) {
    // Re-arm for when user execution resumes / the CPU frees up.
    KickCpu(cpu_index);
    return;
  }

  // Pop the next ready process (skipping any killed while queued).
  Process* proc = nullptr;
  while (!ready_.empty()) {
    Process* candidate = ready_.front();
    ready_.pop_front();
    if (!candidate->finished() && candidate->state() == ProcState::kReady) {
      proc = candidate;
      break;
    }
  }
  if (proc == nullptr) {
    return;
  }

  ++context_switches_;
  proc->set_state(ProcState::kRunning);
  Ctx ctx;
  ctx.cell = cell_;
  ctx.cpu = cpu_id;
  ctx.start = now;

  StepOutcome outcome = StepOutcome::kContinue;
  while (ctx.elapsed < kQuantum) {
    const Time before = ctx.elapsed;
    try {
      outcome = proc->behavior()->Step(ctx, *proc);
      // hive-lint: allow(R3): this catch implements the section 4.1 discipline itself: uncontained bus error => panic.
    } catch (const flash::BusError& e) {
      // A bus error during kernel execution outside a careful section means
      // this kernel is corrupt (paper section 4.1): panic.
      cell_->Panic(std::string("bus error during process execution: ") + e.what());
      return;
    }
    if (ctx.elapsed == before) {
      // Zero-cost steps would spin the quantum loop forever; charge a cycle's
      // worth of progress as a backstop.
      ctx.Charge(1000);
    }
    if (outcome != StepOutcome::kContinue || proc->finished() || !cell_->alive()) {
      break;
    }
  }

  machine.cpu(cpu_id).free_at = now + ctx.elapsed;
  cpu_busy_ns_ += ctx.elapsed;
  if (!cell_->alive()) {
    return;
  }

  switch (outcome) {
    case StepOutcome::kContinue:
      if (!proc->finished()) {
        // The slice occupies the CPU until now + elapsed; the process is not
        // runnable (anywhere) before then, or it could execute on two CPUs
        // in the same simulated instant.
        ScheduleResume(cpu_index, proc, now + ctx.elapsed);
      }
      break;
    case StepOutcome::kBlocked:
      if (proc->state() == ProcState::kRunning) {
        proc->set_state(ProcState::kBlocked);
      }
      // If the barrier already released us (we were the last arriver racing
      // with MakeRunnable), state is kReady and the process is queued.
      break;
    case StepOutcome::kDone:
    case StepOutcome::kFailed:
      ExitProcess(ctx, proc, outcome);
      break;
  }
  KickCpu(cpu_index);
}

void Scheduler::ScheduleResume(int cpu_index, Process* proc, Time resume) {
  flash::Machine& machine = cell_->machine();
  const bool grid_on = machine.slice_grid_ns() > 0;
  if (grid_on && ready_.empty() && proc->state() == ProcState::kRunning &&
      proc->behavior()->NextStepLocal()) {
    // Sole runnable process with pure-compute steps ahead: keep it pinned to
    // this CPU as a safe event. No ready-queue round trip, and -- because the
    // event is safe and unaligned -- consecutive compute quanta of different
    // cells run concurrently inside parallel windows.
    cpu_has_event_[static_cast<size_t>(cpu_index)] = true;
    cpu_event_id_[static_cast<size_t>(cpu_index)] = machine.events().ScheduleAtTagged(
        resume, cell_->id(), /*safe=*/true,
        [this, cpu_index, proc] { RunPinnedSlice(cpu_index, proc); });
    return;
  }
  // Captures (cell, pid), not (this, proc): a reboot-storm kill/rejoin cycle
  // replaces the scheduler and frees every process while wake events are
  // still in flight. Pids are system-global and never reused, so resolving
  // through the current scheduler either finds the same process or nothing.
  Cell* cell = cell_;
  const ProcId pid = proc->pid();
  auto wake = [cell, pid] {
    if (!cell->alive()) {
      return;
    }
    Scheduler& sched = cell->sched();
    Process* woken = sched.FindProcess(pid);
    if (woken != nullptr && !woken->finished() &&
        woken->state() == ProcState::kRunning) {
      sched.MakeRunnable(woken);
    }
  };
  if (grid_on) {
    // The wake only mutates this cell's ready queue and re-kicks its CPUs
    // (grid-aligned), so it is safe even though the full dispatch is not.
    machine.events().ScheduleAtTagged(resume, cell_->id(), /*safe=*/true,
                                      std::move(wake));
  } else {
    machine.events().ScheduleAt(resume, std::move(wake));
  }
}

void Scheduler::RunPinnedSlice(int cpu_index, Process* proc) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kScheduler);
  cpu_has_event_[static_cast<size_t>(cpu_index)] = false;
  cpu_event_id_[static_cast<size_t>(cpu_index)] = 0;
  if (!cell_->alive()) {
    return;
  }
  flash::Machine& machine = cell_->machine();
  const int cpu_id = cell_->cpus()[static_cast<size_t>(cpu_index)];
  if (machine.cpu(cpu_id).halted) {
    return;
  }
  if (proc->finished() || proc->state() != ProcState::kRunning) {
    // Killed or woken elsewhere between slices (recovery sweep): free the CPU
    // for whoever is ready.
    KickCpu(cpu_index);
    return;
  }
  const Time now = machine.Now();
  if (now < cell_->user_suspended_until() || now < machine.cpu(cpu_id).free_at) {
    // A suspension landed between slices; go back through the normal
    // (grid-aligned) dispatch path.
    MakeRunnable(proc);
    return;
  }

  ++context_switches_;
  Ctx ctx;
  ctx.cell = cell_;
  ctx.cpu = cpu_id;
  ctx.start = now;
  StepOutcome outcome = StepOutcome::kContinue;
  while (ctx.elapsed < kQuantum && proc->behavior()->NextStepLocal()) {
    const Time before = ctx.elapsed;
    outcome = proc->behavior()->Step(ctx, *proc);
    // The locality declaration is load-bearing for the parallel core: a
    // "local" step that blocks, exits, fails, or kills the cell would have
    // had cross-cell effects inside a parallel window. Fail loudly.
    CHECK(outcome == StepOutcome::kContinue && !proc->finished() && cell_->alive())
        << "step declared cell-local by " << proc->behavior()->name()
        << " had non-local effects";
    if (ctx.elapsed == before) {
      ctx.Charge(1000);  // Same zero-cost backstop as RunSlice.
    }
  }
  machine.cpu(cpu_id).free_at = now + ctx.elapsed;
  cpu_busy_ns_ += ctx.elapsed;
  ScheduleResume(cpu_index, proc, now + ctx.elapsed);
}

void Scheduler::ExitProcess(Ctx& ctx, Process* proc, StepOutcome outcome) {
  ctx.Charge(cell_->costs().exit_ns);
  // Close files (write-behind on locally-homed dirty data).
  for (FileHandle handle : proc->OpenFiles()) {
    cell_->fs().Close(ctx, handle);
  }
  proc->address_space().Teardown(ctx);
  if (proc->cow_leaf() != 0) {
    cell_->cow().FreeNode(ctx, proc->cow_leaf());
    proc->set_cow_leaf(0);
  }
  proc->set_state(outcome == StepOutcome::kDone ? ProcState::kExited : ProcState::kKilled);
  if (outcome == StepOutcome::kFailed && proc->exit_reason.empty()) {
    proc->exit_reason = "behavior reported failure";
  }
  proc->finished_at = ctx.VirtualNow();
  // The exit takes effect when the slice's work completes, not at the event's
  // start time; waiters wake at the logically correct instant.
  // Captures the cell, not `this`: the notify may outlive this scheduler if a
  // reboot lands between the exit and the event (the cell object is stable).
  const ProcId pid = proc->pid();
  Cell* cell = cell_;
  cell_->machine().events().ScheduleAt(ctx.VirtualNow(), [cell, pid] {
    cell->system()->NotifyExit(pid);
  });
}

void Scheduler::KillProcess(Ctx& ctx, Process* proc, const std::string& reason) {
  if (proc->finished()) {
    return;
  }
  if (proc->blocked_on() != nullptr) {
    proc->blocked_on()->RemoveParty(proc);
    proc->set_blocked_on(nullptr);
  }
  for (FileHandle handle : proc->OpenFiles()) {
    // No sync on a kill path; just drop references.
    (void)handle;
  }
  proc->address_space().Teardown(ctx);
  if (proc->cow_leaf() != 0) {
    cell_->cow().FreeNode(ctx, proc->cow_leaf());
    proc->set_cow_leaf(0);
  }
  proc->set_state(ProcState::kKilled);
  proc->exit_reason = reason;
  proc->finished_at = ctx.VirtualNow();
  cell_->Trace(TraceEvent::kProcessKilled, static_cast<uint64_t>(proc->pid()));
  cell_->system()->NotifyExit(proc->pid());
}

std::vector<Process*> Scheduler::AllProcesses() {
  std::vector<Process*> all;
  all.reserve(processes_.size());
  // hive-lint: allow(R10): collection loop only; the list is sorted by pid below.
  for (auto& [pid, proc] : processes_) {
    all.push_back(proc.get());
  }
  // Pid order, not hash order: callers iterate this list with side effects
  // (recovery kill sweeps), so the order must be reproducible (lint R10).
  std::sort(all.begin(), all.end(),
            [](const Process* a, const Process* b) { return a->pid() < b->pid(); });
  return all;
}

}  // namespace hive
