#include "src/core/scheduler.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/cow_tree.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {

Scheduler::Scheduler(Cell* cell) : cell_(cell) {
  cpu_has_event_.resize(cell->cpus().size(), false);
  cpu_event_id_.resize(cell->cpus().size(), 0);
}

Scheduler::~Scheduler() {
  for (uint64_t id : cpu_event_id_) {
    if (id != 0) {
      cell_->machine().events().Cancel(id);
    }
  }
}

Process* Scheduler::AddProcess(std::unique_ptr<Process> proc) {
  Process* raw = proc.get();
  processes_[raw->pid()] = std::move(proc);
  MakeRunnable(raw);
  return raw;
}

Process* Scheduler::FindProcess(ProcId pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void Scheduler::MakeRunnable(Process* proc) {
  if (proc->finished()) {
    return;
  }
  proc->set_state(ProcState::kReady);
  ready_.push_back(proc);
  KickAll();
}

void Scheduler::KickAll() {
  for (size_t i = 0; i < cell_->cpus().size(); ++i) {
    KickCpu(static_cast<int>(i));
  }
}

void Scheduler::KickCpu(int cpu_index) {
  if (!cell_->alive() || cpu_has_event_[static_cast<size_t>(cpu_index)] || ready_.empty()) {
    return;
  }
  const int cpu_id = cell_->cpus()[static_cast<size_t>(cpu_index)];
  flash::Machine& machine = cell_->machine();
  if (machine.cpu(cpu_id).halted) {
    return;
  }
  const Time when = std::max({machine.Now(), machine.cpu(cpu_id).free_at,
                              cell_->user_suspended_until()});
  cpu_has_event_[static_cast<size_t>(cpu_index)] = true;
  cpu_event_id_[static_cast<size_t>(cpu_index)] =
      machine.events().ScheduleAt(when, [this, cpu_index] { RunSlice(cpu_index); });
}

void Scheduler::RunSlice(int cpu_index) {
  cpu_has_event_[static_cast<size_t>(cpu_index)] = false;
  cpu_event_id_[static_cast<size_t>(cpu_index)] = 0;
  if (!cell_->alive()) {
    return;
  }
  flash::Machine& machine = cell_->machine();
  const int cpu_id = cell_->cpus()[static_cast<size_t>(cpu_index)];
  if (machine.cpu(cpu_id).halted) {
    return;
  }
  const Time now = machine.Now();
  if (now < cell_->user_suspended_until() || now < machine.cpu(cpu_id).free_at) {
    // Re-arm for when user execution resumes / the CPU frees up.
    KickCpu(cpu_index);
    return;
  }

  // Pop the next ready process (skipping any killed while queued).
  Process* proc = nullptr;
  while (!ready_.empty()) {
    Process* candidate = ready_.front();
    ready_.pop_front();
    if (!candidate->finished() && candidate->state() == ProcState::kReady) {
      proc = candidate;
      break;
    }
  }
  if (proc == nullptr) {
    return;
  }

  ++context_switches_;
  proc->set_state(ProcState::kRunning);
  Ctx ctx;
  ctx.cell = cell_;
  ctx.cpu = cpu_id;
  ctx.start = now;

  StepOutcome outcome = StepOutcome::kContinue;
  while (ctx.elapsed < kQuantum) {
    const Time before = ctx.elapsed;
    try {
      outcome = proc->behavior()->Step(ctx, *proc);
      // hive-lint: allow(R3): this catch implements the section 4.1 discipline itself: uncontained bus error => panic.
    } catch (const flash::BusError& e) {
      // A bus error during kernel execution outside a careful section means
      // this kernel is corrupt (paper section 4.1): panic.
      cell_->Panic(std::string("bus error during process execution: ") + e.what());
      return;
    }
    if (ctx.elapsed == before) {
      // Zero-cost steps would spin the quantum loop forever; charge a cycle's
      // worth of progress as a backstop.
      ctx.Charge(1000);
    }
    if (outcome != StepOutcome::kContinue || proc->finished() || !cell_->alive()) {
      break;
    }
  }

  machine.cpu(cpu_id).free_at = now + ctx.elapsed;
  cpu_busy_ns_ += ctx.elapsed;
  if (!cell_->alive()) {
    return;
  }

  switch (outcome) {
    case StepOutcome::kContinue:
      if (!proc->finished()) {
        // The slice occupies the CPU until now + elapsed; the process is not
        // runnable (anywhere) before then, or it could execute on two CPUs
        // in the same simulated instant.
        machine.events().ScheduleAt(now + ctx.elapsed, [this, proc] {
          if (!proc->finished() && proc->state() == ProcState::kRunning) {
            MakeRunnable(proc);
          }
        });
      }
      break;
    case StepOutcome::kBlocked:
      if (proc->state() == ProcState::kRunning) {
        proc->set_state(ProcState::kBlocked);
      }
      // If the barrier already released us (we were the last arriver racing
      // with MakeRunnable), state is kReady and the process is queued.
      break;
    case StepOutcome::kDone:
    case StepOutcome::kFailed:
      ExitProcess(ctx, proc, outcome);
      break;
  }
  KickCpu(cpu_index);
}

void Scheduler::ExitProcess(Ctx& ctx, Process* proc, StepOutcome outcome) {
  ctx.Charge(cell_->costs().exit_ns);
  // Close files (write-behind on locally-homed dirty data).
  for (FileHandle handle : proc->OpenFiles()) {
    cell_->fs().Close(ctx, handle);
  }
  proc->address_space().Teardown(ctx);
  if (proc->cow_leaf() != 0) {
    cell_->cow().FreeNode(ctx, proc->cow_leaf());
    proc->set_cow_leaf(0);
  }
  proc->set_state(outcome == StepOutcome::kDone ? ProcState::kExited : ProcState::kKilled);
  if (outcome == StepOutcome::kFailed && proc->exit_reason.empty()) {
    proc->exit_reason = "behavior reported failure";
  }
  proc->finished_at = ctx.VirtualNow();
  // The exit takes effect when the slice's work completes, not at the event's
  // start time; waiters wake at the logically correct instant.
  const ProcId pid = proc->pid();
  cell_->machine().events().ScheduleAt(ctx.VirtualNow(), [this, pid] {
    cell_->system()->NotifyExit(pid);
  });
}

void Scheduler::KillProcess(Ctx& ctx, Process* proc, const std::string& reason) {
  if (proc->finished()) {
    return;
  }
  if (proc->blocked_on() != nullptr) {
    proc->blocked_on()->RemoveParty(proc);
    proc->set_blocked_on(nullptr);
  }
  for (FileHandle handle : proc->OpenFiles()) {
    // No sync on a kill path; just drop references.
    (void)handle;
  }
  proc->address_space().Teardown(ctx);
  if (proc->cow_leaf() != 0) {
    cell_->cow().FreeNode(ctx, proc->cow_leaf());
    proc->set_cow_leaf(0);
  }
  proc->set_state(ProcState::kKilled);
  proc->exit_reason = reason;
  proc->finished_at = ctx.VirtualNow();
  cell_->Trace(TraceEvent::kProcessKilled, static_cast<uint64_t>(proc->pid()));
  cell_->system()->NotifyExit(proc->pid());
}

std::vector<Process*> Scheduler::AllProcesses() {
  std::vector<Process*> all;
  all.reserve(processes_.size());
  // hive-lint: allow(R10): collection loop only; the list is sorted by pid below.
  for (auto& [pid, proc] : processes_) {
    all.push_back(proc.get());
  }
  // Pid order, not hash order: callers iterate this list with side effects
  // (recovery kill sweeps), so the order must be reproducible (lint R10).
  std::sort(all.begin(), all.end(),
            [](const Process* a, const Process* b) { return a->pid() < b->pid(); });
  return all;
}

}  // namespace hive
