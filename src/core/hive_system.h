// HiveSystem boots and coordinates the set of cells on one machine, and
// provides the pieces of the single-system image that live above individual
// kernels: the global file name space, global process ids, remote fork, the
// distributed agreement + recovery machinery, and Wax.
//
// Booted with one cell and smp_mode = true, the same code acts as the
// shared-everything SMP OS baseline of the paper's evaluation (IRIX stand-in):
// no firewall checking, no clock monitoring, no multicellular tax.

#ifndef HIVE_SRC_CORE_HIVE_SYSTEM_H_
#define HIVE_SRC_CORE_HIVE_SYSTEM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/agreement.h"
#include "src/core/cell.h"
#include "src/core/costs.h"
#include "src/core/recovery.h"
#include "src/core/slo.h"
#include "src/core/types.h"
#include "src/core/vnode.h"
#include "src/core/wax.h"
#include "src/flash/machine.h"

namespace hive {

struct HiveOptions {
  int num_cells = 4;
  bool smp_mode = false;  // Single-kernel baseline (must have num_cells == 1).
  AgreementMode agreement_mode = AgreementMode::kOracle;
  FirewallPolicy firewall_policy = FirewallPolicy::kBitVector;
  // CC-NUMA placement (paper section 5.5): a data home caches pages faulted
  // by a remote client in frames borrowed from the client's own memory, so
  // the client's accesses stay node-local. The frame is simultaneously
  // loaned out and imported back through the pre-existing pfdat.
  bool numa_placement = false;
  bool start_wax = true;
  bool auto_reintegrate = false;
  // Page salvage (off by default; preemptive discard is the paper's
  // behaviour): during recovery's discard walk, pages provably untouched by
  // the failed cell -- no hardware write permission at failure time, or a
  // matching content checksum recorded at the last checked write -- are kept
  // instead of discarded.
  bool salvage_pages = false;
  // Salvage proof verification. Turning this off (while salvage_pages is on)
  // is the seeded --bug=salvage_unchecked fixture: salvage adopts every
  // candidate without recomputing its checksum, so a wild-written page can be
  // adopted corrupt and the no-corrupt-adoption oracle must trip.
  bool salvage_verify = true;
  // Live rejoin (off by default; reintegration is otherwise a quiet reboot):
  // a reintegrated cell re-enters the RPC transport and the frame economy
  // under load -- null-pings every survivor under its new incarnation epoch
  // and re-borrows/returns a frame batch -- before it counts as converged.
  bool live_rejoin = false;
  // Debug-mode audit: after every recovery round, cross-check firewall
  // vectors against kernel bookkeeping (see invariant_checker.h).
  bool audit_invariants = true;
  // Admission-control watermarks (graceful degradation, 0 = unlimited): a
  // cell sheds new requests -- traced as kAdmissionShed and counted against
  // availability by the SLO recorder -- once its ready queue or kernel heap
  // crosses the watermark, instead of queueing until requests hang.
  size_t admit_runq_watermark = 0;
  uint64_t admit_heap_watermark_bytes = 0;
  KernelCosts costs;
};

class HiveSystem {
 public:
  HiveSystem(flash::Machine* machine, const HiveOptions& options);
  ~HiveSystem();

  HiveSystem(const HiveSystem&) = delete;
  HiveSystem& operator=(const HiveSystem&) = delete;

  // Boots all cells, starts clocks and Wax.
  void Boot();

  // --- Topology. ---
  flash::Machine& machine() { return *machine_; }
  const HiveOptions& options() const { return options_; }
  const KernelCosts& costs() const { return options_.costs; }
  bool smp_mode() const { return options_.smp_mode; }

  int num_cells() const { return static_cast<int>(cells_.size()); }
  Cell& cell(CellId id) { return *cells_[static_cast<size_t>(id)]; }
  CellId CellOfNode(int node) const;
  CellId CellOfCpu(int cpu) const;
  CellId CellOfAddr(PhysAddr addr) const;
  std::vector<CellId> LiveCells() const;
  // Kernel up AND its hardware alive (a freshly failed node may not yet be
  // reflected in the cell state).
  bool CellReachable(CellId cell_id) const;

  // --- Global file name space. ---
  base::Result<FileId> LookupPath(const std::string& path) const;
  void RegisterPath(const std::string& path, FileId id);
  void UnregisterPath(const std::string& path);
  // Atomic rename within the globally coherent name space.
  base::Status RenamePath(const std::string& from, const std::string& to);
  // All registered paths with the given prefix (directory listing).
  std::vector<std::string> ListPaths(const std::string& prefix) const;

  // --- Global process management (single-system image). ---
  ProcId NextPid() { return next_pid_++; }
  int64_t NextTaskGroup() { return next_task_group_++; }
  void NoteProcessCell(ProcId pid, CellId cell_id) { pid_to_cell_[pid] = cell_id; }
  CellId FindProcessCell(ProcId pid) const;

  // Task groups: which cells host members (drives the recovery kill policy).
  void NoteGroupCell(int64_t group, CellId cell_id) {
    group_cells_[group] |= 1ull << cell_id;
  }
  const std::vector<ProcId>& GroupMembers(int64_t group) {
    return group_members_[group];
  }

  // --- Distributed process groups and signal delivery (paper section 3.3,
  // part of the implemented single-system image). ---

  // Delivers a fatal signal to one process, wherever it runs (cross-cell
  // delivery goes through the kKillProc RPC).
  base::Status Kill(Ctx& ctx, ProcId pid);

  // Signals every member of a process group across all cells. Returns the
  // number of processes terminated.
  int SignalGroup(Ctx& ctx, int64_t group);
  uint64_t GroupCells(int64_t group) const {
    auto it = group_cells_.find(group);
    return it == group_cells_.end() ? 0 : it->second;
  }

  // A failed cell passed diagnostics and rebooted: future failures of it are
  // detectable again, and every live transport drops its stale per-peer
  // state (the fresh kernel restarts RPC sequence numbers, so old replay
  // cache entries must not suppress its new calls).
  void NoteCellReintegrated(CellId cell_id);

  // True once agreement confirmed this cell failed (detectors stop watching
  // it; a silently-dead cell is still watched until confirmed).
  bool CellConfirmedFailed(CellId cell_id) const {
    return confirmed_failed_.count(cell_id) > 0;
  }

  // --- wait()/exit() plumbing (blocking waits instead of polling). ---

  // True if the process exited, was killed, or went down with its cell.
  bool ProcessFinished(ProcId pid);
  // Parks `waiter` until `child` finishes. Returns false if the child is
  // already finished (no parking needed).
  bool AddExitWaiter(ProcId child, Process* waiter);
  // Called by the scheduler on every process exit/kill.
  void NotifyExit(ProcId pid);
  // Recovery: waiters on processes that died with their cell are woken.
  void WakeOrphanedWaiters();

  // Forks a process onto `target` (local or remote; remote forks go through
  // the queued kForkRemote cost path). When `parent` is given the fork
  // follows UNIX semantics: the COW tree leaf splits (possibly across cells,
  // paper section 5.3) and the address map is duplicated. Returns the pid.
  base::Result<ProcId> Fork(Ctx& ctx, CellId target, std::unique_ptr<Behavior> behavior,
                            int64_t task_group = -1, Process* parent = nullptr);

  // Migrates a sequential process to another cell for load balancing (paper
  // section 3.2): a new component on `target` inherits the address map and
  // COW-tree access of the original (which is torn down), and the behaviour
  // resumes exactly where it stopped. The migrated process keeps a residual
  // dependency on the origin cell for anonymous pages created there. Returns
  // the new pid.
  base::Result<ProcId> Migrate(Ctx& ctx, ProcId pid, CellId target);

  // --- Failure handling. ---
  Agreement& agreement() { return *agreement_; }
  RecoveryManager& recovery() { return *recovery_; }
  Wax& wax() { return *wax_; }

  // --- SLO accounting (hive_serve). ---
  // The recorder is owned by the harness; when attached, cell lifecycle and
  // recovery hooks feed availability windows into it and admission control
  // reports sheds. Null (the default) disables all SLO accounting.
  void set_slo_recorder(SloRecorder* slo) { slo_ = slo; }
  SloRecorder* slo_recorder() const { return slo_; }

  // Alert broadcast: a hint failed on `accuser`. Suspends user execution,
  // runs agreement, and if confirmed runs recovery. Called from detection
  // paths; safe to call redundantly.
  void HandleAlert(Ctx& ctx, CellId accuser, CellId suspect, HintReason reason);

  // True while an agreement/recovery episode is processing `suspect`; used
  // to de-duplicate hints from many cells.
  bool AlertInProgress() const { return alert_in_progress_; }

  // --- Experiment support. ---
  // Runs the event loop until all of `pids` have finished or `deadline` hits.
  // Returns true if all finished.
  bool RunUntilDone(const std::vector<ProcId>& pids, Time deadline);

  // Total CPU-seconds of user work, summed over cells.
  Time TotalCpuBusy() const;

 private:
  flash::Machine* machine_;
  HiveOptions options_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<CellId> node_to_cell_;

  std::unordered_map<std::string, FileId> name_space_;
  std::unordered_map<ProcId, CellId> pid_to_cell_;
  std::unordered_map<int64_t, uint64_t> group_cells_;
  std::unordered_map<int64_t, std::vector<ProcId>> group_members_;
  std::unordered_set<CellId> confirmed_failed_;
  std::unordered_map<ProcId, std::vector<Process*>> exit_waiters_;
  ProcId next_pid_ = 1;
  int64_t next_task_group_ = 1;

  std::unique_ptr<Agreement> agreement_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<Wax> wax_;
  SloRecorder* slo_ = nullptr;
  bool alert_in_progress_ = false;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_HIVE_SYSTEM_H_
