#include "src/core/trace.h"

#include <sstream>

namespace hive {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kBoot:
      return "boot";
    case TraceEvent::kPanic:
      return "panic";
    case TraceEvent::kMarkedDead:
      return "marked-dead";
    case TraceEvent::kReboot:
      return "reboot";
    case TraceEvent::kHintRaised:
      return "hint-raised";
    case TraceEvent::kEnterRecovery:
      return "enter-recovery";
    case TraceEvent::kExitRecovery:
      return "exit-recovery";
    case TraceEvent::kPageDiscarded:
      return "page-discarded";
    case TraceEvent::kRpcTimeout:
      return "rpc-timeout";
    case TraceEvent::kSwapOut:
      return "swap-out";
    case TraceEvent::kSwapIn:
      return "swap-in";
    case TraceEvent::kPageMigrated:
      return "page-migrated";
    case TraceEvent::kProcessKilled:
      return "process-killed";
    case TraceEvent::kInvariantMismatch:
      return "invariant-mismatch";
    case TraceEvent::kRpcRetry:
      return "rpc-retry";
    case TraceEvent::kRpcDuplicateSuppressed:
      return "rpc-duplicate-suppressed";
    case TraceEvent::kPeerQuarantined:
      return "peer-quarantined";
    case TraceEvent::kPeerUnquarantined:
      return "peer-unquarantined";
    case TraceEvent::kVoteCast:
      return "vote-cast";
    case TraceEvent::kCellExcised:
      return "cell-excised";
    case TraceEvent::kPageSalvaged:
      return "page-salvaged";
    case TraceEvent::kSalvageRejected:
      return "salvage-rejected";
    case TraceEvent::kReintegrationStart:
      return "reintegration-start";
    case TraceEvent::kReintegrationDone:
      return "reintegration-done";
    case TraceEvent::kAdmissionShed:
      return "admission-shed";
  }
  return "?";
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  if (next_ <= kCapacity) {
    // Ring has not wrapped: the retained events are a single prefix span.
    out.assign(ring_.begin(), ring_.begin() + next_);
    return out;
  }
  // Wrapped: two contiguous spans, oldest-first, no per-element modulo.
  const uint64_t head = next_ & (kCapacity - 1);
  out.reserve(kCapacity);
  out.insert(out.end(), ring_.begin() + head, ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + head);
  return out;
}

int TraceBuffer::Count(TraceEvent event) const {
  // Retained events occupy a dense region of the ring; order is irrelevant
  // for counting, so scan the occupied slots linearly.
  const uint64_t retained = next_ < kCapacity ? next_ : kCapacity;
  int count = 0;
  for (uint64_t i = 0; i < retained; ++i) {
    if (ring_[i].event == event) {
      ++count;
    }
  }
  return count;
}

std::string TraceBuffer::Render(int max_lines) const {
  std::ostringstream out;
  const std::vector<TraceRecord> records = Snapshot();
  const size_t start =
      records.size() > static_cast<size_t>(max_lines) ? records.size() - max_lines : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const TraceRecord& record = records[i];
    out << "  t=" << record.when / 1000 << "us " << TraceEventName(record.event);
    if (record.arg0 != 0 || record.arg1 != 0) {
      out << " arg0=0x" << std::hex << record.arg0;
      if (record.arg1 != 0) {
        out << " arg1=0x" << record.arg1;
      }
      out << std::dec;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hive
