#include "src/core/trace.h"

#include <sstream>

namespace hive {

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kBoot:
      return "boot";
    case TraceEvent::kPanic:
      return "panic";
    case TraceEvent::kMarkedDead:
      return "marked-dead";
    case TraceEvent::kReboot:
      return "reboot";
    case TraceEvent::kHintRaised:
      return "hint-raised";
    case TraceEvent::kEnterRecovery:
      return "enter-recovery";
    case TraceEvent::kExitRecovery:
      return "exit-recovery";
    case TraceEvent::kPageDiscarded:
      return "page-discarded";
    case TraceEvent::kRpcTimeout:
      return "rpc-timeout";
    case TraceEvent::kSwapOut:
      return "swap-out";
    case TraceEvent::kSwapIn:
      return "swap-in";
    case TraceEvent::kPageMigrated:
      return "page-migrated";
    case TraceEvent::kProcessKilled:
      return "process-killed";
    case TraceEvent::kInvariantMismatch:
      return "invariant-mismatch";
    case TraceEvent::kRpcRetry:
      return "rpc-retry";
    case TraceEvent::kRpcDuplicateSuppressed:
      return "rpc-duplicate-suppressed";
    case TraceEvent::kPeerQuarantined:
      return "peer-quarantined";
    case TraceEvent::kPeerUnquarantined:
      return "peer-unquarantined";
  }
  return "?";
}

std::vector<TraceRecord> TraceBuffer::Snapshot() const {
  std::vector<TraceRecord> out;
  const uint64_t count = next_ < kCapacity ? next_ : kCapacity;
  const uint64_t start = next_ - count;
  out.reserve(count);
  for (uint64_t i = start; i < next_; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

int TraceBuffer::Count(TraceEvent event) const {
  int count = 0;
  const uint64_t retained = next_ < kCapacity ? next_ : kCapacity;
  for (uint64_t i = next_ - retained; i < next_; ++i) {
    if (ring_[i % kCapacity].event == event) {
      ++count;
    }
  }
  return count;
}

std::string TraceBuffer::Render(int max_lines) const {
  std::ostringstream out;
  const std::vector<TraceRecord> records = Snapshot();
  const size_t start =
      records.size() > static_cast<size_t>(max_lines) ? records.size() - max_lines : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const TraceRecord& record = records[i];
    out << "  t=" << record.when / 1000 << "us " << TraceEventName(record.event);
    if (record.arg0 != 0 || record.arg1 != 0) {
      out << " arg0=0x" << std::hex << record.arg0;
      if (record.arg1 != 0) {
        out << " arg1=0x" << record.arg1;
      }
      out << std::dec;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hive
