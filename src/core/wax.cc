#include "src/core/wax.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/core/rpc.h"

namespace hive {

void Wax::Start(Time when) {
  ++incarnation_;
  running_ = true;
  LOG(kDebug) << "wax incarnation " << incarnation_ << " starting at t=" << when;
  const Time now = system_->machine().Now();
  system_->machine().events().ScheduleAt(std::max(when, now), [this] {
    if (running_) {
      Scan();
    }
  });
}

void Wax::OnCellFailure() {
  if (!running_) {
    return;
  }
  // Wax uses resources from all cells: its pages are discarded and it exits
  // whenever any cell fails. No attempt is made to recover its internal data
  // structures (paper section 3.2).
  running_ = false;
  LOG(kDebug) << "wax incarnation " << incarnation_ << " exits (cell failure)";
}

void Wax::Restart(Time when) { Start(when); }

void Wax::ScheduleScan() {
  system_->machine().events().ScheduleAfter(kScanPeriod, [this] {
    if (running_) {
      Scan();
    }
  });
}

void Wax::Scan() {
  ++scans_;
  const std::vector<CellId> live = system_->LiveCells();
  if (live.empty()) {
    running_ = false;
    return;
  }

  // The Wax threads on each cell read system state through shared memory and
  // synchronize with ordinary locks; the global view costs no RPCs.
  CellId richest = kInvalidCell;
  size_t most_free = 0;
  CellId least_loaded = kInvalidCell;
  size_t lowest_load = ~0ull;
  for (CellId id : live) {
    Cell& cell = system_->cell(id);
    const size_t free = cell.allocator().free_frames();
    if (richest == kInvalidCell || free > most_free) {
      richest = id;
      most_free = free;
    }
    const size_t load = cell.sched().runnable();
    if (least_loaded == kInvalidCell || load < lowest_load) {
      least_loaded = id;
      lowest_load = load;
    }
  }

  // Push hints. Each cell sanity-checks the values (a corrupt Wax can hurt
  // performance but not correctness).
  Cell& home = system_->cell(live.front());
  Ctx ctx = home.MakeCtx();
  for (CellId id : live) {
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(richest);
    args.w[1] = static_cast<uint64_t>(least_loaded);
    RpcReply reply;
    (void)home.rpc().Call(ctx, id, MsgType::kWaxHint, args, &reply);
    if (!running_) {
      return;  // A timeout mid-scan triggered failure handling.
    }
  }
  ScheduleScan();
}

}  // namespace hive
