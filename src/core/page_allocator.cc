#include "src/core/page_allocator.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {
namespace {

// Local allocation path cost (free list pop + bookkeeping).
constexpr Time kLocalAllocNs = 800;
// Frames requested per borrow RPC (paper 5.4: "asking for a set of pages").
constexpr int kBorrowBatch = 4;

}  // namespace

PageAllocator::PageAllocator(Cell* cell) : cell_(cell) {}

void PageAllocator::AddBootFrame(Pfdat* pfdat) { free_list_.push_back(pfdat); }

base::Result<Pfdat*> PageAllocator::TakeLocalFree(Ctx& ctx) {
  if (free_list_.empty()) {
    return base::OutOfMemory();
  }
  ctx.Charge(kLocalAllocNs);
  Pfdat* pfdat = free_list_.front();
  free_list_.pop_front();
  pfdat->refcount = 1;
  pfdat->dirty = false;
  pfdat->lpid = LogicalPageId{};
  return pfdat;
}

base::Result<Pfdat*> PageAllocator::AllocFrame(Ctx& ctx, const AllocConstraints& constraints) {
  const CellId self = cell_->id();
  const bool local_ok = (constraints.acceptable_cells & (1ull << self)) != 0;

  if (constraints.kernel_internal) {
    // Kernel-internal frames must be local: the firewall does not defend
    // against wild writes by the memory home (paper 5.4).
    CHECK(local_ok);
    return TakeLocalFree(ctx);
  }

  // Decide whether to go remote: an explicit remote preference, or local
  // memory pressure with remote cells acceptable.
  CellId remote_target = kInvalidCell;
  if (constraints.preferred_cell != kInvalidCell && constraints.preferred_cell != self) {
    remote_target = constraints.preferred_cell;
  } else if (free_list_.size() <= kLocalReserveFrames) {
    // Under pressure: consult the Wax hint, fall back to any acceptable cell.
    const WaxHints& hints = cell_->wax_hints();
    if (hints.valid && hints.preferred_borrow_target != kInvalidCell &&
        hints.preferred_borrow_target != self) {
      remote_target = hints.preferred_borrow_target;
    } else {
      for (CellId c = 0; c < cell_->system()->num_cells(); ++c) {
        if (c != self && (constraints.acceptable_cells & (1ull << c)) != 0 &&
            cell_->system()->cell(c).alive()) {
          remote_target = c;
          break;
        }
      }
    }
  }

  if (remote_target != kInvalidCell &&
      (constraints.acceptable_cells & (1ull << remote_target)) != 0) {
    // Use a previously borrowed free frame from that home if available:
    // an O(1) bucket probe instead of a scan over every borrowed frame.
    auto bucket_it = borrowed_free_.find(remote_target);
    if (bucket_it != borrowed_free_.end() && !bucket_it->second.empty()) {
      Pfdat* pfdat = bucket_it->second.front();
      bucket_it->second.pop_front();
      if (bucket_it->second.empty()) {
        borrowed_free_.erase(bucket_it);
      }
      pfdat->refcount = 1;
      ctx.Charge(kLocalAllocNs);
      return pfdat;
    }
    auto borrowed = BorrowFrom(ctx, remote_target);
    if (borrowed.ok()) {
      return borrowed;
    }
    // Borrowing failed (home dead / out of memory): fall through to local.
  }

  if (!local_ok) {
    return base::ResourceExhausted();
  }
  return TakeLocalFree(ctx);
}

base::Result<Pfdat*> PageAllocator::BorrowFrom(Ctx& ctx, CellId memory_home) {
  ++borrow_rpcs_;
  RpcArgs args;
  args.w[0] = static_cast<uint64_t>(cell_->id());
  args.w[1] = kBorrowBatch;
  RpcReply reply;
  base::Status status = cell_->rpc().Call(ctx, memory_home, MsgType::kBorrowFrames, args,
                                          &reply, CallOptions{.fat_stub = true});
  if (!status.ok()) {
    return status;
  }
  const uint64_t count = reply.w[0];
  if (count == 0) {
    return base::OutOfMemory();
  }
  if (count > kRpcWords - 1) {
    // A frame count that cannot fit in the reply is garbage, not a short
    // loan: never index past the payload. The evidence lets agreement voters
    // corroborate with their own null RPC instead of trusting the accuser.
    HintEvidence evidence;
    evidence.structure = EvidenceStructure::kRpcReply;
    cell_->detector().RaiseHintWithEvidence(ctx, memory_home,
                                            HintReason::kInvariantMismatch, evidence);
    return base::BadRemoteData();
  }
  Pfdat* first = nullptr;
  for (uint64_t i = 0; i < count; ++i) {
    const PhysAddr frame = reply.w[1 + i];
    // Sanity-check the reply: frames must be page-aligned addresses within
    // the memory home's range (inputs from other cells are never trusted).
    if (frame % cell_->machine().mem().page_size() != 0 ||
        !cell_->system()->cell(memory_home).OwnsAddr(frame)) {
      HintEvidence evidence;
      evidence.structure = EvidenceStructure::kRpcReply;
      cell_->detector().RaiseHintWithEvidence(ctx, memory_home,
                                              HintReason::kInvariantMismatch, evidence);
      continue;
    }
    Pfdat* pfdat = cell_->pfdats().AddExtended(frame);
    pfdat->borrowed_from = memory_home;
    if (first == nullptr) {
      pfdat->refcount = 1;
      first = pfdat;
    } else {
      borrowed_free_[memory_home].push_back(pfdat);
    }
  }
  if (first == nullptr) {
    return base::OutOfMemory();
  }
  return first;
}

void PageAllocator::FreeFrame(Ctx& ctx, Pfdat* pfdat) {
  CHECK_EQ(pfdat->refcount, 0);
  pfdat->dirty = false;
  pfdat->lpid = LogicalPageId{};
  if (pfdat->borrowed_from != kInvalidCell) {
    // Current policy (paper 5.4): return the frame to the memory home as soon
    // as the data cached in it is no longer in use.
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(cell_->id());
    args.w[1] = pfdat->frame;
    RpcReply reply;
    (void)cell_->rpc().Call(ctx, pfdat->borrowed_from, MsgType::kReturnFrame, args, &reply);
    cell_->pfdats().RemoveExtended(pfdat);
    return;
  }
  free_list_.push_back(pfdat);
}

std::vector<PhysAddr> PageAllocator::LoanFrames(Ctx& ctx, CellId client, int count) {
  std::vector<PhysAddr> frames;
  // Keep a local reserve so loaning cannot deadlock this cell (section 3.2:
  // each cell preserves enough local free memory to avoid deadlock).
  while (static_cast<int>(frames.size()) < count &&
         free_list_.size() > kLocalReserveFrames) {
    Pfdat* pfdat = free_list_.front();
    free_list_.pop_front();
    pfdat->loaned_out = true;
    pfdat->loaned_to = client;
    loaned_[client].insert(pfdat);
    ++loaned_count_;
    // The loan hands write control to the borrower: the frame's firewall
    // vector becomes the borrowing cell's processors.
    const Pfn loan_pfn = cell_->machine().mem().PfnOfAddr(pfdat->frame);
    cell_->machine().firewall().SetVector(
        loan_pfn, cell_->system()->cell(client).CpuMask(),
        cell_->machine().firewall().NodeOfPfn(loan_pfn) *
            cell_->machine().config().cpus_per_node);
    ctx.Charge(cell_->machine().config().latency.firewall_grant_ns);
    frames.push_back(pfdat->frame);
  }
  return frames;
}

base::Status PageAllocator::AcceptReturnedFrame(Ctx& ctx, PhysAddr frame, CellId client) {
  Pfdat* pfdat = cell_->pfdats().FindByFrame(frame);
  if (pfdat == nullptr || !pfdat->loaned_out || pfdat->loaned_to != client) {
    // Bogus return: never trust remote input.
    cell_->detector().RaiseHint(ctx, client, HintReason::kCarefulCheckFailed);
    return base::InvalidArgument();
  }
  auto bucket_it = loaned_.find(client);
  if (bucket_it == loaned_.end() || bucket_it->second.erase(pfdat) == 0) {
    // The allocator has no record of this loan: treat like a bogus return.
    cell_->detector().RaiseHint(ctx, client, HintReason::kCarefulCheckFailed);
    return base::InvalidArgument();
  }
  if (bucket_it->second.empty()) {
    loaned_.erase(bucket_it);
  }
  --loaned_count_;
  pfdat->loaned_out = false;
  pfdat->loaned_to = kInvalidCell;
  cell_->firewall_manager().ProtectLocal(cell_->machine().mem().PfnOfAddr(frame));
  ctx.Charge(cell_->machine().config().latency.firewall_revoke_ns);
  free_list_.push_back(pfdat);
  return base::OkStatus();
}

int PageAllocator::ReclaimLoansTo(CellId failed_cell) {
  auto bucket_it = loaned_.find(failed_cell);
  if (bucket_it == loaned_.end()) {
    return 0;
  }
  // Sweep only the failed borrower's bucket. Frames rejoin the free list in
  // frame-address order so recovery is deterministic regardless of where the
  // pfdats happen to live in host memory.
  std::vector<Pfdat*> reclaimed(bucket_it->second.begin(), bucket_it->second.end());
  loaned_.erase(bucket_it);
  std::sort(reclaimed.begin(), reclaimed.end(),
            [](const Pfdat* a, const Pfdat* b) { return a->frame < b->frame; });
  for (Pfdat* pfdat : reclaimed) {
    pfdat->loaned_out = false;
    pfdat->loaned_to = kInvalidCell;
    cell_->firewall_manager().ProtectLocal(cell_->machine().mem().PfnOfAddr(pfdat->frame));
    free_list_.push_back(pfdat);
  }
  loaned_count_ -= reclaimed.size();
  return static_cast<int>(reclaimed.size());
}

void PageAllocator::ReleaseToFreeList(Pfdat* pfdat) {
  CHECK(!pfdat->extended);
  pfdat->refcount = 0;
  pfdat->dirty = false;
  pfdat->lpid = LogicalPageId{};
  pfdat->salvage_sum_valid = false;
  pfdat->exported_to = 0;
  pfdat->exported_writable = 0;
  free_list_.push_back(pfdat);
}

void PageAllocator::NoteSalvagedAdoption(Pfdat* pfdat) {
  // Recovery adopted a bound page the discard walk would have freed. The
  // frame must still be a live local cache page: not on the free list (it
  // keeps its binding) and not loaned out (loaned frames are unbound).
  CHECK(!pfdat->extended);
  CHECK(pfdat->HasLogicalBinding());
  CHECK(!pfdat->loaned_out);
  ++frames_salvaged_;
}

int PageAllocator::DropBorrowsFrom(CellId failed_cell) {
  auto bucket_it = borrowed_free_.find(failed_cell);
  if (bucket_it == borrowed_free_.end()) {
    return 0;
  }
  // Only this home's bucket is touched: O(frames borrowed from it).
  const int dropped = static_cast<int>(bucket_it->second.size());
  for (Pfdat* pfdat : bucket_it->second) {
    cell_->pfdats().RemoveExtended(pfdat);
  }
  borrowed_free_.erase(bucket_it);
  return dropped;
}

bool PageAllocator::IsLoanedFrame(const Pfdat* pfdat) const {
  Pfdat* key = const_cast<Pfdat*>(pfdat);
  // hive-lint: allow(R10): pure membership predicate; the same bool falls out in any iteration order and nothing is mutated.
  for (const auto& [client, bucket] : loaned_) {
    if (bucket.count(key) > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace hive
