// Aggressive failure detection (paper section 4.3). A cell is considered
// potentially failed if:
//   - an RPC sent to it times out;
//   - an attempt to access its memory causes a bus error;
//   - a shared memory location it updates on every clock interrupt fails to
//     increment (clock monitoring detects halted processors and deadlocked
//     kernels);
//   - data or pointers read from its memory fail the consistency checks of
//     the careful reference protocol.
//
// A failed check is a *hint* that triggers the distributed agreement round;
// consensus among the surviving cells is required before a cell is treated
// as failed. A cell that broadcasts the same alert twice and is voted down
// both times is itself considered corrupt by the other cells.

#ifndef HIVE_SRC_CORE_FAILURE_DETECTION_H_
#define HIVE_SRC_CORE_FAILURE_DETECTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class Cell;

enum class HintReason {
  kRpcTimeout,
  kBusError,
  kClockStale,
  kCarefulCheckFailed,
  kInvariantMismatch,  // Firewall/ownership audit found state only a wild write explains.
};

const char* HintReasonName(HintReason reason);

class FailureDetector {
 public:
  explicit FailureDetector(Cell* cell);

  // Clock monitoring: called from the cell's clock handler every tick. Reads
  // the next live cell's clock word with the careful reference protocol and
  // raises a hint if it failed to increment for too many ticks.
  void MonitorPeerClock(Ctx& ctx);

  // Raises a hint against `suspect`; triggers the agreement protocol unless a
  // round is already running or the suspect is already known-failed.
  void RaiseHint(Ctx& ctx, CellId suspect, HintReason reason);

  // Which peer this cell currently monitors (ring over live cells).
  CellId MonitoredPeer() const;

  // Bookkeeping when the live set changes.
  void ForgetCell(CellId cell_id);

  uint64_t hints_raised() const { return hints_raised_; }

 private:
  Cell* cell_;
  std::unordered_map<CellId, uint64_t> last_seen_clock_;
  std::unordered_map<CellId, int> stale_ticks_;
  uint64_t hints_raised_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_FAILURE_DETECTION_H_
