// Aggressive failure detection (paper section 4.3). A cell is considered
// potentially failed if:
//   - an RPC sent to it times out;
//   - an attempt to access its memory causes a bus error;
//   - a shared memory location it updates on every clock interrupt fails to
//     increment (clock monitoring detects halted processors and deadlocked
//     kernels);
//   - data or pointers read from its memory fail the consistency checks of
//     the careful reference protocol.
//
// Byzantine extensions (DESIGN.md section 9): the clock monitor also detects
// a clock word that keeps incrementing but at a fraction of the expected
// rate (kClockDrift), and an incoming-request rate throttle detects a peer
// that floods the network with requests (kBabbling). Hints against a peer
// that is *alive but erroneous* carry evidence that agreement voters can
// independently corroborate, so a rogue cell that answers pings cannot turn
// the strike counter against its healthy accuser.
//
// A failed check is a *hint* that triggers the distributed agreement round;
// consensus among the surviving cells is required before a cell is treated
// as failed. A cell that broadcasts the same alert twice and is voted down
// both times is itself considered corrupt by the other cells.

#ifndef HIVE_SRC_CORE_FAILURE_DETECTION_H_
#define HIVE_SRC_CORE_FAILURE_DETECTION_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class Cell;

enum class HintReason {
  kRpcTimeout,
  kBusError,
  kClockStale,
  kCarefulCheckFailed,
  kInvariantMismatch,  // Firewall/ownership audit found state only a wild write explains.
  kClockDrift,         // Clock word increments, but far below the tick rate.
  kBabbling,           // Incoming-request flood above the babble threshold.
};

// Every enumerator, for exhaustive iteration (reports, round-trip tests).
inline constexpr HintReason kAllHintReasons[] = {
    HintReason::kRpcTimeout,     HintReason::kBusError,
    HintReason::kClockStale,     HintReason::kCarefulCheckFailed,
    HintReason::kInvariantMismatch, HintReason::kClockDrift,
    HintReason::kBabbling,
};
inline constexpr int kNumHintReasons =
    static_cast<int>(sizeof(kAllHintReasons) / sizeof(kAllHintReasons[0]));

const char* HintReasonName(HintReason reason);
// Inverse of HintReasonName; returns false if `name` matches no enumerator.
bool HintReasonFromName(std::string_view name, HintReason* out);

// Which remote structure a piece of hint evidence refers to.
enum class EvidenceStructure {
  kNone,
  kClockWord,  // The suspect's published clock word.
  kChain,      // The suspect's published probe pointer chain.
  kSeqBlock,   // The suspect's published seqlock block.
  kRpcReply,   // Payload words of the suspect's RPC replies (garbage check).
};

// Evidence attached to a hint against a live-but-erroneous suspect. Agreement
// voters re-run the failed check themselves instead of trusting the accuser:
// a Byzantine cell that still answers pings is voted down only when a
// majority independently reproduces the accuser's observation.
struct HintEvidence {
  bool valid = false;
  HintReason reason = HintReason::kRpcTimeout;
  EvidenceStructure structure = EvidenceStructure::kNone;
  uint64_t clock_value = 0;     // kClockStale: frozen value. kClockDrift: window start value.
  int ticks_observed = 0;       // kClockDrift: monitoring ticks in the window.
  PhysAddr structure_addr = 0;  // kChain: head payload. kSeqBlock: block payload.
};

class FailureDetector {
 public:
  // Clock-drift detection window: after this many successful clock reads of
  // the same peer, the observed advance must be at least 3/4 of the elapsed
  // ticks. A divisor-2 drifting clock advances at 1/2 rate and is caught
  // here; a fully frozen clock is caught earlier by the stale check.
  static constexpr int kDriftWindowTicks = 8;

  // Babbling throttle: more than kBabbleThreshold incoming requests from one
  // peer within kBabbleWindowNs marks it a babbler -- further requests are
  // rejected at the dispatch boundary and a kBabbling hint is raised.
  static constexpr Time kBabbleWindowNs = 10'000'000;  // 10 ms.
  static constexpr int kBabbleThreshold = 250;

  explicit FailureDetector(Cell* cell);

  // Clock monitoring: called from the cell's clock handler every tick. Reads
  // the next live cell's clock word with the careful reference protocol and
  // raises a hint if it failed to increment for too many ticks, or if it
  // increments persistently below the expected rate.
  void MonitorPeerClock(Ctx& ctx);

  // Raises a hint against `suspect`; triggers the agreement protocol unless a
  // round is already running or the suspect is already known-failed.
  void RaiseHint(Ctx& ctx, CellId suspect, HintReason reason);

  // Raises a hint with attached evidence for voters to corroborate.
  void RaiseHintWithEvidence(Ctx& ctx, CellId suspect, HintReason reason,
                             const HintEvidence& evidence);

  // Evidence attached to this cell's most recent hint against `suspect`
  // (invalid if the last hint carried none). Cleared when a round completes.
  const HintEvidence& EvidenceAgainst(CellId suspect) const;
  void ClearEvidence(CellId suspect);

  // Incoming-request accounting for the babble throttle. Returns false when
  // the request should be rejected because `from` has been marked a babbler.
  bool RecordIncomingRequest(Ctx& ctx, CellId from);
  bool IsBabbler(CellId peer) const { return babblers_.count(peer) != 0; }
  // Requests seen from `peer` in its current rate window (voter corroboration).
  int IncomingCount(CellId peer) const;

  // Bounded-work accounting for the no-survivor-hang oracle: callers record
  // the hop count of every remote structure traversal they perform.
  void NoteTraversal(int hops) {
    if (hops > max_traversal_hops_) {
      max_traversal_hops_ = hops;
    }
  }
  int max_traversal_hops() const { return max_traversal_hops_; }

  // Which peer this cell currently monitors (ring over live cells).
  CellId MonitoredPeer() const;

  // Bookkeeping when the live set changes.
  void ForgetCell(CellId cell_id);

  uint64_t hints_raised() const { return hints_raised_; }
  uint64_t hints_for(HintReason reason) const {
    return hints_by_reason_[static_cast<int>(reason)];
  }

 private:
  void RaiseHintCommon(Ctx& ctx, CellId suspect, HintReason reason);

  struct DriftWindow {
    int ticks = 0;
    uint64_t start_value = 0;
  };
  struct RateWindow {
    bool open = false;  // Distinguishes "no window yet" from start at t=0.
    Time start = 0;
    int count = 0;
  };

  Cell* cell_;
  std::unordered_map<CellId, uint64_t> last_seen_clock_;
  std::unordered_map<CellId, int> stale_ticks_;
  std::unordered_map<CellId, DriftWindow> drift_;
  std::unordered_map<CellId, RateWindow> incoming_;
  std::unordered_set<CellId> babblers_;
  std::unordered_map<CellId, HintEvidence> evidence_;
  uint64_t hints_raised_ = 0;
  std::array<uint64_t, kNumHintReasons> hints_by_reason_{};
  int max_traversal_hops_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_FAILURE_DETECTION_H_
