#include "src/core/process.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/scheduler.h"

namespace hive {

Process::Process(ProcId pid, Cell* cell, std::unique_ptr<Behavior> behavior)
    : pid_(pid), cell_(cell), behavior_(std::move(behavior)), address_space_(cell) {}

Process::~Process() = default;

int Process::AddFile(const FileHandle& handle) {
  for (size_t fd = 0; fd < files_.size(); ++fd) {
    if (!files_[fd].valid()) {
      files_[fd] = handle;
      return static_cast<int>(fd);
    }
  }
  files_.push_back(handle);
  return static_cast<int>(files_.size() - 1);
}

FileHandle* Process::GetFile(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= files_.size() ||
      !files_[static_cast<size_t>(fd)].valid()) {
    return nullptr;
  }
  return &files_[static_cast<size_t>(fd)];
}

void Process::RemoveFile(int fd) {
  if (fd >= 0 && static_cast<size_t>(fd) < files_.size()) {
    files_[static_cast<size_t>(fd)] = FileHandle{};
  }
}

std::vector<FileHandle> Process::OpenFiles() const {
  std::vector<FileHandle> open;
  for (const FileHandle& handle : files_) {
    if (handle.valid()) {
      open.push_back(handle);
    }
  }
  return open;
}

StepOutcome UserBarrier::Arrive(Ctx& ctx, Process& proc) {
  if (static_cast<int>(parked_.size()) + 1 >= parties_) {
    // Last arriver: release everyone.
    for (Process* waiter : parked_) {
      waiter->set_blocked_on(nullptr);
      waiter->cell()->sched().MakeRunnable(waiter);
    }
    parked_.clear();
    ctx.Charge(2000);  // Barrier bookkeeping.
    return StepOutcome::kContinue;
  }
  parked_.push_back(&proc);
  proc.set_blocked_on(this);
  ctx.Charge(2000);
  return StepOutcome::kBlocked;
}

void UserBarrier::RemoveParty(Process* proc) {
  // A killed member shrinks the barrier; if it was parked, drop it, and if
  // the remaining parked set now satisfies the (smaller) barrier, release.
  --parties_;
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (*it == proc) {
      parked_.erase(it);
      break;
    }
  }
  if (parties_ > 0 && static_cast<int>(parked_.size()) >= parties_) {
    for (Process* waiter : parked_) {
      waiter->set_blocked_on(nullptr);
      waiter->cell()->sched().MakeRunnable(waiter);
    }
    parked_.clear();
  }
}

}  // namespace hive
