#include "src/core/swap.h"

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {

base::Status SwapArea::SwapOut(Ctx& ctx, Pfdat* pfdat) {
  CHECK(pfdat->HasLogicalBinding() && pfdat->lpid.kind == LogicalPageId::Kind::kAnon);
  CHECK_EQ(pfdat->refcount, 0);
  CHECK_EQ(pfdat->exported_to, 0u);

  const uint64_t page_size = cell_->machine().mem().page_size();
  Slot& slot = slots_[pfdat->lpid];
  slot.bytes.resize(page_size);
  slot.disk_offset = next_disk_offset_;
  next_disk_offset_ += page_size;

  // DMA the frame to the swap disk; the write-out is asynchronous
  // (occupancy charged to the disk, not the caller).
  cell_->machine().mem().DmaRead(cell_->first_node(), pfdat->frame,
                                 std::span<uint8_t>(slot.bytes));
  (void)cell_->machine().disk(cell_->first_node()).AccessTime(slot.disk_offset, page_size);

  cell_->pfdats().RemoveHash(pfdat);
  pfdat->lpid = LogicalPageId{};
  pfdat->dirty = false;
  if (pfdat->extended) {
    // Page was cached in a borrowed frame: hand the frame back.
    cell_->allocator().FreeFrame(ctx, pfdat);
  } else {
    cell_->allocator().ReleaseToFreeList(pfdat);
  }
  ++swap_outs_;
  cell_->Trace(TraceEvent::kSwapOut, slot.disk_offset);
  return base::OkStatus();
}

bool SwapArea::Contains(const LogicalPageId& lpid) const {
  return slots_.count(lpid) > 0;
}

base::Result<Pfdat*> SwapArea::SwapIn(Ctx& ctx, const LogicalPageId& lpid) {
  auto it = slots_.find(lpid);
  if (it == slots_.end()) {
    return base::NotFound();
  }
  AllocConstraints constraints;
  ASSIGN_OR_RETURN(Pfdat * pfdat, cell_->allocator().AllocFrame(ctx, constraints));
  // The caller waits for the swap-in disk read.
  const uint64_t page_size = cell_->machine().mem().page_size();
  ctx.Charge(cell_->machine().disk(cell_->first_node())
                 .AccessTime(it->second.disk_offset, page_size));
  // DMA from OUR swap disk into the frame; borrowed frames were granted to
  // this cell's processors at loan time.
  cell_->machine().mem().DmaWrite(cell_->first_node(), pfdat->frame,
                                  std::span<const uint8_t>(it->second.bytes));
  pfdat->lpid = lpid;
  pfdat->dirty = true;  // Anonymous pages are always dirty relative to swap.
  cell_->pfdats().InsertHash(pfdat);
  slots_.erase(it);
  ++swap_ins_;
  cell_->Trace(TraceEvent::kSwapIn, pfdat->frame);
  return pfdat;
}

void SwapArea::DropNode(uint64_t node_id) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.object == node_id) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace hive
