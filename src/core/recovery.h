// Failure recovery (paper section 4.3): given consensus on the live set,
// each cell runs recovery algorithms to clean up dangling references and
// determine which processes must be killed. A double global barrier
// synchronizes the preemptive discard:
//
//   - Before barrier 1: user processes are suspended; each cell flushes its
//     TLBs and removes remote mappings from process address spaces. Page
//     faults arriving after a cell joined barrier 1 are held on the client
//     side.
//   - After barrier 1 no valid remote accesses are pending: each cell revokes
//     firewall write permission it granted to other cells, discards every
//     page writable by a failed cell (notifying the file system, which bumps
//     generation numbers for lost dirty pages), and cleans up virtual memory
//     state (imports, borrows, loans touching failed cells).
//   - After barrier 2 cells resume normal operation. A recovery master is
//     elected from the new live set, runs hardware diagnostics on the failed
//     nodes, and (if they pass) reboots and reintegrates the failed cells.

#ifndef HIVE_SRC_CORE_RECOVERY_H_
#define HIVE_SRC_CORE_RECOVERY_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/types.h"

namespace hive {

class HiveSystem;

struct RecoveryStats {
  Time detect_time = 0;                  // Agreement confirmed.
  std::vector<Time> entered_recovery;    // Per live cell.
  Time barrier1_time = 0;
  Time barrier2_time = 0;                // == user resume time.
  // Failure-to-survivors-unblocked span (barrier2 - detect): the per-episode
  // recovery duration the serve harness' recovery-time SLO is built on.
  Time duration_ns = 0;
  CellId recovery_master = kInvalidCell;
  int pages_discarded = 0;
  int pages_salvaged = 0;                // Kept by proof instead of discarded.
  int dirty_pages_lost = 0;              // Caused generation bumps.
  int processes_killed = 0;
  int imports_dropped = 0;
  int loans_reclaimed = 0;
  std::vector<CellId> failed_cells;
};

// One page adopted by a surviving cell during the discard walk instead of
// preemptively discarded (HiveOptions::salvage_pages). The oracles cross-check
// these against injected wild writes and canary contents.
struct SalvageRecord {
  CellId owner = kInvalidCell;  // Surviving data home that kept the page.
  PhysAddr frame = 0;
  LogicalPageId lpid;
  uint64_t sum = 0;             // Content checksum at adoption (0 if unchecked).
  // Which proof admitted the page: the failed cell never held hardware write
  // permission (firewall vector), or the recomputed content checksum matched
  // the one recorded at the last checked write. Both false only under the
  // seeded salvage_unchecked bug.
  bool firewall_proof = false;
  bool checksum_proof = false;
};

// One reintegration episode, from the master starting the reboot to the
// rejoined cell reaching full-member state (or dying again on the way).
struct ReintegrationRecord {
  CellId cell = kInvalidCell;
  Time started_at = 0;
  Time done_at = 0;         // 0 while in progress.
  bool re_excised = false;  // Killed again before converging (reboot storm).
  bool failed = false;      // Reintegrate itself returned an error.
};

class RecoveryManager {
 public:
  explicit RecoveryManager(HiveSystem* system) : system_(system) {}

  // Runs the full recovery algorithm for `failed_cells`, starting at the
  // (virtual) time of ctx. Synchronously updates all kernel state; the
  // simulated cost of each phase determines the barrier times and when user
  // execution resumes on each cell.
  RecoveryStats Run(Ctx& ctx, const std::vector<CellId>& failed_cells);

  // Reboots a failed cell after diagnostics and reintegrates it into the
  // system (fresh kernel, file system intact on disk). Paper section 4.3's
  // automatic reintegration.
  base::Status Reintegrate(Ctx& ctx, CellId cell_id);

  const RecoveryStats& last_stats() const { return last_stats_; }
  int recoveries_run() const { return recoveries_run_; }

  // Every completed recovery round, in order (last_stats() is episodes().back()).
  // Only terminal states used to be logged; the per-episode durations here are
  // the source of truth for recovery-time distributions (report.cc, hive_serve).
  const std::vector<RecoveryStats>& episodes() const { return episodes_; }

  // Cross-recovery logs for oracles and reporting. Both survive master
  // rotation and per-cell trace-ring wrap; they are never cleared.
  const std::vector<SalvageRecord>& salvage_log() const { return salvage_log_; }
  const std::vector<ReintegrationRecord>& reintegration_log() const {
    return reintegration_log_;
  }

  // Test support: oracle tests hand-build violating log states the real
  // paths refuse to produce (WarmRejoin always reaches a terminal state).
  std::vector<SalvageRecord>& mutable_salvage_log_for_test() { return salvage_log_; }
  std::vector<ReintegrationRecord>& mutable_reintegration_log_for_test() {
    return reintegration_log_;
  }

  // Enables/disables automatic reboot of failed cells after recovery.
  bool auto_reintegrate = false;

 private:
  // Phase work; each returns the simulated cost on that cell.
  Time PhaseFlushMappings(Ctx& ctx, CellId cell_id);
  Time PhaseDiscardAndCleanup(Ctx& ctx, CellId cell_id, const std::vector<CellId>& failed,
                              RecoveryStats* stats);
  Time PhaseKillDependents(Ctx& ctx, CellId cell_id, const std::vector<CellId>& failed,
                           RecoveryStats* stats);

  // Live-rejoin phase 2 (HiveOptions::live_rejoin): the rebooted cell
  // re-enters the transport and the frame economy while survivors serve.
  void WarmRejoin(CellId cell_id, size_t log_index);

  HiveSystem* system_;
  RecoveryStats last_stats_;
  std::vector<RecoveryStats> episodes_;
  int recoveries_run_ = 0;
  std::vector<SalvageRecord> salvage_log_;
  std::vector<ReintegrationRecord> reintegration_log_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_RECOVERY_H_
