// Distributed agreement on cell failure (paper section 4.3). When a hint
// alert is broadcast, all cells temporarily suspend user-level processes and
// run an agreement round; only if the surviving cells agree that a cell has
// failed does recovery proceed. This prevents one faulty cell from rebooting
// healthy ones.
//
// Two modes:
//  - kOracle: the machine's ground truth stands in for the protocol, exactly
//    as the paper's experiments did ("simulated by an oracle", section 4.3).
//  - kVoting: a real implementation in the spirit of the group membership
//    algorithms the paper cites ([16]): each live cell independently probes
//    the suspect (careful clock read + ping RPC) and votes; a majority of
//    the non-suspect cells must confirm the failure.

#ifndef HIVE_SRC_CORE_AGREEMENT_H_
#define HIVE_SRC_CORE_AGREEMENT_H_

#include <unordered_map>
#include <vector>

#include "src/core/context.h"
#include "src/core/failure_detection.h"
#include "src/core/types.h"

namespace hive {

class HiveSystem;

enum class AgreementMode { kOracle, kVoting };

struct AgreementResult {
  bool confirmed = false;
  std::vector<CellId> failed;   // Cells confirmed failed this round.
  int votes_for = 0;
  int votes_against = 0;
  Time round_cost_ns = 0;       // Wall time consumed by the round.
};

class Agreement {
 public:
  Agreement(HiveSystem* system, AgreementMode mode) : system_(system), mode_(mode) {}

  // Runs one round for `suspect`, accused by `accuser`. Charges the round
  // cost to ctx. Updates the accuser strike count on a voted-down alert; an
  // accuser voted down twice for the same suspect is itself declared corrupt
  // (returned in `failed`).
  AgreementResult RunRound(Ctx& ctx, CellId accuser, CellId suspect, HintReason reason);

  AgreementMode mode() const { return mode_; }
  void set_mode(AgreementMode mode) { mode_ = mode; }

  uint64_t rounds_run() const { return rounds_run_; }
  uint64_t false_alerts() const { return false_alerts_; }
  uint64_t vote_timeouts() const { return vote_timeouts_; }
  // Most expensive round so far; the no-survivor-hang oracle bounds it.
  Time max_round_cost_ns() const { return max_round_cost_ns_; }

 private:
  // One cell's independent probe of the suspect: true = "I think it failed".
  bool ProbeSuspect(Ctx& ctx, CellId prober, CellId suspect);

  // Evidence-aware probe: the prober re-runs the accuser's failed check
  // itself (re-reads the clock word, re-walks the probe chain, checks its
  // own incoming-request rate) instead of trusting either the accuser or a
  // rogue suspect that still answers pings. True = "evidence corroborated".
  bool CorroborateEvidence(Ctx& ctx, CellId prober, CellId suspect,
                           const HintEvidence& evidence);

  HiveSystem* system_;
  AgreementMode mode_;
  // (accuser, suspect) -> times the alert was voted down.
  std::unordered_map<uint64_t, int> strikes_;
  uint64_t rounds_run_ = 0;
  uint64_t false_alerts_ = 0;
  uint64_t vote_timeouts_ = 0;
  Time max_round_cost_ns_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_AGREEMENT_H_
