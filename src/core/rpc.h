// Intercell remote procedure calls built on the SIPS hardware primitive
// (paper section 6). Two service classes:
//
//  - Interrupt-level: the request is serviced entirely in the receiving
//    node's message interrupt handler. Null RPC: 7.2 us end to end. The
//    client processor spins for the reply (up to 50 us) before context
//    switching, which almost never happens.
//  - Queued: an initial interrupt-level RPC launches the operation on a
//    server process, and a completion RPC returns the result. Null queued
//    RPC: 34 us, dominated by context switch + synchronization.
//
// Because the SIPS primitive is reliable, there is no retransmission or
// duplicate suppression; anything beyond the 128-byte line is passed by
// reference through shared memory (and read with the careful reference
// protocol where trust demands it).
//
// Simulation note: calls execute synchronously in the caller's event, with
// latencies charged to the client context and occupancy charged to the
// serving CPU. Failure semantics are preserved: calls to dead or panicked
// cells charge the spin + context-switch cost and return kTimeout, which
// feeds the failure detector a hint.

#ifndef HIVE_SRC_CORE_RPC_H_
#define HIVE_SRC_CORE_RPC_H_

#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/costs.h"
#include "src/core/types.h"

namespace hive {

class Cell;
class HiveSystem;

enum class MsgType : uint32_t {
  kNull = 0,          // Latency calibration.
  kNullQueued,        // Latency calibration (queued service).
  kPageFault,         // Client fault on a remote file/anon page -> export.
  kUpgradeWrite,      // Client wants write access to an imported page.
  kReleasePage,       // Client released an imported page.
  kOpen,              // Resolve a file on its data home (queued).
  kCreate,            // Create a file on a data home (queued).
  kReadAhead,         // Bulk read pages into data-home cache (queued).
  kWriteBehind,       // Write one partial page through the data home (queued).
  kWriteBehindBulk,   // Write a batch of full pages through the data home.
  kSyncFile,          // Remote close: ask the data home to sync the file.
  kUnlink,            // Remove a file at its data home (queued).
  kBorrowFrames,      // Physical-level sharing: ask memory home for frames.
  kReturnFrame,       // Give a borrowed frame back.
  kGrantFirewall,     // Data home asks memory home to open the firewall.
  kRevokeFirewall,    // ... and to close it.
  kCowBind,           // Bind to an anonymous page found in a remote COW node.
  kForkRemote,        // Create a process on another cell (queued).
  kKillProc,          // Signal/kill a process on another cell.
  kPing,              // Agreement probe.
  kWaxHint,           // Wax pushes a policy hint to a cell.
  kNumTypes,
};

// Arguments/results must fit in one SIPS line together with the header.
constexpr size_t kRpcWords = 12;

struct RpcArgs {
  std::array<uint64_t, kRpcWords> w{};
};

struct RpcReply {
  std::array<uint64_t, kRpcWords> w{};
};

struct RpcCallStats {
  uint64_t calls = 0;
  uint64_t timeouts = 0;
  uint64_t queued_calls = 0;
};

// A handler runs on the serving cell. It charges its work to `server_ctx`.
using RpcHandler = std::function<base::Status(Ctx& server_ctx, const RpcArgs& args,
                                              RpcReply* reply)>;

struct CallOptions {
  bool fat_stub = false;       // Commonly-used request: +2.4 us stub work.
  uint64_t bulk_bytes = 0;     // Arg/result data beyond the 128-byte line.
};

class RpcLayer {
 public:
  RpcLayer(Cell* cell, HiveSystem* system, const KernelCosts& costs);

  // Registration happens at cell boot. Queued handlers may block (e.g. disk).
  void RegisterInterrupt(MsgType type, RpcHandler handler);
  void RegisterQueued(MsgType type, RpcHandler handler);

  // Synchronous call; returns the handler's status, kTimeout if the target
  // never answers, or kUnavailable while the target is in recovery.
  base::Status Call(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                    RpcReply* reply, const CallOptions& options = {});

  // The page-fault RPC uses the cost accounting of paper table 5.2 (fat
  // stubs, hardware message + interrupts, arg/result copy, arg memory
  // alloc/free) instead of the standard profile, and records the breakdown
  // into ctx.fault_bd when attached.
  base::Status CallFault(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                         RpcReply* reply);

  // Serves one incoming request on this cell; used by Call on the target
  // side and by tests that drive the server path directly.
  base::Status Serve(Ctx& server_ctx, MsgType type, const RpcArgs& args, RpcReply* reply);

  // True if a handler is registered for the message type.
  bool HasHandler(MsgType type) const {
    return handlers_.count(static_cast<uint32_t>(type)) > 0;
  }

  const RpcCallStats& stats() const { return stats_; }

 private:
  struct Registration {
    RpcHandler handler;
    bool queued = false;
  };

  Cell* cell_;
  HiveSystem* system_;
  const KernelCosts& costs_;
  std::unordered_map<uint32_t, Registration> handlers_;
  RpcCallStats stats_;
  int next_server_cpu_ = 0;  // Round-robin over the cell's CPUs for service.
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_RPC_H_
