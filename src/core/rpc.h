// Intercell remote procedure calls built on the SIPS hardware primitive
// (paper section 6). Two service classes:
//
//  - Interrupt-level: the request is serviced entirely in the receiving
//    node's message interrupt handler. Null RPC: 7.2 us end to end. The
//    client processor spins for the reply (up to 50 us) before context
//    switching, which almost never happens.
//  - Queued: an initial interrupt-level RPC launches the operation on a
//    server process, and a completion RPC returns the result. Null queued
//    RPC: 34 us, dominated by context switch + synchronization.
//
// The paper assumes the SIPS primitive is reliable. This layer does not:
// it is a reliable at-most-once transport over a possibly-faulty substrate
// (see flash::MessageFaultModel). The transport contract:
//
//  - Every call carries a per-peer monotonic sequence number. Lost or
//    corrupted hops (corruption is detected by the per-line checksum and
//    degrades into loss) are retried up to kMaxRpcAttempts times with
//    capped exponential backoff plus deterministic jitter drawn from the
//    scenario RNG.
//  - The server keeps a bounded per-client replay cache keyed by sequence
//    number: a retransmitted or duplicated request whose sequence number
//    was already served returns the cached reply without re-executing the
//    handler, so every handler -- and in particular every non-idempotent
//    one (kForkRemote, kCreate, kUnlink, kBorrowFrames, kGrantFirewall,
//    ...) -- executes at most once per call. Non-idempotent handlers are
//    registered through RegisterInterruptAtMostOnce/RegisterQueuedAtMostOnce
//    so the campaign oracles (and hive_lint rule R6) can audit the set.
//  - Repeated retry exhaustion against one peer escalates: the first
//    exhaustion raises a failure-detector hint (at most one hint per
//    agreement window, not one per retry), and kQuarantineThreshold
//    consecutive exhaustions put the peer in quarantine. Calls to a
//    quarantined peer fail fast with kUnavailable (the synchronous
//    equivalent of draining/aborting the in-flight queue) until agreement
//    clears the suspect and the probation window expires, after which the
//    peer is automatically un-quarantined. Agreement probes (kPing) bypass
//    quarantine so the voting protocol always measures the real path.
//
// Anything beyond the 128-byte line is passed by reference through shared
// memory (and read with the careful reference protocol where trust demands
// it).
//
// Simulation note: calls execute synchronously in the caller's event, with
// latencies charged to the client context and occupancy charged to the
// serving CPU. Failure semantics are preserved: calls to dead or panicked
// cells charge the spin + context-switch cost and return kTimeout (without
// burning retries -- a vanished node never answers), which feeds the failure
// detector a hint.

#ifndef HIVE_SRC_CORE_RPC_H_
#define HIVE_SRC_CORE_RPC_H_

#include <array>
#include <cstring>
#include <functional>
#include <map>
#include <unordered_map>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/costs.h"
#include "src/core/types.h"

namespace hive {

class Cell;
class HiveSystem;

enum class MsgType : uint32_t {
  kNull = 0,          // Latency calibration.
  kNullQueued,        // Latency calibration (queued service).
  kPageFault,         // Client fault on a remote file/anon page -> export.
  kUpgradeWrite,      // Client wants write access to an imported page.
  kReleasePage,       // Client released an imported page.
  kOpen,              // Resolve a file on its data home (queued).
  kCreate,            // Create a file on a data home (queued).
  kReadAhead,         // Bulk read pages into data-home cache (queued).
  kWriteBehind,       // Write one partial page through the data home (queued).
  kWriteBehindBulk,   // Write a batch of full pages through the data home.
  kSyncFile,          // Remote close: ask the data home to sync the file.
  kUnlink,            // Remove a file at its data home (queued).
  kBorrowFrames,      // Physical-level sharing: ask memory home for frames.
  kReturnFrame,       // Give a borrowed frame back.
  kGrantFirewall,     // Data home asks memory home to open the firewall.
  kRevokeFirewall,    // ... and to close it.
  kCowBind,           // Bind to an anonymous page found in a remote COW node.
  kForkRemote,        // Create a process on another cell (queued).
  kKillProc,          // Signal/kill a process on another cell.
  kPing,              // Agreement probe.
  kWaxHint,           // Wax pushes a policy hint to a cell.
  kNumTypes,
};

// Arguments/results must fit in one SIPS line together with the header.
constexpr size_t kRpcWords = 12;

// Transport policy knobs.
constexpr int kMaxRpcAttempts = 6;                      // 1 try + 5 retries.
constexpr Time kRpcBackoffBaseNs = 100 * kMicrosecond;  // First retry delay.
constexpr Time kRpcBackoffCapNs = 3200 * kMicrosecond;  // Backoff ceiling.
constexpr Time kRpcBackoffJitterNs = 50 * kMicrosecond; // Max added jitter.
constexpr int kQuarantineThreshold = 2;   // Consecutive exhaustions to quarantine.
constexpr Time kQuarantineProbationNs = 50 * kMillisecond;
constexpr size_t kReplayCacheEntries = 64;  // Per-client replay cache bound.

struct RpcArgs {
  std::array<uint64_t, kRpcWords> w{};
};

struct RpcReply {
  std::array<uint64_t, kRpcWords> w{};
};

struct RpcCallStats {
  uint64_t calls = 0;
  uint64_t timeouts = 0;      // Calls that gave up (dead peer or exhausted retries).
  uint64_t queued_calls = 0;
  uint64_t retries = 0;                 // Re-sent attempts after a lost hop.
  uint64_t duplicates_suppressed = 0;   // Server-side replay-cache hits.
  uint64_t corrupt_lost = 0;            // Hops lost to detected corruption.
  uint64_t quarantines_entered = 0;
  uint64_t quarantine_fail_fast = 0;    // Calls rejected while peer quarantined.
  uint64_t at_most_once_violations = 0; // Non-idempotent handler re-executions
                                        // (possible only with suppression off).
  uint64_t acked_mutations = 0;    // Client: OK replies for at-most-once types.
  uint64_t executed_mutations = 0; // Server: OK executions of at-most-once types.
};

// A handler runs on the serving cell. It charges its work to `server_ctx`.
using RpcHandler = std::function<base::Status(Ctx& server_ctx, const RpcArgs& args,
                                              RpcReply* reply)>;

struct CallOptions {
  bool fat_stub = false;       // Commonly-used request: +2.4 us stub work.
  uint64_t bulk_bytes = 0;     // Arg/result data beyond the 128-byte line.
};

class RpcLayer {
 public:
  RpcLayer(Cell* cell, HiveSystem* system, const KernelCosts& costs);

  // Registration happens at cell boot. Queued handlers may block (e.g. disk).
  void RegisterInterrupt(MsgType type, RpcHandler handler);
  void RegisterQueued(MsgType type, RpcHandler handler);

  // Registration for non-idempotent handlers: marks the type so the replay
  // cache accounting (and the campaign at-most-once oracle) can tell a
  // suppressed duplicate of a mutation from one of an idempotent read.
  // hive_lint rule R6 requires these variants for the known mutation types.
  void RegisterInterruptAtMostOnce(MsgType type, RpcHandler handler);
  void RegisterQueuedAtMostOnce(MsgType type, RpcHandler handler);

  // Synchronous call; returns the handler's status, kTimeout if the target
  // never answers (after retries, when a fault model is active), or
  // kUnavailable while the target is in recovery or quarantined.
  base::Status Call(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                    RpcReply* reply, const CallOptions& options = {});

  // The page-fault RPC uses the cost accounting of paper table 5.2 (fat
  // stubs, hardware message + interrupts, arg/result copy, arg memory
  // alloc/free) instead of the standard profile, and records the breakdown
  // into ctx.fault_bd when attached.
  base::Status CallFault(Ctx& ctx, CellId target, MsgType type, const RpcArgs& args,
                         RpcReply* reply);

  // Serves one incoming request on this cell; used by Call on the target
  // side for intracell shortcuts and by tests that drive the server path
  // directly. Bypasses the replay cache (no sequence number).
  base::Status Serve(Ctx& server_ctx, MsgType type, const RpcArgs& args, RpcReply* reply);

  // Serves one sequenced request from `client`; consults the replay cache.
  // Public so oracle tests can deliver literal duplicate sequence numbers
  // without a fault model in the transport path.
  //
  // `client_epoch` is the caller's boot incarnation. A rebooted client
  // restarts its sequence numbers at 1, so its fresh calls could collide
  // with pre-crash replay entries; a higher epoch drops the client's cached
  // transport state, and a stale (lower, nonzero) epoch is rejected.
  // 0 means unversioned (direct test drivers) and bypasses the epoch check.
  base::Status ServeSequenced(Ctx& server_ctx, CellId client, uint64_t seq,
                              MsgType type, const RpcArgs& args, RpcReply* reply,
                              uint64_t client_epoch = 0);

  // True if a handler is registered for the message type.
  bool HasHandler(MsgType type) const {
    return handlers_.count(static_cast<uint32_t>(type)) > 0;
  }

  // True if the type was registered through an at-most-once variant.
  bool IsAtMostOnce(MsgType type) const;

  // Campaign fixture hook: with suppression off the replay cache still
  // tracks sequence numbers but re-executes duplicates, counting
  // at_most_once_violations for non-idempotent types.
  void set_duplicate_suppression(bool on) { duplicate_suppression_ = on; }
  bool duplicate_suppression() const { return duplicate_suppression_; }

  // Drops all transport state for a peer (sequence counter, health, replay
  // cache). Called when the peer is reintegrated after a reboot: its fresh
  // kernel restarts sequence numbers, so stale replay entries must not
  // suppress its new calls.
  void ForgetPeer(CellId peer);

  // Agreement vetoed an accusation against `suspect` (it is healthy). Resets
  // the exhaustion streak and converts any outstanding suspicion into a
  // bounded probation: traffic fails fast until the probation expires, then
  // the peer is automatically un-quarantined and may be hinted again. This
  // both rate-limits hint storms (which would otherwise accumulate voting
  // strikes against a healthy accuser) and bounds how long a quarantine can
  // outlive the agreement that cleared it.
  void OnSuspectCleared(CellId suspect);

  // True while calls to `peer` fail fast. Probation expiry is evaluated
  // lazily on the next call, so this reflects the last transport decision.
  bool quarantined(CellId peer) const;

  // Immediate quarantine escalation (failure-detector babble throttle): stop
  // sending to `peer` now instead of waiting for retry exhaustions.
  void QuarantinePeer(Ctx& ctx, CellId peer);

  const RpcCallStats& stats() const { return stats_; }

  // Test-only: oracles_test plants counter states (lost acks, quarantines
  // without hints) that are impossible to reach through the public API
  // without the very bug the oracle exists to catch.
  RpcCallStats& mutable_stats_for_test() { return stats_; }

 private:
  struct Registration {
    RpcHandler handler;
    bool queued = false;
    bool at_most_once = false;
  };
  struct PeerHealth {
    int consecutive_exhaustions = 0;
    bool hint_outstanding = false;  // One hint per agreement window.
    bool quarantined = false;
    Time quarantine_until = 0;
  };
  struct ReplayEntry {
    base::Status status;
    RpcReply reply;
  };

  // Dead-peer / exhausted-retries epilogue: charges the spin + context
  // switch, counts the timeout, traces, and raises at most one hint per
  // agreement window. `exhausted` marks retry exhaustion (vs. a vanished
  // node), which also feeds the quarantine escalation.
  base::Status TimeoutPath(Ctx& ctx, CellId target, bool exhausted);

  void Unquarantine(PeerHealth& health, CellId peer);

  Cell* cell_;
  HiveSystem* system_;
  const KernelCosts& costs_;
  std::unordered_map<uint32_t, Registration> handlers_;
  RpcCallStats stats_;
  int next_server_cpu_ = 0;  // Round-robin over the cell's CPUs for service.
  bool duplicate_suppression_ = true;
  std::unordered_map<int, PeerHealth> health_;        // Keyed by peer cell id.
  std::unordered_map<int, uint64_t> next_seq_;        // Keyed by peer cell id.
  // Last boot incarnation seen per client (server side). A bumped epoch
  // invalidates that client's replay cache; see ServeSequenced.
  std::unordered_map<int, uint64_t> peer_epoch_;
  // Per-client replay cache; ordered by sequence number so eviction drops
  // the oldest entry (sequence numbers are monotonic per client).
  std::unordered_map<int, std::map<uint64_t, ReplayEntry>> replay_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_RPC_H_
