// Spanning tasks (paper section 3.2): "Hive extends the UNIX process
// abstraction to span cell boundaries. A single parallel process can run
// threads on multiple cells at the same time... Each cell runs a separate
// local process containing the threads that are local to that cell. Shared
// process state such as the address space map is kept consistent among the
// component processes of the spanning task."
//
// The paper lists spanning tasks as not yet implemented (section 3.3); this
// is a working implementation of the architecture it describes: component
// processes on each cell, address-map updates broadcast to every component,
// and group semantics for recovery (the whole task dies if any member's cell
// does).

#ifndef HIVE_SRC_CORE_SPANNING_TASK_H_
#define HIVE_SRC_CORE_SPANNING_TASK_H_

#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/process.h"
#include "src/core/types.h"
#include "src/core/vnode.h"

namespace hive {

class HiveSystem;

class SpanningTask {
 public:
  // Creates one component process per entry of `cells`, with behaviours from
  // `factory(thread_index)`. All components share the task group (recovery
  // kills the whole task if any member cell fails).
  static base::Result<std::unique_ptr<SpanningTask>> Create(
      Ctx& ctx, HiveSystem* system, const std::vector<CellId>& cells,
      const std::function<std::unique_ptr<Behavior>(int)>& factory);

  // Maps a file region into EVERY component's address space, keeping the
  // shared address space map consistent (each remote component is updated
  // through an RPC-cost path). Each component opens the file on its own cell
  // so its generation snapshot and shadow vnode are cell-local.
  base::Status MapFileAll(Ctx& ctx, const std::string& path, VirtAddr va, uint64_t length,
                          bool writable);

  // Maps an anonymous region into every component.
  base::Status MapAnonAll(Ctx& ctx, VirtAddr va, uint64_t length, bool writable);

  // Signals every component (cross-cell kKillProc RPCs).
  void KillAll(Ctx& ctx);

  const std::vector<ProcId>& pids() const { return pids_; }
  int64_t task_group() const { return task_group_; }

  // True when every still-reachable component has finished.
  bool Finished() const;

 private:
  SpanningTask(HiveSystem* system, int64_t group) : system_(system), task_group_(group) {}

  HiveSystem* system_;
  int64_t task_group_;
  std::vector<ProcId> pids_;
  std::vector<CellId> cells_;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_SPANNING_TASK_H_
