#include "src/core/failure_detection.h"

#include <cstdlib>

#include "src/base/log.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/core/rpc.h"

namespace hive {

const char* HintReasonName(HintReason reason) {
  // Exhaustive: no default, so adding an enumerator without a name is a
  // compile error (-Wswitch) instead of a silent "unknown" in repro lines.
  switch (reason) {
    case HintReason::kRpcTimeout:
      return "rpc-timeout";
    case HintReason::kBusError:
      return "bus-error";
    case HintReason::kClockStale:
      return "clock-stale";
    case HintReason::kCarefulCheckFailed:
      return "careful-check-failed";
    case HintReason::kInvariantMismatch:
      return "invariant-mismatch";
    case HintReason::kClockDrift:
      return "clock-drift";
    case HintReason::kBabbling:
      return "babbling";
  }
  std::abort();  // Unreachable for in-range enumerators.
}

bool HintReasonFromName(std::string_view name, HintReason* out) {
  for (HintReason reason : kAllHintReasons) {
    if (name == HintReasonName(reason)) {
      *out = reason;
      return true;
    }
  }
  return false;
}

FailureDetector::FailureDetector(Cell* cell) : cell_(cell) {}

CellId FailureDetector::MonitoredPeer() const {
  // Ring over cells not yet *confirmed* failed: a silently-dead cell must
  // still be watched, or its failure would never be detected.
  const int n = cell_->system()->num_cells();
  for (int step = 1; step < n; ++step) {
    const CellId peer = (cell_->id() + step) % n;
    if (!cell_->system()->CellConfirmedFailed(peer)) {
      return peer;
    }
  }
  return kInvalidCell;
}

void FailureDetector::MonitorPeerClock(Ctx& ctx) {
  const CellId peer = MonitoredPeer();
  if (peer == kInvalidCell || peer == cell_->id()) {
    return;
  }
  Cell& peer_cell = cell_->system()->cell(peer);

  // The careful reference protocol bounds the cost of this check: 1.16 us on
  // the paper's hardware, of which 0.7 us is the remote miss (section 4.1).
  uint64_t value = 0;
  {
    CarefulRef careful(&ctx, &cell_->machine().mem(), cell_->costs(), peer,
                       peer_cell.mem_base(), peer_cell.mem_size());
    auto read = careful.ReadTagged<uint64_t>(peer_cell.clock_word_addr(), kTagClockWord);
    if (!read.ok()) {
      if (read.status().code() == base::StatusCode::kBusError) {
        // Memory unreachable: the classic dead-cell signature, no evidence
        // needed -- every voter's own probe fails the same way.
        RaiseHint(ctx, peer, HintReason::kBusError);
      } else {
        // The clock word is readable but its allocation header no longer
        // carries the expected tag: a live peer scribbled its own heap.
        // Attach evidence so voters re-run the tag check themselves.
        HintEvidence evidence;
        evidence.structure = EvidenceStructure::kClockWord;
        RaiseHintWithEvidence(ctx, peer, HintReason::kCarefulCheckFailed, evidence);
      }
      return;
    }
    value = *read;
  }

  auto last = last_seen_clock_.find(peer);
  if (last != last_seen_clock_.end() && last->second == value) {
    if (++stale_ticks_[peer] >= cell_->costs().clock_missed_ticks_threshold) {
      stale_ticks_[peer] = 0;
      drift_.erase(peer);  // A frozen clock is the stale check's finding.
      HintEvidence evidence;
      evidence.structure = EvidenceStructure::kClockWord;
      evidence.clock_value = value;
      RaiseHintWithEvidence(ctx, peer, HintReason::kClockStale, evidence);
      return;
    }
  } else {
    stale_ticks_[peer] = 0;
  }
  last_seen_clock_[peer] = value;

  // Drift window: a clock that keeps moving -- so the stale check never
  // fires -- but advances well below one increment per monitoring tick marks
  // a sick peer (run-away interrupt load, or a rogue cell feigning life).
  DriftWindow& window = drift_[peer];
  ++window.ticks;
  if (window.ticks == 1) {
    window.start_value = value;
    return;
  }
  if (window.ticks < kDriftWindowTicks) {
    return;
  }
  const uint64_t advance = value - window.start_value;
  const int intervals = window.ticks - 1;
  drift_.erase(peer);  // Restart the window either way.
  if (advance > 0 && advance * 4 < static_cast<uint64_t>(intervals) * 3) {
    HintEvidence evidence;
    evidence.structure = EvidenceStructure::kClockWord;
    evidence.clock_value = value - advance;  // Window start value.
    evidence.ticks_observed = intervals;
    RaiseHintWithEvidence(ctx, peer, HintReason::kClockDrift, evidence);
  }
}

void FailureDetector::RaiseHint(Ctx& ctx, CellId suspect, HintReason reason) {
  evidence_.erase(suspect);  // No evidence accompanies this hint.
  RaiseHintCommon(ctx, suspect, reason);
}

void FailureDetector::RaiseHintWithEvidence(Ctx& ctx, CellId suspect, HintReason reason,
                                            const HintEvidence& evidence) {
  HintEvidence& stored = evidence_[suspect];
  stored = evidence;
  stored.valid = true;
  stored.reason = reason;
  RaiseHintCommon(ctx, suspect, reason);
}

void FailureDetector::RaiseHintCommon(Ctx& ctx, CellId suspect, HintReason reason) {
  if (cell_->system()->smp_mode() || suspect == cell_->id()) {
    return;
  }
  ++hints_raised_;
  ++hints_by_reason_[static_cast<int>(reason)];
  cell_->Trace(TraceEvent::kHintRaised, static_cast<uint64_t>(suspect),
               static_cast<uint64_t>(reason));
  LOG(kDebug) << "cell " << cell_->id() << " raises hint against cell " << suspect << " ("
              << HintReasonName(reason) << ") at t=" << ctx.VirtualNow();
  cell_->system()->HandleAlert(ctx, cell_->id(), suspect, reason);
}

const HintEvidence& FailureDetector::EvidenceAgainst(CellId suspect) const {
  static const HintEvidence kNoEvidence;
  auto it = evidence_.find(suspect);
  return it == evidence_.end() ? kNoEvidence : it->second;
}

void FailureDetector::ClearEvidence(CellId suspect) { evidence_.erase(suspect); }

bool FailureDetector::RecordIncomingRequest(Ctx& ctx, CellId from) {
  if (cell_->system()->smp_mode() || from == cell_->id()) {
    return true;
  }
  if (babblers_.count(from) != 0) {
    // Throttled: reject at the dispatch boundary so a babbler costs the
    // victim O(1) per request instead of a full handler execution.
    return false;
  }
  RateWindow& window = incoming_[from];
  const Time now = ctx.VirtualNow();
  if (!window.open || now - window.start > kBabbleWindowNs) {
    window.open = true;
    window.start = now;
    window.count = 0;
  }
  if (++window.count < kBabbleThreshold) {
    return true;
  }
  babblers_.insert(from);
  // Escalate: quarantine outgoing traffic to the babbler immediately, then
  // raise the hint (agreement may confirm and excise it).
  cell_->rpc().QuarantinePeer(ctx, from);
  HintEvidence evidence;
  RaiseHintWithEvidence(ctx, from, HintReason::kBabbling, evidence);
  return false;
}

int FailureDetector::IncomingCount(CellId peer) const {
  auto it = incoming_.find(peer);
  return it == incoming_.end() ? 0 : it->second.count;
}

void FailureDetector::ForgetCell(CellId cell_id) {
  last_seen_clock_.erase(cell_id);
  stale_ticks_.erase(cell_id);
  drift_.erase(cell_id);
  incoming_.erase(cell_id);
  babblers_.erase(cell_id);
  evidence_.erase(cell_id);
}

}  // namespace hive
