#include "src/core/failure_detection.h"

#include "src/base/log.h"
#include "src/core/careful_ref.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"

namespace hive {

const char* HintReasonName(HintReason reason) {
  switch (reason) {
    case HintReason::kRpcTimeout:
      return "rpc-timeout";
    case HintReason::kBusError:
      return "bus-error";
    case HintReason::kClockStale:
      return "clock-stale";
    case HintReason::kCarefulCheckFailed:
      return "careful-check-failed";
    case HintReason::kInvariantMismatch:
      return "invariant-mismatch";
  }
  return "unknown";
}

FailureDetector::FailureDetector(Cell* cell) : cell_(cell) {}

CellId FailureDetector::MonitoredPeer() const {
  // Ring over cells not yet *confirmed* failed: a silently-dead cell must
  // still be watched, or its failure would never be detected.
  const int n = cell_->system()->num_cells();
  for (int step = 1; step < n; ++step) {
    const CellId peer = (cell_->id() + step) % n;
    if (!cell_->system()->CellConfirmedFailed(peer)) {
      return peer;
    }
  }
  return kInvalidCell;
}

void FailureDetector::MonitorPeerClock(Ctx& ctx) {
  const CellId peer = MonitoredPeer();
  if (peer == kInvalidCell || peer == cell_->id()) {
    return;
  }
  Cell& peer_cell = cell_->system()->cell(peer);

  // The careful reference protocol bounds the cost of this check: 1.16 us on
  // the paper's hardware, of which 0.7 us is the remote miss (section 4.1).
  uint64_t value = 0;
  {
    CarefulRef careful(&ctx, &cell_->machine().mem(), cell_->costs(), peer,
                       peer_cell.mem_base(), peer_cell.mem_size());
    auto read = careful.ReadTagged<uint64_t>(peer_cell.clock_word_addr(), kTagClockWord);
    if (!read.ok()) {
      RaiseHint(ctx, peer,
                read.status().code() == base::StatusCode::kBusError
                    ? HintReason::kBusError
                    : HintReason::kCarefulCheckFailed);
      return;
    }
    value = *read;
  }

  auto last = last_seen_clock_.find(peer);
  if (last != last_seen_clock_.end() && last->second == value) {
    if (++stale_ticks_[peer] >= cell_->costs().clock_missed_ticks_threshold) {
      stale_ticks_[peer] = 0;
      RaiseHint(ctx, peer, HintReason::kClockStale);
      return;
    }
  } else {
    stale_ticks_[peer] = 0;
  }
  last_seen_clock_[peer] = value;
}

void FailureDetector::RaiseHint(Ctx& ctx, CellId suspect, HintReason reason) {
  if (cell_->system()->smp_mode() || suspect == cell_->id()) {
    return;
  }
  ++hints_raised_;
  cell_->Trace(TraceEvent::kHintRaised, static_cast<uint64_t>(suspect),
               static_cast<uint64_t>(reason));
  LOG(kDebug) << "cell " << cell_->id() << " raises hint against cell " << suspect << " ("
              << HintReasonName(reason) << ") at t=" << ctx.VirtualNow();
  cell_->system()->HandleAlert(ctx, cell_->id(), suspect, reason);
}

void FailureDetector::ForgetCell(CellId cell_id) {
  last_seen_clock_.erase(cell_id);
  stale_ticks_.erase(cell_id);
}

}  // namespace hive
