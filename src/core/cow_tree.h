// Copy-on-write trees for anonymous pages (paper section 5.3).
//
// Anonymous pages are recorded at the current leaf of a copy-on-write tree.
// When a process forks, the leaf splits: parent and child each get a fresh
// leaf whose parent is the old leaf. A read fault searches up the tree for
// the copy created by the nearest ancestor that wrote the page before
// forking.
//
// In Hive the parent and child may live on different cells, so tree pointers
// cross cell boundaries. Tree nodes live in kernel-heap simulated memory;
// remote nodes are read with the careful reference protocol (the lookup never
// modifies interior nodes, so no wild-write vulnerability is created). When a
// page is found in a remote node, an RPC to the owning cell (always the data
// home for the anonymous page) sets up the export/import binding.

#ifndef HIVE_SRC_CORE_COW_TREE_H_
#define HIVE_SRC_CORE_COW_TREE_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/pfdat.h"
#include "src/core/types.h"

namespace hive {

class Cell;

// On-"disk" layout of a COW tree node in simulated kernel memory. All fields
// are accessed through PhysMem; this struct documents offsets.
struct CowNodeLayout {
  static constexpr uint64_t kNodeId = 0;        // u64
  static constexpr uint64_t kOwnerCell = 8;     // u32
  static constexpr uint64_t kEntryCount = 12;   // u32
  static constexpr uint64_t kParentAddr = 16;   // u64 (0 = root)
  static constexpr uint64_t kParentCell = 24;   // u32
  static constexpr uint64_t kPad = 28;          // u32
  static constexpr uint64_t kNextExt = 32;      // u64 (extension node, 0 = none)
  static constexpr uint64_t kEntries = 40;      // u64[kEntriesPerNode]
  static constexpr uint64_t kEntriesPerNode = 60;
  static constexpr uint64_t kNodeBytes = kEntries + 8 * kEntriesPerNode;  // 520
};

struct CowLookupResult {
  bool found = false;
  CellId owner_cell = kInvalidCell;  // Data home of the anonymous page.
  uint64_t node_id = 0;              // COW node the page is recorded in.
};

class CowManager {
 public:
  explicit CowManager(Cell* cell);

  // Allocates a fresh root node owned by this cell. Returns its address.
  base::Result<PhysAddr> CreateRoot(Ctx& ctx);

  // Allocates a leaf whose parent is (parent_addr on parent_cell).
  base::Result<PhysAddr> CreateChild(Ctx& ctx, PhysAddr parent_addr, CellId parent_cell);

  // Records that the anonymous page at `page_offset` now exists in the local
  // leaf at `leaf_addr` (allocating extension nodes as needed).
  base::Status RecordPage(Ctx& ctx, PhysAddr leaf_addr, uint64_t page_offset);

  // Searches from the local leaf up through (possibly remote) ancestors for
  // `page_offset`. Remote nodes are read with the careful reference protocol;
  // any careful failure raises a hint against the owning cell and surfaces as
  // kBadRemoteData/kBusError.
  base::Result<CowLookupResult> Lookup(Ctx& ctx, PhysAddr leaf_addr, uint64_t page_offset);

  // Frees a node (process exit). Does not recurse: each process frees the
  // nodes it owns.
  void FreeNode(Ctx& ctx, PhysAddr node_addr);

  // Defensive bound on nodes visited per lookup (corrupt trees may loop).
  static constexpr int kMaxVisit = 256;

  uint64_t remote_node_reads() const { return remote_node_reads_; }

 private:
  base::Result<PhysAddr> AllocNode(Ctx& ctx, PhysAddr parent_addr, CellId parent_cell);

  // Scans one local node (+extensions) for the offset.
  bool LocalNodeContains(PhysAddr node_addr, uint64_t page_offset, uint64_t* node_id_out);

  Cell* cell_;
  uint64_t next_node_id_;
  uint64_t remote_node_reads_ = 0;
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_COW_TREE_H_
