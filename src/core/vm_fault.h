// The top-level page fault path: resolves a virtual address against the
// process address map, pulls the page through the unified page cache (local,
// imported file page, or COW anonymous page) and installs the hardware
// mapping. This is the code path whose local/remote costs table 5.2 and
// table 7.3 measure.

#ifndef HIVE_SRC_CORE_VM_FAULT_H_
#define HIVE_SRC_CORE_VM_FAULT_H_

#include "src/base/status.h"
#include "src/core/context.h"
#include "src/core/process.h"
#include "src/core/types.h"

namespace hive {

// Handles a user access to `va`. Returns:
//  - OK: the access proceeds (mapping installed or already present).
//  - kPermissionDenied: write to a read-only region (SIGSEGV equivalent).
//  - kStaleGeneration: the file lost dirty pages in a recovery (EIO).
//  - kCellFailed / kTimeout / kBusError / kBadRemoteData: the page's home is
//    unreachable; the process observes an error.
base::Status PageFault(Ctx& ctx, Process& proc, VirtAddr va, bool write);

// Cost of a user access whose translation is already present (no kernel
// entry); charged by workload behaviours per touched page.
constexpr Time kMappedAccessNs = 0;

}  // namespace hive

#endif  // HIVE_SRC_CORE_VM_FAULT_H_
