// Execution context threaded through every kernel operation.
//
// Kernel operations run synchronously inside simulation events; the context
// accumulates the latency they charge. The caller (scheduler, RPC layer,
// clock handler) folds `elapsed` back into simulated time / CPU occupancy.

#ifndef HIVE_SRC_CORE_CONTEXT_H_
#define HIVE_SRC_CORE_CONTEXT_H_

#include "src/core/types.h"

namespace hive {

class Cell;

// Filled in by the remote page fault path when a benchmark attaches it to the
// context; reproduces the component breakdown of paper table 5.2.
struct FaultBreakdown {
  Time client_fs = 0;
  Time client_locking = 0;
  Time client_vm_misc = 0;
  Time client_import = 0;
  Time home_vm_misc = 0;
  Time home_export = 0;
  Time rpc_stub = 0;
  Time rpc_hw = 0;
  Time rpc_copy = 0;
  Time rpc_alloc = 0;
  Time total = 0;
};

struct Ctx {
  Cell* cell = nullptr;  // The cell whose kernel is executing.
  int cpu = -1;          // The processor executing this path.
  Time start = 0;        // Simulated time at entry.
  Time elapsed = 0;      // Latency charged so far by this operation.

  // Optional instrumentation sink for the table 5.2 benchmark.
  FaultBreakdown* fault_bd = nullptr;

  void Charge(Time ns) { elapsed += ns; }

  // The "current time" as seen by this execution: queue time plus work done.
  Time VirtualNow() const { return start + elapsed; }
};

}  // namespace hive

#endif  // HIVE_SRC_CORE_CONTEXT_H_
