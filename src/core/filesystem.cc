#include "src/core/filesystem.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/sim_profile.h"
#include "src/core/cell.h"
#include "src/core/hive_system.h"
#include "src/flash/bus_error.h"

namespace hive {
namespace {

// Client-side hash lookup from read()/write() (no trap overhead).
constexpr Time kSyscallPageLookupNs = 1200;
// Pages per kReadAhead / kWriteBehind RPC batch (bounded by the reply words).
constexpr uint64_t kBulkBatchPages = 8;

uint64_t ShadowKey(CellId data_home, VnodeId remote_id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(data_home)) << 48) ^
         static_cast<uint64_t>(remote_id);
}

}  // namespace

FileSystem::FileSystem(Cell* cell) : cell_(cell) {}

Vnode* FileSystem::FindVnode(VnodeId id) {
  auto it = vnodes_.find(id);
  return it == vnodes_.end() ? nullptr : &it->second;
}

const Vnode* FileSystem::FindVnode(VnodeId id) const {
  auto it = vnodes_.find(id);
  return it == vnodes_.end() ? nullptr : &it->second;
}

Vnode* FileSystem::FindShadowFor(CellId data_home, VnodeId remote_id) {
  auto it = shadow_index_.find(ShadowKey(data_home, remote_id));
  return it == shadow_index_.end() ? nullptr : FindVnode(it->second);
}

base::Result<FileId> FileSystem::Create(Ctx& ctx, const std::string& path,
                                        std::span<const uint8_t> initial_data) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  ctx.Charge(cell_->costs().create_local_ns);
  if (cell_->system()->LookupPath(path).ok()) {
    return base::AlreadyExists();
  }
  const VnodeId id = next_vnode_id_++;
  Vnode& vnode = vnodes_[id];
  vnode.id = id;
  vnode.path = path;
  vnode.size_bytes = initial_data.size();
  vnode.disk_image.assign(initial_data.begin(), initial_data.end());
  const FileId file_id{cell_->id(), id};
  cell_->system()->RegisterPath(path, file_id);
  return file_id;
}

base::Result<VnodeId> FileSystem::EnsureShadow(Ctx& ctx, CellId data_home, VnodeId remote_id,
                                               const std::string& path) {
  (void)ctx;
  if (Vnode* existing = FindShadowFor(data_home, remote_id)) {
    return existing->id;
  }
  const VnodeId id = next_vnode_id_++;
  Vnode& vnode = vnodes_[id];
  vnode.id = id;
  vnode.path = path;
  vnode.is_shadow = true;
  vnode.shadow_data_home = data_home;
  vnode.shadow_remote_id = remote_id;
  shadow_index_[ShadowKey(data_home, remote_id)] = id;
  return id;
}

base::Result<FileHandle> FileSystem::Open(Ctx& ctx, const std::string& path) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  ctx.Charge(cell_->costs().open_local_ns);

  auto file_id = cell_->system()->LookupPath(path);
  if (!file_id.ok()) {
    return file_id.status();
  }
  const CellId home = file_id->data_home;

  if (home == cell_->id()) {
    Vnode* vnode = FindVnode(file_id->vnode);
    if (vnode == nullptr) {
      return base::NotFound();
    }
    ++vnode->open_count;
    FileHandle handle;
    handle.data_home = home;
    handle.vnode = vnode->id;
    handle.local_vnode = vnode->id;
    handle.generation = vnode->generation;
    handle.size_bytes = vnode->size_bytes;
    return handle;
  }

  // Remote open: shadow vnode + queued RPC to the data home to validate the
  // file and fetch its generation and size.
  ctx.Charge(cell_->costs().open_remote_extra_ns);
  RpcArgs args;
  args.w[0] = static_cast<uint64_t>(file_id->vnode);
  RpcReply reply;
  RETURN_IF_ERROR_RESULT(
      cell_->rpc().Call(ctx, home, MsgType::kOpen, args, &reply, CallOptions{.fat_stub = true}));

  ASSIGN_OR_RETURN(const VnodeId shadow_id, EnsureShadow(ctx, home, file_id->vnode, path));
  FileHandle handle;
  handle.data_home = home;
  handle.vnode = file_id->vnode;
  handle.local_vnode = shadow_id;
  handle.generation = static_cast<Generation>(reply.w[0]);
  handle.size_bytes = reply.w[1];
  return handle;
}

void FileSystem::Close(Ctx& ctx, FileHandle& handle) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  ctx.Charge(cell_->costs().close_ns);
  if (handle.data_home == cell_->id()) {
    // Local close triggers write-behind of dirty pages.
    (void)Sync(ctx, handle.local_vnode);
    if (Vnode* vnode = FindVnode(handle.local_vnode)) {
      vnode->open_count = std::max(0, vnode->open_count - 1);
    }
  } else if (handle.valid()) {
    // Remote close: the data home flushes our dirty data.
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(handle.vnode);
    RpcReply reply;
    (void)cell_->rpc().Call(ctx, handle.data_home, MsgType::kSyncFile, args, &reply);
  }
  handle = FileHandle{};
}

base::Status FileSystem::Unlink(Ctx& ctx, const std::string& path) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  ctx.Charge(cell_->costs().close_ns);
  auto file_id = cell_->system()->LookupPath(path);
  if (!file_id.ok()) {
    return file_id.status();
  }
  cell_->system()->UnregisterPath(path);
  if (file_id->data_home != cell_->id()) {
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(file_id->vnode);
    RpcReply reply;
    return cell_->rpc().Call(ctx, file_id->data_home, MsgType::kUnlink, args, &reply,
                             CallOptions{.fat_stub = true});
  }
  return RemoveVnode(ctx, file_id->vnode);
}

base::Status FileSystem::RemoveVnode(Ctx& ctx, VnodeId vnode_id) {
  auto it = vnodes_.find(vnode_id);
  if (it == vnodes_.end() || it->second.is_shadow) {
    return base::NotFound();
  }
  // Drop every cached page of the file.
  std::vector<Pfdat*> cached;
  cell_->pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->HasLogicalBinding() && pfdat->lpid.kind == LogicalPageId::Kind::kFile &&
        pfdat->lpid.data_home == cell_->id() &&
        pfdat->lpid.object == static_cast<uint64_t>(vnode_id)) {
      cached.push_back(pfdat);
    }
  });
  for (Pfdat* pfdat : cached) {
    cell_->pfdats().RemoveHash(pfdat);
    pfdat->lpid = LogicalPageId{};
    pfdat->dirty = false;
    if (!pfdat->extended && pfdat->refcount == 0 && !pfdat->loaned_out) {
      cell_->allocator().ReleaseToFreeList(pfdat);
    }
    ctx.Charge(500);
  }
  vnodes_.erase(it);
  return base::OkStatus();
}

base::Status FileSystem::Rename(Ctx& ctx, const std::string& from, const std::string& to) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  ctx.Charge(cell_->costs().close_ns);
  return cell_->system()->RenamePath(from, to);
}

base::Result<Pfdat*> FileSystem::GetPageLocal(Ctx& ctx, VnodeId vnode_id, uint64_t page_index,
                                              bool want_write, bool fill_from_disk,
                                              CellId place_near) {
  Vnode* vnode = FindVnode(vnode_id);
  if (vnode == nullptr || vnode->is_shadow) {
    return base::NotFound();
  }
  const uint64_t page_size = cell_->machine().mem().page_size();
  LogicalPageId lpid;
  lpid.kind = LogicalPageId::Kind::kFile;
  lpid.data_home = cell_->id();
  lpid.object = static_cast<uint64_t>(vnode_id);
  lpid.page_offset = page_index;

  Pfdat* pfdat = cell_->pfdats().FindByLpid(lpid);
  if (pfdat == nullptr) {
    AllocConstraints constraints;  // File cache pages may live anywhere.
    if (place_near != kInvalidCell && place_near != cell_->id() &&
        cell_->system()->options().numa_placement) {
      constraints.preferred_cell = place_near;
    }
    ASSIGN_OR_RETURN(pfdat, cell_->allocator().AllocFrame(ctx, constraints));
    // The allocator's reference transfers to this caller (counted below);
    // cached pages at refcount 0 are reclaimable by the clock hand.
    pfdat->refcount = 0;
    pfdat->lpid = lpid;
    pfdat->generation = vnode->generation;
    pfdat->salvage_sum_valid = false;  // Fresh binding: no content baseline yet.
    cell_->pfdats().InsertHash(pfdat);

    if (fill_from_disk) {
      const uint64_t byte_off = page_index * page_size;
      if (byte_off < vnode->disk_image.size()) {
        // DMA the disk block into the frame (firewall-checked as a write from
        // this node; borrowed frames were granted to us at loan time).
        const uint64_t n = std::min<uint64_t>(page_size, vnode->disk_image.size() - byte_off);
        ctx.Charge(cell_->machine().disk(cell_->first_node()).AccessTime(byte_off, n));
        cell_->machine().mem().Write(
            ctx.cpu, pfdat->frame,
            std::span<const uint8_t>(vnode->disk_image.data() + byte_off, n));
      }
      // Pages past the on-disk image are zero-filled (frames are zeroed when
      // reused; newly booted memory is zero).
    }
  }
  if (want_write) {
    pfdat->dirty = true;
  }
  pfdat->refcount++;
  return pfdat;
}

base::Result<PhysAddr> FileSystem::ExportPage(Ctx& ctx, VnodeId vnode_id, uint64_t page_index,
                                              CellId client, bool writable,
                                              Generation* gen_out) {
  // export(): record the client cell in the data home's pfdat, which prevents
  // deallocation and feeds the failure recovery algorithms; modify the
  // firewall if write access is requested (paper table 5.1 / section 5.2).
  ctx.Charge(cell_->costs().fault_export_ns);
  if (ctx.fault_bd != nullptr) {
    ctx.fault_bd->home_export += cell_->costs().fault_export_ns;
  }
  ASSIGN_OR_RETURN(Pfdat * pfdat,
                   GetPageLocal(ctx, vnode_id, page_index, /*want_write=*/false,
                                /*fill_from_disk=*/true, /*place_near=*/client));
  // CC-NUMA placement (sections 5.5/5.6): on the first writable export of a
  // locally-framed page with no other users, migrate it into a frame
  // borrowed from the client's memory so the client's stores become local.
  // The borrowed frame is "simultaneously loaned out and imported back".
  if (writable && cell_->system()->options().numa_placement && client != cell_->id() &&
      cell_->OwnsAddr(pfdat->frame) && pfdat->exported_to == 0 &&
      pfdat->exported_writable == 0 && pfdat->refcount == 1) {
    auto migrated = MigratePageNear(ctx, pfdat, client);
    if (migrated.ok()) {
      pfdat = *migrated;
    }
  }
  pfdat->exported_to |= 1ull << client;
  // The export record alone is not proof of write access: under the
  // single-writer ablation policy another cell's grant may have evicted ours.
  const bool hw_granted =
      (pfdat->exported_writable & (1ull << client)) != 0 &&
      (!cell_->OwnsAddr(pfdat->frame) ||
       cell_->machine().firewall().MayWrite(
           cell_->machine().mem().PfnOfAddr(pfdat->frame),
           cell_->system()->cell(client).FirstCpu()));
  if (writable && !hw_granted) {
    pfdat->exported_writable |= 1ull << client;
    // Conservatively dirty: the client writes to the frame without telling us.
    pfdat->dirty = true;
    Vnode* vnode = FindVnode(vnode_id);
    const uint64_t page_size = cell_->machine().mem().page_size();
    vnode->size_bytes = std::max(vnode->size_bytes, (page_index + 1) * page_size);

    const Pfn pfn = cell_->machine().mem().PfnOfAddr(pfdat->frame);
    if (cell_->OwnsAddr(pfdat->frame)) {
      RETURN_IF_ERROR_RESULT(cell_->firewall_manager().GrantWrite(ctx, pfn, client));
    } else {
      // The frame was borrowed: only the memory home can change its firewall
      // bits (paper section 5.4).
      RpcArgs args;
      args.w[0] = pfdat->frame;
      args.w[1] = static_cast<uint64_t>(client);
      RpcReply reply;
      RETURN_IF_ERROR_RESULT(cell_->rpc().Call(ctx, pfdat->borrowed_from,
                                               MsgType::kGrantFirewall, args, &reply));
    }
  }
  if (writable) {
    // Baseline snapshot at grant time: the recovery salvage walk compares
    // against this to prove the client never scribbled the page.
    RecordSalvageSum(pfdat);
  }
  // The export keeps a reference until every client releases.
  if (gen_out != nullptr) {
    *gen_out = pfdat->generation;
  }
  return pfdat->frame;
}

base::Result<Pfdat*> FileSystem::ImportRemotePage(Ctx& ctx, const FileHandle& handle,
                                                  uint64_t page_index, bool want_write) {
  ++remote_faults_;
  const KernelCosts& costs = cell_->costs();

  // Client cell components of table 5.2.
  ctx.Charge(costs.fault_client_fs_ns + costs.fault_client_locking_ns +
             costs.fault_client_vm_misc_ns);
  if (ctx.fault_bd != nullptr) {
    ctx.fault_bd->client_fs += costs.fault_client_fs_ns;
    ctx.fault_bd->client_locking += costs.fault_client_locking_ns;
    ctx.fault_bd->client_vm_misc += costs.fault_client_vm_misc_ns;
  }

  RpcArgs args;
  args.w[0] = static_cast<uint64_t>(handle.vnode);
  args.w[1] = page_index;
  args.w[2] = want_write ? 1 : 0;
  args.w[3] = static_cast<uint64_t>(cell_->id());
  args.w[4] = handle.generation;
  RpcReply reply;
  RETURN_IF_ERROR_RESULT(
      cell_->rpc().CallFault(ctx, handle.data_home, MsgType::kPageFault, args, &reply));

  const PhysAddr frame = reply.w[0];
  const Generation gen = static_cast<Generation>(reply.w[1]);

  // Sanity-check everything received from the other cell: the frame must be a
  // page-aligned address inside memory the data home could legitimately hand
  // us (its own range or a range it borrowed -- i.e. not *our* kernel range).
  if (frame % cell_->machine().mem().page_size() != 0 ||
      !cell_->machine().mem().ValidRange(frame, cell_->machine().mem().page_size()) ||
      cell_->heap().Contains(frame)) {
    cell_->detector().RaiseHint(ctx, handle.data_home, HintReason::kCarefulCheckFailed);
    return base::BadRemoteData();
  }

  // import(): allocate an extended pfdat and insert it into the hash so
  // further faults hit locally (paper section 5.2).
  ctx.Charge(costs.fault_import_ns);
  if (ctx.fault_bd != nullptr) {
    ctx.fault_bd->client_import += costs.fault_import_ns;
  }
  LogicalPageId lpid;
  lpid.kind = LogicalPageId::Kind::kFile;
  lpid.data_home = handle.data_home;
  lpid.object = static_cast<uint64_t>(handle.vnode);
  lpid.page_offset = page_index;

  Pfdat* pfdat = cell_->pfdats().FindByFrame(frame);
  if (pfdat == nullptr) {
    pfdat = cell_->pfdats().AddExtended(frame);
  } else if (pfdat->HasLogicalBinding()) {
    // The frame is already bound (e.g. a frame we loaned out and now import
    // back, paper section 5.5): reuse the pre-existing pfdat.
    cell_->pfdats().RemoveHash(pfdat);
  }
  pfdat->lpid = lpid;
  pfdat->imported_from = handle.data_home;
  pfdat->import_writable = want_write;
  pfdat->generation = gen;
  pfdat->refcount++;
  cell_->pfdats().InsertHash(pfdat);
  return pfdat;
}

base::Result<Pfdat*> FileSystem::GetPage(Ctx& ctx, const FileHandle& handle,
                                         uint64_t page_index, bool want_write,
                                         AccessPath path) {
  LogicalPageId lpid;
  lpid.kind = LogicalPageId::Kind::kFile;
  lpid.data_home = handle.data_home;
  lpid.object = static_cast<uint64_t>(handle.vnode);
  lpid.page_offset = page_index;

  Pfdat* pfdat = cell_->pfdats().FindByLpid(lpid);
  if (pfdat != nullptr) {
    // Hit in the local (client or home) page cache.
    if (handle.generation != pfdat->generation) {
      return base::StaleGeneration();
    }
    ctx.Charge(path == AccessPath::kFault ? cell_->costs().fault_local_ns
                                          : kSyscallPageLookupNs);
    ++local_fault_hits_;
    if (want_write && pfdat->imported_from != kInvalidCell && !pfdat->import_writable) {
      // Upgrade to a writable import.
      RpcArgs args;
      args.w[0] = static_cast<uint64_t>(handle.vnode);
      args.w[1] = page_index;
      args.w[2] = static_cast<uint64_t>(cell_->id());
      RpcReply reply;
      RETURN_IF_ERROR_RESULT(cell_->rpc().Call(ctx, handle.data_home, MsgType::kUpgradeWrite,
                                               args, &reply, CallOptions{.fat_stub = true}));
      pfdat->import_writable = true;
    }
    if (want_write && pfdat->imported_from == kInvalidCell) {
      pfdat->dirty = true;
    }
    pfdat->refcount++;
    return pfdat;
  }

  if (handle.data_home == cell_->id()) {
    if (path == AccessPath::kFault) {
      ctx.Charge(cell_->costs().fault_local_ns);
    }
    Vnode* vnode = FindVnode(handle.vnode);
    if (vnode == nullptr) {
      return base::NotFound();
    }
    if (handle.generation != vnode->generation) {
      return base::StaleGeneration();
    }
    return GetPageLocal(ctx, handle.vnode, page_index, want_write);
  }

  return ImportRemotePage(ctx, handle, page_index, want_write);
}

void FileSystem::ReleasePage(Ctx& ctx, Pfdat* pfdat) {
  (void)ctx;
  CHECK_GT(pfdat->refcount, 0);
  pfdat->refcount--;
  // Pages stay cached at refcount 0; imported bindings are dropped at process
  // teardown / recovery (release()), local pages are reclaimed under memory
  // pressure by the clock hand (not modelled: memory is provisioned to fit).
}

base::Result<Pfdat*> FileSystem::MigratePageNear(Ctx& ctx, Pfdat* pfdat, CellId client) {
  AllocConstraints constraints;
  constraints.preferred_cell = client;
  auto borrowed = cell_->allocator().AllocFrame(ctx, constraints);
  if (!borrowed.ok()) {
    return borrowed.status();  // Client out of frames: keep the local copy.
  }
  Pfdat* dest = *borrowed;
  if (cell_->system()->CellOfAddr(dest->frame) != client) {
    dest->refcount = 0;
    cell_->allocator().FreeFrame(ctx, dest);
    return base::ResourceExhausted();
  }
  // Copy the page into the borrowed frame (our stores are permitted there:
  // the loan granted this cell's processors).
  const uint64_t page_size = cell_->machine().mem().page_size();
  std::vector<uint8_t> buf(page_size);
  cell_->machine().mem().Read(ctx.cpu, pfdat->frame, std::span<uint8_t>(buf));
  cell_->machine().mem().Write(ctx.cpu, dest->frame, std::span<const uint8_t>(buf));
  ctx.Charge(static_cast<Time>(page_size / 128) * cell_->costs().remote_miss_ns / 2);

  // Move the logical binding onto the borrowed frame and free the old one.
  cell_->pfdats().RemoveHash(pfdat);
  dest->lpid = pfdat->lpid;
  dest->generation = pfdat->generation;
  dest->dirty = pfdat->dirty;
  dest->refcount = pfdat->refcount;
  dest->salvage_sum = pfdat->salvage_sum;
  dest->salvage_gen = pfdat->salvage_gen;
  dest->salvage_sum_valid = pfdat->salvage_sum_valid;
  cell_->pfdats().InsertHash(dest);
  pfdat->lpid = LogicalPageId{};
  pfdat->dirty = false;
  pfdat->refcount = 0;
  cell_->allocator().ReleaseToFreeList(pfdat);
  cell_->Trace(TraceEvent::kPageMigrated, pfdat->frame, dest->frame);
  return dest;
}

void FileSystem::DropImport(Ctx& ctx, Pfdat* pfdat) {
  CHECK_NE(pfdat->imported_from, kInvalidCell);
  CHECK_EQ(pfdat->refcount, 0);
  RpcArgs args;
  args.w[0] = pfdat->lpid.object;
  args.w[1] = pfdat->lpid.page_offset;
  args.w[2] = static_cast<uint64_t>(cell_->id());
  args.w[3] = static_cast<uint64_t>(pfdat->lpid.kind);
  RpcReply reply;
  // Best effort: if the home is dead or in recovery it cleans up on its own.
  (void)cell_->rpc().Call(ctx, pfdat->imported_from, MsgType::kReleasePage, args, &reply);
  if (!pfdat->extended || pfdat->borrowed_from != kInvalidCell) {
    // A loaned-out local frame imported back (section 5.5 pre-existing pfdat)
    // or a borrowed frame: only drop the logical binding.
    cell_->pfdats().RemoveHash(pfdat);
    pfdat->imported_from = kInvalidCell;
    pfdat->import_writable = false;
    pfdat->lpid = LogicalPageId{};
    return;
  }
  cell_->pfdats().RemoveExtended(pfdat);
}

base::Status FileSystem::Read(Ctx& ctx, const FileHandle& handle, uint64_t offset,
                              std::span<uint8_t> out) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  const uint64_t page_size = cell_->machine().mem().page_size();
  const bool remote = handle.data_home != cell_->id();
  const KernelCosts& costs = cell_->costs();

  std::unordered_map<uint64_t, PhysAddr> bulk_frames;  // page index -> home frame.
  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t byte = offset + done;
    const uint64_t page = byte / page_size;
    const uint64_t in_page = byte % page_size;
    const uint64_t chunk = std::min<uint64_t>(page_size - in_page, out.size() - done);

    ctx.Charge(costs.file_read_per_page_ns);
    PhysAddr frame = flash::kInvalidPhysAddr;

    // Imported or local pages hit the local hash; otherwise the remote bulk
    // path reads straight out of the data home's page cache.
    LogicalPageId lpid;
    lpid.kind = LogicalPageId::Kind::kFile;
    lpid.data_home = handle.data_home;
    lpid.object = static_cast<uint64_t>(handle.vnode);
    lpid.page_offset = page;
    Pfdat* pfdat = cell_->pfdats().FindByLpid(lpid);
    if (pfdat != nullptr) {
      if (handle.generation != pfdat->generation) {
        return base::StaleGeneration();
      }
      frame = pfdat->frame;
    } else if (!remote) {
      Vnode* vnode = FindVnode(handle.vnode);
      if (vnode == nullptr) {
        return base::NotFound();
      }
      if (handle.generation != vnode->generation) {
        return base::StaleGeneration();
      }
      auto got = GetPageLocal(ctx, handle.vnode, page, /*want_write=*/false);
      RETURN_IF_ERROR(got.status());
      frame = (*got)->frame;
      (*got)->refcount--;
    } else {
      ctx.Charge(costs.file_read_remote_extra_ns);
      auto it = bulk_frames.find(page);
      if (it == bulk_frames.end()) {
        // Fetch the next batch of data-home frame addresses with one RPC.
        const uint64_t last_page = (offset + out.size() - 1) / page_size;
        const uint64_t count = std::min<uint64_t>(kBulkBatchPages, last_page - page + 1);
        RpcArgs args;
        args.w[0] = static_cast<uint64_t>(handle.vnode);
        args.w[1] = page;
        args.w[2] = count;
        args.w[3] = handle.generation;
        RpcReply reply;
        base::Status status = cell_->rpc().Call(ctx, handle.data_home, MsgType::kReadAhead,
                                                args, &reply, CallOptions{.fat_stub = true});
        RETURN_IF_ERROR(status);
        const uint64_t got = std::min<uint64_t>(reply.w[0], kBulkBatchPages);
        for (uint64_t i = 0; i < got; ++i) {
          const PhysAddr f = reply.w[1 + i];
          if (f % page_size != 0 || !cell_->machine().mem().ValidRange(f, page_size)) {
            cell_->detector().RaiseHint(ctx, handle.data_home,
                                        HintReason::kCarefulCheckFailed);
            return base::BadRemoteData();
          }
          bulk_frames[page + i] = f;
        }
        it = bulk_frames.find(page);
        if (it == bulk_frames.end()) {
          return base::IoError();
        }
      }
      frame = it->second;
    }

    try {
      cell_->machine().mem().Read(ctx.cpu, frame + in_page,
                                  out.subspan(done, chunk));
      // hive-lint: allow(R3): careful-read boundary for bulk page copies; raises a hint and converts to Status.
    } catch (const flash::BusError&) {
      // The data home's memory vanished mid-copy.
      cell_->detector().RaiseHint(ctx, handle.data_home, HintReason::kBusError);
      return base::IoError();
    }
    done += chunk;
  }
  return base::OkStatus();
}

base::Status FileSystem::Write(Ctx& ctx, const FileHandle& handle, uint64_t offset,
                               std::span<const uint8_t> data) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  cell_->ChargeSyscallTax(ctx);
  const uint64_t page_size = cell_->machine().mem().page_size();
  const bool remote = handle.data_home != cell_->id();
  const KernelCosts& costs = cell_->costs();

  if (!remote) {
    uint64_t done = 0;
    while (done < data.size()) {
      const uint64_t byte = offset + done;
      const uint64_t page = byte / page_size;
      const uint64_t in_page = byte % page_size;
      const uint64_t chunk = std::min<uint64_t>(page_size - in_page, data.size() - done);
      ctx.Charge(costs.file_write_per_page_ns);

      Vnode* vnode = FindVnode(handle.vnode);
      if (vnode == nullptr) {
        return base::NotFound();
      }
      if (handle.generation != vnode->generation) {
        return base::StaleGeneration();
      }
      auto got = GetPageLocal(ctx, handle.vnode, page, /*want_write=*/true);
      RETURN_IF_ERROR(got.status());
      Pfdat* pfdat = *got;
      cell_->machine().mem().Write(ctx.cpu, pfdat->frame + in_page,
                                   data.subspan(done, chunk));
      vnode->size_bytes = std::max(vnode->size_bytes, byte + chunk);
      RecordSalvageSum(pfdat);
      pfdat->refcount--;
      done += chunk;
    }
    return base::OkStatus();
  }

  // Remote write: stage the data in local kernel frames and pass them by
  // reference; the data home copies into its own page cache (its stores are
  // local, so no firewall grant is needed for write() traffic). Full pages go
  // in batches of kBulkBatchPages per RPC; unaligned edges go one at a time.
  AllocConstraints staging;
  staging.kernel_internal = true;
  std::vector<Pfdat*> stages;
  for (uint64_t i = 0; i < kBulkBatchPages; ++i) {
    auto stage = cell_->allocator().AllocFrame(ctx, staging);
    if (!stage.ok()) {
      for (Pfdat* s : stages) {
        s->refcount = 0;
        cell_->allocator().FreeFrame(ctx, s);
      }
      return stage.status();
    }
    stages.push_back(*stage);
  }
  auto release_stages = [&] {
    for (Pfdat* s : stages) {
      s->refcount = 0;
      cell_->allocator().FreeFrame(ctx, s);
    }
  };

  uint64_t done = 0;
  base::Status status = base::OkStatus();
  while (done < data.size() && status.ok()) {
    const uint64_t byte = offset + done;
    const uint64_t page = byte / page_size;
    const uint64_t in_page = byte % page_size;

    if (in_page == 0 && data.size() - done >= page_size) {
      // Batched full pages.
      const uint64_t batch = std::min<uint64_t>((data.size() - done) / page_size,
                                                kBulkBatchPages);
      RpcArgs args;
      args.w[0] = static_cast<uint64_t>(handle.vnode);
      args.w[1] = page;
      args.w[2] = batch;
      args.w[3] = handle.generation;
      for (uint64_t i = 0; i < batch; ++i) {
        ctx.Charge(costs.file_write_per_page_ns + costs.file_write_remote_extra_ns);
        cell_->machine().mem().Write(ctx.cpu, stages[i]->frame,
                                     data.subspan(done + i * page_size, page_size));
        args.w[4 + i] = stages[i]->frame;
      }
      RpcReply reply;
      status = cell_->rpc().Call(ctx, handle.data_home, MsgType::kWriteBehindBulk, args,
                                 &reply, CallOptions{.fat_stub = true});
      done += batch * page_size;
      continue;
    }

    // Unaligned edge: single partial page.
    const uint64_t chunk = std::min<uint64_t>(page_size - in_page, data.size() - done);
    ctx.Charge(costs.file_write_per_page_ns + costs.file_write_remote_extra_ns);
    cell_->machine().mem().Write(ctx.cpu, stages[0]->frame, data.subspan(done, chunk));
    RpcArgs args;
    args.w[0] = static_cast<uint64_t>(handle.vnode);
    args.w[1] = page;
    args.w[2] = in_page;
    args.w[3] = chunk;
    args.w[4] = stages[0]->frame;
    args.w[5] = handle.generation;
    RpcReply reply;
    status = cell_->rpc().Call(ctx, handle.data_home, MsgType::kWriteBehind, args, &reply,
                               CallOptions{.fat_stub = true, .bulk_bytes = chunk});
    done += chunk;
  }
  release_stages();
  return status;
}

base::Status FileSystem::Sync(Ctx& ctx, VnodeId local_vnode) {
  base::SimProfileScope profile_scope(base::SimSubsystem::kFilesystem);
  Vnode* vnode = FindVnode(local_vnode);
  if (vnode == nullptr || vnode->is_shadow) {
    return base::NotFound();
  }
  const uint64_t page_size = cell_->machine().mem().page_size();
  const uint64_t pages = (vnode->size_bytes + page_size - 1) / page_size;
  if (vnode->disk_image.size() < vnode->size_bytes) {
    vnode->disk_image.resize(vnode->size_bytes, 0);
  }
  for (uint64_t page = 0; page < pages; ++page) {
    LogicalPageId lpid;
    lpid.kind = LogicalPageId::Kind::kFile;
    lpid.data_home = cell_->id();
    lpid.object = static_cast<uint64_t>(local_vnode);
    lpid.page_offset = page;
    Pfdat* pfdat = cell_->pfdats().FindByLpid(lpid);
    if (pfdat == nullptr || !pfdat->dirty) {
      continue;
    }
    const uint64_t byte = page * page_size;
    const uint64_t n = std::min<uint64_t>(page_size, vnode->size_bytes - byte);
    try {
      cell_->machine().mem().DmaRead(
          cell_->first_node(), pfdat->frame,
          std::span<uint8_t>(vnode->disk_image.data() + byte, n));
      // hive-lint: allow(R3): write-behind DMA from a possibly borrowed frame; loss is contained per page.
    } catch (const flash::BusError&) {
      // The frame (borrowed) is gone; the page is lost.
      NoteDirtyPageLost(local_vnode);
      continue;
    }
    // Write-behind is asynchronous; we charge the disk occupancy, not the
    // caller's latency.
    (void)cell_->machine().disk(cell_->first_node()).AccessTime(byte, n);
    // Pages still write-shared with other cells stay conservatively dirty.
    if (pfdat->exported_writable == 0) {
      pfdat->dirty = false;
    }
  }
  return base::OkStatus();
}

bool FileSystem::PageChecksum(PhysAddr frame, uint64_t* sum_out) const {
  const uint64_t page_size = cell_->machine().mem().page_size();
  std::vector<uint8_t> buf(page_size);
  try {
    cell_->machine().mem().DmaRead(cell_->first_node(), frame, std::span<uint8_t>(buf));
    // hive-lint: allow(R3): checksum DMA of a frame that may live in failed memory; converted to a bool result.
  } catch (const flash::BusError&) {
    return false;
  }
  // FNV-1a over the page bytes.
  uint64_t h = 0xCBF29CE484222325ull;
  for (uint8_t b : buf) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  *sum_out = h;
  return true;
}

void FileSystem::RecordSalvageSum(Pfdat* pfdat) {
  if (!cell_->system()->options().salvage_pages) {
    return;
  }
  // Only pages another cell can scribble need a baseline: read-only exports
  // keep their content by construction and are never discard candidates.
  if (pfdat->exported_writable == 0) {
    pfdat->salvage_sum_valid = false;
    return;
  }
  uint64_t sum = 0;
  if (!PageChecksum(pfdat->frame, &sum)) {
    pfdat->salvage_sum_valid = false;
    return;
  }
  pfdat->salvage_sum = sum;
  pfdat->salvage_gen = pfdat->generation;
  pfdat->salvage_sum_valid = true;
}

void FileSystem::NoteDirtyPageLost(VnodeId vnode_id) {
  Vnode* vnode = FindVnode(vnode_id);
  if (vnode != nullptr) {
    ++vnode->generation;
  }
}

int FileSystem::DropImportsFrom(Ctx& ctx, CellId failed_cell) {
  (void)ctx;
  std::vector<Pfdat*> to_drop;
  cell_->pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->extended && pfdat->imported_from == failed_cell &&
        pfdat->borrowed_from == kInvalidCell) {
      to_drop.push_back(pfdat);
    }
  });
  for (Pfdat* pfdat : to_drop) {
    cell_->pfdats().RemoveExtended(pfdat);
  }
  return static_cast<int>(to_drop.size());
}

int FileSystem::DropAllImports(Ctx& ctx) {
  (void)ctx;
  std::vector<Pfdat*> to_drop;
  cell_->pfdats().ForEach([&](Pfdat* pfdat) {
    if (pfdat->extended && pfdat->imported_from != kInvalidCell &&
        pfdat->borrowed_from == kInvalidCell) {
      to_drop.push_back(pfdat);
    } else if (pfdat->imported_from != kInvalidCell) {
      // A loaned-back import on a borrowed pfdat: just drop the binding.
      cell_->pfdats().RemoveHash(pfdat);
      pfdat->imported_from = kInvalidCell;
      pfdat->import_writable = false;
      pfdat->lpid = LogicalPageId{};
    }
  });
  for (Pfdat* pfdat : to_drop) {
    cell_->pfdats().RemoveExtended(pfdat);
  }
  return static_cast<int>(to_drop.size());
}

void FileSystem::OnReboot() {
  for (auto it = vnodes_.begin(); it != vnodes_.end();) {
    if (it->second.is_shadow) {
      it = vnodes_.erase(it);
    } else {
      it->second.open_count = 0;
      // In-memory size reverts to what reached the disk before the failure.
      it->second.size_bytes = it->second.disk_image.size();
      ++it;
    }
  }
  shadow_index_.clear();
}

void FileSystem::RegisterHandlers() {
  RpcLayer& rpc = cell_->rpc();
  const uint64_t page_size = cell_->machine().mem().page_size();

  // Page fault service: interrupt-level so faults that hit in the file cache
  // avoid the queued path (paper section 4.3 / 5.2).
  rpc.RegisterInterrupt(
      MsgType::kPageFault,
      [this, page_size](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t page = args.w[1];
        const bool writable = args.w[2] != 0;
        const CellId client = static_cast<CellId>(args.w[3]);
        const Generation client_gen = static_cast<Generation>(args.w[4]);
        if (client < 0 || client >= cell_->system()->num_cells() ||
            client == cell_->id()) {
          return base::InvalidArgument();
        }
        Vnode* vnode = FindVnode(vnode_id);
        if (vnode == nullptr || vnode->is_shadow) {
          return base::NotFound();
        }
        if (client_gen != vnode->generation) {
          return base::StaleGeneration();
        }
        sctx.Charge(cell_->costs().fault_home_vm_misc_ns);
        if (sctx.fault_bd != nullptr) {
          sctx.fault_bd->home_vm_misc += cell_->costs().fault_home_vm_misc_ns;
        }
        // A fault that cannot be serviced at interrupt level (cold page ->
        // disk I/O) falls back to the queued service path (section 6).
        LogicalPageId lpid;
        lpid.kind = LogicalPageId::Kind::kFile;
        lpid.data_home = cell_->id();
        lpid.object = static_cast<uint64_t>(vnode_id);
        lpid.page_offset = page;
        if (cell_->pfdats().FindByLpid(lpid) == nullptr ||
            cell_->costs().force_queued_fault_rpc) {
          sctx.Charge(cell_->costs().rpc_queue_service_ns);
        }
        Generation gen = 0;
        ASSIGN_OR_RETURN(const PhysAddr frame,
                         ExportPage(sctx, vnode_id, page, client, writable, &gen));
        reply->w[0] = frame;
        reply->w[1] = gen;
        reply->w[2] = vnode->size_bytes;
        return base::OkStatus();
      });

  rpc.RegisterInterrupt(
      MsgType::kUpgradeWrite,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t page = args.w[1];
        const CellId client = static_cast<CellId>(args.w[2]);
        if (client < 0 || client >= cell_->system()->num_cells()) {
          return base::InvalidArgument();
        }
        Generation gen = 0;
        return ExportPage(sctx, vnode_id, page, client, /*writable=*/true, &gen).status();
      });

  rpc.RegisterInterrupt(
      MsgType::kReleasePage,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t page = args.w[1];
        const CellId client = static_cast<CellId>(args.w[2]);
        if (client < 0 || client >= cell_->system()->num_cells()) {
          return base::InvalidArgument();
        }
        LogicalPageId lpid;
        lpid.kind = static_cast<LogicalPageId::Kind>(args.w[3]);
        lpid.data_home = cell_->id();
        lpid.object = static_cast<uint64_t>(vnode_id);
        lpid.page_offset = page;
        Pfdat* pfdat = cell_->pfdats().FindByLpid(lpid);
        if (pfdat == nullptr) {
          return base::NotFound();
        }
        const uint64_t bit = 1ull << client;
        if ((pfdat->exported_writable & bit) != 0) {
          pfdat->exported_writable &= ~bit;
          if (cell_->OwnsAddr(pfdat->frame)) {
            (void)cell_->firewall_manager().RevokeWrite(
                sctx, cell_->machine().mem().PfnOfAddr(pfdat->frame), client);
          }
        }
        pfdat->exported_to &= ~bit;
        return base::OkStatus();
      });

  rpc.RegisterQueued(
      MsgType::kOpen,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)sctx;
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        Vnode* vnode = FindVnode(vnode_id);
        if (vnode == nullptr || vnode->is_shadow) {
          return base::NotFound();
        }
        ++vnode->open_count;
        reply->w[0] = vnode->generation;
        reply->w[1] = vnode->size_bytes;
        return base::OkStatus();
      });

  rpc.RegisterQueued(
      MsgType::kReadAhead,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t first_page = args.w[1];
        const uint64_t count = std::min<uint64_t>(args.w[2], kBulkBatchPages);
        const Generation gen = static_cast<Generation>(args.w[3]);
        Vnode* vnode = FindVnode(vnode_id);
        if (vnode == nullptr || vnode->is_shadow) {
          return base::NotFound();
        }
        if (gen != vnode->generation) {
          return base::StaleGeneration();
        }
        uint64_t filled = 0;
        for (uint64_t i = 0; i < count; ++i) {
          ASSIGN_OR_RETURN(Pfdat * pfdat, GetPageLocal(sctx, vnode_id, first_page + i,
                                                       /*want_write=*/false));
          pfdat->refcount--;
          reply->w[1 + i] = pfdat->frame;
          ++filled;
        }
        reply->w[0] = filled;
        return base::OkStatus();
      });

  // Write-behind launches asynchronously; the copy itself runs at interrupt
  // level (no server process hand-off).
  rpc.RegisterInterrupt(
      MsgType::kWriteBehindBulk,
      [this, page_size](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t first_page = args.w[1];
        const uint64_t count = std::min<uint64_t>(args.w[2], kBulkBatchPages);
        const Generation gen = static_cast<Generation>(args.w[3]);
        Vnode* vnode = FindVnode(vnode_id);
        if (vnode == nullptr || vnode->is_shadow) {
          return base::NotFound();
        }
        if (gen != vnode->generation) {
          return base::StaleGeneration();
        }
        std::vector<uint8_t> buf(page_size);
        for (uint64_t i = 0; i < count; ++i) {
          const PhysAddr src = args.w[4 + i];
          if (src % page_size != 0 || !cell_->machine().mem().ValidRange(src, page_size)) {
            return base::InvalidArgument();
          }
          ASSIGN_OR_RETURN(Pfdat * pfdat, GetPageLocal(sctx, vnode_id, first_page + i,
                                                       /*want_write=*/true));
          try {
            cell_->machine().mem().Read(sctx.cpu, src, std::span<uint8_t>(buf));
            // hive-lint: allow(R3): server-side careful read of the caller's buffer; converted to Status.
          } catch (const flash::BusError&) {
            pfdat->refcount--;
            return base::IoError();
          }
          cell_->machine().mem().Write(sctx.cpu, pfdat->frame, std::span<const uint8_t>(buf));
          RecordSalvageSum(pfdat);
          pfdat->refcount--;
        }
        vnode->size_bytes = std::max(vnode->size_bytes, (first_page + count) * page_size);
        return base::OkStatus();
      });

  // Unlink destroys the vnode: a retransmitted request must not observe a
  // spurious kNotFound for a removal that already succeeded, so it goes
  // through the at-most-once path.
  rpc.RegisterQueuedAtMostOnce(
      MsgType::kUnlink,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        return RemoveVnode(sctx, static_cast<VnodeId>(args.w[0]));
      });

  rpc.RegisterQueued(
      MsgType::kSyncFile,
      [this](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        return Sync(sctx, static_cast<VnodeId>(args.w[0]));
      });

  rpc.RegisterQueued(
      MsgType::kWriteBehind,
      [this, page_size](Ctx& sctx, const RpcArgs& args, RpcReply* reply) -> base::Status {
        (void)reply;
        const VnodeId vnode_id = static_cast<VnodeId>(args.w[0]);
        const uint64_t page = args.w[1];
        const uint64_t in_page = args.w[2];
        const uint64_t chunk = args.w[3];
        const PhysAddr src = args.w[4];
        const Generation gen = static_cast<Generation>(args.w[5]);
        if (chunk == 0 || chunk > page_size || in_page >= page_size ||
            in_page + chunk > page_size ||
            !cell_->machine().mem().ValidRange(src, chunk)) {
          return base::InvalidArgument();
        }
        Vnode* vnode = FindVnode(vnode_id);
        if (vnode == nullptr || vnode->is_shadow) {
          return base::NotFound();
        }
        if (gen != vnode->generation) {
          return base::StaleGeneration();
        }
        ASSIGN_OR_RETURN(Pfdat * pfdat,
                         GetPageLocal(sctx, vnode_id, page, /*want_write=*/true));
        std::vector<uint8_t> buf(chunk);
        try {
          cell_->machine().mem().Read(sctx.cpu, src, std::span<uint8_t>(buf));
          // hive-lint: allow(R3): server-side careful read of the caller's buffer; converted to Status.
        } catch (const flash::BusError&) {
          pfdat->refcount--;
          return base::IoError();
        }
        cell_->machine().mem().Write(sctx.cpu, pfdat->frame + in_page,
                                     std::span<const uint8_t>(buf));
        vnode->size_bytes = std::max(vnode->size_bytes, page * page_size + in_page + chunk);
        RecordSalvageSum(pfdat);
        pfdat->refcount--;
        return base::OkStatus();
      });
}

}  // namespace hive
