#include "src/core/pageout.h"

#include <vector>

#include "src/base/log.h"
#include "src/core/cell.h"
#include "src/core/filesystem.h"
#include "src/core/hive_system.h"
#include "src/core/swap.h"

namespace hive {
namespace {

constexpr Time kReclaimPerPageNs = 2000;

}  // namespace

void PageoutDaemon::Start() {
  event_id_ = cell_->machine().events().ScheduleAfter(kScanPeriod, [this] { Tick(); });
}

void PageoutDaemon::Stop() {
  if (event_id_ != 0) {
    cell_->machine().events().Cancel(event_id_);
    event_id_ = 0;
  }
}

void PageoutDaemon::Tick() {
  if (!cell_->alive()) {
    return;
  }
  Ctx ctx = cell_->MakeCtx();
  (void)Scan(ctx);
  // The daemon's work occupies the CPU like any kernel thread.
  flash::Cpu& cpu = cell_->machine().cpu(ctx.cpu);
  cpu.free_at = std::max(cpu.free_at, ctx.start) + ctx.elapsed;
  Start();
}

int PageoutDaemon::Scan(Ctx& ctx, int max_pages) {
  if (cell_->allocator().free_frames() >= kLowWaterFrames) {
    return 0;
  }
  int freed = 0;

  // Pass 1: drop unreferenced read-only imports (no RPC urgency: the data
  // home keeps the page cached, a later fault re-imports it quickly).
  std::vector<Pfdat*> droppable;
  cell_->pfdats().ForEach([&](Pfdat* pfdat) {
    if (freed + static_cast<int>(droppable.size()) >= max_pages) {
      return;
    }
    if (pfdat->extended && pfdat->imported_from != kInvalidCell &&
        !pfdat->import_writable && pfdat->refcount == 0 &&
        pfdat->borrowed_from == kInvalidCell) {
      droppable.push_back(pfdat);
    }
  });
  for (Pfdat* pfdat : droppable) {
    cell_->fs().DropImport(ctx, pfdat);
    ctx.Charge(kReclaimPerPageNs);
    ++freed;
  }

  // Pass 2: reclaim local file pages with no users. Dirty ones are written
  // back to disk first (the write-behind path).
  std::vector<Pfdat*> reclaimable;
  cell_->pfdats().ForEach([&](Pfdat* pfdat) {
    if (freed + static_cast<int>(reclaimable.size()) >= max_pages) {
      return;
    }
    if (!pfdat->extended && pfdat->HasLogicalBinding() &&
        pfdat->lpid.kind == LogicalPageId::Kind::kFile &&
        pfdat->lpid.data_home == cell_->id() && pfdat->refcount == 0 &&
        pfdat->exported_to == 0 && !pfdat->loaned_out) {
      reclaimable.push_back(pfdat);
    }
  });
  for (Pfdat* pfdat : reclaimable) {
    const VnodeId vnode_id = static_cast<VnodeId>(pfdat->lpid.object);
    if (pfdat->dirty) {
      // Flush just this page through the file system's sync path.
      (void)cell_->fs().Sync(ctx, vnode_id);
      ++dirty_writebacks_;
      if (pfdat->dirty) {
        continue;  // Still write-shared somewhere: not reclaimable.
      }
    }
    cell_->pfdats().RemoveHash(pfdat);
    pfdat->lpid = LogicalPageId{};
    cell_->allocator().ReleaseToFreeList(pfdat);
    ctx.Charge(kReclaimPerPageNs);
    ++freed;
  }

  // Pass 3: swap out unreferenced, unexported anonymous pages (their backing
  // store is the swap partition, paper section 5.3).
  if (freed < max_pages) {
    std::vector<Pfdat*> swappable;
    cell_->pfdats().ForEach([&](Pfdat* pfdat) {
      if (freed + static_cast<int>(swappable.size()) >= max_pages) {
        return;
      }
      if (pfdat->HasLogicalBinding() && pfdat->lpid.kind == LogicalPageId::Kind::kAnon &&
          pfdat->lpid.data_home == cell_->id() && pfdat->refcount == 0 &&
          pfdat->exported_to == 0 && !pfdat->loaned_out &&
          pfdat->imported_from == kInvalidCell) {
        swappable.push_back(pfdat);
      }
    });
    for (Pfdat* pfdat : swappable) {
      if (cell_->swap().SwapOut(ctx, pfdat).ok()) {
        ctx.Charge(kReclaimPerPageNs);
        ++freed;
      }
    }
  }

  pages_reclaimed_ += static_cast<uint64_t>(freed);
  if (freed > 0) {
    LOG(kDebug) << "cell " << cell_->id() << " pageout reclaimed " << freed << " frames";
  }
  return freed;
}

}  // namespace hive
